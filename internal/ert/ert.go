// Package ert implements the Elmore Routing Tree construction of Boese,
// Kahng, McCoy and Robins ("Towards Optimal Routing Trees"), the
// best-known-delay tree baseline against which the paper compares its
// non-tree routings (Tables 6 and 7).
//
// ERT is a greedy Prim-like growth: starting from the source, repeatedly
// attach the (unconnected pin, tree node) pair whose new edge minimizes the
// maximum Elmore delay over all sinks connected so far. Boese et al. report
// ERT delay averages within ~2% of the optimal routing tree.
//
// A Steiner variant (SERT) is also provided: each attachment may create a
// Steiner junction at the closest point of an existing edge's bounding box,
// following the cited construction.
package ert

import (
	"errors"
	"math"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/rc"
)

// ErrTooFewPins is returned for nets with fewer than two pins.
var ErrTooFewPins = errors.New("ert: need at least two pins")

// Build constructs the Elmore Routing Tree over the pins (pins[0] is the
// source) under the given technology parameters.
func Build(pins []geom.Point, p rc.Params) (*graph.Topology, error) {
	if len(pins) < 2 {
		return nil, ErrTooFewPins
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(pins)
	st := newTreeState(pins, p)

	inTree := make([]bool, n)
	inTree[0] = true
	treeNodes := []int{0}

	for added := 1; added < n; added++ {
		bestDelay := math.Inf(1)
		bestPin, bestVia := -1, -1
		for pin := 0; pin < n; pin++ {
			if inTree[pin] {
				continue
			}
			for _, via := range treeNodes {
				d := st.evalAttach(pin, via)
				if d < bestDelay {
					bestDelay = d
					bestPin, bestVia = pin, via
				}
			}
		}
		if bestPin < 0 {
			return nil, errors.New("ert: internal error: no attachment found")
		}
		st.attach(bestPin, bestVia)
		inTree[bestPin] = true
		treeNodes = append(treeNodes, bestPin)
	}

	t := graph.NewTopology(pins)
	for pin := 1; pin < n; pin++ {
		if err := t.AddEdge(graph.Edge{U: st.parent[pin], V: pin}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// treeState tracks a partially built tree over a fixed point set and
// evaluates Elmore delay of tentative attachments in O(k) each without
// allocation.
type treeState struct {
	pts    []geom.Point
	p      rc.Params
	parent []int // parent[i] = parent pin index; -1 for source, -2 unattached

	// Scratch arrays reused across evaluations.
	children [][]int
	subCap   []float64
	delay    []float64
	order    []int
}

func newTreeState(pts []geom.Point, p rc.Params) *treeState {
	n := len(pts)
	st := &treeState{
		pts:      pts,
		p:        p,
		parent:   make([]int, n),
		children: make([][]int, n),
		subCap:   make([]float64, n),
		delay:    make([]float64, n),
		order:    make([]int, 0, n),
	}
	for i := range st.parent {
		st.parent[i] = -2
	}
	st.parent[0] = -1
	return st
}

func (st *treeState) attach(pin, via int) {
	st.parent[pin] = via
	st.children[via] = append(st.children[via], pin)
}

// evalAttach returns the maximum Elmore sink delay of the current tree with
// pin tentatively attached under via.
func (st *treeState) evalAttach(pin, via int) float64 {
	st.attach(pin, via)
	d := st.maxSinkDelay()
	// Detach.
	st.parent[pin] = -2
	cs := st.children[via]
	st.children[via] = cs[:len(cs)-1]
	return d
}

// maxSinkDelay computes Elmore delays of the attached subtree (Eq. 1 with
// the lumped π model) and returns the worst sink delay.
func (st *treeState) maxSinkDelay() float64 {
	// BFS order from the source over attached nodes.
	st.order = st.order[:0]
	st.order = append(st.order, 0)
	for i := 0; i < len(st.order); i++ {
		n := st.order[i]
		st.order = append(st.order, st.children[n]...)
	}

	// Node capacitance: pin load plus half of each incident edge's wire cap.
	for _, n := range st.order {
		st.subCap[n] = st.p.SinkCapacitance
	}
	for _, n := range st.order {
		if par := st.parent[n]; par >= 0 {
			halfC := st.p.WireCapacitance * geom.Dist(st.pts[n], st.pts[par]) / 2
			st.subCap[n] += halfC
			st.subCap[par] += halfC
		}
	}
	// Post-order accumulation (reverse BFS order).
	for i := len(st.order) - 1; i > 0; i-- {
		n := st.order[i]
		st.subCap[st.parent[n]] += st.subCap[n]
	}
	// Pre-order delay propagation.
	st.delay[0] = st.p.DriverResistance * st.subCap[0]
	worst := 0.0
	for _, n := range st.order[1:] {
		par := st.parent[n]
		r := st.p.WireResistance * geom.Dist(st.pts[n], st.pts[par])
		st.delay[n] = st.delay[par] + r*st.subCap[n]
		if st.delay[n] > worst {
			worst = st.delay[n]
		}
	}
	return worst
}
