package sta

import (
	"errors"
	"math"
	"testing"
)

// chainDesign builds: PI → net0 → G1 → net1 → G2 → net2 → PO
// with two sinks per net (the second sink of nets 0 and 1 is unused
// fan-out; net2's sinks are a PO and an unused branch).
func chainDesign() *Design {
	return &Design{
		NumNets:   3,
		SinkCount: []int{2, 2, 2},
		NetDelay: [][]float64{
			{1e-9, 0.5e-9},
			{2e-9, 0.1e-9},
			{1.5e-9, 3e-9},
		},
		Gates: []Gate{
			{Name: "G1", Delay: 0.3e-9, FanIn: []PinRef{{Net: 0, Sink: 0}}, Drives: 1},
			{Name: "G2", Delay: 0.2e-9, FanIn: []PinRef{{Net: 1, Sink: 0}}, Drives: 2},
		},
		PrimaryInputs:  []int{0},
		PrimaryOutputs: []PinRef{{Net: 2, Sink: 0}, {Net: 2, Sink: 1}},
	}
}

func TestChainArrivalTimes(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(10e-9)
	if err != nil {
		t.Fatal(err)
	}
	// net0 driver at 0; G1 out = 1 + 0.3 = 1.3; G2 out = 1.3+2+0.2 = 3.5.
	if got := timing.NetArrival[1]; math.Abs(got-1.3e-9) > 1e-18 {
		t.Errorf("net1 arrival %.3g", got)
	}
	if got := timing.NetArrival[2]; math.Abs(got-3.5e-9) > 1e-18 {
		t.Errorf("net2 arrival %.3g", got)
	}
	// PO arrivals: 3.5+1.5 = 5.0 and 3.5+3 = 6.5 → worst 6.5.
	if math.Abs(timing.WorstArrival-6.5e-9) > 1e-18 {
		t.Errorf("worst arrival %.3g", timing.WorstArrival)
	}
}

func TestChainSlacks(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(10e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Slack at the slowest PO: 10 − 6.5 = 3.5 ns.
	if got := timing.Slack(PinRef{Net: 2, Sink: 1}); math.Abs(got-3.5e-9) > 1e-18 {
		t.Errorf("PO slack %.3g", got)
	}
	// The path pin net1/sink0 must carry the same worst slack.
	if got := timing.Slack(PinRef{Net: 1, Sink: 0}); math.Abs(got-3.5e-9) > 1e-18 {
		t.Errorf("on-path slack %.3g", got)
	}
	// Off-path fan-out pins have infinite slack (no requirement).
	if got := timing.Slack(PinRef{Net: 0, Sink: 1}); !math.IsInf(got, 1) {
		t.Errorf("off-path slack %.3g, want +Inf", got)
	}
	if ws := timing.WorstSlack(); math.Abs(ws-3.5e-9) > 1e-18 {
		t.Errorf("worst slack %.3g", ws)
	}
}

func TestNegativeSlackDetected(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(5e-9) // worst arrival is 6.5 ns
	if err != nil {
		t.Fatal(err)
	}
	if ws := timing.WorstSlack(); math.Abs(ws-(-1.5e-9)) > 1e-18 {
		t.Errorf("worst slack %.3g, want -1.5n", ws)
	}
}

func TestReconvergentFanout(t *testing.T) {
	// PI → net0 {sink0→G1, sink1→G2}; G1 → net1 → G3; G2 → net2 → G3;
	// G3 → net3 → PO. The slower branch dominates.
	d := &Design{
		NumNets:   4,
		SinkCount: []int{2, 1, 1, 1},
		NetDelay: [][]float64{
			{1e-9, 1e-9},
			{5e-9}, // slow branch
			{1e-9},
			{1e-9},
		},
		Gates: []Gate{
			{Name: "G1", Delay: 1e-9, FanIn: []PinRef{{Net: 0, Sink: 0}}, Drives: 1},
			{Name: "G2", Delay: 1e-9, FanIn: []PinRef{{Net: 0, Sink: 1}}, Drives: 2},
			{Name: "G3", Delay: 1e-9, FanIn: []PinRef{{Net: 1, Sink: 0}, {Net: 2, Sink: 0}}, Drives: 3},
		},
		PrimaryInputs:  []int{0},
		PrimaryOutputs: []PinRef{{Net: 3, Sink: 0}},
	}
	timing, err := d.Analyze(20e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Slow branch: 1 + 1 + 5 = 7 at G3 input; G3 out at 8; PO at 9.
	if math.Abs(timing.WorstArrival-9e-9) > 1e-18 {
		t.Errorf("worst arrival %.3g", timing.WorstArrival)
	}
	// The slow branch pin is the critical one.
	slow := timing.Slack(PinRef{Net: 1, Sink: 0})
	fast := timing.Slack(PinRef{Net: 2, Sink: 0})
	if slow >= fast {
		t.Errorf("slow branch slack %.3g not below fast %.3g", slow, fast)
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	d := &Design{
		NumNets:   2,
		SinkCount: []int{1, 1},
		NetDelay:  [][]float64{{1e-9}, {1e-9}},
		Gates: []Gate{
			{Name: "A", Delay: 1e-9, FanIn: []PinRef{{Net: 1, Sink: 0}}, Drives: 0},
			{Name: "B", Delay: 1e-9, FanIn: []PinRef{{Net: 0, Sink: 0}}, Drives: 1},
		},
		PrimaryInputs:  nil,
		PrimaryOutputs: []PinRef{{Net: 0, Sink: 0}},
	}
	// Both nets driven by gates, cycle A→B→A; also no PIs.
	if _, err := d.Analyze(1e-9); err == nil {
		t.Fatal("cycle must be rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	base := chainDesign()

	noDriver := *base
	noDriver.Gates = []Gate{base.Gates[0]} // net2 loses its driver
	if _, err := noDriver.Analyze(1e-9); !errors.Is(err, ErrNoDriver) {
		t.Errorf("no driver: %v", err)
	}

	multi := chainDesign()
	multi.PrimaryInputs = []int{0, 1} // net1 now double-driven
	if _, err := multi.Analyze(1e-9); !errors.Is(err, ErrMultiDriver) {
		t.Errorf("multi driver: %v", err)
	}

	badPin := chainDesign()
	badPin.PrimaryOutputs = []PinRef{{Net: 9, Sink: 0}}
	if _, err := badPin.Analyze(1e-9); !errors.Is(err, ErrBadRef) {
		t.Errorf("bad pin: %v", err)
	}

	noPI := chainDesign()
	noPI.PrimaryInputs = nil
	if _, err := noPI.Analyze(1e-9); !errors.Is(err, ErrNoDriver) && !errors.Is(err, ErrNoTiming) {
		t.Errorf("no PI: %v", err)
	}
}

func TestCriticalities(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(7e-9)
	if err != nil {
		t.Fatal(err)
	}
	// net2: sink0 slack = 7−5 = 2n, sink1 slack = 7−6.5 = 0.5n.
	alphas := Criticalities(timing, 2, false)
	if len(alphas) != 2 {
		t.Fatalf("alphas %v", alphas)
	}
	if alphas[1] != 1 {
		t.Errorf("most critical sink must get weight 1: %v", alphas)
	}
	if alphas[0] >= alphas[1] {
		t.Errorf("less critical sink must weigh less: %v", alphas)
	}

	sharp := Criticalities(timing, 2, true)
	if sharp[1] != 1 || sharp[0] != 0 {
		t.Errorf("sharpened weights must isolate the critical sink: %v", sharp)
	}
}

func TestMostCriticalNet(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(7e-9)
	if err != nil {
		t.Fatal(err)
	}
	net, pin := MostCriticalNet(timing)
	// The critical path runs through every on-path pin with equal slack;
	// any of them is acceptable, but the pin must carry the worst slack.
	if timing.Slack(pin) != timing.WorstSlack() {
		t.Errorf("MostCriticalNet pin slack %.3g != worst %.3g",
			timing.Slack(pin), timing.WorstSlack())
	}
	if net != pin.Net {
		t.Error("net/pin mismatch")
	}
}

func TestUniformSlackGivesUniformAlphas(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(10e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Force equal slacks artificially on net 0 by checking the equal-slack
	// branch: net1 has sinks with slacks 3.5n and +Inf... use a net where
	// both sinks are on the PO list instead.
	_ = timing
	d2 := &Design{
		NumNets:        1,
		SinkCount:      []int{2},
		NetDelay:       [][]float64{{1e-9, 1e-9}},
		PrimaryInputs:  []int{0},
		PrimaryOutputs: []PinRef{{Net: 0, Sink: 0}, {Net: 0, Sink: 1}},
	}
	t2, err := d2.Analyze(5e-9)
	if err != nil {
		t.Fatal(err)
	}
	alphas := Criticalities(t2, 0, false)
	if alphas[0] != 1 || alphas[1] != 1 {
		t.Errorf("equal slacks must give uniform weights: %v", alphas)
	}
}

func TestCriticalPathChain(t *testing.T) {
	d := chainDesign()
	timing, err := d.Analyze(10e-9)
	if err != nil {
		t.Fatal(err)
	}
	path, err := d.CriticalPath(timing)
	if err != nil {
		t.Fatal(err)
	}
	// Signal order: net0/sink0 (PI-driven) → net1/sink0 (via G1) → net2/sink1 (via G2).
	want := []PathElement{
		{Net: 0, Sink: 0, Gate: -1},
		{Net: 1, Sink: 0, Gate: 0},
		{Net: 2, Sink: 1, Gate: 1},
	}
	if len(path) != len(want) {
		t.Fatalf("path %+v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("hop %d: %+v, want %+v", i, path[i], want[i])
		}
	}
	// Every on-path pin carries the worst slack.
	for _, el := range path {
		if sl := timing.Slack(PinRef{Net: el.Net, Sink: el.Sink}); math.Abs(sl-timing.WorstSlack()) > 1e-18 {
			t.Errorf("on-path pin %+v slack %.3g != worst %.3g", el, sl, timing.WorstSlack())
		}
	}
}

func TestCriticalPathReconvergent(t *testing.T) {
	// From TestReconvergentFanout's design: the slow branch must be on the
	// path.
	d := &Design{
		NumNets:   4,
		SinkCount: []int{2, 1, 1, 1},
		NetDelay: [][]float64{
			{1e-9, 1e-9},
			{5e-9},
			{1e-9},
			{1e-9},
		},
		Gates: []Gate{
			{Name: "G1", Delay: 1e-9, FanIn: []PinRef{{Net: 0, Sink: 0}}, Drives: 1},
			{Name: "G2", Delay: 1e-9, FanIn: []PinRef{{Net: 0, Sink: 1}}, Drives: 2},
			{Name: "G3", Delay: 1e-9, FanIn: []PinRef{{Net: 1, Sink: 0}, {Net: 2, Sink: 0}}, Drives: 3},
		},
		PrimaryInputs:  []int{0},
		PrimaryOutputs: []PinRef{{Net: 3, Sink: 0}},
	}
	timing, err := d.Analyze(20e-9)
	if err != nil {
		t.Fatal(err)
	}
	path, err := d.CriticalPath(timing)
	if err != nil {
		t.Fatal(err)
	}
	throughSlow := false
	for _, el := range path {
		if el.Net == 1 {
			throughSlow = true
		}
		if el.Net == 2 {
			t.Error("critical path must not use the fast branch")
		}
	}
	if !throughSlow {
		t.Errorf("critical path skipped the slow branch: %+v", path)
	}
}
