// Package trace is the repository's structured execution-trace layer: a
// stream of typed, per-decision events emitted by the routing algorithms
// (package core), the incremental Elmore evaluator (package elmore) and
// the transient simulator (package spice), answering the question the
// aggregate counters of package obs cannot — *why* a specific edge was
// accepted or rejected, and in what order the search unfolded.
//
// The layer mirrors the obs contract (DESIGN.md §10–§11):
//
//   - Events are emitted only from deterministic program points. The
//     parallel candidate sweeps record objective values by candidate index
//     and emit candidate events *after* the deterministic reduction, in
//     canonical candidate order — never from worker goroutines. For a
//     fixed seed the deterministic fields of a trace are therefore
//     byte-identical at any Options.Workers value.
//   - Each event carries one nondeterministic field, Elapsed (wall-clock
//     seconds since the tracer started), stamped by the Ring tracer.
//     Event.Deterministic drops it; every determinism comparison and the
//     replay differ work on the deterministic projection.
//   - The canonical JSONL encoding (see event.go) renders floats as hex
//     literals and omits zero-valued fields, so encode→decode→encode is
//     byte-identical and a fingerprint match is a bitwise match.
//
// Instrumented packages observe only the Tracer interface; the no-op Nop
// is the default everywhere a tracer is optional, so the cost of not
// tracing is a nil check. The standard implementation is Ring, a bounded
// ring buffer that keeps the most recent events and counts what it
// dropped.
package trace

// Tracer receives execution events from instrumented code. Emit is called
// only from deterministic, single-goroutine program points (seed scoring,
// post-reduction sweep replay, commit paths), so implementations see a
// reproducible event order; they must nevertheless be safe for concurrent
// use because independent runs may share a tracer.
type Tracer interface {
	// Emit records one event. Implementations assign Event.Seq and may
	// stamp Event.Elapsed; all other fields are the emitter's.
	Emit(Event)
}

// Nop is the no-op Tracer used when tracing is not requested. The zero
// value is ready to use.
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(Event) {}

// OrNop returns t, or Nop when t is nil — the resolution helper every
// instrumented option struct uses.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop{}
	}
	return t
}

// Multi fans every event out to all listed tracers. Each receiving tracer
// assigns its own sequence numbers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}
