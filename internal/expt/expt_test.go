package expt

import (
	"math"
	"strings"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/stats"
)

func mstOf(net *netlist.Net) (*graph.Topology, error) {
	return mst.Prim(net.Pins)
}

// quickConfig returns a tiny configuration so harness tests stay fast while
// still exercising the full pipeline.
func quickConfig() Config {
	cfg := Default()
	cfg.Sizes = []int{5, 10}
	cfg.Trials = 4
	// Elmore measurement keeps the full-suite runtime negligible; the
	// simulator path is covered by TestMeasureSpicePath.
	cfg.MeasureWith = OracleElmore
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := Default()
	wantSizes := []int{5, 10, 20, 30}
	if len(cfg.Sizes) != len(wantSizes) {
		t.Fatalf("sizes %v", cfg.Sizes)
	}
	for i := range wantSizes {
		if cfg.Sizes[i] != wantSizes[i] {
			t.Fatalf("sizes %v, want %v", cfg.Sizes, wantSizes)
		}
	}
	if cfg.Trials != 50 {
		t.Errorf("trials = %d, paper uses 50", cfg.Trials)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Sizes = nil },
		func(c *Config) { c.Sizes = []int{1} },
		func(c *Config) { c.Trials = 0 },
		func(c *Config) { c.SearchOracle = "magic" },
		func(c *Config) { c.MeasureWith = "guess" },
		func(c *Config) { c.Params.DriverResistance = -1 },
	}
	for i, mod := range bad {
		cfg := Default()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("modification %d must fail validation", i)
		}
	}
}

func TestNetForDeterministicAndIsolated(t *testing.T) {
	cfg := Default()
	a, err := cfg.netFor(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.netFor(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pins {
		if !a.Pins[i].Eq(b.Pins[i]) {
			t.Fatal("netFor not deterministic")
		}
	}
	// Different trial → different net.
	c, err := cfg.netFor(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pins[0].Eq(c.Pins[0]) && a.Pins[1].Eq(c.Pins[1]) {
		t.Error("different trials look identical")
	}
}

func checkTable(t *testing.T, table *Table, cfg Config, sections int) {
	t.Helper()
	if len(table.Sections) != sections {
		t.Fatalf("%s: %d sections, want %d", table.ID, len(table.Sections), sections)
	}
	for _, sec := range table.Sections {
		if len(sec.Rows) != len(cfg.Sizes) {
			t.Fatalf("%s/%s: %d rows", table.ID, sec.Name, len(sec.Rows))
		}
		for _, row := range sec.Rows {
			s := row.Summary
			if s.Count != cfg.Trials {
				t.Errorf("%s size %d: %d trials", table.ID, row.Size, s.Count)
			}
			if s.AllDelay <= 0 || s.AllCost < 1-1e-9 {
				t.Errorf("%s size %d: implausible ratios delay=%.3f cost=%.3f",
					table.ID, row.Size, s.AllDelay, s.AllCost)
			}
			if s.PercentWinners < 0 || s.PercentWinners > 100 {
				t.Errorf("%s size %d: winners %.1f%%", table.ID, row.Size, s.PercentWinners)
			}
			if !math.IsNaN(s.WinDelay) && s.WinDelay >= 1 {
				t.Errorf("%s size %d: winners-only delay %.3f not below 1",
					table.ID, row.Size, s.WinDelay)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := quickConfig()
	table, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, cfg, 2)
	if table.FindSection("Iteration One") == nil || table.FindSection("Iteration Two") == nil {
		t.Error("iteration sections missing")
	}
	// Iteration-two marginal ratios cannot beat iteration one on average
	// (second edges help less), a robust structural property.
	one := table.FindSection("Iteration One").RowFor(10).Summary
	two := table.FindSection("Iteration Two").RowFor(10).Summary
	if two.AllDelay < one.AllDelay-0.05 {
		t.Errorf("iteration two (%.3f) dramatically beats iteration one (%.3f)",
			two.AllDelay, one.AllDelay)
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := quickConfig()
	table, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, cfg, 1)
	if table.Baseline != "Steiner tree" {
		t.Errorf("baseline %q", table.Baseline)
	}
}

func TestTable4Shape(t *testing.T) {
	cfg := quickConfig()
	table, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, cfg, 2)
}

func TestTable5Shape(t *testing.T) {
	cfg := quickConfig()
	table, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Sections) != 2 || table.Sections[0].Name != "H2" || table.Sections[1].Name != "H3" {
		t.Fatalf("sections: %+v", table.Sections)
	}
	// H2/H3 add edges unconditionally, so all-cases delay may exceed 1 for
	// small nets; do not run checkTable's delay<... assertion. Structural
	// checks only:
	for _, sec := range table.Sections {
		for _, row := range sec.Rows {
			if row.Summary.Count != cfg.Trials {
				t.Errorf("%s size %d: %d trials", sec.Name, row.Size, row.Summary.Count)
			}
		}
	}
}

func TestTable6Shape(t *testing.T) {
	cfg := quickConfig()
	table, err := Table6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, cfg, 1)
	// ERT's delay advantage must grow (or at least not shrink wildly)
	// with net size — the paper's central trend.
	sec := table.Sections[0]
	small := sec.RowFor(5).Summary.AllDelay
	large := sec.RowFor(10).Summary.AllDelay
	if large > small+0.15 {
		t.Errorf("ERT delay ratio degraded with size: %.3f → %.3f", small, large)
	}
}

func TestTable7Shape(t *testing.T) {
	cfg := quickConfig()
	table, err := Table7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, table, cfg, 1)
	if table.Baseline != "ERT" {
		t.Errorf("baseline %q", table.Baseline)
	}
}

func TestTableRenderIncludesRows(t *testing.T) {
	cfg := quickConfig()
	table, err := Table6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"table6", "normalized to MST", "%Win"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresRunAndCarryStages(t *testing.T) {
	cfg := quickConfig()
	for _, mk := range []func(Config) (*Figure, error){Figure1, Figure2, Figure3, Figure5} {
		f, err := mk(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Stages) == 0 || len(f.Lines) == 0 {
			t.Errorf("%s: empty figure", f.ID)
		}
		for _, st := range f.Stages {
			if len(st.Topo.Points) == 0 || len(st.Topo.Edges) == 0 {
				t.Errorf("%s/%s: empty topology view", f.ID, st.Label)
			}
		}
	}
}

func TestFigure2MatchesPaperShape(t *testing.T) {
	// The chosen Figure-2 net must show a large single-edge win at a
	// moderate wirelength penalty, mirroring the paper's −33%/+21.5%.
	cfg := Default()
	cfg.MeasureWith = OracleSpice
	f, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dr, ok := f.Values["delay_ratio"]
	if !ok {
		t.Fatal("figure2 found no improving edge")
	}
	cr := f.Values["cost_ratio"]
	if dr > 0.8 {
		t.Errorf("delay ratio %.3f too weak for the Figure-2 illustration", dr)
	}
	if cr > 1.35 {
		t.Errorf("cost ratio %.3f too expensive for the Figure-2 illustration", cr)
	}
}

func TestFigure3HasTwoIterations(t *testing.T) {
	cfg := Default()
	f, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Values["stage2_delay_s"]; !ok {
		t.Error("figure3 must trace two LDRG iterations")
	}
	// Cumulative improvement must be monotone.
	if f.Values["stage2_delay_s"] > f.Values["stage1_delay_s"]+1e-15 {
		t.Error("second stage worsened measured delay")
	}
}

func TestMeasureSpicePath(t *testing.T) {
	cfg := Default()
	cfg.MeasureWith = OracleSpice
	net, err := cfg.netFor(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mstOf(net)
	if err != nil {
		t.Fatal(err)
	}
	d, c, err := cfg.Measure(topo)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || c <= 0 {
		t.Errorf("measured delay %v cost %v", d, c)
	}
	// Elmore measurement of the same topology should be within a small
	// constant of the simulator.
	cfg.MeasureWith = OracleElmore
	de, _, err := cfg.Measure(topo)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := de / d; ratio < 0.5 || ratio > 3 {
		t.Errorf("elmore/spice measurement ratio %.2f", ratio)
	}
}

func TestSpiceSearchOracleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spice search is slow")
	}
	cfg := Default()
	cfg.Sizes = []int{5}
	cfg.Trials = 2
	cfg.SearchOracle = OracleSpice
	table, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Sections) != 2 {
		t.Fatal("bad table")
	}
}

func TestRatioAtNeutralWhenNoStage(t *testing.T) {
	o := &trialOutcome{baseDelay: 2, baseCost: 10}
	s := o.ratioAt(0)
	if s.DelayRatio != 1 || s.CostRatio != 1 {
		t.Errorf("no-stage ratio = %+v", s)
	}
	if s.Won() {
		t.Error("neutral ratio cannot be a win")
	}
	f := o.finalRatio()
	if f.DelayRatio != 1 {
		t.Errorf("final ratio = %+v", f)
	}
}

func TestRatioAtChainsStages(t *testing.T) {
	o := &trialOutcome{
		baseDelay: 2, baseCost: 10,
		stageDelay: []float64{1.5, 1.2},
		stageCost:  []float64{12, 13},
	}
	s0 := o.ratioAt(0)
	if math.Abs(s0.DelayRatio-0.75) > 1e-12 || math.Abs(s0.CostRatio-1.2) > 1e-12 {
		t.Errorf("stage 0: %+v", s0)
	}
	s1 := o.ratioAt(1)
	if math.Abs(s1.DelayRatio-0.8) > 1e-12 {
		t.Errorf("stage 1 delay: %+v", s1)
	}
	fin := o.finalRatio()
	if math.Abs(fin.DelayRatio-0.6) > 1e-12 || math.Abs(fin.CostRatio-1.3) > 1e-12 {
		t.Errorf("final: %+v", fin)
	}
	_ = stats.Sample{}
}

// TestGoldenPipelineDeterminism pins the full pipeline — net generation,
// MST, ERT, circuit construction, transient simulation, threshold
// extraction, aggregation — to exact golden values. Any change to any
// stage's numerics will trip this test; update the constants only after
// confirming the change is intentional (and re-baselining EXPERIMENTS.md).
func TestGoldenPipelineDeterminism(t *testing.T) {
	cfg := Default()
	cfg.Sizes = []int{5, 10}
	cfg.Trials = 4
	table, err := Table6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		size                                         int
		allDelay, allCost, pctWin, winDelay, winCost float64
	}{
		{5, 0.811930874045405, 1.11090360887726, 75, 0.749241165393873, 1.14787147850301},
		{10, 0.82160918555646, 1.34124986146259, 75, 0.754520091159749, 1.36370561393661},
	}
	const tol = 1e-12
	for i, g := range golden {
		row := table.Sections[0].RowFor(g.size)
		if row == nil {
			t.Fatalf("missing row %d", g.size)
		}
		s := row.Summary
		checks := []struct {
			name      string
			got, want float64
		}{
			{"allDelay", s.AllDelay, g.allDelay},
			{"allCost", s.AllCost, g.allCost},
			{"pctWin", s.PercentWinners, g.pctWin},
			{"winDelay", s.WinDelay, g.winDelay},
			{"winCost", s.WinCost, g.winCost},
		}
		for _, c := range checks {
			if math.Abs(c.got-c.want) > tol*math.Max(math.Abs(c.want), 1) {
				t.Errorf("golden row %d %s: got %.15g, want %.15g", i, c.name, c.got, c.want)
			}
		}
	}
}

func TestAllTablesAndFiguresAndRenders(t *testing.T) {
	cfg := quickConfig()
	cfg.Sizes = []int{5}
	cfg.Trials = 2
	tables, err := AllTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("%d tables", len(tables))
	}
	figs, err := AllFigures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("%d figures", len(figs))
	}
	var sb strings.Builder
	for _, f := range figs {
		f.Render(&sb)
	}
	if !strings.Contains(sb.String(), "figure1") {
		t.Error("figure render missing id")
	}
	tr, err := Timing(cfg, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	tr.Render(&sb)
	if !strings.Contains(sb.String(), "ext-timing") {
		t.Error("timing render missing id")
	}
}
