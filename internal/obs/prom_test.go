package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the registry whose exposition the golden file pins:
// the full preregistered catalog plus a little deterministic activity so
// counters, histogram buckets and sums are all exercised.
func goldenRegistry() *Registry {
	g := NewRegistry()
	Preregister(g)
	g.Add(CtrSweeps, 3)
	g.Add(CtrOracleEvaluations, 120)
	g.Add(CtrAcceptedEdges, 2)
	for _, v := range []float64{1, 3, 40, 40, 41, 1000} {
		g.Observe(HistSweepCandidates, v)
	}
	return g
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file (run with -update to regenerate):\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// promNameRe is the Prometheus metric-name grammar (we never emit colons).
var promNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// parseExposition is a minimal text-format v0.0.4 reader: it returns the
// value of every sample line keyed by metric name + label part, and the
// set of names declared by TYPE lines.
func parseExposition(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Fatalf("metric %s declared twice", fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// "<name>[{labels}] <value>"
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("invalid metric name %q in %q", name, line)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

// TestPrometheusParseBack renders a preregistered registry and re-parses
// the exposition, asserting every cataloged metric appears exactly once
// under a valid name and the histogram series are internally consistent.
func TestPrometheusParseBack(t *testing.T) {
	g := goldenRegistry()
	snap := g.Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, buf.String())

	for _, name := range CounterNames() {
		pn := promName(name) + "_total"
		if types[pn] != "counter" {
			t.Errorf("counter %s: TYPE is %q, want counter", pn, types[pn])
		}
		v, ok := samples[pn]
		if !ok {
			t.Errorf("counter %s missing from exposition", pn)
			continue
		}
		if want := float64(snap.Counters[name]); v != want {
			t.Errorf("counter %s = %g, want %g", pn, v, want)
		}
	}
	for _, name := range HistogramNames() {
		pn := promName(name)
		if types[pn] != "histogram" {
			t.Errorf("histogram %s: TYPE is %q, want histogram", pn, types[pn])
		}
		count, ok := samples[pn+"_count"]
		if !ok {
			t.Errorf("histogram %s has no _count", pn)
			continue
		}
		if _, ok := samples[pn+"_sum"]; !ok {
			t.Errorf("histogram %s has no _sum", pn)
		}
		inf, ok := samples[pn+`_bucket{le="+Inf"}`]
		if !ok {
			t.Errorf("histogram %s has no +Inf bucket", pn)
		} else if inf != count {
			t.Errorf("histogram %s: +Inf bucket %g != count %g", pn, inf, count)
		}
		// Cumulative buckets must be non-decreasing in le order.
		type bkt struct{ le, cum float64 }
		var buckets []bkt
		prefix := pn + `_bucket{le="`
		for key, v := range samples {
			if !strings.HasPrefix(key, prefix) || strings.HasSuffix(key, `le="+Inf"}`) {
				continue
			}
			leText := strings.TrimSuffix(strings.TrimPrefix(key, prefix), `"}`)
			le, err := strconv.ParseFloat(leText, 64)
			if err != nil {
				t.Fatalf("histogram %s: unparsable le %q", pn, leText)
			}
			buckets = append(buckets, bkt{le, v})
		}
		for i := range buckets {
			for j := range buckets {
				if buckets[i].le < buckets[j].le && buckets[i].cum > buckets[j].cum {
					t.Errorf("histogram %s: cumulative counts decrease from le=%g (%g) to le=%g (%g)",
						pn, buckets[i].le, buckets[i].cum, buckets[j].le, buckets[j].cum)
				}
			}
		}
	}

	// The catalog and the exposition must agree exactly: no extra TYPEs.
	want := len(CounterNames()) + len(HistogramNames())
	if len(snap.Timings) != 0 {
		t.Fatalf("unexpected timings in a preregistered-only registry")
	}
	if len(types) != want {
		t.Errorf("exposition declares %d metrics, catalog has %d", len(types), want)
	}
}

func TestPromNameMangling(t *testing.T) {
	cases := map[string]string{
		"core.sweep.seconds":  "nontree_core_sweep_seconds",
		"spice.mna.solves":    "nontree_spice_mna_solves",
		"weird-name.2nd part": "nontree_weird_name_2nd_part",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRe.MatchString(promName(in)) {
			t.Errorf("promName(%q) is not a valid metric name", in)
		}
	}
}

// TestPrometheusDeterministicOutput pins byte-identical rendering of equal
// snapshots — the property the /metrics endpoint's cacheability relies on.
func TestPrometheusDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renderings of equal snapshots differ")
	}
}

// TestPrometheusTimings covers the Timings section (wall-clock spans).
func TestPrometheusTimings(t *testing.T) {
	g := NewRegistry()
	sw := StartSpan(g, TimeSweep)
	sw.End()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	pn := promName(TimeSweep)
	text := buf.String()
	for _, want := range []string{
		fmt.Sprintf("# TYPE %s histogram", pn),
		pn + `_bucket{le="+Inf"} 1`,
		pn + "_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("timings exposition missing %q:\n%s", want, text)
		}
	}
}
