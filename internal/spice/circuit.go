// Package spice is a from-scratch linear circuit simulator standing in for
// Berkeley SPICE2, which the paper uses to evaluate every routing topology.
//
// The paper's circuits are linear: distributed RC(L) interconnect driven by
// a step source behind a driver resistance, with capacitive sink loads
// (Section 2, Table 1). For this class, modified nodal analysis with an
// implicit integrator reproduces SPICE's transient behaviour exactly, so the
// substitution preserves the experiments — see DESIGN.md §2.
//
// The simulator supports resistors, capacitors, inductors, independent
// voltage sources (step / PWL waveforms) and current sources; DC operating
// point; and transient analysis via Backward Euler or the trapezoidal rule
// with a fixed timestep and one-time LU factorization.
//
// Concurrency: a Circuit is mutable while being built (Node/Add*) and must
// be confined to one goroutine until construction finishes; every analysis
// entry point (OperatingPoint, FinalValue, Transient*, MeasureDelays) then
// treats it as read-only, assembling its own MNA system, factorizations and
// step buffers per call — including the adaptive integrator's trapStepper
// cache, which is allocated inside TransientAdaptive. Concurrent analyses of
// the same or distinct circuits are therefore safe, which is what lets
// core's parallel candidate sweeps hammer SpiceOracle from many goroutines.
// Waveform closures are called during concurrent analyses and must be pure
// functions of t (the built-ins DC, Step and Ramp are).
package spice

import (
	"errors"
	"fmt"
)

// Ground is the reference node; its voltage is identically zero.
const Ground = 0

// Waveform is a time-dependent source value (volts or amperes).
//
//nontree:unit t s
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(value float64) Waveform { return func(float64) float64 { return value } }

// Step returns a waveform that is v0 for t < t0 and v1 afterwards — the
// paper's rising input edge.
//
//nontree:unit t0 s
func Step(v0, v1, t0 float64) Waveform {
	return func(t float64) float64 {
		if t < t0 {
			return v0
		}
		return v1
	}
}

// Ramp returns a waveform rising linearly from v0 at t0 to v1 at t1, flat
// outside that interval. Useful for finite-slew ablations.
//
//nontree:unit t0 s
//nontree:unit t1 s
func Ramp(v0, v1, t0, t1 float64) Waveform {
	return func(t float64) float64 {
		switch {
		case t <= t0:
			return v0
		case t >= t1:
			return v1
		default:
			return v0 + (v1-v0)*(t-t0)/(t1-t0)
		}
	}
}

type resistor struct {
	a, b int
	ohms float64 //nontree:unit Ω
}

type capacitor struct {
	a, b   int
	farads float64 //nontree:unit F
}

type inductor struct {
	a, b    int
	henries float64 //nontree:unit H
}

type vsource struct {
	pos, neg int
	wave     Waveform
}

type isource struct {
	from, to int // current flows from 'from' through the source into 'to'
	wave     Waveform
}

// Circuit is a netlist under construction. Node 0 is ground; allocate
// further nodes with Node.
type Circuit struct {
	numNodes   int
	resistors  []resistor
	capacitors []capacitor
	inductors  []inductor
	vsources   []vsource
	isources   []isource
}

// NewCircuit returns an empty circuit containing only the ground node.
func NewCircuit() *Circuit {
	return &Circuit{numNodes: 1}
}

// Node allocates and returns a fresh node index.
func (c *Circuit) Node() int {
	c.numNodes++
	return c.numNodes - 1
}

// Nodes allocates n fresh nodes and returns their indices.
func (c *Circuit) Nodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = c.Node()
	}
	return out
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return c.numNodes }

// Element construction errors.
var (
	ErrBadNode      = errors.New("spice: node index out of range")
	ErrNonPositive  = errors.New("spice: element value must be positive")
	ErrSameNode     = errors.New("spice: element endpoints must differ")
	ErrNilWaveform  = errors.New("spice: source waveform must not be nil")
	ErrEmptyCircuit = errors.New("spice: circuit has no non-ground nodes")
)

func (c *Circuit) checkNodes(nodes ...int) error {
	for _, n := range nodes {
		if n < 0 || n >= c.numNodes {
			return fmt.Errorf("%w: %d (circuit has %d nodes)", ErrBadNode, n, c.numNodes)
		}
	}
	return nil
}

// AddResistor connects a resistance of the given ohms between nodes a and b.
//
//nontree:unit ohms Ω
func (c *Circuit) AddResistor(a, b int, ohms float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if a == b {
		return ErrSameNode
	}
	if ohms <= 0 {
		return fmt.Errorf("%w: resistor %g ohms", ErrNonPositive, ohms)
	}
	c.resistors = append(c.resistors, resistor{a, b, ohms})
	return nil
}

// AddCapacitor connects a capacitance of the given farads between a and b.
//
//nontree:unit farads F
func (c *Circuit) AddCapacitor(a, b int, farads float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if a == b {
		return ErrSameNode
	}
	if farads <= 0 {
		return fmt.Errorf("%w: capacitor %g farads", ErrNonPositive, farads)
	}
	c.capacitors = append(c.capacitors, capacitor{a, b, farads})
	return nil
}

// AddInductor connects an inductance of the given henries between a and b.
//
//nontree:unit henries H
func (c *Circuit) AddInductor(a, b int, henries float64) error {
	if err := c.checkNodes(a, b); err != nil {
		return err
	}
	if a == b {
		return ErrSameNode
	}
	if henries <= 0 {
		return fmt.Errorf("%w: inductor %g henries", ErrNonPositive, henries)
	}
	c.inductors = append(c.inductors, inductor{a, b, henries})
	return nil
}

// AddVSource connects an independent voltage source; the voltage at pos
// minus the voltage at neg tracks the waveform.
func (c *Circuit) AddVSource(pos, neg int, wave Waveform) error {
	if err := c.checkNodes(pos, neg); err != nil {
		return err
	}
	if pos == neg {
		return ErrSameNode
	}
	if wave == nil {
		return ErrNilWaveform
	}
	c.vsources = append(c.vsources, vsource{pos, neg, wave})
	return nil
}

// AddISource connects an independent current source driving the waveform's
// current out of node from and into node to.
func (c *Circuit) AddISource(from, to int, wave Waveform) error {
	if err := c.checkNodes(from, to); err != nil {
		return err
	}
	if from == to {
		return ErrSameNode
	}
	if wave == nil {
		return ErrNilWaveform
	}
	c.isources = append(c.isources, isource{from, to, wave})
	return nil
}

// Counts returns the number of each element kind, for diagnostics.
func (c *Circuit) Counts() (r, cap, l, v, i int) {
	return len(c.resistors), len(c.capacitors), len(c.inductors), len(c.vsources), len(c.isources)
}

// ResistorValues returns every resistor's value in ohms, in insertion
// order. Exposed for netlist verification in tests and tools.
//
//nontree:unit return Ω
func ResistorValues(c *Circuit) []float64 {
	out := make([]float64, len(c.resistors))
	for i, r := range c.resistors {
		out[i] = r.ohms
	}
	return out
}

// CapacitorValues returns every capacitor's value in farads, in insertion
// order.
//
//nontree:unit return F
func CapacitorValues(c *Circuit) []float64 {
	out := make([]float64, len(c.capacitors))
	for i, cap := range c.capacitors {
		out[i] = cap.farads
	}
	return out
}

// InductorValues returns every inductor's value in henries, in insertion
// order.
//
//nontree:unit return H
func InductorValues(c *Circuit) []float64 {
	out := make([]float64, len(c.inductors))
	for i, l := range c.inductors {
		out[i] = l.henries
	}
	return out
}
