// Package unitcheck is a dimensional-analysis pass over the repository's
// physics-bearing packages. Every number in the reproduction's results
// flows from the Table 1 interconnect constants (100Ω driver, 0.352fF/µm
// wire capacitance, 492fH/µm inductance, 15.3fF sink loads) through
// rc → spice/elmore → core, and a single silent unit slip — farads where
// femtofarads were meant, an Ω added to an F — skews every delay in
// Tables 2–5 while the tier-1 tests keep passing. This analyzer makes the
// units part of the checked surface.
//
// # Unit sources
//
// Dimensions enter through three kinds of annotation, in precedence
// order:
//
//  1. Directives. A struct field, package const/var, or named func type
//     carries
//
//     //nontree:unit <expr>
//
//     in its doc or trailing comment; a func or interface method carries
//     one line per parameter or result in its doc comment:
//
//     //nontree:unit <param> <expr>
//     //nontree:unit return <expr>     (first result; returnN for others)
//
//  2. Doc-comment convention. A parenthesized unit expression in a
//     declaration's doc — "resistance per unit length (Ω/µm)" — is
//     recognized, matching the style already used throughout rc.Params.
//     A bare "(s)" is deliberately ignored (it reads as an English plural
//     marker); seconds require a directive.
//
//  3. Name convention. Fields and parameters whose names end in "Hz" or
//     "Rad" (FrequencyHz, PhaseRad, freqsHz) carry those units.
//
// An annotation on a slice, array or map type gives the dimension of its
// elements. Unit expressions are the algebra of nontree/internal/analysis/units:
// "Ω/µm", "F·µm⁻¹", "fF", "s^2".
//
// # Inference
//
// Within each function the analyzer propagates dimensions through the
// expression tree: multiplication and division compose dimension vectors
// (so an RC product lands on seconds by construction), addition,
// subtraction and ordered comparison demand identical dimensions
// (including scale — F vs fF is a finding, and the message calls out the
// prefix slip), numeric literals adopt the dimension the context
// declares, and integer expressions are dimensionless counts. Locals
// pick up dimensions from their initializers; return statements, call
// arguments, assignments and composite literals are checked against
// declared units.
//
// # Cross-package facts
//
// Declared units are exported as per-package facts (see analysis.Facts)
// keyed "<pkg>.<Type>.<member>" / "<pkg>.<name>", so a package sees the
// dimensions of everything it imports; the driver's dependency-ordered
// loading guarantees the facts exist in time. nontree-lint -factdir dumps
// the stores as JSON sidecars for inspection.
//
// Findings are suppressed by the standard escape hatch,
//
//	//nontree:allow unitcheck <justification>
//
// on the flagged line or the line above.
package unitcheck

import (
	"go/ast"
	"go/token"

	"nontree/internal/analysis"
)

// Analyzer is the unitcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc: "dimensional analysis of the circuit model: annotated Ω/F/H/s/V/µm " +
		"units must compose consistently through every expression",
	Scope: []string{
		"internal/rc",
		"internal/spice",
		"internal/elmore",
		"internal/linalg",
		"internal/core",
		"internal/graph",
	},
	Run: run,
}

// ValueFact is the exported dimension of one value declaration (struct
// field, package const or var): the canonical unit expression.
type ValueFact struct {
	Unit string `json:"unit"`
}

// FuncFact is the exported dimensions of a function, method, interface
// method or named func type: parameter units by name and result units by
// index (as a decimal string, for JSON friendliness).
type FuncFact struct {
	Params  map[string]string `json:"params,omitempty"`
	Results map[string]string `json:"results,omitempty"`
}

func run(pass *analysis.Pass) error {
	an := collect(pass)
	inf := &inferencer{pass: pass, an: an, factFuncs: map[string]*funcUnits{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				inf.checkFuncDecl(d)
			case *ast.GenDecl:
				if d.Tok == token.VAR || d.Tok == token.CONST {
					inf.checkPackageValues(d)
				}
			}
		}
	}
	return nil
}

// CountDeclaredDims tallies how many declarations carry a unit in the
// fact store, restricted to the given package paths (all packages when
// none are given). A value fact counts one; a func fact counts one per
// annotated parameter and result. The acceptance test for this analyzer
// asserts a floor across rc, spice and elmore.
func CountDeclaredDims(f *analysis.Facts, pkgs ...string) int {
	if len(pkgs) == 0 {
		pkgs = f.Packages()
	}
	type anyFact struct {
		Unit    string            `json:"unit"`
		Params  map[string]string `json:"params"`
		Results map[string]string `json:"results"`
	}
	n := 0
	for _, pkg := range pkgs {
		for _, key := range f.PkgKeys(pkg) {
			var af anyFact
			if !f.Import(key, &af) {
				continue
			}
			if af.Unit != "" {
				n++
			}
			n += len(af.Params) + len(af.Results)
		}
	}
	return n
}
