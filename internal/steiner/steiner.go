// Package steiner implements the Iterated 1-Steiner heuristic of Kahng and
// Robins, the Steiner-tree construction the paper prescribes for Step 1 of
// its SLDRG algorithm ("an efficient implementation of the Iterated
// 1-Steiner algorithm of Kahng and Robins may be used").
//
// The heuristic repeatedly finds the single Hanan-grid point whose addition
// most reduces the MST cost of the current point set, adds it, and repeats
// until no point yields a positive saving. Unused (low-degree) Steiner
// points are then pruned. Iterated 1-Steiner averages within a few percent
// of optimal rectilinear Steiner minimal trees.
package steiner

import (
	"errors"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
)

// Options tunes the Iterated 1-Steiner run.
type Options struct {
	// MaxSteinerPoints bounds how many Steiner points may be added;
	// 0 means no explicit bound (the algorithm terminates anyway because
	// each accepted point strictly reduces MST cost; at most k−2 Steiner
	// points are ever useful).
	MaxSteinerPoints int
	// RegenerateCandidates recomputes the Hanan grid after each accepted
	// Steiner point (over pins plus accepted points). The original
	// algorithm uses the pins' grid; regeneration explores a slightly
	// larger space at extra cost.
	RegenerateCandidates bool
}

// ErrTooFewPins mirrors the MST requirement of at least two points.
var ErrTooFewPins = errors.New("steiner: need at least two pins")

// Tree runs Iterated 1-Steiner over the pins and returns a Steiner tree
// topology: nodes 0..len(pins)-1 are the pins (node 0 the source), and the
// surviving Steiner points follow. The result is always a tree spanning
// every pin.
func Tree(pins []geom.Point, opts Options) (*graph.Topology, error) {
	if len(pins) < 2 {
		return nil, ErrTooFewPins
	}

	points := make([]geom.Point, len(pins))
	copy(points, pins)
	numPins := len(pins)

	candidates := geom.HananGrid(points)
	baseCost := mst.Cost(points)

	for {
		if opts.MaxSteinerPoints > 0 && len(points)-numPins >= opts.MaxSteinerPoints {
			break
		}
		bestGain := 0.0
		bestIdx := -1
		for i, c := range candidates {
			gain := baseCost - mst.Cost(append(points, c))
			if gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		points = append(points, candidates[bestIdx])
		baseCost -= bestGain
		if opts.RegenerateCandidates {
			candidates = geom.HananGrid(points)
		} else {
			candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		}
	}

	return assemble(points, numPins)
}

// assemble builds the MST over pins+Steiner points, prunes useless Steiner
// points (degree ≤ 2), and returns the compacted topology.
func assemble(points []geom.Point, numPins int) (*graph.Topology, error) {
	spanning, err := mst.Prim(points)
	if err != nil {
		return nil, err
	}
	t := graph.NewTopologyWithSteiner(points[:numPins], points[numPins:])
	for _, e := range spanning.Edges() {
		if err := t.AddEdge(e); err != nil {
			return nil, err
		}
	}
	Prune(t)
	compacted, _ := t.Compact()
	return compacted, nil
}

// Prune removes Steiner points that do not genuinely branch the tree:
// degree-1 Steiner leaves are deleted outright, and degree-2 Steiner
// pass-throughs are shorted (their two edges replaced by a direct edge,
// which in the Manhattan metric never increases cost). Pruned nodes are
// left isolated; callers typically follow with Topology.Compact.
//
// Prune operates on trees; on general graphs it still terminates but only
// simplifies tree-like fringes.
func Prune(t *graph.Topology) {
	changed := true
	for changed {
		changed = false
		for n := t.NumPins(); n < t.NumNodes(); n++ {
			switch t.Degree(n) {
			case 1:
				nb := t.Neighbors(n)[0]
				if err := t.RemoveEdge(graph.Edge{U: n, V: nb}); err == nil {
					changed = true
				}
			case 2:
				a, b := t.Neighbors(n)[0], t.Neighbors(n)[1]
				if a == b {
					continue
				}
				ea := graph.Edge{U: a, V: n}
				eb := graph.Edge{U: n, V: b}
				bridge := graph.Edge{U: a, V: b}.Canon()
				if t.HasEdge(bridge) || t.ZeroLength(bridge) {
					continue
				}
				if err := t.RemoveEdge(ea); err != nil {
					continue
				}
				if err := t.RemoveEdge(eb); err != nil {
					// Restore and give up on this node.
					_ = t.AddEdge(ea)
					continue
				}
				if err := t.AddEdge(bridge); err != nil {
					_ = t.AddEdge(ea)
					_ = t.AddEdge(eb)
					continue
				}
				changed = true
			}
		}
	}
}
