package expt

import (
	"fmt"
	"io"
	//nontree:allow nondetsource design generation only; the stream is seeded per design from cfg.Seed, so every experiment is a pure function of its config
	"math/rand"

	"nontree/internal/core"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/stats"
	"nontree/sta"
)

// The timing experiment quantifies the Section 5.1 workflow statistically:
// random combinational designs (a chain of gates with fan-out, every net a
// random multi-pin net) are routed with MSTs, analyzed, and the critical
// net is iteratively re-routed with criticality-weighted LDRG. The metric
// is the design's minimum feasible clock period.

// TimingResult summarizes the timing experiment.
type TimingResult struct {
	// Designs is the number of random designs analyzed.
	Designs int
	// NetsPerDesign and PinsPerNet describe the workload.
	NetsPerDesign, PinsPerNet int
	// ClockRatios holds, per design, final/initial minimum clock period.
	ClockRatios []float64
	// MeanClockRatio and MeanWireRatio aggregate the runs.
	MeanClockRatio, MeanWireRatio float64
	// MeanIterations is the average number of re-routed nets.
	MeanIterations float64
}

// Timing runs the experiment. Each design is a chain of numNets-1 gates:
// PI → net0 → G1 → net1 → … → G_{k-1} → net_{k-1} → PO, where each gate's
// input taps a random sink of the preceding net and the last net's random
// sink is the primary output — so interconnect delay on every net matters.
func Timing(cfg Config, designs, numNets, pinsPerNet int) (*TimingResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if designs < 1 || numNets < 1 || pinsPerNet < 3 {
		return nil, fmt.Errorf("expt: timing experiment needs designs ≥ 1, nets ≥ 1, pins ≥ 3")
	}

	res := &TimingResult{
		Designs:       designs,
		NetsPerDesign: numNets,
		PinsPerNet:    pinsPerNet,
	}
	var wireRatios, iters float64

	for d := 0; d < designs; d++ {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(d)))

		nets := make([]*netlist.Net, numNets)
		topos := make([]*graph.Topology, numNets)
		for i := range nets {
			gen := netlist.NewGenerator(rng.Int63())
			var err error
			nets[i], err = gen.Generate(pinsPerNet)
			if err != nil {
				return nil, err
			}
			topos[i], err = mst.Prim(nets[i].Pins)
			if err != nil {
				return nil, err
			}
		}

		design := &sta.Design{
			NumNets:       numNets,
			SinkCount:     make([]int, numNets),
			NetDelay:      make([][]float64, numNets),
			PrimaryInputs: []int{0},
		}
		for i := range design.SinkCount {
			design.SinkCount[i] = pinsPerNet - 1
		}
		for g := 0; g < numNets-1; g++ {
			design.Gates = append(design.Gates, sta.Gate{
				Name:   fmt.Sprintf("G%d", g+1),
				Delay:  0.2e-9,
				FanIn:  []sta.PinRef{{Net: g, Sink: rng.Intn(pinsPerNet - 1)}},
				Drives: g + 1,
			})
		}
		design.PrimaryOutputs = []sta.PinRef{{Net: numNets - 1, Sink: rng.Intn(pinsPerNet - 1)}}

		measure := func() (*sta.Timing, error) {
			for i, topo := range topos {
				sinks, _, err := cfg.measureSinks(topo, nil)
				if err != nil {
					return nil, err
				}
				design.NetDelay[i] = sinks
			}
			// The clock period constraint is irrelevant to WorstArrival;
			// use a loose one.
			return design.Analyze(1)
		}

		before, err := measure()
		if err != nil {
			return nil, err
		}
		initialWire := 0.0
		for _, topo := range topos {
			initialWire += topo.Cost()
		}

		timing := before
		rerouted := map[int]bool{}
		iterations := 0
		for len(rerouted) < numNets {
			criticalNet, _ := sta.MostCriticalNet(timing)
			if rerouted[criticalNet] {
				break
			}
			rerouted[criticalNet] = true
			alphas := sta.Criticalities(timing, criticalNet, false)
			r, err := core.CriticalSinkLDRG(topos[criticalNet], alphas, cfg.ldrgOptions(0))
			if err != nil {
				return nil, err
			}
			topos[criticalNet] = r.Topology
			next, err := measure()
			if err != nil {
				return nil, err
			}
			iterations++
			if next.WorstArrival >= timing.WorstArrival {
				timing = next
				break
			}
			timing = next
		}

		finalWire := 0.0
		for _, topo := range topos {
			finalWire += topo.Cost()
		}
		res.ClockRatios = append(res.ClockRatios, timing.WorstArrival/before.WorstArrival)
		wireRatios += finalWire / initialWire
		iters += float64(iterations)
	}

	res.MeanClockRatio = stats.Mean(res.ClockRatios)
	res.MeanWireRatio = wireRatios / float64(designs)
	res.MeanIterations = iters / float64(designs)
	return res, nil
}

// Render writes the timing experiment summary.
func (r *TimingResult) Render(w io.Writer) {
	fmt.Fprintf(w, "ext-timing — iterative critical-net re-routing (Section 5.1 workflow)\n")
	fmt.Fprintf(w, "  %d designs × %d nets × %d pins: mean clock ratio %.3f (%.1f%% faster), wire ×%.3f, %.1f re-routes/design\n",
		r.Designs, r.NetsPerDesign, r.PinsPerNet,
		r.MeanClockRatio, 100*(1-r.MeanClockRatio), r.MeanWireRatio, r.MeanIterations)
}
