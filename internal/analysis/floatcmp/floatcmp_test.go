package floatcmp_test

import (
	"testing"

	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for _, path := range []string{
		"nontree/internal/core",
		"nontree/internal/elmore",
		"nontree/internal/expt",
	} {
		if !floatcmp.Analyzer.InScope(path) {
			t.Errorf("expected %s in scope", path)
		}
	}
	// The numerical kernels compare pivots and residuals exactly on
	// purpose; the epsilon helper itself must be free to use ==.
	for _, path := range []string{
		"nontree/internal/linalg",
		"nontree/internal/spice",
		"nontree/internal/fpcmp",
	} {
		if floatcmp.Analyzer.InScope(path) {
			t.Errorf("expected %s out of scope", path)
		}
	}
}
