package core

import (
	"fmt"

	"nontree/internal/graph"
)

// CleanupResult reports a cost-recovery pass.
type CleanupResult struct {
	// Topology is the cleaned routing graph (input is not mutated).
	Topology *graph.Topology
	// RemovedEdges lists edges deleted, in removal order.
	RemovedEdges []graph.Edge
	// InitialObjective and FinalObjective bracket the pass.
	InitialObjective, FinalObjective float64
	// CostRecovered is the wirelength saved (µm).
	CostRecovered float64
	// Evaluations counts oracle calls.
	Evaluations int
}

// Cleanup is a cost-recovery post-pass for non-tree routings: once LDRG has
// added shortcut wires, some original tree edges may carry little current —
// removing them saves wire, and occasionally even improves delay (less
// capacitance). The pass greedily removes the edge that saves the most wire
// among those whose removal keeps the graph connected and does not worsen
// the objective by more than slack (relative; 0 = strict non-degradation).
//
// This is the natural complement to the paper's edge-addition greedy: where
// LDRG explores tree → graph, Cleanup walks back graph → cheaper graph. On
// pure trees it removes nothing (every edge is a bridge).
func Cleanup(seed *graph.Topology, slack float64, opts Options) (*CleanupResult, error) {
	if err := checkSeed(seed, &opts); err != nil {
		return nil, err
	}
	if slack < 0 {
		return nil, fmt.Errorf("core: cleanup slack %g must be non-negative", slack)
	}
	t := seed.Clone()
	obj := opts.objective()
	res := &CleanupResult{Topology: t}

	eval := func() (float64, error) {
		delays, err := opts.Oracle.SinkDelays(t, opts.Width)
		if err != nil {
			return 0, err
		}
		res.Evaluations++
		return obj.Eval(delays, t.NumPins())
	}

	cur, err := eval()
	if err != nil {
		return nil, fmt.Errorf("core: cleanup initial evaluation: %w", err)
	}
	res.InitialObjective = cur
	budget := cur * (1 + slack)

	for {
		bestEdge := graph.Edge{U: -1, V: -1}
		bestSaving := 0.0
		bestVal := 0.0
		for _, e := range t.Edges() {
			if err := t.RemoveEdge(e); err != nil {
				return nil, err
			}
			ok := t.Connected()
			var val float64
			if ok {
				val, err = eval()
				if err != nil {
					_ = t.AddEdge(e)
					return nil, fmt.Errorf("core: cleanup evaluating removal of %v: %w", e, err)
				}
			}
			if err := t.AddEdge(e); err != nil {
				return nil, fmt.Errorf("core: cleanup restoring %v: %w", e, err)
			}
			if !ok || val > budget {
				continue
			}
			if saving := t.EdgeLength(e); saving > bestSaving {
				bestSaving = saving
				bestEdge = e
				bestVal = val
			}
		}
		if bestEdge.U < 0 {
			break
		}
		if err := t.RemoveEdge(bestEdge); err != nil {
			return nil, err
		}
		res.RemovedEdges = append(res.RemovedEdges, bestEdge)
		res.CostRecovered += bestSaving
		cur = bestVal
	}

	res.FinalObjective = cur
	return res, nil
}
