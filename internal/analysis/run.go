package analysis

import (
	"fmt"
	"io"
	"sort"
)

// Run loads the packages matched by patterns (resolved in dir, or the
// working directory when dir is empty), applies every analyzer whose Scope
// matches each package, writes the sorted diagnostics to w, and returns
// them. A non-nil error reports an operational failure (unparseable source,
// type errors, go list failure) — not findings.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	return RunFacts(w, dir, analyzers, nil, patterns...)
}

// RunFacts is Run with caller-visible fact stores: facts[name] is the
// store handed to the analyzer of that name for every package of the run
// (missing entries are created), so callers can inspect or persist what
// an analyzer exported — nontree-lint's -factdir sidecar dump and the
// fact-count acceptance test both use this. Packages are analyzed in
// dependency order (Loader.Load), which is what makes cross-package fact
// propagation sound.
func RunFacts(w io.Writer, dir string, analyzers []*Analyzer, facts map[string]*Facts, patterns ...string) ([]Diagnostic, error) {
	loader := NewLoader()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return runLoaded(w, pkgs, analyzers, facts)
}

// runLoaded applies the analyzers to already-loaded packages, printing and
// returning the sorted diagnostics.
func runLoaded(w io.Writer, pkgs []*Package, analyzers []*Analyzer, facts map[string]*Facts) ([]Diagnostic, error) {
	if facts == nil {
		facts = map[string]*Facts{}
	}
	for _, a := range analyzers {
		if facts[a.Name] == nil {
			facts[a.Name] = NewFacts()
		}
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.InScope(pkg.Path) {
				continue
			}
			ds, err := RunAnalyzerFacts(a, pkg, facts[a.Name])
			if err != nil {
				return nil, err
			}
			all = append(all, ds...)
		}
	}
	SortDiagnostics(all)
	for _, d := range all {
		fmt.Fprintln(w, d)
	}
	return all, nil
}

// StaleAllow is one //nontree:allow annotation that cannot be suppressing
// anything: its analyzer is unknown, it lacks the mandatory justification,
// the named analyzer never runs on its package, or the analyzer ran and
// reported nothing the entry had to absorb. Stale entries are rot — the
// contract they document an exemption from is no longer (or never was)
// violated there — and nontree-lint -staleallow fails on them.
type StaleAllow struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
}

func (s StaleAllow) String() string {
	return fmt.Sprintf("%s:%d: stale //nontree:allow %s: %s", s.File, s.Line, s.Analyzer, s.Reason)
}

// RunStale is RunFacts followed by a staleness sweep over every
// //nontree:allow annotation in the loaded packages. The diagnostics and
// error have RunFacts semantics; the returned stale list is sorted by
// position.
func RunStale(w io.Writer, dir string, analyzers []*Analyzer, facts map[string]*Facts, patterns ...string) ([]Diagnostic, []StaleAllow, error) {
	loader := NewLoader()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	diags, err := runLoaded(w, pkgs, analyzers, facts)
	if err != nil {
		return nil, nil, err
	}
	return diags, staleAllows(pkgs, analyzers), nil
}

// Result is the full outcome of a RunAudit: unsuppressed diagnostics,
// the findings //nontree:allow annotations absorbed, the annotations that
// absorbed nothing, and how many packages were analyzed. It is the single
// source for nontree-lint's text, -json, and -annotations outputs.
type Result struct {
	// Diags are the unsuppressed diagnostics, sorted by position.
	Diags []Diagnostic
	// Suppressed are diagnostics an annotation absorbed, sorted.
	Suppressed []Diagnostic
	// Stale are the annotations that suppress nothing, sorted.
	Stale []StaleAllow
	// Packages is the number of packages loaded and analyzed.
	Packages int
}

// RunAudit is the superset driver: RunFacts plus suppressed-diagnostic
// capture plus the staleness sweep, in one load. Unsuppressed diagnostics
// are printed to w as they are in Run; everything else is only returned.
func RunAudit(w io.Writer, dir string, analyzers []*Analyzer, facts map[string]*Facts, patterns ...string) (Result, error) {
	loader := NewLoader()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return Result{}, err
	}
	if facts == nil {
		facts = map[string]*Facts{}
	}
	for _, a := range analyzers {
		if facts[a.Name] == nil {
			facts[a.Name] = NewFacts()
		}
	}
	res := Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.InScope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts[a.Name],
				allow:    pkg.allowIdx(),
				report:   func(d Diagnostic) { res.Diags = append(res.Diags, d) },
				suppressed: func(d Diagnostic) {
					res.Suppressed = append(res.Suppressed, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return Result{}, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(res.Diags)
	SortDiagnostics(res.Suppressed)
	for _, d := range res.Diags {
		fmt.Fprintln(w, d)
	}
	res.Stale = staleAllows(pkgs, analyzers)
	return res, nil
}

// staleAllows sweeps the allow indexes the run populated. It must run
// after every analyzer has been applied to every package — usage marks
// accumulate on the shared per-package index.
func staleAllows(pkgs []*Package, analyzers []*Analyzer) []StaleAllow {
	known := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = a
	}
	var out []StaleAllow
	for _, pkg := range pkgs {
		for file, lines := range pkg.allowIdx() {
			for _, entries := range lines {
				for _, e := range entries {
					reason := ""
					switch a, ok := known[e.analyzer]; {
					case e.justification == "":
						reason = "missing justification, so it suppresses nothing"
					case !ok:
						reason = "no analyzer by that name in this run"
					case !a.InScope(pkg.Path):
						reason = fmt.Sprintf("analyzer is not in scope for %s", pkg.Path)
					case !e.used:
						reason = "matches no diagnostic"
					}
					if reason != "" {
						out = append(out, StaleAllow{
							File:     file,
							Line:     e.line,
							Analyzer: e.analyzer,
							Reason:   reason,
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
