package pdtree

import (
	"math"
	"testing"
	"testing/quick"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
)

func sourceRadius(pins []geom.Point) float64 {
	r := 0.0
	for v := 1; v < len(pins); v++ {
		if d := geom.Dist(pins[0], pins[v]); d > r {
			r = d
		}
	}
	return r
}

func TestBRBCProvableBoundsProperty(t *testing.T) {
	// The whole point of BRBC: radius ≤ (1+ε)·R and cost ≤ (1+2/ε)·MST.
	f := func(seed int64) bool {
		pins := pinsFor(t, seed, 12)
		r := sourceRadius(pins)
		mstCost := mst.Cost(pins)
		for _, eps := range []float64{0.25, 0.5, 1, 2} {
			topo, err := BRBC(pins, eps)
			if err != nil {
				return false
			}
			if !topo.IsTree() {
				return false
			}
			rad, err := Radius(topo)
			if err != nil {
				return false
			}
			if rad > (1+eps)*r*(1+1e-9) {
				t.Logf("seed %d eps %v: radius %.1f > (1+ε)R = %.1f", seed, eps, rad, (1+eps)*r)
				return false
			}
			if topo.Cost() > (1+2/eps)*mstCost*(1+1e-9) {
				t.Logf("seed %d eps %v: cost %.1f > (1+2/ε)MST = %.1f",
					seed, eps, topo.Cost(), (1+2/eps)*mstCost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBRBCLargeEpsilonApproachesMST(t *testing.T) {
	pins := pinsFor(t, 5, 15)
	topo, err := BRBC(pins, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	// With ε huge no shortcut is ever added; the SPT of the MST is the MST
	// itself (unique paths).
	if math.Abs(topo.Cost()-mst.Cost(pins)) > 1e-6 {
		t.Errorf("ε→∞ cost %.1f != MST %.1f", topo.Cost(), mst.Cost(pins))
	}
}

func TestBRBCSmallEpsilonApproachesMinRadius(t *testing.T) {
	pins := pinsFor(t, 7, 12)
	topo, err := BRBC(pins, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rad, err := Radius(topo)
	if err != nil {
		t.Fatal(err)
	}
	r := sourceRadius(pins)
	if rad > 1.02*r {
		t.Errorf("ε→0 radius %.1f not near the minimum %.1f", rad, r)
	}
}

func TestBRBCMonotoneTradeoff(t *testing.T) {
	// Radius bound tightens and cost bound loosens as ε shrinks; verify
	// the realized values respect the endpoints' ordering statistically.
	pins := pinsFor(t, 9, 15)
	tight, err := BRBC(pins, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := BRBC(pins, 4)
	if err != nil {
		t.Fatal(err)
	}
	rTight, _ := Radius(tight)
	rLoose, _ := Radius(loose)
	if rTight > rLoose+1e-9 {
		t.Errorf("smaller ε should not yield larger radius: %.1f vs %.1f", rTight, rLoose)
	}
	if tight.Cost() < loose.Cost()-1e-9 {
		t.Errorf("smaller ε should not yield cheaper tree: %.1f vs %.1f", tight.Cost(), loose.Cost())
	}
}

func TestBRBCValidation(t *testing.T) {
	pins := pinsFor(t, 1, 5)
	if _, err := BRBC(pins, 0); err == nil {
		t.Error("ε = 0 must be rejected")
	}
	if _, err := BRBC(pins[:1], 1); err != ErrTooFewPins {
		t.Error("single pin must be rejected")
	}
}

func TestEulerTourCoversEveryEdgeTwice(t *testing.T) {
	pins := pinsFor(t, 3, 10)
	topo, err := primTopology(pins)
	if err != nil {
		t.Fatal(err)
	}
	tour := eulerTour(topo, 0)
	if len(tour) != 2*topo.NumEdges()+1 {
		t.Fatalf("tour length %d, want %d", len(tour), 2*topo.NumEdges()+1)
	}
	if tour[0] != 0 || tour[len(tour)-1] != 0 {
		t.Error("tour must start and end at the root")
	}
	counts := map[graph.Edge]int{}
	for i := 1; i < len(tour); i++ {
		counts[graph.Edge{U: tour[i-1], V: tour[i]}.Canon()]++
	}
	for _, e := range topo.Edges() {
		if counts[e] != 2 {
			t.Errorf("edge %v walked %d times", e, counts[e])
		}
	}
}
