package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"

	"nontree/internal/graph"
	"nontree/internal/obs"
	"nontree/internal/rc"
	"nontree/internal/trace"
)

// Options configures the LDRG greedy loop and the heuristics.
type Options struct {
	// Oracle estimates delays; required.
	Oracle DelayOracle
	// Objective scores a topology; nil selects MaxDelayObjective (the ORG
	// problem). Supplying WeightedDelayObjective yields the CSORG variant.
	Objective Objective
	// MaxAddedEdges bounds how many edges the greedy loop may add; 0 means
	// run to convergence (the paper's termination: "when no further delay
	// improvement is possible").
	MaxAddedEdges int
	// MinImprovement is the minimum relative objective improvement an edge
	// must deliver to be accepted (guards against floating-point noise
	// accepting meaningless edges). Default 1e-9.
	MinImprovement float64
	// Width supplies wire widths to the oracle (nil = unit widths). The
	// greedy loop holds widths fixed; see WireSize for width optimization.
	Width rc.WidthFunc
	// CandidateFilter, when non-nil, vetoes candidate edges before they
	// are evaluated: return false to exclude the edge. The topology passed
	// in is the current routing *without* the candidate. Use it for
	// routability constraints — e.g. embed.PlanarFilter rejects edges
	// whose rectilinear embedding would cross existing wires.
	CandidateFilter func(t *graph.Topology, e graph.Edge) bool
	// Workers bounds the goroutines evaluating candidates concurrently
	// inside each greedy sweep. 0 selects runtime.GOMAXPROCS(0); 1 forces
	// the exact sequential legacy path. Any value yields byte-identical
	// Results: every candidate is scored on a private Topology clone and
	// the winner is chosen by (objective, then canonical edge order), the
	// same tie-breaking the sequential scan applies. Oracles must be safe
	// for concurrent SinkDelays calls when Workers != 1 (all oracles in
	// this package are; see DelayOracle). Workers only governs full-solve
	// sweeps: incremental sweeps (see Scoring) are sequential by design
	// and ignore it.
	Workers int
	// Scoring selects how sweeps evaluate candidates: ScoringAuto (the
	// zero value) scores candidates as rank-one perturbations with
	// lower-bound pruning whenever the oracle supports it (only
	// ElmoreOracle does), falling back to per-candidate full solves
	// otherwise; ScoringFull forces the full-solve path; see the Scoring
	// constants. Both modes produce byte-identical Results — only
	// Evaluations (full solves are ~one per sweep instead of one per
	// candidate) and the trace's candidate-level events differ.
	Scoring Scoring
	// Obs receives counters and span timings from the run (nil = discard).
	// Counters and histograms are deterministic for a fixed seed at any
	// Workers value; wall-clock timings land in the recorder's Timings
	// section, which the determinism guarantee excludes (DESIGN.md §10).
	Obs obs.Recorder
	// Trace receives the structured decision trace of the run (nil =
	// discard): sweep starts, per-candidate scores, accepted and rejected
	// edges. All events are emitted from deterministic program points —
	// in parallel sweeps, after the deterministic reduction and in
	// canonical candidate order — so for a fixed seed the deterministic
	// event fields are byte-identical at any Workers value (DESIGN.md §11).
	Trace trace.Tracer
	// RequestID tags the run with the serve-layer request identity
	// ("" outside the daemon). Provenance only: it is copied into oracle
	// error tags and the daemon's wide event, never read by any sweep
	// decision (DESIGN.md §16).
	RequestID string
}

func (o *Options) objective() Objective {
	if o.Objective == nil {
		return MaxDelayObjective{}
	}
	return o.Objective
}

func (o *Options) minImprovement() float64 {
	if o.MinImprovement <= 0 {
		return 1e-9
	}
	return o.MinImprovement
}

func (o *Options) workers() int { return workerCount(o.Workers) }

func (o *Options) obs() obs.Recorder { return obs.OrNop(o.Obs) }

func (o *Options) trace() trace.Tracer { return trace.OrNop(o.Trace) }

// workerCount resolves a Workers knob: 0 = one per CPU, anything below 1 is
// clamped to sequential.
func workerCount(w int) int {
	if w == 0 {
		//nontree:allow nondetsource sizes the sweep pool only; the deterministic reduction makes results identical for any worker count (DESIGN.md §7)
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// Result reports an algorithm run.
type Result struct {
	// Topology is the final routing graph (the seed topology is never
	// mutated; Topology is an independent copy).
	Topology *graph.Topology
	// AddedEdges lists the accepted extra edges in acceptance order.
	AddedEdges []graph.Edge
	// InitialObjective and FinalObjective are oracle scores of the seed and
	// final topologies.
	InitialObjective, FinalObjective float64
	// Trace holds the objective after the seed and after each accepted edge
	// (len == len(AddedEdges)+1).
	Trace []float64
	// Evaluations counts oracle invocations, the dominant cost.
	Evaluations int
}

// Improved reports whether the run strictly improved on the seed.
func (r *Result) Improved() bool { return r.FinalObjective < r.InitialObjective }

// Fingerprint renders the result's decision content in a canonical,
// bit-exact text form: the accepted edges, the objective trajectory as hex
// float literals, and the final topology's edge list. Two runs that made
// identical decisions produce identical fingerprints. Evaluations is
// deliberately excluded — it measures how hard the oracle worked, not what
// was decided, and differs between scoring modes by design.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	b.WriteString("added=")
	for i, e := range r.AddedEdges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", e.U, e.V)
	}
	fmt.Fprintf(&b, "\ninitial=%s\nfinal=%s\ntrace=",
		strconv.FormatFloat(r.InitialObjective, 'x', -1, 64),
		strconv.FormatFloat(r.FinalObjective, 'x', -1, 64))
	for i, v := range r.Trace {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	b.WriteString("\nedges=")
	if r.Topology != nil {
		for i, e := range r.Topology.Edges() {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d-%d", e.U, e.V)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// errors from algorithm entry points.
var (
	ErrNilOracle   = errors.New("core: Options.Oracle must not be nil")
	ErrSeedNil     = errors.New("core: seed topology must not be nil")
	ErrSeedInvalid = errors.New("core: seed topology must be connected")
)

// LDRG runs the Low Delay Routing Graph algorithm (paper Figure 4): starting
// from the seed topology (classically the MST), repeatedly add the absent
// edge that most improves the objective, until no edge improves it.
//
// The paper's formulation evaluates t(·) with SPICE; the oracle choice in
// opts selects between that reference behaviour and the fast Elmore model.
func LDRG(seed *graph.Topology, opts Options) (_ *Result, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	if err := checkSeed(seed, &opts); err != nil {
		return nil, err
	}
	t := seed.Clone()
	obj := opts.objective()

	res := &Result{Topology: t}
	cur, err := score(t, &opts, obj, res)
	if err != nil {
		return nil, fmt.Errorf("core: scoring seed topology: %w", err)
	}
	res.InitialObjective = cur
	res.Trace = append(res.Trace, cur)

	eng, err := newSweepEngine(t, opts.Oracle, opts.Width, obj, opts.Scoring, opts.Obs)
	if err != nil {
		return nil, err
	}

	for sweep := 1; ; sweep++ {
		if opts.MaxAddedEdges > 0 && len(res.AddedEdges) >= opts.MaxAddedEdges {
			break
		}
		bestEdge, bestVal, found, err := bestAddition(t, &opts, obj, cur, res, sweep, eng)
		if err != nil {
			return nil, err
		}
		if !found {
			break
		}
		if err := t.AddEdge(bestEdge); err != nil {
			return nil, fmt.Errorf("core: committing edge %v: %w", bestEdge, err)
		}
		if err := eng.refactor(); err != nil {
			return nil, fmt.Errorf("core: refactoring after edge %v: %w", bestEdge, err)
		}
		res.AddedEdges = append(res.AddedEdges, bestEdge)
		res.Trace = append(res.Trace, bestVal)
		opts.obs().Add(obs.CtrAcceptedEdges, 1)
		opts.trace().Emit(trace.Event{Kind: trace.KindEdgeAccepted, Sweep: sweep,
			U: bestEdge.U, V: bestEdge.V, Before: cur, After: bestVal})
		cur = bestVal
	}

	res.FinalObjective = cur
	return res, nil
}

// candidateEdges returns the absent edges the greedy sweep should evaluate,
// in canonical sorted order (the order that fixes tie-breaking).
func candidateEdges(t *graph.Topology, opts *Options) []graph.Edge {
	var out []graph.Edge
	for _, e := range t.AbsentEdges() {
		// Edges to isolated Steiner nodes are dead stubs: they only add
		// capacitance (or even disconnect islands). Such nodes exist while
		// LDRGWithTaps evaluates tap candidates.
		if (t.IsSteiner(e.U) && t.Degree(e.U) == 0) ||
			(t.IsSteiner(e.V) && t.Degree(e.V) == 0) {
			continue
		}
		if opts.CandidateFilter != nil && !opts.CandidateFilter(t, e) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// bestAddition scans every absent edge, returning the one with the lowest
// objective if it beats cur by the improvement threshold. With a non-nil
// engine the scan scores candidates incrementally (sequential, pruned; see
// incremental.go); otherwise with Workers != 1 it fans out over a worker
// pool (see parallel.go). All paths keep the sequential scan's selection
// rule so results are identical.
func bestAddition(t *graph.Topology, opts *Options, obj Objective, cur float64, res *Result, sweep int, eng *sweepEngine) (graph.Edge, float64, bool, error) {
	cands := candidateEdges(t, opts)
	rec := opts.obs()
	rec.Add(obs.CtrSweeps, 1)
	rec.Add(obs.CtrSweepCandidates, int64(len(cands)))
	rec.Observe(obs.HistSweepCandidates, float64(len(cands)))
	tr := opts.trace()
	tr.Emit(trace.Event{Kind: trace.KindSweepStart, Sweep: sweep, N: int64(len(cands))})
	span := obs.StartSpan(rec, obs.TimeSweep)
	defer span.End()
	if eng != nil {
		return bestAdditionIncremental(t, opts, obj, cur, res, cands, sweep, eng)
	}
	if w := opts.workers(); w > 1 && len(cands) > 1 {
		return bestAdditionParallel(t, opts, obj, cur, res, cands, sweep)
	}
	bestVal := cur
	var bestEdge graph.Edge
	found := false
	threshold := cur * (1 - opts.minImprovement())
	minIdx, minVal := -1, math.Inf(1)

	for i, e := range cands {
		if err := t.AddEdge(e); err != nil {
			return graph.Edge{}, 0, false, fmt.Errorf("core: trying edge %v: %w", e, err)
		}
		val, err := score(t, opts, obj, res)
		rmErr := t.RemoveEdge(e)
		if err != nil {
			return graph.Edge{}, 0, false, fmt.Errorf("core: evaluating edge %v: %w", e, err)
		}
		if rmErr != nil {
			return graph.Edge{}, 0, false, fmt.Errorf("core: reverting edge %v: %w", e, rmErr)
		}
		tr.Emit(trace.Event{Kind: trace.KindCandidateScored, Sweep: sweep, Index: i,
			U: e.U, V: e.V, Value: val})
		if val < minVal {
			minIdx, minVal = i, val
		}
		if val < bestVal && val < threshold {
			bestVal = val
			bestEdge = e
			found = true
		}
	}
	if !found && minIdx >= 0 {
		tr.Emit(trace.Event{Kind: trace.KindEdgeRejected, Sweep: sweep,
			U: cands[minIdx].U, V: cands[minIdx].V, Value: minVal, Before: cur,
			Reason: trace.ReasonNoImprovement})
	}
	return bestEdge, bestVal, found, nil
}

// scoreTopology is the oracle+objective evaluation with no side effects —
// safe to call concurrently on distinct topologies.
func scoreTopology(t *graph.Topology, opts *Options, obj Objective) (float64, error) {
	delays, err := opts.Oracle.SinkDelays(t, opts.Width)
	if err != nil {
		return 0, err
	}
	return obj.Eval(delays, t.NumPins())
}

func score(t *graph.Topology, opts *Options, obj Objective, res *Result) (float64, error) {
	val, err := scoreTopology(t, opts, obj)
	if err != nil {
		return 0, err
	}
	res.Evaluations++
	opts.obs().Add(obs.CtrOracleEvaluations, 1)
	return val, nil
}

func checkSeed(seed *graph.Topology, opts *Options) error {
	if seed == nil {
		return ErrSeedNil
	}
	if opts.Oracle == nil {
		return ErrNilOracle
	}
	if !seed.Connected() {
		return ErrSeedInvalid
	}
	return nil
}
