package sim

import (
	"errors"
	"math"
	"net/http"
	"strings"
	"testing"

	"nontree/internal/obs"
	"nontree/internal/serve"
)

// testWorkload generates a small, fast stream: few keys, 3-pin nets, the
// cheap h1 heuristic.
func testWorkload(t *testing.T, requests int) *Workload {
	t.Helper()
	w, err := Generate(WorkloadSpec{
		Seed:     7,
		Requests: requests,
		QPS:      1e6, // effectively unpaced in open-loop tests
		Keys:     4,
		PinMix:   []PinMix{{Pins: 3, Weight: 1}},
		Algo:     serve.AlgoH1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// driveInProcess runs a hermetic drive against a fresh server.
func driveInProcess(t *testing.T, w *Workload, opts DriveOptions) (*serve.Server, *Report) {
	t.Helper()
	srv := serve.New(serve.Options{MaxConcurrent: 4})
	opts.Transport = srv.InProcessTransport()
	report, err := Drive(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, report
}

// TestDriveClosedLoop is the happy path: every request succeeds and the
// client-side accounting is internally consistent.
func TestDriveClosedLoop(t *testing.T) {
	w := testWorkload(t, 24)
	reg := obs.NewRegistry()
	obs.PreregisterSim(reg)
	srv, report := driveInProcess(t, w, DriveOptions{Concurrency: 2, Metrics: reg})

	tot := report.Totals
	if tot.Requests != 24 || tot.OK != 24 || tot.Shed != 0 || tot.Errors != 0 {
		t.Fatalf("totals = %+v, want 24 clean successes", tot)
	}
	if tot.StatusCounts["200"] != 24 {
		t.Fatalf("status counts = %v, want 24×200", tot.StatusCounts)
	}
	if report.LatencyHistogram.Count != 24 {
		t.Fatalf("latency histogram holds %d samples, want 24", report.LatencyHistogram.Count)
	}
	if tot.Latency.Count != 24 || tot.Latency.P99 < tot.Latency.P50 {
		t.Fatalf("latency summary inconsistent: %+v", tot.Latency)
	}
	if tot.ThroughputQPS <= 0 || tot.WallSeconds <= 0 {
		t.Fatalf("throughput/wall not reported: %+v", tot)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.CtrSimRequests] != 24 || snap.Counters[obs.CtrSimOK] != 24 {
		t.Fatalf("sim counters not recorded: %v", snap.Counters)
	}
	if got := srv.Metrics().Snapshot().Counters[obs.CtrRouteRequests]; got != 24 {
		t.Fatalf("server saw %d route requests, want 24", got)
	}

	// The daemon's per-phase latency attribution lands in the report: all
	// 24 replies carried a breakdown, and the phase means decompose the
	// mean total exactly (each underlying breakdown sums exactly).
	if report.Phases == nil {
		t.Fatal("report carries no phase section")
	}
	p := report.Phases
	if p.Requests != 24 {
		t.Fatalf("phase section over %d requests, want 24", p.Requests)
	}
	if p.MeanTotalSeconds <= 0 {
		t.Fatalf("phase section total = %g", p.MeanTotalSeconds)
	}
	sum := p.MeanQueueSeconds + p.MeanDecodeSeconds + p.MeanSweepSeconds +
		p.MeanOracleSeconds + p.MeanStoreSeconds
	if math.Abs(sum-p.MeanTotalSeconds) > 1e-9 {
		t.Fatalf("phase means sum %g != mean total %g", sum, p.MeanTotalSeconds)
	}
}

// TestDriveOpenLoop floods an effectively unpaced schedule at a 1-slot
// server: the shed limiter must engage, and every request must still be
// accounted for as exactly one of ok/shed (zero errors).
func TestDriveOpenLoop(t *testing.T) {
	w := testWorkload(t, 32)
	srv := serve.New(serve.Options{MaxConcurrent: 1})
	report, err := Drive(w, DriveOptions{
		Transport: srv.InProcessTransport(),
		Mode:      ModeOpen,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := report.Totals
	if tot.Requests != 32 || tot.OK+tot.Shed+tot.Errors != 32 {
		t.Fatalf("totals don't cover the stream: %+v", tot)
	}
	if tot.Errors != 0 {
		t.Fatalf("open-loop flood produced %d errors (statuses %v), want sheds only", tot.Errors, tot.StatusCounts)
	}
	if tot.OK == 0 {
		t.Fatalf("no request succeeded: %+v", tot)
	}
	if tot.Shed != tot.StatusCounts["429"] {
		t.Fatalf("shed %d disagrees with 429 count %v", tot.Shed, tot.StatusCounts)
	}
	if report.Mode != ModeOpen {
		t.Fatalf("report mode = %q", report.Mode)
	}
}

// TestDriveRamp checks stage resolution: leftover requests extend the last
// stage and the whole stream is driven.
func TestDriveRamp(t *testing.T) {
	w := testWorkload(t, 20)
	_, report := driveInProcess(t, w, DriveOptions{
		Ramp: []RampStage{{Requests: 4, Concurrency: 1}, {Requests: 4, Concurrency: 2}},
	})
	if report.Totals.Requests != 20 || report.Totals.OK != 20 {
		t.Fatalf("ramp drive covered %d/%d requests", report.Totals.OK, report.Totals.Requests)
	}
}

// TestStages covers the ramp → stage schedule resolution directly.
func TestStages(t *testing.T) {
	cases := []struct {
		name  string
		opts  DriveOptions
		total int
		want  []RampStage
	}{
		{"flat", DriveOptions{Concurrency: 3}, 10, []RampStage{{10, 3}}},
		{"leftover-extends-last", DriveOptions{Ramp: []RampStage{{4, 1}, {4, 2}}}, 20, []RampStage{{4, 1}, {16, 2}}},
		{"overlong-ramp-trimmed", DriveOptions{Ramp: []RampStage{{8, 1}, {8, 2}}}, 10, []RampStage{{8, 1}, {2, 2}}},
		{"exact", DriveOptions{Ramp: []RampStage{{5, 1}, {5, 2}}}, 10, []RampStage{{5, 1}, {5, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.opts.stages(tc.total)
			if len(got) != len(tc.want) {
				t.Fatalf("stages = %v, want %v", got, tc.want)
			}
			var sum int
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("stages = %v, want %v", got, tc.want)
				}
				sum += got[i].Requests
			}
			if sum != tc.total {
				t.Fatalf("stages cover %d requests, want %d", sum, tc.total)
			}
		})
	}
}

// TestDriveScrape checks the before/after /metrics diff: driving N requests
// must show up as a positive serve-side request delta.
func TestDriveScrape(t *testing.T) {
	w := testWorkload(t, 8)
	_, report := driveInProcess(t, w, DriveOptions{Scrape: true})
	if report.Server == nil {
		t.Fatal("scrape requested but Server section missing")
	}
	const name = "nontree_serve_route_requests_total"
	if report.Server.Delta[name] != 8 {
		t.Fatalf("delta[%s] = %d, want 8 (full delta: %v)", name, report.Server.Delta[name], report.Server.Delta)
	}
	if report.Server.After[name]-report.Server.Before[name] != 8 {
		t.Fatalf("before/after disagree with delta: before=%v after=%v", report.Server.Before, report.Server.After)
	}
}

// TestProbeDrain checks the in-process drain probe and that a drained
// server sheds (not errors) subsequent requests.
func TestProbeDrain(t *testing.T) {
	w := testWorkload(t, 4)
	srv, _ := driveInProcess(t, w, DriveOptions{})
	d := ProbeDrain(srv)
	if !d.Clean() {
		t.Fatalf("drain probe after a joined drive should be clean, got %+v", d)
	}
	// A post-drain request is refused with the drain 503, which the client
	// must classify as shed.
	report, err := Drive(w, DriveOptions{Transport: srv.InProcessTransport()})
	if err != nil {
		t.Fatal(err)
	}
	if report.Totals.Shed != report.Totals.Requests || report.Totals.Errors != 0 {
		t.Fatalf("post-drain totals = %+v, want all shed", report.Totals)
	}
	if report.Totals.StatusCounts["503"] != report.Totals.Requests {
		t.Fatalf("post-drain statuses = %v, want all 503", report.Totals.StatusCounts)
	}
}

// TestDriveOptionErrors covers option validation.
func TestDriveOptionErrors(t *testing.T) {
	w := testWorkload(t, 2)
	if _, err := Drive(w, DriveOptions{}); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("no targets: err = %v, want ErrNoTargets", err)
	}
	srv := serve.New(serve.Options{})
	if _, err := Drive(w, DriveOptions{Transport: srv.InProcessTransport(), Mode: "turbo"}); err == nil || !strings.Contains(err.Error(), "unknown drive mode") {
		t.Fatalf("bad mode: err = %v", err)
	}
	if _, err := Drive(w, DriveOptions{Transport: srv.InProcessTransport(), Ramp: []RampStage{{0, 0}}}); !errors.Is(err, ErrBadRamp) {
		t.Fatalf("bad ramp: err = %v, want ErrBadRamp", err)
	}
}

// TestDriveTransportErrors drives an unroutable target: every request must
// land in errors under the transport_error status key.
func TestDriveTransportErrors(t *testing.T) {
	w := testWorkload(t, 3)
	report, err := Drive(w, DriveOptions{
		Transport: failingTransport{},
		Targets:   []string{"http://203.0.113.1:9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := report.Totals
	if tot.Errors != 3 || tot.StatusCounts["transport_error"] != 3 {
		t.Fatalf("totals = %+v, want 3 transport errors", tot)
	}
}

type failingTransport struct{}

func (failingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("synthetic transport failure")
}
