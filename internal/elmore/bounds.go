package elmore

import (
	"fmt"
	"math"

	"nontree/internal/graph"
	"nontree/internal/rc"
)

// Delay bounds for RC networks, in the spirit of the Rubinstein–Penfield–
// Horowitz analysis the paper's delay modelling builds on ("a high-quality,
// algorithmically tractable model of interconnect delay, based on an upper
// bound [19] for Elmore delay").
//
// For any node of a grounded RC network driven by a unit step, the
// complement f(t) = 1 − v(t) is completely monotone: f(t) = E[e^{−t/U}]
// for a random time constant U ≥ 0 with
//
//	E[U]  = t_ED      (the node's Elmore delay, our first moment m1)
//	E[U²] = |m2|      (the second moment, see Moments)
//
// Two unconditional bounds on the crossing time t_x (when v first reaches
// fraction x) follow:
//
//	Upper (Markov): f is decreasing with ∫₀^∞ f = E[U], so
//	    t_x·(1 − x) ≤ ∫₀^{t_x} f ≤ E[U]   ⇒   t_x ≤ t_ED / (1 − x).
//
//	Lower (Paley–Zygmund): for any θ ∈ (0,1),
//	    f(t) ≥ e^{−t/(θ·E[U])} · P(U ≥ θ·E[U])
//	         ≥ e^{−t/(θ·E[U])} · (1−θ)²·E[U]²/E[U²],
//	so v(t) < x (i.e. t < t_x) whenever the right side exceeds 1 − x:
//	    t_x ≥ max over θ of  θ·t_ED · ln( (1−θ)²·t_ED² / ((1−x)·E[U²]) ),
//	clamped at 0 when the logarithm is not positive (the bound can be
//	vacuous for strongly multi-pole nodes, but never wrong).
//
// Both directions are property-tested against the transient simulator.

// DelayBounds holds per-node rigorous bounds on the x-crossing time.
type DelayBounds struct {
	// Lower and Upper bracket the crossing time (seconds) per node.
	// Lower may be 0 where the Paley–Zygmund bound is vacuous.
	//
	//nontree:unit s
	Lower, Upper []float64
	// Fraction is the threshold fraction x the bounds apply to.
	//
	//nontree:unit 1
	Fraction float64
}

// Bounds computes rigorous crossing-time bounds for every node of a
// connected topology at threshold fraction x ∈ (0, 1).
//
//nontree:unit x 1
func Bounds(t *graph.Topology, l *rc.Lumped, x float64) (*DelayBounds, error) {
	if x <= 0 || x >= 1 {
		return nil, fmt.Errorf("elmore: threshold fraction %g outside (0,1)", x)
	}
	cond, err := FactorConductance(t, l)
	if err != nil {
		return nil, err
	}
	moments, err := cond.Moments(l, 2)
	if err != nil {
		return nil, err
	}
	b := &DelayBounds{
		Lower:    make([]float64, cond.size),
		Upper:    make([]float64, cond.size),
		Fraction: x,
	}
	for n := 0; n < cond.size; n++ {
		eu := -moments[0][n]           // E[U] = Elmore delay
		eu2 := math.Abs(moments[1][n]) // E[U²]
		if eu <= 0 {
			continue // source-like node with zero delay
		}
		b.Upper[n] = eu / (1 - x)
		b.Lower[n] = paleyZygmundLower(eu, eu2, x)
	}
	return b, nil
}

// paleyZygmundLower maximizes θ·E[U]·ln((1−θ)²·E[U]²/((1−x)·E[U²])) over a
// θ grid, clamped at zero.
//
//nontree:unit eu s
//nontree:unit eu2 s^2
//nontree:unit x 1
//nontree:unit return s
func paleyZygmundLower(eu, eu2, x float64) float64 {
	if eu2 <= 0 {
		return 0
	}
	base := eu * eu / ((1 - x) * eu2)
	best := 0.0
	for theta := 0.05; theta < 1; theta += 0.05 {
		arg := (1 - theta) * (1 - theta) * base
		if arg <= 1 {
			continue
		}
		if v := theta * eu * math.Log(arg); v > best {
			best = v
		}
	}
	return best
}

// Contains reports whether the measured delay of node n is consistent with
// the bounds (used as a cross-check between the analytic models and the
// simulator).
//
//nontree:unit measured s
func (b *DelayBounds) Contains(n int, measured float64) bool {
	return measured >= b.Lower[n]-1e-18 && measured <= b.Upper[n]+1e-18
}
