// Package cgdep is imported by the cg fixture: its method sets must be
// visible to interface resolution across the package boundary.
package cgdep

// Impl implements cg.Doer from the dependent package.
type Impl struct{ n int }

func (i *Impl) Do() int { return i.n }

func Helper() int { return 1 }
