package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nontree/internal/netlist"
	"nontree/internal/trace"
)

// testNet returns a reproducible pin set for requests.
func testNet(t *testing.T, seed int64, pins int) *netlist.Net {
	t.Helper()
	net, err := netlist.NewGenerator(seed).Generate(pins)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// postRoute POSTs one request and decodes the reply, asserting the status.
func postRoute(t *testing.T, ts *httptest.Server, req RouteRequest, wantStatus int) *RouteResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /route: status %d, want %d; body: %s", resp.StatusCode, wantStatus, raw)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var out RouteResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding reply: %v; body: %s", err, raw)
	}
	return &out
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestServeRouteTraceReplay is the end-to-end introspection contract: a
// routed request's exported trace replays — through the same Run code path
// — with zero drift, and its accepted edges match the reply.
func TestServeRouteTraceReplay(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RouteRequest{Net: testNet(t, 7, 10), RouteOptions: RouteOptions{Algo: AlgoLDRG, Workers: 4}}
	reply := postRoute(t, ts, req, http.StatusOK)
	if reply.TraceID == "" || reply.TraceEvents == 0 {
		t.Fatalf("reply carries no trace: %+v", reply)
	}
	if reply.TraceDropped != 0 {
		t.Fatalf("trace ring overflowed (%d dropped); raise the test capacity", reply.TraceDropped)
	}

	status, body := get(t, ts.URL+"/traces/"+reply.TraceID)
	if status != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", status, body)
	}
	events, err := trace.ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parsing exported trace: %v", err)
	}
	if len(events) != reply.TraceEvents {
		t.Fatalf("exported %d events, reply said %d", len(events), reply.TraceEvents)
	}

	// The trace's accepted edges must equal the reply's.
	accepted := trace.AcceptedEdges(events)
	if len(accepted) != len(reply.AddedEdges) {
		t.Fatalf("trace has %d accepted edges, reply %d", len(accepted), len(reply.AddedEdges))
	}
	for i, a := range accepted {
		if a.U != reply.AddedEdges[i].U || a.V != reply.AddedEdges[i].V {
			t.Errorf("accepted %d: trace (%d,%d), reply (%d,%d)",
				i, a.U, a.V, reply.AddedEdges[i].U, reply.AddedEdges[i].V)
		}
	}

	// Replay: re-run the stored request fresh and diff — zero drift.
	ring := trace.NewRing(1 << 16)
	if _, err := Run(req.Net, req.RouteOptions, nil, ring); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if drifts := trace.Diff(ring.Events(), events); len(drifts) != 0 {
		t.Errorf("replay drifted from served trace:\n%s", trace.FormatDrifts(drifts))
	}

	// The provenance view round-trips the request.
	status, body = get(t, ts.URL+"/traces/"+reply.TraceID+"?request=1")
	if status != http.StatusOK {
		t.Fatalf("GET trace request view: status %d", status)
	}
	var stored RouteRequest
	if err := json.Unmarshal([]byte(body), &stored); err != nil {
		t.Fatalf("decoding stored request: %v", err)
	}
	if stored.Algo != req.Algo || len(stored.Net.Pins) != len(req.Net.Pins) {
		t.Errorf("stored request %+v does not match sent %+v", stored, req)
	}
}

// TestServeConcurrentRoutes hammers /route from many goroutines (run under
// -race in CI) and checks every successful reply for the same net is
// identical — the determinism contract does not bend under concurrency.
func TestServeConcurrentRoutes(t *testing.T) {
	s := New(Options{MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RouteRequest{Net: testNet(t, 11, 9), RouteOptions: RouteOptions{Algo: AlgoLDRG}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	type outcome struct {
		status int
		final  float64
		edges  int
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
			if err != nil {
				outcomes[i].status = -1
				return
			}
			defer resp.Body.Close()
			outcomes[i].status = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			var rr RouteResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				outcomes[i].status = -2
				return
			}
			outcomes[i].final = rr.FinalObjective
			outcomes[i].edges = len(rr.AddedEdges)
		}(i)
	}
	wg.Wait()

	ok := 0
	var want outcome
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			if ok == 0 {
				want = o
			} else if o != want {
				t.Errorf("request %d: reply %+v differs from first success %+v", i, o, want)
			}
			ok++
		case http.StatusTooManyRequests: // shed by the limiter: acceptable
		default:
			t.Errorf("request %d: unexpected status %d", i, o.status)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
}

// TestServeConcurrencyLimit deterministically fills the limiter and checks
// the next request is shed with 429.
func TestServeConcurrencyLimit(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.slots <- struct{}{} // occupy the only slot
	req := RouteRequest{Net: testNet(t, 3, 6)}
	postRoute(t, ts, req, http.StatusTooManyRequests)
	<-s.slots

	postRoute(t, ts, req, http.StatusOK)
	snap := s.Metrics().Snapshot()
	if snap.Counters[CtrRouteRejected] != 1 {
		t.Errorf("rejected counter = %d, want 1", snap.Counters[CtrRouteRejected])
	}
	if snap.Counters[CtrRouteRequests] != 1 {
		t.Errorf("requests counter = %d, want 1", snap.Counters[CtrRouteRequests])
	}
}

// TestServeHealthzDrainFlip pins the drain protocol: healthy before,
// unhealthy (503) after BeginDrain, with /route refusing new work while
// /metrics and /traces stay readable.
func TestServeHealthzDrainFlip(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RouteRequest{Net: testNet(t, 5, 8)}
	reply := postRoute(t, ts, req, http.StatusOK)

	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz before drain: %d %s", status, body)
	}

	s.BeginDrain()

	status, body = get(t, ts.URL+"/healthz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"draining"`) {
		t.Errorf("healthz during drain: %d %s, want 503 draining", status, body)
	}
	postRoute(t, ts, req, http.StatusServiceUnavailable)
	if status, _ := get(t, ts.URL+"/metrics"); status != http.StatusOK {
		t.Errorf("metrics during drain: %d, want 200", status)
	}
	if status, _ := get(t, ts.URL+"/traces/"+reply.TraceID); status != http.StatusOK {
		t.Errorf("trace fetch during drain: %d, want 200", status)
	}
}

// TestServeMetricsExposition checks /metrics speaks Prometheus text format
// and carries both the algorithm catalog and the server's own counters.
func TestServeMetricsExposition(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRoute(t, ts, RouteRequest{Net: testNet(t, 9, 7)}, http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q lacks format version", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"nontree_serve_route_requests_total 1",
		"# TYPE nontree_core_oracle_evaluations_total counter",
		"# TYPE nontree_serve_route_seconds histogram",
		"nontree_serve_route_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestServeTraceRetention pins the LRU bound: with MaxTraces=2 the oldest
// unread trace is evicted first.
func TestServeTraceRetention(t *testing.T) {
	s := New(Options{MaxTraces: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RouteRequest{Net: testNet(t, 2, 6)}
	first := postRoute(t, ts, req, http.StatusOK)
	second := postRoute(t, ts, req, http.StatusOK)
	third := postRoute(t, ts, req, http.StatusOK)

	if status, _ := get(t, ts.URL+"/traces/"+first.TraceID); status != http.StatusNotFound {
		t.Errorf("oldest trace still retained: %d, want 404", status)
	}
	for _, id := range []string{second.TraceID, third.TraceID} {
		if status, _ := get(t, ts.URL+"/traces/"+id); status != http.StatusOK {
			t.Errorf("trace %s: %d, want 200", id, status)
		}
	}
	if n := s.Metrics().Snapshot().Counters[CtrTraceEvictions]; n != 1 {
		t.Errorf("evictions counter = %d, want 1", n)
	}
}

// TestServeBadRequests covers the error surface of /route and /traces.
func TestServeBadRequests(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Method misuse.
	if status, _ := get(t, ts.URL+"/route"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /route: %d, want 405", status)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/route", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	// Unknown top-level field (schema is strict).
	resp, err = http.Post(ts.URL+"/route", "application/json", strings.NewReader(`{"nets":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
	// Missing net.
	postRoute(t, ts, RouteRequest{}, http.StatusBadRequest)
	// Unknown algorithm.
	postRoute(t, ts, RouteRequest{Net: testNet(t, 1, 5), RouteOptions: RouteOptions{Algo: "magic"}},
		http.StatusUnprocessableEntity)
	// Degenerate net (single pin fails validation).
	bad := &netlist.Net{Pins: testNet(t, 1, 5).Pins[:1]}
	postRoute(t, ts, RouteRequest{Net: bad}, http.StatusUnprocessableEntity)
	// Unknown trace.
	if status, _ := get(t, ts.URL+"/traces/nonesuch"); status != http.StatusNotFound {
		t.Errorf("unknown trace: want 404")
	}
	if status, _ := get(t, ts.URL+"/traces/"); status != http.StatusNotFound {
		t.Errorf("empty trace id: want 404")
	}

	snap := s.Metrics().Snapshot()
	if snap.Counters[CtrRouteErrors] == 0 {
		t.Error("error counter never incremented")
	}
}

// TestServeAlgorithms smoke-tests every exposed algorithm name end-to-end.
func TestServeAlgorithms(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	net := testNet(t, 21, 7)
	for _, algo := range []string{AlgoLDRG, AlgoSLDRG, AlgoTaps, AlgoH1, AlgoH2, AlgoH3} {
		reply := postRoute(t, ts, RouteRequest{Net: net, RouteOptions: RouteOptions{Algo: algo}}, http.StatusOK)
		if reply.Algo != algo {
			t.Errorf("%s: reply echoes algo %q", algo, reply.Algo)
		}
		if len(reply.Nodes) == 0 || len(reply.Edges) == 0 {
			t.Errorf("%s: empty topology in reply", algo)
		}
		// H2/H3 add their wire unconditionally and may regress; the greedy
		// algorithms never accept a worsening step.
		if algo != AlgoH2 && algo != AlgoH3 && reply.FinalObjective > reply.InitialObjective {
			t.Errorf("%s: objective worsened %g → %g", algo, reply.InitialObjective, reply.FinalObjective)
		}
	}
}

// TestServeConcurrentStress hammers one server from four directions at
// once — /route POSTs (filling a 2-slot trace window so every store
// evicts), /traces/<id> lookups racing those evictions, /metrics scrapes,
// and a BeginDrain flipped mid-flight. The CI race step runs this under
// -race; here we only assert that every reply is one of the sanctioned
// statuses and that the server lands idle and draining.
func TestServeConcurrentStress(t *testing.T) {
	s := New(Options{MaxTraces: 2, MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RouteRequest{Net: testNet(t, 11, 6), RouteOptions: RouteOptions{Algo: AlgoLDRG, Workers: 2}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	const (
		routers   = 6
		perRouter = 4
		readers   = 3
	)
	var (
		ids      sync.Map // trace id → struct{}; feeds the reader goroutines
		done     = make(chan struct{})
		halfway  = make(chan struct{})
		routed   sync.WaitGroup
		reading  sync.WaitGroup
		posted   int64
		postedMu sync.Mutex
	)

	for i := 0; i < routers; i++ {
		routed.Add(1)
		go func() {
			defer routed.Done()
			for j := 0; j < perRouter; j++ {
				resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var out RouteResponse
					if err := json.Unmarshal(raw, &out); err != nil {
						t.Errorf("decoding reply: %v", err)
					} else if out.TraceID != "" {
						ids.Store(out.TraceID, struct{}{})
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// shed by the limiter or refused while draining
				default:
					t.Errorf("POST /route: unexpected status %d: %s", resp.StatusCode, raw)
				}
				postedMu.Lock()
				posted++
				if posted == routers*perRouter/2 {
					close(halfway)
				}
				postedMu.Unlock()
			}
		}()
	}

	// Flip the server draining once half the requests have resolved, so
	// in-flight routing, trace stores and reads all see the transition.
	go func() {
		<-halfway
		s.BeginDrain()
	}()

	for i := 0; i < readers; i++ {
		reading.Add(1)
		go func() {
			defer reading.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ids.Range(func(key, _ any) bool {
					status, body := get(t, ts.URL+"/traces/"+key.(string))
					if status != http.StatusOK && status != http.StatusNotFound {
						t.Errorf("GET /traces/%s: unexpected status %d: %s", key, status, body)
					}
					return true
				})
				if status, body := get(t, ts.URL+"/metrics"); status != http.StatusOK {
					t.Errorf("GET /metrics: status %d: %s", status, body)
				}
				if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK && status != http.StatusServiceUnavailable {
					t.Errorf("GET /healthz: unexpected status %d", status)
				}
			}
		}()
	}

	routed.Wait()
	close(done)
	reading.Wait()

	if got := s.Inflight(); got != 0 {
		t.Errorf("inflight after all requests resolved: %d", got)
	}
	if !s.Draining() {
		t.Error("server should be draining after BeginDrain")
	}
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("GET /healthz while draining: status %d, want 503", status)
	}
}
