package purityflow_test

import (
	"testing"

	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/purityflow"
)

func TestLaunderedMutations(t *testing.T) {
	analysistest.Run(t, purityflow.Analyzer, "a")
}

func TestCrossPackageEffects(t *testing.T) {
	analysistest.Run(t, purityflow.Analyzer, "pfx")
}
