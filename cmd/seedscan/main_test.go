package main

import (
	"testing"

	"nontree/internal/expt"
)

func TestScanLDRGRuns(t *testing.T) {
	cfg := expt.Default()
	if err := run(cfg, 6, 10, 0, 1, false, 0.95, 1.6); err != nil {
		t.Fatal(err)
	}
}

func TestScanSteinerRuns(t *testing.T) {
	cfg := expt.Default()
	if err := run(cfg, 6, 5, 0, 0, true, 0.95, 1.6); err != nil {
		t.Fatal(err)
	}
}
