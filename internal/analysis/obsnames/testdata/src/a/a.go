// Package a exercises obsnames against the stub obs catalog.
package a

import "obs"

// CtrLocal aliases a catalog entry; matching is by value, so it is fine
// (the serve package does exactly this).
const CtrLocal = obs.CtrGood

// goodSites compile because every name is a catalog constant.
func goodSites(r obs.Recorder, g *obs.Registry) {
	r.Add(obs.CtrGood, 1)
	r.Observe(obs.HistGood, 2)
	r.ObserveDuration(obs.TimeGood, 0.5)
	g.Add(CtrLocal, 1)
	g.Declare(obs.HistGood)
	g.DeclareTiming(obs.TimeGood)
	sp := obs.StartSpan(r, obs.TimeGood)
	sp.End()
}

// badSites each drift from the catalog.
func badSites(r obs.Recorder, g *obs.Registry, dynamic string) {
	r.Add("a.rogue.counter", 1)     // want `metric name "a.rogue.counter" is not in the internal/obs names catalog`
	r.Add(dynamic, 1)               // want `metric name for Add must be a string constant`
	g.Observe("a.rogue.hist", 1)    // want `metric name "a.rogue.hist" is not in the internal/obs names catalog`
	g.DeclareTiming(dynamic)        // want `metric name for DeclareTiming must be a string constant`
	obs.StartSpan(r, "a.rogue.sec") // want `metric name "a.rogue.sec" is not in the internal/obs names catalog`
}

// unexportedConstantsAreNotCatalog: the value never appears as an exported
// obs constant, so it is drift even though obs declares it internally.
func unexportedConstantsAreNotCatalog(r obs.Recorder) {
	r.Add("a.internal.counter", 1) // want `metric name "a.internal.counter" is not in the internal/obs names catalog`
}

// otherAdd proves receiver filtering: Add methods outside package obs are
// none of obsnames' business.
type counterish struct{}

func (counterish) Add(name string, delta int64) {}

func otherAdd(c counterish, dynamic string) {
	c.Add(dynamic, 1)
}

// allowed demonstrates the escape hatch.
func allowed(r obs.Recorder, dynamic string) {
	//nontree:allow obsnames fixture exercises the annotation path
	r.Add(dynamic, 1)
}
