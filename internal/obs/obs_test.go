package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	g := NewRegistry()
	g.Add("a", 3)
	g.Add("a", 4)
	g.Add("b", 0) // registration only
	s := g.Snapshot()
	if s.Counters["a"] != 7 {
		t.Errorf("counter a = %d, want 7", s.Counters["a"])
	}
	if v, ok := s.Counters["b"]; !ok || v != 0 {
		t.Errorf("counter b = %d,%v; want registered at 0", v, ok)
	}
}

func TestHistogramStats(t *testing.T) {
	g := NewRegistry()
	for _, v := range []float64{4, 1, 9, 2} {
		g.Observe("h", v)
	}
	h := g.Snapshot().Histograms["h"]
	if h.Count != 4 || h.Sum != 16 || h.Min != 1 || h.Max != 9 {
		t.Errorf("histogram = %+v, want count 4 sum 16 min 1 max 9", h)
	}
	var total int64
	for _, n := range h.Buckets {
		total += n
	}
	if total != h.Count {
		t.Errorf("bucket tallies sum to %d, want %d", total, h.Count)
	}
}

func TestDeclareEmptyHistogram(t *testing.T) {
	g := NewRegistry()
	g.Declare("empty")
	h, ok := g.Snapshot().Histograms["empty"]
	if !ok {
		t.Fatal("declared histogram missing from snapshot")
	}
	if h.Count != 0 || h.Min != 0 || h.Max != 0 || h.Sum != 0 {
		t.Errorf("empty histogram = %+v, want all zero", h)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {-3, 0}, {math.NaN(), 0},
		{1, 32}, {1.5, 32}, {2, 33}, {1024, 42},
		{0.5, 31}, {1e-300, 0}, {1e300, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestFingerprintDeterministic asserts fingerprints depend only on the
// recorded values, not on insertion or scheduling order.
func TestFingerprintDeterministic(t *testing.T) {
	build := func(order []int) string {
		g := NewRegistry()
		for _, i := range order {
			g.Add("c1", int64(i))
			g.Observe("h1", float64(i))
			g.ObserveDuration("t1", float64(i)) // must not affect fingerprint
		}
		return g.Snapshot().Fingerprint()
	}
	a := build([]int{1, 2, 3, 4})
	b := build([]int{4, 3, 2, 1})
	if a != b {
		t.Errorf("fingerprints differ across observation order:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Error("fingerprint empty")
	}
}

func TestDeterministicDropsTimings(t *testing.T) {
	g := NewRegistry()
	g.ObserveDuration("t", 0.5)
	g.Add("c", 1)
	d := g.Snapshot().Deterministic()
	if d.Timings != nil {
		t.Error("Deterministic() kept the Timings section")
	}
	if d.Counters["c"] != 1 {
		t.Error("Deterministic() lost counters")
	}
}

func TestMultiFanOut(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	var r Recorder = Multi{a, b, Nop{}}
	r.Add("c", 2)
	r.Observe("h", 1)
	r.ObserveDuration("t", 1)
	for i, g := range []*Registry{a, b} {
		s := g.Snapshot()
		if s.Counters["c"] != 2 || s.Histograms["h"].Count != 1 || s.Timings["t"].Count != 1 {
			t.Errorf("registry %d missed fan-out: %+v", i, s)
		}
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) is not Nop")
	}
	g := NewRegistry()
	if OrNop(g) != Recorder(g) {
		t.Error("OrNop(r) did not pass r through")
	}
}

func TestSpanAgainstNop(t *testing.T) {
	// Must not read the clock or panic.
	s := StartSpan(nil, "x")
	s.End()
	s = StartSpan(Nop{}, "x")
	s.End()
	g := NewRegistry()
	sp := StartSpan(g, "span")
	sp.End()
	snap := g.Snapshot()
	if snap.Timings["span"].Count != 1 {
		t.Errorf("span not recorded: %+v", snap.Timings)
	}
	if snap.Timings["span"].Min < 0 {
		t.Errorf("negative span duration %g", snap.Timings["span"].Min)
	}
}

func TestPreregisterFreezesKeySet(t *testing.T) {
	g := NewRegistry()
	Preregister(g)
	s := g.Snapshot()
	for _, name := range CounterNames() {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("counter %s missing after Preregister", name)
		}
	}
	for _, name := range HistogramNames() {
		if _, ok := s.Histograms[name]; !ok {
			t.Errorf("histogram %s missing after Preregister", name)
		}
	}
	if len(s.Counters) != len(CounterNames()) {
		t.Errorf("%d counters after Preregister, catalog has %d", len(s.Counters), len(CounterNames()))
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	g := NewRegistry()
	Preregister(g)
	g.Add(CtrSweeps, 5)
	g.Observe(HistSweepCandidates, 12)
	a, err := json.Marshal(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("snapshot JSON encoding unstable across calls")
	}
}

// TestConcurrentRecordingDeterministic hammers one registry from many
// goroutines and asserts the deterministic sections land on the exact
// expected totals — the order-independence the worker-pool sweeps rely on.
// Under -race this doubles as the metrics layer's data-race proof.
func TestConcurrentRecordingDeterministic(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	g := NewRegistry()
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() { // concurrent snapshots while recording
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = g.Snapshot().Fingerprint()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add("ctr", 1)
				g.Observe("hist", float64(i%7))
				g.ObserveDuration("dur", 1e-6)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	s := g.Snapshot()
	if s.Counters["ctr"] != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters["ctr"], workers*perWorker)
	}
	h := s.Histograms["hist"]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	// Integer-valued samples sum exactly regardless of interleaving.
	wantSum := float64(workers) * float64(perWorker/7*(0+1+2+3+4+5+6)+0+1+2+3+4) // 2000 = 285*7 + 5 tail samples
	if h.Sum != wantSum {
		t.Errorf("histogram sum = %g, want %g", h.Sum, wantSum)
	}
	if h.Min != 0 || h.Max != 6 {
		t.Errorf("histogram min/max = %g/%g, want 0/6", h.Min, h.Max)
	}
}
