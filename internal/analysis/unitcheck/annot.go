package unitcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"nontree/internal/analysis"
	"nontree/internal/analysis/units"
)

// unitDirective is the comment prefix declaring a dimension. ast's
// CommentGroup.Text strips directive-shaped lines, so directives never
// collide with the doc-paren convention applied to the same comment.
const unitDirective = "//nontree:unit"

// funcUnits holds the declared dimensions of one function-shaped
// declaration: parameter units by name, result units by index.
type funcUnits struct {
	params  map[string]units.Dim
	results map[int]units.Dim
}

func newFuncUnits() *funcUnits {
	return &funcUnits{params: map[string]units.Dim{}, results: map[int]units.Dim{}}
}

func (fu *funcUnits) empty() bool { return len(fu.params) == 0 && len(fu.results) == 0 }

// annots indexes every dimension declared in the package under analysis,
// keyed by the go/types object so use sites resolve in O(1).
type annots struct {
	vals  map[types.Object]units.Dim
	funcs map[types.Object]*funcUnits
}

// collect walks the package's declarations, resolves every unit
// annotation (directive, doc-paren convention, name-suffix convention),
// reports malformed directives, and exports each resolved dimension as a
// fact so importing packages see it.
func collect(pass *analysis.Pass) *annots {
	an := &annots{
		vals:  map[types.Object]units.Dim{},
		funcs: map[types.Object]*funcUnits{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				an.collectGen(pass, d)
			case *ast.FuncDecl:
				an.collectFuncDecl(pass, d)
			}
		}
	}
	return an
}

func (an *annots) collectGen(pass *analysis.Pass, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := specDoc(d, ts.Doc)
			switch t := ts.Type.(type) {
			case *ast.StructType:
				an.collectStruct(pass, ts.Name.Name, t)
			case *ast.InterfaceType:
				an.collectInterface(pass, ts.Name.Name, t)
			case *ast.FuncType:
				// Named func type, e.g. rc.WidthFunc: directives in the
				// type's doc comment, attached to the TypeName object.
				fu := an.funcDirectives(pass, t, doc, ts.Comment)
				if !fu.empty() {
					obj := pass.Info.Defs[ts.Name]
					an.funcs[obj] = fu
					exportFunc(pass, pass.Pkg.Path()+"."+ts.Name.Name, fu)
				}
			}
		}
	case token.CONST, token.VAR:
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			doc := specDoc(d, vs.Doc)
			for _, name := range vs.Names {
				dim, ok := unitOf(pass, name.Name, doc, vs.Comment)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[name]
				an.vals[obj] = dim
				exportVal(pass, pass.Pkg.Path()+"."+name.Name, dim)
			}
		}
	}
}

// specDoc prefers the spec's own doc; a single-spec declaration without
// parentheses attaches the doc to the GenDecl instead.
func specDoc(d *ast.GenDecl, specDoc *ast.CommentGroup) *ast.CommentGroup {
	if specDoc != nil {
		return specDoc
	}
	if len(d.Specs) == 1 {
		return d.Doc
	}
	return nil
}

func (an *annots) collectStruct(pass *analysis.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			dim, ok := unitOf(pass, name.Name, field.Doc, field.Comment)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[name]
			an.vals[obj] = dim
			exportVal(pass, pass.Pkg.Path()+"."+typeName+"."+name.Name, dim)
		}
	}
}

func (an *annots) collectInterface(pass *analysis.Pass, ifaceName string, it *ast.InterfaceType) {
	for _, method := range it.Methods.List {
		ft, ok := method.Type.(*ast.FuncType)
		if !ok || len(method.Names) == 0 {
			continue // embedded interface
		}
		fu := an.funcDirectives(pass, ft, method.Doc, method.Comment)
		if fu.empty() {
			continue
		}
		name := method.Names[0]
		obj := pass.Info.Defs[name]
		an.funcs[obj] = fu
		exportFunc(pass, pass.Pkg.Path()+"."+ifaceName+"."+name.Name, fu)
	}
}

func (an *annots) collectFuncDecl(pass *analysis.Pass, d *ast.FuncDecl) {
	fu := an.funcDirectives(pass, d.Type, d.Doc, nil)
	if fu.empty() {
		return
	}
	obj := pass.Info.Defs[d.Name]
	an.funcs[obj] = fu
	key := pass.Pkg.Path() + "."
	if fn, ok := obj.(*types.Func); ok {
		if recv := recvNamed(fn); recv != "" {
			key += recv + "."
		}
	}
	exportFunc(pass, key+d.Name.Name, fu)
}

// recvNamed returns the name of a method's receiver type, "" for plain
// functions.
func recvNamed(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	if named := namedOf(recv.Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// funcDirectives resolves the parameter/result units of a function-shaped
// declaration: //nontree:unit directives of the form "<param> <expr>",
// "return <expr>" or "return<N> <expr>", plus the Hz/Rad name-suffix
// convention on parameters. Malformed directives are reported.
func (an *annots) funcDirectives(pass *analysis.Pass, ft *ast.FuncType, groups ...*ast.CommentGroup) *funcUnits {
	fu := newFuncUnits()

	paramNames := map[string]bool{}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				paramNames[name.Name] = true
				if d, ok := suffixUnit(name.Name); ok {
					fu.params[name.Name] = d
				}
			}
		}
	}
	nresults := 0
	if ft.Results != nil {
		nresults = ft.Results.NumFields()
	}

	for _, dir := range directivesIn(groups...) {
		fields := strings.Fields(dir.payload)
		if len(fields) < 2 {
			pass.Reportf(dir.pos, "malformed %s directive: want \"<param> <unit>\" or \"return <unit>\"", unitDirective)
			continue
		}
		target, expr := fields[0], strings.Join(fields[1:], " ")
		idx, isResult := resultIndex(target)
		if isResult && idx >= nresults {
			pass.Reportf(dir.pos, "%s directive targets result %d, but the function has %d result(s)", unitDirective, idx, nresults)
			continue
		}
		if !isResult && !paramNames[target] {
			pass.Reportf(dir.pos, "%s directive names unknown parameter %q", unitDirective, target)
			continue
		}
		dim, err := units.Parse(expr)
		if err != nil {
			pass.Reportf(dir.pos, "bad unit expression %q in %s directive: %v", expr, unitDirective, err)
			continue
		}
		if isResult {
			fu.results[idx] = dim
		} else {
			fu.params[target] = dim
		}
	}
	return fu
}

// resultIndex parses a "return" / "return<N>" directive target.
func resultIndex(target string) (int, bool) {
	rest, ok := strings.CutPrefix(target, "return")
	if !ok {
		return 0, false
	}
	if rest == "" {
		return 0, true
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// directive is one //nontree:unit comment with its payload.
type directive struct {
	pos     token.Pos
	payload string
}

func directivesIn(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, unitDirective)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			// A "//" inside the payload starts a nested comment (the
			// fixtures' same-line want expectations); no unit expression
			// contains one.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			out = append(out, directive{pos: c.Pos(), payload: strings.TrimSpace(rest)})
		}
	}
	return out
}

// unitOf resolves the dimension of one value declaration (struct field,
// package const or var) from, in precedence order: a //nontree:unit
// directive, the trailing parenthesized unit in the doc comment, and the
// Hz/Rad name-suffix convention.
func unitOf(pass *analysis.Pass, name string, groups ...*ast.CommentGroup) (units.Dim, bool) {
	for _, dir := range directivesIn(groups...) {
		dim, err := units.Parse(dir.payload)
		if err != nil {
			pass.Reportf(dir.pos, "bad unit expression %q in %s directive: %v", dir.payload, unitDirective, err)
			return units.Dim{}, false
		}
		return dim, true
	}
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		if dim, ok := parenUnit(cg.Text()); ok {
			return dim, true
		}
	}
	return suffixUnit(name)
}

var parenRe = regexp.MustCompile(`\(([^()]+)\)`)

// parenUnit recognizes the doc-comment convention used throughout
// rc.Params: the last parenthesized group that parses as a unit
// expression — "series resistance per unit length (Ω/µm)". A bare "(s)"
// is deliberately skipped: in prose it is an English plural marker far
// more often than the second, so seconds require a directive.
func parenUnit(text string) (units.Dim, bool) {
	matches := parenRe.FindAllStringSubmatch(text, -1)
	for i := len(matches) - 1; i >= 0; i-- {
		expr := strings.TrimSpace(matches[i][1])
		if expr == "s" {
			continue
		}
		if dim, err := units.Parse(expr); err == nil {
			return dim, true
		}
	}
	return units.Dim{}, false
}

// suffixUnit applies the name convention: FrequencyHz, freqsHz carry
// hertz; PhaseRad carries radians (dimensionless).
func suffixUnit(name string) (units.Dim, bool) {
	switch {
	case len(name) > 2 && strings.HasSuffix(name, "Hz"):
		return units.MustParse("Hz"), true
	case len(name) > 3 && strings.HasSuffix(name, "Rad"):
		return units.One, true
	}
	return units.Dim{}, false
}

func exportVal(pass *analysis.Pass, key string, dim units.Dim) {
	// String is round-trip safe (fuzzed), so the canonical rendering is
	// the wire format.
	_ = pass.Facts.Export(pass.Pkg.Path(), key, ValueFact{Unit: dim.String()})
}

func exportFunc(pass *analysis.Pass, key string, fu *funcUnits) {
	ff := FuncFact{}
	if len(fu.params) > 0 {
		ff.Params = map[string]string{}
		for name, d := range fu.params {
			ff.Params[name] = d.String()
		}
	}
	if len(fu.results) > 0 {
		ff.Results = map[string]string{}
		for i, d := range fu.results {
			ff.Results[strconv.Itoa(i)] = d.String()
		}
	}
	_ = pass.Facts.Export(pass.Pkg.Path(), key, ff)
}

// namedOf unwraps pointers to the named type beneath, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
