package ert

import (
	"math"
	"testing"
	"testing/quick"

	"nontree/internal/elmore"
	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/rc"
)

func maxElmore(t *testing.T, topo *graph.Topology, p rc.Params) float64 {
	t.Helper()
	l, err := rc.Lump(topo, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elmore.GraphDelays(topo, l)
	if err != nil {
		t.Fatal(err)
	}
	return elmore.MaxSinkDelay(d, topo.NumPins())
}

func TestBuildProducesSpanningTree(t *testing.T) {
	gen := netlist.NewGenerator(1)
	for _, pins := range []int{2, 5, 10, 20} {
		net, err := gen.Generate(pins)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := Build(net.Pins, rc.Default())
		if err != nil {
			t.Fatal(err)
		}
		if !topo.IsTree() {
			t.Fatalf("%d pins: ERT is not a tree", pins)
		}
		if topo.NumEdges() != pins-1 {
			t.Fatalf("%d pins: %d edges", pins, topo.NumEdges())
		}
	}
}

func TestERTNeverWorseElmoreThanMST(t *testing.T) {
	// ERT directly minimizes max Elmore delay greedily; it must not lose
	// to the MST by more than numerical noise, and usually wins.
	p := rc.Default()
	wins := 0
	const trials = 15
	for seed := int64(0); seed < trials; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(12)
		if err != nil {
			t.Fatal(err)
		}
		mstTopo, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}
		ertTopo, err := Build(net.Pins, p)
		if err != nil {
			t.Fatal(err)
		}
		me, mm := maxElmore(t, ertTopo, p), maxElmore(t, mstTopo, p)
		if me < mm {
			wins++
		}
		if me > mm*1.25 {
			t.Errorf("seed %d: ERT Elmore %.3g far worse than MST %.3g", seed, me, mm)
		}
	}
	if wins < trials*2/3 {
		t.Errorf("ERT beat MST only %d/%d times; Boese et al. report near-universal wins", wins, trials)
	}
}

func TestERTCostsMoreWireThanMST(t *testing.T) {
	// The delay-for-wire tradeoff: ERT cost ≥ MST cost (MST is optimal
	// wirelength), typically 20-30% more (paper Table 6 context).
	p := rc.Default()
	for seed := int64(20); seed < 30; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(15)
		if err != nil {
			t.Fatal(err)
		}
		ertTopo, err := Build(net.Pins, p)
		if err != nil {
			t.Fatal(err)
		}
		if ertTopo.Cost() < mst.Cost(net.Pins)-1e-9 {
			t.Fatalf("seed %d: ERT cost %.0f below MST %.0f (impossible)",
				seed, ertTopo.Cost(), mst.Cost(net.Pins))
		}
	}
}

func TestTwoPinERT(t *testing.T) {
	topo, err := Build([]geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}, rc.Default())
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumEdges() != 1 || !topo.HasEdge(graph.Edge{U: 0, V: 1}) {
		t.Error("two-pin ERT must be the single edge")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build([]geom.Point{{X: 0, Y: 0}}, rc.Default()); err != ErrTooFewPins {
		t.Errorf("one pin: %v", err)
	}
	bad := rc.Default()
	bad.DriverResistance = -1
	if _, err := Build([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, bad); err == nil {
		t.Error("invalid params must be rejected")
	}
	if _, err := BuildSteiner([]geom.Point{{X: 0, Y: 0}}, rc.Default()); err != ErrTooFewPins {
		t.Errorf("SERT one pin: %v", err)
	}
}

func TestStarNetERTPrefersDirectEdges(t *testing.T) {
	// Source in the center: the delay-optimal tree is the star, which ERT
	// must find (every sink attaches straight to the source).
	pins := []geom.Point{
		{X: 500, Y: 500},
		{X: 0, Y: 500}, {X: 1000, Y: 500}, {X: 500, Y: 0}, {X: 500, Y: 1000},
	}
	topo, err := Build(pins, rc.Default())
	if err != nil {
		t.Fatal(err)
	}
	for sink := 1; sink < 5; sink++ {
		if !topo.HasEdge(graph.Edge{U: 0, V: sink}) {
			t.Errorf("sink %d not attached to source; edges %v", sink, topo.Edges())
		}
	}
}

func TestDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		gen1 := netlist.NewGenerator(seed)
		net1, err := gen1.Generate(9)
		if err != nil {
			return false
		}
		a, err1 := Build(net1.Pins, rc.Default())
		b, err2 := Build(net1.Pins, rc.Default())
		if err1 != nil || err2 != nil {
			return false
		}
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSERTSpansAndConnects(t *testing.T) {
	gen := netlist.NewGenerator(5)
	for _, pins := range []int{3, 6, 10} {
		net, err := gen.Generate(pins)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := BuildSteiner(net.Pins, rc.Default())
		if err != nil {
			t.Fatal(err)
		}
		if !topo.Connected() {
			t.Fatalf("%d pins: SERT not connected", pins)
		}
		if !topo.IsTree() {
			t.Fatalf("%d pins: SERT not a tree", pins)
		}
		if topo.NumPins() != pins {
			t.Fatalf("pin count %d", topo.NumPins())
		}
	}
}

func TestSERTNoWorseElmoreThanERT(t *testing.T) {
	// Steiner junctions strictly enlarge the solution space; greedy SERT
	// should usually match or beat greedy ERT on Elmore delay.
	p := rc.Default()
	better, worse := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(10)
		if err != nil {
			t.Fatal(err)
		}
		ertTopo, err := Build(net.Pins, p)
		if err != nil {
			t.Fatal(err)
		}
		sertTopo, err := BuildSteiner(net.Pins, p)
		if err != nil {
			t.Fatal(err)
		}
		de, ds := maxElmore(t, ertTopo, p), maxElmore(t, sertTopo, p)
		if ds <= de*(1+1e-9) {
			better++
		} else if ds > de*1.05 {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("SERT materially worse than ERT on %d/12 nets", worse)
	}
	if better < 8 {
		t.Errorf("SERT matched/beat ERT on only %d/12 nets", better)
	}
}

func TestSERTSteinerPointsAreJunctions(t *testing.T) {
	gen := netlist.NewGenerator(8)
	net, err := gen.Generate(12)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildSteiner(net.Pins, rc.Default())
	if err != nil {
		t.Fatal(err)
	}
	for n := topo.NumPins(); n < topo.NumNodes(); n++ {
		if topo.Degree(n) < 3 {
			t.Errorf("SERT Steiner node %d has degree %d (not a junction)", n, topo.Degree(n))
		}
	}
}

func TestERTElmoreMatchesPackageElmore(t *testing.T) {
	// The incremental Elmore evaluator inside ERT must agree with the
	// reference implementation in internal/elmore.
	p := rc.Default()
	gen := netlist.NewGenerator(31)
	net, err := gen.Generate(10)
	if err != nil {
		t.Fatal(err)
	}
	st := newTreeState(net.Pins, p)
	// Build a chain 0-1-2-...-9 manually.
	for i := 1; i < 10; i++ {
		st.attach(i, i-1)
	}
	got := st.maxSinkDelay()

	topo := graph.NewTopology(net.Pins)
	for i := 1; i < 10; i++ {
		if err := topo.AddEdge(graph.Edge{U: i - 1, V: i}); err != nil {
			t.Fatal(err)
		}
	}
	want := maxElmore(t, topo, p)
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("internal evaluator %.6g vs reference %.6g", got, want)
	}
}
