package obsnames

import (
	"go/types"
	"sort"
	"testing"

	"nontree/internal/analysis"
	"nontree/internal/obs"
)

// TestCatalogMatchesObsNames pins the analyzer's catalog view — the
// exported string constants of nontree/internal/obs — to the package's
// own name lists (CounterNames ∪ HistogramNames ∪ ServeCounterNames ∪
// SimCounterNames ∪ TimingNames), exactly. A constant added without a list entry would
// silently pass the lint while missing from preregistration; a list
// entry without a constant could never be referenced from code. Both
// directions fail here first.
func TestCatalogMatchesObsNames(t *testing.T) {
	l := analysis.NewLoader()
	pkgs, err := l.Load("../../..", "nontree/internal/obs")
	if err != nil {
		t.Fatalf("loading nontree/internal/obs: %v", err)
	}
	var obsPkg *types.Package
	for _, p := range pkgs {
		if p.Path == "nontree/internal/obs" {
			obsPkg = p.Types
		}
	}
	if obsPkg == nil {
		t.Fatal("loader did not return nontree/internal/obs")
	}

	got := catalog(map[*types.Package]map[string]bool{}, obsPkg)

	want := map[string]bool{}
	for _, list := range [][]string{
		obs.CounterNames(),
		obs.HistogramNames(),
		obs.ServeCounterNames(),
		obs.SimCounterNames(),
		obs.TimingNames(),
	} {
		for _, name := range list {
			if want[name] {
				t.Errorf("name %q appears in more than one catalog list", name)
			}
			want[name] = true
		}
	}

	for _, name := range sorted(want) {
		if !got[name] {
			t.Errorf("cataloged name %q has no exported obs constant", name)
		}
	}
	for _, name := range sorted(got) {
		if !want[name] {
			t.Errorf("exported obs constant %q is missing from the name lists", name)
		}
	}
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
