// Package pdtree implements cost–radius tradeoff spanning trees: the direct
// combination of Prim's and Dijkstra's constructions (Alpert, Hu, Huang &
// Kahng, cited as [1] in the paper) that interpolates between the minimum
// spanning tree and the shortest-path tree.
//
// The paper positions non-tree routing against exactly this family of
// performance-driven *tree* constructions ("Cong et al. have proposed
// finding minimum spanning trees with bounded source-sink pathlength...
// another cost-radius tradeoff was achieved by Alpert et al."), so the
// family serves as an additional baseline in the comparison tooling.
//
// Construction: grow a tree from the source; at each step attach the
// unconnected pin u through the tree node v minimizing
//
//	c·ℓ(v) + d(v, u)
//
// where ℓ(v) is the tree pathlength from the source to v and d is Manhattan
// distance. c = 0 degenerates to Prim (the MST); c = 1 to Dijkstra — which
// on a complete geometric graph is the source-rooted star, the
// minimum-radius topology.
package pdtree

import (
	"errors"
	"fmt"
	"math"

	"nontree/internal/geom"
	"nontree/internal/graph"
)

// ErrTooFewPins mirrors the other constructors' minimum input size.
var ErrTooFewPins = errors.New("pdtree: need at least two pins")

// Build constructs the Prim–Dijkstra tradeoff tree over pins (pins[0] is
// the source) with tradeoff parameter c ∈ [0, 1].
func Build(pins []geom.Point, c float64) (*graph.Topology, error) {
	if len(pins) < 2 {
		return nil, ErrTooFewPins
	}
	if c < 0 || c > 1 {
		return nil, fmt.Errorf("pdtree: tradeoff parameter %g outside [0, 1]", c)
	}
	n := len(pins)
	t := graph.NewTopology(pins)

	inTree := make([]bool, n)
	pathLen := make([]float64, n) // ℓ(v) for tree nodes
	bestCost := make([]float64, n)
	bestVia := make([]int, n)

	inTree[0] = true
	for v := 1; v < n; v++ {
		bestCost[v] = c*0 + geom.Dist(pins[0], pins[v])
		bestVia[v] = 0
	}

	for added := 1; added < n; added++ {
		pick := -1
		for v := 1; v < n; v++ {
			if !inTree[v] && (pick < 0 || bestCost[v] < bestCost[pick]) {
				pick = v
			}
		}
		if pick < 0 {
			return nil, errors.New("pdtree: internal error: no pick")
		}
		via := bestVia[pick]
		if err := t.AddEdge(graph.Edge{U: via, V: pick}); err != nil {
			return nil, err
		}
		inTree[pick] = true
		pathLen[pick] = pathLen[via] + geom.Dist(pins[via], pins[pick])

		// Relax the frontier through the new node.
		for v := 1; v < n; v++ {
			if inTree[v] {
				continue
			}
			cost := c*pathLen[pick] + geom.Dist(pins[pick], pins[v])
			if cost < bestCost[v] {
				bestCost[v] = cost
				bestVia[v] = pick
			}
		}
	}
	return t, nil
}

// Radius returns the maximum source-to-node tree pathlength of a tree
// topology — the "radius" of the cost-radius tradeoff literature. It
// requires a tree (unique paths).
func Radius(t *graph.Topology) (float64, error) {
	parents, err := t.RootAt(0)
	if err != nil {
		return 0, err
	}
	// Accumulate pathlengths in BFS order from the source.
	depth := make([]float64, t.NumNodes())
	for i := range depth {
		depth[i] = math.NaN()
	}
	depth[0] = 0
	queue := []int{0}
	var worst float64
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, m := range t.Neighbors(v) {
			if parents[m] == v {
				depth[m] = depth[v] + t.EdgeLength(graph.Edge{U: v, V: m})
				if depth[m] > worst {
					worst = depth[m]
				}
				queue = append(queue, m)
			}
		}
	}
	return worst, nil
}

// Sweep builds the tradeoff tree for each parameter in cs, returning one
// topology per value — used by the cost-radius tradeoff bench to trace the
// frontier the paper's Section 1 discusses.
func Sweep(pins []geom.Point, cs []float64) ([]*graph.Topology, error) {
	out := make([]*graph.Topology, 0, len(cs))
	for _, c := range cs {
		t, err := Build(pins, c)
		if err != nil {
			return nil, fmt.Errorf("pdtree: sweep at c=%g: %w", c, err)
		}
		out = append(out, t)
	}
	return out, nil
}
