// Package stats aggregates per-net trial outcomes into the statistics the
// paper's tables report: average delay and cost ratios over all cases,
// percentage of winners, and winners-only averages.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// WinEpsilon is the relative delay improvement below which a trial is not
// counted as a winner — guarding the "Percent Winners" statistic against
// floating-point noise.
const WinEpsilon = 1e-9

// Sample is one trial's outcome: the algorithm's delay and cost normalized
// to the baseline construction (MST, Steiner tree, or ERT depending on the
// table).
type Sample struct {
	DelayRatio float64
	CostRatio  float64
}

// Won reports whether the sample improved on the baseline delay.
func (s Sample) Won() bool { return s.DelayRatio < 1-WinEpsilon }

// Summary mirrors one row of the paper's tables.
type Summary struct {
	// Count is the number of trials aggregated.
	Count int
	// AllDelay and AllCost are mean ratios over every trial ("All Cases").
	AllDelay, AllCost float64
	// PercentWinners is the percentage of trials with improved delay.
	PercentWinners float64
	// WinDelay and WinCost are mean ratios over winning trials only
	// ("Winners Only"); NaN when there are no winners.
	WinDelay, WinCost float64
}

// Summarize aggregates samples into a Summary.
func Summarize(samples []Sample) Summary {
	var s Summary
	s.Count = len(samples)
	if s.Count == 0 {
		s.WinDelay, s.WinCost = math.NaN(), math.NaN()
		return s
	}
	var winDelay, winCost float64
	wins := 0
	for _, sm := range samples {
		s.AllDelay += sm.DelayRatio
		s.AllCost += sm.CostRatio
		if sm.Won() {
			wins++
			winDelay += sm.DelayRatio
			winCost += sm.CostRatio
		}
	}
	n := float64(s.Count)
	s.AllDelay /= n
	s.AllCost /= n
	s.PercentWinners = 100 * float64(wins) / n
	if wins > 0 {
		s.WinDelay = winDelay / float64(wins)
		s.WinCost = winCost / float64(wins)
	} else {
		s.WinDelay, s.WinCost = math.NaN(), math.NaN()
	}
	return s
}

// MarshalJSON encodes the summary with the winners-only fields as null
// when there are no winners (encoding/json rejects NaN).
func (s Summary) MarshalJSON() ([]byte, error) {
	type out struct {
		Count          int      `json:"count"`
		AllDelay       float64  `json:"all_delay"`
		AllCost        float64  `json:"all_cost"`
		PercentWinners float64  `json:"percent_winners"`
		WinDelay       *float64 `json:"win_delay"`
		WinCost        *float64 `json:"win_cost"`
	}
	o := out{
		Count:          s.Count,
		AllDelay:       s.AllDelay,
		AllCost:        s.AllCost,
		PercentWinners: s.PercentWinners,
	}
	if !math.IsNaN(s.WinDelay) {
		v := s.WinDelay
		o.WinDelay = &v
	}
	if !math.IsNaN(s.WinCost) {
		v := s.WinCost
		o.WinCost = &v
	}
	return json.Marshal(o)
}

// UnmarshalJSON is the inverse of MarshalJSON; null winners-only fields
// decode to NaN.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var o struct {
		Count          int      `json:"count"`
		AllDelay       float64  `json:"all_delay"`
		AllCost        float64  `json:"all_cost"`
		PercentWinners float64  `json:"percent_winners"`
		WinDelay       *float64 `json:"win_delay"`
		WinCost        *float64 `json:"win_cost"`
	}
	if err := json.Unmarshal(data, &o); err != nil {
		return err
	}
	s.Count = o.Count
	s.AllDelay = o.AllDelay
	s.AllCost = o.AllCost
	s.PercentWinners = o.PercentWinners
	s.WinDelay, s.WinCost = math.NaN(), math.NaN()
	if o.WinDelay != nil {
		s.WinDelay = *o.WinDelay
	}
	if o.WinCost != nil {
		s.WinCost = *o.WinCost
	}
	return nil
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (NaN for fewer than
// two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs; NaN for empty input or any
// non-positive value.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// SpearmanRank returns Spearman's rank correlation coefficient between xs
// and ys — the "fidelity" statistic: how well one delay model's ranking of
// routing candidates predicts another's. Ties receive fractional (average)
// ranks. Returns NaN for fewer than two points or zero rank variance.
func SpearmanRank(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	rx := ranks(xs)
	ry := ranks(ys)
	mx, my := Mean(rx), Mean(ry)
	var num, dx2, dy2 float64
	for i := range rx {
		dx := rx[i] - mx
		dy := ry[i] - my
		num += dx * dy
		dx2 += dx * dx
		dy2 += dy * dy
	}
	if dx2 == 0 || dy2 == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(dx2*dy2)
}

// ranks assigns 1-based average ranks, handling ties.
func ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	order := make([]iv, len(xs))
	for i, v := range xs {
		order[i] = iv{i, v}
	}
	// Insertion sort by value (candidate lists are small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].v < order[j-1].v; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]float64, len(xs))
	for i := 0; i < len(order); {
		j := i
		for j < len(order) && order[j].v == order[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[order[k].idx] = avg
		}
		i = j
	}
	return out
}

// fmtRatio renders a ratio like the paper (two decimals), or NA for NaN.
func fmtRatio(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return fmt.Sprintf("%.2f", v)
}

// fmtPercent renders a winner percentage (whole number), or NA for NaN.
func fmtPercent(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return fmt.Sprintf("%.0f", v)
}

// Row renders a Summary as one table row in the paper's column order:
// size | All Delay | All Cost | %Winners | Win Delay | Win Cost.
func (s Summary) Row(label string) string {
	return fmt.Sprintf("%6s | %8s %8s | %8s | %8s %8s",
		label, fmtRatio(s.AllDelay), fmtRatio(s.AllCost),
		fmtPercent(s.PercentWinners), fmtRatio(s.WinDelay), fmtRatio(s.WinCost))
}

// Header returns the column header matching Row.
func Header() string {
	h := fmt.Sprintf("%6s | %8s %8s | %8s | %8s %8s",
		"size", "Delay", "Cost", "%Win", "WinDelay", "WinCost")
	return h + "\n" + strings.Repeat("-", len(h))
}
