package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"nontree/internal/analysis"
)

// TestRepositoryIsClean runs the full multichecker over every package in
// the module and asserts zero diagnostics and zero stale allows, locking
// the tree's clean state: any new map-ordering, oracle-mutation,
// nondeterminism-source, float-equality, unit-mismatch, lock-discipline,
// goroutine-leak, stale-probe, or metric-name site fails this test (and
// the CI lint gate) until it is fixed or carries a justified
// //nontree:allow annotation — and an annotation that stops suppressing
// anything fails it again until removed.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	var out strings.Builder
	// The module-path pattern resolves from any working directory inside
	// the module, unlike "./..." which would only cover this command.
	diags, stale, err := analysis.RunStale(&out, "", Analyzers, nil, "nontree/...")
	if err != nil {
		t.Fatalf("running multichecker: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("expected a clean tree, got %d finding(s):\n%s", len(diags), out.String())
	}
	for _, s := range stale {
		t.Errorf("stale annotation: %s", s.String())
	}
}

// TestAnalyzerRoster locks the suite composition: dropping an analyzer
// from the multichecker must be a deliberate, reviewed change.
func TestAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"detflow":      true,
		"detordering":  true,
		"epochcheck":   true,
		"floatcmp":     true,
		"goroleak":     true,
		"lockguard":    true,
		"lockorder":    true,
		"nondetsource": true,
		"obsnames":     true,
		"oraclesafety": true,
		"purityflow":   true,
		"unitcheck":    true,
	}
	if len(Analyzers) != len(want) {
		t.Fatalf("expected %d analyzers, got %d", len(want), len(Analyzers))
	}
	for _, a := range Analyzers {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
	}
	for i := 1; i < len(Analyzers); i++ {
		if Analyzers[i-1].Name >= Analyzers[i].Name {
			t.Errorf("registry order: %q before %q (must be sorted by name)",
				Analyzers[i-1].Name, Analyzers[i].Name)
		}
	}
}

// TestJSONDiagRoundTrip locks the -json wire shape consumed by CI
// tooling: field names are part of the interface.
func TestJSONDiagRoundTrip(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "detflow",
		Message:  "boom",
	}
	b, err := json.Marshal(toJSONDiag(d, true))
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, want := range []string{`"file":"x.go"`, `"line":3`, `"col":7`, `"analyzer":"detflow"`, `"message":"boom"`, `"suppressed":true`} {
		if !strings.Contains(got, want) {
			t.Errorf("JSON %s missing %s", got, want)
		}
	}
	b, err = json.Marshal(toJSONDiag(d, false))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "suppressed") {
		t.Errorf("unsuppressed diagnostic should omit the suppressed field: %s", b)
	}
}

// TestAnnotationEscaping locks the GitHub workflow-command escaping: a
// message containing newlines, percent signs, or command metacharacters
// must not break out of the ::error data section.
func TestAnnotationEscaping(t *testing.T) {
	var out strings.Builder
	res := analysis.Result{
		Diags: []analysis.Diagnostic{{
			Pos:      token.Position{Filename: "a,b.go", Line: 2, Column: 4},
			Analyzer: "lockorder",
			Message:  "first\nsecond 100%",
		}},
		Stale: []analysis.StaleAllow{{File: "c.go", Line: 9, Analyzer: "detflow", Reason: "matches no diagnostic"}},
	}
	emitAnnotations(&out, res)
	got := out.String()
	want := "::error file=a%2Cb.go,line=2,col=4,title=lockorder::first%0Asecond 100%25\n" +
		"::error file=c.go,line=9,title=stale-allow::stale //nontree:allow detflow: matches no diagnostic\n"
	if got != want {
		t.Errorf("annotations:\n got %q\nwant %q", got, want)
	}
}
