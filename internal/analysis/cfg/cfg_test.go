package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns its graph.
func parseBody(t *testing.T, body string) (*token.FileSet, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return fset, New(fn.Body)
}

// nodeText renders a node's source-ish identity for assertions: the first
// identifier or literal token found.
func firstIdent(n ast.Node) string {
	name := ""
	ast.Inspect(n, func(x ast.Node) bool {
		if name != "" {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			name = id.Name
			return false
		}
		return true
	})
	return name
}

// blockIdents lists the first identifier of every node in a block.
func blockIdents(b *Block) []string {
	var out []string
	for _, n := range b.Nodes {
		out = append(out, firstIdent(n))
	}
	return out
}

func TestStraightLine(t *testing.T) {
	_, g := parseBody(t, "a := 1\nb := a\n_ = b")
	if len(g.Blocks) != 1 {
		t.Fatalf("expected 1 block, got %d:\n%s", len(g.Blocks), g)
	}
	if got := blockIdents(g.Blocks[0]); len(got) != 3 {
		t.Fatalf("expected 3 nodes, got %v", got)
	}
}

func TestIfElseJoins(t *testing.T) {
	_, g := parseBody(t, `
a := 1
if a > 0 {
	a = 2
} else {
	a = 3
}
_ = a`)
	// entry, join, then, else
	if len(g.Blocks) != 4 {
		t.Fatalf("expected 4 blocks, got %d:\n%s", len(g.Blocks), g)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry should have 2 successors, got %d", len(entry.Succs))
	}
	join := g.Blocks[1]
	if got := blockIdents(join); len(got) != 1 || got[0] != "_" {
		t.Errorf("join block nodes = %v, want the trailing assignment", got)
	}
	for _, s := range entry.Succs {
		if len(s.Succs) != 1 || s.Succs[0] != join {
			t.Errorf("branch block b%d does not flow to join", s.Index)
		}
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	_, g := parseBody(t, "a := 1\nif a > 0 {\n\ta = 2\n}\n_ = a")
	entry := g.Blocks[0]
	join := g.Blocks[1]
	// head → then and head → join directly.
	found := false
	for _, s := range entry.Succs {
		if s == join {
			found = true
		}
	}
	if !found {
		t.Fatalf("if without else must edge head → join:\n%s", g)
	}
}

func TestForLoopShape(t *testing.T) {
	_, g := parseBody(t, `
for i := 0; i < 3; i++ {
	_ = i
}
done()`)
	// Find the head: the block whose Ctrl is the ForStmt.
	var head *Block
	for _, b := range g.Blocks {
		if _, ok := b.Ctrl.(*ast.ForStmt); ok {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no block carries the ForStmt Ctrl:\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop head should branch to exit and body, got %d succs", len(head.Succs))
	}
	// The loop must contain a cycle back to the head.
	reach := g.Reachable()
	for i, ok := range reach {
		if !ok && len(g.Blocks[i].Nodes) > 0 {
			t.Errorf("block b%d with nodes is unreachable", i)
		}
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	_, g := parseBody(t, "for {\n\tspin()\n}\nafter()")
	reach := g.Reachable()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "after" && reach[b.Index] {
				t.Fatalf("code after `for {}` must be unreachable:\n%s", g)
			}
		}
	}
}

func TestBreakReachesExit(t *testing.T) {
	_, g := parseBody(t, `
for {
	if stop() {
		break
	}
}
after()`)
	reach := g.Reachable()
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "after" && reach[b.Index] {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("break must make post-loop code reachable:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	_, g := parseBody(t, `
outer:
for {
	for {
		break outer
	}
}
after()`)
	reach := g.Reachable()
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "after" && reach[b.Index] {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("labeled break must escape both loops:\n%s", g)
	}
}

func TestReturnTerminates(t *testing.T) {
	_, g := parseBody(t, "return\nunreached()")
	reach := g.Reachable()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "unreached" && reach[b.Index] {
				t.Fatalf("code after return must be unreachable:\n%s", g)
			}
		}
	}
}

func TestPanicTerminates(t *testing.T) {
	_, g := parseBody(t, `panic("boom")
unreached()`)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "unreached" && reach[b.Index] {
				t.Fatalf("code after panic must be unreachable:\n%s", g)
			}
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	_, g := parseBody(t, `
switch x() {
case 1:
	one()
	fallthrough
case 2:
	two()
default:
	other()
}
after()`)
	// Find the clause block holding one(); its successors must include the
	// block holding two().
	var oneB, twoB *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch firstIdent(n) {
			case "one":
				oneB = b
			case "two":
				twoB = b
			}
		}
	}
	if oneB == nil || twoB == nil {
		t.Fatalf("clause blocks not found:\n%s", g)
	}
	found := false
	for _, s := range oneB.Succs {
		if s == twoB {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough must edge case 1 → case 2:\n%s", g)
	}
}

func TestSwitchWithDefaultHasNoHeadExitEdge(t *testing.T) {
	_, g := parseBody(t, `
switch x() {
case 1:
	one()
default:
	other()
}
return`)
	// With a default clause every path goes through a clause; the head must
	// not edge straight to the exit. Head = entry block here.
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("switch head should have exactly the 2 clause successors, got %d:\n%s", len(entry.Succs), g)
	}
}

func TestSelectCommNodesRecorded(t *testing.T) {
	_, g := parseBody(t, `
select {
case v := <-ch:
	use(v)
case out <- 1:
	sent()
}`)
	// Each comm clause block's first node is the comm statement.
	receives := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					receives++
				}
				return true
			})
		}
	}
	if receives == 0 {
		t.Fatalf("select receive comm not recorded in any block:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	_, g := parseBody(t, `
goto done
skipped()
done:
after()`)
	reach := g.Reachable()
	sawAfter, sawSkipped := false, false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch firstIdent(n) {
			case "after":
				sawAfter = sawAfter || reach[b.Index]
			case "skipped":
				sawSkipped = sawSkipped || reach[b.Index]
			}
		}
	}
	if !sawAfter {
		t.Errorf("goto target must be reachable:\n%s", g)
	}
	if sawSkipped {
		t.Errorf("statement jumped over must be unreachable:\n%s", g)
	}
}

func TestRangeHeadCtrl(t *testing.T) {
	_, g := parseBody(t, "for k, v := range m {\n\tuse(k, v)\n}")
	var head *Block
	for _, b := range g.Blocks {
		if _, ok := b.Ctrl.(*ast.RangeStmt); ok {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("range head Ctrl not set:\n%s", g)
	}
	if got := blockIdents(head); len(got) != 1 || got[0] != "m" {
		t.Errorf("range head should evaluate the operand, got %v", got)
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Blocks) != 1 || len(g.Blocks[0].Nodes) != 0 {
		t.Fatalf("nil body should yield one empty block, got:\n%s", g)
	}
}

// TestForwardLockToy runs the dataflow engine on a toy "is the lock held"
// analysis: lock()/unlock() calls gen/kill a single bit; the merge of a
// held and a not-held path must report not-held (meet = AND).
func TestForwardLockToy(t *testing.T) {
	_, g := parseBody(t, `
lock()
if cond() {
	unlock()
}
probe()`)
	flow := Flow{
		Entry: func() any { return false },
		Transfer: func(b *Block, in any) any {
			held := in.(bool)
			for _, n := range b.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch firstIdent(call.Fun) {
					case "lock":
						held = true
					case "unlock":
						held = false
					}
					return true
				})
			}
			return held
		},
		Meet:  func(a, b any) any { return a.(bool) && b.(bool) },
		Equal: func(a, b any) bool { return a == b },
	}
	ins := Forward(g, flow)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "probe" {
				if ins[b.Index] == nil {
					t.Fatalf("probe block unreachable:\n%s", g)
				}
				if held := ins[b.Index].(bool); held {
					t.Errorf("merge of held/not-held must be not-held at probe")
				}
			}
		}
	}
}

// TestForwardLoopFixpoint verifies the engine converges on a loop: a fact
// generated before the loop must survive the back edge.
func TestForwardLoopFixpoint(t *testing.T) {
	_, g := parseBody(t, `
lock()
for i := 0; i < 3; i++ {
	probe()
}
after()`)
	flow := Flow{
		Entry: func() any { return false },
		Transfer: func(b *Block, in any) any {
			held := in.(bool)
			for _, n := range b.Nodes {
				if firstIdent(n) == "lock" {
					held = true
				}
			}
			return held
		},
		Meet:  func(a, b any) any { return a.(bool) && b.(bool) },
		Equal: func(a, b any) bool { return a == b },
	}
	ins := Forward(g, flow)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if firstIdent(n) == "probe" || firstIdent(n) == "after" {
				if ins[b.Index] == nil || !ins[b.Index].(bool) {
					t.Errorf("lock fact lost at %s (block b%d)", firstIdent(n), b.Index)
				}
			}
		}
	}
}

// TestDeferOrderRecorded pins the defer representation: defers are plain
// nodes at their syntactic position, in source order — the graph does not
// model the LIFO run-at-exit semantics, and clients (lockguard's
// deferred-unlock handling, lockorder's pair sources) rely on seeing them
// in registration order.
func TestDeferOrderRecorded(t *testing.T) {
	_, g := parseBody(t, "defer a()\ndefer b()\nwork()")
	if len(g.Blocks) != 1 {
		t.Fatalf("straight-line defers should stay one block:\n%s", g)
	}
	got := blockIdents(g.Blocks[0])
	want := []string{"a", "b", "work"}
	if len(got) != len(want) {
		t.Fatalf("nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nodes = %v, want registration order %v", got, want)
		}
	}
	if _, ok := g.Blocks[0].Nodes[0].(*ast.DeferStmt); !ok {
		t.Errorf("defer must be recorded as the DeferStmt itself, got %T", g.Blocks[0].Nodes[0])
	}
}

// TestSelectWithDefault verifies the non-blocking select shape: every comm
// clause AND the default clause are successors, and code after the select
// is reachable through each.
func TestSelectWithDefault(t *testing.T) {
	_, g := parseBody(t, `
select {
case <-ch:
	recv()
default:
	fallback()
}
after()`)
	reach := g.Reachable()
	saw := map[string]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			name := firstIdent(n)
			if name == "recv" || name == "fallback" || name == "after" {
				saw[name] = saw[name] || reach[b.Index]
			}
		}
	}
	for _, name := range []string{"recv", "fallback", "after"} {
		if !saw[name] {
			t.Errorf("%s must be reachable in select-with-default:\n%s", name, g)
		}
	}
}

// TestForwardBudgetPanic locks the non-convergence backstop: a widening
// lattice (Equal always false) on a loop must hit the iteration budget
// and panic rather than spin forever.
func TestForwardBudgetPanic(t *testing.T) {
	_, g := parseBody(t, "for {\n\tspin()\n}")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the dataflow budget panic, got none")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "did not converge") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	Forward(g, Flow{
		Entry:    func() any { return 0 },
		Transfer: func(b *Block, in any) any { return in.(int) + 1 }, // ever-growing
		Meet:     func(a, b any) any { return a.(int) + b.(int) },
		Equal:    func(a, b any) bool { return false }, // widening: never stable
	})
}

// TestStringRendering pins the debug format loosely.
func TestStringRendering(t *testing.T) {
	_, g := parseBody(t, "a := 1\n_ = a")
	s := g.String()
	if !strings.HasPrefix(s, "b0[2]") {
		t.Errorf("unexpected String() output: %q", s)
	}
}
