// Package serve implements the nontree-serve daemon: a small HTTP server
// exposing the routing algorithms (POST /route), live Prometheus metrics
// (GET /metrics), health (GET /healthz), retained execution traces
// (GET /traces/<id>), per-request wide events (GET /logs), and the
// standard pprof profiling endpoints.
//
// The daemon is an introspection surface over the deterministic library:
// every /route reply carries a trace id whose JSONL export replays to the
// exact decision sequence of the run (DESIGN.md §11), and a request id
// resolving via /logs?request=<id> to one wide event attributing the
// request's latency to queue wait, body decode, sweep bookkeeping, oracle
// evaluations and trace storage (DESIGN.md §16). A production routing can
// be re-derived and diffed offline with cmd/tracereplay.
package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/olog"
	"nontree/internal/trace"
)

// Server-side observability names, exposed through /metrics alongside the
// algorithm catalog. The values live in the internal/obs names catalog
// (ServeCounterNames / TimingNames); these aliases keep call sites short
// and are interchangeable with the obs spellings under the obsnames lint.
const (
	// CtrRouteRequests counts /route requests accepted for routing.
	CtrRouteRequests = obs.CtrRouteRequests
	// CtrRouteErrors counts /route requests that failed (bad input or
	// routing error).
	CtrRouteErrors = obs.CtrRouteErrors
	// CtrRouteRejected counts /route requests shed by the concurrency
	// limiter or refused while draining.
	CtrRouteRejected = obs.CtrRouteRejected
	// CtrTraceEvictions counts traces evicted from the retention window.
	CtrTraceEvictions = obs.CtrTraceEvictions
	// CtrLogEvents counts wide events appended to the request log.
	CtrLogEvents = obs.CtrLogEvents
	// CtrLogDropped counts wide events discarded because logging is
	// disabled.
	CtrLogDropped = obs.CtrLogDropped
	// CtrLogEvictions counts wide events evicted from the log ring.
	CtrLogEvictions = obs.CtrLogEvictions
	// TimeRouteSeconds is the wall-clock /route handling distribution.
	TimeRouteSeconds = obs.TimeRouteSeconds
)

// Options tunes a Server. The zero value is fully usable.
type Options struct {
	// MaxConcurrent bounds simultaneously executing /route requests;
	// excess requests are shed with 429 (0 = 2×GOMAXPROCS).
	MaxConcurrent int
	// TraceCapacity is the per-request trace ring size (0 = 1<<16).
	TraceCapacity int
	// MaxTraces bounds retained traces; the oldest is evicted first
	// (0 = 64).
	MaxTraces int
	// MaxLogEvents bounds the retained wide events at /logs — one per
	// /route request, oldest evicted first (0 = olog.DefaultRingCapacity;
	// negative disables request logging entirely, counting each skipped
	// event under serve.log.dropped).
	MaxLogEvents int
	// MaxBodyBytes bounds the /route request body (0 = 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds /route handling wall-clock time (0 = 60s).
	RequestTimeout time.Duration
	// Metrics receives server and algorithm metrics (nil = a fresh
	// preregistered registry).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = 1 << 16
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
		obs.Preregister(o.Metrics)
	}
	return o
}

// Server is the nontree-serve HTTP application state. Create with New,
// mount Handler on an http.Server, and call BeginDrain before shutdown so
// load balancers see /healthz flip unhealthy while in-flight requests
// finish.
type Server struct {
	opts     Options
	metrics  *obs.Registry
	slots    chan struct{} // concurrency limiter for /route
	draining atomic.Bool
	inflight atomic.Int64
	traceSeq atomic.Uint64
	reqSeq   atomic.Uint64
	// logs retains one wide event per /route request (nil = disabled).
	// olog.Ring is a leaf lock like trace.Ring, so it may be touched from
	// anywhere in the handler without ordering concerns.
	logs *olog.Ring

	// mu is the outermost lock of the daemon: it may be held while calling
	// into trace.Ring, olog.Ring and obs.Registry (all leaf locks), never
	// the reverse. The lockorder analyzer verifies the Server →
	// Ring/Registry nesting stays acyclic (DESIGN.md §14).
	mu sync.Mutex
	// traces maps trace id → element in order.
	//nontree:guardedby mu
	traces map[string]*list.Element
	// order keeps retention order: front = oldest, back = newest.
	//nontree:guardedby mu
	order *list.List

	// routeStall, when non-nil, is called inside handleRoute right after
	// the concurrency slot is acquired and the request is counted in
	// flight — a test hook that lets the shed/timeout/drain tests hold a
	// request in flight deterministically. Never set outside tests.
	routeStall func()
}

// storedTrace is one retained trace with its provenance: the exact request
// that produced it, so tracereplay can re-run the identical workload.
type storedTrace struct {
	id      string
	events  []trace.Event
	dropped int64
	req     RouteRequest
}

// New returns a Server ready to mount. Whatever registry the options
// carry (supplied or defaulted) gets the serve catalog preregistered, so
// /metrics exposes the daemon surface from the first scrape.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	obs.PreregisterServe(opts.Metrics)
	s := &Server{
		opts:    opts,
		metrics: opts.Metrics,
		slots:   make(chan struct{}, opts.MaxConcurrent),
		traces:  make(map[string]*list.Element),
		order:   list.New(),
	}
	if opts.MaxLogEvents >= 0 {
		s.logs = olog.NewRing(opts.MaxLogEvents)
	}
	return s
}

// Metrics exposes the server's registry (for embedding tests and the CLI).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Logs exposes the wide-event ring (nil when request logging is disabled)
// for embedding tests and in-process drivers.
func (s *Server) Logs() *olog.Ring { return s.logs }

// BeginDrain flips the server unhealthy: /healthz answers 503 and new
// /route requests are refused, while already-running requests and trace or
// metrics reads keep working. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports currently executing /route requests.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Handler returns the full route table. The /route endpoint is wrapped in
// http.TimeoutHandler inside the request-identity middleware — the
// X-Request-ID header is set on the outer ResponseWriter, so even the
// timeout 503 names the wide event it produced. Reads (/metrics,
// /healthz, /traces, /logs) stay un-timed so they remain responsive under
// load.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/route", s.withRequestID(http.TimeoutHandler(
		http.HandlerFunc(s.handleRoute), s.opts.RequestTimeout,
		`{"error":"request timed out"}`)))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/traces/", s.handleTrace)
	mux.HandleFunc("/logs", s.handleLogs)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// reqMetaKey keys the request metadata in the request context.
type reqMetaKey struct{}

// reqMeta is one request's identity and clock, created by withRequestID
// before the timeout handler so both survive a timeout.
type reqMeta struct {
	id string
	// elapsed reports seconds since the request entered the middleware —
	// the single stopwatch every phase mark is cut from, so phase
	// durations sum to the total by construction.
	elapsed func() float64
}

// withRequestID assigns the stable request identity ("r%08d", in arrival
// order) and starts the request stopwatch. It runs OUTSIDE
// http.TimeoutHandler: the X-Request-ID header lands on the outer
// ResponseWriter, which the timeout 503 inherits, so a timed-out client
// can still resolve its wide event.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		meta := &reqMeta{
			id:      fmt.Sprintf("r%08d", s.reqSeq.Add(1)),
			elapsed: obs.Stopwatch(),
		}
		w.Header().Set("X-Request-ID", meta.id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, meta)))
	})
}

// PhaseBreakdown is the per-phase wall-clock attribution of one /route
// request, echoed in the reply and recorded in the request's wide event.
// The five phases sum to TotalSeconds exactly: every mark is cut from one
// stopwatch, and sweep vs. oracle time split the routing interval
// (oracle = the request's core.oracle.seconds span sum, clamped to the
// interval since concurrent workers can over-count wall time).
type PhaseBreakdown struct {
	QueueSeconds  float64 `json:"queue_seconds"`
	DecodeSeconds float64 `json:"decode_seconds"`
	SweepSeconds  float64 `json:"sweep_seconds"`
	OracleSeconds float64 `json:"oracle_seconds"`
	StoreSeconds  float64 `json:"store_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`
}

// RouteRequest is the /route request body: a net plus routing options.
type RouteRequest struct {
	// Net is the signal net to route (pins[0] is the source).
	Net *netlist.Net `json:"net"`
	RouteOptions
}

// RouteResponse is the /route reply.
type RouteResponse struct {
	*RouteResult
	// RequestID resolves the request's wide event at /logs?request=<id>
	// while it stays within the log retention window; also echoed in the
	// X-Request-ID response header.
	RequestID string `json:"request_id"`
	// TraceID retrieves the run's execution trace from /traces/<id> while
	// it stays within the server's retention window.
	TraceID string `json:"trace_id"`
	// TraceEvents and TraceDropped report the ring occupancy: Dropped > 0
	// means the ring overflowed and the retained trace is a suffix.
	TraceEvents  int   `json:"trace_events"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// Phases attributes the request's server-side latency per phase.
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID names the request's wide event; empty on endpoints that
	// run outside the request-identity middleware (/traces, /metrics).
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// emit finalizes and records the request's wide event: stamps the total
// and its exemplar latency bucket, then appends to the log ring. Exactly
// one emit happens per /route request, whatever its outcome.
func (s *Server) emit(meta *reqMeta, ev *olog.Event) {
	ev.TotalSeconds = meta.elapsed()
	ev.LatencyBucket = obs.BucketIndex(ev.TotalSeconds)
	if s.logs == nil {
		s.metrics.Add(CtrLogDropped, 1)
		return
	}
	if s.logs.Append(*ev) {
		s.metrics.Add(CtrLogEvictions, 1)
	}
	s.metrics.Add(CtrLogEvents, 1)
}

// failRoute answers a failed /route request and emits its wide event. If
// the request timed out meanwhile, the client already holds the timeout
// 503 from http.TimeoutHandler and any write here would be discarded — the
// event is recorded as a timeout instead, so the outcome in the log always
// matches what the client saw.
func (s *Server) failRoute(w http.ResponseWriter, r *http.Request, meta *reqMeta,
	ev *olog.Event, status int, outcome, format string, args ...any) {

	if r.Context().Err() == context.DeadlineExceeded {
		ev.Status = http.StatusServiceUnavailable
		ev.Outcome = olog.OutcomeTimeout
		ev.Error = "request timed out"
		s.emit(meta, ev)
		return
	}
	msg := fmt.Sprintf(format, args...)
	ev.Status = status
	ev.Outcome = outcome
	ev.Error = msg
	writeJSON(w, status, errorResponse{Error: msg, RequestID: meta.id})
	s.emit(meta, ev)
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	meta, _ := r.Context().Value(reqMetaKey{}).(*reqMeta)
	if meta == nil {
		// Defensive: handleRoute is only ever mounted behind withRequestID.
		meta = &reqMeta{id: fmt.Sprintf("r%08d", s.reqSeq.Add(1)), elapsed: obs.Stopwatch()}
		w.Header().Set("X-Request-ID", meta.id)
	}
	ev := olog.Event{RequestID: meta.id}

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.failRoute(w, r, meta, &ev, http.StatusMethodNotAllowed, olog.OutcomeError, "POST only")
		return
	}
	if s.draining.Load() {
		s.metrics.Add(CtrRouteRejected, 1)
		// Drain is transient — the replacement process is seconds away, so
		// tell clients to retry like the limiter does.
		w.Header().Set("Retry-After", "1")
		s.failRoute(w, r, meta, &ev, http.StatusServiceUnavailable, olog.OutcomeDrained, "server is draining")
		return
	}
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	default:
		s.metrics.Add(CtrRouteRejected, 1)
		w.Header().Set("Retry-After", "1")
		s.failRoute(w, r, meta, &ev, http.StatusTooManyRequests, olog.OutcomeShed, "concurrency limit reached")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.routeStall != nil {
		s.routeStall()
	}
	tQueue := meta.elapsed()
	ev.QueueSeconds = tQueue

	var req RouteRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.Add(CtrRouteErrors, 1)
		ev.DecodeSeconds = meta.elapsed() - tQueue
		s.failRoute(w, r, meta, &ev, http.StatusBadRequest, olog.OutcomeError, "decoding request: %v", err)
		return
	}
	tDecode := meta.elapsed()
	ev.DecodeSeconds = tDecode - tQueue
	if req.Net != nil {
		ev.Net = req.Net.Name
		ev.Pins = len(req.Net.Pins)
	}
	// Echo the normalized options in the event when they are valid; an
	// invalid combination surfaces as a routing error below with the raw
	// options omitted.
	if norm, err := ValidateRouteOptions(req.RouteOptions); err == nil {
		ev.Algo, ev.Oracle, ev.Workers = norm.Algo, norm.Oracle, norm.Workers
	}
	if req.Net == nil {
		s.metrics.Add(CtrRouteErrors, 1)
		s.failRoute(w, r, meta, &ev, http.StatusBadRequest, olog.OutcomeError, "missing net")
		return
	}

	s.metrics.Add(CtrRouteRequests, 1)
	span := obs.StartSpan(s.metrics, TimeRouteSeconds)
	ring := trace.NewRing(s.opts.TraceCapacity)
	// A private registry scoped to this request rides alongside the shared
	// one: its counters ARE the request's deltas (no subtraction races)
	// and its core.oracle.seconds sum is this request's oracle time.
	priv := obs.NewRegistry()
	res, err := RunTagged(req.Net, req.RouteOptions, meta.id, obs.Multi{priv, s.metrics}, ring)
	span.End()
	tRun := meta.elapsed()
	runSeconds := tRun - tDecode

	snap := priv.Snapshot()
	ev.Candidates = snap.Counters[obs.CtrSweepCandidates]
	ev.Accepted = snap.Counters[obs.CtrAcceptedEdges]
	ev.Pruned = snap.Counters[obs.CtrCandidatesPruned]
	ev.OracleEvals = snap.Counters[obs.CtrOracleEvaluations]
	ev.CacheHits = snap.Counters[obs.CtrIncrementalHits]
	oracleSeconds := snap.Timings[obs.TimeOracleSeconds].Sum
	if oracleSeconds > runSeconds {
		// Concurrent workers accumulate span time faster than wall time;
		// clamp so the phases still sum to the total.
		oracleSeconds = runSeconds
	}
	ev.OracleSeconds = oracleSeconds
	ev.SweepSeconds = runSeconds - oracleSeconds

	if err != nil {
		s.metrics.Add(CtrRouteErrors, 1)
		s.failRoute(w, r, meta, &ev, http.StatusUnprocessableEntity, olog.OutcomeError, "routing failed: %v", err)
		return
	}
	if r.Context().Err() == context.DeadlineExceeded {
		// The client already received the timeout 503; retaining the trace
		// would let an abandoned run evict traces of answered requests, so
		// only the wide event records this request.
		ev.Status = http.StatusServiceUnavailable
		ev.Outcome = olog.OutcomeTimeout
		ev.Error = "request timed out"
		s.emit(meta, &ev)
		return
	}

	st := &storedTrace{
		id:      fmt.Sprintf("t%06d", s.traceSeq.Add(1)),
		events:  ring.Events(),
		dropped: ring.Dropped(),
		req:     req,
	}
	s.storeTrace(st)
	tStore := meta.elapsed()
	ev.StoreSeconds = tStore - tRun
	ev.TraceID = st.id
	ev.TraceEvents = len(st.events)
	ev.TraceDropped = st.dropped
	ev.Status = http.StatusOK
	ev.Outcome = olog.OutcomeOK

	writeJSON(w, http.StatusOK, RouteResponse{
		RouteResult:  res,
		RequestID:    meta.id,
		TraceID:      st.id,
		TraceEvents:  len(st.events),
		TraceDropped: st.dropped,
		Phases: &PhaseBreakdown{
			QueueSeconds:  ev.QueueSeconds,
			DecodeSeconds: ev.DecodeSeconds,
			SweepSeconds:  ev.SweepSeconds,
			OracleSeconds: ev.OracleSeconds,
			StoreSeconds:  ev.StoreSeconds,
			TotalSeconds:  tStore,
		},
	})
	s.emit(meta, &ev)
}

func (s *Server) storeTrace(st *storedTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces[st.id] = s.order.PushBack(st)
	for s.order.Len() > s.opts.MaxTraces {
		oldest := s.order.Remove(s.order.Front()).(*storedTrace)
		delete(s.traces, oldest.id)
		s.metrics.Add(CtrTraceEvictions, 1)
	}
}

func (s *Server) lookupTrace(id string) *storedTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.traces[id]
	if !ok {
		return nil
	}
	// A fetch refreshes retention: the traces being inspected stay around.
	s.order.MoveToBack(el)
	return el.Value.(*storedTrace)
}

// traceRetained reports whether the trace is still within retention
// WITHOUT refreshing its LRU position — inspecting a log must not change
// which traces get evicted next.
func (s *Server) traceRetained(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.traces[id]
	return ok
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeError(w, http.StatusNotFound, "no such trace")
		return
	}
	st := s.lookupTrace(id)
	if st == nil {
		writeError(w, http.StatusNotFound, "trace %q not retained", id)
		return
	}
	if r.URL.Query().Get("request") == "1" {
		// The provenance view: the exact request that produced the trace,
		// ready to feed back into tracereplay -request.
		writeJSON(w, http.StatusOK, st.req)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Trace-Dropped", fmt.Sprintf("%d", st.dropped))
	if err := trace.WriteJSONL(w, st.events); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// handleLogs serves the wide-event log: plain GET /logs streams every
// retained event as canonical JSONL (oldest first); GET /logs?request=<id>
// resolves one request. Resolution tombstones rather than 404s a stale
// exemplar: when the event's trace has already aged out of retention, the
// event is served with trace_tombstoned set — the request's history
// outlives its trace (DESIGN.md §16). 404 means the event itself was
// evicted (or never existed).
func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.logs == nil {
		writeError(w, http.StatusNotFound, "request logging disabled")
		return
	}
	if id := r.URL.Query().Get("request"); id != "" {
		ev, ok := s.logs.Find(id)
		if !ok {
			writeError(w, http.StatusNotFound, "request %q not retained", id)
			return
		}
		if ev.TraceID != "" && !s.traceRetained(ev.TraceID) {
			ev.TraceTombstoned = true
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = olog.WriteJSONL(w, []olog.Event{ev})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Log-Dropped", fmt.Sprintf("%d", s.logs.Dropped()))
	_ = s.logs.WriteJSONL(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, s.metrics.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
	}{state, s.inflight.Load()})
}
