// Package a exercises purityflow: mutations laundered through helper
// chains out of oracle methods, against the clean per-call-workspace
// idiom.
package a

import "sync"

type Oracle struct {
	scratch []float64
	calls   int
}

// SinkDelays launders a receiver write two helpers deep.
func (o *Oracle) SinkDelays(n int) []float64 {
	out := make([]float64, n)
	o.fill(out) // want `SinkDelays calls a\.\(Oracle\)\.fill -> a\.\(Oracle\)\.bump, which writes receiver state`
	return out
}

func (o *Oracle) fill(out []float64) {
	o.bump()
	for i := range out {
		out[i] = 1
	}
}

func (o *Oracle) bump() { o.calls++ }

var cache = map[int]float64{}

// Evaluate writes a package-level memo table through a helper.
func (o *Oracle) Evaluate(x int) float64 {
	return memo(x) // want `Evaluate calls a\.memo, which writes package-level variable a\.cache`
}

func memo(x int) float64 {
	v := float64(x)
	cache[x] = v
	return v
}

// Eval hands its receiver's scratch buffer to a helper that writes
// through the slice parameter: the parameter effect re-classifies onto
// the receiver at the call site.
func (o *Oracle) Eval(n int) float64 {
	scale(o.scratch) // want `Eval calls a\.scale, which writes receiver state`
	return float64(n)
}

func scale(v []float64) {
	if len(v) > 0 {
		v[0] *= 2
	}
}

type LitOracle struct{ hits int }

// Eval mutates the receiver from inside a function literal: the captured
// write re-classifies onto the receiver when the literal is invoked.
func (l *LitOracle) Eval(x float64) float64 {
	f := func() { l.hits++ }
	f() // want `Eval calls a\.\(LitOracle\)\.Eval\$1, which writes receiver state`
	return x
}

type Clean struct{ dim int }

// SinkDelays is the sanctioned shape: per-call workspaces, helpers that
// only write locals and their own out-parameters. No diagnostics.
func (c *Clean) SinkDelays(n int) []float64 {
	buf := newBuf(n)
	fillLocal(buf)
	return buf
}

func newBuf(n int) []float64 { return make([]float64, n) }

func fillLocal(b []float64) {
	for i := range b {
		b[i] = 2
	}
}

type MuOracle struct {
	mu  sync.Mutex
	buf []float64
}

// Evaluate also launders through a recursive helper pair — the SCC
// fixpoint must converge and still surface the effect.
func (m *MuOracle) Evaluate(n int) float64 {
	return m.evenStep(n) // want `Evaluate calls a\.\(MuOracle\)\.evenStep, which writes receiver state`
}

func (m *MuOracle) evenStep(n int) float64 {
	if n <= 0 {
		m.buf = append(m.buf, 0)
		return 0
	}
	return m.oddStep(n - 1)
}

func (m *MuOracle) oddStep(n int) float64 {
	if n <= 0 {
		return 1
	}
	return m.evenStep(n - 1)
}
