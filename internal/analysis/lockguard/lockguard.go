// Package lockguard verifies mutex discipline declared by field
// annotations: every access to a struct field carrying
//
//	//nontree:guardedby <mu>
//
// (where <mu> names a sibling sync.Mutex or sync.RWMutex field) must be
// flow-dominated by a Lock of that mutex through the same root variable —
// reads require at least a read lock, writes (assignment, inc/dec,
// delete, address-taking) require the write lock. The check is a forward
// dataflow analysis over the internal/analysis/cfg graph: Lock/RLock
// generate the held fact, Unlock/RUnlock kill it, and control-flow merges
// keep only what every incoming path holds.
//
// Scope and soundness notes:
//   - The analysis is intra-procedural and root-based: x.mu.Lock()
//     protects x.field accesses through the same x. Aliasing two roots to
//     one struct, or helpers documented "caller must hold mu", need a
//     justified //nontree:allow lockguard annotation.
//   - Function literals are separate analysis units entered with no locks
//     held: a literal that touches guarded state must lock (or carry an
//     annotation), because it may run on another goroutine.
//   - defer statements are ignored entirely: a deferred Unlock does not
//     kill the held fact (it runs at return), and deferred accesses are
//     not checked (their lock state is the return-time state, which the
//     forward analysis does not model).
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nontree/internal/analysis"
	"nontree/internal/analysis/cfg"
)

// Directive is the comment marker declaring a guarded field.
const Directive = "nontree:guardedby"

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "accesses to //nontree:guardedby fields must hold the named mutex (reads: RLock, writes: Lock)",
	Run:  run,
	// No Scope: the check is annotation-driven, so packages without
	// guardedby fields cost one directive scan.
}

// guard describes one guarded field: the mutex that protects it and
// whether that mutex distinguishes read from write locking.
type guard struct {
	mu *types.Var
	rw bool
}

// Lock modes. 0 (absent from the state) means not held.
const (
	modeRead  = 1 // RLock held
	modeWrite = 2 // Lock held
)

// lockKey identifies one held lock: the root variable the mutex was
// reached through plus the mutex field itself.
type lockKey struct {
	root types.Object
	mu   *types.Var
}

type lockState map[lockKey]int

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	mus := make(map[*types.Var]bool, len(guards))
	for _, g := range guards {
		mus[g.mu] = true
	}
	c := &checker{pass: pass, guards: guards, mus: mus}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd.Body)
			}
		}
		// Every function literal is its own unit, entered lock-free: it may
		// run on another goroutine, so locks held at its creation site do
		// not transfer.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkFunc(lit.Body)
			}
			return true
		})
	}
	return nil
}

// collectGuards scans struct declarations for guardedby directives,
// reporting malformed ones and returning the guarded-field table.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				muName, ok := directiveOf(field)
				if !ok {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(), "guardedby directive on embedded field is not supported")
					continue
				}
				muIdent := findField(st, muName)
				if muIdent == nil {
					pass.Reportf(field.Pos(), "guardedby names %q, which is not a sibling field", muName)
					continue
				}
				muObj, _ := pass.Info.Defs[muIdent].(*types.Var)
				if muObj == nil {
					continue
				}
				rw, isMu := mutexType(muObj.Type())
				if !isMu {
					pass.Reportf(field.Pos(), "guardedby names %q, which is not a sync.Mutex or sync.RWMutex", muName)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[obj] = guard{mu: muObj, rw: rw}
					}
				}
			}
			return true
		})
	}
	return guards
}

// directiveOf extracts the mutex name from a field's doc or trailing
// comment. The bool reports whether a directive is present at all (even a
// malformed one, so it can be diagnosed).
func directiveOf(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+Directive)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				return "", true
			}
			return fields[0], true
		}
	}
	return "", false
}

// findField returns the declaring ident of the named field in st, nil when
// absent.
func findField(st *ast.StructType, name string) *ast.Ident {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return id
			}
		}
	}
	return nil
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer), and whether it is the RW variant.
func mutexType(t types.Type) (rw, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

type checker struct {
	pass   *analysis.Pass
	guards map[*types.Var]guard
	mus    map[*types.Var]bool
}

// checkFunc runs the held-locks analysis over one function body and
// reports unguarded accesses.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	if !c.mentionsGuarded(body) {
		return
	}
	g := cfg.New(body)
	ins := cfg.Forward(g, cfg.Flow{
		Entry: func() any { return lockState{} },
		Transfer: func(b *cfg.Block, in any) any {
			state := in.(lockState).clone()
			for _, n := range b.Nodes {
				c.applyOps(n, state)
			}
			return state
		},
		Meet: func(a, b any) any {
			sa, sb := a.(lockState), b.(lockState)
			out := lockState{}
			for k, va := range sa {
				if vb, ok := sb[k]; ok {
					if vb < va {
						out[k] = vb
					} else {
						out[k] = va
					}
				}
			}
			return out
		},
		Equal: func(a, b any) bool {
			sa, sb := a.(lockState), b.(lockState)
			if len(sa) != len(sb) {
				return false
			}
			for k, va := range sa {
				if vb, ok := sb[k]; !ok || va != vb {
					return false
				}
			}
			return true
		},
	})
	for _, b := range g.Blocks {
		if ins[b.Index] == nil {
			continue // unreachable
		}
		state := ins[b.Index].(lockState).clone()
		for _, n := range b.Nodes {
			c.checkAccesses(n, state)
			c.applyOps(n, state)
		}
	}
}

// mentionsGuarded cheaply pre-filters: a body that never names a guarded
// field or a guarding mutex needs no dataflow.
func (c *checker) mentionsGuarded(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := c.pass.Info.Selections[sel]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				if _, g := c.guards[v]; g || c.mus[v] {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// applyOps updates state for the lock/unlock calls inside one node.
// Function literals are separate units; defer runs at return — both are
// skipped.
func (c *checker) applyOps(node ast.Node, state lockState) {
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var mode int
			kill := false
			switch sel.Sel.Name {
			case "Lock":
				mode = modeWrite
			case "RLock":
				mode = modeRead
			case "Unlock", "RUnlock":
				kill = true
			default:
				return true
			}
			key, ok := c.lockTarget(sel.X)
			if !ok {
				return true
			}
			if kill {
				delete(state, key)
			} else {
				state[key] = mode
			}
		}
		return true
	})
}

// lockTarget resolves the receiver of a Lock/Unlock-shaped call to a
// (root, mutex-field) key when the receiver is a guarding mutex field
// reached through a trackable root.
func (c *checker) lockTarget(recv ast.Expr) (lockKey, bool) {
	sel, ok := unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false
	}
	s := c.pass.Info.Selections[sel]
	if s == nil {
		return lockKey{}, false
	}
	mu, ok := s.Obj().(*types.Var)
	if !ok || !c.mus[mu] {
		return lockKey{}, false
	}
	root := analysis.RootIdent(sel.X)
	if root == nil {
		return lockKey{}, false
	}
	obj := c.pass.Info.Uses[root]
	if obj == nil {
		obj = c.pass.Info.Defs[root]
	}
	if obj == nil {
		return lockKey{}, false
	}
	return lockKey{root: obj, mu: mu}, true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// checkAccesses reports guarded-field accesses in one node that the
// current state does not license.
func (c *checker) checkAccesses(node ast.Node, state lockState) {
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return
	}
	writes := map[ast.Expr]bool{}
	markWrite := func(e ast.Expr) {
		for {
			switch x := unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWrite(n.X)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					markWrite(n.Args[0])
				}
			}
		case *ast.SelectorExpr:
			c.checkSelector(n, writes[n], state)
		}
		return true
	})
}

// checkSelector reports one guarded-field selector access when the
// required lock is not held.
func (c *checker) checkSelector(sel *ast.SelectorExpr, isWrite bool, state lockState) {
	s := c.pass.Info.Selections[sel]
	if s == nil {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	g, guarded := c.guards[v]
	if !guarded {
		return
	}
	need := modeRead
	verb := "read"
	if isWrite {
		need = modeWrite
		verb = "written"
	}
	root := analysis.RootIdent(sel.X)
	if root == nil {
		c.pass.Reportf(sel.Pos(), "guarded field %s %s through an untrackable expression; hold %s through a named root",
			v.Name(), verb, g.mu.Name())
		return
	}
	obj := c.pass.Info.Uses[root]
	if obj == nil {
		obj = c.pass.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	held := state[lockKey{root: obj, mu: g.mu}]
	if held >= need {
		return
	}
	switch {
	case held == 0:
		c.pass.Reportf(sel.Pos(), "field %s is guarded by %s but %s without holding it",
			v.Name(), g.mu.Name(), verb)
	default:
		c.pass.Reportf(sel.Pos(), "field %s is guarded by %s and %s, but only the read lock is held",
			v.Name(), g.mu.Name(), verb)
	}
}
