// Package netlist defines signal nets — the inputs to every routing
// algorithm in this repository — together with generation, validation and
// serialization utilities.
//
// A signal net N = {n0, n1, ..., nk} is a set of pins in the Manhattan
// plane. Pin n0 is the source (where the signal originates); the remaining
// pins are sinks. This matches Section 2 of McCoy & Robins.
package netlist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	//nontree:allow nondetsource test-case generation only; every Generator draws from rand.New(rand.NewSource(seed)), so nets are a pure function of the seed
	"math/rand"
	"strconv"
	"strings"

	"nontree/internal/geom"
)

// SourceIndex is the pin index of the net's source; the paper fixes n0 as
// the source and we preserve that convention throughout.
const SourceIndex = 0

// Net is a signal net. Pins[SourceIndex] is the source; all other pins are
// sinks. Pin indices are stable and are used as node identifiers by the
// routing topology and delay-analysis packages.
type Net struct {
	// Name optionally identifies the net in reports and files.
	Name string `json:"name,omitempty"`
	// Pins holds the pin locations; Pins[0] is the source.
	Pins []geom.Point `json:"pins"`
}

// New constructs a net from a source pin and a list of sinks.
func New(source geom.Point, sinks ...geom.Point) *Net {
	pins := make([]geom.Point, 0, len(sinks)+1)
	pins = append(pins, source)
	pins = append(pins, sinks...)
	return &Net{Pins: pins}
}

// Source returns the location of the source pin n0.
func (n *Net) Source() geom.Point { return n.Pins[SourceIndex] }

// Sinks returns the sink pin locations (everything but the source).
func (n *Net) Sinks() []geom.Point { return n.Pins[1:] }

// NumPins returns the total pin count k+1 (source plus k sinks).
func (n *Net) NumPins() int { return len(n.Pins) }

// NumSinks returns the number of sinks k.
func (n *Net) NumSinks() int { return len(n.Pins) - 1 }

// Clone returns a deep copy of the net.
func (n *Net) Clone() *Net {
	pins := make([]geom.Point, len(n.Pins))
	copy(pins, n.Pins)
	return &Net{Name: n.Name, Pins: pins}
}

// BoundingBox returns the bounding box of the net's pins.
func (n *Net) BoundingBox() geom.Rect { return geom.BoundingBox(n.Pins) }

// Validation errors returned by Validate.
var (
	ErrTooFewPins      = errors.New("netlist: net needs at least two pins (source and one sink)")
	ErrDuplicatePins   = errors.New("netlist: net contains coincident pins")
	ErrNonFinitePin    = errors.New("netlist: pin coordinate is NaN or infinite")
	ErrNegativeRegion  = errors.New("netlist: layout region must have positive side length")
	ErrNonPositiveSize = errors.New("netlist: net size must be at least 2 pins")
)

// Validate checks structural invariants required by the routing and delay
// code: at least a source and one sink, finite coordinates, and no two pins
// at the same location (coincident pins create zero-length wires, i.e.
// zero-resistance cycles that the delay models reject).
func (n *Net) Validate() error {
	if len(n.Pins) < 2 {
		return ErrTooFewPins
	}
	seen := make(map[geom.Point]int, len(n.Pins))
	for i, p := range n.Pins {
		if !finite(p.X) || !finite(p.Y) {
			return fmt.Errorf("%w: pin %d at %v", ErrNonFinitePin, i, p)
		}
		if j, dup := seen[p]; dup {
			return fmt.Errorf("%w: pins %d and %d at %v", ErrDuplicatePins, j, i, p)
		}
		seen[p] = i
	}
	return nil
}

func finite(x float64) bool {
	return x == x && x < 1e308 && x > -1e308
}

// Generator produces random nets with pins drawn uniformly from a square
// layout region, matching the paper's experimental setup ("pin locations
// were randomly chosen from a uniform distribution in a square layout
// region", Section 4; region area 10^2 mm^2 per Table 1).
type Generator struct {
	// Side is the layout square's side length in µm (default 10,000 µm = 10 mm).
	Side float64
	// Rng is the random source; use rand.New(rand.NewSource(seed)) for
	// reproducible experiment suites.
	Rng *rand.Rand
}

// DefaultSide is the layout region side length in µm implied by the paper's
// 10^2 mm^2 layout area.
const DefaultSide = 10000.0

// NewGenerator returns a Generator over the paper's 10mm × 10mm region
// seeded deterministically with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{Side: DefaultSide, Rng: rand.New(rand.NewSource(seed))}
}

// Generate returns a random net with numPins pins (1 source + numPins-1
// sinks). Pins are redrawn on collision so the result always validates.
func (g *Generator) Generate(numPins int) (*Net, error) {
	if numPins < 2 {
		return nil, ErrNonPositiveSize
	}
	side := g.Side
	if side <= 0 {
		return nil, ErrNegativeRegion
	}
	used := make(map[geom.Point]bool, numPins)
	pins := make([]geom.Point, 0, numPins)
	for len(pins) < numPins {
		p := geom.Point{
			X: g.Rng.Float64() * side,
			Y: g.Rng.Float64() * side,
		}
		if used[p] {
			continue
		}
		used[p] = true
		pins = append(pins, p)
	}
	return &Net{Pins: pins}, nil
}

// GenerateBatch returns count independent random nets of the given size.
func (g *Generator) GenerateBatch(count, numPins int) ([]*Net, error) {
	nets := make([]*Net, 0, count)
	for i := 0; i < count; i++ {
		n, err := g.Generate(numPins)
		if err != nil {
			return nil, err
		}
		n.Name = fmt.Sprintf("rand-%dpin-%03d", numPins, i)
		nets = append(nets, n)
	}
	return nets, nil
}

// MarshalJSON / UnmarshalJSON use the natural struct encoding; they exist on
// the package API via encoding/json directly. WriteJSON and ReadJSON are
// stream helpers.

// WriteJSON writes the net as indented JSON.
func (n *Net) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}

// ReadJSON parses a net from JSON and validates it.
func ReadJSON(r io.Reader) (*Net, error) {
	var n Net
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("netlist: decoding JSON: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// WriteText writes the net in a simple line-oriented format:
//
//	# optional comment lines
//	net <name>
//	pin <x> <y>      (first pin is the source)
//
// The format is intended for hand-written test fixtures.
func (n *Net) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if n.Name != "" {
		fmt.Fprintf(bw, "net %s\n", n.Name)
	}
	for _, p := range n.Pins {
		fmt.Fprintf(bw, "pin %g %g\n", p.X, p.Y)
	}
	return bw.Flush()
}

// ReadText parses the line-oriented net format written by WriteText.
func ReadText(r io.Reader) (*Net, error) {
	n := &Net{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "net":
			if len(fields) < 2 {
				return nil, fmt.Errorf("netlist: line %d: net directive requires a name", line)
			}
			n.Name = fields[1]
		case "pin":
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist: line %d: pin directive requires x and y", line)
			}
			x, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: bad x coordinate: %w", line, err)
			}
			y, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: bad y coordinate: %w", line, err)
			}
			n.Pins = append(n.Pins, geom.Point{X: x, Y: y})
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
