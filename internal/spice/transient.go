package spice

import (
	"errors"
	"fmt"

	"nontree/internal/linalg"
	"nontree/internal/obs"
)

// Method selects the implicit integration scheme for transient analysis.
type Method int

const (
	// Trapezoidal is SPICE's default second-order A-stable scheme.
	Trapezoidal Method = iota
	// BackwardEuler is first-order and L-stable; it damps the ringing that
	// trapezoidal integration can sustain on LC circuits, and serves as an
	// ablation reference.
	BackwardEuler
)

// String names the method for reports.
func (m Method) String() string {
	switch m {
	case Trapezoidal:
		return "trapezoidal"
	case BackwardEuler:
		return "backward-euler"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// TranOpts configures a transient run.
type TranOpts struct {
	// Step is the fixed timestep in seconds. Must be positive.
	//
	//nontree:unit s
	Step float64
	// Stop is the end time in seconds. Must exceed Step.
	//
	//nontree:unit s
	Stop float64
	// Method selects the integrator (default Trapezoidal).
	Method Method
	// Record keeps all waveform samples in the result. When false only the
	// running state needed for threshold detection is kept, which matters
	// inside LDRG's candidate-evaluation loop.
	Record bool
	// Obs counts runs, steps, factorizations, solves and early exits
	// (nil = discard). Deterministic for fixed circuit and options.
	Obs obs.Recorder
}

// ErrBadTranOpts reports invalid transient options.
var ErrBadTranOpts = errors.New("spice: transient options require 0 < Step < Stop")

// TranResult holds a transient simulation's outcome.
type TranResult struct {
	// Times holds the sample instants (only when TranOpts.Record).
	//
	//nontree:unit s
	Times []float64
	// V[n] holds node n's waveform aligned with Times (only when Record).
	//
	//nontree:unit V
	V [][]float64
	// Final holds the node voltages at Stop time.
	//
	//nontree:unit V
	Final []float64
	// Crossings[n] is the first time node n's voltage crossed the threshold
	// given to TransientThreshold, or a negative value if it never did.
	// Populated only by TransientThreshold.
	//
	//nontree:unit s
	Crossings []float64
	// Steps is the number of timesteps executed.
	Steps int
}

// Transient runs a fixed-step implicit transient analysis from the zero
// state (all node voltages and branch currents zero at t=0), returning
// waveforms per TranOpts.
func Transient(c *Circuit, opts TranOpts) (*TranResult, error) {
	return transient(c, opts, nil)
}

// TransientThreshold runs a transient like Transient but additionally
// detects, for each node in watch, the first time its voltage crosses the
// given threshold (rising), using linear interpolation between steps.
// The simulation still runs to opts.Stop so Final is meaningful.
//
//nontree:unit threshold V
func TransientThreshold(c *Circuit, opts TranOpts, watch []int, threshold float64) (*TranResult, error) {
	levels := make([]float64, len(watch))
	for i := range levels {
		levels[i] = threshold
	}
	return TransientThresholds(c, opts, watch, levels)
}

// TransientThresholds is TransientThreshold with a per-node threshold level.
//
//nontree:unit levels V
func TransientThresholds(c *Circuit, opts TranOpts, watch []int, levels []float64) (*TranResult, error) {
	if len(watch) != len(levels) {
		return nil, errors.New("spice: watch nodes and threshold levels must align")
	}
	return transient(c, opts, &thresholdWatch{nodes: watch, levels: levels})
}

type thresholdWatch struct {
	nodes  []int
	levels []float64 //nontree:unit V
}

func transient(c *Circuit, opts TranOpts, watch *thresholdWatch) (*TranResult, error) {
	if opts.Step <= 0 || opts.Stop <= opts.Step {
		return nil, fmt.Errorf("%w: step=%g stop=%g", ErrBadTranOpts, opts.Step, opts.Stop)
	}
	sys, err := assemble(c)
	if err != nil {
		return nil, err
	}
	rec := obs.OrNop(opts.Obs)
	h := opts.Step

	// Build the iteration matrix once; with a fixed step it never changes.
	//   BE:   (C/h + G)      x_{k+1} = C/h·x_k            + b_{k+1}
	//   TRAP: (2C/h + G)     x_{k+1} = (2C/h − G)·x_k     + b_k + b_{k+1}
	lhs := sys.g.Clone()
	var histC *linalg.Matrix // matrix applied to x_k on the right-hand side
	switch opts.Method {
	case BackwardEuler:
		lhs.AddScaled(sys.c, 1/h)
		histC = linalg.NewMatrix(sys.size, sys.size)
		histC.AddScaled(sys.c, 1/h) // histC = C/h
	case Trapezoidal:
		lhs.AddScaled(sys.c, 2/h)
		histC = linalg.NewMatrix(sys.size, sys.size)
		histC.AddScaled(sys.c, 2/h) // histC = 2C/h
		histC.AddScaled(sys.g, -1)  // histC = 2C/h − G
	default:
		return nil, fmt.Errorf("spice: unknown integration method %v", opts.Method)
	}
	lu, err := linalg.Factor(lhs)
	if err != nil {
		return nil, fmt.Errorf("spice: transient matrix is singular (floating node?): %w", err)
	}
	rec.Add(obs.CtrMNAFactorizations, 1)

	// SPICE practice: take the very first step with Backward Euler. The
	// t=0 source discontinuity makes the zero initial state inconsistent,
	// and trapezoidal integration — which is only marginally stable — would
	// smear the edge across the first step; L-stable BE resolves it.
	var beLU *linalg.LU
	var beHist *linalg.Matrix
	if opts.Method == Trapezoidal {
		beLhs := sys.g.Clone()
		beLhs.AddScaled(sys.c, 1/h)
		beLU, err = linalg.Factor(beLhs)
		if err != nil {
			return nil, fmt.Errorf("spice: transient matrix is singular (floating node?): %w", err)
		}
		rec.Add(obs.CtrMNAFactorizations, 1)
		beHist = linalg.NewMatrix(sys.size, sys.size)
		beHist.AddScaled(sys.c, 1/h)
	}

	// Rows with no dynamic (C/L) entries are algebraic constraints —
	// voltage-source rows and capacitor-free KCL rows. Trapezoidal
	// averaging must not be applied to them: with an inconsistent initial
	// state (an ideal step at t=0), averaging makes the constraint ring
	// between 2·b and 0 forever. They are enforced instantaneously instead.
	algebraic := sys.algebraicRows()

	x := make([]float64, sys.size)
	bPrev := make([]float64, sys.size)
	bNext := make([]float64, sys.size)
	rhs := make([]float64, sys.size)
	sys.rhs(bPrev, 0)

	res := &TranResult{}
	rec.Add(obs.CtrTranRuns, 1)
	// One triangular solve per executed step; no error exits remain once
	// res is allocated, so the deferred flush covers both the early-exit
	// and the run-to-Stop return paths.
	defer func() {
		rec.Add(obs.CtrTranSteps, int64(res.Steps))
		rec.Add(obs.CtrMNASolves, int64(res.Steps))
		rec.Observe(obs.HistTranSteps, float64(res.Steps))
	}()
	var crossings []float64
	var prevWatch []float64
	if watch != nil {
		crossings = make([]float64, len(watch.nodes))
		for i := range crossings {
			crossings[i] = -1
		}
		prevWatch = make([]float64, len(watch.nodes))
	}

	record := func(t float64, volts []float64) {
		if !opts.Record {
			return
		}
		if res.V == nil {
			res.V = make([][]float64, c.numNodes)
		}
		res.Times = append(res.Times, t)
		for n := 0; n < c.numNodes; n++ {
			res.V[n] = append(res.V[n], volts[n])
		}
	}
	record(0, make([]float64, c.numNodes))

	steps := int(opts.Stop/h + 0.5)
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		sys.rhs(bNext, t)

		useTrap := opts.Method == Trapezoidal && k > 1
		var hist []float64
		if opts.Method == Trapezoidal && k == 1 {
			hist = beHist.MulVec(x)
		} else {
			hist = histC.MulVec(x)
		}
		for i := range rhs {
			switch {
			case useTrap && algebraic[i]:
				rhs[i] = bNext[i]
			case useTrap:
				rhs[i] = hist[i] + bPrev[i] + bNext[i]
			default:
				rhs[i] = hist[i] + bNext[i]
			}
		}
		if opts.Method == Trapezoidal && k == 1 {
			beLU.SolveInPlace(rhs)
		} else {
			lu.SolveInPlace(rhs)
		}
		copy(x, rhs)
		bPrev, bNext = bNext, bPrev

		if watch != nil {
			remaining := 0
			for i, n := range watch.nodes {
				if crossings[i] >= 0 {
					continue
				}
				remaining++
				var v float64
				if n > 0 {
					v = x[n-1]
				}
				if v >= watch.levels[i] {
					// Linear interpolation between the previous and current step.
					frac := 1.0
					if dv := v - prevWatch[i]; dv > 0 {
						frac = (watch.levels[i] - prevWatch[i]) / dv
					}
					crossings[i] = t - h + frac*h
					remaining--
				}
				prevWatch[i] = v
			}
			if remaining == 0 && !opts.Record {
				// Every watched node has crossed; the caller only needs the
				// crossing times, so stop early.
				rec.Add(obs.CtrTranEarlyExits, 1)
				res.Steps = k
				final := make([]float64, c.numNodes)
				for n := 1; n < c.numNodes; n++ {
					final[n] = x[n-1]
				}
				res.Final = final
				res.Crossings = crossings
				return res, nil
			}
		}
		if opts.Record {
			volts := make([]float64, c.numNodes)
			for n := 1; n < c.numNodes; n++ {
				volts[n] = x[n-1]
			}
			record(t, volts)
		}
		res.Steps = k
	}

	final := make([]float64, c.numNodes)
	for n := 1; n < c.numNodes; n++ {
		final[n] = x[n-1]
	}
	res.Final = final
	res.Crossings = crossings
	return res, nil
}
