package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nontree/internal/netlist"
	"nontree/internal/serve"
	"nontree/internal/trace"
)

// recordTrace routes a generated net and writes its trace JSONL to a file,
// returning the path — the same artifact the daemon's /traces/<id> exports.
func recordTrace(t *testing.T, seed int64, pins int) string {
	t.Helper()
	net, err := netlist.NewGenerator(seed).Generate(pins)
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(1 << 12)
	if _, err := serve.Run(net, serve.RouteOptions{}, nil, ring); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayMatches is the happy path: a fresh run of the same workload
// replays the recorded trace with zero drift.
func TestReplayMatches(t *testing.T) {
	path := recordTrace(t, 7, 6)
	if err := realMain([]string{"-trace", path, "-gen", "6", "-seed", "7", "-q"}); err != nil {
		t.Fatalf("identical replay reported drift: %v", err)
	}
}

// TestReplayDriftFails is the contract the CI serve-smoke job leans on: a
// different workload against the same trace must return an error (main
// turns it into a non-zero exit).
func TestReplayDriftFails(t *testing.T) {
	path := recordTrace(t, 7, 6)
	err := realMain([]string{"-trace", path, "-gen", "6", "-seed", "8", "-q"})
	if err == nil || !strings.Contains(err.Error(), "trace drift") {
		t.Fatalf("err = %v, want trace drift", err)
	}
}

// TestFlagErrors covers the rejection paths.
func TestFlagErrors(t *testing.T) {
	traced := recordTrace(t, 7, 6)
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	request := filepath.Join(t.TempDir(), "request.json")
	if err := os.WriteFile(request, []byte(`{"net":{"name":"n","pins":[{"x":0,"y":0},{"x":1,"y":1}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-bogus"}, "flag provided but not defined"},
		{"missing-trace", nil, "need -trace"},
		{"absent-trace-file", []string{"-trace", "/nonexistent/trace.jsonl"}, "reading trace"},
		{"empty-trace", []string{"-trace", empty}, "is empty"},
		{"no-workload", []string{"-trace", traced}, "need -request FILE, -net FILE, or -gen N"},
		{"net-and-gen", []string{"-trace", traced, "-net", "x.json", "-gen", "6"}, "not both"},
		{"request-and-gen", []string{"-trace", traced, "-request", request, "-gen", "6"}, "drop -net/-gen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := realMain(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestReplayFromStoredRequest replays via the daemon's ?request=1
// provenance artifact instead of regeneration flags.
func TestReplayFromStoredRequest(t *testing.T) {
	net, err := netlist.NewGenerator(3).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(1 << 12)
	if _, err := serve.Run(net, serve.RouteOptions{Algo: serve.AlgoH1}, nil, ring); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	raw, err := json.Marshal(serve.RouteRequest{Net: net, RouteOptions: serve.RouteOptions{Algo: serve.AlgoH1}})
	if err != nil {
		t.Fatal(err)
	}
	reqPath := filepath.Join(dir, "request.json")
	if err := os.WriteFile(reqPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := realMain([]string{"-trace", tracePath, "-request", reqPath, "-q"}); err != nil {
		t.Fatalf("stored-request replay reported drift: %v", err)
	}
}
