package elmore

import (
	"testing"

	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/rc"
)

// TestIncrementalObsCounters checks the Sherman–Morrison evaluator's cache
// accounting: the first touch of each endpoint column is a miss, every
// later touch a hit, and hits+misses == 2 × evaluations (two endpoint
// columns per candidate edge).
func TestIncrementalObsCounters(t *testing.T) {
	gen := netlist.NewGenerator(911)
	n, err := gen.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mst.Prim(n.Pins)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(topo, rc.Default())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	obs.Preregister(reg)
	inc.Obs = reg

	cands := topo.AbsentEdges()
	if len(cands) == 0 {
		t.Fatal("no candidate edges on a 9-pin tree")
	}
	evaluated := 0
	touched := map[int]bool{}
	wantMisses := 0
	for _, e := range cands {
		for _, k := range []int{e.U, e.V} {
			if !touched[k] {
				touched[k] = true
				wantMisses++
			}
		}
		if _, err := inc.WithEdge(e); err != nil {
			t.Fatalf("WithEdge(%v): %v", e, err)
		}
		evaluated++
	}

	c := reg.Snapshot().Counters
	if got := c[obs.CtrIncrementalEvals]; got != int64(evaluated) {
		t.Errorf("%s = %d, want %d", obs.CtrIncrementalEvals, got, evaluated)
	}
	if got := c[obs.CtrIncrementalMisses]; got != int64(wantMisses) {
		t.Errorf("%s = %d, want %d (one per distinct endpoint)",
			obs.CtrIncrementalMisses, got, wantMisses)
	}
	wantHits := int64(2*evaluated - wantMisses)
	if got := c[obs.CtrIncrementalHits]; got != wantHits {
		t.Errorf("%s = %d, want %d (hits+misses == 2·evaluations)",
			obs.CtrIncrementalHits, got, wantHits)
	}
}
