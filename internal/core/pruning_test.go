package core

import (
	"fmt"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/rc"
	"nontree/internal/trace"
)

// This file is the differential layer for pruning soundness. The debug
// scoring mode re-scores every pruned candidate after each sweep and fails
// with ErrPruningUnsound if any of them could have changed the decision;
// the metamorphic test checks a structural property of the bound — uniform
// resistance scaling multiplies every delay, bound, and threshold by the
// same constant, so the *set* of pruned candidates must not move.

// TestDebugScoringAuditPasses runs the audit mode over a seeded corpus:
// no run may trip ErrPruningUnsound, and the audited runs must decide
// exactly what ScoringAuto decides (the audit is observation-only).
func TestDebugScoringAuditPasses(t *testing.T) {
	for seed := int64(6100); seed < 6112; seed++ {
		pins := 8 + int(seed%3)*3
		topo := randomMST(t, seed, pins)
		auto, err := LDRG(topo, Options{Oracle: elmoreOracle(), Scoring: ScoringAuto})
		if err != nil {
			t.Fatal(err)
		}
		dbg, err := LDRG(topo, Options{Oracle: elmoreOracle(), Scoring: ScoringIncrementalDebug})
		if err != nil {
			t.Fatalf("seed %d: debug audit failed: %v", seed, err)
		}
		if dbg.Fingerprint() != auto.Fingerprint() {
			t.Errorf("seed %d: audit mode changed decisions:\n%s\nvs\n%s", seed, dbg.Fingerprint(), auto.Fingerprint())
		}
	}
}

// TestDebugScoringAuditWireSize extends the audit to the widening sweep,
// whose bound (WideningBound) is derived differently from the addition
// bound.
func TestDebugScoringAuditWireSize(t *testing.T) {
	for seed := int64(6120); seed < 6126; seed++ {
		topo := randomMST(t, seed, 10)
		auto, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 3, Scoring: ScoringAuto})
		if err != nil {
			t.Fatal(err)
		}
		dbg, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 3, Scoring: ScoringIncrementalDebug})
		if err != nil {
			t.Fatalf("seed %d: debug audit failed: %v", seed, err)
		}
		if dbg.Fingerprint() != auto.Fingerprint() {
			t.Errorf("seed %d: audit mode changed widths:\n%s\nvs\n%s", seed, dbg.Fingerprint(), auto.Fingerprint())
		}
	}
}

// TestDebugScoringRejectsNonIncrementalOracle pins the error contract:
// asking for an audit on an oracle that cannot score incrementally is a
// configuration error, not a silent fallback.
func TestDebugScoringRejectsNonIncrementalOracle(t *testing.T) {
	topo := randomMST(t, 6130, 8)
	stub := &fixedOracle{}
	_, err := LDRG(topo, Options{Oracle: stub, Scoring: ScoringIncrementalDebug})
	if err == nil {
		t.Fatal("ScoringIncrementalDebug with a non-incremental oracle must fail loudly")
	}
}

// fixedOracle is a DelayOracle with no incremental support: constant unit
// delay per node.
type fixedOracle struct{}

func (o *fixedOracle) Name() string { return "fixed" }

func (o *fixedOracle) SinkDelays(t *graph.Topology, width rc.WidthFunc) ([]float64, error) {
	d := make([]float64, t.NumNodes())
	for i := range d {
		d[i] = 1e-9
	}
	return d, nil
}

// prunedSet extracts the (sweep, index) pairs of candidate_pruned events.
func prunedSet(events []trace.Event) map[string]bool {
	set := map[string]bool{}
	for _, e := range events {
		if e.Kind == trace.KindCandidatePruned {
			set[fmt.Sprintf("%d/%d", e.Sweep, e.Index)] = true
		}
	}
	return set
}

// TestMetamorphicPruningScaleInvariance: Elmore delays are linear in
// resistance, so scaling DriverResistance and WireResistance by the same
// constant scales every candidate value, every lower bound, and every
// acceptance threshold together. The decision sequence AND the pruned set
// must therefore be identical — if scaling moves a candidate across the
// pruning cutoff, the bound depends on something it must not.
func TestMetamorphicPruningScaleInvariance(t *testing.T) {
	const k = 4
	for seed := int64(6140); seed < 6146; seed++ {
		topo := randomMST(t, seed, 11)

		run := func(p rc.Params) ([]trace.Event, *Result) {
			var res *Result
			events := traceOf(t, fmt.Sprintf("seed%d", seed), 1<<16, func(tr trace.Tracer) error {
				var err error
				res, err = LDRG(topo, Options{Oracle: &ElmoreOracle{Params: p}, Scoring: ScoringAuto, Trace: tr})
				return err
			})
			return events, res
		}

		base := rc.Default()
		scaled := base
		scaled.DriverResistance *= k
		scaled.WireResistance *= k

		evBase, resBase := run(base)
		evScaled, resScaled := run(scaled)

		if len(resBase.AddedEdges) != len(resScaled.AddedEdges) {
			t.Fatalf("seed %d: scaling changed acceptance count %d -> %d",
				seed, len(resBase.AddedEdges), len(resScaled.AddedEdges))
		}
		for i := range resBase.AddedEdges {
			if resBase.AddedEdges[i] != resScaled.AddedEdges[i] {
				t.Errorf("seed %d: accepted edge %d moved: %v -> %v",
					seed, i, resBase.AddedEdges[i], resScaled.AddedEdges[i])
			}
		}

		pb, ps := prunedSet(evBase), prunedSet(evScaled)
		if len(pb) != len(ps) {
			t.Fatalf("seed %d: pruned-set size changed under scaling: %d -> %d", seed, len(pb), len(ps))
		}
		for key := range pb {
			if !ps[key] {
				t.Errorf("seed %d: candidate %s pruned at base scale but not at %dx", seed, key, k)
			}
		}
		if len(pb) == 0 {
			t.Logf("seed %d: corpus entry prunes nothing; consider retiring it", seed)
		}
	}
}
