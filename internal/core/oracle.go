// Package core implements the paper's contribution: routing algorithms that
// abandon the tree restriction. It contains the LDRG greedy algorithm
// (Figure 4), its Steiner variant SLDRG (Figure 6), the three fast
// heuristics H1/H2/H3 (Section 3), and the Section 5 extensions —
// critical-sink objectives (CSORG), greedy wire sizing (WSORG), and their
// combination (HORG).
//
// Every algorithm is steered by a DelayOracle. The paper's reference method
// evaluates candidate graphs with SPICE; SpiceOracle reproduces that using
// the internal transient simulator. ElmoreOracle instead uses the
// general-graph Elmore model (transfer-resistance form), which is orders of
// magnitude faster and selects nearly the same edges — the experiment
// harness exposes both and an ablation bench quantifies the difference.
package core

import (
	"errors"
	"fmt"
	"strings"

	"nontree/internal/elmore"
	"nontree/internal/graph"
	"nontree/internal/obs"
	"nontree/internal/rc"
	"nontree/internal/spice"
	"nontree/internal/trace"
)

// DelayOracle estimates per-node signal delays of a routing topology.
// Implementations must support arbitrary connected graphs (cycles allowed).
//
// Thread safety: when Options.Workers != 1 the greedy sweeps call SinkDelays
// from multiple goroutines concurrently (each on its own Topology), so
// implementations must not mutate shared state across calls — allocate
// matrices, circuits and scratch buffers per invocation, or guard any reuse.
// ElmoreOracle, TwoPoleOracle and SpiceOracle all satisfy this: their
// configuration fields are read-only after construction and every evaluation
// builds its workspaces from scratch (see the audit notes in package elmore
// and package spice). The race-mode tests in parallel_test.go guard this
// contract dynamically; statically, the oraclesafety analyzer rejects
// direct writes to shared state in oracle methods and the purityflow
// analyzer chases the same writes through every helper call chain
// (DESIGN.md §14), so a mutation laundered two helpers deep fails lint
// just like a direct one.
type DelayOracle interface {
	// SinkDelays returns a delay per topology node (indexed by node id;
	// entries for non-sink nodes are implementation-defined). width gives
	// per-edge wire widths; nil means unit width.
	//
	//nontree:unit return s
	SinkDelays(t *graph.Topology, width rc.WidthFunc) ([]float64, error)
	// Name identifies the oracle in reports.
	Name() string
}

// ElmoreOracle evaluates delays with the general-graph Elmore model: a
// single conductance solve per topology. Suitable for trees and graphs.
// Safe for concurrent use.
type ElmoreOracle struct {
	Params rc.Params
	// Obs counts the oracle's internal linear solves (nil = discard).
	Obs obs.Recorder
	// Trace emits one oracle_eval event per SinkDelays call (nil =
	// discard). With Workers != 1 calls come from worker goroutines, so
	// event order is deterministic only in sequential contexts — the
	// greedy sweeps therefore never set this themselves (DESIGN.md §11).
	Trace trace.Tracer
	// RequestID tags oracle errors with the serve-layer request identity
	// ("" outside the daemon). Provenance only — never an algorithm input,
	// so it cannot affect which edges are selected (DESIGN.md §16).
	RequestID string
}

// Name implements DelayOracle.
func (o *ElmoreOracle) Name() string { return "elmore" }

// SinkDelays implements DelayOracle.
//
//nontree:unit return s
func (o *ElmoreOracle) SinkDelays(t *graph.Topology, width rc.WidthFunc) ([]float64, error) {
	defer obs.StartSpan(o.Obs, obs.TimeOracleSeconds).End()
	l, err := rc.Lump(t, o.Params, width)
	if err != nil {
		return nil, tagRequest(o.RequestID, err)
	}
	obs.OrNop(o.Obs).Add(obs.CtrElmoreSolves, 1)
	trace.OrNop(o.Trace).Emit(trace.Event{Kind: trace.KindOracleEval,
		Oracle: o.Name(), N: int64(t.NumNodes())})
	d, err := elmore.GraphDelays(t, l)
	return d, tagRequest(o.RequestID, err)
}

// NewIncrementalSweep implements IncrementalScorer: the Elmore model is
// the one oracle whose candidate evaluations reduce to exact low-rank
// perturbations of a factored base state (see elmore.Incremental).
func (o *ElmoreOracle) NewIncrementalSweep(t *graph.Topology, width rc.WidthFunc) (*elmore.Incremental, error) {
	return elmore.NewIncrementalWidth(t, o.Params, width)
}

// TwoPoleOracle evaluates delays with the two-pole (second-moment) Padé
// model — markedly closer to the simulator than Elmore (≈2% vs ≈8% critical-
// sink error in this repository's measurements) at the cost of one extra
// linear solve per evaluation. Like ElmoreOracle it handles arbitrary
// connected graphs. Safe for concurrent use.
type TwoPoleOracle struct {
	Params rc.Params
	// Obs counts the oracle's internal linear solves (nil = discard).
	Obs obs.Recorder
	// Trace emits one oracle_eval event per SinkDelays call (nil =
	// discard); same ordering caveat as ElmoreOracle.Trace.
	Trace trace.Tracer
	// RequestID tags oracle errors with the serve-layer request identity;
	// same provenance-only contract as ElmoreOracle.RequestID.
	RequestID string
}

// Name implements DelayOracle.
func (o *TwoPoleOracle) Name() string { return "twopole" }

// SinkDelays implements DelayOracle.
//
//nontree:unit return s
func (o *TwoPoleOracle) SinkDelays(t *graph.Topology, width rc.WidthFunc) ([]float64, error) {
	defer obs.StartSpan(o.Obs, obs.TimeOracleSeconds).End()
	l, err := rc.Lump(t, o.Params, width)
	if err != nil {
		return nil, tagRequest(o.RequestID, err)
	}
	obs.OrNop(o.Obs).Add(obs.CtrElmoreSolves, 2) // first and second moment solves
	trace.OrNop(o.Trace).Emit(trace.Event{Kind: trace.KindOracleEval,
		Oracle: o.Name(), N: int64(t.NumNodes())})
	d, err := elmore.TwoPoleDelays(t, l)
	return d, tagRequest(o.RequestID, err)
}

// SpiceOracle evaluates delays with the transient circuit simulator — the
// paper's SPICE methodology. Considerably slower than ElmoreOracle but
// exact for the interconnect model. Safe for concurrent use: every call
// builds a fresh circuit and MNA workspace.
type SpiceOracle struct {
	Params rc.Params
	// Build controls circuit construction (segmentation, inductance).
	Build rc.BuildOpts
	// Measure controls delay extraction; zero value selects
	// spice.DefaultMeasureOpts.
	Measure spice.MeasureOpts
	// Obs receives the simulator's counters (MNA solves, transient steps,
	// horizon retries, …); nil discards them. A recorder already set on
	// Measure.Obs takes precedence.
	Obs obs.Recorder
	// Trace emits one oracle_eval event per SinkDelays call (nil =
	// discard); same ordering caveat as ElmoreOracle.Trace.
	Trace trace.Tracer
	// RequestID tags oracle errors with the serve-layer request identity;
	// same provenance-only contract as ElmoreOracle.RequestID.
	RequestID string
}

// Name implements DelayOracle.
func (o *SpiceOracle) Name() string { return "spice" }

// SinkDelays implements DelayOracle.
//
//nontree:unit return s
func (o *SpiceOracle) SinkDelays(t *graph.Topology, width rc.WidthFunc) ([]float64, error) {
	defer obs.StartSpan(o.Obs, obs.TimeOracleSeconds).End()
	opts := o.Build
	if width != nil {
		opts.Width = width
	}
	cm, err := rc.BuildCircuit(t, o.Params, opts)
	if err != nil {
		return nil, tagRequest(o.RequestID, err)
	}
	mo := o.Measure
	//nontree:allow floatcmp zero is the exact zero-value sentinel for an unset config field, never a computed delay
	if mo.ThresholdFraction == 0 {
		mo = spice.DefaultMeasureOpts()
	}
	if mo.Obs == nil {
		mo.Obs = o.Obs
	}
	trace.OrNop(o.Trace).Emit(trace.Event{Kind: trace.KindOracleEval,
		Oracle: o.Name(), N: int64(t.NumNodes())})
	crossings, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, mo)
	if err != nil {
		return nil, tagRequest(o.RequestID,
			fmt.Errorf("core: spice oracle on %d-node topology: %w", t.NumNodes(), err))
	}
	delays := make([]float64, t.NumNodes())
	for i, d := range crossings {
		delays[i+1] = d // SinkNodes are topology nodes 1..NumPins-1 in order
	}
	return delays, nil
}

// tagRequest wraps an error with the request identity so a failure
// surfaced at /route names the wide event it belongs to. id "" (the
// non-daemon case) and nil errors pass through untouched, and an error
// already carrying this id's tag is not tagged again — oracles and the
// sweep entry points both tag, and composite algorithms (SLDRG, HORG)
// nest entry points.
func tagRequest(id string, err error) error {
	if err == nil || id == "" {
		return err
	}
	if strings.Contains(err.Error(), "[request "+id+"]") {
		return err
	}
	return fmt.Errorf("[request %s] %w", id, err)
}

// Objective reduces per-sink delays to the scalar an algorithm minimizes.
type Objective interface {
	// Eval scores the delays of a topology with the given pin count.
	//
	//nontree:unit delays s
	//nontree:unit return s
	Eval(delays []float64, numPins int) (float64, error)
	// Name identifies the objective in reports.
	Name() string
}

// MaxDelayObjective is the ORG objective t(G) = max_i t(n_i).
type MaxDelayObjective struct{}

// Name implements Objective.
func (MaxDelayObjective) Name() string { return "max-sink-delay" }

// Eval implements Objective.
//
//nontree:unit delays s
//nontree:unit return s
func (MaxDelayObjective) Eval(delays []float64, numPins int) (float64, error) {
	if numPins < 2 {
		return 0, errors.New("core: objective needs at least one sink")
	}
	return elmore.MaxSinkDelay(delays, numPins), nil
}

// WeightedDelayObjective is the CSORG objective Σ α_i·t(n_i) of Section
// 5.1. Alphas[i] weights sink node i+1. With all weights equal it minimizes
// average sink delay; with a single non-zero weight it minimizes delay to
// one identified critical sink.
type WeightedDelayObjective struct {
	Alphas []float64
}

// Name implements Objective.
func (o *WeightedDelayObjective) Name() string { return "weighted-sink-delay" }

// Eval implements Objective.
//
//nontree:unit delays s
//nontree:unit return s
func (o *WeightedDelayObjective) Eval(delays []float64, numPins int) (float64, error) {
	return elmore.WeightedSinkDelay(delays, numPins, o.Alphas)
}

// UniformCriticality returns CSORG weights realizing average-delay
// minimization: α_i = 1 for every sink of a net with numPins pins.
func UniformCriticality(numPins int) []float64 {
	a := make([]float64, numPins-1)
	for i := range a {
		a[i] = 1
	}
	return a
}

// SingleCriticalSink returns CSORG weights for the "exactly one critical
// sink" special case the paper highlights: α_cs = 1, all others 0. The
// sink argument is a topology node index (1-based pin).
func SingleCriticalSink(numPins, sink int) ([]float64, error) {
	if sink < 1 || sink >= numPins {
		return nil, fmt.Errorf("core: critical sink %d out of range [1,%d)", sink, numPins)
	}
	a := make([]float64, numPins-1)
	a[sink-1] = 1
	return a, nil
}
