package core

import (
	"fmt"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/trace"
)

// traceOf runs fn against a fresh ring tracer and returns the captured
// events, failing the test on any run or overflow error.
func traceOf(t *testing.T, label string, capacity int, fn func(tr trace.Tracer) error) []trace.Event {
	t.Helper()
	ring := trace.NewRing(capacity)
	if err := fn(ring); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("%s: ring dropped %d events; raise the test capacity", label, ring.Dropped())
	}
	return ring.Events()
}

// TestTraceDeterministicAcrossWorkers is the tentpole guarantee of the
// trace subsystem: for a fixed seed, the deterministic projection of the
// trace is byte-identical at any Workers value — including the full
// per-candidate score sequence, not just the accepted edges (DESIGN.md §11).
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	workerGrid := []int{1, 4, 0} // 0 = one worker per CPU (GOMAXPROCS)

	type run struct {
		name string
		fn   func(tr trace.Tracer, workers int) ([]graph.Edge, error)
	}
	topo := randomMST(t, 712, 12)
	tapTopo := randomMST(t, 455, 9)
	runs := []run{
		{"LDRG", func(tr trace.Tracer, workers int) ([]graph.Edge, error) {
			res, err := LDRG(topo, Options{Oracle: elmoreOracle(), Workers: workers, Trace: tr})
			if err != nil {
				return nil, err
			}
			return res.AddedEdges, nil
		}},
		{"LDRGWithTaps", func(tr trace.Tracer, workers int) ([]graph.Edge, error) {
			_, err := LDRGWithTaps(tapTopo, Options{Oracle: elmoreOracle(), Workers: workers, Trace: tr})
			return nil, err
		}},
		{"WireSize", func(tr trace.Tracer, workers int) ([]graph.Edge, error) {
			_, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 3, Workers: workers, Trace: tr})
			return nil, err
		}},
	}

	for _, r := range runs {
		var baseline []trace.Event
		var baselineEdges []graph.Edge
		for _, workers := range workerGrid {
			label := fmt.Sprintf("%s/w%d", r.name, workers)
			var edges []graph.Edge
			events := traceOf(t, label, 1<<16, func(tr trace.Tracer) error {
				var err error
				edges, err = r.fn(tr, workers)
				return err
			})
			if len(events) == 0 {
				t.Fatalf("%s: empty trace", label)
			}
			if baseline == nil {
				baseline, baselineEdges = events, edges
				continue
			}
			if drifts := trace.Diff(events, baseline); len(drifts) != 0 {
				t.Errorf("%s drifted from Workers=%d baseline:\n%s",
					label, workerGrid[0], trace.FormatDrifts(drifts))
			}
			if trace.Fingerprint(events) != trace.Fingerprint(baseline) {
				t.Errorf("%s: fingerprint differs from baseline", label)
			}
			for i, e := range edges {
				if e != baselineEdges[i] {
					t.Errorf("%s: accepted edge %d is %v, baseline %v", label, i, e, baselineEdges[i])
				}
			}
		}
	}
}

// TestTraceReplaysAcceptedEdges asserts the replay contract: the accepted-
// edge sequence re-derived from a trace equals Result.AddedEdges exactly.
func TestTraceReplaysAcceptedEdges(t *testing.T) {
	topo := randomMST(t, 712, 12)
	var res *Result
	events := traceOf(t, "LDRG", 1<<16, func(tr trace.Tracer) error {
		var err error
		res, err = LDRG(topo, Options{Oracle: elmoreOracle(), Workers: 4, Trace: tr})
		return err
	})
	accepted := trace.AcceptedEdges(events)
	if len(accepted) != len(res.AddedEdges) {
		t.Fatalf("trace has %d accepted edges, result %d", len(accepted), len(res.AddedEdges))
	}
	for i, a := range accepted {
		want := res.AddedEdges[i]
		if a.U != want.U || a.V != want.V {
			t.Errorf("accepted %d: trace says (%d,%d), result %v", i, a.U, a.V, want)
		}
		if a.After != res.Trace[i+1] {
			t.Errorf("accepted %d: trace objective %g, result %g", i, a.After, res.Trace[i+1])
		}
	}
}

// TestTraceEventShape spot-checks the event grammar of one LDRG run: every
// sweep opens with sweep_start, candidate indices restart per sweep, and a
// converged run ends with an edge_rejected explaining the stop.
func TestTraceEventShape(t *testing.T) {
	topo := randomMST(t, 712, 10)
	events := traceOf(t, "LDRG", 1<<16, func(tr trace.Tracer) error {
		_, err := LDRG(topo, Options{Oracle: elmoreOracle(), Trace: tr})
		return err
	})
	if events[0].Kind != trace.KindSweepStart || events[0].Sweep != 1 {
		t.Fatalf("trace does not open with sweep 1: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != trace.KindEdgeRejected || last.Reason != trace.ReasonNoImprovement {
		t.Errorf("converged run should end with a no_improvement rejection, got %+v", last)
	}
	sweep, wantIdx := 0, 0
	for _, e := range events {
		if e.Seq == 0 {
			t.Fatalf("event missing seq: %+v", e)
		}
		switch e.Kind {
		case trace.KindSweepStart:
			if e.Sweep != sweep+1 {
				t.Fatalf("sweep numbering jumped from %d to %d", sweep, e.Sweep)
			}
			sweep, wantIdx = e.Sweep, 0
		case trace.KindCandidateScored, trace.KindCandidatePruned:
			// Pruned candidates consume an index exactly like scored ones,
			// so the per-sweep index sequence stays gapless either way.
			if e.Sweep != sweep || e.Index != wantIdx {
				t.Fatalf("candidate out of order in sweep %d: %+v (want index %d)", sweep, e, wantIdx)
			}
			wantIdx++
		}
	}
}
