// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against `// want` comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// Expectations are written on the line they apply to:
//
//	for k := range m { // want `iteration over map`
//
// The text between backquotes (or double quotes) is a regular expression
// matched against the diagnostic message; one expectation per line. Lines
// with no want comment must produce no diagnostic, and every expectation
// must be matched by exactly one diagnostic.
package analysistest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"testing"

	"nontree/internal/analysis"
)

var wantRe = regexp.MustCompile("// want (`([^`]*)`|\"([^\"]*)\")")

// Run loads testdata/src/<pkg> relative to the caller's directory,
// type-checks it, applies the analyzer (ignoring its Scope), and verifies
// the diagnostics against want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	_, callerFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller to find testdata")
	}
	dir := filepath.Join(filepath.Dir(callerFile), "testdata", "src", pkg)

	loader := analysis.NewLoader()
	loaded, err := loader.CheckDir(dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzer(a, loaded)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, loaded)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern := m[2]
				if pattern == "" {
					pattern = m[3]
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}
