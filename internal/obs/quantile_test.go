package obs

import (
	"math"
	"testing"
)

func histOf(samples ...float64) HistogramSnapshot {
	g := NewRegistry()
	for _, v := range samples {
		g.Observe("h", v)
	}
	return g.Snapshot().Histograms["h"]
}

func TestQuantileEmpty(t *testing.T) {
	var h HistogramSnapshot
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestQuantileSingleSampleIsExact(t *testing.T) {
	h := histOf(0.125)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.125 {
			t.Errorf("Quantile(%g) = %g, want the only sample 0.125", q, got)
		}
	}
}

// TestQuantileWithinBucketResolution pins the accuracy contract: the
// estimate for a known sample set stays within a factor of two of the true
// order statistic (power-of-two buckets cannot do better).
func TestQuantileWithinBucketResolution(t *testing.T) {
	samples := make([]float64, 0, 1000)
	g := NewRegistry()
	for i := 1; i <= 1000; i++ {
		v := float64(i) / 1000 // 0.001 .. 1.000
		samples = append(samples, v)
		g.Observe("h", v)
	}
	h := g.Snapshot().Histograms["h"]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := samples[int(q*1000)-1]
		got := h.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Errorf("Quantile(%g) = %g, want within 2x of %g", q, got, truth)
		}
	}
}

func TestQuantileMonotoneAndClamped(t *testing.T) {
	h := histOf(0.004, 0.01, 0.02, 0.05, 0.3, 1.7, 2.1, 9.0)
	prev := math.Inf(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %g < previous %g: not monotone", q, v, prev)
		}
		if v < h.Min || v > h.Max {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, v, h.Min, h.Max)
		}
		prev = v
	}
	if got := h.Quantile(1); got != h.Max {
		t.Errorf("Quantile(1) = %g, want Max %g", got, h.Max)
	}
}

// TestQuantileSingleBucketMass pins the degenerate case where every
// sample lands in one bucket: the interpolation spans only that bucket
// and every quantile stays inside [Min, Max], which the clamp makes
// tight for identical samples.
func TestQuantileSingleBucketMass(t *testing.T) {
	// 0.30, 0.35, 0.45 all share bucket [0.25, 0.5).
	h := histOf(0.30, 0.35, 0.45)
	lo, hi := math.Ldexp(1, -2), math.Ldexp(1, -1)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		v := h.Quantile(q)
		if v < lo || v >= hi {
			t.Errorf("Quantile(%g) = %g left the only occupied bucket [%g, %g)", q, v, lo, hi)
		}
		if v < h.Min || v > h.Max {
			t.Errorf("Quantile(%g) = %g outside [Min, Max] = [%g, %g]", q, v, h.Min, h.Max)
		}
	}
	// All-identical samples: the clamp collapses the interpolation to the
	// exact value at every quantile.
	ident := histOf(0.3, 0.3, 0.3, 0.3)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := ident.Quantile(q); got != 0.3 {
			t.Errorf("identical-sample Quantile(%g) = %g, want 0.3", q, got)
		}
	}
}

// TestQuantileBucketBoundaryInterpolation pins the linear interpolation
// inside a bucket: with mass split across two adjacent buckets, the rank
// that lands exactly on a bucket boundary must produce the boundary
// value, and ranks inside a bucket interpolate linearly between its
// edges.
func TestQuantileBucketBoundaryInterpolation(t *testing.T) {
	// Two samples in bucket [0.25, 0.5), two in bucket [0.5, 1).
	h := histOf(0.3, 0.4, 0.6, 0.8)
	// q=0.5 targets rank 2 — the full mass of the first bucket — so the
	// interpolation reaches that bucket's upper edge exactly.
	if got, want := h.Quantile(0.5), 0.5; got != want {
		t.Errorf("boundary Quantile(0.5) = %g, want bucket edge %g", got, want)
	}
	// q=0.25 targets rank 1, half the first bucket's mass: halfway between
	// 0.25 and 0.5.
	if got, want := h.Quantile(0.25), 0.375; got != want {
		t.Errorf("mid-bucket Quantile(0.25) = %g, want %g", got, want)
	}
	// q=0.75 targets rank 3, half the second bucket's mass: halfway
	// between 0.5 and 1.
	if got, want := h.Quantile(0.75), 0.75; got != want {
		t.Errorf("mid-bucket Quantile(0.75) = %g, want %g", got, want)
	}
}

// TestBucketIndexExemplarContract pins the exported bucketing used by the
// wide-event exemplar link: BucketIndex(v) must be the bucket a
// histogram's Observe(v) increments.
func TestBucketIndexExemplarContract(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), 1e-12, 0.001, 0.3, 1, 1.5, 1024, 1e12} {
		g := NewRegistry()
		g.Observe("h", v)
		h := g.Snapshot().Histograms["h"]
		idx := BucketIndex(v)
		if n := h.Buckets[idx]; n != 1 {
			t.Errorf("BucketIndex(%g) = %d, but Observe landed in %v", v, idx, h.Buckets)
		}
	}
	// The documented bucket bounds: index i holds 2^(i−32) ≤ v < 2^(i−31).
	if lo, hi := BucketIndex(0.25), BucketIndex(0.4999); lo != 30 || hi != 30 {
		t.Errorf("bucket [0.25, 0.5) mapped to %d and %d, want 30", lo, hi)
	}
	if got := BucketIndex(0.5); got != 31 {
		t.Errorf("BucketIndex(0.5) = %d, want 31", got)
	}
}

func TestPreregisterSimFreezesSchema(t *testing.T) {
	g := NewRegistry()
	PreregisterSim(g)
	s := g.Snapshot()
	for _, name := range SimCounterNames() {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("counter %s not preregistered", name)
		}
	}
	if _, ok := s.Timings[TimeSimRequestSeconds]; !ok {
		t.Errorf("timing %s not preregistered", TimeSimRequestSeconds)
	}
}
