package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestInScope(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"internal/core", "nontree"}}
	cases := []struct {
		path string
		want bool
	}{
		{"nontree/internal/core", true},
		{"nontree", true},
		{"internal/core", true},
		{"nontree/internal/coreextra", false},
		{"nontree/internal/ert", false},
		{"other/internal/core", true}, // suffix match is intentional
	}
	for _, c := range cases {
		if got := a.InScope(c.path); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	all := &Analyzer{Name: "y"}
	if !all.InScope("anything/at/all") {
		t.Error("empty scope must match every package")
	}
}

func TestRootIdent(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"x", "x"},
		{"o.buf", "o"},
		{"o.buf[i]", "o"},
		{"(*p).field", "p"},
		{"o.rows[0][1]", "o"},
		{"o.buf[1:2]", "o"},
		{"f().x", ""},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parsing %q: %v", c.expr, err)
		}
		id := RootIdent(e)
		got := ""
		if id != nil {
			got = id.Name
		}
		if got != c.want {
			t.Errorf("RootIdent(%q) = %q, want %q", c.expr, got, c.want)
		}
	}
}

const allowSrc = `package p

//nontree:allow detordering the reduction is a max over exact sentinels
var a int

//nontree:allow floatcmp
var b int

func f() {
	_ = a //nontree:allow oraclesafety same-line justification
	_ = b
}
`

func TestAllowIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ai := buildAllowIndex(fset, []*ast.File{f})

	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "detordering", true},  // annotation on line 3 covers line 4
		{3, "detordering", true},  // and line 3 itself
		{5, "detordering", false}, // but not line 5
		{4, "floatcmp", false},    // wrong analyzer
		{7, "floatcmp", false},    // no justification → no suppression
		{10, "oraclesafety", true},
		{11, "oraclesafety", true}, // an annotation also covers the following line
		{12, "oraclesafety", false},
	}
	for _, c := range cases {
		if got := ai.allows("allow.go", c.line, c.analyzer); got != c.want {
			t.Errorf("allows(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 9}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Analyzer: "a"},
	}
	SortDiagnostics(ds)
	order := []string{"a", "z", "z", "z"}
	for i, want := range order {
		if ds[i].Analyzer != want {
			t.Fatalf("diagnostic %d: analyzer %s, want %s (%v)", i, ds[i].Analyzer, want, ds)
		}
	}
	if ds[3].Pos.Filename != "b.go" {
		t.Errorf("expected b.go last, got %v", ds[3])
	}
}
