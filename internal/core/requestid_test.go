package core

import (
	"errors"
	"strings"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/rc"
)

// brokenOracle fails every evaluation, forcing the entry points down their
// error paths so the request-id tagging can be observed.
type brokenOracle struct{}

var errBroken = errors.New("oracle intentionally broken")

func (brokenOracle) SinkDelays(t *graph.Topology, width rc.WidthFunc) ([]float64, error) {
	return nil, errBroken
}
func (brokenOracle) Name() string { return "broken" }

// TestEntryPointsTagErrorsWithRequestID pins the provenance contract of
// Options.RequestID: every error an entry point surfaces names the request
// exactly once — even through nested entry points (taps re-enter the sweep
// machinery) — and an empty id leaves errors untouched.
func TestEntryPointsTagErrorsWithRequestID(t *testing.T) {
	seed := randomMST(t, 42, 8)
	const id = "r00000042"
	entries := map[string]func(opts Options) error{
		"LDRG":         func(o Options) error { _, err := LDRG(seed, o); return err },
		"LDRGWithTaps": func(o Options) error { _, err := LDRGWithTaps(seed, o); return err },
		"H1":           func(o Options) error { _, err := H1(seed, o); return err },
		"H2":           func(o Options) error { _, err := H2(seed, rc.Default(), o); return err },
		"H3":           func(o Options) error { _, err := H3(seed, rc.Default(), o); return err },
	}
	for name, run := range entries {
		t.Run(name, func(t *testing.T) {
			err := run(Options{Oracle: brokenOracle{}, RequestID: id})
			if err == nil {
				t.Fatal("broken oracle did not surface an error")
			}
			if !errors.Is(err, errBroken) {
				t.Fatalf("error chain lost the oracle cause: %v", err)
			}
			tag := "[request " + id + "]"
			if got := strings.Count(err.Error(), tag); got != 1 {
				t.Errorf("error carries %d %q tags, want exactly 1: %v", got, tag, err)
			}
			if !strings.HasPrefix(err.Error(), tag) {
				t.Errorf("tag is not the error prefix: %v", err)
			}

			// An untagged run surfaces the identical cause with no tag.
			err = run(Options{Oracle: brokenOracle{}})
			if err == nil || strings.Contains(err.Error(), "[request") {
				t.Errorf("empty RequestID still tagged: %v", err)
			}
		})
	}
}

// TestOracleErrorsTaggedAtSource pins that the oracles themselves tag (so
// provenance survives callers outside the entry points, e.g. the expt
// harness calling SinkDelays directly) and that tagRequest is idempotent
// when an entry point re-wraps an already-tagged oracle error.
func TestOracleErrorsTaggedAtSource(t *testing.T) {
	topo := randomMST(t, 7, 4)
	// Zero params fail rc validation inside Lump, the first oracle step.
	o := &ElmoreOracle{Params: rc.Params{}, RequestID: "r00000007"}
	if _, err := o.SinkDelays(topo, nil); err == nil {
		t.Fatal("unphysical params did not error")
	} else if !strings.Contains(err.Error(), "[request r00000007]") {
		t.Errorf("elmore oracle error untagged: %v", err)
	}

	// Idempotence: re-tagging an already-tagged error is a no-op.
	tagged := tagRequest("r00000007", errBroken)
	if got := tagRequest("r00000007", tagged); got != tagged {
		t.Errorf("tagRequest re-wrapped an already-tagged error: %v", got)
	}
	if got := tagRequest("", errBroken); got != errBroken {
		t.Errorf("tagRequest with empty id rewrapped: %v", got)
	}
	if got := tagRequest("r1", nil); got != nil {
		t.Errorf("tagRequest on nil error: %v", got)
	}
}
