// Package dfdep is the dependency side of the cross-package determinism
// fixture: UnsortedKeys' map-order taint must travel to importers as a
// fact.
package dfdep

// UnsortedKeys returns map keys in iteration order. Its summary carries
// the taint; it is reported (if at all) at importing sinks, not here —
// the taint is born in this very function, so detordering owns the
// intra-procedural case.
func UnsortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
