package viz

import (
	"strings"
	"testing"

	"nontree/internal/geom"
	"nontree/internal/graph"
)

func demoTopology(t *testing.T) *graph.Topology {
	t.Helper()
	topo := graph.NewTopologyWithSteiner(
		[]geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 1000, Y: 1000}},
		[]geom.Point{{X: 500, Y: 500}},
	)
	for _, e := range []graph.Edge{{U: 0, V: 3}, {U: 1, V: 3}, {U: 2, V: 3}} {
		if err := topo.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestSVGWellFormed(t *testing.T) {
	topo := demoTopology(t)
	var sb strings.Builder
	if err := SVG(&sb, topo, nil, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	// One source square (blue), one Steiner open square, two sink circles.
	if strings.Count(out, `fill="#0044cc"`) != 1 {
		t.Error("source marker missing or duplicated")
	}
	if strings.Count(out, "<circle") != 2 {
		t.Errorf("sink circles = %d, want 2", strings.Count(out, "<circle"))
	}
	// Rectilinear default: diagonal edges render as polylines.
	if !strings.Contains(out, "<polyline") {
		t.Error("rectilinear edges missing")
	}
	// Pin labels.
	for _, label := range []string{">n0<", ">n1<", ">n2<"} {
		if !strings.Contains(out, label) {
			t.Errorf("missing pin label %s", label)
		}
	}
}

func TestSVGHighlight(t *testing.T) {
	topo := demoTopology(t)
	var sb strings.Builder
	err := SVG(&sb, topo, []graph.Edge{{U: 3, V: 0}}, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), DefaultStyle().HighlightColor) {
		t.Error("highlight colour missing")
	}
}

func TestSVGStraightLineStyle(t *testing.T) {
	topo := demoTopology(t)
	style := DefaultStyle()
	style.Rectilinear = false
	var sb strings.Builder
	if err := SVG(&sb, topo, nil, style); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<polyline") {
		t.Error("straight-line style must not emit polylines")
	}
	if !strings.Contains(sb.String(), "<line") {
		t.Error("straight-line style must emit lines")
	}
}

func TestSVGZeroValueStyleDefaults(t *testing.T) {
	topo := demoTopology(t)
	var sb strings.Builder
	if err := SVG(&sb, topo, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `width="480"`) {
		t.Error("zero style must default the canvas size")
	}
}

func TestSVGDegeneratePointCloud(t *testing.T) {
	// A single-pin "net" (not routable, but drawable) must not divide by
	// zero when all points coincide in extent.
	topo := graph.NewTopology([]geom.Point{{X: 5, Y: 5}})
	var sb strings.Builder
	if err := SVG(&sb, topo, nil, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("degenerate drawing failed")
	}
}

func TestWaveformCSV(t *testing.T) {
	times := []float64{0, 1e-9, 2e-9}
	series := map[string][]float64{
		"a": {0, 0.5, 1},
		"b": {0, 0.25, 0.75},
	}
	var sb strings.Builder
	if err := WaveformCSV(&sb, times, series, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "time_s,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "1e-09,0.5,0.25" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWaveformCSVLengthMismatch(t *testing.T) {
	err := WaveformCSV(&strings.Builder{}, []float64{0, 1}, map[string][]float64{"a": {0}}, []string{"a"})
	if err == nil {
		t.Error("length mismatch must error")
	}
}

func TestSVGView(t *testing.T) {
	v := View{
		Points:  [][2]float64{{0, 0}, {1000, 0}, {1000, 1000}, {500, 500}},
		NumPins: 3,
		Edges:   [][2]int{{0, 3}, {1, 3}, {2, 3}},
	}
	var sb strings.Builder
	if err := SVGView(&sb, v, [][2]int{{0, 3}}, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, DefaultStyle().HighlightColor) {
		t.Error("view rendering incomplete")
	}
	// Bad edge must error, not panic.
	bad := View{Points: [][2]float64{{0, 0}}, NumPins: 1, Edges: [][2]int{{0, 5}}}
	if err := SVGView(&strings.Builder{}, bad, nil, DefaultStyle()); err == nil {
		t.Error("out-of-range view edge must error")
	}
}
