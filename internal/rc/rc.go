// Package rc models routing topologies as RC(L) circuits under the paper's
// 0.8µ CMOS interconnect technology (Table 1): per-unit-length wire
// resistance, capacitance and inductance, a lumped driver resistance at the
// source, and capacitive pin loads.
//
// Two representations are produced:
//
//   - A distributed circuit for the spice package (each wire split into π
//     segments), used wherever the paper runs SPICE.
//   - A lumped single-π-per-edge network (node capacitances and edge
//     resistances), which is exactly what the Elmore delay model consumes —
//     Elmore delay depends only on total edge R and C, not on segmentation.
package rc

import (
	"errors"
	"fmt"
	"math"

	"nontree/internal/graph"
	"nontree/internal/spice"
)

// Params holds the interconnect technology parameters. Units: ohms, farads,
// henries, volts; lengths in µm, so per-unit values are per-µm. The defaults
// mirror the paper's Table 1.
type Params struct {
	// DriverResistance is the source driver's output resistance (Ω).
	DriverResistance float64
	// WireResistance is resistance per unit length (Ω/µm) of unit-width wire.
	WireResistance float64
	// WireCapacitance is capacitance per unit length (F/µm) of unit-width wire.
	WireCapacitance float64
	// WireInductance is inductance per unit length (H/µm).
	WireInductance float64
	// SinkCapacitance is the loading capacitance at each pin (F).
	SinkCapacitance float64
	// Vdd is the supply step amplitude (V).
	Vdd float64
}

// SI scale factors, so Table 1's prefixed values appear verbatim in
// Default. Both are untyped constants: 0.352*Femto is evaluated in
// arbitrary precision and rounds once, bit-identical to writing
// 0.352e-15.
const (
	// Femto is the SI femto prefix, 10⁻¹⁵.
	Femto = 1e-15
	// Atto is the SI atto prefix, 10⁻¹⁸.
	Atto = 1e-18
)

// Default returns the paper's Table 1 parameter values: 100Ω driver,
// 0.03Ω/µm, 0.352fF/µm, 492fH/µm, 15.3fF sink load, driven by a 1V step
// (delay thresholds are relative, so the amplitude is immaterial).
func Default() Params {
	return Params{
		DriverResistance: 100,
		WireResistance:   0.03,
		WireCapacitance:  0.352 * Femto,
		WireInductance:   492 * Atto,
		SinkCapacitance:  15.3 * Femto,
		Vdd:              1.0,
	}
}

// Validate checks the parameters are physical.
func (p Params) Validate() error {
	switch {
	case p.DriverResistance <= 0:
		return errors.New("rc: driver resistance must be positive")
	case p.WireResistance <= 0:
		return errors.New("rc: wire resistance must be positive")
	case p.WireCapacitance <= 0:
		return errors.New("rc: wire capacitance must be positive")
	case p.WireInductance < 0:
		return errors.New("rc: wire inductance must be non-negative")
	case p.SinkCapacitance < 0:
		return errors.New("rc: sink capacitance must be non-negative")
	case p.Vdd <= 0:
		return errors.New("rc: Vdd must be positive")
	}
	return nil
}

// WidthFunc maps an edge to its wire width multiplier (1 = unit width).
// Width w scales resistance by 1/w and capacitance by w, the standard
// first-order wire-sizing model used by the paper's WSORG formulation.
//
//nontree:unit return 1
type WidthFunc func(graph.Edge) float64

// UnitWidth is the WidthFunc for uniform unit-width wires.
func UnitWidth(graph.Edge) float64 { return 1 }

// BuildOpts configures distributed circuit construction.
type BuildOpts struct {
	// MaxSegmentLength is the longest wire run (µm) modeled by a single π
	// segment; longer edges are split into ⌈L/MaxSegmentLength⌉ segments.
	// Zero selects the default of 500 µm, which tests show is converged to
	// well under 1% of the fully distributed delay for this technology.
	MaxSegmentLength float64
	// IncludeInductance adds the per-segment series inductance of Table 1,
	// making each segment an RLC π section.
	IncludeInductance bool
	// Width gives per-edge wire widths (nil = unit width everywhere).
	Width WidthFunc
}

// DefaultMaxSegment is the default π-segment length (µm).
const DefaultMaxSegment = 500.0

// CircuitMap ties a built circuit back to its topology: NodeOf[n] is the
// circuit node carrying topology node n's voltage.
type CircuitMap struct {
	Circuit *spice.Circuit
	// NodeOf maps topology node index to circuit node index; -1 for
	// isolated (degree-0) Steiner nodes, which carry no circuitry.
	NodeOf []int
	// SinkNodes lists the circuit nodes of the net's sinks (topology nodes
	// 1..NumPins-1) in order; these are the delay measurement points.
	SinkNodes []int
}

// Errors from circuit construction.
var (
	ErrDisconnected = errors.New("rc: topology must be connected to build a circuit")
	ErrBadWidth     = errors.New("rc: wire width must be positive")
)

// BuildCircuit converts a connected routing topology into a distributed
// RC(L) circuit exactly as the paper describes its SPICE decks: "The root of
// the tree is driven by a resistor connected to the source pin. In addition,
// sink loading capacitances are used at all the pins."
func BuildCircuit(t *graph.Topology, p Params, opts BuildOpts) (*CircuitMap, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !t.Connected() {
		return nil, ErrDisconnected
	}
	maxSeg := opts.MaxSegmentLength
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegment
	}
	width := opts.Width
	if width == nil {
		width = UnitWidth
	}

	c := spice.NewCircuit()
	nodeOf := make([]int, t.NumNodes())
	for n := range nodeOf {
		if t.IsSteiner(n) && t.Degree(n) == 0 {
			// Isolated Steiner candidates carry no wire; giving them a
			// circuit node would float it and make the MNA matrix singular.
			nodeOf[n] = -1
			continue
		}
		nodeOf[n] = c.Node()
	}

	// Driver: step source behind the driver resistance into the source pin.
	drv := c.Node()
	if err := c.AddVSource(drv, spice.Ground, spice.Step(0, p.Vdd, 0)); err != nil {
		return nil, err
	}
	if err := c.AddResistor(drv, nodeOf[0], p.DriverResistance); err != nil {
		return nil, err
	}

	// Pin loading capacitances at every pin.
	for n := 0; n < t.NumPins(); n++ {
		if p.SinkCapacitance > 0 {
			if err := c.AddCapacitor(nodeOf[n], spice.Ground, p.SinkCapacitance); err != nil {
				return nil, err
			}
		}
	}

	// Distributed wires.
	for _, e := range t.Edges() {
		w := width(e)
		if w <= 0 {
			return nil, fmt.Errorf("%w: edge %v width %g", ErrBadWidth, e, w)
		}
		length := t.EdgeLength(e)
		nseg := int(math.Ceil(length / maxSeg))
		if nseg < 1 {
			nseg = 1
		}
		segLen := length / float64(nseg)
		segR := p.WireResistance * segLen / w
		segC := p.WireCapacitance * segLen * w
		segL := p.WireInductance * segLen

		prev := nodeOf[e.U]
		for s := 0; s < nseg; s++ {
			var next int
			if s == nseg-1 {
				next = nodeOf[e.V]
			} else {
				next = c.Node()
			}
			// π section: half the segment capacitance at each end, series
			// resistance (and optionally inductance) between.
			if err := c.AddCapacitor(prev, spice.Ground, segC/2); err != nil {
				return nil, err
			}
			if err := c.AddCapacitor(next, spice.Ground, segC/2); err != nil {
				return nil, err
			}
			if opts.IncludeInductance && segL > 0 {
				mid := c.Node()
				if err := c.AddResistor(prev, mid, segR); err != nil {
					return nil, err
				}
				if err := c.AddInductor(mid, next, segL); err != nil {
					return nil, err
				}
			} else {
				if err := c.AddResistor(prev, next, segR); err != nil {
					return nil, err
				}
			}
			prev = next
		}
	}

	sinks := make([]int, 0, t.NumPins()-1)
	for n := 1; n < t.NumPins(); n++ {
		sinks = append(sinks, nodeOf[n])
	}
	return &CircuitMap{Circuit: c, NodeOf: nodeOf, SinkNodes: sinks}, nil
}

// Lumped is the single-π-per-edge reduction of a topology: per-node shunt
// capacitance (pin loads plus half of each incident edge's wire
// capacitance) and per-edge resistance. This is the exact network on which
// Elmore delay is defined; segmentation does not change Elmore values.
type Lumped struct {
	// NodeCap[n] is the total shunt capacitance at topology node n (F).
	NodeCap []float64
	// EdgeRes maps each canonical edge to its series resistance (Ω).
	EdgeRes map[graph.Edge]float64
	// DriverResistance is the source driver resistance (Ω).
	DriverResistance float64
}

// Lump computes the lumped network of a topology under the technology
// parameters and optional per-edge widths.
func Lump(t *graph.Topology, p Params, width WidthFunc) (*Lumped, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if width == nil {
		width = UnitWidth
	}
	l := &Lumped{
		NodeCap:          make([]float64, t.NumNodes()),
		EdgeRes:          make(map[graph.Edge]float64, t.NumEdges()),
		DriverResistance: p.DriverResistance,
	}
	for n := 0; n < t.NumPins(); n++ {
		l.NodeCap[n] = p.SinkCapacitance
	}
	for _, e := range t.Edges() {
		w := width(e)
		if w <= 0 {
			return nil, fmt.Errorf("%w: edge %v width %g", ErrBadWidth, e, w)
		}
		length := t.EdgeLength(e)
		l.EdgeRes[e] = p.WireResistance * length / w
		halfC := p.WireCapacitance * length * w / 2
		l.NodeCap[e.U] += halfC
		l.NodeCap[e.V] += halfC
	}
	return l, nil
}

// TotalCap returns the network's total capacitance (F) — the C_{n0} of
// the paper's Eq. 1 when the topology is a tree.
//
//nontree:unit return F
func (l *Lumped) TotalCap() float64 {
	var sum float64
	for _, c := range l.NodeCap {
		sum += c
	}
	return sum
}

// SwitchingEnergy returns the dynamic energy (J) dissipated per output
// transition, E = ½·C_total·Vdd² — the power price of a routing. Extra
// non-tree wires and wider wires both raise it; delay-driven routing is a
// three-way delay/wire/energy tradeoff, and this makes the third axis
// measurable.
//
//nontree:unit return J
func SwitchingEnergy(t *graph.Topology, p Params, width WidthFunc) (float64, error) {
	l, err := Lump(t, p, width)
	if err != nil {
		return 0, err
	}
	return 0.5 * l.TotalCap() * p.Vdd * p.Vdd, nil
}
