package pdtree

import (
	"math"
	"testing"
	"testing/quick"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
)

func pinsFor(t *testing.T, seed int64, n int) []geom.Point {
	t.Helper()
	net, err := netlist.NewGenerator(seed).Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	return net.Pins
}

func TestCZeroIsMST(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pins := pinsFor(t, seed, 12)
		pd, err := Build(pins, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pd.Cost()-mst.Cost(pins)) > 1e-6 {
			t.Errorf("seed %d: c=0 cost %.2f != MST %.2f", seed, pd.Cost(), mst.Cost(pins))
		}
	}
}

func TestCOneIsStar(t *testing.T) {
	pins := pinsFor(t, 3, 10)
	pd, err := Build(pins, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < len(pins); v++ {
		if !pd.HasEdge(graph.Edge{U: 0, V: v}) {
			t.Errorf("c=1 tree missing direct edge to pin %d: %v", v, pd.Edges())
		}
	}
	// Star radius = max direct distance: the minimum possible radius.
	r, err := Radius(pd)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for v := 1; v < len(pins); v++ {
		want = math.Max(want, geom.Dist(pins[0], pins[v]))
	}
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("star radius %.2f, want %.2f", r, want)
	}
}

func TestAlwaysSpanningTree(t *testing.T) {
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
		pins := pinsFor(t, 7, 15)
		pd, err := Build(pins, c)
		if err != nil {
			t.Fatal(err)
		}
		if !pd.IsTree() || pd.NumEdges() != 14 {
			t.Errorf("c=%g: not a spanning tree", c)
		}
	}
}

func TestMonotoneTradeoffProperty(t *testing.T) {
	// As c rises, cost must not decrease and radius must not increase —
	// the defining frontier of the construction (checked statistically:
	// strict monotonicity is not guaranteed per instance, so allow tiny
	// violations but no systematic ones).
	f := func(seed int64) bool {
		pins := pinsFor(t, seed, 10)
		cs := []float64{0, 0.5, 1}
		topos, err := Sweep(pins, cs)
		if err != nil {
			return false
		}
		cost0, cost1 := topos[0].Cost(), topos[2].Cost()
		r0, err1 := Radius(topos[0])
		r1, err2 := Radius(topos[2])
		if err1 != nil || err2 != nil {
			return false
		}
		// Endpoints are exact: MST has minimal cost, star minimal radius.
		return cost0 <= cost1+1e-6 && r1 <= r0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRadiusOfChain(t *testing.T) {
	pins := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}
	topo := graph.NewTopology(pins)
	for i := 0; i < 2; i++ {
		if err := topo.AddEdge(graph.Edge{U: i, V: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Radius(topo)
	if err != nil {
		t.Fatal(err)
	}
	if r != 200 {
		t.Errorf("radius = %v, want 200", r)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build([]geom.Point{{X: 0, Y: 0}}, 0.5); err != ErrTooFewPins {
		t.Errorf("one pin: %v", err)
	}
	pins := pinsFor(t, 1, 5)
	if _, err := Build(pins, -0.1); err == nil {
		t.Error("c < 0 must fail")
	}
	if _, err := Build(pins, 1.1); err == nil {
		t.Error("c > 1 must fail")
	}
}

func TestIntermediateCDominatesNeither(t *testing.T) {
	// c=0.5 should land strictly between the endpoints on typical nets:
	// cost between MST and star, radius between star and MST.
	pins := pinsFor(t, 11, 20)
	topos, err := Sweep(pins, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	c0, cm, c1 := topos[0].Cost(), topos[1].Cost(), topos[2].Cost()
	if cm < c0-1e-6 || cm > c1+1e-6 {
		t.Errorf("cost ordering violated: %f %f %f", c0, cm, c1)
	}
	r0, _ := Radius(topos[0])
	rm, _ := Radius(topos[1])
	r1, _ := Radius(topos[2])
	if rm > r0+1e-6 || rm < r1-1e-6 {
		t.Errorf("radius ordering violated: %f %f %f", r0, rm, r1)
	}
}
