package a

// --- correct discipline: no diagnostics ---

// Get locks around both accesses.
func (c *Cache) Get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order = append(c.order, k)
	return c.entries[k]
}

// Put uses explicit Unlock on every path.
func (c *Cache) Put(k string, v int) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[string]int{}
	}
	c.entries[k] = v
	c.mu.Unlock()
}

// Hits touches only the unguarded field: no lock needed.
func (c *Cache) Hits() int { return c.hits }

// ReadCount reads under RLock — sufficient for a read.
func (s *Stats) ReadCount(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[k]
}

// Bump upgrades correctly: the write happens under the write lock.
func (s *Stats) Bump(k string) {
	s.mu.RLock()
	n := s.counts[k]
	s.mu.RUnlock()
	s.mu.Lock()
	s.counts[k] = n + 1
	s.mu.Unlock()
}

// NewCache initializes via composite literal: field keys are not accesses.
func NewCache() *Cache {
	return &Cache{entries: map[string]int{}}
}

// --- violations ---

// GetUnlocked reads without the lock.
func (c *Cache) GetUnlocked(k string) int {
	return c.entries[k] // want `field entries is guarded by mu but read without holding it`
}

// PutUnlocked writes without the lock.
func (c *Cache) PutUnlocked(k string, v int) {
	c.entries[k] = v // want `field entries is guarded by mu but written without holding it`
}

// EarlyUnlock releases before the last access.
func (c *Cache) EarlyUnlock(k string) int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.entries[k] // want `field entries is guarded by mu but read without holding it`
}

// BranchLeak locks on only one path; the merge loses the fact.
func (c *Cache) BranchLeak(k string, cond bool) int {
	if cond {
		c.mu.Lock()
	}
	return c.entries[k] // want `field entries is guarded by mu but read without holding it`
}

// WriteUnderRLock holds only the read lock for a write.
func (s *Stats) WriteUnderRLock(k string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.counts[k]++ // want `field counts is guarded by mu and written, but only the read lock is held`
}

// DeleteUnlocked deletes without the lock.
func (s *Stats) DeleteUnlocked(k string) {
	delete(s.counts, k) // want `field counts is guarded by mu but written without holding it`
}

// EscapeAddress takes the map's address without the write lock.
func (c *Cache) EscapeAddress() *map[string]int {
	c.mu.Lock()
	c.mu.Unlock()
	return &c.entries // want `field entries is guarded by mu but written without holding it`
}

// LitLeaks shows a function literal entered lock-free: the closure may run
// on another goroutine, so the creation-site lock does not carry in.
func (c *Cache) LitLeaks(k string) func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.entries[k] // want `field entries is guarded by mu but read without holding it`
	}
}

// Allowed demonstrates the escape hatch.
func (c *Cache) Allowed(k string) int {
	//nontree:allow lockguard fixture exercises the annotation path
	return c.entries[k]
}
