// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Tables 2–7, Figures 1–3 and 5) over
// reproducible random workloads, using the same methodology — uniform
// random nets in a 10mm square, 50 nets per size, delays measured on the
// transient simulator, ratios normalized to the table's baseline
// construction.
package expt

import (
	"fmt"

	"nontree/internal/core"
	"nontree/internal/graph"
	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/rc"
	"nontree/internal/spice"
	"nontree/internal/trace"
)

// Oracle names accepted by Config.
const (
	OracleElmore  = "elmore"
	OracleTwoPole = "twopole"
	OracleSpice   = "spice"
)

// Config parameterizes a harness run.
type Config struct {
	// Sizes lists the net sizes (pin counts); the paper uses 5, 10, 20, 30.
	Sizes []int
	// Trials is the number of random nets per size; the paper uses 50.
	Trials int
	// Seed makes workloads reproducible. Each (size, trial) derives its own
	// sub-seed, so changing Trials does not reshuffle earlier nets.
	Seed int64
	// Params is the interconnect technology (paper Table 1 by default).
	Params rc.Params
	// SearchOracle steers the greedy algorithms: OracleSpice is the paper's
	// reference method (SPICE inside the LDRG loop); OracleElmore is the
	// fast graph-Elmore model. Measured table delays always come from the
	// transient simulator regardless (unless MeasureWith overrides).
	SearchOracle string
	// MeasureWith selects the final delay measurement: OracleSpice
	// (default, matching the paper) or OracleElmore for quick runs.
	MeasureWith string
	// SegmentLength is the π-segment length (µm) for measurement circuits.
	SegmentLength float64
	// Inductance includes the Table 1 wire inductance in measurement
	// circuits (the paper lists it among its SPICE parameters).
	Inductance bool
	// Workers bounds the goroutines each greedy sweep uses to evaluate
	// candidates (0 = one per CPU, 1 = sequential). Table/figure results
	// are byte-identical for any value; the harness already parallelizes
	// across trials, so per-sweep workers mainly help SPICE-oracle runs
	// where a single net dominates wall clock.
	Workers int
	// Obs receives counters from the algorithms and oracles the harness
	// runs (nil = discard). Deterministic sections of the recorder are
	// byte-identical for fixed Seed at any Workers value.
	Obs obs.Recorder
	// Trace receives the decision trace of the algorithms the harness runs
	// (nil = discard). Note the harness runs trials concurrently, so a
	// shared tracer interleaves events from different trials; per-trial
	// determinism applies only when Trials is 1 (or to single-run drivers).
	Trace trace.Tracer
}

// Default returns the paper's experimental configuration with the Elmore
// search oracle (see DESIGN.md §2 for the fidelity discussion; pass
// SearchOracle: OracleSpice for the paper's exact-but-slow methodology).
func Default() Config {
	return Config{
		Sizes:         []int{5, 10, 20, 30},
		Trials:        50,
		Seed:          1994, // the paper's publication year; any value works
		Params:        rc.Default(),
		SearchOracle:  OracleElmore,
		MeasureWith:   OracleSpice,
		SegmentLength: rc.DefaultMaxSegment,
		// Trial-level parallelism (runTrials) already saturates the machine
		// on the paper's many-small-nets workloads, so sweeps default to
		// sequential here; raise Workers for SPICE-oracle runs where a few
		// large nets dominate.
		Workers: 1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("expt: no net sizes configured")
	}
	for _, s := range c.Sizes {
		if s < 2 {
			return fmt.Errorf("expt: net size %d below minimum of 2", s)
		}
	}
	if c.Trials < 1 {
		return fmt.Errorf("expt: trials must be at least 1")
	}
	if c.Workers < 0 {
		return fmt.Errorf("expt: workers must be non-negative (0 = one per CPU)")
	}
	switch c.SearchOracle {
	case OracleElmore, OracleTwoPole, OracleSpice:
	default:
		return fmt.Errorf("expt: unknown search oracle %q", c.SearchOracle)
	}
	switch c.MeasureWith {
	case OracleElmore, OracleTwoPole, OracleSpice, "":
	default:
		return fmt.Errorf("expt: unknown measurement oracle %q", c.MeasureWith)
	}
	return c.Params.Validate()
}

// searchOracle instantiates the configured greedy-search oracle.
func (c *Config) searchOracle() core.DelayOracle {
	switch c.SearchOracle {
	case OracleSpice:
		return &core.SpiceOracle{
			Params: c.Params,
			Build:  c.buildOpts(),
			Obs:    c.Obs,
		}
	case OracleTwoPole:
		return &core.TwoPoleOracle{Params: c.Params, Obs: c.Obs}
	default:
		return &core.ElmoreOracle{Params: c.Params, Obs: c.Obs}
	}
}

func (c *Config) buildOpts() rc.BuildOpts {
	return rc.BuildOpts{
		MaxSegmentLength:  c.SegmentLength,
		IncludeInductance: c.Inductance,
	}
}

// measureOracle instantiates the final-measurement oracle.
func (c *Config) measureOracle() core.DelayOracle {
	switch c.MeasureWith {
	case OracleElmore:
		return &core.ElmoreOracle{Params: c.Params, Obs: c.Obs}
	case OracleTwoPole:
		return &core.TwoPoleOracle{Params: c.Params, Obs: c.Obs}
	default:
		return &core.SpiceOracle{Params: c.Params, Build: c.buildOpts(), Measure: spice.DefaultMeasureOpts(), Obs: c.Obs}
	}
}

// Measure returns the simulator-measured maximum sink delay and the
// wirelength cost of a topology — the two quantities every table reports.
func (c *Config) Measure(t *graph.Topology) (delay, cost float64, err error) {
	return c.measureWidth(t, nil)
}

// measureWidth is Measure under an explicit width assignment (nil = unit
// widths); the cost is the plain wirelength either way — wire-sizing
// reports metal area separately.
func (c *Config) measureWidth(t *graph.Topology, width rc.WidthFunc) (delay, cost float64, err error) {
	delays, err := c.measureOracle().SinkDelays(t, width)
	if err != nil {
		return 0, 0, err
	}
	var worst float64
	for n := 1; n < t.NumPins(); n++ {
		if delays[n] > worst {
			worst = delays[n]
		}
	}
	return worst, t.Cost(), nil
}

// netFor deterministically generates the trial-th net of the given size.
// The sub-seed construction isolates each (size, trial) pair so results are
// stable under configuration changes.
func (c *Config) netFor(size, trial int) (*netlist.Net, error) {
	sub := c.Seed*1_000_003 + int64(size)*10_007 + int64(trial)
	gen := netlist.NewGenerator(sub)
	return gen.Generate(size)
}

// ldrgOptions builds the core.Options shared by the table drivers.
func (c *Config) ldrgOptions(maxEdges int) core.Options {
	return core.Options{
		Oracle:        c.searchOracle(),
		MaxAddedEdges: maxEdges,
		Workers:       c.Workers,
		Obs:           c.Obs,
		Trace:         c.Trace,
	}
}
