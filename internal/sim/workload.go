package sim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	//nontree:allow nondetsource workload generation only: every stream is rand.New(rand.NewSource(...)) derived from WorkloadSpec.Seed, so a workload is a pure function of its spec (determinism contract, DESIGN.md §15)
	"math/rand"

	"nontree/internal/netlist"
)

// Request is one scheduled request of a workload stream.
type Request struct {
	// AtNanos is the scheduled send time as a nanosecond offset from the
	// stream start (integer so schedules are bit-stable across platforms).
	AtNanos int64 `json:"at_ns"`
	// Key indexes Workload.Nets — the net this request routes. Repeated
	// keys are repeated nets, which is what the Zipf skew produces.
	Key int `json:"key"`
}

// Workload is a fully materialized request stream: the spec it was derived
// from, the distinct-net table, and the scheduled requests. Its canonical
// JSON encoding is byte-identical for equal specs.
type Workload struct {
	Spec     WorkloadSpec   `json:"spec"`
	Nets     []*netlist.Net `json:"nets"`
	Requests []Request      `json:"requests"`
}

// Seed-stream salts: each random concern draws from its own sub-stream so
// adding draws to one concern never shifts another (and golden workload
// fingerprints survive unrelated generator changes).
const (
	saltKeys    = 0x517cc1b727220a95 // key-popularity stream
	saltArrival = 0x6a09e667f3bcc909 // arrival-schedule stream
)

// Generate materializes the workload stream for a spec. Defaults are
// applied first, then the spec is validated; the result is a pure function
// of the defaulted spec.
func Generate(spec WorkloadSpec) (*Workload, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// Net table: one seeded stream drives both the pin-count draw and the
	// pin placement, key by key.
	netRng := rand.New(rand.NewSource(spec.Seed))
	gen := &netlist.Generator{Side: spec.Side, Rng: netRng}
	var totalWeight float64
	for _, m := range spec.PinMix {
		totalWeight += m.Weight
	}
	nets := make([]*netlist.Net, spec.Keys)
	for k := range nets {
		pins := drawPins(netRng, spec.PinMix, totalWeight)
		n, err := gen.Generate(pins)
		if err != nil {
			return nil, err
		}
		n.Name = fmt.Sprintf("sim-k%04d-%dpin", k, pins)
		nets[k] = n
	}

	// Key popularity: uniform, or Zipf(s) so low keys are hot.
	keyRng := rand.New(rand.NewSource(spec.Seed ^ saltKeys))
	pickKey := func() int { return keyRng.Intn(spec.Keys) }
	if spec.ZipfS != 0 {
		z := rand.NewZipf(keyRng, spec.ZipfS, 1, uint64(spec.Keys-1))
		pickKey = func() int { return int(z.Uint64()) }
	}

	arrRng := rand.New(rand.NewSource(spec.Seed ^ saltArrival))
	times := scheduleTimes(spec, arrRng)
	reqs := make([]Request, spec.Requests)
	for i := range reqs {
		reqs[i] = Request{AtNanos: times[i], Key: pickKey()}
	}
	return &Workload{Spec: spec, Nets: nets, Requests: reqs}, nil
}

// drawPins picks a pin count from the mix by cumulative weight.
func drawPins(rng *rand.Rand, mix []PinMix, total float64) int {
	u := rng.Float64() * total
	var cum float64
	for _, m := range mix {
		cum += m.Weight
		if u < cum {
			return m.Pins
		}
	}
	return mix[len(mix)-1].Pins
}

// scheduleTimes materializes the arrival schedule: non-decreasing
// nanosecond offsets averaging one request per 1/QPS seconds.
func scheduleTimes(spec WorkloadSpec, rng *rand.Rand) []int64 {
	times := make([]int64, spec.Requests)
	switch spec.Arrival {
	case ArrivalPoisson:
		var t float64 // seconds
		for i := range times {
			t += rng.ExpFloat64() / spec.QPS
			times[i] = int64(math.Round(t * 1e9))
		}
	case ArrivalBurst:
		for i := range times {
			burst := float64(i / spec.BurstSize)
			times[i] = int64(math.Round(burst * float64(spec.BurstSize) / spec.QPS * 1e9))
		}
	default: // ArrivalUniform
		for i := range times {
			times[i] = int64(math.Round(float64(i) / spec.QPS * 1e9))
		}
	}
	return times
}

// WriteJSON writes the workload as indented canonical JSON. The encoding
// is deterministic (fixed field order, shortest float rendering), so two
// generations from the same spec produce byte-identical files.
func (w *Workload) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// ReadWorkload parses a workload written by WriteJSON and checks internal
// consistency (spec validity, key ranges, net validity).
func ReadWorkload(r io.Reader) (*Workload, error) {
	var w Workload
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("sim: decoding workload: %w", err)
	}
	if err := w.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(w.Nets) == 0 {
		return nil, fmt.Errorf("sim: workload has no nets")
	}
	for i, n := range w.Nets {
		if n == nil {
			return nil, fmt.Errorf("sim: net %d is null", i)
		}
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("sim: net %d: %w", i, err)
		}
	}
	for i, r := range w.Requests {
		if r.Key < 0 || r.Key >= len(w.Nets) {
			return nil, fmt.Errorf("sim: request %d key %d outside net table [0, %d)", i, r.Key, len(w.Nets))
		}
		if r.AtNanos < 0 {
			return nil, fmt.Errorf("sim: request %d has negative schedule offset", i)
		}
	}
	return &w, nil
}

// Fingerprint is the SHA-256 of the workload's compact canonical JSON,
// rendered as lowercase hex — the identity tests and CI pin to assert two
// generations (or two PRs) produced the same stream.
func (w *Workload) Fingerprint() string {
	data, err := json.Marshal(w)
	if err != nil {
		// Workload fields are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("sim: marshaling workload: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}
