// Package a exercises the detordering analyzer: map iteration feeding
// order-sensitive computation is flagged; order-independent bodies and the
// sorted-keys idiom are clean.
package a

import (
	"fmt"
	"sort"
)

type edge struct{ u, v int }

// Flagged: candidate generation straight out of a map.
func candidatesFromMap(present map[edge]bool) []edge {
	var cands []edge
	for e := range present {
		cands = append(cands, e) // want `append to cands inside iteration over map present`
	}
	return cands
}

// Clean: the canonical sorted-iteration idiom — append then sort.
func sortedKeys(scores map[string]float64) []string {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Flagged: floating-point score accumulation is order-dependent.
func totalScore(scores map[string]float64) float64 {
	var sum float64
	for _, s := range scores {
		sum += s // want `order-dependent accumulation into sum`
	}
	return sum
}

// Clean: exact integer accumulation commutes.
func countPins(degree map[int]int) int {
	n := 0
	for _, d := range degree {
		n += d
	}
	return n
}

// Clean: map-to-map transfer is order-independent.
func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Flagged: last-write-wins on an outer variable depends on order.
func anyKey(m map[int]bool) int {
	best := -1
	for k := range m {
		best = k // want `assignment to outer variable best`
	}
	return best
}

// Flagged: early return of a loop-derived value picks a random element.
func firstMatch(m map[int]float64, limit float64) int {
	for k, v := range m {
		if v > limit {
			return k // want `return of a value derived from the loop variables`
		}
	}
	return -1
}

// Flagged: statement-level calls can observe iteration order.
func dumpAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `call to fmt.Println with potential side effects`
	}
}

// Clean: delete during iteration is sanctioned by the spec and
// order-independent for this filter.
func prune(m map[int]float64) {
	for k, v := range m {
		if v <= 0 {
			delete(m, k)
		}
	}
}

// Clean: annotated exemption with a justification.
func annotated(m map[int]float64) float64 {
	var sum float64
	//nontree:allow detordering the summands are exact powers of two, so order cannot change the result
	for _, v := range m {
		sum += v
	}
	return sum
}

// Flagged: an annotation without a justification does not suppress.
func annotatedBadly(m map[int]float64) float64 {
	var sum float64
	//nontree:allow detordering
	for _, v := range m {
		sum += v // want `order-dependent accumulation into sum`
	}
	return sum
}

// Clean: a slice range is not a map range, whatever the body does.
func sliceAppend(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v*2)
	}
	return out
}

// Flagged: appending to a slice that is never sorted afterwards.
func unsortedValues(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want `append to vals inside iteration over map m`
	}
	return vals
}

// Flagged: channel sends publish elements in random order.
func streamKeys(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want `channel send`
	}
}
