package core

import (
	"testing"

	"nontree/internal/elmore"
	"nontree/internal/graph"
	"nontree/internal/rc"
)

// Differential suite: the analytic delay models and the transient
// simulator are independent implementations of the same physics, so we can
// cross-check them on a broad seeded workload without any golden values.
//
// The simulator is run on the *lumped* network (MaxSegmentLength far above
// any wirelength, so segmentation inserts no interior nodes) — then the
// Rubinstein–Penfield-style bounds of elmore.Bounds apply to exactly the
// network being simulated and containment is a theorem, not a tolerance.

// lumpedSpice measures 50%-crossing delays of the unsegmented network.
func lumpedSpice() *SpiceOracle {
	return &SpiceOracle{
		Params: rc.Default(),
		Build:  rc.BuildOpts{MaxSegmentLength: 1e9},
	}
}

// checkBounds asserts every sink's simulated delay lies inside the
// analytic crossing-time bounds for the same lumped network.
func checkBounds(t *testing.T, topo *graph.Topology, label string) {
	t.Helper()
	l, err := rc.Lump(topo, rc.Default(), nil)
	if err != nil {
		t.Fatalf("%s: lumping: %v", label, err)
	}
	b, err := elmore.Bounds(topo, l, 0.5)
	if err != nil {
		t.Fatalf("%s: bounds: %v", label, err)
	}
	measured, err := lumpedSpice().SinkDelays(topo, nil)
	if err != nil {
		t.Fatalf("%s: spice: %v", label, err)
	}
	for n := 1; n < topo.NumPins(); n++ {
		if !b.Contains(n, measured[n]) {
			t.Errorf("%s: sink %d: simulated delay %.4g outside bounds [%.4g, %.4g]",
				label, n, measured[n], b.Lower[n], b.Upper[n])
		}
	}
}

// TestDifferentialSpiceWithinElmoreBounds sweeps ~50 seeded nets (sizes
// 4–8 × 10 trials) and checks simulator-vs-bounds containment on the MST.
func TestDifferentialSpiceWithinElmoreBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep in short mode")
	}
	for pins := 4; pins <= 8; pins++ {
		for trial := int64(0); trial < 10; trial++ {
			topo := randomMST(t, 7000+int64(pins)*100+trial, pins)
			checkBounds(t, topo, labelFor(pins, trial, "mst"))
		}
	}
}

// TestDifferentialBoundsHoldOnNonTrees repeats the containment check on
// LDRG outputs — the bounds theory covers arbitrary grounded RC networks,
// not just trees, so the routing graphs with extra edges must satisfy it
// too.
func TestDifferentialBoundsHoldOnNonTrees(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep in short mode")
	}
	for pins := 5; pins <= 8; pins++ {
		for trial := int64(0); trial < 3; trial++ {
			topo := randomMST(t, 7500+int64(pins)*100+trial, pins)
			res, err := LDRG(topo, Options{Oracle: elmoreOracle()})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.AddedEdges) == 0 {
				continue // still a tree; covered by the MST sweep
			}
			checkBounds(t, res.Topology, labelFor(pins, trial, "ldrg"))
		}
	}
}

func labelFor(pins int, trial int64, algo string) string {
	return algo + "/" + string(rune('0'+pins)) + "p/t" + string(rune('0'+trial))
}

// TestDifferentialAcceptedEdgeSignAgreement checks that on the H2/H3
// fixtures the Elmore search oracle and the transient simulator agree on
// the *sign* of each accepted edge's improvement: every edge the greedy
// loop accepts under the Elmore objective must also strictly reduce the
// simulated max sink delay. The fixture seeds are pinned; the property was
// verified to hold for them and guards against model/simulator divergence.
func TestDifferentialAcceptedEdgeSignAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sweep in short mode")
	}
	type fixture struct {
		name string
		seed int64
		pins int
		run  func(seed *graph.Topology) (*Result, error)
	}
	fixtures := []fixture{
		{"h2/seed3/8p", 3, 8, func(s *graph.Topology) (*Result, error) {
			return H2(s, rc.Default(), Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
		}},
		{"h2/seed5/10p", 5, 10, func(s *graph.Topology) (*Result, error) {
			return H2(s, rc.Default(), Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
		}},
		{"h3/seed3/8p", 3, 8, func(s *graph.Topology) (*Result, error) {
			return H3(s, rc.Default(), Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
		}},
		{"h3/seed7/10p", 7, 10, func(s *graph.Topology) (*Result, error) {
			return H3(s, rc.Default(), Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
		}},
	}
	for _, fx := range fixtures {
		seed := randomMST(t, fx.seed, fx.pins)
		res, err := fx.run(seed)
		if err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		if len(res.AddedEdges) == 0 {
			t.Fatalf("%s: fixture accepted no edges; pick a different seed", fx.name)
		}
		before, err := maxSimulatedDelay(seed)
		if err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		// Replay the acceptance sequence, checking each step's sign.
		cur := seed.Clone()
		for i, e := range res.AddedEdges {
			if err := cur.AddEdge(e); err != nil {
				t.Fatalf("%s: replaying edge %d: %v", fx.name, i, err)
			}
			after, err := maxSimulatedDelay(cur)
			if err != nil {
				t.Fatalf("%s: %v", fx.name, err)
			}
			if after >= before {
				t.Errorf("%s: accepted edge %v did not improve simulated delay (%.4g → %.4g)",
					fx.name, e, before, after)
			}
			before = after
		}
	}
}

func maxSimulatedDelay(topo *graph.Topology) (float64, error) {
	delays, err := lumpedSpice().SinkDelays(topo, nil)
	if err != nil {
		return 0, err
	}
	return elmore.MaxSinkDelay(delays, topo.NumPins()), nil
}
