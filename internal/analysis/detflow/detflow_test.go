package detflow_test

import (
	"testing"

	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/detflow"
)

func TestLaunderedNondeterminism(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer, "a")
}

func TestCrossPackageTaint(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer, "dfx")
}
