// Command seedscan searches random-net seeds for nets that make good
// illustrative examples — the tool used to select the Figure workload seeds
// in internal/expt (see the comment on Figure1Seed).
//
// For each seed it builds the MST, runs single-edge (or two-edge) LDRG with
// the Elmore search oracle, measures delays with the transient simulator,
// and prints seeds whose delay/cost ratios fall inside the requested bands.
//
// Usage:
//
//	seedscan -pins 10 -max-delay-ratio 0.70 -max-cost-ratio 1.25 -n 200
//	seedscan -pins 10 -steiner            # scan for SLDRG examples
//	seedscan -pins 10 -edges 2            # scan for two-iteration traces
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nontree/internal/core"
	"nontree/internal/expt"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/steiner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seedscan: ")

	var (
		pins          = flag.Int("pins", 10, "net size (pin count)")
		count         = flag.Int("n", 200, "number of seeds to scan")
		start         = flag.Int64("start", 0, "first seed")
		edges         = flag.Int("edges", 1, "LDRG edge budget (0 = to convergence)")
		useSteiner    = flag.Bool("steiner", false, "scan SLDRG over Steiner seeds instead of LDRG over MSTs")
		maxDelayRatio = flag.Float64("max-delay-ratio", 0.80, "report seeds with final/baseline delay at or below this")
		maxCostRatio  = flag.Float64("max-cost-ratio", 1.30, "report seeds with final/baseline cost at or below this")
	)
	flag.Parse()

	cfg := expt.Default()
	if err := run(cfg, *pins, *count, *start, *edges, *useSteiner, *maxDelayRatio, *maxCostRatio); err != nil {
		log.Fatal(err)
	}
}

func run(cfg expt.Config, pins, count int, start int64, edges int, useSteiner bool, maxDelay, maxCost float64) error {
	oracle := &core.ElmoreOracle{Params: cfg.Params}
	opts := core.Options{Oracle: oracle, MaxAddedEdges: edges}

	for seed := start; seed < start+int64(count); seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(pins)
		if err != nil {
			return err
		}

		var baseline, final interface {
			Cost() float64
		}
		var res *core.Result
		if useSteiner {
			r, err := core.SLDRG(net.Pins, steiner.Options{}, opts)
			if err != nil {
				return err
			}
			res = &r.Result
			baseline, final = r.Seed, r.Topology
		} else {
			seedTopo, err := mst.Prim(net.Pins)
			if err != nil {
				return err
			}
			r, err := core.LDRG(seedTopo, opts)
			if err != nil {
				return err
			}
			res = r
			baseline, final = seedTopo, r.Topology
		}
		if len(res.AddedEdges) == 0 {
			continue
		}
		delayRatio := res.FinalObjective / res.InitialObjective
		costRatio := final.Cost() / baseline.Cost()
		if delayRatio <= maxDelay && costRatio <= maxCost {
			fmt.Fprintf(os.Stdout,
				"seed %6d: edges +%d  delay ×%.3f (%.1f%% better)  cost ×%.3f (+%.1f%%)\n",
				seed, len(res.AddedEdges), delayRatio, 100*(1-delayRatio),
				costRatio, 100*(costRatio-1))
		}
	}
	return nil
}
