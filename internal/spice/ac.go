package spice

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"nontree/internal/linalg"
)

// AC (frequency-domain) analysis: solve (G + jωC)·X = B at each frequency.
// For the routing circuits in this repository — driven by a single source —
// ACResponse gives each node's transfer function magnitude and phase, and
// Bandwidth3dB extracts the -3dB point, tying the time-domain delays to
// their frequency-domain counterparts (for a single pole,
// f₃dB ≈ 0.35 / t₁₀₋₉₀).

// ACPoint is one node's response at one frequency.
type ACPoint struct {
	// FrequencyHz is the analysis frequency.
	FrequencyHz float64
	// Magnitude is |V(node)/V(source amplitude)|.
	//
	//nontree:unit 1
	Magnitude float64
	// PhaseRad is the response phase in radians.
	PhaseRad float64
}

// ACResponse sweeps the circuit at the given frequencies (Hz) with every
// voltage source replaced by a unit AC source and every current source by
// a unit AC current, returning per-frequency responses of the watched node.
func ACResponse(c *Circuit, node int, freqsHz []float64) ([]ACPoint, error) {
	if node <= 0 || node >= c.NumNodes() {
		return nil, fmt.Errorf("spice: AC node %d out of range", node)
	}
	if len(freqsHz) == 0 {
		return nil, errors.New("spice: no AC frequencies given")
	}
	sys, err := assemble(c)
	if err != nil {
		return nil, err
	}
	// Unit-amplitude excitation vector (phasor domain).
	b := make([]complex128, sys.size)
	for i := range sys.vsrcRow {
		b[sys.vsrcRow[i]] = 1
	}
	for _, src := range c.isources {
		ifrom, ito := sys.index(src.from), sys.index(src.to)
		if ifrom >= 0 {
			b[ifrom] -= 1
		}
		if ito >= 0 {
			b[ito] += 1
		}
	}

	out := make([]ACPoint, 0, len(freqsHz))
	for _, f := range freqsHz {
		if f < 0 {
			return nil, fmt.Errorf("spice: negative AC frequency %g", f)
		}
		s := complex(0, 2*math.Pi*f)
		m, err := linalg.FromRealPair(sys.g, sys.c, s)
		if err != nil {
			return nil, err
		}
		lu, err := linalg.FactorComplex(m)
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve at %g Hz: %w", f, err)
		}
		x := lu.Solve(b)
		v := x[node-1]
		out = append(out, ACPoint{
			FrequencyHz: f,
			Magnitude:   cmplx.Abs(v),
			PhaseRad:    cmplx.Phase(v),
		})
	}
	return out, nil
}

// Bandwidth3dB returns the frequency at which the node's response magnitude
// first falls to 1/√2 of its DC value, found by bisection between fLo and
// fHi (the response must be above the threshold at fLo and below at fHi).
//
//nontree:unit fLo Hz
//nontree:unit fHi Hz
//nontree:unit return Hz
func Bandwidth3dB(c *Circuit, node int, fLo, fHi float64) (float64, error) {
	if fLo <= 0 || fHi <= fLo {
		return 0, fmt.Errorf("spice: bandwidth bracket [%g, %g] invalid", fLo, fHi)
	}
	dc, err := ACResponse(c, node, []float64{0})
	if err != nil {
		return 0, err
	}
	threshold := dc[0].Magnitude / math.Sqrt2

	magAt := func(f float64) (float64, error) {
		r, err := ACResponse(c, node, []float64{f})
		if err != nil {
			return 0, err
		}
		return r[0].Magnitude, nil
	}
	lo, err := magAt(fLo)
	if err != nil {
		return 0, err
	}
	hi, err := magAt(fHi)
	if err != nil {
		return 0, err
	}
	if lo < threshold || hi > threshold {
		return 0, fmt.Errorf("spice: -3dB point not bracketed by [%g, %g] Hz", fLo, fHi)
	}
	// Bisect in log-frequency for uniform resolution across decades.
	lgLo, lgHi := math.Log(fLo), math.Log(fHi)
	for iter := 0; iter < 60; iter++ {
		mid := math.Exp((lgLo + lgHi) / 2)
		m, err := magAt(mid)
		if err != nil {
			return 0, err
		}
		if m > threshold {
			lgLo = math.Log(mid)
		} else {
			lgHi = math.Log(mid)
		}
	}
	return math.Exp((lgLo + lgHi) / 2), nil
}

// LogSpace returns n frequencies logarithmically spaced across
// [fLo, fHi] — the standard AC sweep grid.
//
//nontree:unit fLo Hz
//nontree:unit fHi Hz
//nontree:unit return Hz
func LogSpace(fLo, fHi float64, n int) []float64 {
	if n < 2 || fLo <= 0 || fHi <= fLo {
		return nil
	}
	out := make([]float64, n)
	lgLo, lgHi := math.Log10(fLo), math.Log10(fHi)
	for i := range out {
		out[i] = math.Pow(10, lgLo+(lgHi-lgLo)*float64(i)/float64(n-1))
	}
	return out
}
