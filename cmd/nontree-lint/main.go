// Command nontree-lint is the repository's multichecker: it runs the
// custom analyzers that mechanically enforce the determinism and oracle
// thread-safety contracts of DESIGN.md §7–§8.
//
// Usage:
//
//	go run ./cmd/nontree-lint ./...
//
// The exit status is 0 when every analyzer is clean, 1 when diagnostics
// were reported, and 2 on operational failure (unparseable or untypeable
// source, bad patterns). CI gates every PR on a clean run.
//
// Analyzers (the roster lives in internal/analysis/registry):
//
//	detflow       nondeterminism flowing through call chains into exported results
//	detordering   map iteration feeding order-sensitive computation
//	epochcheck    incremental-evaluator probes after uncommitted mutation
//	floatcmp      ==/!= on floating-point delay and score values
//	goroleak      goroutines spawned without a reachable join
//	lockguard     //nontree:guardedby fields accessed without the mutex
//	lockorder     inconsistent lock-acquisition order (potential deadlock)
//	nondetsource  wall clocks, math/rand, GOMAXPROCS-dependent logic
//	obsnames      metric names outside the internal/obs catalog
//	oraclesafety  oracle methods writing shared state
//	purityflow    oracle mutations laundered through helper call chains
//	unitcheck     dimensional analysis of the circuit model (Ω·F = s)
//
// lockguard, goroleak, epochcheck, and obsnames are flow-sensitive: they
// run a forward dataflow over the internal/analysis/cfg basic-block graph
// (DESIGN.md §13). detflow, lockorder, and purityflow are additionally
// interprocedural: they build the internal/analysis/callgraph call graph
// and compose bottom-up function summaries across packages (DESIGN.md
// §14). unitcheck propagates declared units across packages; -factdir
// writes the per-package facts analyzers derive as JSON sidecars.
//
// Findings are suppressed only by a justified annotation:
//
//	//nontree:allow <analyzer> <justification>
//
// placed on the flagged line or the line above it (for detordering, the
// loop's `for` line also works). See DESIGN.md §8 for the sanctioned
// exemptions. -staleallow additionally reports annotations that no longer
// suppress anything (and exits 1), keeping the exemption inventory honest.
//
// Machine-readable output: -json emits one JSON object on stdout with
// every diagnostic (including suppressed ones, flagged "suppressed":
// true) and every stale allow; -annotations emits GitHub Actions
// ::error workflow commands so findings surface inline on pull-request
// diffs. Both replace the plain-text diagnostic listing. A wall-clock
// timing line goes to stderr either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nontree/internal/analysis"
	"nontree/internal/analysis/registry"
)

// Analyzers is the suite the multichecker runs, in report order.
var Analyzers = registry.Analyzers()

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// jsonStale is one stale //nontree:allow in -json output.
type jsonStale struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Diagnostics []jsonDiag  `json:"diagnostics"`
	StaleAllows []jsonStale `json:"stale_allows"`
	Packages    int         `json:"packages"`
	Analyzers   []string    `json:"analyzers"`
}

func toJSONDiag(d analysis.Diagnostic, suppressed bool) jsonDiag {
	return jsonDiag{
		File:       d.Pos.Filename,
		Line:       d.Pos.Line,
		Col:        d.Pos.Column,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: suppressed,
	}
}

// emitAnnotations writes GitHub Actions workflow commands for every
// unsuppressed diagnostic and stale allow. Newlines and the command
// metacharacters are escaped per the workflow-command grammar.
func emitAnnotations(w io.Writer, res analysis.Result) {
	esc := func(s string, property bool) string {
		var out []byte
		for _, r := range s {
			switch r {
			case '%':
				out = append(out, "%25"...)
			case '\r':
				out = append(out, "%0D"...)
			case '\n':
				out = append(out, "%0A"...)
			case ':':
				if property {
					out = append(out, "%3A"...)
					continue
				}
				out = append(out, byte(r))
			case ',':
				if property {
					out = append(out, "%2C"...)
					continue
				}
				out = append(out, byte(r))
			default:
				out = append(out, string(r)...)
			}
		}
		return string(out)
	}
	for _, d := range res.Diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=%s::%s\n",
			esc(d.Pos.Filename, true), d.Pos.Line, d.Pos.Column,
			esc(d.Analyzer, true), esc(d.Message, false))
	}
	for _, s := range res.Stale {
		fmt.Fprintf(w, "::error file=%s,line=%d,title=stale-allow::%s\n",
			esc(s.File, true), s.Line,
			esc(fmt.Sprintf("stale //nontree:allow %s: %s", s.Analyzer, s.Reason), false))
	}
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	staleallow := flag.Bool("staleallow", false, "also report //nontree:allow annotations that no longer suppress anything")
	factdir := flag.String("factdir", "", "write per-package analyzer facts as JSON sidecars into this directory")
	jsonOut := flag.Bool("json", false, "emit one JSON document (diagnostics incl. suppressed, stale allows) instead of text")
	annotations := flag.Bool("annotations", false, "emit GitHub Actions ::error workflow commands instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nontree-lint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	facts := map[string]*analysis.Facts{}

	diagSink := io.Writer(os.Stdout)
	if *jsonOut || *annotations {
		diagSink = io.Discard // structured output replaces the text listing
	}
	start := time.Now()
	res, err := analysis.RunAudit(diagSink, "", Analyzers, facts, patterns...)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nontree-lint:", err)
		os.Exit(2)
	}
	if !*staleallow {
		res.Stale = nil
	}

	switch {
	case *jsonOut:
		report := jsonReport{
			Diagnostics: []jsonDiag{},
			StaleAllows: []jsonStale{},
			Packages:    res.Packages,
		}
		for _, a := range Analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range res.Diags {
			report.Diagnostics = append(report.Diagnostics, toJSONDiag(d, false))
		}
		for _, d := range res.Suppressed {
			report.Diagnostics = append(report.Diagnostics, toJSONDiag(d, true))
		}
		for _, s := range res.Stale {
			report.StaleAllows = append(report.StaleAllows, jsonStale{
				File: s.File, Line: s.Line, Analyzer: s.Analyzer, Reason: s.Reason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "nontree-lint:", err)
			os.Exit(2)
		}
	case *annotations:
		emitAnnotations(os.Stdout, res)
	default:
		for _, s := range res.Stale {
			fmt.Println(s.String())
		}
	}

	if *factdir != "" {
		for name, f := range facts {
			if f.Len() == 0 {
				continue
			}
			if err := f.WriteDir(filepath.Join(*factdir, name)); err != nil {
				fmt.Fprintln(os.Stderr, "nontree-lint:", err)
				os.Exit(2)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "nontree-lint: %d analyzer(s) over %d package(s) in %s\n",
		len(Analyzers), res.Packages, elapsed.Round(time.Millisecond))
	if len(res.Diags) > 0 || len(res.Stale) > 0 {
		fmt.Fprintf(os.Stderr, "nontree-lint: %d finding(s), %d stale allow(s)\n", len(res.Diags), len(res.Stale))
		os.Exit(1)
	}
}
