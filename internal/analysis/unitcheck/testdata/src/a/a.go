// Package a exercises the unitcheck analyzer: an rc-like circuit model
// with deliberate dimensional bugs alongside clean control cases that
// must stay silent.
package a

import "math"

// Params mirrors the shape of the real circuit parameters, with every
// annotation style the analyzer recognizes.
type Params struct {
	// DriverResistance is the source impedance (Ω).
	DriverResistance float64
	// WireResistance is series resistance per unit length (Ω/µm).
	WireResistance float64
	// WireCapacitance is shunt capacitance per unit length (F/µm).
	WireCapacitance float64
	// SinkCap is a sink load in femtofarads.
	SinkCap float64 //nontree:unit fF
	// LoadCap is a lumped load in plain farads.
	LoadCap float64 //nontree:unit F
	// FrequencyHz carries hertz by name convention.
	FrequencyHz float64
}

// Pair is a positional-literal target.
type Pair struct {
	R float64 //nontree:unit Ω
	C float64 //nontree:unit F
}

// Width maps a position along the wire (µm) to a width (µm).
//
//nontree:unit pos µm
//nontree:unit return µm
type Width func(pos float64) float64

// Oracle reports per-sink delays.
type Oracle interface {
	// Delays returns one delay per sink.
	//
	//nontree:unit scale 1
	//nontree:unit return s
	Delays(scale float64) []float64
}

// Delay gets its contract wrong: an RC product is a time, not a
// resistance.
//
//nontree:unit r Ω
//nontree:unit c F
//nontree:unit return Ω
func Delay(r, c float64) float64 {
	return r * c // want `return value: s value where Ω is declared`
}

// Elmore is the clean control: Ω·F composes to s mechanically.
//
//nontree:unit r Ω
//nontree:unit c F
//nontree:unit return s
func Elmore(r, c float64) float64 {
	return 0.69 * r * c
}

// SegResistance is clean: (Ω/µm)·µm = Ω.
//
//nontree:unit length µm
//nontree:unit return Ω
func SegResistance(p Params, length float64) float64 {
	return p.WireResistance * length
}

// MaxDelay is clean end to end: math passthroughs preserve dimensions,
// sqrt halves squared exponents, and 1/Hz is a second.
//
//nontree:unit rtau s
//nontree:unit return s
func MaxDelay(rtau float64, p Params) float64 {
	tau := p.DriverResistance * p.LoadCap
	worst := math.Max(tau, rtau)
	if p.FrequencyHz > 0 {
		period := 1.0 / p.FrequencyHz
		worst = math.Max(worst, math.Sqrt(period*rtau))
	}
	return worst
}

// TotalCap sums sink loads; range values inherit the slice's element
// unit.
//
//nontree:unit caps fF
//nontree:unit return fF
func TotalCap(caps []float64) float64 {
	total := caps[0]
	for _, c := range caps[1:] {
		total += c
	}
	return total
}

func addMismatch(p Params) float64 {
	return p.DriverResistance + p.LoadCap // want `Ω \+ F: mismatched dimensions`
}

func prefixSlip(p Params) float64 {
	return p.SinkCap + p.LoadCap // want `fF \+ F: same dimension, different SI scale \(prefix slip\)`
}

func compareMismatch(p Params) bool {
	return p.SinkCap > p.DriverResistance // want `fF > Ω: mismatched dimensions`
}

func badArgument(p Params) float64 {
	return Elmore(p.DriverResistance, p.DriverResistance) // want `argument 1 \(c\): Ω value where F is declared`
}

func badFuncValueArgument(w Width, p Params) float64 {
	return w(p.DriverResistance) // want `argument 0 \(pos\): Ω value where µm is declared`
}

func badOracleUse(o Oracle, p Params) float64 {
	ds := o.Delays(1)
	return ds[0] + p.DriverResistance // want `s \+ Ω: mismatched dimensions`
}

func badKeyedLiteral(p Params) Params {
	return Params{
		DriverResistance: p.LoadCap, // want `field DriverResistance: F value where Ω is declared`
		SinkCap:          15.3,      // constants adopt the declared unit
	}
}

func badPositionalLiteral(p Params) Pair {
	return Pair{p.LoadCap, 0} // want `field R: F value where Ω is declared`
}

func badFieldAssign(p *Params) {
	tau := p.DriverResistance * p.LoadCap
	p.SinkCap = tau // want `assignment: s value where fF is declared`
}

func badOpAssign(p Params) float64 {
	tau := p.DriverResistance * p.LoadCap
	tau += p.LoadCap // want `op-assignment: F value where s is declared`
	return tau
}

func suppressedSlip(p Params) float64 {
	//nontree:allow unitcheck fixture demonstrates the escape hatch
	return p.SinkCap + p.LoadCap
}

// Weird carries a directive that does not parse.
type Weird struct {
	//nontree:unit zorkmid // want `bad unit expression "zorkmid"`
	Bad float64
}

//nontree:unit q Ω // want `directive names unknown parameter "q"`
func noSuchParam(r float64) float64 { return r }

//nontree:unit Ω // want `malformed //nontree:unit directive`
func malformedDirective() {}

//nontree:unit return2 s // want `targets result 2, but the function has 1 result`
func oneResult() float64 { return 0 }
