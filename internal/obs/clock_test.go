package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestClockConfinement pins the observability layer's clock discipline:
// within internal/obs and internal/trace, only span.go and ring.go may
// read the wall clock (time.Now / time.Since / time.Until). Those readings
// feed exclusively the Timings section and Event.Elapsed, both excluded
// from every determinism comparison — any new clock site must either go
// through them or widen this allowlist deliberately. The nondetsource
// analyzer enforces the same rule tree-wide via annotations; this test
// keeps the confinement visible (and enforced) from inside the package,
// with no analyzer run required.
func TestClockConfinement(t *testing.T) {
	allowed := map[string]bool{
		"span.go": true, // internal/obs
		"ring.go": true, // internal/trace
	}
	for _, dir := range []string{".", filepath.Join("..", "trace")} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, entry := range entries {
			name := entry.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok || pkg.Name != "time" {
					return true
				}
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					if !allowed[name] {
						t.Errorf("%s: time.%s outside the clock-confined files (span.go, ring.go); route timings through obs.StartSpan or the ring's Elapsed stamping instead",
							fset.Position(sel.Pos()), sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
}
