package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	for _, algo := range []string{"mst", "steiner", "ert", "ldrg"} {
		if err := run("", 6, 2, algo, 500, false, "trap", "", "", false); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunMethods(t *testing.T) {
	for _, m := range []string{"trap", "be", "adaptive"} {
		if err := run("", 5, 2, "mst", 500, false, m, "", "", false); err != nil {
			t.Errorf("method %s: %v", m, err)
		}
	}
}

func TestRunInductance(t *testing.T) {
	if err := run("", 5, 2, "mst", 1000, true, "be", "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunOutputs(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "w.csv")
	deck := filepath.Join(dir, "c.cir")
	if err := run("", 5, 2, "mst", 500, false, "trap", csv, deck, false); err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "time_s,") {
		t.Error("CSV header missing")
	}
	deckData, err := os.ReadFile(deck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(deckData), ".END") {
		t.Error("deck missing .END")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, 0, "mst", 500, false, "trap", "", "", false); err == nil {
		t.Error("no net source must fail")
	}
	if err := run("", 5, 2, "hyperloop", 500, false, "trap", "", "", false); err == nil {
		t.Error("unknown topology must fail")
	}
}

func TestRunAC(t *testing.T) {
	if err := run("", 5, 2, "mst", 500, false, "trap", "", "", true); err != nil {
		t.Fatal(err)
	}
}
