package sim

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzWorkloadSpec feeds hostile spec JSON through the full generation
// pipeline: decode → validate → generate → encode → re-read. Properties:
// no panic on any input, validation errors are the only rejection path, and
// every accepted spec produces a workload whose JSON round-trips to the
// same fingerprint. Hostile sizes are capped before generation so each exec
// stays fast (the caps are below the spec limits, which the validation
// tests cover directly).
func FuzzWorkloadSpec(f *testing.F) {
	f.Add(`{"seed":42,"requests":64,"qps":100,"arrival":"poisson","keys":8,"zipf_s":1.2}`)
	f.Add(`{"seed":-1,"requests":1,"qps":0.5,"arrival":"burst","burst_size":1,"keys":1}`)
	f.Add(`{"requests":16,"arrival":"uniform","pin_mix":[{"pins":2,"weight":0.5},{"pins":7,"weight":2}]}`)
	f.Add(`{"seed":9,"requests":8,"qps":1000000,"keys":3,"algo":"h2","oracle":"twopole","max_edges":1}`)
	f.Add(`{"requests":-5}`)
	f.Add(`{"zipf_s":0.0001}`)
	f.Add(`[]`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ReadSpec(strings.NewReader(data))
		if err != nil {
			return // malformed JSON is a rejection, not a crash
		}
		// Cap hostile sizes: generation cost is roughly
		// requests + keys × pins, and the fuzzer should explore spec shape,
		// not burn time on huge-but-valid streams.
		spec = spec.withDefaults()
		if spec.Requests > 256 || spec.Keys > 64 {
			return
		}
		for _, m := range spec.PinMix {
			if m.Pins > 64 {
				return
			}
		}
		w, err := Generate(spec)
		if err != nil {
			if err2 := spec.Validate(); err2 == nil {
				t.Fatalf("Generate rejected a spec Validate accepts: %v (spec %+v)", err, spec)
			}
			return
		}
		fp := w.Fingerprint()
		var buf bytes.Buffer
		if err := w.WriteJSON(&buf); err != nil {
			t.Fatalf("encoding generated workload: %v", err)
		}
		back, err := ReadWorkload(&buf)
		if err != nil {
			t.Fatalf("re-reading generated workload: %v", err)
		}
		if back.Fingerprint() != fp {
			t.Fatalf("fingerprint changed across a JSON round trip (spec %+v)", spec)
		}
	})
}
