package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nontree/internal/expt"
)

// TestTrendRegeneratesCommittedArtifact pins the trend half of the
// cross-PR tracking contract: regenerating the trend report from the same
// committed bench artifacts reproduces TREND_PR10.json byte-for-byte.
// Any drift means either an input artifact was rewritten (which the bench
// schema test should have caught) or the trend schema changed without a
// version bump.
func TestTrendRegeneratesCommittedArtifact(t *testing.T) {
	inputs := []string{
		filepath.Join("..", "..", "BENCH_PR4.json"),
		filepath.Join("..", "..", "BENCH_PR6.json"),
	}
	report, err := expt.Trend(inputs)
	if err != nil {
		t.Fatal(err)
	}
	var regen bytes.Buffer
	if err := report.WriteJSON(&regen); err != nil {
		t.Fatal(err)
	}

	committed, err := os.ReadFile(filepath.Join("..", "..", "TREND_PR10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regen.Bytes(), committed) {
		t.Fatalf("regenerated trend report drifted from committed TREND_PR10.json\nregenerated (%d bytes):\n%s\ncommitted (%d bytes):\n%s",
			regen.Len(), truncate(regen.Bytes()), len(committed), truncate(committed))
	}

	// The committed artifact loads back through the schema gate and every
	// metric spans exactly the two input artifacts.
	loaded, err := expt.LoadTrendReport(filepath.Join("..", "..", "TREND_PR10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SchemaVersion != expt.TrendSchemaVersion {
		t.Errorf("committed schema = %d, want %d", loaded.SchemaVersion, expt.TrendSchemaVersion)
	}
	if len(loaded.Artifacts) != len(inputs) {
		t.Fatalf("committed trend spans %d artifacts, want %d", len(loaded.Artifacts), len(inputs))
	}
	for _, m := range loaded.Metrics {
		if len(m.Values) != len(inputs) {
			t.Errorf("metric %s has %d values, want %d", m.Name, len(m.Values), len(inputs))
		}
	}
}

func truncate(b []byte) []byte {
	const max = 2048
	if len(b) <= max {
		return b
	}
	return append(append([]byte{}, b[:max]...), []byte("…")...)
}
