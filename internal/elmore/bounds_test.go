package elmore

import (
	"math"
	"testing"

	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/rc"
	"nontree/internal/spice"
)

func TestBoundsBracketSimulatorOnRandomNets(t *testing.T) {
	// The contract: for every sink of every net, the simulator-measured
	// 50% delay lies inside [Lower, Upper].
	p := rc.Default()
	for seed := int64(0); seed < 10; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(10)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}
		l, err := rc.Lump(topo, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := Bounds(topo, l, 0.5)
		if err != nil {
			t.Fatal(err)
		}

		cm, err := rc.BuildCircuit(topo, p, rc.BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		measured, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, spice.DefaultMeasureOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range measured {
			node := i + 1
			if !bounds.Contains(node, d) {
				t.Errorf("seed %d sink %d: measured %.4g outside [%.4g, %.4g]",
					seed, node, d, bounds.Lower[node], bounds.Upper[node])
			}
		}
	}
}

func TestBoundsBracketOnGraphs(t *testing.T) {
	// Bounds must also hold on non-tree routing graphs.
	p := rc.Default()
	gen := netlist.NewGenerator(42)
	net, err := gen.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mst.Prim(net.Pins)
	if err != nil {
		t.Fatal(err)
	}
	added := 0
	for _, e := range topo.AbsentEdges() {
		if err := topo.AddEdge(e); err == nil {
			added++
			if added == 2 {
				break
			}
		}
	}
	l, err := rc.Lump(topo, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := Bounds(topo, l, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := rc.BuildCircuit(topo, p, rc.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, spice.DefaultMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range measured {
		if !bounds.Contains(i+1, d) {
			t.Errorf("sink %d: measured %.4g outside [%.4g, %.4g]",
				i+1, d, bounds.Lower[i+1], bounds.Upper[i+1])
		}
	}
}

func TestBoundsOrdering(t *testing.T) {
	topo := randomTree(t, 5, 12)
	l := lump(t, topo)
	for _, x := range []float64{0.1, 0.5, 0.9} {
		b, err := Bounds(topo, l, x)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < topo.NumNodes(); n++ {
			if b.Lower[n] > b.Upper[n] {
				t.Fatalf("x=%v node %d: lower %.4g above upper %.4g", x, n, b.Lower[n], b.Upper[n])
			}
			if b.Lower[n] < 0 {
				t.Fatalf("negative lower bound")
			}
		}
	}
}

func TestBoundsTightenWithThreshold(t *testing.T) {
	// The Markov upper bound grows as x→1.
	topo := randomTree(t, 7, 8)
	l := lump(t, topo)
	b10, err := Bounds(topo, l, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b90, err := Bounds(topo, l, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < topo.NumPins(); n++ {
		if b90.Upper[n] <= b10.Upper[n] {
			t.Fatalf("upper bound must grow with x: node %d %.4g vs %.4g",
				n, b10.Upper[n], b90.Upper[n])
		}
	}
}

func TestBoundsValidation(t *testing.T) {
	topo := randomTree(t, 1, 5)
	l := lump(t, topo)
	for _, x := range []float64{0, 1, -0.5, 1.5} {
		if _, err := Bounds(topo, l, x); err == nil {
			t.Errorf("x=%v must be rejected", x)
		}
	}
}

func TestUpperBoundNeverBelowElmoreLn2For50(t *testing.T) {
	// At x=0.5, Upper = 2·t_ED which exceeds the single-pole truth
	// ln2·t_ED — sanity that the bound has the right scale.
	topo := randomTree(t, 9, 10)
	l := lump(t, topo)
	b, err := Bounds(topo, l, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := GraphDelays(topo, l)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < topo.NumPins(); n++ {
		if b.Upper[n] < math.Ln2*ed[n] {
			t.Fatalf("node %d: upper bound %.4g below ln2·Elmore %.4g", n, b.Upper[n], math.Ln2*ed[n])
		}
		if math.Abs(b.Upper[n]-2*ed[n]) > 1e-12*ed[n] {
			t.Fatalf("node %d: 50%% upper bound must equal 2·t_ED", n)
		}
	}
}
