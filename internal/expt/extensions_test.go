package expt

import (
	"strings"
	"testing"
)

func TestCSORGTargetsCriticalSink(t *testing.T) {
	cfg := quickConfig()
	table, err := CSORG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	org := table.FindSection("ORG objective (max delay)")
	cs := table.FindSection("CSORG objective (critical sink)")
	if org == nil || cs == nil {
		t.Fatal("sections missing")
	}
	// Both must improve the critical sink on average (it is the worst
	// Elmore sink, which the ORG objective also chases); CSORG must be at
	// least competitive with ORG on its own target.
	for _, size := range cfg.Sizes {
		o := org.RowFor(size).Summary
		c := cs.RowFor(size).Summary
		if o.AllDelay > 1.01 {
			t.Errorf("size %d: ORG failed to improve the critical sink (%.3f)", size, o.AllDelay)
		}
		if c.AllDelay > o.AllDelay+0.1 {
			t.Errorf("size %d: CSORG (%.3f) much worse than ORG (%.3f) on the critical sink",
				size, c.AllDelay, o.AllDelay)
		}
	}
}

func TestWSORGImprovesDelayForMetal(t *testing.T) {
	cfg := quickConfig()
	table, err := WSORG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overMST := table.FindSection("WSORG over MST")
	if overMST == nil {
		t.Fatal("section missing")
	}
	for _, size := range cfg.Sizes {
		s := overMST.RowFor(size).Summary
		if s.AllDelay > 1.0+1e-9 {
			t.Errorf("size %d: sizing worsened average delay (%.3f)", size, s.AllDelay)
		}
		if s.AllCost < 1.0-1e-9 {
			t.Errorf("size %d: metal area ratio %.3f below 1 (impossible)", size, s.AllCost)
		}
	}
}

func TestFrontierOrderings(t *testing.T) {
	cfg := quickConfig()
	cfg.Trials = 3
	entries, err := Frontier(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FrontierEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	// Structural facts that must hold regardless of randomness:
	if m := byName["MST"]; m.DelayRatio != 1 || m.CostRatio != 1 {
		t.Errorf("MST row must be the unit baseline: %+v", m)
	}
	if s := byName["Steiner (I1S)"]; s.CostRatio > 1+1e-9 {
		t.Errorf("Steiner cost ratio %.3f above MST", s.CostRatio)
	}
	if st := byName["Star (SPT)"]; st.CostRatio < 1 {
		t.Errorf("star cannot cost less than the MST: %.3f", st.CostRatio)
	}
	// LDRG must not be slower than the MST on average.
	if l := byName["LDRG"]; l.DelayRatio > 1+1e-9 {
		t.Errorf("LDRG average delay ratio %.3f above 1", l.DelayRatio)
	}
	// PD-tree cost must be monotone in c.
	c25 := byName["PD-tree c=0.25"].CostRatio
	c75 := byName["PD-tree c=0.75"].CostRatio
	star := byName["Star (SPT)"].CostRatio
	if !(c25 <= c75+1e-9 && c75 <= star+1e-9) {
		t.Errorf("PD-tree cost not monotone: %.3f %.3f %.3f", c25, c75, star)
	}
}

func TestRenderFrontier(t *testing.T) {
	var sb strings.Builder
	RenderFrontier(&sb, []FrontierEntry{{Name: "MST", DelayRatio: 1, CostRatio: 1}}, 20, 5)
	out := sb.String()
	if !strings.Contains(out, "MST") || !strings.Contains(out, "20-pin") {
		t.Errorf("render: %q", out)
	}
}

func TestTimingExperimentImprovesClock(t *testing.T) {
	cfg := quickConfig()
	res, err := Timing(cfg, 4, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanClockRatio > 1.0+1e-9 {
		t.Errorf("re-routing worsened the mean clock: %.3f", res.MeanClockRatio)
	}
	if res.MeanClockRatio <= 0 {
		t.Errorf("implausible clock ratio %.3f", res.MeanClockRatio)
	}
	if res.MeanWireRatio < 1 {
		t.Errorf("re-routing cannot remove wire: %.3f", res.MeanWireRatio)
	}
	if len(res.ClockRatios) != 4 {
		t.Errorf("ratios %v", res.ClockRatios)
	}
}

func TestTimingExperimentValidation(t *testing.T) {
	cfg := quickConfig()
	if _, err := Timing(cfg, 0, 3, 8); err == nil {
		t.Error("zero designs must fail")
	}
	if _, err := Timing(cfg, 1, 3, 2); err == nil {
		t.Error("two-pin nets must fail")
	}
}
