// Package nondetsource forbids sources of nondeterminism inside the
// algorithm packages: wall-clock reads, math/rand, and GOMAXPROCS- or
// CPU-count-dependent logic. The repository guarantees that every
// algorithm produces byte-identical results for any Options.Workers value
// (DESIGN.md §7); a clock read, an unseeded random draw, or a decision
// keyed on the machine's core count silently voids that guarantee.
//
// Three constructs are reported:
//
//   - calls to time.Now, time.Since, or time.Until;
//   - any import of math/rand or math/rand/v2 — global-source calls
//     (rand.Intn, rand.Shuffle, ...) are inherently unseeded, and even
//     rand.New(rand.NewSource(seed)) needs a documented seeding discipline,
//     so the import itself must carry a justification;
//   - calls to runtime.GOMAXPROCS or runtime.NumCPU.
//
// Sanctioned uses — the seeded test-case generators in internal/netlist
// and internal/expt, the Workers:0 → one-goroutine-per-CPU resolution
// whose reduction is order-independent, and the confined clock readers in
// internal/obs (span.go) and internal/trace (ring.go) whose readings only
// ever reach determinism-excluded sections — carry
// //nontree:allow nondetsource <justification> annotations.
package nondetsource

import (
	"go/ast"
	"strconv"

	"nontree/internal/analysis"
)

// Analyzer is the nondetsource check.
var Analyzer = &analysis.Analyzer{
	Name: "nondetsource",
	Doc: "forbid time.Now, math/rand, and GOMAXPROCS/NumCPU-dependent logic " +
		"in algorithm packages",
	Scope: []string{
		"nontree", // root façade package
		"nontree/sta",
		"internal/core",
		"internal/ert",
		"internal/steiner",
		"internal/pdtree",
		"internal/graph",
		"internal/geom",
		"internal/mst",
		"internal/elmore",
		"internal/spice",
		"internal/linalg",
		"internal/rc",
		"internal/stats",
		"internal/netlist",
		"internal/expt",
		"internal/embed",
		"internal/viz",
		// The observability layer is in scope so the clock stays confined:
		// obs/span.go and trace/ring.go are the only annotated readers, and
		// everything they capture lands in sections (Timings, Event.Elapsed)
		// that the determinism comparisons exclude (DESIGN.md §10, §11).
		"internal/obs",
		"internal/trace",
		// The wide-event log is in scope so events stay clock-free at the
		// package level: every timing an olog.Event carries is stamped by
		// serve through the obs stopwatch, and the deterministic projection
		// (Event.Deterministic) excludes those fields (DESIGN.md §16).
		"internal/olog",
		// The workload simulator is in scope so its generation side stays a
		// pure function of the spec seed: sim's math/rand import carries the
		// seeded-stream justification, and the driver reads the clock only
		// through the sanctioned obs.Span/obs.Stopwatch helpers.
		"internal/sim",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in an algorithm package: random draws break "+
						"reproducibility; derive every stream from an explicit seed and "+
						"document it with //nontree:allow nondetsource <why>", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case analysis.IsPkgCall(pass.Info, call, "time", "Now", "Since", "Until"):
				pass.Report(call.Pos(),
					"wall-clock read in an algorithm package: results must not depend "+
						"on when or how fast the code runs (DESIGN.md §8)")
			case analysis.IsPkgCall(pass.Info, call, "runtime", "GOMAXPROCS", "NumCPU"):
				pass.Report(call.Pos(),
					"GOMAXPROCS/NumCPU-dependent logic in an algorithm package: results "+
						"must be identical on any machine and any Workers setting; if the "+
						"value only sizes a worker pool with an order-independent "+
						"reduction, annotate //nontree:allow nondetsource <why>")
			}
			return true
		})
	}
	return nil
}
