package elmore

import (
	"math"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/rc"
)

func TestIncrementalMatchesFullSolveOnTrees(t *testing.T) {
	p := rc.Default()
	for seed := int64(0); seed < 6; seed++ {
		topo := randomTree(t, seed, 10)
		inc, err := NewIncremental(topo, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range topo.AbsentEdges() {
			got, err := inc.WithEdge(e)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: add the edge for real and solve from scratch.
			if err := topo.AddEdge(e); err != nil {
				t.Fatal(err)
			}
			l, err := rc.Lump(topo, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := GraphDelays(topo, l)
			if err != nil {
				t.Fatal(err)
			}
			if err := topo.RemoveEdge(e); err != nil {
				t.Fatal(err)
			}
			for n := range want {
				if math.Abs(got[n]-want[n]) > 1e-9*math.Max(want[n], 1e-30) {
					t.Fatalf("seed %d edge %v node %d: incremental %.9g vs full %.9g",
						seed, e, n, got[n], want[n])
				}
			}
		}
	}
}

func TestIncrementalMatchesFullSolveOnGraphs(t *testing.T) {
	// The evaluator must also work when the base topology already has
	// cycles (LDRG's second and later iterations).
	p := rc.Default()
	topo := randomTree(t, 11, 10)
	for _, e := range topo.AbsentEdges()[:2] {
		if err := topo.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := NewIncremental(topo, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range topo.AbsentEdges()[:10] {
		got, err := inc.WithEdge(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.AddEdge(e); err != nil {
			t.Fatal(err)
		}
		l, err := rc.Lump(topo, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GraphDelays(topo, l)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.RemoveEdge(e); err != nil {
			t.Fatal(err)
		}
		for n := range want {
			if math.Abs(got[n]-want[n]) > 1e-9*math.Max(want[n], 1e-30) {
				t.Fatalf("edge %v node %d: %.9g vs %.9g", e, n, got[n], want[n])
			}
		}
	}
}

func TestIncrementalRejectsPresentAndDegenerate(t *testing.T) {
	p := rc.Default()
	topo := randomTree(t, 2, 6)
	inc, err := NewIncremental(topo, p)
	if err != nil {
		t.Fatal(err)
	}
	present := topo.Edges()[0]
	if _, err := inc.WithEdge(present); err == nil {
		t.Error("present edge must be rejected")
	}
}

func TestFastLDRGMatchesReferenceGreedy(t *testing.T) {
	// FastLDRG and the generic greedy with the Elmore oracle implement the
	// same algorithm; they must pick identical edges and reach identical
	// final delays.
	p := rc.Default()
	for seed := int64(0); seed < 8; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(12)
		if err != nil {
			t.Fatal(err)
		}
		seedTopo, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}

		fastTopo, fastEdges, err := FastLDRG(seedTopo, p, 0)
		if err != nil {
			t.Fatal(err)
		}

		// Reference: naive greedy with full refactorization.
		refTopo := seedTopo.Clone()
		var refEdges []graph.Edge
		for {
			l, err := rc.Lump(refTopo, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			base, err := GraphDelays(refTopo, l)
			if err != nil {
				t.Fatal(err)
			}
			cur := MaxSinkDelay(base, refTopo.NumPins())
			bestD := cur
			var bestE graph.Edge
			found := false
			for _, e := range refTopo.AbsentEdges() {
				if err := refTopo.AddEdge(e); err != nil {
					t.Fatal(err)
				}
				l2, err := rc.Lump(refTopo, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				d, err := GraphDelays(refTopo, l2)
				if err != nil {
					t.Fatal(err)
				}
				if err := refTopo.RemoveEdge(e); err != nil {
					t.Fatal(err)
				}
				if m := MaxSinkDelay(d, refTopo.NumPins()); m < bestD && m < cur*(1-1e-9) {
					bestD = m
					bestE = e
					found = true
				}
			}
			if !found {
				break
			}
			if err := refTopo.AddEdge(bestE); err != nil {
				t.Fatal(err)
			}
			refEdges = append(refEdges, bestE)
		}

		if len(fastEdges) != len(refEdges) {
			t.Fatalf("seed %d: fast added %v, reference %v", seed, fastEdges, refEdges)
		}
		for i := range fastEdges {
			if fastEdges[i] != refEdges[i] {
				t.Fatalf("seed %d: edge %d differs: %v vs %v", seed, i, fastEdges[i], refEdges[i])
			}
		}
		if fastTopo.Cost() != refTopo.Cost() {
			t.Fatalf("seed %d: cost mismatch", seed)
		}
	}
}

func TestFastLDRGRespectsEdgeBudget(t *testing.T) {
	p := rc.Default()
	topo := randomTree(t, 3, 15)
	_, edges, err := FastLDRG(topo, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) > 1 {
		t.Errorf("budget violated: %v", edges)
	}
}
