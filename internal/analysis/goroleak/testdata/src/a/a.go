// Package a exercises goroleak: spawned goroutines must have a reachable
// join in the spawning function.
package a

import "sync"

func work() {}

// --- joined correctly: no diagnostics ---

// PoolJoin is the worker-pool shape: spawn N, Wait once.
func PoolJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// ChannelJoin receives the goroutine's completion signal.
func ChannelJoin() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	return <-errc
}

// SelectJoin joins through a select receive.
func SelectJoin(stop chan struct{}) {
	done := make(chan struct{})
	go func() { close(done) }()
	select {
	case <-done:
	case <-stop:
	}
}

// RangeJoin drains the results channel — every worker send is observed.
func RangeJoin(n int) int {
	out := make(chan int)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
	sum := 0
	for v := range out {
		sum += v
	}
	return sum
}

// DeferredJoin joins at function exit via defer.
func DeferredJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	defer wg.Wait()
	go func() {
		defer wg.Done()
		work()
	}()
	work()
}

// BranchJoin joins on one path: a reachable join suffices.
func BranchJoin(cond bool) {
	done := make(chan struct{})
	go func() { close(done) }()
	if cond {
		<-done
	}
}

// --- leaks ---

// FireAndForget never observes the goroutine.
func FireAndForget() {
	go work() // want `goroutine is never joined on any path`
}

// WaitBeforeSpawn has the join before the spawn, not after.
func WaitBeforeSpawn() {
	var wg sync.WaitGroup
	wg.Wait()
	go func() { work() }() // want `goroutine is never joined on any path`
}

// InnerLeak spawns inside a literal that never joins; the outer Wait
// belongs to a different WaitGroup analysis unit and must not mask it.
func InnerLeak() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // outer spawn is joined by the Wait below
		defer wg.Done()
		go work() // want `goroutine is never joined on any path`
	}()
	wg.Wait()
}

// LitNotInvoked: a join that only exists inside a non-invoked literal
// does not count.
func LitNotInvoked() func() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); work() }() // want `goroutine is never joined on any path`
	return func() { wg.Wait() }
}

// Allowed demonstrates the escape hatch for intentionally detached work.
func Allowed() {
	//nontree:allow goroleak fixture exercises the annotation path
	go work()
}
