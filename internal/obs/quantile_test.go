package obs

import (
	"math"
	"testing"
)

func histOf(samples ...float64) HistogramSnapshot {
	g := NewRegistry()
	for _, v := range samples {
		g.Observe("h", v)
	}
	return g.Snapshot().Histograms["h"]
}

func TestQuantileEmpty(t *testing.T) {
	var h HistogramSnapshot
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestQuantileSingleSampleIsExact(t *testing.T) {
	h := histOf(0.125)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.125 {
			t.Errorf("Quantile(%g) = %g, want the only sample 0.125", q, got)
		}
	}
}

// TestQuantileWithinBucketResolution pins the accuracy contract: the
// estimate for a known sample set stays within a factor of two of the true
// order statistic (power-of-two buckets cannot do better).
func TestQuantileWithinBucketResolution(t *testing.T) {
	samples := make([]float64, 0, 1000)
	g := NewRegistry()
	for i := 1; i <= 1000; i++ {
		v := float64(i) / 1000 // 0.001 .. 1.000
		samples = append(samples, v)
		g.Observe("h", v)
	}
	h := g.Snapshot().Histograms["h"]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := samples[int(q*1000)-1]
		got := h.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Errorf("Quantile(%g) = %g, want within 2x of %g", q, got, truth)
		}
	}
}

func TestQuantileMonotoneAndClamped(t *testing.T) {
	h := histOf(0.004, 0.01, 0.02, 0.05, 0.3, 1.7, 2.1, 9.0)
	prev := math.Inf(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %g < previous %g: not monotone", q, v, prev)
		}
		if v < h.Min || v > h.Max {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, v, h.Min, h.Max)
		}
		prev = v
	}
	if got := h.Quantile(1); got != h.Max {
		t.Errorf("Quantile(1) = %g, want Max %g", got, h.Max)
	}
}

func TestPreregisterSimFreezesSchema(t *testing.T) {
	g := NewRegistry()
	PreregisterSim(g)
	s := g.Snapshot()
	for _, name := range SimCounterNames() {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("counter %s not preregistered", name)
		}
	}
	if _, ok := s.Timings[TimeSimRequestSeconds]; !ok {
		t.Errorf("timing %s not preregistered", TimeSimRequestSeconds)
	}
}
