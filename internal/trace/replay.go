package trace

import (
	"fmt"
	"strings"
)

// Trace replay: re-derive the decision sequence recorded in a trace and
// diff it against a second trace of the same workload. A clean diff means
// the two runs made byte-identical decisions (modulo wall-clock timing);
// drift indicates nondeterminism, a code change, or a corrupted trace —
// the drift-detection contract DESIGN.md §11 describes.

// AcceptedEdge is one topology modification re-derived from a trace.
type AcceptedEdge struct {
	// U and V are the committed edge's endpoints.
	U, V int
	// Tap marks a mid-edge tap commit; X and Y then locate the tap point.
	Tap  bool
	X, Y float64
	// After is the objective value the commit achieved.
	After float64
}

// AcceptedEdges re-derives the accepted-edge sequence from a trace: one
// entry per edge_accepted event, in acceptance order.
func AcceptedEdges(events []Event) []AcceptedEdge {
	var out []AcceptedEdge
	for _, e := range events {
		if e.Kind != KindEdgeAccepted {
			continue
		}
		out = append(out, AcceptedEdge{U: e.U, V: e.V, Tap: e.Tap, X: e.X, Y: e.Y, After: e.After})
	}
	return out
}

// Drift is one divergence between two traces.
type Drift struct {
	// Index is the event position at which the traces diverge (0-based);
	// len(shorter trace) when one trace is a prefix of the other.
	Index int
	// Got and Want are the canonical deterministic encodings at Index
	// ("" for the trace that ended early).
	Got, Want string
}

// String renders the drift for diagnostics.
func (d Drift) String() string {
	switch {
	case d.Got == "":
		return fmt.Sprintf("event %d: trace ended early; want %s", d.Index, d.Want)
	case d.Want == "":
		return fmt.Sprintf("event %d: unexpected extra event %s", d.Index, d.Got)
	default:
		return fmt.Sprintf("event %d:\n  got  %s\n  want %s", d.Index, d.Got, d.Want)
	}
}

// maxDrifts bounds Diff's report: after this many divergences the
// remaining events are summarized as a single length drift, keeping
// pathological diffs readable.
const maxDrifts = 20

// Diff compares the deterministic projections of two traces event by
// event and returns the divergences, empty when the traces agree. Seq is
// part of the comparison — a dropped or duplicated event shifts every
// later sequence number and is reported at its first occurrence.
func Diff(got, want []Event) []Drift {
	var drifts []Drift
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g := string(got[i].Deterministic().Encode())
		w := string(want[i].Deterministic().Encode())
		if g != w {
			drifts = append(drifts, Drift{Index: i, Got: g, Want: w})
			if len(drifts) >= maxDrifts {
				return drifts
			}
		}
	}
	for i := n; i < len(got); i++ {
		drifts = append(drifts, Drift{Index: i, Got: string(got[i].Deterministic().Encode())})
		if len(drifts) >= maxDrifts {
			return drifts
		}
	}
	for i := n; i < len(want); i++ {
		drifts = append(drifts, Drift{Index: i, Want: string(want[i].Deterministic().Encode())})
		if len(drifts) >= maxDrifts {
			return drifts
		}
	}
	return drifts
}

// FormatDrifts renders a drift list for human consumption, one drift per
// paragraph; "" when the list is empty.
func FormatDrifts(drifts []Drift) string {
	if len(drifts) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d drift(s):\n", len(drifts))
	for _, d := range drifts {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
