// Package a exercises epochcheck against the stub graph/elmore packages.
// BuggySweep reconstructs the PR 6 stale-cache bug shape: a greedy sweep
// that commits accepted edges without re-factoring the incremental
// evaluator, so every later iteration probes stale caches.
package a

import (
	"elmore"
	"graph"
)

// BuggySweep is the PR 6 bug reconstruction: WithEdge answers from the
// factorization of the *original* topology on every iteration after the
// first acceptance.
func BuggySweep(t *graph.Topology, cands []graph.Edge) error {
	inc, err := elmore.NewIncremental(t)
	if err != nil {
		return err
	}
	for _, e := range cands {
		d, err := inc.WithEdge(e) // want `WithEdge on inc may answer from a stale factorization`
		if err != nil {
			return err
		}
		if len(d) > 0 {
			if err := t.AddEdge(e); err != nil { // committed mutation, no Refactor
				return err
			}
		}
	}
	return nil
}

// FixedSweep is the corrected protocol: Refactor after every committed
// mutation, before the next probe.
func FixedSweep(t *graph.Topology, cands []graph.Edge) error {
	inc, err := elmore.NewIncremental(t)
	if err != nil {
		return err
	}
	for _, e := range cands {
		d, err := inc.WithEdge(e)
		if err != nil {
			return err
		}
		if len(d) > 0 {
			if err := t.AddEdge(e); err != nil {
				return err
			}
			if err := inc.Refactor(); err != nil {
				return err
			}
		}
	}
	return nil
}

// StraightBuggy: a probe directly after a committed mutation.
func StraightBuggy(t *graph.Topology, inc *elmore.Incremental, e graph.Edge) {
	_ = t.AddEdge(e)
	_, _ = inc.WithEdge(e) // want `WithEdge on inc may answer from a stale factorization`
}

// StraightFixed: Refactor restores consistency.
func StraightFixed(t *graph.Topology, inc *elmore.Incremental, e graph.Edge) {
	_ = t.AddEdge(e)
	_ = inc.Refactor()
	_, _ = inc.WithEdge(e)
}

// ProbeThenRevert is the sanctioned probe pattern: all probes precede the
// temporary mutation pair, so nothing stale is ever read.
func ProbeThenRevert(t *graph.Topology, inc *elmore.Incremental, e graph.Edge) {
	_, _ = inc.WithEdge(e)
	_ = t.AddEdge(e)
	_ = t.RemoveEdge(e)
}

// WidthTableBuggy: WSORG-shaped width-map commits invalidate the
// factorization exactly like topology edits.
func WidthTableBuggy(widths map[graph.Edge]int, inc *elmore.Incremental, cands []graph.Edge) {
	for _, e := range cands {
		if inc.WideningBound(e) > 0 { // want `WideningBound on inc may answer from a stale factorization`
			widths[e]++
		}
	}
}

// WidthTableFixed refactors after the committed widening.
func WidthTableFixed(widths map[graph.Edge]int, inc *elmore.Incremental, cands []graph.Edge) {
	for _, e := range cands {
		if inc.WideningBound(e) > 0 {
			widths[e]++
			_ = inc.Refactor()
		}
	}
}

// engine mirrors core.sweepEngine: the evaluator reached through a
// wrapping struct, refactored through a lowercase helper.
type engine struct {
	inc *elmore.Incremental
}

func (eng *engine) refactor() error { return eng.inc.Refactor() }

// EngineSweep is the real sweep shape: probe through eng.inc, commit,
// refactor through the helper. One root (eng) ties them together.
func EngineSweep(t *graph.Topology, cands []graph.Edge) error {
	inc, err := elmore.NewIncremental(t)
	if err != nil {
		return err
	}
	eng := &engine{inc: inc}
	for _, e := range cands {
		d, err := eng.inc.WithEdge(e)
		if err != nil {
			return err
		}
		if len(d) > 0 {
			if err := t.AddEdge(e); err != nil {
				return err
			}
			if err := eng.refactor(); err != nil {
				return err
			}
		}
	}
	return nil
}

// EngineSweepBuggy forgets the helper: the engine root goes stale.
func EngineSweepBuggy(t *graph.Topology, cands []graph.Edge) error {
	inc, err := elmore.NewIncremental(t)
	if err != nil {
		return err
	}
	eng := &engine{inc: inc}
	for _, e := range cands {
		d, err := eng.inc.WithEdge(e) // want `WithEdge on eng may answer from a stale factorization`
		if err != nil {
			return err
		}
		if len(d) > 0 {
			if err := t.AddEdge(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Allowed demonstrates the escape hatch.
func Allowed(t *graph.Topology, inc *elmore.Incremental, e graph.Edge) {
	_ = t.AddEdge(e)
	//nontree:allow epochcheck fixture exercises the annotation path
	_ = inc.BaseDelays()
}
