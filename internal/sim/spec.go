// Package sim is the fleet-scale workload simulator behind cmd/nontree-sim:
// a deterministic, seeded request-stream generator (mixed pin counts drawn
// from a configurable distribution, uniform/Poisson/burst arrival
// processes, Zipf hot-key skew, closed-loop concurrency ramps) plus an
// open/closed-loop HTTP driver that replays the stream against one or more
// live nontree-serve instances, records client-observed latency into
// internal/obs power-of-two histograms, scrapes the daemons' Prometheus
// counters around the run, and emits a schema-stable SIM_*.json report
// whose SLO gate fails the run on violation (DESIGN.md §15).
//
// Determinism contract: workload generation is a pure function of the
// WorkloadSpec. Every random draw comes from rand.New(rand.NewSource(...))
// sub-streams derived from Spec.Seed, timestamps are integer nanosecond
// offsets, and the canonical JSON encoding — and therefore Fingerprint —
// is byte-identical across runs, machines and PRs, so the same stream can
// be replayed to compare serving behavior between versions. The
// nondeterministic half — actually issuing requests — is confined to the
// driver, whose only clock access goes through the sanctioned
// obs.StartSpan/obs.Stopwatch readers (wall time lands exclusively in
// report fields and Timings sections that no determinism comparison reads).
package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"nontree/internal/netlist"
	"nontree/internal/serve"
)

// Arrival selects the request arrival process of a workload.
type Arrival string

// Arrival processes. All three target Spec.QPS on average; they differ in
// how the load clusters.
const (
	// ArrivalUniform spaces requests exactly 1/QPS apart.
	ArrivalUniform Arrival = "uniform"
	// ArrivalPoisson draws exponential inter-arrival gaps (memoryless open
	// traffic, the classic heavy-traffic model).
	ArrivalPoisson Arrival = "poisson"
	// ArrivalBurst issues BurstSize requests simultaneously every
	// BurstSize/QPS seconds — the worst case for the daemon's shed limiter.
	ArrivalBurst Arrival = "burst"
)

// PinMix is one entry of the pin-count distribution: nets with Pins pins
// are drawn with probability Weight / (sum of all weights).
type PinMix struct {
	Pins   int     `json:"pins"`
	Weight float64 `json:"weight"`
}

// RampStage is one step of a closed-loop concurrency ramp: Requests
// requests driven by Concurrency workers before the next stage starts.
type RampStage struct {
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
}

// WorkloadSpec parameterizes workload generation. The zero value plus a
// seed is usable: withDefaults fills every unset knob.
type WorkloadSpec struct {
	// Seed derives every random stream; equal specs generate byte-identical
	// workloads.
	Seed int64 `json:"seed"`
	// Requests is the stream length.
	Requests int `json:"requests"`
	// QPS is the target arrival rate of the schedule (requests/second).
	QPS float64 `json:"qps"`
	// Arrival selects the arrival process (default uniform).
	Arrival Arrival `json:"arrival"`
	// BurstSize is the simultaneous-request count for ArrivalBurst.
	BurstSize int `json:"burst_size,omitempty"`
	// PinMix is the pin-count distribution nets are drawn from.
	PinMix []PinMix `json:"pin_mix,omitempty"`
	// Keys is the number of distinct nets; requests pick among them, so
	// smaller key spaces mean more repeated nets (cache realism).
	Keys int `json:"keys"`
	// ZipfS skews key popularity: 0 picks keys uniformly; s > 1 draws them
	// Zipf(s)-distributed so low-numbered keys are hot.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Side is the layout square side length (µm) nets are generated in.
	Side float64 `json:"side_um,omitempty"`
	// Algo, Oracle, RouteWorkers and MaxEdges are the serve.RouteOptions
	// every request carries.
	Algo         string `json:"algo,omitempty"`
	Oracle       string `json:"oracle,omitempty"`
	RouteWorkers int    `json:"route_workers,omitempty"`
	MaxEdges     int    `json:"max_edges,omitempty"`
}

// Generation limits. They bound hostile specs (the fuzz surface) without
// constraining any realistic soak configuration.
const (
	// MaxRequests bounds the stream length of one workload.
	MaxRequests = 1 << 22
	// MaxKeys bounds the distinct-net table.
	MaxKeys = 1 << 16
	// MaxPins bounds the per-net pin count.
	MaxPins = 1 << 10
	// MaxQPS bounds the schedule rate.
	MaxQPS = 1e7
)

// Spec validation errors.
var (
	ErrBadRequests = errors.New("sim: requests must be in [1, MaxRequests]")
	ErrBadQPS      = errors.New("sim: qps must be finite and in (0, MaxQPS]")
	ErrBadArrival  = errors.New("sim: unknown arrival process")
	ErrBadBurst    = errors.New("sim: burst_size must be in [1, requests]")
	ErrBadPinMix   = errors.New("sim: pin_mix entries need pins in [2, MaxPins] and finite positive weight")
	ErrBadKeys     = errors.New("sim: keys must be in [1, MaxKeys]")
	ErrBadZipf     = errors.New("sim: zipf_s must be 0 (uniform) or in (1, 64]")
	ErrBadSide     = errors.New("sim: side_um must be finite and positive")
	ErrBadRamp     = errors.New("sim: ramp stages need positive requests and concurrency")
)

// withDefaults fills unset fields; it never mutates the receiver's slices.
func (s WorkloadSpec) withDefaults() WorkloadSpec {
	if s.Requests <= 0 {
		s.Requests = 256
	}
	if s.QPS == 0 {
		s.QPS = 50
	}
	if s.Arrival == "" {
		s.Arrival = ArrivalUniform
	}
	if s.Arrival == ArrivalBurst && s.BurstSize == 0 {
		s.BurstSize = 8
	}
	if len(s.PinMix) == 0 {
		s.PinMix = []PinMix{{Pins: 5, Weight: 3}, {Pins: 10, Weight: 2}, {Pins: 20, Weight: 1}}
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	if s.Side == 0 {
		s.Side = netlist.DefaultSide
	}
	if s.Algo == "" {
		s.Algo = serve.AlgoLDRG
	}
	if s.Oracle == "" {
		s.Oracle = serve.OracleElmore
	}
	return s
}

// Validate checks the spec against the generation limits. Generate applies
// defaults first, so zero-valued fields never fail here.
func (s WorkloadSpec) Validate() error {
	if s.Requests < 1 || s.Requests > MaxRequests {
		return fmt.Errorf("%w: %d", ErrBadRequests, s.Requests)
	}
	if !(s.QPS > 0) || s.QPS > MaxQPS || math.IsInf(s.QPS, 0) {
		return fmt.Errorf("%w: %g", ErrBadQPS, s.QPS)
	}
	switch s.Arrival {
	case ArrivalUniform, ArrivalPoisson:
	case ArrivalBurst:
		if s.BurstSize < 1 || s.BurstSize > s.Requests {
			return fmt.Errorf("%w: %d", ErrBadBurst, s.BurstSize)
		}
	default:
		return fmt.Errorf("%w: %q", ErrBadArrival, s.Arrival)
	}
	if len(s.PinMix) == 0 {
		return ErrBadPinMix
	}
	for _, m := range s.PinMix {
		if m.Pins < 2 || m.Pins > MaxPins {
			return fmt.Errorf("%w: pins %d", ErrBadPinMix, m.Pins)
		}
		if !(m.Weight > 0) || math.IsInf(m.Weight, 0) {
			return fmt.Errorf("%w: weight %g", ErrBadPinMix, m.Weight)
		}
	}
	if s.Keys < 1 || s.Keys > MaxKeys {
		return fmt.Errorf("%w: %d", ErrBadKeys, s.Keys)
	}
	if s.ZipfS != 0 && !(s.ZipfS > 1 && s.ZipfS <= 64) {
		return fmt.Errorf("%w: %g", ErrBadZipf, s.ZipfS)
	}
	if !(s.Side > 0) || math.IsInf(s.Side, 0) {
		return fmt.Errorf("%w: %g", ErrBadSide, s.Side)
	}
	// Route options reuse the daemon's own validation so a generated
	// workload can never carry a request the daemon would reject as
	// malformed (rejections must mean load, not typos).
	if _, err := serve.ValidateRouteOptions(s.routeOptions()); err != nil {
		return err
	}
	return nil
}

// routeOptions assembles the serve.RouteOptions each request carries.
func (s WorkloadSpec) routeOptions() serve.RouteOptions {
	return serve.RouteOptions{
		Algo:     s.Algo,
		Oracle:   s.Oracle,
		Workers:  s.RouteWorkers,
		MaxEdges: s.MaxEdges,
	}
}

// ReadSpec parses a WorkloadSpec from JSON (unknown fields rejected).
func ReadSpec(r io.Reader) (WorkloadSpec, error) {
	var s WorkloadSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("sim: decoding spec: %w", err)
	}
	return s, nil
}
