package trace

import (
	"bytes"
	"math"
	"testing"
)

// canonFloat maps every NaN to the canonical NaN — the one lossy case of
// the hex-literal encoding, which by contract canonicalizes NaN payloads.
func canonFloat(v float64) float64 {
	if math.IsNaN(v) {
		return math.NaN()
	}
	return v
}

func (e Event) canon() Event {
	e.Kind = canonString(e.Kind)
	e.Oracle = canonString(e.Oracle)
	e.Reason = canonString(e.Reason)
	e.X = canonFloat(e.X)
	e.Y = canonFloat(e.Y)
	e.Value = canonFloat(e.Value)
	e.Before = canonFloat(e.Before)
	e.After = canonFloat(e.After)
	e.Elapsed = canonFloat(e.Elapsed)
	return e
}

// eventsBitEqual compares events field-wise with floats by bit pattern,
// so -0 vs +0 and distinct NaNs are detected.
func eventsBitEqual(a, b Event) bool {
	return a.Seq == b.Seq && a.Kind == b.Kind && a.Sweep == b.Sweep &&
		a.Index == b.Index && a.U == b.U && a.V == b.V && a.Tap == b.Tap &&
		a.Width == b.Width && a.N == b.N && a.Oracle == b.Oracle &&
		a.Reason == b.Reason &&
		math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value) &&
		math.Float64bits(a.Before) == math.Float64bits(b.Before) &&
		math.Float64bits(a.After) == math.Float64bits(b.After) &&
		math.Float64bits(a.Elapsed) == math.Float64bits(b.Elapsed)
}

// FuzzTraceRoundTrip pins the canonical-encoding contract: for any event,
// encode→decode is bit-exact (NaN payloads canonicalized) and
// decode→encode reproduces the bytes; and for any raw line the parser
// accepts, the canonical encoding is a fixpoint.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(int64(1), KindSweepStart, 1, 0, 0, 0, false, 0.0, 0.0, 0, int64(12), 0.0, 0.0, 0.0, "", "", 0.0,
		[]byte(`{"seq":1,"kind":"sweep_start","sweep":1,"n":12}`))
	f.Add(int64(2), KindCandidateScored, 1, 3, 0, 4, false, 0.0, 0.0, 0, int64(0), 1.25e-9, 0.0, 0.0, "", "", 0.001,
		[]byte(`{"seq":2,"kind":"candidate_scored","sweep":1,"index":3,"v":4,"value":"0x1.579c2ed9fcd2dp-30"}`))
	f.Add(int64(3), KindEdgeAccepted, 2, 0, 1, 7, true, 100.5, -250.25, 0, int64(0), 0.0, 2e-9, 1e-9, "", "", 0.0,
		[]byte(`{"seq":3,"kind":"edge_accepted","u":1,"v":7,"tap":true}`))
	f.Add(int64(4), KindEdgeRejected, 9, 0, 2, 3, false, 0.0, 0.0, 0, int64(0), 9e-9, 1e-9, 0.0, "", ReasonNoImprovement, 0.0,
		[]byte(`{"seq":4,"kind":"edge_rejected","reason":"no_improvement"}`))
	f.Add(int64(5), KindOracleEval, 0, 0, 0, 0, false, 0.0, 0.0, 0, int64(30), 0.0, 0.0, 0.0, "spice", "", 0.5,
		[]byte(`not json`))
	f.Add(int64(6), KindWireSizeStep, 0, 0, 0, 2, false, math.Copysign(0, -1), math.Inf(1), 3, int64(0), math.NaN(), 0.0, 0.0, "", "", 0.0,
		[]byte(`{"seq":6,"kind":"wiresize_step","v":2,"width":3,"x":"-0x0p+00","y":"+Inf"}`))

	f.Fuzz(func(t *testing.T, seq int64, kind string, sweep, index, u, v int, tap bool,
		x, y float64, width int, n int64, value, before, after float64,
		oracle, reason string, elapsed float64, raw []byte) {

		e := Event{
			Seq: seq, Kind: kind, Sweep: sweep, Index: index, U: u, V: v,
			Tap: tap, X: x, Y: y, Width: width, N: n, Value: value,
			Before: before, After: after, Oracle: oracle, Reason: reason,
			Elapsed: elapsed,
		}
		line := e.Encode()
		back, err := DecodeEvent(line)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\nline: %s", err, line)
		}
		if !eventsBitEqual(back, e.canon()) {
			t.Fatalf("round trip changed event:\n got  %+v\n want %+v\nline: %s", back, e.canon(), line)
		}
		if again := back.Encode(); !bytes.Equal(line, again) {
			t.Fatalf("re-encoding changed bytes:\n got  %s\n want %s", again, line)
		}

		// Parser fixpoint: anything the decoder accepts must re-encode to
		// a line the decoder maps to the same event, bit for bit.
		if parsed, err := DecodeEvent(raw); err == nil {
			canon := parsed.Encode()
			reparsed, err := DecodeEvent(canon)
			if err != nil {
				t.Fatalf("canonical re-encoding failed to decode: %v\nline: %s", err, canon)
			}
			if !eventsBitEqual(reparsed, parsed.canon()) {
				t.Fatalf("canonicalization not a fixpoint:\n got  %+v\n want %+v", reparsed, parsed.canon())
			}
			if !bytes.Equal(reparsed.Encode(), canon) {
				t.Fatalf("second encoding differs:\n got  %s\n want %s", reparsed.Encode(), canon)
			}
		}
	})
}
