package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Facts is a cross-package store of analyzer-exported facts. An analyzer
// that needs information to flow across package boundaries (unitcheck's
// declared dimensions, say) exports a fact while analyzing the declaring
// package and imports it while analyzing a dependent; the driver loads
// packages in dependency order (see Loader.Load) so a declaration's facts
// always exist before its uses are analyzed.
//
// Keys are analyzer-chosen strings; the convention used in this
// repository is "<import-path>.<Type>.<member>" for fields and methods
// and "<import-path>.<name>" for package-level declarations. Values are
// JSON-encoded, so a store round-trips losslessly through the per-package
// sidecar files written by WriteDir — the on-disk mirror of how the
// loader resolves imports, useful for inspecting what an analyzer knows
// about a package without re-running it.
type Facts struct {
	entries map[string]factEntry
}

type factEntry struct {
	pkg string
	raw json.RawMessage
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{entries: map[string]factEntry{}}
}

// Export records a fact under key, attributed to the package being
// analyzed. Re-exporting a key overwrites the previous value.
func (f *Facts) Export(pkgPath, key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("analysis: encoding fact %q: %w", key, err)
	}
	f.entries[key] = factEntry{pkg: pkgPath, raw: raw}
	return nil
}

// Import decodes the fact stored under key into into, reporting whether
// the key exists. A malformed stored value also reports false.
func (f *Facts) Import(key string, into any) bool {
	e, ok := f.entries[key]
	if !ok {
		return false
	}
	return json.Unmarshal(e.raw, into) == nil
}

// Len returns the number of stored facts.
func (f *Facts) Len() int { return len(f.entries) }

// KeysWithPrefix returns every stored key beginning with prefix, sorted.
// The callgraph package uses it to enumerate method-set facts across all
// packages analyzed so far.
func (f *Facts) KeysWithPrefix(prefix string) []string {
	var out []string
	for k := range f.entries {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Packages returns the sorted package paths that have exported facts.
func (f *Facts) Packages() []string {
	seen := map[string]bool{}
	for _, e := range f.entries {
		seen[e.pkg] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PkgKeys returns the sorted fact keys attributed to one package.
func (f *Facts) PkgKeys(pkgPath string) []string {
	var out []string
	for k, e := range f.entries {
		if e.pkg == pkgPath {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// sidecar is the serialized form of one package's facts.
type sidecar struct {
	Package string                     `json:"package"`
	Facts   map[string]json.RawMessage `json:"facts"`
}

// sidecarName flattens an import path into a filename.
func sidecarName(pkgPath string) string {
	return strings.ReplaceAll(pkgPath, "/", "__") + ".json"
}

// WriteDir writes one JSON sidecar file per package into dir (created if
// missing): nontree__internal__rc.json holds every fact exported while
// analyzing nontree/internal/rc, with keys sorted for stable diffs.
func (f *Facts) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, pkg := range f.Packages() {
		sc := sidecar{Package: pkg, Facts: map[string]json.RawMessage{}}
		for _, k := range f.PkgKeys(pkg) {
			sc.Facts[k] = f.entries[k].raw
		}
		data, err := json.MarshalIndent(sc, "", "\t")
		if err != nil {
			return fmt.Errorf("analysis: encoding facts for %s: %w", pkg, err)
		}
		path := filepath.Join(dir, sidecarName(pkg))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("analysis: writing %s: %w", path, err)
		}
	}
	return nil
}

// ReadDir loads every sidecar file in dir into the store, merging with
// whatever is already present.
func (f *Facts) ReadDir(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("analysis: reading %s: %w", path, err)
		}
		var sc sidecar
		if err := json.Unmarshal(data, &sc); err != nil {
			return fmt.Errorf("analysis: decoding %s: %w", path, err)
		}
		for k, raw := range sc.Facts {
			f.entries[k] = factEntry{pkg: sc.Package, raw: raw}
		}
	}
	return nil
}
