package embed

import (
	"math"
	"testing"

	"nontree/internal/core"
	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/rc"
)

func mustTopo(t *testing.T, pts []geom.Point, edges ...graph.Edge) *graph.Topology {
	t.Helper()
	topo := graph.NewTopology(pts)
	for _, e := range edges {
		if err := topo.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestStraightEdgesNoBends(t *testing.T) {
	topo := mustTopo(t, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}},
		graph.Edge{U: 0, V: 1}, graph.Edge{U: 1, V: 2})
	e := Embed(topo, HorizontalFirst)
	if e.Bends != 0 {
		t.Errorf("axis-aligned edges must have no bends, got %d", e.Bends)
	}
	if e.Crossings() != 0 {
		t.Errorf("L-path cannot cross itself")
	}
	if math.Abs(e.WireLength()-topo.Cost()) > 1e-9 {
		t.Errorf("embedding changed length: %v vs %v", e.WireLength(), topo.Cost())
	}
}

func TestDiagonalEdgeGetsOneBend(t *testing.T) {
	topo := mustTopo(t, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}, graph.Edge{U: 0, V: 1})
	for _, p := range []Policy{HorizontalFirst, VerticalFirst, Greedy} {
		e := Embed(topo, p)
		if e.Bends != 1 {
			t.Errorf("%v: bends = %d", p, e.Bends)
		}
		if len(e.Segments[graph.Edge{U: 0, V: 1}]) != 2 {
			t.Errorf("%v: segment count wrong", p)
		}
		if math.Abs(e.WireLength()-20) > 1e-9 {
			t.Errorf("%v: length %v", p, e.WireLength())
		}
	}
}

func TestPlusCrossing(t *testing.T) {
	// A '+': horizontal edge 0-1 crosses vertical edge 2-3 at the center.
	topo := mustTopo(t, []geom.Point{
		{X: -10, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: -10}, {X: 0, Y: 10},
	}, graph.Edge{U: 0, V: 1}, graph.Edge{U: 2, V: 3})
	e := Embed(topo, HorizontalFirst)
	if got := e.Crossings(); got != 1 {
		t.Errorf("plus must have exactly 1 crossing, got %d", got)
	}
}

func TestTouchingAtEndpointNotCounted(t *testing.T) {
	// A 'T': vertical edge ends exactly on the horizontal edge's interior.
	topo := mustTopo(t, []geom.Point{
		{X: -10, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 0, Y: 0.0001},
	}, graph.Edge{U: 0, V: 1}, graph.Edge{U: 2, V: 3})
	// Edge 2-3 stops just above the horizontal line: no crossing.
	if got := Embed(topo, HorizontalFirst).Crossings(); got != 0 {
		t.Errorf("non-intersecting T: %d crossings", got)
	}
}

func TestAdjacentEdgesNeverConflict(t *testing.T) {
	// A star: all edges share the center node; overlaps at the shared node
	// must not count.
	topo := mustTopo(t, []geom.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: -10, Y: 0}, {X: 0, Y: 10}, {X: 0, Y: -10},
	}, graph.Edge{U: 0, V: 1}, graph.Edge{U: 0, V: 2}, graph.Edge{U: 0, V: 3}, graph.Edge{U: 0, V: 4})
	if got := Embed(topo, HorizontalFirst).Crossings(); got != 0 {
		t.Errorf("star: %d crossings", got)
	}
}

func TestCollinearOverlapCounted(t *testing.T) {
	// Two disjoint horizontal edges sharing y with overlapping x ranges.
	topo := mustTopo(t, []geom.Point{
		{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 10, Y: 0.0}, {X: 30, Y: 0},
	})
	if err := topo.AddEdge(graph.Edge{U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddEdge(graph.Edge{U: 2, V: 3}); err != nil {
		t.Fatal(err)
	}
	if got := Embed(topo, HorizontalFirst).Crossings(); got != 1 {
		t.Errorf("overlapping collinear wires: %d conflicts, want 1", got)
	}
}

func TestGreedyNeverWorseThanFixedPolicies(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(12)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}
		// Add two shortcut edges to force crossings.
		added := 0
		for _, e := range topo.AbsentEdges() {
			if err := topo.AddEdge(e); err == nil {
				added++
				if added == 2 {
					break
				}
			}
		}
		counts := Compare(topo)
		minFixed := counts[HorizontalFirst]
		if counts[VerticalFirst] < minFixed {
			minFixed = counts[VerticalFirst]
		}
		if counts[Greedy] > minFixed {
			t.Errorf("seed %d: greedy %d worse than best fixed %d", seed, counts[Greedy], minFixed)
		}
	}
}

func TestEmbeddingLengthEqualsTopologyCost(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(10)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Policy{HorizontalFirst, VerticalFirst, Greedy} {
			e := Embed(topo, p)
			if math.Abs(e.WireLength()-topo.Cost()) > 1e-6 {
				t.Fatalf("seed %d %v: length %v vs cost %v", seed, p, e.WireLength(), topo.Cost())
			}
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{HorizontalFirst, VerticalFirst, Greedy} {
		if p.String() == "unknown" || p.String() == "" {
			t.Errorf("policy %d unnamed", int(p))
		}
	}
	if Policy(42).String() != "unknown" {
		t.Error("unknown policy must say so")
	}
}

func TestCrossingsDeterministic(t *testing.T) {
	gen := netlist.NewGenerator(3)
	net, err := gen.Generate(15)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mst.Prim(net.Pins)
	if err != nil {
		t.Fatal(err)
	}
	first := Embed(topo, Greedy).Crossings()
	for i := 0; i < 5; i++ {
		if got := Embed(topo, Greedy).Crossings(); got != first {
			t.Fatalf("crossings not deterministic: %d vs %d", got, first)
		}
	}
}

func TestPlanarFilterBasics(t *testing.T) {
	// A '+': the crossing edge must be vetoed, a harmless edge accepted.
	topo := mustTopo(t, []geom.Point{
		{X: -10, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: -10}, {X: 0, Y: 10},
	}, graph.Edge{U: 0, V: 1})
	if !PlanarFilter(topo, graph.Edge{U: 0, V: 2}) {
		t.Error("corner edge 0-2 can route as an L avoiding 0-1; must be accepted")
	}
	if PlanarFilter(topo, graph.Edge{U: 2, V: 3}) {
		t.Error("edge 2-3 must cross 0-1 in either orientation; must be vetoed")
	}
}

func TestPlanarFilterKeepsLDRGResultsNearPlanar(t *testing.T) {
	// Constrained LDRG should end with far fewer crossings than the
	// unconstrained runs on the same nets (usually zero; the filter is a
	// heuristic, so tiny counts can slip through via embedding shifts).
	free, constrained := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(12)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}
		oracle := &core.ElmoreOracle{Params: rc.Default()}
		resFree, err := core.LDRG(topo, core.Options{Oracle: oracle})
		if err != nil {
			t.Fatal(err)
		}
		resPlanar, err := core.LDRG(topo, core.Options{Oracle: oracle, CandidateFilter: PlanarFilter})
		if err != nil {
			t.Fatal(err)
		}
		free += Embed(resFree.Topology, Greedy).Crossings()
		constrained += Embed(resPlanar.Topology, Greedy).Crossings()
		if resPlanar.FinalObjective > resPlanar.InitialObjective {
			t.Errorf("seed %d: constrained LDRG worsened delay", seed)
		}
	}
	if constrained > free {
		t.Errorf("planar filter produced MORE crossings: %d vs %d", constrained, free)
	}
	t.Logf("crossings across 6 nets: unconstrained %d, planar-filtered %d", free, constrained)
}

func TestInterNetCrossingsDisjointRegions(t *testing.T) {
	// Two nets in disjoint quadrants never conflict.
	t1 := mustTopo(t, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}, graph.Edge{U: 0, V: 1})
	t2 := mustTopo(t, []geom.Point{{X: 1000, Y: 1000}, {X: 1100, Y: 1100}}, graph.Edge{U: 0, V: 1})
	if got := InterNetCrossings([]*graph.Topology{t1, t2}); got != 0 {
		t.Errorf("disjoint nets: %d crossings", got)
	}
}

func TestInterNetCrossingsOverlappingNets(t *testing.T) {
	// A horizontal wire of net A crossed by a vertical wire of net B.
	a := mustTopo(t, []geom.Point{{X: -10, Y: 0}, {X: 10, Y: 0}}, graph.Edge{U: 0, V: 1})
	b := mustTopo(t, []geom.Point{{X: 0, Y: -10}, {X: 0, Y: 10}}, graph.Edge{U: 0, V: 1})
	if got := InterNetCrossings([]*graph.Topology{a, b}); got != 1 {
		t.Errorf("crossing nets: %d, want 1", got)
	}
	// A single net alone has no inter-net conflicts.
	if got := InterNetCrossings([]*graph.Topology{a}); got != 0 {
		t.Errorf("single net: %d", got)
	}
}

func TestInterNetCrossingsGrowWithNonTreeWires(t *testing.T) {
	// LDRG-routed nets in a shared region should produce at least as many
	// inter-net conflicts as MST-routed nets (more wire in the same area).
	var msts, ldrgs []*graph.Topology
	for seed := int64(0); seed < 3; seed++ {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(10)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mst.Prim(net.Pins)
		if err != nil {
			t.Fatal(err)
		}
		msts = append(msts, m)
		res, err := core.LDRG(m, core.Options{Oracle: &core.ElmoreOracle{Params: rc.Default()}})
		if err != nil {
			t.Fatal(err)
		}
		ldrgs = append(ldrgs, res.Topology)
	}
	cm, cl := InterNetCrossings(msts), InterNetCrossings(ldrgs)
	if cl < cm {
		t.Errorf("non-tree wires reduced inter-net conflicts (%d < %d)?", cl, cm)
	}
	t.Logf("inter-net conflicts: MST %d, LDRG %d", cm, cl)
}
