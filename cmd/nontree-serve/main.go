// Command nontree-serve runs the routing daemon: POST /route routes a net
// and returns the topology plus a trace id; GET /metrics exposes live
// Prometheus metrics; GET /healthz reports liveness (503 while draining);
// GET /traces/<id> exports a retained execution trace as canonical JSONL
// (append ?request=1 for the originating request, ready for tracereplay);
// GET /logs streams the retained per-request wide events as canonical
// JSONL (append ?request=<id> to resolve one request by the id every
// /route reply carries); /debug/pprof/* serves the standard profiling
// endpoints.
//
// Usage:
//
//	nontree-serve                              # listen on :8080
//	nontree-serve -addr 127.0.0.1:0 -ready-file port.txt   # ephemeral port for CI
//
// On SIGINT/SIGTERM the server drains: /healthz flips to 503 so load
// balancers stop sending traffic, new /route requests are refused,
// in-flight requests finish (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nontree/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nontree-serve: ")
	if err := realMain(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// realMain is main minus the exit: it owns its flag set and returns errors,
// so tests can run the full daemon lifecycle in-process.
func realMain(args []string) error {
	fs := flag.NewFlagSet("nontree-serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		readyFile     = fs.String("ready-file", "", "after listening, write the actual address to this file (CI port discovery)")
		maxConcurrent = fs.Int("max-concurrent", 0, "simultaneous /route requests before shedding with 429 (0 = 2×GOMAXPROCS)")
		traceCap      = fs.Int("trace-capacity", 1<<16, "per-request trace ring capacity (events)")
		maxTraces     = fs.Int("max-traces", 64, "retained traces before evicting the oldest")
		maxLogs       = fs.Int("max-logs", 0, "retained /logs wide events before evicting the oldest (0 = default ring, negative disables request logging)")
		reqTimeout    = fs.Duration("request-timeout", 60*time.Second, "per-request /route wall-clock bound")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	s := serve.New(serve.Options{
		MaxConcurrent:  *maxConcurrent,
		TraceCapacity:  *traceCap,
		MaxTraces:      *maxTraces,
		MaxLogEvents:   *maxLogs,
		RequestTimeout: *reqTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing ready file: %w", err)
		}
	}

	srv := &http.Server{
		Handler: s.Handler(),
		// ReadHeaderTimeout guards against slowloris; the /route body read
		// is already bounded by the handler's size limit and timeout.
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (%d in flight)", sig, s.Inflight())
	}

	// Flip unhealthy first so load balancers drop the instance, then let
	// in-flight requests finish.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Print("drained")
	return nil
}
