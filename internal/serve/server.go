// Package serve implements the nontree-serve daemon: a small HTTP server
// exposing the routing algorithms (POST /route), live Prometheus metrics
// (GET /metrics), health (GET /healthz), retained execution traces
// (GET /traces/<id>), and the standard pprof profiling endpoints.
//
// The daemon is an introspection surface over the deterministic library:
// every /route reply carries a trace id whose JSONL export replays to the
// exact decision sequence of the run (DESIGN.md §11), so a production
// routing can be re-derived and diffed offline with cmd/tracereplay.
package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/trace"
)

// Server-side observability names, exposed through /metrics alongside the
// algorithm catalog. The values live in the internal/obs names catalog
// (ServeCounterNames / TimingNames); these aliases keep call sites short
// and are interchangeable with the obs spellings under the obsnames lint.
const (
	// CtrRouteRequests counts /route requests accepted for routing.
	CtrRouteRequests = obs.CtrRouteRequests
	// CtrRouteErrors counts /route requests that failed (bad input or
	// routing error).
	CtrRouteErrors = obs.CtrRouteErrors
	// CtrRouteRejected counts /route requests shed by the concurrency
	// limiter or refused while draining.
	CtrRouteRejected = obs.CtrRouteRejected
	// CtrTraceEvictions counts traces evicted from the retention window.
	CtrTraceEvictions = obs.CtrTraceEvictions
	// TimeRouteSeconds is the wall-clock /route handling distribution.
	TimeRouteSeconds = obs.TimeRouteSeconds
)

// Options tunes a Server. The zero value is fully usable.
type Options struct {
	// MaxConcurrent bounds simultaneously executing /route requests;
	// excess requests are shed with 429 (0 = 2×GOMAXPROCS).
	MaxConcurrent int
	// TraceCapacity is the per-request trace ring size (0 = 1<<16).
	TraceCapacity int
	// MaxTraces bounds retained traces; the oldest is evicted first
	// (0 = 64).
	MaxTraces int
	// MaxBodyBytes bounds the /route request body (0 = 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds /route handling wall-clock time (0 = 60s).
	RequestTimeout time.Duration
	// Metrics receives server and algorithm metrics (nil = a fresh
	// preregistered registry).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = 1 << 16
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
		obs.Preregister(o.Metrics)
	}
	return o
}

// Server is the nontree-serve HTTP application state. Create with New,
// mount Handler on an http.Server, and call BeginDrain before shutdown so
// load balancers see /healthz flip unhealthy while in-flight requests
// finish.
type Server struct {
	opts     Options
	metrics  *obs.Registry
	slots    chan struct{} // concurrency limiter for /route
	draining atomic.Bool
	inflight atomic.Int64
	traceSeq atomic.Uint64

	// mu is the outermost lock of the daemon: it may be held while calling
	// into trace.Ring and obs.Registry (both leaf locks), never the
	// reverse. The lockorder analyzer verifies the Server → Ring/Registry
	// nesting stays acyclic (DESIGN.md §14).
	mu sync.Mutex
	// traces maps trace id → element in order.
	//nontree:guardedby mu
	traces map[string]*list.Element
	// order keeps retention order: front = oldest, back = newest.
	//nontree:guardedby mu
	order *list.List

	// routeStall, when non-nil, is called inside handleRoute right after
	// the concurrency slot is acquired and the request is counted in
	// flight — a test hook that lets the shed/timeout/drain tests hold a
	// request in flight deterministically. Never set outside tests.
	routeStall func()
}

// storedTrace is one retained trace with its provenance: the exact request
// that produced it, so tracereplay can re-run the identical workload.
type storedTrace struct {
	id      string
	events  []trace.Event
	dropped int64
	req     RouteRequest
}

// New returns a Server ready to mount. Whatever registry the options
// carry (supplied or defaulted) gets the serve catalog preregistered, so
// /metrics exposes the daemon surface from the first scrape.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	obs.PreregisterServe(opts.Metrics)
	return &Server{
		opts:    opts,
		metrics: opts.Metrics,
		slots:   make(chan struct{}, opts.MaxConcurrent),
		traces:  make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Metrics exposes the server's registry (for embedding tests and the CLI).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// BeginDrain flips the server unhealthy: /healthz answers 503 and new
// /route requests are refused, while already-running requests and trace or
// metrics reads keep working. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports currently executing /route requests.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Handler returns the full route table. The /route endpoint is wrapped in
// http.TimeoutHandler; reads (/metrics, /healthz, /traces) stay un-timed
// so they remain responsive under load.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/route", http.TimeoutHandler(
		http.HandlerFunc(s.handleRoute), s.opts.RequestTimeout,
		`{"error":"request timed out"}`))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/traces/", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RouteRequest is the /route request body: a net plus routing options.
type RouteRequest struct {
	// Net is the signal net to route (pins[0] is the source).
	Net *netlist.Net `json:"net"`
	RouteOptions
}

// RouteResponse is the /route reply.
type RouteResponse struct {
	*RouteResult
	// TraceID retrieves the run's execution trace from /traces/<id> while
	// it stays within the server's retention window.
	TraceID string `json:"trace_id"`
	// TraceEvents and TraceDropped report the ring occupancy: Dropped > 0
	// means the ring overflowed and the retained trace is a suffix.
	TraceEvents  int   `json:"trace_events"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.metrics.Add(CtrRouteRejected, 1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	default:
		s.metrics.Add(CtrRouteRejected, 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "concurrency limit reached")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.routeStall != nil {
		s.routeStall()
	}

	var req RouteRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.Add(CtrRouteErrors, 1)
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Net == nil {
		s.metrics.Add(CtrRouteErrors, 1)
		writeError(w, http.StatusBadRequest, "missing net")
		return
	}

	s.metrics.Add(CtrRouteRequests, 1)
	span := obs.StartSpan(s.metrics, TimeRouteSeconds)
	ring := trace.NewRing(s.opts.TraceCapacity)
	res, err := Run(req.Net, req.RouteOptions, s.metrics, ring)
	span.End()
	if err != nil {
		s.metrics.Add(CtrRouteErrors, 1)
		writeError(w, http.StatusUnprocessableEntity, "routing failed: %v", err)
		return
	}

	st := &storedTrace{
		id:      fmt.Sprintf("t%06d", s.traceSeq.Add(1)),
		events:  ring.Events(),
		dropped: ring.Dropped(),
		req:     req,
	}
	s.storeTrace(st)

	writeJSON(w, http.StatusOK, RouteResponse{
		RouteResult:  res,
		TraceID:      st.id,
		TraceEvents:  len(st.events),
		TraceDropped: st.dropped,
	})
}

func (s *Server) storeTrace(st *storedTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces[st.id] = s.order.PushBack(st)
	for s.order.Len() > s.opts.MaxTraces {
		oldest := s.order.Remove(s.order.Front()).(*storedTrace)
		delete(s.traces, oldest.id)
		s.metrics.Add(CtrTraceEvictions, 1)
	}
}

func (s *Server) lookupTrace(id string) *storedTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.traces[id]
	if !ok {
		return nil
	}
	// A fetch refreshes retention: the traces being inspected stay around.
	s.order.MoveToBack(el)
	return el.Value.(*storedTrace)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeError(w, http.StatusNotFound, "no such trace")
		return
	}
	st := s.lookupTrace(id)
	if st == nil {
		writeError(w, http.StatusNotFound, "trace %q not retained", id)
		return
	}
	if r.URL.Query().Get("request") == "1" {
		// The provenance view: the exact request that produced the trace,
		// ready to feed back into tracereplay -request.
		writeJSON(w, http.StatusOK, st.req)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Trace-Dropped", fmt.Sprintf("%d", st.dropped))
	if err := trace.WriteJSONL(w, st.events); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, s.metrics.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
	}{state, s.inflight.Load()})
}
