package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nontree/internal/sim"
)

// simArgs are the shared fast-workload flags: tiny 3-pin nets through the
// cheap h1 heuristic.
func simArgs(extra ...string) []string {
	return append([]string{
		"-seed", "42", "-requests", "16", "-keys", "4", "-pins", "3:1", "-algo", "h1",
	}, extra...)
}

// TestStreamByteIdentical is the PR's acceptance criterion: two runs with
// the same seed must produce byte-identical workload streams and equal
// fingerprints.
func TestStreamByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var streams [2][]byte
	var prints [2]string
	for i := range streams {
		path := filepath.Join(dir, fmt.Sprintf("stream%d.json", i))
		var stdout bytes.Buffer
		if err := realMain(simArgs("-dry", "-fingerprint", "-stream", path), &stdout); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = raw
		prints[i] = stdout.String()
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Fatal("two -seed 42 runs wrote different workload streams")
	}
	if prints[0] != prints[1] || len(strings.TrimSpace(prints[0])) != 64 {
		t.Fatalf("fingerprints disagree or are malformed: %q vs %q", prints[0], prints[1])
	}
}

// TestInProcessSoak drives a full hermetic soak and checks the report.
func TestInProcessSoak(t *testing.T) {
	out := filepath.Join(t.TempDir(), "SIM_test.json")
	err := realMain(simArgs(
		"-inprocess", "-concurrency", "2", "-out", out,
		"-slo-error-rate", "0", "-slo-p99", "30", "-slo-drain",
	), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.LoadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if report.Totals.OK != 16 || report.Totals.Errors != 0 {
		t.Fatalf("totals = %+v, want 16 clean successes", report.Totals)
	}
	if len(report.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", report.Violations)
	}
	if report.Drain == nil || !report.Drain.Clean() {
		t.Fatalf("drain probe missing or dirty: %+v", report.Drain)
	}
	if report.Server == nil || report.Server.Delta["nontree_serve_route_requests_total"] != 16 {
		t.Fatalf("scrape missing or wrong: %+v", report.Server)
	}
	if report.Environment["go_version"] == "" {
		t.Fatal("environment not stamped")
	}
}

// TestSLOViolationFailsAndStillWritesReport forces an impossible throughput
// bound: the run must fail, and the report must still land on disk with the
// violation recorded.
func TestSLOViolationFailsAndStillWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "SIM_fail.json")
	err := realMain(simArgs("-inprocess", "-out", out, "-slo-min-qps", "1e12"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "SLO violated") {
		t.Fatalf("err = %v, want SLO violation", err)
	}
	report, err := sim.LoadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) != 1 || !strings.Contains(report.Violations[0], "throughput") {
		t.Fatalf("violations = %v, want the throughput breach", report.Violations)
	}
}

// TestSpecFileWithFlagOverrides checks -spec + flag precedence.
func TestSpecFileWithFlagOverrides(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"requests":8,"keys":2,"arrival":"burst","burst_size":4,"pin_mix":[{"pins":3,"weight":1}],"algo":"h1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	streamPath := filepath.Join(dir, "stream.json")
	if err := realMain([]string{"-spec", specPath, "-seed", "7", "-requests", "12", "-dry", "-stream", streamPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	var w sim.Workload
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	if w.Spec.Requests != 12 || w.Spec.Seed != 7 {
		t.Fatalf("flag overrides not applied: %+v", w.Spec)
	}
	if w.Spec.Arrival != sim.ArrivalBurst || w.Spec.BurstSize != 4 {
		t.Fatalf("spec-file fields lost: %+v", w.Spec)
	}
}

// TestFlagErrors covers the rejection paths.
func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional", []string{"extra"}, "unexpected arguments"},
		{"no-targets", simArgs(), "need -targets"},
		{"targets-and-inprocess", simArgs("-inprocess", "-targets", "http://x"), "mutually exclusive"},
		{"bad-target", simArgs("-targets", "localhost:8080"), "not an http(s) base URL"},
		{"bad-pins", simArgs("-pins", "five:1"), "bad -pins"},
		{"bad-ramp", simArgs("-inprocess", "-ramp", "100"), "bad -ramp"},
		{"bad-arrival", simArgs("-arrival", "fractal", "-dry"), "unknown arrival"},
		{"bad-algo", simArgs("-algo", "dijkstra", "-dry"), "unknown algorithm"},
		{"drain-needs-inprocess", simArgs("-targets", "http://x", "-slo-drain"), "-slo-drain needs -inprocess"},
		{"missing-spec-file", []string{"-spec", "/nonexistent/spec.json", "-dry"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := realMain(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestParsePinMix pins the mix grammar, including weightless entries.
func TestParsePinMix(t *testing.T) {
	mix, err := parsePinMix("5:3, 10:2,20")
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.PinMix{{Pins: 5, Weight: 3}, {Pins: 10, Weight: 2}, {Pins: 20, Weight: 1}}
	if len(mix) != len(want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	for i := range mix {
		if mix[i] != want[i] {
			t.Fatalf("mix = %v, want %v", mix, want)
		}
	}
}

// TestParseRamp pins the ramp grammar.
func TestParseRamp(t *testing.T) {
	stages, err := parseRamp("100x2, 200x8")
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.RampStage{{Requests: 100, Concurrency: 2}, {Requests: 200, Concurrency: 8}}
	if len(stages) != len(want) || stages[0] != want[0] || stages[1] != want[1] {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
}
