// Package linalg provides the dense linear algebra needed by the circuit
// simulator and the general-graph Elmore analysis: a row-major matrix type
// and LU factorization with partial pivoting.
//
// Circuit matrices for the nets in this repository are small (tens to a few
// hundred unknowns), so a cache-friendly dense solver beats sparse machinery
// and keeps the code dependency-free.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols; element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zeroed rows × cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j) — the natural operation for MNA
// stamping.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to 0, reusing storage.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m · x. It panics on dimension mismatch (programmer
// error, not input error).
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// AddScaled accumulates s·other into m (m += s·other).
func (m *Matrix) AddScaled(other *Matrix, s float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: AddScaled dimension mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// ErrSingular is returned when factorization encounters a pivot too small
// to be numerically meaningful — e.g. a floating circuit node with no DC
// path to ground.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU is an LU factorization with partial pivoting: P·A = L·U, stored packed
// in a single matrix (unit lower-triangular L below the diagonal, U on and
// above it).
type LU struct {
	lu    *Matrix
	pivot []int
	sign  int
}

// pivotTolerance scales the singularity test relative to the largest
// element magnitude seen in the factorization.
const pivotTolerance = 1e-14

// Factor computes the LU factorization of a (a is not modified).
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cannot factor %dx%d non-square matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1

	var maxAbs float64
	for _, v := range lu.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		if n == 0 {
			return &LU{lu: lu, pivot: pivot, sign: sign}, nil
		}
		return nil, ErrSingular
	}
	threshold := maxAbs * pivotTolerance

	for col := 0; col < n; col++ {
		// Partial pivoting: pick the largest magnitude in this column.
		p := col
		largest := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > largest {
				largest = v
				p = r
			}
		}
		if largest <= threshold {
			return nil, fmt.Errorf("%w (pivot column %d)", ErrSingular, col)
		}
		if p != col {
			swapRows(lu, p, col)
			sign = -sign
		}
		pivot[col] = p

		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.Data[r*n : (r+1)*n]
			rowC := lu.Data[col*n : (col+1)*n]
			for j := col + 1; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve returns x with A·x = b. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// SolveInPlace overwrites b with the solution of A·x = b. This is the hot
// path of transient simulation (one call per timestep), so it allocates
// nothing.
func (f *LU) SolveInPlace(b []float64) {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: Solve dimension mismatch: %d vs %d", len(b), n))
	}
	// Apply the row permutation.
	for i := 0; i < n; i++ {
		if p := f.pivot[i]; p != i {
			b[i], b[p] = b[p], b[i]
		}
	}
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : i*n+i]
		var sum float64
		for j, v := range row {
			sum += v * b[j]
		}
		b[i] -= sum
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n+i : (i+1)*n]
		sum := b[i]
		for j := 1; j < len(row); j++ {
			sum -= row[j] * b[i+j]
		}
		b[i] = sum / row[0]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	det := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// SolveDense solves A·X = B column by column, where B's columns are the
// right-hand sides; it returns X with the same shape as B.
func (f *LU) SolveDense(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic("linalg: SolveDense dimension mismatch")
	}
	x := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		f.SolveInPlace(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, col[i])
		}
	}
	return x
}

// Residual returns max_i |(A·x - b)_i|, a cheap verification of a solve.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	var worst float64
	for i := range ax {
		if r := math.Abs(ax[i] - b[i]); r > worst {
			worst = r
		}
	}
	return worst
}
