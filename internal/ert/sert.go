package ert

import (
	"errors"
	"math"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/rc"
)

// BuildSteiner constructs a Steiner Elmore Routing Tree (SERT): like Build,
// but each attachment may instead create a Steiner junction on an existing
// tree edge, splitting it. The junction considered for pin p on edge (a,b)
// is the closest point of the edge's bounding box to p — the point that
// minimizes the new wire's length while keeping the split cost-neutral
// (d(a,s) + d(s,b) = d(a,b) for any s in the bounding box).
func BuildSteiner(pins []geom.Point, p rc.Params) (*graph.Topology, error) {
	if len(pins) < 2 {
		return nil, ErrTooFewPins
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	numPins := len(pins)

	st := newDynState(pins, p)

	inTree := make([]bool, numPins)
	inTree[0] = true

	for added := 1; added < numPins; added++ {
		bestDelay := math.Inf(1)
		bestPin := -1
		var bestPlan attachPlan
		for pin := 0; pin < numPins; pin++ {
			if inTree[pin] {
				continue
			}
			plan, d := st.bestAttachment(pin)
			if d < bestDelay {
				bestDelay = d
				bestPin = pin
				bestPlan = plan
			}
		}
		if bestPin < 0 {
			return nil, errors.New("ert: internal error: SERT found no attachment")
		}
		st.apply(bestPin, bestPlan)
		inTree[bestPin] = true
	}

	return st.topology(numPins)
}

// attachPlan describes how a pin joins the tree: either directly under an
// existing node (splitEdge == false) or via a new Steiner point splitting
// the edge from splitChild to its parent at location junction.
type attachPlan struct {
	splitEdge  bool
	via        int        // direct attachment target (when !splitEdge)
	splitChild int        // child endpoint of the split edge
	junction   geom.Point // Steiner point location
}

// dynState is treeState generalized to a growing point set (Steiner points
// appended on demand).
type dynState struct {
	pts      []geom.Point
	p        rc.Params
	numPins  int
	parent   []int
	children [][]int
	attached []bool
}

func newDynState(pins []geom.Point, p rc.Params) *dynState {
	n := len(pins)
	st := &dynState{
		pts:      append([]geom.Point(nil), pins...),
		p:        p,
		numPins:  n,
		parent:   make([]int, n),
		children: make([][]int, n),
		attached: make([]bool, n),
	}
	for i := range st.parent {
		st.parent[i] = -2
	}
	st.parent[0] = -1
	st.attached[0] = true
	return st
}

// bestAttachment scans direct and edge-splitting attachments for pin,
// returning the best plan and its max-Elmore delay.
func (st *dynState) bestAttachment(pin int) (attachPlan, float64) {
	best := math.Inf(1)
	var plan attachPlan

	// Direct attachments to every attached node.
	for v := range st.pts {
		if !st.attached[v] {
			continue
		}
		d := st.evalDirect(pin, v)
		if d < best {
			best = d
			plan = attachPlan{via: v}
		}
	}
	// Splitting attachments on every tree edge (child → parent).
	for child := range st.pts {
		if !st.attached[child] || st.parent[child] < 0 {
			continue
		}
		a, b := st.pts[child], st.pts[st.parent[child]]
		s := closestInBBox(st.pts[pin], a, b)
		if s.Eq(a) || s.Eq(b) || s.Eq(st.pts[pin]) {
			continue // degenerates to a direct attachment
		}
		d := st.evalSplit(pin, child, s)
		if d < best {
			best = d
			plan = attachPlan{splitEdge: true, splitChild: child, junction: s}
		}
	}
	return plan, best
}

// closestInBBox returns the point of the bounding box of a and b closest
// (in Manhattan distance) to p — clamping each coordinate independently.
func closestInBBox(p, a, b geom.Point) geom.Point {
	return geom.Point{
		X: clamp(p.X, math.Min(a.X, b.X), math.Max(a.X, b.X)),
		Y: clamp(p.Y, math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (st *dynState) evalDirect(pin, via int) float64 {
	st.link(pin, via)
	d := st.maxSinkDelay()
	st.unlink(pin, via)
	return d
}

func (st *dynState) evalSplit(pin, child int, junction geom.Point) float64 {
	s := st.addNode(junction)
	par := st.parent[child]
	st.unlink(child, par)
	st.link(s, par)
	st.link(child, s)
	st.link(pin, s)

	d := st.maxSinkDelay()

	st.unlink(pin, s)
	st.unlink(child, s)
	st.unlink(s, par)
	st.link(child, par)
	st.dropLastNode()
	return d
}

func (st *dynState) apply(pin int, plan attachPlan) {
	if !plan.splitEdge {
		st.link(pin, plan.via)
		st.attached[pin] = true
		return
	}
	s := st.addNode(plan.junction)
	par := st.parent[plan.splitChild]
	st.unlink(plan.splitChild, par)
	st.link(s, par)
	st.link(plan.splitChild, s)
	st.link(pin, s)
	st.attached[s] = true
	st.attached[pin] = true
}

func (st *dynState) addNode(p geom.Point) int {
	st.pts = append(st.pts, p)
	st.parent = append(st.parent, -2)
	st.children = append(st.children, nil)
	st.attached = append(st.attached, true)
	return len(st.pts) - 1
}

func (st *dynState) dropLastNode() {
	last := len(st.pts) - 1
	st.pts = st.pts[:last]
	st.parent = st.parent[:last]
	st.children = st.children[:last]
	st.attached = st.attached[:last]
}

func (st *dynState) link(child, parent int) {
	st.parent[child] = parent
	st.children[parent] = append(st.children[parent], child)
}

func (st *dynState) unlink(child, parent int) {
	st.parent[child] = -2
	cs := st.children[parent]
	for i, c := range cs {
		if c == child {
			st.children[parent] = append(cs[:i], cs[i+1:]...)
			return
		}
	}
}

// maxSinkDelay evaluates Elmore delay over the currently linked tree and
// returns the worst delay among *pins* reachable from the source (Steiner
// junctions are not sinks). Unlike treeState, node counts change, so the
// scratch arrays are sized per call.
func (st *dynState) maxSinkDelay() float64 {
	n := len(st.pts)
	order := make([]int, 0, n)
	order = append(order, 0)
	for i := 0; i < len(order); i++ {
		order = append(order, st.children[order[i]]...)
	}

	subCap := make([]float64, n)
	for _, nd := range order {
		if st.isPin(nd) {
			subCap[nd] += st.p.SinkCapacitance
		}
		if par := st.parent[nd]; par >= 0 {
			halfC := st.p.WireCapacitance * geom.Dist(st.pts[nd], st.pts[par]) / 2
			subCap[nd] += halfC
			subCap[par] += halfC
		}
	}
	for i := len(order) - 1; i > 0; i-- {
		nd := order[i]
		subCap[st.parent[nd]] += subCap[nd]
	}

	delay := make([]float64, n)
	delay[0] = st.p.DriverResistance * subCap[0]
	worst := 0.0
	for _, nd := range order[1:] {
		par := st.parent[nd]
		r := st.p.WireResistance * geom.Dist(st.pts[nd], st.pts[par])
		delay[nd] = delay[par] + r*subCap[nd]
		if st.isPin(nd) && delay[nd] > worst {
			worst = delay[nd]
		}
	}
	return worst
}

// isPin reports whether node nd is an original pin. Pins occupy the first
// numPins positions of the point list; Steiner nodes are appended after.
func (st *dynState) isPin(nd int) bool { return nd < st.numPins }

// topology converts the final tree into a graph.Topology with the given
// pin count, pruning pass-through Steiner points.
func (st *dynState) topology(numPins int) (*graph.Topology, error) {
	t := graph.NewTopologyWithSteiner(st.pts[:numPins], st.pts[numPins:])
	for nd := range st.pts {
		if par := st.parent[nd]; par >= 0 {
			if err := t.AddEdge(graph.Edge{U: par, V: nd}); err != nil {
				return nil, err
			}
		}
	}
	compacted, _ := t.Compact()
	return compacted, nil
}
