// Command netgen generates random signal nets — the experiment workloads —
// as JSON or text files.
//
// Usage:
//
//	netgen -pins 10 -seed 3               # one net as JSON to stdout
//	netgen -pins 20 -count 50 -dir nets/  # a batch of files
//	netgen -pins 10 -format text
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nontree/internal/netlist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netgen: ")

	var (
		pins   = flag.Int("pins", 10, "pins per net (source + sinks)")
		count  = flag.Int("count", 1, "number of nets")
		seed   = flag.Int64("seed", 1, "generator seed")
		side   = flag.Float64("side", netlist.DefaultSide, "layout square side (µm)")
		dir    = flag.String("dir", "", "output directory (default stdout; required for count > 1)")
		format = flag.String("format", "json", "output format: json or text")
	)
	flag.Parse()

	if err := run(*pins, *count, *seed, *side, *dir, *format); err != nil {
		log.Fatal(err)
	}
}

func run(pins, count int, seed int64, side float64, dir, format string) error {
	if format != "json" && format != "text" {
		return fmt.Errorf("unknown format %q", format)
	}
	if count > 1 && dir == "" {
		return fmt.Errorf("-dir is required when generating multiple nets")
	}
	gen := netlist.NewGenerator(seed)
	gen.Side = side

	nets, err := gen.GenerateBatch(count, pins)
	if err != nil {
		return err
	}
	if dir == "" {
		return write(os.Stdout, nets[0], format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, n := range nets {
		ext := ".json"
		if format == "text" {
			ext = ".net"
		}
		path := filepath.Join(dir, n.Name+ext)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f, n, format); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

func write(f *os.File, n *netlist.Net, format string) error {
	if format == "text" {
		return n.WriteText(f)
	}
	return n.WriteJSON(f)
}
