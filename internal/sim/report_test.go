package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// gateReport builds a healthy synthetic report the SLO cases perturb.
func gateReport() *Report {
	r := &Report{
		SchemaVersion: SimSchemaVersion,
		Mode:          ModeClosed,
	}
	r.Totals = Totals{
		Requests:      1000,
		OK:            990,
		Shed:          10,
		ShedRate:      0.01,
		ThroughputQPS: 120,
		Latency:       LatencySummary{Count: 1000, P50: 0.01, P95: 0.05, P99: 0.09},
	}
	r.Drain = &DrainCheck{Checked: true, Healthz503: true, InflightZero: true}
	return r
}

// TestSLOGate is the table-driven gate contract: each bound trips exactly
// on its own violation, ungated bounds never trip, and messages are sorted.
func TestSLOGate(t *testing.T) {
	cases := []struct {
		name   string
		slo    SLO
		mutate func(*Report)
		want   []string // substrings, one per expected violation, in order
	}{
		{"ungated-passes", Ungated(), nil, nil},
		{"healthy-passes", SLO{MaxP50Seconds: 1, MaxP99Seconds: 1, MaxErrorRate: 0, MaxShedRate: 0.5, MinThroughputQPS: 1, RequireDrain: true}, nil, nil},
		{"p50-breach", SLO{MaxP50Seconds: 0.005, MaxErrorRate: -1, MaxShedRate: -1}, nil, []string{"p50 latency"}},
		{"p99-breach", SLO{MaxP99Seconds: 0.05, MaxErrorRate: -1, MaxShedRate: -1}, nil, []string{"p99 latency"}},
		{"zero-error-budget", SLO{MaxErrorRate: 0, MaxShedRate: -1},
			func(r *Report) { r.Totals.Errors = 1; r.Totals.ErrorRate = 0.001 },
			[]string{"error rate"}},
		{"shed-breach", SLO{MaxErrorRate: -1, MaxShedRate: 0.001}, nil, []string{"shed rate"}},
		{"throughput-breach", SLO{MaxErrorRate: -1, MaxShedRate: -1, MinThroughputQPS: 1000}, nil, []string{"throughput"}},
		{"drain-not-checked", SLO{MaxErrorRate: -1, MaxShedRate: -1, RequireDrain: true},
			func(r *Report) { r.Drain = nil },
			[]string{"drain behavior was not checked"}},
		{"drain-dirty", SLO{MaxErrorRate: -1, MaxShedRate: -1, RequireDrain: true},
			func(r *Report) { r.Drain.InflightZero = false },
			[]string{"drain check failed"}},
		{"empty-run-always-fails", Ungated(),
			func(r *Report) { r.Totals = Totals{} },
			[]string{"no requests were driven"}},
		{"multiple-sorted", SLO{MaxP50Seconds: 0.001, MaxP99Seconds: 0.001, MaxErrorRate: -1, MaxShedRate: -1, MinThroughputQPS: 1e6}, nil,
			[]string{"p50 latency", "p99 latency", "throughput"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := gateReport()
			if tc.mutate != nil {
				tc.mutate(r)
			}
			got := tc.slo.Gate(r)
			if len(got) != len(tc.want) {
				t.Fatalf("Gate() = %q, want %d violations %q", got, len(tc.want), tc.want)
			}
			for i, sub := range tc.want {
				if !strings.Contains(got[i], sub) {
					t.Fatalf("violation %d = %q, want mention of %q (all: %q)", i, got[i], sub, got)
				}
			}
		})
	}
}

// TestSLOEmpty pins the gated/ungated boundary Empty reports.
func TestSLOEmpty(t *testing.T) {
	if !Ungated().Empty() {
		t.Fatal("Ungated() must be Empty")
	}
	if (SLO{MaxErrorRate: 0, MaxShedRate: -1}).Empty() {
		t.Fatal("a zero error budget is a real gate, not Empty")
	}
	if (SLO{MaxErrorRate: -1, MaxShedRate: -1, RequireDrain: true}).Empty() {
		t.Fatal("RequireDrain is a real gate, not Empty")
	}
}

// TestReportRoundTrip checks WriteJSON → LoadReport identity and the schema
// version rejection.
func TestReportRoundTrip(t *testing.T) {
	r := gateReport()
	r.Violations = []string{}
	path := filepath.Join(t.TempDir(), "SIM_test.json")

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Totals, r.Totals) || back.Mode != r.Mode {
		t.Fatalf("round trip changed the report: %+v vs %+v", back.Totals, r.Totals)
	}

	r.SchemaVersion = SimSchemaVersion + 1
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema accepted: err = %v", err)
	}
}
