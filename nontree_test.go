package nontree_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nontree"
)

func TestQuickstartFlow(t *testing.T) {
	// The README's quickstart, as a test.
	net, err := nontree.GenerateNet(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nontree.LDRG(mst, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	params := nontree.DefaultParams()
	before, err := nontree.MeasureDelay(mst, params)
	if err != nil {
		t.Fatal(err)
	}
	after, err := nontree.MeasureDelay(res.Topology, params)
	if err != nil {
		t.Fatal(err)
	}
	if after.Max > before.Max {
		t.Errorf("LDRG worsened measured delay %.3g → %.3g", before.Max, after.Max)
	}
	if after.Wirelength < before.Wirelength {
		t.Error("added wires cannot reduce wirelength")
	}
	if len(after.PerSink) != net.NumSinks() {
		t.Errorf("per-sink count %d", len(after.PerSink))
	}
}

func TestAllConstructorsProduceValidTopologies(t *testing.T) {
	net, err := nontree.GenerateNet(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	params := nontree.DefaultParams()

	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	st, err := nontree.SteinerTree(net)
	if err != nil {
		t.Fatal(err)
	}
	ert, err := nontree.ERT(net, params)
	if err != nil {
		t.Fatal(err)
	}
	sert, err := nontree.SERT(net, params)
	if err != nil {
		t.Fatal(err)
	}
	for name, topo := range map[string]*nontree.Topology{
		"MST": mst, "Steiner": st, "ERT": ert, "SERT": sert,
	} {
		if !topo.IsTree() {
			t.Errorf("%s: not a tree", name)
		}
		if topo.NumPins() != 9 {
			t.Errorf("%s: pins %d", name, topo.NumPins())
		}
		rep, err := nontree.MeasureDelay(topo, params)
		if err != nil {
			t.Errorf("%s: measurement failed: %v", name, err)
			continue
		}
		if rep.Max <= 0 {
			t.Errorf("%s: non-positive delay", name)
		}
	}
	// Steiner must not cost more than the MST.
	if st.Cost() > mst.Cost()+1e-9 {
		t.Errorf("Steiner cost %.0f exceeds MST %.0f", st.Cost(), mst.Cost())
	}
}

func TestPaperHeadlineClaim(t *testing.T) {
	// "the addition of a single new wire to an existing MST routing
	// reduces the average signal propagation delay by up to 24%, while the
	// average interconnection cost increases by only 11%" — for 30-pin
	// nets. Check the average over a handful of nets: expect a material
	// average delay reduction at a modest cost increase.
	params := nontree.DefaultParams()
	var delaySum, costSum float64
	const trials = 8
	for seed := int64(0); seed < trials; seed++ {
		net, err := nontree.GenerateNet(seed, 30)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := nontree.MST(net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nontree.LDRG(mst, nontree.Config{MaxAddedEdges: 1})
		if err != nil {
			t.Fatal(err)
		}
		before, err := nontree.MeasureDelay(mst, params)
		if err != nil {
			t.Fatal(err)
		}
		after, err := nontree.MeasureDelay(res.Topology, params)
		if err != nil {
			t.Fatal(err)
		}
		delaySum += after.Max / before.Max
		costSum += after.Wirelength / before.Wirelength
	}
	avgDelay, avgCost := delaySum/trials, costSum/trials
	if avgDelay > 0.90 {
		t.Errorf("average single-edge delay ratio %.3f; paper reports ~0.76 for 30 pins", avgDelay)
	}
	if avgCost > 1.30 {
		t.Errorf("average cost ratio %.3f; paper reports ~1.11 for 30 pins", avgCost)
	}
	t.Logf("30-pin single-edge LDRG: delay ×%.3f, cost ×%.3f (paper: 0.76 / 1.11)", avgDelay, avgCost)
}

func TestNonTreeBeatsOptimalTreeClaim(t *testing.T) {
	// Section 4's closing claim: ERT-seeded LDRG finds routings better
	// than near-optimal trees on a meaningful fraction of nets.
	params := nontree.DefaultParams()
	wins := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		net, err := nontree.GenerateNet(seed, 20)
		if err != nil {
			t.Fatal(err)
		}
		ert, err := nontree.ERT(net, params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nontree.LDRG(ert, nontree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Improved() && len(res.AddedEdges) > 0 {
			wins++
		}
	}
	if wins == 0 {
		t.Error("ERT-seeded LDRG never improved an ERT across 10 nets; paper reports 44-56% winners")
	}
	t.Logf("ERT-seeded LDRG improved %d/%d nets", wins, trials)
}

func TestHeuristicsEndToEnd(t *testing.T) {
	net, err := nontree.GenerateNet(25, 10)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nontree.Config{}
	h1, err := nontree.H1(mst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := nontree.H2(mst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := nontree.H3(mst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// H1 is conditional: never worse. H2/H3 may be worse but must produce
	// valid connected graphs.
	if h1.FinalObjective > h1.InitialObjective {
		t.Error("H1 worsened its objective")
	}
	for name, r := range map[string]*nontree.Result{"H1": h1, "H2": h2, "H3": h3} {
		if !r.Topology.Connected() {
			t.Errorf("%s output disconnected", name)
		}
	}
}

func TestSLDRGEndToEnd(t *testing.T) {
	net, err := nontree.GenerateNet(82, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nontree.SLDRG(net, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective > res.InitialObjective {
		t.Error("SLDRG worsened delay")
	}
	if res.Seed == nil || !res.Seed.IsTree() {
		t.Error("missing Steiner seed")
	}
}

func TestSpiceOracleConfig(t *testing.T) {
	net, err := nontree.GenerateNet(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nontree.LDRG(mst, nontree.Config{Oracle: nontree.OracleSpice, MaxAddedEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective > res.InitialObjective {
		t.Error("spice-steered LDRG worsened delay")
	}
}

func TestElmoreDelayAPI(t *testing.T) {
	net, err := nontree.GenerateNet(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	params := nontree.DefaultParams()
	rep, err := nontree.ElmoreDelay(mst, params)
	if err != nil {
		t.Fatal(err)
	}
	maxE, err := nontree.MaxSinkElmore(mst, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Max-maxE) > 1e-18 {
		t.Errorf("ElmoreDelay.Max %.4g != MaxSinkElmore %.4g", rep.Max, maxE)
	}
}

func TestWaveformsAPI(t *testing.T) {
	net, err := nontree.GenerateNet(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	params := nontree.DefaultParams()
	rep, err := nontree.MeasureDelay(mst, params)
	if err != nil {
		t.Fatal(err)
	}
	times, sinks, err := nontree.Waveforms(mst, params, 4*rep.Max, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != net.NumSinks() {
		t.Fatalf("sink series %d", len(sinks))
	}
	for i, series := range sinks {
		if len(series) != len(times) {
			t.Fatalf("series %d length %d vs %d times", i, len(series), len(times))
		}
		// Monotone-ish rise to ~1V: final sample close to Vdd.
		if final := series[len(series)-1]; final < 0.9 {
			t.Errorf("sink %d settled at %.3f V", i, final)
		}
	}
}

func TestNetIO(t *testing.T) {
	net := nontree.NewNet(nontree.Point{X: 0, Y: 0}, nontree.Point{X: 100, Y: 200})
	var buf bytes.Buffer
	if err := net.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := nontree.ReadNetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPins() != 2 {
		t.Error("JSON round trip failed")
	}
	back2, err := nontree.ReadNetText(strings.NewReader("pin 0 0\npin 100 200\n"))
	if err != nil {
		t.Fatal(err)
	}
	if back2.NumPins() != 2 {
		t.Error("text parse failed")
	}
}

func TestCriticalSinkShiftsPriorities(t *testing.T) {
	net, err := nontree.GenerateNet(31, 12)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	params := nontree.DefaultParams()
	base, err := nontree.ElmoreDelay(mst, params)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the worst Elmore sink as critical.
	critical := 0
	for i, d := range base.PerSink {
		if d > base.PerSink[critical] {
			critical = i
		}
	}
	alphas := make([]float64, net.NumSinks())
	alphas[critical] = 1
	res, err := nontree.CriticalSinkLDRG(mst, alphas, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := nontree.ElmoreDelay(res.Topology, params)
	if err != nil {
		t.Fatal(err)
	}
	if after.PerSink[critical] > base.PerSink[critical] {
		t.Error("critical sink delay worsened under CSORG")
	}
}

func TestWireSizeAPI(t *testing.T) {
	net, err := nontree.GenerateNet(13, 12)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nontree.WireSize(mst, 3, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective > res.InitialObjective {
		t.Error("sizing worsened delay")
	}
	for _, w := range res.Widths {
		if w > 3 {
			t.Errorf("width %d exceeds request", w)
		}
	}
}

func TestHORGAPI(t *testing.T) {
	net, err := nontree.GenerateNet(17, 8)
	if err != nil {
		t.Fatal(err)
	}
	alphas := make([]float64, net.NumSinks())
	for i := range alphas {
		alphas[i] = 1
	}
	res, err := nontree.HORG(net, alphas, true, 3, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective() <= 0 {
		t.Error("HORG produced non-positive objective")
	}
}

func TestFastLDRGMatchesLDRG(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		net, err := nontree.GenerateNet(seed, 15)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := nontree.MST(net)
		if err != nil {
			t.Fatal(err)
		}
		fast, fastEdges, err := nontree.FastLDRG(mst, nontree.DefaultParams(), 0)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := nontree.LDRG(mst, nontree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(fastEdges) != len(ref.AddedEdges) {
			t.Fatalf("seed %d: fast %v vs ref %v", seed, fastEdges, ref.AddedEdges)
		}
		for i := range fastEdges {
			if fastEdges[i] != ref.AddedEdges[i] {
				t.Fatalf("seed %d: edge %d differs", seed, i)
			}
		}
		if fast.Cost() != ref.Topology.Cost() {
			t.Fatalf("seed %d: cost differs", seed)
		}
	}
}

func TestCleanupAPIRecoversOrKeeps(t *testing.T) {
	net, err := nontree.GenerateNet(4, 15)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := nontree.LDRG(mst, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nontree.Cleanup(routed.Topology, 0.05, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Topology.Connected() {
		t.Fatal("cleanup disconnected the routing")
	}
	if res.CostRecovered < 0 {
		t.Error("negative recovery")
	}
}

func TestCrossingsAPI(t *testing.T) {
	// A '+'-shaped pair of independent edges must cross once.
	topo := nontree.NewNet(nontree.Point{X: -10, Y: 0},
		nontree.Point{X: 10, Y: 0}, nontree.Point{X: 0, Y: -10}, nontree.Point{X: 0, Y: 10})
	// Build the crossing topology manually.
	mst, err := nontree.MST(topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := nontree.Crossings(mst); got != 0 {
		t.Errorf("MST of 4 points crossed %d times; trees should embed planar here", got)
	}
}

func TestDelayBoundsBracketMeasurement(t *testing.T) {
	net, err := nontree.GenerateNet(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	p := nontree.DefaultParams()
	bounds, err := nontree.DelayBounds(mst, p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nontree.MeasureDelay(mst, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(rep.PerSink) {
		t.Fatalf("bounds for %d sinks, measured %d", len(bounds), len(rep.PerSink))
	}
	for i, d := range rep.PerSink {
		if d < bounds[i][0] || d > bounds[i][1] {
			t.Errorf("sink %d: measured %.4g outside [%.4g, %.4g]",
				i+1, d, bounds[i][0], bounds[i][1])
		}
	}
}

func TestInvalidNetsRejectedAtAPI(t *testing.T) {
	bad := nontree.NewNet(nontree.Point{X: 0, Y: 0}) // no sinks
	if _, err := nontree.MST(bad); err == nil {
		t.Error("MST must reject sink-less net")
	}
	if _, err := nontree.SteinerTree(bad); err == nil {
		t.Error("SteinerTree must reject sink-less net")
	}
	if _, err := nontree.ERT(bad, nontree.DefaultParams()); err == nil {
		t.Error("ERT must reject sink-less net")
	}
	if _, err := nontree.SLDRG(bad, nontree.Config{}); err == nil {
		t.Error("SLDRG must reject sink-less net")
	}
	if _, err := nontree.MeasureDelay(nil, nontree.DefaultParams()); err == nil {
		t.Error("MeasureDelay must reject nil topology")
	}
}

func TestTapsAndEnergyAPIs(t *testing.T) {
	net, err := nontree.GenerateNet(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	p := nontree.DefaultParams()
	taps, err := nontree.LDRGWithTaps(mst, nontree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if taps.FinalObjective > taps.InitialObjective {
		t.Error("taps worsened delay")
	}
	e0, err := nontree.SwitchingEnergy(mst, p)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := nontree.SwitchingEnergy(taps.Topology, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps.AddedEdges) > 0 && e1 <= e0 {
		t.Error("added wires must raise switching energy")
	}
}

func TestExplicitParamsRespected(t *testing.T) {
	// A Config carrying non-default params must use them, not defaults.
	net, err := nontree.GenerateNet(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	weak := nontree.DefaultParams()
	weak.DriverResistance = 10000 // a feeble driver: rd dominates everything
	res, err := nontree.LDRG(mst, nontree.Config{Params: weak})
	if err != nil {
		t.Fatal(err)
	}
	// With rd huge, extra wires only add capacitance: LDRG must add nothing.
	if len(res.AddedEdges) != 0 {
		t.Errorf("feeble-driver LDRG added %v; resistance shortcuts cannot pay", res.AddedEdges)
	}
}

func TestPDTreeAndBRBCAPIs(t *testing.T) {
	net, err := nontree.GenerateNet(21, 12)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		t.Fatal(err)
	}
	pd0, err := nontree.PDTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd0.Cost()-mst.Cost()) > 1e-6 {
		t.Errorf("PDTree(0) cost %.1f != MST %.1f", pd0.Cost(), mst.Cost())
	}
	brbc, err := nontree.BRBC(net, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !brbc.IsTree() {
		t.Error("BRBC must be a tree")
	}
	if brbc.Cost() > 5*mst.Cost() {
		t.Errorf("BRBC ε=0.5 cost %.1f exceeds its (1+2/ε)=5× bound vs MST %.1f", brbc.Cost(), mst.Cost())
	}
	if _, err := nontree.PDTree(net, 2); err == nil {
		t.Error("c > 1 must be rejected")
	}
	if _, err := nontree.BRBC(net, 0); err == nil {
		t.Error("ε = 0 must be rejected")
	}
}
