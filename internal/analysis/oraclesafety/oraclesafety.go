// Package oraclesafety enforces the DelayOracle thread-safety contract
// (DESIGN.md §7): when Options.Workers != 1 the greedy sweeps call
// SinkDelays concurrently from many goroutines, so oracle and objective
// implementations must build their workspaces per call. The analyzer flags
// any SinkDelays, Evaluate, or Eval method that writes to a receiver field
// or to a package-level variable — the two ways shared state leaks between
// concurrent evaluations.
//
// The one sanctioned exception is the documented single-threaded
// incremental evaluator: methods whose receiver type is named Incremental
// in package nontree/internal/elmore are skipped. Other exemptions require
// a justified //nontree:allow oraclesafety annotation.
//
// The check is syntactic per method: writes made through aliases
// (`b := o.buf; b[0] = x`) or by callees are not traced. The -race sweep
// tests in internal/core remain the dynamic backstop for those.
package oraclesafety

import (
	"go/ast"
	"go/types"

	"nontree/internal/analysis"
)

// methodNames are the oracle entry points covered by the contract.
var methodNames = map[string]bool{
	"SinkDelays": true,
	"Evaluate":   true,
	"Eval":       true,
}

// exceptionPkg/exceptionType identify the documented single-threaded
// incremental Elmore evaluator, exempt by design.
const (
	exceptionPkg  = "nontree/internal/elmore"
	exceptionType = "Incremental"
)

// Analyzer is the oraclesafety check.
var Analyzer = &analysis.Analyzer{
	Name: "oraclesafety",
	Doc: "flag SinkDelays/Evaluate/Eval implementations that write receiver " +
		"fields or package-level variables, breaking concurrent-sweep safety",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !methodNames[fd.Name.Name] {
				continue
			}
			if isException(pass, fd) {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

// isException reports whether fd is a method of the documented
// elmore.Incremental evaluator.
func isException(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if pass.Pkg == nil || pass.Pkg.Path() != exceptionPkg {
		return false
	}
	return receiverTypeName(fd) == exceptionType
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverObjects(pass, fd)
	check := func(lhs ast.Expr, verb string) {
		root := analysis.RootIdent(lhs)
		if root == nil {
			return
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			return
		}
		switch {
		case recv[obj]:
			// Rebinding the receiver variable itself (`o = ...`) only
			// changes the method-local copy; what reaches shared state is a
			// write through it — selectors, indexes, or `*o = ...`.
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				return
			}
			pass.Reportf(lhs.Pos(),
				"%s receiver state %s in %s: oracles must be safe for concurrent "+
					"calls on distinct topologies — allocate per-call workspaces "+
					"(see DESIGN.md §7) or annotate //nontree:allow oraclesafety <why>",
				verb, exprString(lhs), fd.Name.Name)
		case isPackageLevel(pass, obj):
			pass.Reportf(lhs.Pos(),
				"%s package-level variable %s in %s: oracles must not share "+
					"mutable state across concurrent calls (DESIGN.md §7)",
				verb, root.Name, fd.Name.Name)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				check(lhs, "writes")
			}
		case *ast.IncDecStmt:
			check(s.X, "updates")
		case *ast.UnaryExpr:
			// Taking the address of receiver state and handing it out is a
			// write in waiting; keep the check focused on direct writes and
			// let the race detector cover escapes.
		}
		return true
	})
}

// receiverObjects returns the object(s) bound to the receiver identifier.
func receiverObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fd.Recv.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// isPackageLevel reports whether obj is a variable declared at package
// scope in the package under analysis.
func isPackageLevel(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || pass.Pkg == nil {
		return false
	}
	return v.Parent() == pass.Pkg.Scope()
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "expression"
}
