// Package lockx closes a lock cycle across a package boundary: one nests
// its own lock around lockdep's (through lockdep.WithG's summary fact),
// two nests the other way by locking the exported mutex directly.
package lockx

import (
	"sync"

	"lockdep"
)

type S struct{ mu sync.Mutex }

var s S

func one() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = lockdep.WithG(1) // want `potential deadlock: lockx\.one acquires lockdep\.\(T\)\.Mu while holding lockx\.\(S\)\.mu \(via lockdep\.WithG\)`
}

func two() {
	lockdep.G.Mu.Lock()
	s.mu.Lock() // want `potential deadlock: lockx\.two acquires lockx\.\(S\)\.mu while holding lockdep\.\(T\)\.Mu; reverse path: lockx\.\(S\)\.mu -> lockdep\.\(T\)\.Mu at `
	s.mu.Unlock()
	lockdep.G.Mu.Unlock()
}
