package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry is the concrete Recorder: a named set of atomic counters,
// histograms and timing histograms. All methods are safe for concurrent
// use; the mutex only guards the name→metric maps, every update after
// lookup is lock-free.
//
// Lock order: mu is a leaf lock — no Registry method calls out of the
// package while holding it (the RLock→RUnlock→Lock upgrade in the lookup
// path stays inside this file), so it nests safely under any caller's
// lock. The lockorder analyzer verifies this stays acyclic (DESIGN.md
// §14).
type Registry struct {
	mu sync.RWMutex
	//nontree:guardedby mu
	counters map[string]*atomic.Int64
	//nontree:guardedby mu
	hists map[string]*histogram
	//nontree:guardedby mu
	timings map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*atomic.Int64),
		hists:    make(map[string]*histogram),
		timings:  make(map[string]*histogram),
	}
}

// Add implements Recorder.
func (g *Registry) Add(name string, delta int64) {
	g.counter(name).Add(delta)
}

// Observe implements Recorder.
func (g *Registry) Observe(name string, value float64) {
	//nontree:allow lockguard hist locks internally; the address never escapes it
	g.hist(&g.hists, name).observe(value)
}

// ObserveDuration implements Recorder.
func (g *Registry) ObserveDuration(name string, seconds float64) {
	//nontree:allow lockguard hist locks internally; the address never escapes it
	g.hist(&g.timings, name).observe(seconds)
}

// Declare registers an empty histogram so it appears in snapshots even
// when the run never observes a sample — the schema-stability guarantee
// the benchmark harness relies on.
func (g *Registry) Declare(name string) {
	//nontree:allow lockguard hist locks internally; the address never escapes it
	g.hist(&g.hists, name)
}

// DeclareTiming registers an empty timing histogram, the Timings-section
// counterpart of Declare (PreregisterServe uses it to pin the /metrics
// key set).
func (g *Registry) DeclareTiming(name string) {
	//nontree:allow lockguard hist locks internally; the address never escapes it
	g.hist(&g.timings, name)
}

func (g *Registry) counter(name string) *atomic.Int64 {
	g.mu.RLock()
	c := g.counters[name]
	g.mu.RUnlock()
	if c != nil {
		return c
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if c = g.counters[name]; c == nil {
		c = new(atomic.Int64)
		g.counters[name] = c
	}
	return c
}

func (g *Registry) hist(m *map[string]*histogram, name string) *histogram {
	g.mu.RLock()
	h := (*m)[name]
	g.mu.RUnlock()
	if h != nil {
		return h
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if h = (*m)[name]; h == nil {
		h = newHistogram()
		(*m)[name] = h
	}
	return h
}

// numBuckets covers binary exponents −32..31, wide enough for both event
// counts (1..2³¹) and span durations (250 ps .. hours).
const numBuckets = 64

// histogram accumulates samples lock-free: count and per-exponent bucket
// tallies are plain atomic adds (order-independent), sum/min/max use CAS
// loops on the float bit patterns (min/max are order-independent; sum is
// exact — hence order-independent — for integer-valued samples, which is
// all the deterministic instrumentation ever records).
type histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf when empty
	maxBits atomic.Uint64 // −Inf when empty
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *histogram {
	h := &histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a sample to its power-of-two bucket: index i holds
// samples v with 2^(i−32) ≤ v < 2^(i−31), clamped at the ends; zero and
// negative samples land in bucket 0.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	e := math.Ilogb(v) + 32
	if e < 0 {
		return 0
	}
	if e >= numBuckets {
		return numBuckets - 1
	}
	return e
}

// BucketIndex exposes the histogram bucketing for exemplar links: it
// returns the bucket index a sample of v lands in, so a wide event can
// point at the exact serve.route.seconds bucket its latency was counted
// under (DESIGN.md §16). Index i holds 2^(i−32) ≤ v < 2^(i−31); zero,
// negative and NaN samples land in bucket 0.
func BucketIndex(v float64) int {
	return bucketIndex(v)
}

func (h *histogram) observe(v float64) {
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}
