package obs

// Canonical metric names. Instrumented code always refers to these
// constants, so the catalog below is complete by construction; the
// benchmark harness preregisters all of them, which freezes the snapshot
// key set independently of which code paths a particular run exercises
// (the schema-stability guarantee of BENCH_*.json).
//
// Naming convention: <package>.<subsystem>.<quantity>, snake_case leaves.
// DESIGN.md §10 documents the exact meaning and determinism status of each.
const (
	// --- package core: greedy sweeps ---

	// CtrOracleEvaluations counts DelayOracle.SinkDelays invocations — the
	// dominant cost of every algorithm (equals Result.Evaluations).
	CtrOracleEvaluations = "core.oracle.evaluations"
	// CtrSweeps counts greedy sweeps (one per algorithm iteration).
	CtrSweeps = "core.sweep.sweeps"
	// CtrSweepCandidates counts candidate edges offered to sweeps.
	CtrSweepCandidates = "core.sweep.candidates"
	// CtrAcceptedEdges counts accepted topology modifications (edges, taps).
	CtrAcceptedEdges = "core.sweep.accepted"
	// CtrCandidatesPruned counts sweep candidates skipped by lower-bound
	// pruning before any oracle work (incremental scoring only). Unlike the
	// other sweep counters it is order-dependent: it is deterministic for a
	// fixed seed, but not invariant under input relabeling.
	CtrCandidatesPruned = "core.sweep.pruned"
	// CtrTapCandidates counts mid-edge tap candidates evaluated.
	CtrTapCandidates = "core.taps.candidates"
	// CtrTapsAccepted counts accepted taps (subset of CtrAcceptedEdges).
	CtrTapsAccepted = "core.taps.accepted"
	// CtrWidenCandidates counts WSORG widening candidates evaluated.
	CtrWidenCandidates = "core.wiresize.candidates"
	// CtrWidenings counts accepted WSORG width increments.
	CtrWidenings = "core.wiresize.widenings"

	// --- package elmore: incremental (Sherman–Morrison) evaluator ---

	// CtrIncrementalEvals counts WithEdge candidate evaluations.
	CtrIncrementalEvals = "elmore.incremental.evaluations"
	// CtrIncrementalHits counts transfer-resistance column cache hits.
	CtrIncrementalHits = "elmore.incremental.cache_hits"
	// CtrIncrementalMisses counts column cache misses (triangular solves).
	CtrIncrementalMisses = "elmore.incremental.cache_misses"
	// CtrIncrementalFactorizations counts base-state (re)factorizations of
	// the incremental evaluator — one per NewIncremental plus one per
	// Refactor after an accepted modification.
	CtrIncrementalFactorizations = "elmore.incremental.factorizations"
	// CtrElmoreSolves counts linear-system solves made by the Elmore and
	// two-pole oracles (one per Elmore evaluation, two per two-pole).
	CtrElmoreSolves = "elmore.graph.solves"

	// --- package spice: MNA transient simulator ---

	// CtrMNAFactorizations counts LU factorizations of MNA matrices.
	CtrMNAFactorizations = "spice.mna.factorizations"
	// CtrMNASolves counts triangular back-substitutions (one per timestep,
	// three per adaptive step attempt).
	CtrMNASolves = "spice.mna.solves"
	// CtrTranRuns counts fixed-step transient analyses.
	CtrTranRuns = "spice.tran.runs"
	// CtrTranSteps counts fixed-step timesteps executed.
	CtrTranSteps = "spice.tran.steps"
	// CtrTranEarlyExits counts transients that stopped before Stop because
	// every watched node had crossed its threshold.
	CtrTranEarlyExits = "spice.tran.early_exits"
	// CtrAdaptiveSteps counts accepted adaptive (LTE-controlled) steps.
	CtrAdaptiveSteps = "spice.adaptive.steps"
	// CtrAdaptiveRejections counts adaptive step rejections (LTE > tol).
	CtrAdaptiveRejections = "spice.adaptive.rejections"
	// CtrAdaptiveRefactor counts adaptive-stepper factorization-cache
	// misses (each one is a fresh LU factorization).
	CtrAdaptiveRefactor = "spice.adaptive.refactorizations"
	// CtrMeasureRuns counts MeasureDelays invocations.
	CtrMeasureRuns = "spice.measure.runs"
	// CtrMeasureRetries counts horizon-quadrupling retries inside
	// MeasureDelays (a node had not crossed within the window).
	CtrMeasureRetries = "spice.measure.horizon_retries"
	// CtrMeasureDCSolves counts the DC final-value solves MeasureDelays
	// performs to fix threshold levels.
	CtrMeasureDCSolves = "spice.measure.dc_solves"

	// --- package serve: the nontree-serve daemon ---
	//
	// Serve counters live in a separate catalog (ServeCounterNames,
	// preregistered by PreregisterServe) so the benchmark harness's
	// snapshot schema — frozen over CounterNames — is untouched by daemon
	// instrumentation. The serve package aliases these values locally;
	// the obsnames analyzer matches by value, so both spellings satisfy
	// the lint gate.

	// CtrRouteRequests counts /route requests accepted for routing.
	CtrRouteRequests = "serve.route.requests"
	// CtrRouteErrors counts /route requests that failed (bad input or
	// routing error).
	CtrRouteErrors = "serve.route.errors"
	// CtrRouteRejected counts /route requests shed by the concurrency
	// limiter or refused while draining.
	CtrRouteRejected = "serve.route.rejected"
	// CtrTraceEvictions counts traces evicted from the retention window.
	CtrTraceEvictions = "serve.traces.evictions"
	// CtrLogEvents counts wide events appended to the request log ring
	// (exactly one per /route request, whatever its outcome).
	CtrLogEvents = "serve.log.events"
	// CtrLogDropped counts wide events discarded because request logging
	// is disabled (Options.MaxLogEvents < 0).
	CtrLogDropped = "serve.log.dropped"
	// CtrLogEvictions counts wide events evicted from the log ring by
	// wraparound.
	CtrLogEvictions = "serve.log.evictions"

	// --- package sim: the nontree-sim workload driver ---
	//
	// Sim counters live in their own catalog (SimCounterNames, preregistered
	// by PreregisterSim) for the same schema-freezing reason as the serve
	// catalog. They are client-side: they count requests the driver issued,
	// mirroring the daemon's serve.route.* counters from the other end of
	// the wire, so a soak report can reconcile both views.

	// CtrSimRequests counts requests the workload driver issued.
	CtrSimRequests = "sim.client.requests"
	// CtrSimOK counts requests answered 200.
	CtrSimOK = "sim.client.ok"
	// CtrSimShed counts requests shed by the daemon (429 or drain 503).
	CtrSimShed = "sim.client.shed"
	// CtrSimErrors counts requests that failed any other way (transport
	// errors, 4xx/5xx outside the shed statuses).
	CtrSimErrors = "sim.client.errors"
)

// Histogram names (deterministic sections — integer-valued samples only).
const (
	// HistSweepCandidates is the per-sweep candidate count distribution.
	HistSweepCandidates = "core.sweep.candidates_per_sweep"
	// HistTranSteps is the per-transient step-count distribution.
	HistTranSteps = "spice.tran.steps_per_run"
	// HistAdaptiveSteps is the per-adaptive-run accepted-step distribution.
	HistAdaptiveSteps = "spice.adaptive.steps_per_run"
)

// Wall-clock timing names (Timings section — excluded from determinism).
const (
	// TimeSweep spans one full greedy sweep (candidate generation through
	// reduction).
	TimeSweep = "core.sweep.seconds"
	// TimeSweepWorker spans one worker goroutine's share of a sweep.
	TimeSweepWorker = "core.sweep.worker.seconds"
	// TimeOracleSeconds spans one DelayOracle.SinkDelays evaluation. The
	// serve layer reads its per-request sum from a private registry to
	// attribute /route latency to oracle work vs. sweep bookkeeping in the
	// wide event's phase breakdown (DESIGN.md §16).
	TimeOracleSeconds = "core.oracle.seconds"
	// TimeRouteSeconds is the wall-clock /route handling distribution.
	TimeRouteSeconds = "serve.route.seconds"
	// TimeSimRequestSeconds is the workload driver's client-observed
	// per-request latency distribution (includes the wire, unlike the
	// server-side TimeRouteSeconds).
	TimeSimRequestSeconds = "sim.client.request.seconds"
)

// CounterNames returns the full counter catalog.
func CounterNames() []string {
	return []string{
		CtrOracleEvaluations,
		CtrSweeps,
		CtrSweepCandidates,
		CtrAcceptedEdges,
		CtrCandidatesPruned,
		CtrTapCandidates,
		CtrTapsAccepted,
		CtrWidenCandidates,
		CtrWidenings,
		CtrIncrementalEvals,
		CtrIncrementalHits,
		CtrIncrementalMisses,
		CtrIncrementalFactorizations,
		CtrElmoreSolves,
		CtrMNAFactorizations,
		CtrMNASolves,
		CtrTranRuns,
		CtrTranSteps,
		CtrTranEarlyExits,
		CtrAdaptiveSteps,
		CtrAdaptiveRejections,
		CtrAdaptiveRefactor,
		CtrMeasureRuns,
		CtrMeasureRetries,
		CtrMeasureDCSolves,
	}
}

// HistogramNames returns the deterministic histogram catalog.
func HistogramNames() []string {
	return []string{HistSweepCandidates, HistTranSteps, HistAdaptiveSteps}
}

// ServeCounterNames returns the daemon counter catalog — disjoint from
// CounterNames so the benchmark snapshot schema stays frozen.
func ServeCounterNames() []string {
	return []string{
		CtrRouteRequests,
		CtrRouteErrors,
		CtrRouteRejected,
		CtrTraceEvictions,
		CtrLogEvents,
		CtrLogDropped,
		CtrLogEvictions,
	}
}

// SimCounterNames returns the workload-driver counter catalog — disjoint
// from CounterNames and ServeCounterNames so both existing snapshot
// schemas stay frozen.
func SimCounterNames() []string {
	return []string{
		CtrSimRequests,
		CtrSimOK,
		CtrSimShed,
		CtrSimErrors,
	}
}

// TimingNames returns the wall-clock timing catalog (Timings section —
// excluded from determinism guarantees).
func TimingNames() []string {
	return []string{TimeSweep, TimeSweepWorker, TimeOracleSeconds, TimeRouteSeconds, TimeSimRequestSeconds}
}

// Preregister creates every cataloged counter (at zero) and histogram
// (empty) in the registry, freezing the snapshot key set regardless of
// which code paths the following run takes.
func Preregister(g *Registry) {
	for _, name := range CounterNames() {
		g.Add(name, 0)
	}
	for _, name := range HistogramNames() {
		g.Declare(name)
	}
}

// PreregisterServe additionally creates the daemon's counters and its
// route-timing histogram, so /metrics exposes the full serve surface from
// the first scrape — before any request has exercised the paths. serve.New
// calls this on whatever registry it is handed.
func PreregisterServe(g *Registry) {
	for _, name := range ServeCounterNames() {
		g.Add(name, 0)
	}
	g.DeclareTiming(TimeRouteSeconds)
	g.DeclareTiming(TimeOracleSeconds)
}

// PreregisterSim creates the workload driver's counters and its latency
// timing histogram, freezing the SIM_*.json snapshot key set the same way
// PreregisterServe freezes the /metrics surface. sim drivers call this on
// whatever registry they are handed.
func PreregisterSim(g *Registry) {
	for _, name := range SimCounterNames() {
		g.Add(name, 0)
	}
	g.DeclareTiming(TimeSimRequestSeconds)
}
