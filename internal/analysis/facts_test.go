package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type testFact struct {
	Unit string `json:"unit"`
}

func TestFactsExportImport(t *testing.T) {
	f := NewFacts()
	if err := f.Export("pkg/a", "pkg/a.X", testFact{Unit: "Ω"}); err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !f.Import("pkg/a.X", &got) || got.Unit != "Ω" {
		t.Fatalf("Import = %+v, want Ω", got)
	}
	if f.Import("pkg/a.Y", &got) {
		t.Error("Import of a missing key must report false")
	}
	// Re-export overwrites.
	if err := f.Export("pkg/a", "pkg/a.X", testFact{Unit: "F"}); err != nil {
		t.Fatal(err)
	}
	if !f.Import("pkg/a.X", &got) || got.Unit != "F" {
		t.Fatalf("after overwrite, Import = %+v, want F", got)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
}

func TestFactsSidecarRoundTrip(t *testing.T) {
	f := NewFacts()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.Export("nontree/internal/rc", "nontree/internal/rc.Params.WireCapacitance", testFact{Unit: "F/µm"}))
	must(f.Export("nontree/internal/rc", "nontree/internal/rc.Params.DriverResistance", testFact{Unit: "Ω"}))
	must(f.Export("nontree/internal/elmore", "nontree/internal/elmore.TreeDelays", testFact{Unit: "s"}))

	dir := t.TempDir()
	must(f.WriteDir(dir))

	// One sidecar per package, named after the flattened import path.
	for _, want := range []string{
		"nontree__internal__rc.json",
		"nontree__internal__elmore.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing sidecar %s: %v", want, err)
		}
	}

	g := NewFacts()
	must(g.ReadDir(dir))
	if g.Len() != f.Len() {
		t.Fatalf("round trip lost facts: %d → %d", f.Len(), g.Len())
	}
	var got testFact
	if !g.Import("nontree/internal/rc.Params.WireCapacitance", &got) || got.Unit != "F/µm" {
		t.Fatalf("round-tripped fact = %+v, want F/µm", got)
	}
	if !reflect.DeepEqual(g.Packages(), []string{"nontree/internal/elmore", "nontree/internal/rc"}) {
		t.Errorf("Packages = %v", g.Packages())
	}
	if keys := g.PkgKeys("nontree/internal/rc"); len(keys) != 2 || keys[0] != "nontree/internal/rc.Params.DriverResistance" {
		t.Errorf("PkgKeys = %v", keys)
	}
}

func TestFactsReadDirMalformed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewFacts().ReadDir(dir); err == nil {
		t.Fatal("expected an error decoding a malformed sidecar")
	}
}
