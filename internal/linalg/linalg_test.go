package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 || m.At(0, 1) != 0 {
		t.Errorf("element ops wrong: %+v", m)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must be deep")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch must panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestAddScaled(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 2)
	b.Set(1, 1, 4)
	a.AddScaled(b, 0.5)
	if a.At(0, 0) != 2 || a.At(1, 1) != 2 {
		t.Errorf("AddScaled: %+v", a)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5]
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]float64{3, 5})
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the initial diagonal: fails without partial pivoting.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]float64{3, 7})
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSingularDetection(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4) // rank 1
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Errorf("rank-1 matrix: %v", err)
	}
	z := NewMatrix(3, 3)
	if _, err := Factor(z); !errors.Is(err, ErrSingular) {
		t.Errorf("zero matrix: %v", err)
	}
}

func TestNonSquareRejected(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Error("non-square factor must error")
	}
}

func TestDeterminant(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 8)
	a.Set(1, 0, 4)
	a.Set(1, 1, 6)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := lu.Det(); math.Abs(d-(-14)) > 1e-9 {
		t.Errorf("det = %v, want -14", d)
	}
}

func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
		}
		a.Set(i, i, rowSum+1+rng.Float64())
	}
	return a
}

func TestRandomSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(40)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		x := lu.Solve(b)
		return Residual(a, x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveDoesNotModifyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDiagDominant(rng, 5)
	aCopy := a.Clone()
	b := []float64{1, 2, 3, 4, 5}
	bCopy := append([]float64(nil), b...)

	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	_ = lu.Solve(b)
	for i := range a.Data {
		if a.Data[i] != aCopy.Data[i] {
			t.Fatal("Factor modified its input matrix")
		}
	}
	for i := range b {
		if b[i] != bCopy[i] {
			t.Fatal("Solve modified its right-hand side")
		}
	}
}

func TestSolveInPlaceMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDiagDominant(rng, 8)
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := lu.Solve(b)
	x2 := append([]float64(nil), b...)
	lu.SolveInPlace(x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("Solve and SolveInPlace differ at %d", i)
		}
	}
}

func TestSolveDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDiagDominant(rng, 6)
	b := NewMatrix(6, 3)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.SolveDense(b)
	// Check A·X = B column-wise.
	for j := 0; j < 3; j++ {
		col := make([]float64, 6)
		rhs := make([]float64, 6)
		for i := 0; i < 6; i++ {
			col[i] = x.At(i, j)
			rhs[i] = b.At(i, j)
		}
		if r := Residual(a, col, rhs); r > 1e-9 {
			t.Errorf("column %d residual %v", j, r)
		}
	}
}

func TestIdentitySolve(t *testing.T) {
	n := 10
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
	}
	x := lu.Solve(b)
	for i := range x {
		if x[i] != b[i] {
			t.Fatalf("identity solve changed the vector at %d", i)
		}
	}
	if d := lu.Det(); d != 1 {
		t.Errorf("identity det = %v", d)
	}
}

func TestSymmetricSPDConductanceLike(t *testing.T) {
	// A grounded conductance matrix (Laplacian + diagonal ground leak) is
	// SPD; solving against canonical basis vectors gives a symmetric
	// inverse. This mirrors exactly how the Elmore analysis uses linalg.
	n := 12
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(n, n)
	for k := 0; k < 3*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		g := rng.Float64() + 0.1
		a.Add(i, i, g)
		a.Add(j, j, g)
		a.Add(i, j, -g)
		a.Add(j, i, -g)
	}
	a.Add(0, 0, 0.01) // ground leak makes it non-singular
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	ei := make([]float64, n)
	ej := make([]float64, n)
	for trial := 0; trial < 10; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		for k := range ei {
			ei[k], ej[k] = 0, 0
		}
		ei[i], ej[j] = 1, 1
		xi := lu.Solve(ei)
		xj := lu.Solve(ej)
		if math.Abs(xi[j]-xj[i]) > 1e-9*math.Max(math.Abs(xi[j]), 1e-12) {
			t.Fatalf("inverse not symmetric: A⁻¹[%d,%d]=%v vs A⁻¹[%d,%d]=%v",
				j, i, xi[j], i, j, xj[i])
		}
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dimension must panic")
		}
	}()
	NewMatrix(-1, 2)
}
