// Command nontree routes a single signal net with any of the paper's
// algorithms and reports delays, wirelength, and optionally an SVG drawing.
//
// Usage:
//
//	nontree -gen 10 -seed 7 -algo ldrg            # random net, LDRG
//	nontree -net mynet.json -algo sldrg -svg out.svg
//	nontree -gen 20 -algo ert                      # baselines work too
//	nontree -gen 10 -algo ldrg -oracle spice       # SPICE-in-the-loop search
//
// Algorithms: mst, steiner, ert, sert (tree constructions);
// ldrg, sldrg, h1, h2, h3, ert-ldrg (non-tree routings).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nontree"
	"nontree/internal/graph"
	"nontree/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nontree: ")

	var (
		netFile  = flag.String("net", "", "net file (JSON or text); mutually exclusive with -gen")
		genPins  = flag.Int("gen", 0, "generate a random net with this many pins")
		seed     = flag.Int64("seed", 1, "random net seed")
		algo     = flag.String("algo", "ldrg", "algorithm: mst, steiner, ert, sert, ldrg, sldrg, h1, h2, h3, ert-ldrg")
		oracle   = flag.String("oracle", "elmore", "search oracle for greedy algorithms: elmore or spice")
		maxEdges = flag.Int("max-edges", 0, "cap on added edges (0 = to convergence)")
		svgOut   = flag.String("svg", "", "write an SVG drawing of the result here")
	)
	flag.Parse()

	if err := run(*netFile, *genPins, *seed, *algo, *oracle, *maxEdges, *svgOut); err != nil {
		log.Fatal(err)
	}
}

func loadNet(netFile string, genPins int, seed int64) (*nontree.Net, error) {
	if netFile != "" && genPins > 0 {
		return nil, fmt.Errorf("use either -net or -gen, not both")
	}
	if netFile != "" {
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(netFile, ".json") {
			return nontree.ReadNetJSON(f)
		}
		return nontree.ReadNetText(f)
	}
	if genPins < 2 {
		return nil, fmt.Errorf("need -net FILE or -gen N (N ≥ 2)")
	}
	return nontree.GenerateNet(seed, genPins)
}

func run(netFile string, genPins int, seed int64, algo, oracle string, maxEdges int, svgOut string) error {
	net, err := loadNet(netFile, genPins, seed)
	if err != nil {
		return err
	}
	params := nontree.DefaultParams()
	cfg := nontree.Config{MaxAddedEdges: maxEdges}
	if oracle == "spice" {
		cfg.Oracle = nontree.OracleSpice
	}

	var (
		baseline *nontree.Topology
		final    *nontree.Topology
		added    []graph.Edge
	)
	switch algo {
	case "mst":
		final, err = nontree.MST(net)
	case "steiner":
		final, err = nontree.SteinerTree(net)
	case "ert":
		final, err = nontree.ERT(net, params)
	case "sert":
		final, err = nontree.SERT(net, params)
	case "ldrg":
		baseline, err = nontree.MST(net)
		if err == nil {
			var res *nontree.Result
			res, err = nontree.LDRG(baseline, cfg)
			if err == nil {
				final, added = res.Topology, res.AddedEdges
			}
		}
	case "ert-ldrg":
		baseline, err = nontree.ERT(net, params)
		if err == nil {
			var res *nontree.Result
			res, err = nontree.LDRG(baseline, cfg)
			if err == nil {
				final, added = res.Topology, res.AddedEdges
			}
		}
	case "sldrg":
		var res *nontree.SteinerResult
		res, err = nontree.SLDRG(net, cfg)
		if err == nil {
			baseline, final, added = res.Seed, res.Topology, res.AddedEdges
		}
	case "h1", "h2", "h3":
		baseline, err = nontree.MST(net)
		if err == nil {
			var res *nontree.Result
			switch algo {
			case "h1":
				res, err = nontree.H1(baseline, cfg)
			case "h2":
				res, err = nontree.H2(baseline, cfg)
			default:
				res, err = nontree.H3(baseline, cfg)
			}
			if err == nil {
				final, added = res.Topology, res.AddedEdges
			}
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}

	fmt.Printf("net: %d pins (source + %d sinks)\n", net.NumPins(), net.NumSinks())
	if baseline != nil {
		rep, err := nontree.MeasureDelay(baseline, params)
		if err != nil {
			return err
		}
		fmt.Printf("seed topology:   max delay %8.3f ns   wirelength %9.0f µm\n",
			rep.Max*1e9, rep.Wirelength)
	}
	rep, err := nontree.MeasureDelay(final, params)
	if err != nil {
		return err
	}
	fmt.Printf("%-9s result: max delay %8.3f ns   wirelength %9.0f µm   %d wire crossing(s)\n",
		algo, rep.Max*1e9, rep.Wirelength, nontree.Crossings(final))
	if baseline != nil {
		base, err := nontree.MeasureDelay(baseline, params)
		if err != nil {
			return err
		}
		fmt.Printf("vs seed: delay ×%.3f (%.1f%% better), wire ×%.3f (+%.1f%%), %d added edge(s)\n",
			rep.Max/base.Max, 100*(1-rep.Max/base.Max),
			rep.Wirelength/base.Wirelength, 100*(rep.Wirelength/base.Wirelength-1),
			len(added))
		for _, e := range added {
			fmt.Printf("  added wire %v: %.0f µm\n", e, final.EdgeLength(e))
		}
	}

	if svgOut != "" {
		f, err := os.Create(svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.SVG(f, final, added, viz.DefaultStyle()); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgOut)
	}
	return nil
}
