// Package nontree implements non-tree VLSI signal routing after McCoy &
// Robins, "Non-Tree Routing" (DATE 1994): routing topologies that abandon
// the classical tree restriction, adding extra wires to trade capacitance
// for resistance and thereby cut signal propagation delay.
//
// The package is a facade over the internal implementation. A typical
// session:
//
//	net, _ := nontree.GenerateNet(42, 10)      // 10 random pins, n0 = source
//	mstTopo, _ := nontree.MST(net)             // classical seed topology
//	res, _ := nontree.LDRG(mstTopo, nontree.Config{})
//	before, _ := nontree.MeasureDelay(mstTopo, nontree.DefaultParams())
//	after, _ := nontree.MeasureDelay(res.Topology, nontree.DefaultParams())
//	fmt.Printf("max delay %.3g → %.3g ns\n", before.Max*1e9, after.Max*1e9)
//
// Topology constructors: MST, SteinerTree (Iterated 1-Steiner), ERT and
// SERT (Elmore routing trees). Non-tree algorithms: LDRG, SLDRG, H1, H2,
// H3, CriticalSinkLDRG, WireSize, HORG. Delay models: MeasureDelay (the
// SPICE-equivalent transient simulator) and ElmoreDelay (tree or graph).
package nontree

import (
	"errors"
	"fmt"
	"io"

	"nontree/internal/core"
	"nontree/internal/elmore"
	"nontree/internal/embed"
	"nontree/internal/ert"
	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/pdtree"
	"nontree/internal/rc"
	"nontree/internal/spice"
	"nontree/internal/steiner"
	"nontree/internal/trace"
)

// Core types re-exported from the implementation packages.
type (
	// Point is a pin or junction location in the Manhattan plane (µm).
	Point = geom.Point
	// Net is a signal net; Pins[0] is the source.
	Net = netlist.Net
	// Topology is a routing graph over a net's pins (plus Steiner points).
	Topology = graph.Topology
	// Edge is an undirected topology edge by node index.
	Edge = graph.Edge
	// Params is the interconnect technology (driver/wire R, C, L, loads).
	Params = rc.Params
	// Result reports an algorithm run: final topology, added edges, and
	// before/after objective values.
	Result = core.Result
	// SteinerResult additionally carries the Steiner seed tree.
	SteinerResult = core.SLDRGResult
	// WireSizeResult reports a wire-sizing run.
	WireSizeResult = core.WireSizeResult
	// HybridResult reports a HORG run (routing + sizing stages).
	HybridResult = core.HORGResult
	// Recorder receives observability counters and timings from algorithm
	// runs; pass one via Config.Obs. NewMetrics returns the standard
	// implementation.
	Recorder = obs.Recorder
	// Metrics is the concrete thread-safe Recorder; call Snapshot to read
	// its state and Snapshot().Fingerprint() for a canonical rendering of
	// the deterministic sections (see DESIGN.md §10).
	Metrics = obs.Registry
	// MetricsSnapshot is a frozen view of a Metrics recorder.
	MetricsSnapshot = obs.Snapshot
	// Tracer receives structured execution-trace events from algorithm
	// runs; pass one via Config.Trace. NewTraceRing returns the standard
	// ring-buffered implementation.
	Tracer = trace.Tracer
	// TraceEvent is one execution-trace record (canonical JSONL encoding;
	// see DESIGN.md §11).
	TraceEvent = trace.Event
	// TraceRing is the concrete ring-buffered Tracer; call Events to read
	// the retained trace and WriteJSONL to export it.
	TraceRing = trace.Ring
)

// NewMetrics returns an empty metrics recorder for Config.Obs.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTraceRing returns a ring-buffered tracer for Config.Trace retaining
// the last capacity events (capacity <= 0 selects a default).
//
//nontree:allow detflow the ring's wall-clock baseline feeds trace timing fields only; Event.Deterministic excludes them from every comparison (DESIGN.md §11)
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// TraceFingerprint renders the deterministic projection of a trace as
// canonical JSONL — byte-identical across runs with identical decisions at
// any Config.Workers value (DESIGN.md §11).
func TraceFingerprint(events []TraceEvent) string { return trace.Fingerprint(events) }

// DefaultParams returns the paper's Table 1 technology: 100Ω driver,
// 0.03Ω/µm, 0.352fF/µm, 492fH/µm wire, 15.3fF sink loads, 1V supply —
// representative of a 0.8µ CMOS process.
func DefaultParams() Params { return rc.Default() }

// NewNet builds a net from explicit pin locations (source first).
func NewNet(source Point, sinks ...Point) *Net { return netlist.New(source, sinks...) }

// ReadNetJSON parses and validates a net from its JSON encoding.
func ReadNetJSON(r io.Reader) (*Net, error) { return netlist.ReadJSON(r) }

// ReadNetText parses and validates a net from the line-oriented text
// format ("net <name>" and "pin <x> <y>" directives).
func ReadNetText(r io.Reader) (*Net, error) { return netlist.ReadText(r) }

// GenerateNet returns a reproducible random net: numPins pins drawn
// uniformly from the paper's 10mm × 10mm layout region.
func GenerateNet(seed int64, numPins int) (*Net, error) {
	return netlist.NewGenerator(seed).Generate(numPins)
}

// MST builds the minimum spanning tree over the net under the Manhattan
// metric — the classical routing seed every algorithm in the paper starts
// from.
func MST(net *Net) (*Topology, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return mst.Prim(net.Pins)
}

// SteinerTree builds a rectilinear Steiner tree over the net with the
// Iterated 1-Steiner heuristic of Kahng and Robins.
func SteinerTree(net *Net) (*Topology, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return steiner.Tree(net.Pins, steiner.Options{})
}

// ERT builds the Elmore Routing Tree of Boese et al. — the near-optimal
// delay-driven tree baseline.
func ERT(net *Net, p Params) (*Topology, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return ert.Build(net.Pins, p)
}

// SERT builds the Steiner variant of the Elmore Routing Tree.
func SERT(net *Net, p Params) (*Topology, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return ert.BuildSteiner(net.Pins, p)
}

// PDTree builds the Prim–Dijkstra cost–radius tradeoff tree with parameter
// c ∈ [0, 1]: c = 0 is the MST, c = 1 the source-rooted star (minimum
// radius) — the Alpert et al. construction the paper cites as related work.
func PDTree(net *Net, c float64) (*Topology, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return pdtree.Build(net.Pins, c)
}

// BRBC builds the Bounded-Radius Bounded-Cost tree of Cong et al. with
// parameter ε > 0: radius ≤ (1+ε)·R and cost ≤ (1+2/ε)·MST, provably.
func BRBC(net *Net, eps float64) (*Topology, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return pdtree.BRBC(net.Pins, eps)
}

// Oracle selects the delay model steering the greedy algorithms.
type Oracle int

const (
	// OracleElmore uses the general-graph Elmore model — fast, and accurate
	// enough that it selects nearly the same edges as the simulator.
	OracleElmore Oracle = iota
	// OracleSpice evaluates every candidate with the transient circuit
	// simulator, the paper's reference methodology. Much slower.
	OracleSpice
	// OracleTwoPole uses the second-moment (two-pole Padé) model: one extra
	// linear solve per evaluation buys ≈4× better agreement with the
	// simulator than Elmore.
	OracleTwoPole
)

// Config tunes the non-tree algorithms.
type Config struct {
	// Params is the interconnect technology; zero value selects
	// DefaultParams.
	Params Params
	// Oracle selects the steering delay model (default OracleElmore).
	Oracle Oracle
	// MaxAddedEdges bounds the number of extra wires (0 = to convergence).
	MaxAddedEdges int
	// SinkWeights, when non-nil, switches the objective from max sink delay
	// (the ORG problem) to the weighted sum Σ α_i·t(n_i) (the CSORG
	// problem). SinkWeights[i] weights sink pin i+1.
	SinkWeights []float64
	// PlanarOnly restricts greedy edge addition to candidates whose
	// rectilinear embedding avoids crossing existing wires — a
	// routability-constrained variant of the paper's algorithms.
	PlanarOnly bool
	// Workers bounds the goroutines evaluating candidate edges concurrently
	// inside each greedy sweep (0 = one per CPU, 1 = sequential). Results
	// are byte-identical for any value — see DESIGN.md §7 on the
	// concurrency model and determinism guarantee.
	Workers int
	// Obs receives counters and timings from the run (nil = discard).
	// Counter and histogram sections are deterministic for a fixed seed
	// at any Workers value; see DESIGN.md §10.
	Obs Recorder
	// Trace receives the structured decision trace of the run (nil =
	// discard): sweep starts, candidate scores, accepted and rejected
	// edges. Deterministic event fields are byte-identical at any Workers
	// value; use NewTraceRing to capture and TraceFingerprint to render.
	// See DESIGN.md §11.
	Trace Tracer
	// RequestID tags the run with the serving layer's request identity
	// ("" outside a daemon). It is provenance only — propagated into the
	// sweeps' and oracles' error tags so a failure names the request it
	// belongs to, never read by any algorithm decision (DESIGN.md §16).
	RequestID string
}

func (c Config) params() Params {
	if c.Params == (Params{}) {
		return DefaultParams()
	}
	return c.Params
}

func (c Config) coreOptions() core.Options {
	// The tracer is wired into the algorithm layer only, never into the
	// oracles: oracle-level events come from worker goroutines when
	// Workers != 1, which would break the byte-identity guarantee.
	opts := core.Options{MaxAddedEdges: c.MaxAddedEdges, Workers: c.Workers, Obs: c.Obs, Trace: c.Trace, RequestID: c.RequestID}
	switch c.Oracle {
	case OracleSpice:
		opts.Oracle = &core.SpiceOracle{Params: c.params(), Obs: c.Obs, RequestID: c.RequestID}
	case OracleTwoPole:
		opts.Oracle = &core.TwoPoleOracle{Params: c.params(), Obs: c.Obs, RequestID: c.RequestID}
	default:
		opts.Oracle = &core.ElmoreOracle{Params: c.params(), Obs: c.Obs, RequestID: c.RequestID}
	}
	if c.SinkWeights != nil {
		opts.Objective = &core.WeightedDelayObjective{Alphas: c.SinkWeights}
	}
	if c.PlanarOnly {
		opts.CandidateFilter = embed.PlanarFilter
	}
	return opts
}

// LDRG runs the Low Delay Routing Graph algorithm: greedily add edges to
// the seed topology (typically an MST or ERT) while delay improves.
func LDRG(seed *Topology, cfg Config) (*Result, error) {
	return core.LDRG(seed, cfg.coreOptions())
}

// LDRGWithTaps generalizes LDRG toward the paper's full SORG formulation:
// each iteration also considers wiring the source to a fresh Steiner point
// on an existing edge (splitting it), so shortcuts can land mid-edge where
// the resistive bottleneck actually is. It strictly enlarges LDRG's
// candidate space and beats it on most nets at the cost of more
// evaluations.
func LDRGWithTaps(seed *Topology, cfg Config) (*Result, error) {
	return core.LDRGWithTaps(seed, cfg.coreOptions())
}

// FastLDRG runs LDRG under the max-sink-Elmore objective using incremental
// Sherman–Morrison candidate evaluation: identical results to
// LDRG(seed, Config{Oracle: OracleElmore}), roughly an order of magnitude
// faster on large nets. Use it in throughput-sensitive flows (the generic
// LDRG remains the choice for custom objectives, widths, or other oracles).
func FastLDRG(seed *Topology, p Params, maxAddedEdges int) (*Topology, []Edge, error) {
	return elmore.FastLDRG(seed, p, maxAddedEdges)
}

// SLDRG runs the Steiner variant: an Iterated 1-Steiner seed followed by
// greedy edge addition among pins and Steiner points.
func SLDRG(net *Net, cfg Config) (*SteinerResult, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return core.SLDRG(net.Pins, steiner.Options{}, cfg.coreOptions())
}

// H1 connects the source to the worst-delay sink (measured by the
// configured oracle), keeping the wire only if delay improves; iterable.
func H1(seed *Topology, cfg Config) (*Result, error) {
	return core.H1(seed, cfg.coreOptions())
}

// H2 connects the source to the sink with the longest Elmore delay —
// simulator-free, single application, unconditional.
func H2(seed *Topology, cfg Config) (*Result, error) {
	return core.H2(seed, cfg.params(), cfg.coreOptions())
}

// H3 connects the source to the sink maximizing
// (tree pathlength × Elmore delay) / new-edge length — simulator-free.
func H3(seed *Topology, cfg Config) (*Result, error) {
	return core.H3(seed, cfg.params(), cfg.coreOptions())
}

// CriticalSinkLDRG runs LDRG under the CSORG objective with the given sink
// criticalities (alphas[i] weights sink pin i+1).
func CriticalSinkLDRG(seed *Topology, alphas []float64, cfg Config) (*Result, error) {
	return core.CriticalSinkLDRG(seed, alphas, cfg.coreOptions())
}

// CleanupResult reports a cost-recovery pass (see Cleanup).
type CleanupResult = core.CleanupResult

// Cleanup is the cost-recovery post-pass: after non-tree wires have been
// added, greedily remove original edges whose deletion keeps the net
// connected and degrades the objective by at most slack (relative; 0 =
// strict non-degradation), recovering wirelength.
func Cleanup(t *Topology, slack float64, cfg Config) (*CleanupResult, error) {
	return core.Cleanup(t, slack, cfg.coreOptions())
}

// WireSize greedily optimizes integer wire widths on a fixed topology (the
// WSORG problem), up to maxWidth tracks per wire.
func WireSize(t *Topology, maxWidth int, cfg Config) (*WireSizeResult, error) {
	opts := cfg.coreOptions()
	return core.WireSize(t, core.WireSizeOptions{
		Oracle:    opts.Oracle,
		Objective: opts.Objective,
		MaxWidth:  maxWidth,
		Workers:   cfg.Workers,
		Obs:       cfg.Obs,
		Trace:     cfg.Trace,
		RequestID: cfg.RequestID,
	})
}

// HORG runs the hybrid pipeline — Steiner seed (optional), criticality-
// weighted edge addition, then wire sizing — the paper's most general
// formulation.
func HORG(net *Net, alphas []float64, useSteiner bool, maxWidth int, cfg Config) (*HybridResult, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	opts := cfg.coreOptions()
	return core.HORG(net.Pins, alphas, useSteiner, core.WireSizeOptions{MaxWidth: maxWidth, Workers: cfg.Workers, Obs: cfg.Obs, Trace: cfg.Trace, RequestID: cfg.RequestID}, opts)
}

// DelayReport holds measured delays of a topology.
type DelayReport struct {
	// PerSink[i] is the delay (seconds) to sink pin i+1.
	PerSink []float64
	// Max is the worst sink delay — the paper's t(G).
	Max float64
	// Wirelength is the topology cost in µm.
	Wirelength float64
}

// MeasureDelay simulates the topology's step response on the transient
// simulator (distributed RC circuit, 50% threshold) — the package's
// SPICE-equivalent ground-truth measurement.
func MeasureDelay(t *Topology, p Params) (*DelayReport, error) {
	return measureWith(t, &core.SpiceOracle{Params: p})
}

// ElmoreDelay evaluates the topology under the Elmore model (exact Eq. 1
// on trees; transfer-resistance formulation on graphs).
func ElmoreDelay(t *Topology, p Params) (*DelayReport, error) {
	return measureWith(t, &core.ElmoreOracle{Params: p})
}

func measureWith(t *Topology, oracle core.DelayOracle) (*DelayReport, error) {
	if t == nil {
		return nil, errors.New("nontree: nil topology")
	}
	delays, err := oracle.SinkDelays(t, nil)
	if err != nil {
		return nil, fmt.Errorf("nontree: measuring delays: %w", err)
	}
	rep := &DelayReport{Wirelength: t.Cost()}
	for n := 1; n < t.NumPins(); n++ {
		rep.PerSink = append(rep.PerSink, delays[n])
		if delays[n] > rep.Max {
			rep.Max = delays[n]
		}
	}
	return rep, nil
}

// Waveforms simulates the topology and returns the full sink voltage
// waveforms for plotting: sample times and one series per sink pin.
func Waveforms(t *Topology, p Params, horizon float64, samples int) (times []float64, sinks [][]float64, err error) {
	cm, err := rc.BuildCircuit(t, p, rc.BuildOpts{})
	if err != nil {
		return nil, nil, err
	}
	if samples <= 1 {
		samples = 1000
	}
	res, err := spice.Transient(cm.Circuit, spice.TranOpts{
		Step:   horizon / float64(samples),
		Stop:   horizon,
		Record: true,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, node := range cm.SinkNodes {
		sinks = append(sinks, res.V[node])
	}
	return res.Times, sinks, nil
}

// SwitchingEnergy returns the dynamic energy per output transition,
// E = ½·C_total·Vdd² (joules) — the power price of a routing's
// capacitance. Non-tree wires trade energy for delay; this makes the
// third axis of the tradeoff measurable.
func SwitchingEnergy(t *Topology, p Params) (float64, error) {
	return rc.SwitchingEnergy(t, p, nil)
}

// Crossings embeds the topology's wires as rectilinear L-shapes (locally
// optimized orientation) and returns the number of wire crossings — a
// routability indicator for the extra wires non-tree routing adds.
func Crossings(t *Topology) int {
	return embed.Embed(t, embed.Greedy).Crossings()
}

// DelayBounds returns rigorous per-sink bounds on the 50% delay (seconds):
// bounds[i] brackets sink pin i+1's delay as [lower, upper]. The upper
// bound is the Markov bound 2·t_ED; the lower uses the second moment.
func DelayBounds(t *Topology, p Params) (bounds [][2]float64, err error) {
	l, err := rc.Lump(t, p, nil)
	if err != nil {
		return nil, err
	}
	b, err := elmore.Bounds(t, l, 0.5)
	if err != nil {
		return nil, err
	}
	for n := 1; n < t.NumPins(); n++ {
		bounds = append(bounds, [2]float64{b.Lower[n], b.Upper[n]})
	}
	return bounds, nil
}

// MaxSinkElmore is a convenience for the max Elmore sink delay of a
// topology, used pervasively in examples and tests.
func MaxSinkElmore(t *Topology, p Params) (float64, error) {
	l, err := rc.Lump(t, p, nil)
	if err != nil {
		return 0, err
	}
	d, err := elmore.GraphDelays(t, l)
	if err != nil {
		return 0, err
	}
	return elmore.MaxSinkDelay(d, t.NumPins()), nil
}
