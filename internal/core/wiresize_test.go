package core

import (
	"testing"

	"nontree/internal/graph"
)

func TestWireSizeNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		topo := randomMST(t, seed, 12)
		res, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalObjective > res.InitialObjective {
			t.Errorf("seed %d: sizing worsened delay", seed)
		}
		for e, w := range res.Widths {
			if w < 1 || w > 4 {
				t.Errorf("edge %v width %d outside [1,4]", e, w)
			}
		}
	}
}

func TestWireSizeFindsImprovementOnTrees(t *testing.T) {
	// Across a handful of MSTs, sizing should find at least some widenings
	// somewhere (validated interactively: gains of 4-8% are typical).
	totalWidenings := 0
	for seed := int64(0); seed < 8; seed++ {
		topo := randomMST(t, seed, 15)
		res, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		totalWidenings += res.Widenings
	}
	if totalWidenings == 0 {
		t.Error("wire sizing never widened anything across 8 nets")
	}
}

func TestWireSizeWidensNearSource(t *testing.T) {
	// The first widened wire should lie on the source side: verify the
	// widened edge set, if non-empty, contains an edge whose tree path to
	// the source is short relative to the net.
	topo := randomMST(t, 13, 15)
	res, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Widenings == 0 {
		t.Skip("no widenings on this net")
	}
	foundSourceSide := false
	for e, w := range res.Widths {
		if w > 1 && (e.U == 0 || e.V == 0) {
			foundSourceSide = true
		}
	}
	if !foundSourceSide {
		t.Log("no source-incident widened wire (acceptable but atypical)")
	}
}

func TestWireSizeMaxWidthRespected(t *testing.T) {
	topo := randomMST(t, 13, 15)
	res, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for e, w := range res.Widths {
		if w > 2 {
			t.Errorf("edge %v width %d exceeds MaxWidth 2", e, w)
		}
	}
}

func TestWireSizeCostWeightLimitsMetal(t *testing.T) {
	topo := randomMST(t, 13, 15)
	free, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	frugal, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), CostWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// CostWeight steers the search order; both descend greedily until no
	// single widening helps, so final delay may differ but the frugal run
	// must never use more metal for a worse delay simultaneously.
	if MetalArea(topo, frugal.Widths) > MetalArea(topo, free.Widths) &&
		frugal.FinalObjective > free.FinalObjective {
		t.Error("cost-weighted sizing dominated by unweighted on both axes")
	}
}

func TestWireSizeValidation(t *testing.T) {
	topo := randomMST(t, 1, 5)
	if _, err := WireSize(nil, WireSizeOptions{Oracle: elmoreOracle()}); err != ErrSeedNil {
		t.Errorf("nil topology: %v", err)
	}
	if _, err := WireSize(topo, WireSizeOptions{}); err != ErrNilOracle {
		t.Errorf("nil oracle: %v", err)
	}
	if _, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 1}); err == nil {
		t.Error("MaxWidth 1 must error")
	}
	disconnected := graph.NewTopology(topo.Points())
	if _, err := WireSize(disconnected, WireSizeOptions{Oracle: elmoreOracle()}); err != ErrSeedInvalid {
		t.Errorf("disconnected: %v", err)
	}
}

func TestMetalArea(t *testing.T) {
	topo := randomMST(t, 2, 5)
	// Unit widths: MetalArea == Cost.
	if MetalArea(topo, nil) != topo.Cost() {
		t.Error("unit metal area must equal wirelength")
	}
	widths := map[graph.Edge]int{}
	for _, e := range topo.Edges() {
		widths[e] = 2
	}
	if MetalArea(topo, widths) != 2*topo.Cost() {
		t.Error("doubling widths must double metal area")
	}
}

func TestWidthFuncDefaultsToUnit(t *testing.T) {
	res := &WireSizeResult{Widths: map[graph.Edge]int{{U: 0, V: 1}: 3}}
	fn := res.WidthFunc()
	if fn(graph.Edge{U: 1, V: 0}) != 3 {
		t.Error("canonicalization broken in WidthFunc")
	}
	if fn(graph.Edge{U: 4, V: 5}) != 1 {
		t.Error("unknown edge must default to width 1")
	}
}

func TestHORGPipeline(t *testing.T) {
	net := randomNet(t, 17, 10)
	alphas := UniformCriticality(len(net.Pins))
	for _, useSteiner := range []bool{false, true} {
		res, err := HORG(net.Pins, alphas, useSteiner,
			WireSizeOptions{MaxWidth: 3}, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatalf("steiner=%v: %v", useSteiner, err)
		}
		if res.Sizing.FinalObjective > res.Routing.InitialObjective {
			t.Errorf("steiner=%v: HORG ended worse than it started", useSteiner)
		}
		if res.FinalObjective() != res.Sizing.FinalObjective {
			t.Error("FinalObjective accessor inconsistent")
		}
		if !res.Routing.Topology.Connected() {
			t.Error("HORG routing disconnected")
		}
	}
}

func TestHORGValidation(t *testing.T) {
	net := randomNet(t, 1, 6)
	if _, err := HORG(net.Pins, []float64{1}, false, WireSizeOptions{}, Options{Oracle: elmoreOracle()}); err == nil {
		t.Error("mismatched alphas must be rejected")
	}
}
