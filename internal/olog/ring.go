package olog

import (
	"io"
	"sync"
)

// Unlike trace.Ring, this ring never reads the clock: the serve layer
// stamps every timing through the sanctioned obs helpers before handing
// the event over, so package olog is trivially clean under the
// nondetsource analyzer.

// DefaultRingCapacity is the event capacity NewRing uses for
// capacity <= 0 — one event per request, so this is the window of recent
// requests a long-lived daemon keeps inspectable at /logs.
const DefaultRingCapacity = 1024

// Ring is a bounded buffer of wide events keeping the most recent
// requests. Append assigns monotonically increasing sequence numbers, so
// even after wraparound the retained tail reports how much history it
// lost (Dropped). Safe for concurrent use.
//
// Lock order: mu is a leaf lock — no Ring method calls out of the
// package while holding it, so it can safely be acquired under any
// caller's lock. The lockorder analyzer verifies this nesting stays
// acyclic (DESIGN.md §14).
type Ring struct {
	mu sync.Mutex
	//nontree:guardedby mu
	buf []Event
	// head is the index of the oldest retained event.
	//nontree:guardedby mu
	head int
	//nontree:guardedby mu
	size int
	//nontree:guardedby mu
	seq int64
	//nontree:guardedby mu
	dropped int64
}

// NewRing returns a ring retaining the last capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append assigns the next sequence number and appends the event,
// evicting the oldest when full. It reports whether an event was
// evicted, so the caller can account the eviction.
func (r *Ring) Append(e Event) (evicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.Seq = r.seq
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		r.size++
		return false
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
	return true
}

// Find returns the retained event for the given request ID. The scan
// runs newest-first so a (never expected) duplicated ID resolves to the
// most recent event.
func (r *Ring) Find(requestID string) (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := r.size - 1; i >= 0; i-- {
		e := r.buf[(r.head+i)%len(r.buf)]
		if e.RequestID == requestID {
			return e, true
		}
	}
	return Event{}, false
}

// Events returns the retained events, oldest first. The slice is a copy.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Dropped returns how many events were evicted by wraparound; zero means
// Events holds the daemon's complete request history.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteJSONL writes the retained events as canonical JSONL.
func (r *Ring) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Events())
}

// Fingerprint renders the deterministic projection of the retained
// events; see the package-level Fingerprint.
func (r *Ring) Fingerprint() string {
	return Fingerprint(r.Events())
}
