// Package goroleak flags `go` statements with no reachable join in the
// spawning function: after the spawn, some path must reach a
// sync.WaitGroup Wait call, a channel receive, or a range over a channel
// — otherwise nothing in the function observes the goroutine's
// completion, the shape of every goroutine leak the worker-pool engine
// and the serve daemon must never grow (DESIGN.md §7, §11).
//
// The join search is intra-procedural over the internal/analysis/cfg
// graph: the rest of the spawning block plus every block reachable from
// it. Function literals are skipped (they run elsewhere), except
// immediately-invoked ones; deferred calls count (they run at function
// exit, on the spawning goroutine). A goroutine whose join is genuinely
// elsewhere — handed to the caller, joined by process shutdown — carries
// a justified //nontree:allow goroleak annotation.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"nontree/internal/analysis"
	"nontree/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "every go statement needs a reachable join: WaitGroup.Wait, channel receive, or range over a channel",
	Run:  run,
	Scope: []string{
		"internal/core",
		"internal/elmore",
		"internal/spice",
		"internal/graph",
		"internal/serve",
		"internal/trace",
		"internal/obs",
		"internal/expt",
		"cmd/nontree-serve",
		"cmd/nontree-bench",
		"internal/sim",
		"cmd/nontree-sim",
	},
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkFunc(lit.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// checkFunc reports joinless go statements appearing directly in one
// function body (go statements inside nested literals belong to the
// literal's own unit).
func (c *checker) checkFunc(body *ast.BlockStmt) {
	hasGo := false
	for _, stmt := range flatten(body) {
		if _, ok := stmt.(*ast.GoStmt); ok {
			hasGo = true
			break
		}
	}
	if !hasGo {
		return
	}
	g := cfg.New(body)
	// A deferred join (defer wg.Wait(), or a deferred literal containing
	// one) runs at function exit — after every spawn the function executes
	// — so one reachable deferred join covers the whole unit.
	deferJoin := false
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok && c.joinIn(d) {
				deferJoin = true
			}
		}
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			if !deferJoin && !c.joinReachable(g, b, i) {
				c.pass.Reportf(gs.Pos(), "goroutine is never joined on any path from its spawn: add a WaitGroup.Wait, channel receive, or range over a channel, or annotate //nontree:allow goroleak")
			}
		}
	}
}

// flatten is a cheap pre-filter: every statement node in the body,
// excluding function literal interiors.
func flatten(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}

// joinReachable scans the remainder of the spawning block and everything
// reachable from it for a join construct.
func (c *checker) joinReachable(g *cfg.Graph, start *cfg.Block, idx int) bool {
	for _, n := range start.Nodes[idx+1:] {
		if c.joinIn(n) {
			return true
		}
	}
	seen := make([]bool, len(g.Blocks))
	seen[start.Index] = true
	stack := append([]*cfg.Block(nil), start.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		if rs, ok := b.Ctrl.(*ast.RangeStmt); ok && c.isChannel(rs.X) {
			return true
		}
		for _, n := range b.Nodes {
			if c.joinIn(n) {
				return true
			}
		}
		stack = append(stack, b.Succs...)
	}
	return false
}

// joinIn reports whether one node contains a join: a WaitGroup.Wait call
// or a channel receive. Function literals are skipped unless immediately
// invoked; deferred calls are inspected (they run at function exit).
func (c *checker) joinIn(node ast.Node) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if found {
				return false
			}
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if lit, ok := x.Fun.(*ast.FuncLit); ok {
					walk(lit.Body) // immediately invoked: runs here
				}
				if c.isWaitCall(x) {
					found = true
					return false
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					found = true
					return false
				}
			}
			return true
		})
	}
	walk(node)
	return found
}

// isWaitCall reports whether call is (*sync.WaitGroup).Wait.
func (c *checker) isWaitCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	t := c.pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isChannel reports whether e has channel type.
func (c *checker) isChannel(e ast.Expr) bool {
	t := c.pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
