package expt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nontree/internal/sim"
)

// writeTrendArtifact writes v as JSON under dir with the given basename.
func writeTrendArtifact(t *testing.T, dir, base string, v interface{}) string {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, base)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchArtifact(meanDelay, meanCost float64, evals int64, walls float64) *BenchReport {
	return &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Aggregates: map[string]BenchAggregate{
			"ldrg": {
				Entries:                3,
				MeanDelayRatio:         meanDelay,
				MeanCostRatio:          meanCost,
				TotalOracleEvaluations: evals,
				TotalWallSeconds:       walls,
			},
		},
	}
}

func simArtifact(p50, p99, qps float64, requests int64) *sim.Report {
	r := &sim.Report{SchemaVersion: sim.SimSchemaVersion}
	r.Totals.Requests = requests
	r.Totals.ThroughputQPS = qps
	r.Totals.Latency.P50 = p50
	r.Totals.Latency.P99 = p99
	return r
}

func TestTrendAcrossBenchAndSim(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeTrendArtifact(t, dir, "BENCH_PR4.json", benchArtifact(0.85, 1.20, 400, 2.0)),
		writeTrendArtifact(t, dir, "BENCH_PR6.json", benchArtifact(0.85, 1.20, 100, 1.5)),
		writeTrendArtifact(t, dir, "SIM_PR9.json", simArtifact(0.002, 0.009, 430, 256)),
	}
	report, err := Trend(paths)
	if err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != TrendSchemaVersion {
		t.Errorf("schema = %d, want %d", report.SchemaVersion, TrendSchemaVersion)
	}
	if len(report.Artifacts) != 3 {
		t.Fatalf("artifacts = %+v", report.Artifacts)
	}
	wantArts := []TrendArtifact{
		{Label: "BENCH_PR4.json", Kind: "bench", SchemaVersion: BenchSchemaVersion},
		{Label: "BENCH_PR6.json", Kind: "bench", SchemaVersion: BenchSchemaVersion},
		{Label: "SIM_PR9.json", Kind: "sim", SchemaVersion: sim.SimSchemaVersion},
	}
	for i, want := range wantArts {
		if report.Artifacts[i] != want {
			t.Errorf("artifact %d = %+v, want %+v", i, report.Artifacts[i], want)
		}
	}

	byName := make(map[string]TrendMetric, len(report.Metrics))
	var names []string
	for _, m := range report.Metrics {
		byName[m.Name] = m
		names = append(names, m.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("metrics not sorted by name: %v", names)
	}

	// The optimization story: evaluations went from 400 to 100 and the
	// ratio records the 4× reduction; decisions (delay ratio) unchanged.
	evals, ok := byName["bench.ldrg.oracle_evaluations"]
	if !ok {
		t.Fatalf("no oracle_evaluations metric; have %v", names)
	}
	if len(evals.Values) != 3 || evals.Values[0] == nil || evals.Values[1] == nil || evals.Values[2] != nil {
		t.Fatalf("oracle_evaluations values = %v (want bench columns only)", evals.Values)
	}
	if *evals.Values[0] != 400 || *evals.Values[1] != 100 {
		t.Errorf("oracle_evaluations = %g, %g", *evals.Values[0], *evals.Values[1])
	}
	if evals.First != 400 || evals.Last != 100 || evals.Ratio == nil || *evals.Ratio != 0.25 {
		t.Errorf("oracle_evaluations trend = first %g last %g ratio %v", evals.First, evals.Last, evals.Ratio)
	}

	// Sim metrics occupy only the sim column.
	p99, ok := byName["sim.latency.p99_s"]
	if !ok {
		t.Fatalf("no sim p99 metric; have %v", names)
	}
	if p99.Values[0] != nil || p99.Values[1] != nil || p99.Values[2] == nil || *p99.Values[2] != 0.009 {
		t.Errorf("sim p99 values = %v", p99.Values)
	}
	if p99.First != 0.009 || p99.Last != 0.009 || p99.Ratio == nil || *p99.Ratio != 1 {
		t.Errorf("sim p99 trend = first %g last %g ratio %v", p99.First, p99.Last, p99.Ratio)
	}

	// A metric whose first value is zero carries no ratio.
	errRate := byName["sim.error_rate"]
	if errRate.Ratio != nil {
		t.Errorf("zero-first metric has ratio %v", *errRate.Ratio)
	}

	// The rendered table names every artifact and metric.
	var buf bytes.Buffer
	if err := report.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BENCH_PR4.json", "SIM_PR9.json", "bench.ldrg.mean_delay_ratio", "sim.throughput_qps"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table lacks %q:\n%s", want, out)
		}
	}
}

func TestTrendJSONRoundTripAndStability(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeTrendArtifact(t, dir, "BENCH_A.json", benchArtifact(0.9, 1.1, 50, 1.0)),
		writeTrendArtifact(t, dir, "SIM_A.json", simArtifact(0.001, 0.004, 900, 128)),
	}
	report, err := Trend(paths)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := report.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	// Regenerating from the same inputs is byte-identical — the property
	// the committed TREND artifact's regression test relies on.
	again, err := Trend(paths)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := again.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("trend output unstable:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
	}

	out := filepath.Join(dir, "TREND.json")
	if err := os.WriteFile(out, first.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrendReport(out)
	if err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	if err := loaded.WriteJSON(&third); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), third.Bytes()) {
		t.Fatalf("load→write drifted:\n%s\nvs\n%s", first.Bytes(), third.Bytes())
	}
}

func TestTrendRejectsDriftAndUnknownArtifacts(t *testing.T) {
	dir := t.TempDir()

	// A bench artifact from a future schema is refused, not misread.
	future := benchArtifact(0.9, 1.1, 50, 1.0)
	future.SchemaVersion = BenchSchemaVersion + 1
	bad := writeTrendArtifact(t, dir, "BENCH_FUTURE.json", future)
	if _, err := Trend([]string{bad}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future bench schema accepted: %v", err)
	}

	// Same for sim artifacts.
	futureSim := simArtifact(0.001, 0.004, 900, 128)
	futureSim.SchemaVersion = sim.SimSchemaVersion + 1
	badSim := writeTrendArtifact(t, dir, "SIM_FUTURE.json", futureSim)
	if _, err := Trend([]string{badSim}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future sim schema accepted: %v", err)
	}

	// Unclassifiable basenames are refused.
	odd := writeTrendArtifact(t, dir, "NOTES.json", benchArtifact(0.9, 1.1, 50, 1.0))
	if _, err := Trend([]string{odd}); err == nil || !strings.Contains(err.Error(), "classify") {
		t.Errorf("unclassifiable artifact accepted: %v", err)
	}

	// An empty path list is an error, not an empty report.
	if _, err := Trend(nil); err == nil {
		t.Error("empty artifact list accepted")
	}

	// A trend report from a future schema is refused on load.
	report, err := Trend([]string{writeTrendArtifact(t, dir, "BENCH_OK.json", benchArtifact(0.9, 1.1, 50, 1.0))})
	if err != nil {
		t.Fatal(err)
	}
	report.SchemaVersion = TrendSchemaVersion + 1
	drifted := filepath.Join(dir, "TREND_FUTURE.json")
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(drifted, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrendReport(drifted); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future trend schema accepted: %v", err)
	}
}
