package fpcmp

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 1.5e-9, 1.5e-9, true},
		{"ulp apart", 1.5e-9, math.Nextafter(1.5e-9, 1), true},
		{"clearly different", 1.5e-9, 1.6e-9, false},
		{"zero zero", 0, 0, true},
		{"zero vs tiny", 0, 1e-13, true},
		{"zero vs small", 0, 1e-9, false},
		{"large equal-ish", 1e12, 1e12 * (1 + 1e-13), true},
		{"large different", 1e12, 1.000001e12, false},
		{"inf same sign", math.Inf(1), math.Inf(1), true},
		{"inf opposite", math.Inf(1), math.Inf(-1), false},
		{"inf vs finite", math.Inf(1), 1e300, false},
		{"nan", math.NaN(), math.NaN(), false},
		{"nan vs zero", math.NaN(), 0, false},
		{"sign straddle", -1e-13, 1e-13, true},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("%s: Eq(%g, %g) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := Eq(c.b, c.a); got != c.want {
			t.Errorf("%s: Eq not symmetric for (%g, %g)", c.name, c.a, c.b)
		}
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(1.0, 1.009, 0.01) {
		t.Error("EqTol(1.0, 1.009, 0.01) should hold")
	}
	if EqTol(1.0, 1.02, 0.01) {
		t.Error("EqTol(1.0, 1.02, 0.01) should not hold")
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-15) || !Zero(-1e-15) {
		t.Error("Zero should accept values within tolerance of 0")
	}
	if Zero(1e-9) || Zero(math.Inf(1)) || Zero(math.NaN()) {
		t.Error("Zero should reject distinctly nonzero values")
	}
}
