package goroleak_test

import (
	"testing"

	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "a")
}
