package expt

import (
	"strings"
	"testing"
)

func gateFixture() (*BenchReport, *BenchReport) {
	entry := func(algo string, trial, evals int) BenchEntry {
		return BenchEntry{
			Algorithm: algo, Size: 10, Trial: trial,
			SeedDelay: 2e-9, FinalDelay: 1.5e-9,
			SeedCost: 100, FinalCost: 140,
			Accepted: 2, OracleEvaluations: evals,
		}
	}
	baseline := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Entries: []BenchEntry{
			entry("ldrg", 0, 400), entry("ldrg", 1, 600),
			entry("sldrg", 0, 500),
			entry("h1", 0, 30),
		},
	}
	cur := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Entries: []BenchEntry{
			entry("ldrg", 0, 40), entry("ldrg", 1, 60),
			entry("sldrg", 0, 50),
			entry("h1", 0, 30),
		},
	}
	return cur, baseline
}

func TestRegressGatePasses(t *testing.T) {
	cur, baseline := gateFixture()
	if v := RegressGate(cur, baseline, DefaultEvalBudgets()); len(v) != 0 {
		t.Fatalf("clean gate reported violations: %v", v)
	}
}

func TestRegressGateCatchesQualityDrift(t *testing.T) {
	cur, baseline := gateFixture()
	cur.Entries[0].FinalDelay *= 1 + 1e-15 // one ulp-scale nudge must trip it
	v := RegressGate(cur, baseline, DefaultEvalBudgets())
	if len(v) != 1 || !strings.Contains(v[0], "final_delay_s drifted") {
		t.Fatalf("want exactly one final_delay drift violation, got %v", v)
	}
}

func TestRegressGateCatchesAcceptedDrift(t *testing.T) {
	cur, baseline := gateFixture()
	cur.Entries[2].Accepted++
	v := RegressGate(cur, baseline, DefaultEvalBudgets())
	if len(v) != 1 || !strings.Contains(v[0], "accepted drifted") {
		t.Fatalf("want exactly one accepted drift violation, got %v", v)
	}
}

func TestRegressGateCatchesEvalBudgetBreach(t *testing.T) {
	cur, baseline := gateFixture()
	// 300/1000 > 25%: a silent fallback to full solves must fail even
	// though every quality field still matches.
	cur.Entries[0].OracleEvaluations = 300
	cur.Entries[1].OracleEvaluations = 0
	v := RegressGate(cur, baseline, DefaultEvalBudgets())
	if len(v) != 1 || !strings.Contains(v[0], "ldrg") || !strings.Contains(v[0], "exceeds") {
		t.Fatalf("want exactly one ldrg budget violation, got %v", v)
	}
}

func TestRegressGateIgnoresUnsharedEntries(t *testing.T) {
	cur, baseline := gateFixture()
	// The current run has fewer trials than the baseline: extra baseline
	// entries are not violations (quick CI gating against a full artifact),
	// and budgets compare only the shared subset.
	cur.Entries = cur.Entries[:1] // ldrg trial 0 only: 40 <= 0.25*400
	if v := RegressGate(cur, baseline, []EvalBudget{{Algorithm: "ldrg", MaxFraction: 0.25}}); len(v) != 0 {
		t.Fatalf("partial run should gate cleanly, got %v", v)
	}
}

func TestRegressGateRejectsDisjointRuns(t *testing.T) {
	cur, baseline := gateFixture()
	for i := range cur.Entries {
		cur.Entries[i].Size = 999
	}
	v := RegressGate(cur, baseline, nil)
	if len(v) != 1 || !strings.Contains(v[0], "no entries shared") {
		t.Fatalf("disjoint runs must be a gate error, got %v", v)
	}
}

func TestRegressGateFlagsMissingBaselineAlgorithm(t *testing.T) {
	cur, baseline := gateFixture()
	v := RegressGate(cur, baseline, []EvalBudget{{Algorithm: "wsorg", MaxFraction: 0.25}})
	if len(v) != 1 || !strings.Contains(v[0], "wsorg") {
		t.Fatalf("budget naming an absent algorithm must be flagged, got %v", v)
	}
}
