// Package elmore is a minimal stand-in for nontree/internal/elmore's
// Incremental evaluator: same probe/Refactor protocol surface, matched by
// the analyzer through name and package name.
package elmore

import "graph"

// Incremental answers delay probes against one factorization of the
// topology; Refactor re-establishes it after a committed mutation.
type Incremental struct{ epoch int }

// NewIncremental factors the current topology.
func NewIncremental(t *graph.Topology) (*Incremental, error) {
	return &Incremental{}, nil
}

// Refactor re-factors after a committed mutation.
func (inc *Incremental) Refactor() error {
	inc.epoch++
	return nil
}

// WithEdge probes the delay vector with one extra edge.
func (inc *Incremental) WithEdge(e graph.Edge) ([]float64, error) { return nil, nil }

// WithWiden probes with one edge widened.
func (inc *Incremental) WithWiden(e graph.Edge) ([]float64, error) { return nil, nil }

// WithTap probes with a mid-edge tap.
func (inc *Incremental) WithTap(e graph.Edge, x, y int) ([]float64, error) { return nil, nil }

// AdditionBound lower-bounds an addition's improvement.
func (inc *Incremental) AdditionBound(e graph.Edge) float64 { return 0 }

// WideningBound lower-bounds a widening's improvement.
func (inc *Incremental) WideningBound(e graph.Edge) float64 { return 0 }

// BestAddition scans candidates for the best addition.
func (inc *Incremental) BestAddition(min float64) (graph.Edge, float64, bool, error) {
	return graph.Edge{}, 0, false, nil
}

// BaseDelays returns the base-state delay vector.
func (inc *Incremental) BaseDelays() []float64 { return nil }
