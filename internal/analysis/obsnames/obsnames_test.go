package obsnames_test

import (
	"testing"

	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/obsnames"
)

func TestObsnames(t *testing.T) {
	analysistest.Run(t, obsnames.Analyzer, "a")
}
