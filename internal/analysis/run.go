package analysis

import (
	"fmt"
	"io"
)

// Run loads the packages matched by patterns (resolved in dir, or the
// working directory when dir is empty), applies every analyzer whose Scope
// matches each package, writes the sorted diagnostics to w, and returns
// them. A non-nil error reports an operational failure (unparseable source,
// type errors, go list failure) — not findings.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	loader := NewLoader()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.InScope(pkg.Path) {
				continue
			}
			ds, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, ds...)
		}
	}
	SortDiagnostics(all)
	for _, d := range all {
		fmt.Fprintln(w, d)
	}
	return all, nil
}
