// Package pfdep is the dependency side of the cross-package purity
// fixture: Bump's global write must travel to importers as a fact.
package pfdep

var Counter int

// Bump mutates package state.
func Bump() int {
	Counter++
	return Counter
}

// Pure is effect-free.
func Pure(x int) int { return x * 2 }
