package obs

import "time"

// This file is the only place in the instrumented call graph that reads
// the wall clock. Algorithm packages (core, elmore, spice, expt) are
// forbidden from calling time.Now directly by the nondetsource analyzer;
// they start spans and stopwatches through these helpers instead, and the
// resulting durations land exclusively in the Timings section that every
// determinism comparison ignores.

// Span measures one wall-clock interval. The zero value is inert.
type Span struct {
	r     Recorder
	name  string
	start time.Time
}

// StartSpan begins timing a named span against r. When r is nil or the
// no-op recorder, no clock is read and End does nothing.
func StartSpan(r Recorder, name string) Span {
	if r == nil {
		return Span{}
	}
	if _, nop := r.(Nop); nop {
		return Span{}
	}
	//nontree:allow nondetsource the one sanctioned span clock read; durations land only in the Timings section, which every determinism comparison ignores (DESIGN.md §10)
	return Span{r: r, name: name, start: time.Now()}
}

// End records the span's duration in seconds under its name.
func (s Span) End() {
	if s.r == nil {
		return
	}
	//nontree:allow nondetsource closes the span clock read above; feeds Timings only (DESIGN.md §10)
	s.r.ObserveDuration(s.name, time.Since(s.start).Seconds())
}

// Stopwatch returns a function reporting the seconds elapsed since the
// call — for harness code that reports wall time in result fields rather
// than through a Recorder. The value must only ever feed reporting, never
// an algorithmic decision.
func Stopwatch() func() float64 {
	//nontree:allow nondetsource harness stopwatch; readings are reporting-only by contract (doc comment above)
	start := time.Now()
	//nontree:allow nondetsource harness stopwatch readout; reporting-only by contract
	return func() float64 { return time.Since(start).Seconds() }
}
