// Package a exercises the oraclesafety analyzer: SinkDelays/Evaluate/Eval
// methods must not write receiver fields or package-level variables.
package a

type topo struct{ n int }

var evalCount int // package-level state shared by every goroutine

// cachingOracle memoizes into receiver fields — the classic violation.
type cachingOracle struct {
	scratch []float64
	calls   int
	last    *topo
}

func (o *cachingOracle) SinkDelays(t *topo) ([]float64, error) {
	o.calls++ // want `updates receiver state o.calls in SinkDelays`
	if cap(o.scratch) < t.n {
		o.scratch = make([]float64, t.n) // want `writes receiver state o.scratch in SinkDelays`
	}
	o.last = t       // want `writes receiver state o.last in SinkDelays`
	evalCount++      // want `updates package-level variable evalCount in SinkDelays`
	buf := o.scratch // reading receiver state is fine
	for i := range buf {
		buf[i] = 0 // alias write: documented analyzer blind spot, race tests cover it
	}
	return buf[:t.n], nil
}

// cleanOracle allocates per call — the documented convention.
type cleanOracle struct {
	gain float64 // read-only after construction
}

func (o *cleanOracle) SinkDelays(t *topo) ([]float64, error) {
	buf := make([]float64, t.n)
	for i := range buf {
		buf[i] = o.gain * float64(i)
	}
	return buf, nil
}

// valueObjective writes only locals and its value receiver copy.
type valueObjective struct{ scale float64 }

func (v valueObjective) Eval(delays []float64) (float64, error) {
	v = valueObjective{scale: v.scale * 2} // rebinding the local copy is harmless
	worst := 0.0
	for _, d := range delays {
		if d*v.scale > worst {
			worst = d * v.scale
		}
	}
	return worst, nil
}

// elementWrites flags writes through receiver fields at any depth.
type elementWrites struct {
	hist map[int]int
	rows [][]float64
}

func (o *elementWrites) Evaluate(t *topo) float64 {
	o.hist[t.n]++    // want `updates receiver state o.hist\[...\] in Evaluate`
	o.rows[0][0] = 1 // want `writes receiver state o.rows\[...\]\[...\] in Evaluate`
	return 0
}

// Incremental here is NOT the sanctioned elmore.Incremental — the
// exception is keyed on the package path, so this one is still flagged.
type Incremental struct{ state float64 }

func (inc *Incremental) Evaluate(t *topo) float64 {
	inc.state++ // want `updates receiver state inc.state in Evaluate`
	return inc.state
}

// annotated documents a deliberate exemption.
type annotated struct{ hits int }

func (a *annotated) Eval(delays []float64) (float64, error) {
	a.hits++ //nontree:allow oraclesafety metrics counter guarded by an atomic in the real implementation
	return 0, nil
}

// otherMethod is outside the contract: arbitrary methods may mutate.
func (o *cachingOracle) Reset() {
	o.calls = 0
	o.scratch = nil
}
