package core

import (
	"testing"
)

func TestLDRGWithTapsNeverWorseThanPlainLDRG(t *testing.T) {
	// Taps strictly enlarge the candidate space, and both greedies accept
	// only improving moves, so the tap variant's final objective must not
	// exceed plain LDRG's initial-to-final envelope; per-step greediness
	// means the final values can differ either way in principle, but the
	// tap run must at minimum never worsen its own seed.
	better, worse := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		topo := randomMST(t, seed, 12)
		plain, err := LDRG(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		taps, err := LDRGWithTaps(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if taps.FinalObjective > taps.InitialObjective {
			t.Errorf("seed %d: tap variant worsened its seed", seed)
		}
		switch {
		case taps.FinalObjective < plain.FinalObjective*(1-1e-9):
			better++
		case taps.FinalObjective > plain.FinalObjective*(1+1e-9):
			worse++
		}
	}
	t.Logf("taps vs plain over 8 nets: %d better, %d worse", better, worse)
	if better == 0 && worse > 0 {
		t.Error("tap candidates never helped and sometimes hurt; expected the opposite trend")
	}
}

func TestLDRGWithTapsProducesValidTopology(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		topo := randomMST(t, seed, 10)
		res, err := LDRGWithTaps(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Topology.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		// No isolated Steiner nodes may survive compaction.
		for n := res.Topology.NumPins(); n < res.Topology.NumNodes(); n++ {
			if res.Topology.Degree(n) == 0 {
				t.Fatalf("seed %d: isolated Steiner node %d survived", seed, n)
			}
		}
		// Pins preserved in order.
		for n := 0; n < topo.NumPins(); n++ {
			if !res.Topology.Point(n).Eq(topo.Point(n)) {
				t.Fatalf("seed %d: pin %d moved", seed, n)
			}
		}
		// Every recorded added edge exists in the final topology.
		for _, e := range res.AddedEdges {
			if !res.Topology.HasEdge(e) {
				t.Fatalf("seed %d: recorded edge %v missing", seed, e)
			}
		}
	}
}

func TestLDRGWithTapsSeedUnchanged(t *testing.T) {
	topo := randomMST(t, 3, 10)
	edges, cost := topo.NumEdges(), topo.Cost()
	if _, err := LDRGWithTaps(topo, Options{Oracle: elmoreOracle()}); err != nil {
		t.Fatal(err)
	}
	if topo.NumEdges() != edges || topo.Cost() != cost || topo.NumNodes() != 10 {
		t.Error("seed topology mutated")
	}
}

func TestLDRGWithTapsEdgeBudget(t *testing.T) {
	topo := randomMST(t, 7, 15)
	res, err := LDRGWithTaps(topo, Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AddedEdges) > 1 {
		t.Errorf("budget exceeded: %v", res.AddedEdges)
	}
}
