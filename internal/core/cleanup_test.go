package core

import (
	"testing"
)

func TestCleanupOnTreeRemovesNothing(t *testing.T) {
	topo := randomMST(t, 3, 10)
	res, err := Cleanup(topo, 0, Options{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedEdges) != 0 {
		t.Errorf("tree edges are bridges; removed %v", res.RemovedEdges)
	}
	if res.CostRecovered != 0 {
		t.Errorf("recovered %v from a tree", res.CostRecovered)
	}
}

func TestCleanupNeverWorsensBeyondSlack(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		topo := randomMST(t, seed, 15)
		ldrg, err := LDRG(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Cleanup(ldrg.Topology, 0.05, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalObjective > res.InitialObjective*1.05+1e-18 {
			t.Errorf("seed %d: cleanup exceeded slack: %.4g → %.4g",
				seed, res.InitialObjective, res.FinalObjective)
		}
		if !res.Topology.Connected() {
			t.Fatalf("seed %d: cleanup disconnected the net", seed)
		}
		if res.CostRecovered > 0 && len(res.RemovedEdges) == 0 {
			t.Error("bookkeeping mismatch")
		}
	}
}

func TestCleanupRecoversWireSomewhere(t *testing.T) {
	// With a 5% delay slack, at least one net in a batch should allow some
	// cost recovery after LDRG additions.
	recovered := 0.0
	for seed := int64(0); seed < 12; seed++ {
		topo := randomMST(t, seed, 15)
		ldrg, err := LDRG(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if len(ldrg.AddedEdges) == 0 {
			continue
		}
		res, err := Cleanup(ldrg.Topology, 0.05, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		recovered += res.CostRecovered
	}
	if recovered == 0 {
		t.Log("no wire recovered across 12 nets (possible but atypical)")
	}
}

func TestCleanupDoesNotMutateInput(t *testing.T) {
	topo := randomMST(t, 5, 10)
	ldrg, err := LDRG(topo, Options{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	edges := ldrg.Topology.NumEdges()
	if _, err := Cleanup(ldrg.Topology, 0.1, Options{Oracle: elmoreOracle()}); err != nil {
		t.Fatal(err)
	}
	if ldrg.Topology.NumEdges() != edges {
		t.Error("cleanup mutated its input")
	}
}

func TestCleanupValidation(t *testing.T) {
	topo := randomMST(t, 1, 5)
	if _, err := Cleanup(topo, -1, Options{Oracle: elmoreOracle()}); err == nil {
		t.Error("negative slack must be rejected")
	}
	if _, err := Cleanup(nil, 0, Options{Oracle: elmoreOracle()}); err != ErrSeedNil {
		t.Error("nil seed must be rejected")
	}
	if _, err := Cleanup(topo, 0, Options{}); err != ErrNilOracle {
		t.Error("nil oracle must be rejected")
	}
}
