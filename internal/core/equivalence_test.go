package core

import (
	"fmt"
	"runtime"
	"testing"

	"nontree/internal/steiner"
	"nontree/internal/trace"
)

// This file is the equivalence layer locking down incremental scoring:
// every sweep algorithm, run with the full-solve reference path and with
// incremental scoring plus pruning, must make byte-identical decisions —
// same Result fingerprint, same accepted-edge sequence in the trace — at
// every worker count. Workers is part of the grid even though incremental
// sweeps scan sequentially: the contract is that Workers NEVER changes
// decisions, whichever scoring path it ends up steering.

// eqRun is one algorithm invocation under a scoring mode and worker count.
// It returns the result fingerprint plus the trace's accepted edges.
type eqRun func(t *testing.T, scoring Scoring, workers int, tr trace.Tracer) string

func acceptedOf(t *testing.T, label string, fn func(tr trace.Tracer) error) []trace.AcceptedEdge {
	t.Helper()
	return trace.AcceptedEdges(traceOf(t, label, 1<<16, fn))
}

// TestScoringEquivalence is the table: each algorithm's ScoringFull
// Workers=1 run is the reference; ScoringAuto (incremental + pruning) and
// parallel ScoringFull runs must match it exactly.
func TestScoringEquivalence(t *testing.T) {
	topo := randomMST(t, 6001, 12)
	tapTopo := randomMST(t, 6002, 9)
	net := randomNet(t, 6003, 10)
	params := elmoreOracle().Params
	alphas := UniformCriticality(12)

	algos := []struct {
		name string
		run  eqRun
	}{
		{"LDRG", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := LDRG(topo, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"SLDRG", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := SLDRG(net.Pins, steiner.Options{}, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"LDRGWithTaps", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := LDRGWithTaps(tapTopo, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"CriticalSinkLDRG", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := CriticalSinkLDRG(topo, alphas, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"H1", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := H1(topo, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"H2", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := H2(topo, params, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"H3", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := H3(topo, params, Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"WireSize", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 3, Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"WireSizeCostWeighted", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := WireSize(topo, WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 3, CostWeight: 0.5, Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fingerprint()
		}},
		{"HORG", func(t *testing.T, s Scoring, w int, tr trace.Tracer) string {
			res, err := HORG(net.Pins, UniformCriticality(len(net.Pins)), true,
				WireSizeOptions{MaxWidth: 3},
				Options{Oracle: elmoreOracle(), Scoring: s, Workers: w, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			return res.Routing.Fingerprint() + res.Sizing.Fingerprint()
		}},
	}

	workerGrid := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			var refFP string
			var refAccepted []trace.AcceptedEdge
			refAccepted = acceptedOf(t, a.name+"/full/w1", func(tr trace.Tracer) error {
				refFP = a.run(t, ScoringFull, 1, tr)
				return nil
			})
			for _, scoring := range []Scoring{ScoringFull, ScoringAuto} {
				for _, w := range workerGrid {
					if scoring == ScoringFull && w == 1 {
						continue // that is the reference itself
					}
					label := fmt.Sprintf("scoring=%d/w%d", scoring, w)
					var fp string
					accepted := acceptedOf(t, a.name+"/"+label, func(tr trace.Tracer) error {
						fp = a.run(t, scoring, w, tr)
						return nil
					})
					if fp != refFP {
						t.Errorf("%s: fingerprint drifted from full/w1 reference:\ngot:\n%swant:\n%s", label, fp, refFP)
					}
					if len(accepted) != len(refAccepted) {
						t.Fatalf("%s: %d accepted edges in trace, reference %d", label, len(accepted), len(refAccepted))
					}
					for i := range accepted {
						if accepted[i] != refAccepted[i] {
							t.Errorf("%s: accepted edge %d = %+v, reference %+v", label, i, accepted[i], refAccepted[i])
						}
					}
				}
			}
		})
	}
}

// TestScoringEquivalenceEvaluationsDrop pins the point of the whole
// exercise: the decisions are identical, but the incremental path must do
// strictly less oracle work — and not marginally less. A 2× floor here is
// deliberately loose (BENCH gates the real 10×) so the test stays robust
// on tiny nets.
func TestScoringEquivalenceEvaluationsDrop(t *testing.T) {
	topo := randomMST(t, 6004, 14)
	full, err := LDRG(topo, Options{Oracle: elmoreOracle(), Scoring: ScoringFull})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := LDRG(topo, Options{Oracle: elmoreOracle(), Scoring: ScoringAuto})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Fingerprint() != full.Fingerprint() {
		t.Fatalf("scoring modes disagree on decisions:\n%s\nvs\n%s", inc.Fingerprint(), full.Fingerprint())
	}
	if inc.Evaluations*2 > full.Evaluations {
		t.Errorf("incremental path did %d oracle evaluations, full did %d; expected at least a 2x drop",
			inc.Evaluations, full.Evaluations)
	}
}
