package core

import (
	"runtime"
	"testing"

	"nontree/internal/elmore"
	"nontree/internal/fpcmp"
	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/rc"
)

// Metamorphic suite: properties that must hold across systematic input
// transformations, with no reference values involved.

// scaledMST returns the MST of the seed net with every coordinate
// multiplied by k. Scaling preserves distance ordering, so the tree has
// the same combinatorial structure at every k.
func scaledMST(t *testing.T, seed int64, pins int, k float64) *graph.Topology {
	t.Helper()
	gen := netlist.NewGenerator(seed)
	n, err := gen.Generate(pins)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]geom.Point, len(n.Pins))
	for i, p := range n.Pins {
		scaled[i] = geom.Point{X: p.X * k, Y: p.Y * k}
	}
	topo, err := mst.Prim(scaled)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestMetamorphicUniformScalingQuadratic: under uniform geometry scaling
// ×k, every Elmore delay is exactly quadratic in k,
//
//	t(k) = a + b·k + c·k²,
//
// because each term of the Elmore sum is (driver or wire resistance) ×
// (wire or sink capacitance): R_d·C_sink is constant, R_d·C_wire and
// R_wire·C_sink scale like k, and R_wire·C_wire like k². Three samples
// therefore determine the polynomial; the third finite difference gives
// the closed-form prediction t(4) = t(1) − 3·t(2) + 3·t(3), which must
// match the directly computed delay to floating-point accuracy.
func TestMetamorphicUniformScalingQuadratic(t *testing.T) {
	oracle := elmoreOracle()
	for seed := int64(0); seed < 10; seed++ {
		pins := 5 + int(seed%4)
		worst := func(k float64) float64 {
			topo := scaledMST(t, 4200+seed, pins, k)
			delays, err := oracle.SinkDelays(topo, nil)
			if err != nil {
				t.Fatal(err)
			}
			return elmore.MaxSinkDelay(delays, topo.NumPins())
		}
		t1, t2, t3, t4 := worst(1), worst(2), worst(3), worst(4)
		pred := t1 - 3*t2 + 3*t3
		if ratio := pred / t4; !fpcmp.EqTol(ratio, 1, 1e-9) {
			t.Errorf("seed %d: quadratic scaling violated: predicted t(4)=%.6g, got %.6g (ratio %v)",
				seed, pred, t4, ratio)
		}
	}
}

// TestMetamorphicPinPermutation: relabeling the sinks (the source stays
// pin 0) must not change the physics — each sink's Elmore delay follows
// its pin to the new index — and must not change the deterministic obs
// counters of a full greedy run, since counters aggregate over the same
// geometric candidate set regardless of labeling.
func TestMetamorphicPinPermutation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		const pins = 8
		gen := netlist.NewGenerator(5200 + seed)
		n, err := gen.Generate(pins)
		if err != nil {
			t.Fatal(err)
		}
		// A fixed nontrivial permutation of the sinks: rotate by 3.
		perm := make([]int, pins) // perm[old] = new
		perm[0] = 0
		for i := 1; i < pins; i++ {
			perm[i] = 1 + (i-1+3)%(pins-1)
		}
		permuted := make([]geom.Point, pins)
		for i, p := range n.Pins {
			permuted[perm[i]] = p
		}

		run := func(points []geom.Point) ([]float64, string) {
			topo, err := mst.Prim(points)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			obs.Preregister(reg)
			res, err := LDRG(topo, Options{
				Oracle: &ElmoreOracle{Params: rc.Default(), Obs: reg},
				Obs:    reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			delays, err := elmoreOracle().SinkDelays(res.Topology, nil)
			if err != nil {
				t.Fatal(err)
			}
			return delays, reg.Snapshot().Deterministic().Fingerprint()
		}

		base, baseFP := run(n.Pins)
		permDelays, permFP := run(permuted)

		for i := 1; i < pins; i++ {
			got, want := permDelays[perm[i]], base[i]
			if !fpcmp.EqTol(got/want, 1, 1e-9) {
				t.Errorf("seed %d: sink %d→%d delay changed under permutation: %.6g vs %.6g",
					seed, i, perm[i], want, got)
			}
		}
		if baseFP != permFP {
			t.Errorf("seed %d: obs counter fingerprint changed under pin permutation:\n%s\nvs\n%s",
				seed, baseFP, permFP)
		}
	}
}

// TestMetamorphicWorkersByteIdentical: the DESIGN.md §7/§10 contract —
// results AND deterministic obs counters are byte-identical for any
// Options.Workers value. Checked for LDRG, LDRGWithTaps, and WireSize at
// Workers ∈ {1, 4, GOMAXPROCS}.
func TestMetamorphicWorkersByteIdentical(t *testing.T) {
	//nontree:allow nondetsource the point of the test is that results do NOT depend on this value
	maxprocs := runtime.GOMAXPROCS(0)
	workerSet := []int{1, 4, maxprocs}

	type outcome struct {
		edges []graph.Edge
		final float64
		fp    string
	}

	algorithms := []struct {
		name string
		run  func(seed *graph.Topology, workers int, rec obs.Recorder) (outcome, error)
	}{
		{"ldrg", func(s *graph.Topology, w int, rec obs.Recorder) (outcome, error) {
			res, err := LDRG(s, Options{
				Oracle:  &ElmoreOracle{Params: rc.Default(), Obs: rec},
				Workers: w,
				Obs:     rec,
			})
			if err != nil {
				return outcome{}, err
			}
			return outcome{edges: res.AddedEdges, final: res.FinalObjective}, nil
		}},
		{"taps", func(s *graph.Topology, w int, rec obs.Recorder) (outcome, error) {
			res, err := LDRGWithTaps(s, Options{
				Oracle:  &ElmoreOracle{Params: rc.Default(), Obs: rec},
				Workers: w,
				Obs:     rec,
			})
			if err != nil {
				return outcome{}, err
			}
			return outcome{edges: res.AddedEdges, final: res.FinalObjective}, nil
		}},
		{"wiresize", func(s *graph.Topology, w int, rec obs.Recorder) (outcome, error) {
			res, err := WireSize(s, WireSizeOptions{
				Oracle:  &ElmoreOracle{Params: rc.Default(), Obs: rec},
				Workers: w,
				Obs:     rec,
			})
			if err != nil {
				return outcome{}, err
			}
			return outcome{final: res.FinalObjective}, nil
		}},
	}

	for _, algo := range algorithms {
		for seed := int64(0); seed < 3; seed++ {
			topo := randomMST(t, 6300+seed, 10)
			var ref outcome
			for wi, w := range workerSet {
				reg := obs.NewRegistry()
				obs.Preregister(reg)
				out, err := algo.run(topo, w, reg)
				if err != nil {
					t.Fatalf("%s seed %d workers %d: %v", algo.name, seed, w, err)
				}
				out.fp = reg.Snapshot().Deterministic().Fingerprint()
				if wi == 0 {
					ref = out
					continue
				}
				if len(out.edges) != len(ref.edges) {
					t.Fatalf("%s seed %d: workers %d accepted %d edges, workers %d accepted %d",
						algo.name, seed, workerSet[0], len(ref.edges), w, len(out.edges))
				}
				for i := range out.edges {
					if out.edges[i] != ref.edges[i] {
						t.Errorf("%s seed %d: edge %d differs: %v vs %v",
							algo.name, seed, i, ref.edges[i], out.edges[i])
					}
				}
				//nontree:allow floatcmp byte-identity across Workers is the contract under test; any ULP difference is a bug
				if out.final != ref.final {
					t.Errorf("%s seed %d: objective differs at workers %d: %x vs %x",
						algo.name, seed, w, ref.final, out.final)
				}
				if out.fp != ref.fp {
					t.Errorf("%s seed %d: obs fingerprint differs at workers %d:\n%s\nvs\n%s",
						algo.name, seed, w, ref.fp, out.fp)
				}
			}
		}
	}
}
