package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Count is the number of samples.
	Count int64 `json:"count"`
	// Sum is the total of all samples (exact for integer-valued samples).
	Sum float64 `json:"sum"`
	// Min and Max bracket the samples; both are 0 when Count is 0.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Buckets tallies samples per power-of-two range: key i counts samples
	// v with 2^(i−32) ≤ v < 2^(i−31). Empty buckets are omitted.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Summary returns the snapshot without its bucket detail — the stable
// shape the benchmark entries embed.
func (h HistogramSnapshot) Summary() HistogramSnapshot {
	h.Buckets = nil
	return h
}

// Snapshot is a registry's frozen state. Counters and Histograms are
// deterministic for fixed seeds at any worker count; Timings hold
// wall-clock spans and are excluded from every determinism comparison.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timings    map[string]HistogramSnapshot `json:"timings,omitempty"`
}

// Snapshot freezes the registry's current state. It is safe to call while
// other goroutines are still recording; each metric is read atomically
// (the snapshot is per-metric consistent, not globally so).
func (g *Registry) Snapshot() Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Snapshot{Counters: make(map[string]int64, len(g.counters))}
	for name, c := range g.counters {
		s.Counters[name] = c.Load()
	}
	if len(g.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(g.hists))
		for name, h := range g.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(g.timings) > 0 {
		s.Timings = make(map[string]HistogramSnapshot, len(g.timings))
		for name, h := range g.timings {
			s.Timings[name] = h.snapshot()
		}
	}
	return s
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the histogram's samples
// from its power-of-two buckets, interpolating linearly inside the bucket
// the quantile falls into and clamping to the exact [Min, Max] range. The
// estimate is within a factor of two of the true sample value — the bucket
// resolution — which is the accuracy contract the sim SLO gates are
// written against. Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	idx := make([]int, 0, len(h.Buckets))
	for i := range h.Buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var cum float64
	v := h.Max
	for _, i := range idx {
		n := float64(h.Buckets[i])
		if cum+n >= target {
			// Bucket i spans [2^(i−32), 2^(i−31)); bucket 0 also absorbs
			// zero/negative samples, so its lower edge is taken as 0.
			lo, hi := math.Ldexp(1, i-32), math.Ldexp(1, i-31)
			if i == 0 {
				lo = 0
			}
			v = lo + (hi-lo)*(target-cum)/n
			break
		}
		cum += n
	}
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	return v
}

// Deterministic returns the snapshot with the Timings section dropped —
// exactly the part of the state the determinism guarantee covers.
func (s Snapshot) Deterministic() Snapshot {
	s.Timings = nil
	return s
}

// Fingerprint renders the deterministic part of the snapshot as canonical
// sorted text. Two runs with identical counters and histograms produce
// byte-identical fingerprints, so tests compare runs with a single string
// equality. Floats are rendered as exact hex literals — a fingerprint
// match is a bitwise match, not an approximate one.
func (s Snapshot) Fingerprint() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "hist %s count=%d sum=%x min=%x max=%x buckets=", name, h.Count, h.Sum, h.Min, h.Max)
		idx := make([]int, 0, len(h.Buckets))
		for i := range h.Buckets {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			fmt.Fprintf(&b, "%d:%d,", i, h.Buckets[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
