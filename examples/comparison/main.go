// Comparison: every construction in the repository on one net, side by
// side — the tree baselines (MST, Iterated 1-Steiner, ERT, SERT) and the
// paper's non-tree routings (H2, H3, H1, LDRG, SLDRG, ERT-seeded LDRG) —
// with simulator-measured delays and wirelengths, reproducing in miniature
// the comparisons behind the paper's Tables 2–7.
//
// Pass -svg DIR to also write one drawing per topology.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nontree"
	"nontree/internal/viz"
)

func main() {
	log.SetFlags(0)
	svgDir := flag.String("svg", "", "directory for SVG drawings (optional)")
	seed := flag.Int64("seed", 25, "net seed")
	pins := flag.Int("pins", 10, "net size")
	flag.Parse()

	net, err := nontree.GenerateNet(*seed, *pins)
	if err != nil {
		log.Fatal(err)
	}
	params := nontree.DefaultParams()
	cfg := nontree.Config{}

	mst, err := nontree.MST(net)
	if err != nil {
		log.Fatal(err)
	}
	base, err := nontree.MeasureDelay(mst, params)
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		name  string
		topo  *nontree.Topology
		added []nontree.Edge
	}
	var entries []entry
	add := func(name string, topo *nontree.Topology, added []nontree.Edge, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		entries = append(entries, entry{name, topo, added})
	}

	add("MST", mst, nil, nil)
	pd, err := nontree.PDTree(net, 0.5)
	add("PD-tree c=0.5", pd, nil, err)
	brbc, err := nontree.BRBC(net, 0.5)
	add("BRBC e=0.5", brbc, nil, err)
	star, err := nontree.PDTree(net, 1)
	add("Star (SPT)", star, nil, err)
	st, err := nontree.SteinerTree(net)
	add("Steiner (I1S)", st, nil, err)
	ertTopo, err := nontree.ERT(net, params)
	add("ERT", ertTopo, nil, err)
	sert, err := nontree.SERT(net, params)
	add("SERT", sert, nil, err)

	h2, err := nontree.H2(mst, cfg)
	add("H2", h2.Topology, h2.AddedEdges, err)
	h3, err := nontree.H3(mst, cfg)
	add("H3", h3.Topology, h3.AddedEdges, err)
	h1, err := nontree.H1(mst, cfg)
	add("H1", h1.Topology, h1.AddedEdges, err)
	ldrg, err := nontree.LDRG(mst, cfg)
	add("LDRG", ldrg.Topology, ldrg.AddedEdges, err)
	sldrg, err := nontree.SLDRG(net, cfg)
	add("SLDRG", sldrg.Topology, sldrg.AddedEdges, err)
	ertLdrg, err := nontree.LDRG(ertTopo, cfg)
	add("ERT+LDRG", ertLdrg.Topology, ertLdrg.AddedEdges, err)
	taps, err := nontree.LDRGWithTaps(mst, cfg)
	add("LDRG+taps", taps.Topology, taps.AddedEdges, err)

	fmt.Printf("net: %d pins, seed %d — all values normalized to the MST\n\n", *pins, *seed)
	fmt.Printf("%-14s %10s %8s %12s %8s %6s\n", "construction", "delay(ns)", "×MST", "wire(µm)", "×MST", "+edges")
	for _, e := range entries {
		rep, err := nontree.MeasureDelay(e.topo, params)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("%-14s %10.3f %8.3f %12.0f %8.3f %6d\n",
			e.name, rep.Max*1e9, rep.Max/base.Max,
			rep.Wirelength, rep.Wirelength/base.Wirelength, len(e.added))
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			path := filepath.Join(*svgDir, e.name+".svg")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := viz.SVG(f, e.topo, e.added, viz.DefaultStyle()); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("\nwrote %d drawings to %s\n", len(entries), *svgDir)
	}
}
