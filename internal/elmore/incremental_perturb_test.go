package elmore

import (
	"math"
	"testing"

	"nontree/internal/fpcmp"
	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/rc"
)

// relTol is the agreement demanded between a perturbation identity and a
// from-scratch solve: both are exact in real arithmetic, so only rounding
// separates them. 1e-9 relative leaves three orders of magnitude of
// headroom over typical double-precision solve noise.
const relTol = 1e-9

func assertDelaysClose(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for n := range want {
		if math.Abs(got[n]-want[n]) > relTol*math.Max(want[n], 1e-30) {
			t.Fatalf("%s node %d: incremental %.12g vs full %.12g", label, n, got[n], want[n])
		}
	}
}

func TestWithWidenMatchesFullSolve(t *testing.T) {
	p := rc.Default()
	for seed := int64(20); seed < 24; seed++ {
		topo := randomTree(t, seed, 9)
		// A couple of cycles and a non-uniform width map make the base
		// state representative of a mid-run WSORG sweep.
		for _, e := range topo.AbsentEdges()[:2] {
			if err := topo.AddEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		widths := map[graph.Edge]int{}
		for i, e := range topo.Edges() {
			widths[e] = 1 + i%3
		}
		widthFn := func(e graph.Edge) float64 { return float64(widths[e.Canon()]) }

		inc, err := NewIncrementalWidth(topo, p, widthFn)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range topo.Edges() {
			got, err := inc.WithWiden(e)
			if err != nil {
				t.Fatal(err)
			}
			widths[e]++
			want := fullDelays(t, topo, widthFn)
			widths[e]--
			assertDelaysClose(t, e.String(), got, want)
		}
	}
}

func TestWithTapMatchesFullSolve(t *testing.T) {
	p := rc.Default()
	for seed := int64(30); seed < 34; seed++ {
		topo := randomTree(t, seed, 9)
		inc, err := NewIncremental(topo, p)
		if err != nil {
			t.Fatal(err)
		}
		src := topo.Point(0)
		for _, e := range topo.Edges() {
			if e.U == 0 || e.V == 0 {
				continue
			}
			a, b := topo.Point(e.U), topo.Point(e.V)
			pt := geom.Point{
				X: math.Min(a.X, b.X) + math.Abs(b.X-a.X)*0.25,
				Y: math.Min(a.Y, b.Y) + math.Abs(b.Y-a.Y)*0.75,
			}
			if pt.Eq(a) || pt.Eq(b) || pt.Eq(src) {
				continue
			}
			got, err := inc.WithTap(e, pt)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: build the tapped topology for real.
			c := topo.Clone()
			s := c.AddSteinerNode(pt)
			if err := c.RemoveEdge(e); err != nil {
				t.Fatal(err)
			}
			for _, ne := range []graph.Edge{{U: e.U, V: s}, {U: s, V: e.V}, {U: 0, V: s}} {
				if err := c.AddEdge(ne); err != nil {
					t.Fatal(err)
				}
			}
			want := fullDelays(t, c, nil)
			// The incremental vector is indexed by the original nodes; the
			// reference has one extra (the Steiner node, last).
			assertDelaysClose(t, e.String(), got, want[:len(got)])
		}
	}
}

// TestAdditionBoundIsSound checks the pruning bound's defining inequality
// on a seeded corpus: no node's delay improves by more than AdditionBound
// when the edge is actually added. The bound must hold for every absent
// edge, not just plausible ones — pruning correctness rides on it.
func TestAdditionBoundIsSound(t *testing.T) {
	p := rc.Default()
	for seed := int64(50); seed < 56; seed++ {
		topo := randomTree(t, seed, 10)
		if seed%2 == 0 { // half the corpus with cycles
			if err := topo.AddEdge(topo.AbsentEdges()[0]); err != nil {
				t.Fatal(err)
			}
		}
		inc, err := NewIncremental(topo, p)
		if err != nil {
			t.Fatal(err)
		}
		base := inc.BaseDelays()
		for _, e := range topo.AbsentEdges() {
			bound := inc.AdditionBound(e)
			after, err := inc.WithEdge(e)
			if err != nil {
				t.Fatal(err)
			}
			for n := range after {
				if improvement := base[n] - after[n]; improvement > bound*(1+relTol) {
					t.Fatalf("seed %d edge %v node %d: improvement %.12g exceeds bound %.12g",
						seed, e, n, improvement, bound)
				}
			}
		}
	}
}

// TestWideningBoundIsSound is TestAdditionBoundIsSound for WithWiden.
func TestWideningBoundIsSound(t *testing.T) {
	p := rc.Default()
	for seed := int64(60); seed < 64; seed++ {
		topo := randomTree(t, seed, 10)
		widths := map[graph.Edge]int{}
		for i, e := range topo.Edges() {
			widths[e] = 1 + i%2
		}
		widthFn := func(e graph.Edge) float64 { return float64(widths[e.Canon()]) }
		inc, err := NewIncrementalWidth(topo, p, widthFn)
		if err != nil {
			t.Fatal(err)
		}
		base := inc.BaseDelays()
		for _, e := range topo.Edges() {
			bound := inc.WideningBound(e)
			after, err := inc.WithWiden(e)
			if err != nil {
				t.Fatal(err)
			}
			for n := range after {
				if improvement := base[n] - after[n]; improvement > bound*(1+relTol) {
					t.Fatalf("seed %d edge %v node %d: improvement %.12g exceeds bound %.12g",
						seed, e, n, improvement, bound)
				}
			}
		}
	}
}

// FuzzIncrementalVsFull drives the three perturbation identities with
// fuzzer-chosen nets and operations and cross-checks each against a
// from-scratch solve within fpcmp tolerance. The seed corpus below pins
// one representative input per operation; CI extends it with a timed
// fuzzing pass.
func FuzzIncrementalVsFull(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(0), uint16(0))
	f.Add(int64(2), uint8(10), uint8(1), uint16(3))
	f.Add(int64(3), uint8(12), uint8(2), uint16(1))
	f.Add(int64(1994), uint8(16), uint8(0), uint16(9))
	f.Fuzz(func(t *testing.T, seed int64, pins, op uint8, idx uint16) {
		numPins := 4 + int(pins)%13 // 4..16
		topo := fuzzTopology(t, seed, numPins)
		p := rc.Default()
		inc, err := NewIncremental(topo, p)
		if err != nil {
			t.Skip() // degenerate net (coincident pins etc.)
		}
		switch op % 3 {
		case 0: // edge addition
			cands := topo.AbsentEdges()
			if len(cands) == 0 {
				t.Skip()
			}
			e := cands[int(idx)%len(cands)]
			got, err := inc.WithEdge(e)
			if err != nil {
				t.Skip()
			}
			if err := topo.AddEdge(e); err != nil {
				t.Fatal(err)
			}
			want := fuzzFullDelays(t, topo)
			compareFuzz(t, got, want)
		case 1: // widening
			cands := topo.Edges()
			e := cands[int(idx)%len(cands)]
			got, err := inc.WithWiden(e)
			if err != nil {
				t.Skip()
			}
			overlay := func(x graph.Edge) float64 {
				if x.Canon() == e {
					return 2
				}
				return 1
			}
			l, err := rc.Lump(topo, p, overlay)
			if err != nil {
				t.Fatal(err)
			}
			want, err := GraphDelays(topo, l)
			if err != nil {
				t.Fatal(err)
			}
			compareFuzz(t, got, want)
		case 2: // tap
			cands := topo.Edges()
			e := cands[int(idx)%len(cands)]
			if e.U == 0 || e.V == 0 {
				t.Skip()
			}
			a, b := topo.Point(e.U), topo.Point(e.V)
			pt := geom.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
			if pt.Eq(a) || pt.Eq(b) || pt.Eq(topo.Point(0)) {
				t.Skip()
			}
			got, err := inc.WithTap(e, pt)
			if err != nil {
				t.Skip() // degenerate geometry is allowed to error, not mis-solve
			}
			s := topo.AddSteinerNode(pt)
			if err := topo.RemoveEdge(e); err != nil {
				t.Fatal(err)
			}
			for _, ne := range []graph.Edge{{U: e.U, V: s}, {U: s, V: e.V}, {U: 0, V: s}} {
				if err := topo.AddEdge(ne); err != nil {
					t.Fatal(err)
				}
			}
			want := fuzzFullDelays(t, topo)
			compareFuzz(t, got, want[:len(got)])
		}
	})
}

func fuzzTopology(t *testing.T, seed int64, pins int) *graph.Topology {
	t.Helper()
	topo := randomTree(t, seed, pins)
	// Every other net gets a cycle so non-tree base states are covered.
	if seed%2 == 0 {
		if abs := topo.AbsentEdges(); len(abs) > 0 {
			i := int(uint64(seed) / 2 % uint64(len(abs)))
			if err := topo.AddEdge(abs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return topo
}

func fuzzFullDelays(t *testing.T, topo *graph.Topology) []float64 {
	t.Helper()
	l, err := rc.Lump(topo, rc.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := GraphDelays(topo, l)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compareFuzz(t *testing.T, got, want []float64) {
	t.Helper()
	for n := range want {
		// Delays are O(1e-9) s; compare relative to their magnitude, with
		// fpcmp's scale floor preventing a vacuous absolute comparison.
		if !fpcmp.EqTol(got[n]/1e-9, want[n]/1e-9, 1e-7) {
			t.Fatalf("node %d: incremental %.15g vs full %.15g", n, got[n], want[n])
		}
	}
}
