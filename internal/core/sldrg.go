package core

import (
	"fmt"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/steiner"
)

// SLDRGResult extends Result with the Steiner seed, whose cost is the
// normalization baseline of the paper's Table 3.
type SLDRGResult struct {
	Result
	// Seed is the Iterated 1-Steiner tree the greedy loop started from.
	Seed *graph.Topology
}

// SLDRG runs the Steiner Low Delay Routing Graph algorithm (paper Figure 6):
// build a Steiner tree over the net with Iterated 1-Steiner (Step 1), then
// greedily add edges — between any pair of pins or Steiner points — while
// the objective improves (Steps 2–3).
func SLDRG(pins []geom.Point, steinerOpts steiner.Options, opts Options) (_ *SLDRGResult, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	seed, err := steiner.Tree(pins, steinerOpts)
	if err != nil {
		return nil, fmt.Errorf("core: SLDRG Steiner seed: %w", err)
	}
	res, err := LDRG(seed, opts)
	if err != nil {
		return nil, fmt.Errorf("core: SLDRG greedy phase: %w", err)
	}
	return &SLDRGResult{Result: *res, Seed: seed}, nil
}
