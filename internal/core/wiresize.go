package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"nontree/internal/graph"
	"nontree/internal/obs"
	"nontree/internal/rc"
	"nontree/internal/trace"
)

// WireSizeOptions configures the WSORG greedy width optimizer.
type WireSizeOptions struct {
	// Oracle estimates delays; required.
	Oracle DelayOracle
	// Objective scores the topology; nil selects MaxDelayObjective.
	Objective Objective
	// MaxWidth is the largest width on the discrete grid (paper Section
	// 5.2: "in most practical applications a discrete grid is used, and
	// thus the range of w may be restricted to the integers"). Default 4.
	MaxWidth int
	// MinImprovement is the relative improvement threshold per widening
	// step; default 1e-9.
	MinImprovement float64
	// CostWeight optionally penalizes the capacitance cost of widening:
	// the optimizer maximizes delay improvement per unit of added
	// width-length product when > 0. Zero means pure delay descent.
	CostWeight float64
	// Workers bounds the goroutines evaluating widening candidates
	// concurrently (0 = one per CPU, 1 = sequential). Like the edge
	// sweeps, results are byte-identical for any value; the oracle must
	// be safe for concurrent SinkDelays calls when Workers != 1. Only
	// full-solve sweeps parallelize; incremental sweeps (see Scoring)
	// are sequential by design.
	Workers int
	// Scoring selects the candidate evaluation path, exactly like
	// Options.Scoring: incremental rank-one scoring with threshold
	// pruning when the oracle supports it (ScoringAuto, the default), or
	// the legacy full-solve path (ScoringFull).
	Scoring Scoring
	// Obs receives counters and span timings (nil = discard); same
	// determinism contract as Options.Obs.
	Obs obs.Recorder
	// Trace receives the decision trace (nil = discard); same determinism
	// contract as Options.Trace. Widening candidates carry the proposed
	// width; accepted widenings emit wiresize_step events.
	Trace trace.Tracer
	// RequestID tags the run with the serve-layer request identity
	// ("" outside the daemon). Provenance only: it is copied into oracle
	// error tags and the daemon's wide event, never read by any sweep
	// decision (DESIGN.md §16).
	RequestID string
}

// WireSizeResult reports a WSORG run.
type WireSizeResult struct {
	// Widths maps every edge to its final width (unit edges included).
	Widths map[graph.Edge]int
	// InitialObjective and FinalObjective bracket the optimization.
	InitialObjective, FinalObjective float64
	// Widenings counts accepted width increments.
	Widenings int
	// Evaluations counts oracle invocations.
	Evaluations int
}

// Fingerprint renders the sizing decisions in a canonical, bit-exact text
// form: the width map in canonical edge order, the bracketing objectives as
// hex float literals, and the widening count. Evaluations is excluded for
// the same reason as in Result.Fingerprint — scoring modes differ in effort
// by design, never in decisions.
func (r *WireSizeResult) Fingerprint() string {
	edges := make([]graph.Edge, 0, len(r.Widths))
	for e := range r.Widths {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	var b strings.Builder
	b.WriteString("widths=")
	for i, e := range edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d:%d", e.U, e.V, r.Widths[e])
	}
	fmt.Fprintf(&b, "\ninitial=%s\nfinal=%s\nwidenings=%d\n",
		strconv.FormatFloat(r.InitialObjective, 'x', -1, 64),
		strconv.FormatFloat(r.FinalObjective, 'x', -1, 64),
		r.Widenings)
	return b.String()
}

// WidthFunc converts the integer width assignment into the rc.WidthFunc
// consumed by circuit construction.
func (r *WireSizeResult) WidthFunc() rc.WidthFunc {
	return func(e graph.Edge) float64 {
		if w, ok := r.Widths[e.Canon()]; ok {
			return float64(w)
		}
		return 1
	}
}

// WireSize greedily optimizes the WSORG width function (paper Section 5.2)
// over a fixed routing graph: repeatedly widen the single edge whose
// one-step widening most improves the objective, until no widening helps or
// every edge is at MaxWidth. Width w scales edge resistance by 1/w and
// capacitance by w — the first-order model under which "two separate
// parallel wires of width w ... [are] equivalent to a single wire of width
// 2w" as the paper observes.
func WireSize(t *graph.Topology, opts WireSizeOptions) (_ *WireSizeResult, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	if t == nil {
		return nil, ErrSeedNil
	}
	if opts.Oracle == nil {
		return nil, ErrNilOracle
	}
	if !t.Connected() {
		return nil, ErrSeedInvalid
	}
	maxW := opts.MaxWidth
	if maxW <= 0 {
		maxW = 4
	}
	if maxW == 1 {
		return nil, errors.New("core: MaxWidth of 1 leaves nothing to optimize")
	}
	obj := opts.Objective
	if obj == nil {
		obj = MaxDelayObjective{}
	}
	minImp := opts.MinImprovement
	if minImp <= 0 {
		minImp = 1e-9
	}

	widths := make(map[graph.Edge]int, t.NumEdges())
	for _, e := range t.Edges() {
		widths[e] = 1
	}
	res := &WireSizeResult{Widths: widths}
	widthFn := func(e graph.Edge) float64 { return float64(widths[e.Canon()]) }
	rec := obs.OrNop(opts.Obs)
	tr := trace.OrNop(opts.Trace)

	eval := func() (float64, error) {
		delays, err := opts.Oracle.SinkDelays(t, widthFn)
		if err != nil {
			return 0, err
		}
		res.Evaluations++
		rec.Add(obs.CtrOracleEvaluations, 1)
		return obj.Eval(delays, t.NumPins())
	}

	cur, err := eval()
	if err != nil {
		return nil, fmt.Errorf("core: WSORG initial evaluation: %w", err)
	}
	res.InitialObjective = cur

	eng, err := newSweepEngine(t, opts.Oracle, widthFn, obj, opts.Scoring, opts.Obs)
	if err != nil {
		return nil, err
	}

	for sweep := 1; ; sweep++ {
		// Widening candidates in canonical edge order (fixes tie-breaking).
		var cands []graph.Edge
		for _, e := range t.Edges() {
			if widths[e] < maxW {
				cands = append(cands, e)
			}
		}

		rec.Add(obs.CtrWidenCandidates, int64(len(cands)))
		tr.Emit(trace.Event{Kind: trace.KindSweepStart, Sweep: sweep, N: int64(len(cands))})

		// The candidate objectives, aligned with cands; scored[i] is false
		// for candidates the incremental path pruned. The widths map is
		// read-only during a sweep, so with Workers != 1 each candidate is
		// scored concurrently under an overlay width function instead of
		// the sequential bump-eval-revert on the shared map.
		vals := make([]float64, len(cands))
		scored := make([]bool, len(cands))
		minIdx, minVal := -1, math.Inf(1)
		prunedBest := prunedCandidate{i: -1, lb: math.Inf(1)}
		if eng != nil {
			// Incremental scan: rank-one scoring with threshold-only
			// pruning. Widening selection may rank by gain rate rather
			// than objective (CostWeight), so the running minimum cannot
			// tighten the cutoff — but a candidate whose best case misses
			// the acceptance threshold can never be selected in either
			// mode. Events are emitted inline; the scan is sequential, so
			// the order is canonical already.
			threshold := cur * (1 - minImp)
			var prunedAll []prunedCandidate
			for i, e := range cands {
				if eng.prune {
					lb := cur - eng.factor*eng.inc.WideningBound(e)
					if lb >= threshold {
						rec.Add(obs.CtrCandidatesPruned, 1)
						tr.Emit(trace.Event{Kind: trace.KindCandidatePruned, Sweep: sweep, Index: i,
							U: e.U, V: e.V, Width: widths[e] + 1, Value: lb, Before: threshold})
						if lb < prunedBest.lb {
							prunedBest = prunedCandidate{i: i, lb: lb}
						}
						if eng.debug {
							prunedAll = append(prunedAll, prunedCandidate{i: i, lb: lb})
						}
						continue
					}
				}
				delays, err := eng.inc.WithWiden(e)
				if err != nil {
					return nil, fmt.Errorf("core: incremental widening %v: %w", e, err)
				}
				val, err := obj.Eval(delays, t.NumPins())
				if err != nil {
					return nil, err
				}
				vals[i] = val
				scored[i] = true
				tr.Emit(trace.Event{Kind: trace.KindCandidateScored, Sweep: sweep, Index: i,
					U: e.U, V: e.V, Width: widths[e] + 1, Value: val})
				if val < minVal {
					minIdx, minVal = i, val
				}
			}
			for _, p := range prunedAll {
				delays, err := eng.inc.WithWiden(cands[p.i])
				if err != nil {
					return nil, fmt.Errorf("core: debug-scoring pruned widening %v: %w", cands[p.i], err)
				}
				val, err := obj.Eval(delays, t.NumPins())
				if err != nil {
					return nil, err
				}
				if val < p.lb {
					return nil, fmt.Errorf("%w: sweep %d widening %d %v scored %v below its proved lower bound %v",
						ErrPruningUnsound, sweep, p.i, cands[p.i], val, p.lb)
				}
				if val < threshold {
					return nil, fmt.Errorf("%w: sweep %d widening %d %v scored %v under threshold %v (bound %v)",
						ErrPruningUnsound, sweep, p.i, cands[p.i], val, threshold, p.lb)
				}
			}
		} else if workers := workerCount(opts.Workers); workers > 1 && len(cands) > 1 {
			outcomes, evals := runSweep(t, workers, len(cands), rec, func(i int, clone *graph.Topology) (float64, error) {
				e := cands[i]
				overlay := func(x graph.Edge) float64 {
					w := widths[x.Canon()]
					if x.Canon() == e {
						w++
					}
					return float64(w)
				}
				delays, err := opts.Oracle.SinkDelays(clone, overlay)
				if err != nil {
					return 0, fmt.Errorf("core: WSORG widening %v: %w", e, err)
				}
				return obj.Eval(delays, clone.NumPins())
			})
			res.Evaluations += evals
			rec.Add(obs.CtrOracleEvaluations, int64(evals))
			for i := range outcomes {
				if outcomes[i].err != nil {
					return nil, outcomes[i].err
				}
				vals[i] = outcomes[i].val
			}
		} else {
			for i, e := range cands {
				widths[e]++
				val, err := eval()
				widths[e]--
				if err != nil {
					return nil, fmt.Errorf("core: WSORG widening %v: %w", e, err)
				}
				vals[i] = val
			}
		}

		if eng == nil {
			// Candidate events in canonical order, emitted from this
			// goroutine only, after the (possibly parallel) evaluation —
			// the contract that keeps traces byte-identical at any worker
			// count. (The incremental path emitted inline above.)
			for i, e := range cands {
				scored[i] = true
				tr.Emit(trace.Event{Kind: trace.KindCandidateScored, Sweep: sweep, Index: i,
					U: e.U, V: e.V, Width: widths[e] + 1, Value: vals[i]})
				if vals[i] < minVal {
					minIdx, minVal = i, vals[i]
				}
			}
		}

		bestEdge := graph.Edge{U: -1, V: -1}
		bestVal := cur
		bestGainRate := 0.0
		for i, e := range cands {
			if !scored[i] {
				continue
			}
			val := vals[i]
			if val >= cur*(1-minImp) {
				continue
			}
			if opts.CostWeight > 0 {
				// Benefit per unit of extra metal (width-length product).
				rate := (cur - val) / (opts.CostWeight * t.EdgeLength(e))
				if rate > bestGainRate {
					bestGainRate = rate
					bestEdge = e
					bestVal = val
				}
			} else if val < bestVal {
				bestEdge = e
				bestVal = val
			}
		}
		if bestEdge.U < 0 {
			if minIdx >= 0 {
				e := cands[minIdx]
				tr.Emit(trace.Event{Kind: trace.KindEdgeRejected, Sweep: sweep,
					U: e.U, V: e.V, Width: widths[e] + 1, Value: minVal, Before: cur,
					Reason: trace.ReasonNoImprovement})
			} else if prunedBest.i >= 0 {
				// Every candidate was pruned: the best proved bound
				// documents why the sweep converged.
				e := cands[prunedBest.i]
				tr.Emit(trace.Event{Kind: trace.KindEdgeRejected, Sweep: sweep,
					U: e.U, V: e.V, Width: widths[e] + 1, Value: prunedBest.lb, Before: cur,
					Reason: trace.ReasonNoImprovement})
			}
			break
		}
		if eng != nil {
			// Winner re-solve: the committed objective must come from the
			// same full-solve arithmetic as the legacy path so results are
			// byte-identical between scoring modes.
			widths[bestEdge]++
			fullVal, err := eval()
			widths[bestEdge]--
			if err != nil {
				return nil, fmt.Errorf("core: WSORG re-scoring %v: %w", bestEdge, err)
			}
			if fullVal >= cur*(1-minImp) {
				tr.Emit(trace.Event{Kind: trace.KindEdgeRejected, Sweep: sweep,
					U: bestEdge.U, V: bestEdge.V, Width: widths[bestEdge] + 1,
					Value: fullVal, Before: cur, Reason: trace.ReasonNoImprovement})
				break
			}
			bestVal = fullVal
		}
		widths[bestEdge]++
		res.Widenings++
		rec.Add(obs.CtrWidenings, 1)
		tr.Emit(trace.Event{Kind: trace.KindWireSizeStep, Sweep: sweep,
			U: bestEdge.U, V: bestEdge.V, Width: widths[bestEdge],
			Before: cur, After: bestVal})
		cur = bestVal
		if err := eng.refactor(); err != nil {
			return nil, fmt.Errorf("core: refactoring after widening %v: %w", bestEdge, err)
		}
	}

	res.FinalObjective = cur
	return res, nil
}

// MetalArea returns the width-weighted wirelength Σ w(e)·len(e) of the
// topology under a width assignment — the WSORG analogue of routing cost.
func MetalArea(t *graph.Topology, widths map[graph.Edge]int) float64 {
	var sum float64
	for _, e := range t.Edges() {
		w := widths[e]
		if w <= 0 {
			w = 1
		}
		sum += float64(w) * t.EdgeLength(e)
	}
	return sum
}
