// Package embed realizes a routing topology's abstract edges as rectilinear
// geometry: each edge becomes an axis-aligned L-shape (or a single straight
// segment when the endpoints share a coordinate), and the package counts
// wire crossings between different edges — a routability indicator for the
// extra wires non-tree routing adds.
//
// The Manhattan edge length is invariant under the choice of L orientation,
// so embedding never changes cost or delay; it only changes where wires sit
// and therefore how often they cross.
package embed

import (
	"math"

	"nontree/internal/geom"
	"nontree/internal/graph"
)

// Policy selects how each diagonal edge's L-shape is oriented.
type Policy int

const (
	// HorizontalFirst routes from the lower-indexed endpoint horizontally,
	// then vertically.
	HorizontalFirst Policy = iota
	// VerticalFirst routes vertically first.
	VerticalFirst
	// Greedy runs single-edge local search: starting from each fixed
	// policy's embedding, it repeatedly re-orients whichever edge's flip
	// reduces crossings, until no flip helps, and keeps the better of the
	// two results. It therefore never produces more crossings than either
	// fixed policy.
	Greedy
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case HorizontalFirst:
		return "horizontal-first"
	case VerticalFirst:
		return "vertical-first"
	case Greedy:
		return "greedy"
	}
	return "unknown"
}

// Segment is an axis-aligned wire segment.
type Segment struct {
	A, B geom.Point
}

func (s Segment) horizontal() bool { return s.A.Y == s.B.Y }

// Length returns the segment's length.
func (s Segment) Length() float64 { return geom.Dist(s.A, s.B) }

// Embedding is a concrete rectilinear realization of a topology.
type Embedding struct {
	// Segments maps each canonical edge to its one or two segments.
	Segments map[graph.Edge][]Segment
	// Bends counts edges embedded with an L (one bend each).
	Bends int
}

// Embed realizes the topology's edges under the given policy.
func Embed(t *graph.Topology, policy Policy) *Embedding {
	if policy == Greedy {
		best := refine(t, embedFixed(t, true))
		alt := refine(t, embedFixed(t, false))
		if alt.Crossings() < best.Crossings() {
			return alt
		}
		return best
	}
	return embedFixed(t, policy == HorizontalFirst)
}

func embedFixed(t *graph.Topology, horizontalFirst bool) *Embedding {
	e := &Embedding{Segments: make(map[graph.Edge][]Segment, t.NumEdges())}
	for _, edge := range t.Edges() {
		a, b := t.Point(edge.U), t.Point(edge.V)
		if a.X == b.X || a.Y == b.Y {
			e.Segments[edge] = []Segment{{A: a, B: b}}
			continue
		}
		e.Segments[edge] = lShape(a, b, horizontalFirst)
		e.Bends++
	}
	return e
}

// refine performs single-edge orientation flips while any flip reduces the
// total crossing count, so the result never exceeds the start's count.
func refine(t *graph.Topology, e *Embedding) *Embedding {
	for improved := true; improved; {
		improved = false
		for _, edge := range t.Edges() {
			segs := e.Segments[edge]
			if len(segs) != 2 {
				continue // straight edge: nothing to flip
			}
			a, b := t.Point(edge.U), t.Point(edge.V)
			cur := crossingsAgainst(e, edge, segs)
			// The current corner tells us the orientation; try the other.
			flippedHorizontal := segs[0].A.Y != segs[0].B.Y // currently vertical-first?
			alt := lShape(a, b, flippedHorizontal)
			if crossingsAgainst(e, edge, alt) < cur {
				e.Segments[edge] = alt
				improved = true
			}
		}
	}
	return e
}

// lShape returns the two segments of an L from a to b.
func lShape(a, b geom.Point, horizontalFirst bool) []Segment {
	var corner geom.Point
	if horizontalFirst {
		corner = geom.Point{X: b.X, Y: a.Y}
	} else {
		corner = geom.Point{X: a.X, Y: b.Y}
	}
	return []Segment{{A: a, B: corner}, {A: corner, B: b}}
}

// Crossings counts wire conflicts between segments of *different* edges:
// transversal crossings (an H and a V intersecting in both interiors) and
// collinear overlaps of positive length. Touches at segment endpoints are
// not counted — wires legitimately meet at pins and junctions.
func (e *Embedding) Crossings() int {
	edges := make([]graph.Edge, 0, len(e.Segments))
	for edge := range e.Segments {
		edges = append(edges, edge)
	}
	// Canonical order for determinism.
	sortEdges(edges)
	total := 0
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if sharesEndpoint(edges[i], edges[j]) {
				// Adjacent edges meet at their shared node by construction;
				// counting that touch would penalize every tree.
				continue
			}
			for _, s1 := range e.Segments[edges[i]] {
				for _, s2 := range e.Segments[edges[j]] {
					total += conflicts(s1, s2)
				}
			}
		}
	}
	return total
}

// crossingsAgainst counts conflicts of candidate segments against all
// already-placed edges (excluding edge itself and its neighbors).
func crossingsAgainst(e *Embedding, edge graph.Edge, segs []Segment) int {
	total := 0
	for other, placed := range e.Segments {
		if other == edge || sharesEndpoint(other, edge) {
			continue
		}
		for _, s1 := range segs {
			for _, s2 := range placed {
				total += conflicts(s1, s2)
			}
		}
	}
	return total
}

func sharesEndpoint(a, b graph.Edge) bool {
	return a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V
}

// conflicts returns 1 if the two axis-aligned segments cross transversally
// in their interiors or overlap collinearly with positive length.
func conflicts(s1, s2 Segment) int {
	h1, h2 := s1.horizontal(), s2.horizontal()
	switch {
	case h1 && !h2:
		return crossHV(s1, s2)
	case !h1 && h2:
		return crossHV(s2, s1)
	case h1 && h2:
		if s1.A.Y != s2.A.Y {
			return 0
		}
		return overlap1D(s1.A.X, s1.B.X, s2.A.X, s2.B.X)
	default:
		if s1.A.X != s2.A.X {
			return 0
		}
		return overlap1D(s1.A.Y, s1.B.Y, s2.A.Y, s2.B.Y)
	}
}

// crossHV reports a transversal interior crossing of horizontal h and
// vertical v. Touching an endpoint does not count.
func crossHV(h, v Segment) int {
	x1, x2 := math.Min(h.A.X, h.B.X), math.Max(h.A.X, h.B.X)
	y1, y2 := math.Min(v.A.Y, v.B.Y), math.Max(v.A.Y, v.B.Y)
	if v.A.X > x1 && v.A.X < x2 && h.A.Y > y1 && h.A.Y < y2 {
		return 1
	}
	return 0
}

// overlap1D reports whether intervals [a1,a2] and [b1,b2] (unordered)
// overlap with positive length.
func overlap1D(a1, a2, b1, b2 float64) int {
	lo1, hi1 := math.Min(a1, a2), math.Max(a1, a2)
	lo2, hi2 := math.Min(b1, b2), math.Max(b1, b2)
	if math.Min(hi1, hi2)-math.Max(lo1, lo2) > 0 {
		return 1
	}
	return 0
}

// WireLength returns the embedded total length (always equal to the
// topology's Manhattan cost; exposed for verification).
func (e *Embedding) WireLength() float64 {
	var sum float64
	for _, segs := range e.Segments {
		for _, s := range segs {
			sum += s.Length()
		}
	}
	return sum
}

func sortEdges(edges []graph.Edge) {
	// Insertion sort: edge lists are small and this avoids importing sort
	// for a single call site with a custom key.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && less(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

func less(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// InterNetCrossings counts wire conflicts *between* different nets sharing
// a layout: every net is embedded independently (Greedy policy) and each
// transversal crossing or collinear overlap between segments of different
// nets counts once. Unlike the intra-net count, touches are not exempted —
// wires of different nets must never touch.
func InterNetCrossings(topos []*graph.Topology) int {
	type placed struct {
		net  int
		segs []Segment
	}
	var all []placed
	for ni, t := range topos {
		e := Embed(t, Greedy)
		for _, edge := range t.Edges() {
			all = append(all, placed{net: ni, segs: e.Segments[edge]})
		}
	}
	total := 0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].net == all[j].net {
				continue // intra-net conflicts are Embedding.Crossings' job
			}
			for _, s1 := range all[i].segs {
				for _, s2 := range all[j].segs {
					total += conflicts(s1, s2)
				}
			}
		}
	}
	return total
}

// PlanarFilter reports whether candidate edge e could be added to the
// topology without introducing wire crossings: the current wires are
// embedded greedily, and the candidate is accepted if either L orientation
// (or its straight segment) conflicts with nothing. Designed as a
// core.Options.CandidateFilter for routability-constrained LDRG.
func PlanarFilter(t *graph.Topology, e graph.Edge) bool {
	base := Embed(t, Greedy)
	a, b := t.Point(e.U), t.Point(e.V)
	var candidates [][]Segment
	if a.X == b.X || a.Y == b.Y {
		candidates = [][]Segment{{{A: a, B: b}}}
	} else {
		candidates = [][]Segment{lShape(a, b, true), lShape(a, b, false)}
	}
	for _, segs := range candidates {
		if crossingsAgainst(base, e, segs) == 0 {
			return true
		}
	}
	return false
}

// Compare runs all three policies and returns their crossing counts —
// convenient for reports.
func Compare(t *graph.Topology) map[Policy]int {
	out := make(map[Policy]int, 3)
	for _, p := range []Policy{HorizontalFirst, VerticalFirst, Greedy} {
		out[p] = Embed(t, p).Crossings()
	}
	return out
}
