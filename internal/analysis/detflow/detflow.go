// Package detflow is the interprocedural escalation of detordering and
// nondetsource: a taint analysis that follows nondeterminism — map
// iteration order, the wall clock, math/rand's global source — through
// return values and out-parameters across function boundaries, into the
// deterministic-result surface of the algorithm packages.
//
// # Model
//
// Each function gets a flow-sensitive (cfg.Forward) taint state over its
// local variables. Taint enters at sources (ranging over a map taints the
// iteration variables; time.Now/Since/Until and math/rand global-source
// calls taint their results), propagates through assignments, arithmetic,
// append, conversions, and — the interprocedural part — through call
// sites, using bottom-up summaries (callgraph SCC fixpoint, exported as
// facts "df.fn.<ID>") that record which results and out-parameters carry
// which taint kinds and which results merely pass parameter taint
// through. Sorting sanitizes: sort.* and slices.Sort* drop map-order
// taint from their argument, the repository's sanctioned determinism
// idiom (DESIGN.md §6).
//
// Diagnostics fire where nondeterminism crosses the contract boundary: an
// exported function of an algorithm package (core, ert, steiner, pdtree,
// graph, expt, and the root package) returning — or writing through an
// out-parameter — a value whose taint arrived through a callee. Taint
// born and returned in the same function body is detordering's and
// nondetsource's territory and is not re-reported.
//
// # Soundness caveats (DESIGN.md §14)
//
// Taint through struct fields, channels, and global variables is not
// tracked (locals and parameters only); methods on *rand.Rand are clean
// by design — seeded streams are the sanctioned reproducible randomness.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nontree/internal/analysis"
	"nontree/internal/analysis/callgraph"
	"nontree/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc:  "nondeterminism (map order, clock, math/rand) must not flow through call chains into exported algorithm results",
	Run:  run,
	// No Scope: summaries are needed wherever algorithm code calls.
}

// Taint kinds, a bitmask.
const (
	kindMapOrder = 1 << iota
	kindClock
	kindRand
)

func kindNames(kinds int) string {
	var out []string
	if kinds&kindMapOrder != 0 {
		out = append(out, "map iteration order")
	}
	if kinds&kindClock != 0 {
		out = append(out, "the wall clock")
	}
	if kinds&kindRand != 0 {
		out = append(out, "math/rand's global source")
	}
	return strings.Join(out, " and ")
}

// sinkScope lists the packages whose exported functions form the
// deterministic-result surface. Fixture packages (paths outside the
// nontree module) are always in scope so analysistest exercises sinks
// directly.
var sinkScope = map[string]bool{
	"nontree":                  true,
	"nontree/internal/core":    true,
	"nontree/internal/ert":     true,
	"nontree/internal/steiner": true,
	"nontree/internal/pdtree":  true,
	"nontree/internal/graph":   true,
	"nontree/internal/expt":    true,
}

func inSinkScope(path string) bool {
	if !strings.HasPrefix(path, "nontree") {
		return true
	}
	return sinkScope[path]
}

// factPrefix keys the exported per-function summaries.
const factPrefix = "df.fn."

// resultTaint describes one (possibly) tainted result slot.
type resultTaint struct {
	Index int `json:"index"`
	// Kinds are taint kinds the result always carries.
	Kinds int `json:"kinds,omitempty"`
	// FromParams is a bitmask of parameter indexes whose taint flows into
	// this result (pass-through laundering).
	FromParams uint64 `json:"fromParams,omitempty"`
	// At/Via witness the Kinds taint: ultimate source site and the call
	// chain below this function.
	At  string   `json:"at,omitempty"`
	Via []string `json:"via,omitempty"`
}

// paramTaint describes tainted data written through a pointer-like
// parameter.
type paramTaint struct {
	Index int      `json:"index"`
	Kinds int      `json:"kinds"`
	At    string   `json:"at,omitempty"`
	Via   []string `json:"via,omitempty"`
}

type fnSummary struct {
	Results []resultTaint `json:"results,omitempty"`
	Params  []paramTaint  `json:"params,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass)
	c := &checker{pass: pass}

	sums := callgraph.SummarizeTyped(g, callgraph.Summarizer[fnSummary]{
		Bottom: func(n *callgraph.Node) fnSummary { return fnSummary{} },
		Transfer: func(n *callgraph.Node, callee func(string) (fnSummary, bool)) fnSummary {
			return c.analyze(n, callee, nil)
		},
		Equal: summariesEqual,
		External: func(id string) (fnSummary, bool) {
			var s fnSummary
			ok := pass.Facts.Import(factPrefix+id, &s)
			return s, ok
		},
	})
	for _, n := range g.Nodes {
		s := sums[n.ID]
		if len(s.Results) == 0 && len(s.Params) == 0 {
			continue
		}
		if err := pass.Facts.Export(pass.Pkg.Path(), factPrefix+n.ID, s); err != nil {
			return err
		}
	}

	if !inSinkScope(pass.Pkg.Path()) {
		return nil
	}
	lookup := func(id string) (fnSummary, bool) {
		if s, ok := sums[id]; ok {
			return s, true
		}
		var s fnSummary
		ok := pass.Facts.Import(factPrefix+id, &s)
		return s, ok
	}
	for _, n := range g.Nodes {
		if n.Decl == nil || !n.Decl.Name.IsExported() {
			continue
		}
		c.analyze(n, lookup, &reporter{pass: pass, fn: n.Decl.Name.Name})
	}
	return nil
}

// reporter emits sink diagnostics during a reporting re-analysis.
type reporter struct {
	pass *analysis.Pass
	fn   string
	seen map[string]bool
}

func (r *reporter) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if r.seen == nil {
		r.seen = map[string]bool{}
	}
	key := fmt.Sprintf("%d|%s", pos, msg)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.pass.Report(pos, msg)
}

type checker struct {
	pass *analysis.Pass
}

// witness localizes one taint kind for diagnostics.
type witness struct {
	at  string
	via []string
}

// varTaint is the per-variable lattice value: taint kinds, the parameter
// bits the value derives from, and per-kind witnesses (first wins;
// ignored by Equal so the fixpoint still terminates).
type varTaint struct {
	kinds  int
	params uint64
	wit    map[int]witness
}

func (t varTaint) witFor(kind int) witness {
	if w, ok := t.wit[kind]; ok {
		return w
	}
	return witness{}
}

func mergeTaint(a, b varTaint) varTaint {
	if b.kinds == 0 && b.params == 0 {
		return a
	}
	if a.kinds == 0 && a.params == 0 {
		return b
	}
	out := varTaint{kinds: a.kinds | b.kinds, params: a.params | b.params}
	out.wit = map[int]witness{}
	for k, w := range a.wit {
		out.wit[k] = w
	}
	for k, w := range b.wit {
		if _, ok := out.wit[k]; !ok {
			out.wit[k] = w
		}
	}
	return out
}

func taintWith(kind int, w witness) varTaint {
	return varTaint{kinds: kind, wit: map[int]witness{kind: w}}
}

type taintState map[types.Object]varTaint

func (s taintState) clone() taintState {
	c := make(taintState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// unit is the per-function analysis context.
type unit struct {
	c       *checker
	n       *callgraph.Node
	callee  func(string) (fnSummary, bool)
	rep     *reporter
	params  map[types.Object]int
	ptrOK   map[types.Object]bool
	results []types.Object // named result variables, nil entries for unnamed
	// rangeBind maps the Key/Value ident nodes the cfg places at the top
	// of a range body to their binding (the range expression and whether
	// it ranges over a map).
	rangeBind map[ast.Node]rangeInfo
	// out accumulates the summary during one analysis pass.
	sum fnSummary
}

type rangeInfo struct {
	x     ast.Expr
	isMap bool
	pos   token.Pos
}

// analyze runs the taint dataflow over one node, returning its summary.
// When rep is non-nil, sink diagnostics are emitted too.
func (c *checker) analyze(n *callgraph.Node, callee func(string) (fnSummary, bool), rep *reporter) fnSummary {
	if n.Body == nil {
		return fnSummary{}
	}
	u := &unit{
		c: c, n: n, callee: callee, rep: rep,
		params:    map[types.Object]int{},
		ptrOK:     map[types.Object]bool{},
		rangeBind: map[ast.Node]rangeInfo{},
	}
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
	} else {
		ftype = n.Lit.Type
	}
	if ftype.Params != nil {
		idx := 0
		for _, field := range ftype.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := c.pass.Info.Defs[name]; obj != nil {
					u.params[obj] = idx
					if pointerish(obj.Type()) {
						u.ptrOK[obj] = true
					}
				}
				idx++
			}
		}
	}
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			if len(field.Names) == 0 {
				u.results = append(u.results, nil)
				continue
			}
			for _, name := range field.Names {
				u.results = append(u.results, c.pass.Info.Defs[name])
			}
		}
	}
	// Pre-scan range statements: the cfg surfaces Key/Value as bare
	// expressions at the body top; bind them back to their range.
	ast.Inspect(n.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			if _, nested := n.LitIDs[x]; nested {
				return false
			}
		case *ast.RangeStmt:
			t := c.pass.Info.TypeOf(x.X)
			isMap := false
			if t != nil {
				_, isMap = t.Underlying().(*types.Map)
			}
			info := rangeInfo{x: x.X, isMap: isMap, pos: x.Pos()}
			if x.Key != nil {
				u.rangeBind[x.Key] = info
			}
			if x.Value != nil {
				u.rangeBind[x.Value] = info
			}
		}
		return true
	})

	g := cfg.New(n.Body)
	ins := cfg.Forward(g, cfg.Flow{
		Entry: func() any {
			st := taintState{}
			for obj, i := range u.params {
				if i < 64 {
					st[obj] = varTaint{params: 1 << i}
				}
			}
			return st
		},
		Transfer: func(b *cfg.Block, in any) any {
			state := in.(taintState).clone()
			for _, node := range b.Nodes {
				u.transfer(node, state, false)
			}
			return state
		},
		Meet: func(a, b any) any {
			sa, sb := a.(taintState), b.(taintState)
			out := make(taintState, len(sa)+len(sb))
			for k, v := range sa {
				out[k] = v
			}
			for k, v := range sb {
				out[k] = mergeTaint(out[k], v)
			}
			return out
		},
		Equal: func(a, b any) bool {
			sa, sb := a.(taintState), b.(taintState)
			if len(sa) != len(sb) {
				return false
			}
			for k, va := range sa {
				vb, ok := sb[k]
				if !ok || va.kinds != vb.kinds || va.params != vb.params {
					return false
				}
			}
			return true
		},
	})
	// Final pass: replay transfers, recording summary entries (returns,
	// out-param writes) and emitting diagnostics.
	for _, b := range g.Blocks {
		if ins[b.Index] == nil {
			continue // unreachable
		}
		state := ins[b.Index].(taintState).clone()
		for _, node := range b.Nodes {
			u.transfer(node, state, true)
		}
	}
	return u.sum
}

// transfer applies one CFG node to the taint state. When record is set,
// return statements and out-parameter writes are folded into the summary
// and reported at sinks.
func (u *unit) transfer(node ast.Node, state taintState, record bool) {
	// Call side effects (sanitizers, out-parameter taint) apply wherever
	// a call appears in the node.
	u.applyCallEffects(node, state, record)

	switch s := node.(type) {
	case *ast.AssignStmt:
		u.assign(s, state, record)
	case *ast.ReturnStmt:
		if record {
			u.recordReturn(s, state)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if obj := u.c.pass.Info.Defs[name]; obj != nil {
							state[obj] = u.taintOf(vs.Values[i], state)
						}
					}
				}
			}
		}
	default:
		if info, ok := u.rangeBind[node]; ok {
			// Key/Value binding at the top of a range body.
			t := u.taintOf(info.x, state)
			if info.isMap {
				w := witness{at: callgraph.PosString(u.c.pass.Fset, info.pos)}
				t = mergeTaint(t, taintWith(kindMapOrder, w))
			}
			if id, ok := node.(*ast.Ident); ok {
				obj := u.c.pass.Info.Defs[id]
				if obj == nil {
					obj = u.c.pass.Info.Uses[id]
				}
				if obj != nil {
					state[obj] = mergeTaint(state[obj], t)
				}
			}
		}
	}
}

// assign propagates taint through one assignment statement.
func (u *unit) assign(s *ast.AssignStmt, state taintState, record bool) {
	var rhs []varTaint
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// Multi-value: a call, type assertion, or map read.
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			rhs = u.callResultTaints(call, state, len(s.Lhs))
		} else {
			t := u.taintOf(s.Rhs[0], state)
			rhs = make([]varTaint, len(s.Lhs))
			for i := range rhs {
				rhs[i] = t
			}
		}
	} else {
		for _, r := range s.Rhs {
			rhs = append(rhs, u.taintOf(r, state))
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(rhs) {
			break
		}
		t := rhs[i]
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment (+=, etc.) keeps the old taint too.
			t = mergeTaint(t, u.taintOf(lhs, state))
		}
		u.writeTo(lhs, t, state, record)
	}
}

// writeTo assigns taint to an lvalue: strong update for a bare local
// identifier, weak (merging) update through selectors/indexes, and —
// when the root is a pointer-like parameter — an out-parameter summary
// entry.
func (u *unit) writeTo(lhs ast.Expr, t varTaint, state taintState, record bool) {
	base := unparen(lhs)
	if id, ok := base.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := u.c.pass.Info.Defs[id]
		if obj == nil {
			obj = u.c.pass.Info.Uses[id]
		}
		if obj != nil {
			state[obj] = t
		}
		return
	}
	root := analysis.RootIdent(base)
	if root == nil {
		return
	}
	obj := u.c.pass.Info.Uses[root]
	if obj == nil {
		obj = u.c.pass.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	state[obj] = mergeTaint(state[obj], t)
	if record && t.kinds != 0 && u.ptrOK[obj] {
		if i, ok := u.params[obj]; ok {
			u.addParamTaint(i, t, lhs.Pos())
		}
	}
}

// addParamTaint folds an out-parameter write into the summary and, at a
// sink, reports taint that arrived through a callee.
func (u *unit) addParamTaint(index int, t varTaint, pos token.Pos) {
	for _, existing := range u.sum.Params {
		if existing.Index == index && existing.Kinds&t.kinds == t.kinds {
			return
		}
	}
	w := t.witFor(lowestKind(t.kinds))
	u.sum.Params = append(u.sum.Params, paramTaint{
		Index: index, Kinds: t.kinds, At: w.at, Via: w.via,
	})
	if u.rep != nil && len(w.via) > 0 {
		u.rep.report(pos,
			"%s writes data tainted by %s through parameter %d (via %s, source at %s): "+
				"out-parameters of exported algorithm functions must be deterministic (DESIGN.md §14)",
			u.rep.fn, kindNames(t.kinds), index, strings.Join(w.via, " -> "), w.at)
	}
}

// recordReturn folds one return statement into the Results summary and
// reports call-derived taint at sinks.
func (u *unit) recordReturn(s *ast.ReturnStmt, state taintState) {
	var taints []varTaint
	if len(s.Results) == 0 {
		// Bare return: named results carry the state.
		for _, obj := range u.results {
			if obj == nil {
				taints = append(taints, varTaint{})
				continue
			}
			taints = append(taints, state[obj])
		}
	} else if len(s.Results) == 1 {
		if call, ok := unparen(s.Results[0]).(*ast.CallExpr); ok && len(u.results) > 1 {
			taints = u.callResultTaints(call, state, len(u.results))
		} else {
			taints = []varTaint{u.taintOf(s.Results[0], state)}
		}
	} else {
		for _, r := range s.Results {
			taints = append(taints, u.taintOf(r, state))
		}
	}
	for i, t := range taints {
		if t.kinds == 0 && t.params == 0 {
			continue
		}
		u.addResultTaint(i, t)
		if u.rep != nil && t.kinds != 0 {
			w := t.witFor(lowestKind(t.kinds))
			if len(w.via) > 0 {
				pos := s.Pos()
				if i < len(s.Results) {
					pos = s.Results[i].Pos()
				}
				u.rep.report(pos,
					"%s returns a value tainted by %s (via %s, source at %s): "+
						"exported algorithm results must be deterministic (DESIGN.md §14)",
					u.rep.fn, kindNames(t.kinds), strings.Join(w.via, " -> "), w.at)
			}
		}
	}
}

func (u *unit) addResultTaint(index int, t varTaint) {
	for j, existing := range u.sum.Results {
		if existing.Index == index {
			u.sum.Results[j].Kinds |= t.kinds
			u.sum.Results[j].FromParams |= t.params
			return
		}
	}
	w := t.witFor(lowestKind(t.kinds))
	u.sum.Results = append(u.sum.Results, resultTaint{
		Index: index, Kinds: t.kinds, FromParams: t.params, At: w.at, Via: w.via,
	})
}

// taintOf evaluates the taint of an expression under state.
func (u *unit) taintOf(e ast.Expr, state taintState) varTaint {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := u.c.pass.Info.Uses[x]
		if obj == nil {
			obj = u.c.pass.Info.Defs[x]
		}
		if obj == nil {
			return varTaint{}
		}
		return state[obj]
	case *ast.BasicLit, *ast.FuncLit:
		return varTaint{}
	case *ast.BinaryExpr:
		return mergeTaint(u.taintOf(x.X, state), u.taintOf(x.Y, state))
	case *ast.UnaryExpr:
		return u.taintOf(x.X, state)
	case *ast.StarExpr:
		return u.taintOf(x.X, state)
	case *ast.IndexExpr:
		return mergeTaint(u.taintOf(x.X, state), u.taintOf(x.Index, state))
	case *ast.SliceExpr:
		return u.taintOf(x.X, state)
	case *ast.SelectorExpr:
		if root := analysis.RootIdent(x); root != nil {
			obj := u.c.pass.Info.Uses[root]
			if obj == nil {
				obj = u.c.pass.Info.Defs[root]
			}
			if obj != nil {
				return state[obj]
			}
		}
		return varTaint{}
	case *ast.TypeAssertExpr:
		return u.taintOf(x.X, state)
	case *ast.CompositeLit:
		var t varTaint
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t = mergeTaint(t, u.taintOf(kv.Value, state))
			} else {
				t = mergeTaint(t, u.taintOf(elt, state))
			}
		}
		return t
	case *ast.CallExpr:
		res := u.callResultTaints(x, state, 1)
		if len(res) > 0 {
			return res[0]
		}
		return varTaint{}
	}
	return varTaint{}
}

// callResultTaints evaluates a call's result taints (nres slots).
func (u *unit) callResultTaints(call *ast.CallExpr, state taintState, nres int) []varTaint {
	out := make([]varTaint, nres)
	site := callgraph.PosString(u.c.pass.Fset, call.Pos())

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := u.c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t varTaint
				for _, a := range call.Args {
					t = mergeTaint(t, u.taintOf(a, state))
				}
				out[0] = t
			case "len", "cap", "make", "new", "min", "max":
				// Deterministic regardless of argument taint.
			default:
				var t varTaint
				for _, a := range call.Args {
					t = mergeTaint(t, u.taintOf(a, state))
				}
				out[0] = t
			}
			return out
		}
	}

	// Known nondeterminism sources.
	info := u.c.pass.Info
	if analysis.IsPkgCall(info, call, "time", "Now", "Since", "Until") {
		out[0] = taintWith(kindClock, witness{at: site})
		return out
	}
	if isGlobalRandCall(info, call) {
		out[0] = taintWith(kindRand, witness{at: site})
		return out
	}

	// Sorted-copy helpers sanitize map order from their result.
	if analysis.IsPkgCall(info, call, "slices", "Sorted", "SortedFunc", "SortedStableFunc") {
		var t varTaint
		for _, a := range call.Args {
			t = mergeTaint(t, u.taintOf(a, state))
		}
		t.kinds &^= kindMapOrder
		out[0] = t
		return out
	}

	// Resolved targets: use summaries.
	if targets := u.n.Resolutions[call]; len(targets) > 0 {
		resolved := false
		for _, target := range targets {
			cs, ok := u.callee(target)
			if !ok {
				continue
			}
			resolved = true
			for _, rt := range cs.Results {
				if rt.Index >= nres {
					continue
				}
				t := varTaint{}
				if rt.Kinds != 0 {
					w := witness{at: rt.At, via: append([]string{target}, rt.Via...)}
					for _, k := range []int{kindMapOrder, kindClock, kindRand} {
						if rt.Kinds&k != 0 {
							t = mergeTaint(t, taintWith(k, w))
						}
					}
				}
				for j := 0; j < 64 && j < len(call.Args); j++ {
					if rt.FromParams&(1<<j) == 0 {
						continue
					}
					at := u.taintOf(call.Args[j], state)
					if at.kinds == 0 && at.params == 0 {
						continue
					}
					// Pass-through: extend the witness chain with the
					// laundering callee.
					passed := at
					passed.wit = map[int]witness{}
					for k, w := range at.wit {
						passed.wit[k] = witness{at: w.at, via: append(append([]string{}, w.via...), target)}
					}
					t = mergeTaint(t, passed)
				}
				out[rt.Index] = mergeTaint(out[rt.Index], t)
			}
		}
		if resolved {
			return out
		}
	}

	// Unresolved call: conservative pass-through of argument (and method
	// receiver) taint into every result.
	var t varTaint
	for _, a := range call.Args {
		t = mergeTaint(t, u.taintOf(a, state))
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if u.c.pass.Info.Selections[sel] != nil {
			t = mergeTaint(t, u.taintOf(sel.X, state))
		}
	}
	for i := range out {
		out[i] = t
	}
	return out
}

// applyCallEffects applies, for every call nested in node, the sanitizer
// and out-parameter effects that mutate the state rather than produce
// results.
func (u *unit) applyCallEffects(node ast.Node, state taintState, record bool) {
	ast.Inspect(node, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			if _, nested := u.n.LitIDs[x]; nested {
				return false
			}
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			u.applyOneCall(x, state, record)
		}
		return true
	})
}

func (u *unit) applyOneCall(call *ast.CallExpr, state taintState, record bool) {
	info := u.c.pass.Info
	// In-place sorts sanitize map-order taint on their argument.
	if analysis.IsPkgCall(info, call, "sort",
		"Ints", "Float64s", "Strings", "Sort", "Stable", "Slice", "SliceStable") ||
		analysis.IsPkgCall(info, call, "slices", "Sort", "SortFunc", "SortStableFunc") {
		if len(call.Args) > 0 {
			if root := analysis.RootIdent(call.Args[0]); root != nil {
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if obj != nil {
					t := state[obj]
					t.kinds &^= kindMapOrder
					state[obj] = t
				}
			}
		}
		return
	}
	// Out-parameter taint from resolved callees.
	for _, target := range u.n.Resolutions[call] {
		cs, ok := u.callee(target)
		if !ok {
			continue
		}
		for _, pt := range cs.Params {
			if pt.Index >= len(call.Args) {
				continue
			}
			root := analysis.RootIdent(call.Args[pt.Index])
			if root == nil {
				continue
			}
			obj := info.Uses[root]
			if obj == nil {
				obj = info.Defs[root]
			}
			if obj == nil {
				continue
			}
			w := witness{at: pt.At, via: append([]string{target}, pt.Via...)}
			var t varTaint
			for _, k := range []int{kindMapOrder, kindClock, kindRand} {
				if pt.Kinds&k != 0 {
					t = mergeTaint(t, taintWith(k, w))
				}
			}
			state[obj] = mergeTaint(state[obj], t)
			if record && u.ptrOK[obj] {
				if i, ok := u.params[obj]; ok {
					u.addParamTaint(i, t, call.Pos())
				}
			}
		}
	}
}

// isGlobalRandCall reports whether call uses math/rand's package-level
// global source (excluding the pure constructors New/NewSource/NewZipf —
// and methods on *rand.Rand, which are seeded, reproducible streams).
func isGlobalRandCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	switch sel.Sel.Name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

func summariesEqual(a, b fnSummary) bool {
	if len(a.Results) != len(b.Results) || len(a.Params) != len(b.Params) {
		return false
	}
	am, bm := map[int][2]uint64{}, map[int][2]uint64{}
	for _, r := range a.Results {
		am[r.Index] = [2]uint64{uint64(r.Kinds), r.FromParams}
	}
	for _, r := range b.Results {
		bm[r.Index] = [2]uint64{uint64(r.Kinds), r.FromParams}
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	ap, bp := map[int]int{}, map[int]int{}
	for _, p := range a.Params {
		ap[p.Index] |= p.Kinds
	}
	for _, p := range b.Params {
		bp[p.Index] |= p.Kinds
	}
	for k, v := range ap {
		if bp[k] != v {
			return false
		}
	}
	return true
}

func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func lowestKind(kinds int) int {
	for _, k := range []int{kindMapOrder, kindClock, kindRand} {
		if kinds&k != 0 {
			return k
		}
	}
	return 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
