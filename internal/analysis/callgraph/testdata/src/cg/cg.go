// Package cg exercises every call-resolution mode of the callgraph
// builder: static calls, concrete and interface method calls, function
// literals (invoked, assigned, escaping, go/defer), method values, and
// mutual recursion for the SCC engine.
package cg

import "cgdep"

type Doer interface{ Do() int }

type Local struct{ v int }

func (l *Local) Do() int { return l.v }

func (l Local) Other() int { return l.v + 1 }

func static() int { return cgdep.Helper() }

func viaIface(d Doer) int { return d.Do() }

func concrete(l *Local) int { return l.Do() }

func literals() int {
	total := func(a, b int) int { return a + b }(1, 2) // invoked at definition
	f := func(x int) int { return x * 2 }              // assigned, called below
	total += f(3)
	g := static // named function as value
	total += g()
	h := (&Local{v: 4}).Do // method value
	total += h()
	esc := func() int { return 9 } // escapes via sink
	sink(esc)
	go func() { _ = static() }()
	defer func() { _ = total }()
	return total
}

func sink(func() int) {}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
