package analysis

import (
	"fmt"
	"io"
)

// Run loads the packages matched by patterns (resolved in dir, or the
// working directory when dir is empty), applies every analyzer whose Scope
// matches each package, writes the sorted diagnostics to w, and returns
// them. A non-nil error reports an operational failure (unparseable source,
// type errors, go list failure) — not findings.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	return RunFacts(w, dir, analyzers, nil, patterns...)
}

// RunFacts is Run with caller-visible fact stores: facts[name] is the
// store handed to the analyzer of that name for every package of the run
// (missing entries are created), so callers can inspect or persist what
// an analyzer exported — nontree-lint's -factdir sidecar dump and the
// fact-count acceptance test both use this. Packages are analyzed in
// dependency order (Loader.Load), which is what makes cross-package fact
// propagation sound.
func RunFacts(w io.Writer, dir string, analyzers []*Analyzer, facts map[string]*Facts, patterns ...string) ([]Diagnostic, error) {
	loader := NewLoader()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if facts == nil {
		facts = map[string]*Facts{}
	}
	for _, a := range analyzers {
		if facts[a.Name] == nil {
			facts[a.Name] = NewFacts()
		}
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.InScope(pkg.Path) {
				continue
			}
			ds, err := RunAnalyzerFacts(a, pkg, facts[a.Name])
			if err != nil {
				return nil, err
			}
			all = append(all, ds...)
		}
	}
	SortDiagnostics(all)
	for _, d := range all {
		fmt.Fprintln(w, d)
	}
	return all, nil
}
