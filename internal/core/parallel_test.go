package core

import (
	"fmt"
	"sync"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/netlist"
	"nontree/internal/steiner"
)

// sameResult asserts the fields the determinism guarantee covers are
// byte-identical: added edges, the full objective trace, the final
// objective, and the oracle-invocation count.
func sameResult(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	if len(seq.AddedEdges) != len(par.AddedEdges) {
		t.Fatalf("%s: %d added edges sequential vs %d parallel", label, len(seq.AddedEdges), len(par.AddedEdges))
	}
	for i := range seq.AddedEdges {
		if seq.AddedEdges[i] != par.AddedEdges[i] {
			t.Errorf("%s: added edge %d differs: %v vs %v", label, i, seq.AddedEdges[i], par.AddedEdges[i])
		}
	}
	if len(seq.Trace) != len(par.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(seq.Trace), len(par.Trace))
	}
	for i := range seq.Trace {
		if seq.Trace[i] != par.Trace[i] {
			t.Errorf("%s: trace[%d] differs: %.17g vs %.17g", label, i, seq.Trace[i], par.Trace[i])
		}
	}
	if seq.FinalObjective != par.FinalObjective {
		t.Errorf("%s: final objective %.17g vs %.17g", label, seq.FinalObjective, par.FinalObjective)
	}
	if seq.InitialObjective != par.InitialObjective {
		t.Errorf("%s: initial objective %.17g vs %.17g", label, seq.InitialObjective, par.InitialObjective)
	}
	if seq.Evaluations != par.Evaluations {
		t.Errorf("%s: evaluations %d vs %d", label, seq.Evaluations, par.Evaluations)
	}
}

func withWorkers(opts Options, w int) Options {
	opts.Workers = w
	return opts
}

// TestParallelEquivalenceLDRG asserts Workers: N reproduces Workers: 1
// byte-for-byte on seeded random nets across both oracles and all the
// LDRG-family entry points.
func TestParallelEquivalenceLDRG(t *testing.T) {
	type oracleCase struct {
		name   string
		oracle DelayOracle
		pins   []int // SPICE is ~100× slower per call; keep its nets small
	}
	cases := []oracleCase{
		{"elmore", elmoreOracle(), []int{5, 9, 14, 20}},
		{"spice", spiceOracle(), []int{5, 8}},
	}
	if testing.Short() {
		cases[0].pins = []int{5, 9}
		cases[1].pins = []int{5}
	}
	for _, oc := range cases {
		for _, pins := range oc.pins {
			seed := int64(700 + pins)
			topo := randomMST(t, seed, pins)
			base := Options{Oracle: oc.oracle}
			for _, workers := range []int{2, 4, 7} {
				label := fmt.Sprintf("%s/%dpins/w%d", oc.name, pins, workers)

				seq, err := LDRG(topo, withWorkers(base, 1))
				if err != nil {
					t.Fatalf("%s sequential: %v", label, err)
				}
				par, err := LDRG(topo, withWorkers(base, workers))
				if err != nil {
					t.Fatalf("%s parallel: %v", label, err)
				}
				sameResult(t, "LDRG/"+label, seq, par)

				if oc.name == "spice" && pins > 5 {
					continue // the remaining variants re-run the whole search
				}

				gen := netlist.NewGenerator(seed)
				net, err := gen.Generate(pins)
				if err != nil {
					t.Fatal(err)
				}
				seqS, err := SLDRG(net.Pins, steiner.Options{}, withWorkers(base, 1))
				if err != nil {
					t.Fatalf("%s SLDRG sequential: %v", label, err)
				}
				parS, err := SLDRG(net.Pins, steiner.Options{}, withWorkers(base, workers))
				if err != nil {
					t.Fatalf("%s SLDRG parallel: %v", label, err)
				}
				sameResult(t, "SLDRG/"+label, &seqS.Result, &parS.Result)

				alphas := UniformCriticality(topo.NumPins())
				alphas[len(alphas)-1] = 3 // skew criticality so ties differ from ORG
				seqC, err := CriticalSinkLDRG(topo, alphas, withWorkers(base, 1))
				if err != nil {
					t.Fatalf("%s CSORG sequential: %v", label, err)
				}
				parC, err := CriticalSinkLDRG(topo, alphas, withWorkers(base, workers))
				if err != nil {
					t.Fatalf("%s CSORG parallel: %v", label, err)
				}
				sameResult(t, "CriticalSinkLDRG/"+label, seqC, parC)

				seqT, err := LDRGWithTaps(topo, withWorkers(base, 1))
				if err != nil {
					t.Fatalf("%s taps sequential: %v", label, err)
				}
				parT, err := LDRGWithTaps(topo, withWorkers(base, workers))
				if err != nil {
					t.Fatalf("%s taps parallel: %v", label, err)
				}
				sameResult(t, "LDRGWithTaps/"+label, seqT, parT)
			}
		}
	}
}

// TestParallelEquivalenceHORG covers the hybrid pipeline end to end: the
// routing stage runs the parallel sweep, and the downstream sizing stage
// must see an identical topology.
func TestParallelEquivalenceHORG(t *testing.T) {
	gen := netlist.NewGenerator(41)
	net, err := gen.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	alphas := UniformCriticality(8)
	base := Options{Oracle: elmoreOracle()}
	ws := WireSizeOptions{MaxWidth: 3}

	seq, err := HORG(net.Pins, alphas, true, ws, withWorkers(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := HORG(net.Pins, alphas, true, ws, withWorkers(base, 5))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "HORG routing", &seq.Routing.Result, &par.Routing.Result)
	if seq.FinalObjective() != par.FinalObjective() {
		t.Errorf("HORG final objective %.17g vs %.17g", seq.FinalObjective(), par.FinalObjective())
	}
}

// TestParallelEquivalenceWireSize asserts the widening sweep picks identical
// widths under any worker count, in both selection modes (pure delay descent
// and cost-weighted gain rate).
func TestParallelEquivalenceWireSize(t *testing.T) {
	topo := randomMST(t, 808, 10)
	for _, costWeight := range []float64{0, 0.5} {
		base := WireSizeOptions{Oracle: elmoreOracle(), MaxWidth: 3, CostWeight: costWeight}
		label := fmt.Sprintf("costweight=%g", costWeight)

		seqOpts := base
		seqOpts.Workers = 1
		seq, err := WireSize(topo, seqOpts)
		if err != nil {
			t.Fatalf("%s sequential: %v", label, err)
		}
		parOpts := base
		parOpts.Workers = 6
		par, err := WireSize(topo, parOpts)
		if err != nil {
			t.Fatalf("%s parallel: %v", label, err)
		}

		if len(seq.Widths) != len(par.Widths) {
			t.Fatalf("%s: %d widths sequential vs %d parallel", label, len(seq.Widths), len(par.Widths))
		}
		for e, w := range seq.Widths {
			if par.Widths[e] != w {
				t.Errorf("%s: width of %v differs: %d vs %d", label, e, w, par.Widths[e])
			}
		}
		if seq.Widenings != par.Widenings {
			t.Errorf("%s: widenings %d vs %d", label, seq.Widenings, par.Widenings)
		}
		if seq.Evaluations != par.Evaluations {
			t.Errorf("%s: evaluations %d vs %d", label, seq.Evaluations, par.Evaluations)
		}
		if seq.InitialObjective != par.InitialObjective || seq.FinalObjective != par.FinalObjective {
			t.Errorf("%s: objectives (%.17g, %.17g) vs (%.17g, %.17g)", label,
				seq.InitialObjective, seq.FinalObjective, par.InitialObjective, par.FinalObjective)
		}
	}
}

// TestOracleConcurrentStress hammers one shared oracle instance from many
// goroutines — some on a shared read-only topology, some on private clones —
// and checks every result against a sequential baseline. Run under -race
// this guards the DelayOracle thread-safety contract.
func TestOracleConcurrentStress(t *testing.T) {
	oracles := []struct {
		name   string
		oracle DelayOracle
	}{
		{"elmore", elmoreOracle()},
		{"twopole", &TwoPoleOracle{Params: elmoreOracle().Params}},
		{"spice", spiceOracle()},
	}
	for _, oc := range oracles {
		t.Run(oc.name, func(t *testing.T) {
			pins := 12
			iters := 8
			if oc.name == "spice" {
				pins, iters = 6, 2
			}
			if testing.Short() && oc.name == "spice" {
				t.Skip("short mode")
			}
			shared := randomMST(t, 99, pins)
			want, err := oc.oracle.SinkDelays(shared, nil)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 16
			errs := make(chan error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					topo := shared
					if g%2 == 0 {
						// Half the goroutines perturb private clones, the
						// add/score/remove pattern of a sweep worker.
						topo = shared.Clone()
					}
					for i := 0; i < iters; i++ {
						if topo != shared {
							e := graph.Edge{U: 0, V: 1 + (g/2+i)%(pins-1)}.Canon()
							added := !topo.HasEdge(e) && topo.EdgeLength(e) > 0
							if added {
								if err := topo.AddEdge(e); err != nil {
									errs <- err
									return
								}
							}
							if _, err := oc.oracle.SinkDelays(topo, nil); err != nil {
								errs <- fmt.Errorf("goroutine %d clone eval: %w", g, err)
								return
							}
							if added {
								if err := topo.RemoveEdge(e); err != nil {
									errs <- err
									return
								}
							}
							continue
						}
						got, err := oc.oracle.SinkDelays(topo, nil)
						if err != nil {
							errs <- fmt.Errorf("goroutine %d shared eval: %w", g, err)
							return
						}
						for n := range want {
							if got[n] != want[n] {
								errs <- fmt.Errorf("goroutine %d: delay[%d] = %.17g, want %.17g", g, n, got[n], want[n])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestParallelLDRGStress runs the full parallel greedy loop on a 30-pin net
// with more workers than CPUs; under -race this exercises the sweep engine's
// clone isolation and reduction end to end.
func TestParallelLDRGStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := randomMST(t, 3030, 30)
	base := Options{Oracle: elmoreOracle(), MaxAddedEdges: 3}
	seq, err := LDRG(topo, withWorkers(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := LDRG(topo, withWorkers(base, 8))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "30-pin", seq, par)
	if len(par.AddedEdges) == 0 {
		t.Error("expected the 30-pin net to accept at least one edge")
	}
}

// TestSweepDeterminismGolden locks in the exact edge-acceptance sequence of
// a fixed seed net so future refactors cannot silently change candidate
// ordering or tie-breaking. The golden values were produced by the
// sequential Workers: 1 path at the commit introducing the parallel engine;
// both paths must keep reproducing them bit for bit.
func TestSweepDeterminismGolden(t *testing.T) {
	topo := randomMST(t, 1994, 16)
	const (
		wantEdges = "[0-10 0-6]"
		wantFinal = "3.0426723953514312e-09"
	)
	for _, workers := range []int{1, 4} {
		res, err := LDRG(topo, Options{Oracle: elmoreOracle(), Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		gotEdges := fmt.Sprintf("%v", res.AddedEdges)
		gotFinal := fmt.Sprintf("%.17g", res.FinalObjective)
		if gotEdges != wantEdges {
			t.Errorf("workers=%d: edge sequence %s, want %s", workers, gotEdges, wantEdges)
		}
		if gotFinal != wantFinal {
			t.Errorf("workers=%d: final objective %s, want %s", workers, gotFinal, wantFinal)
		}
	}
}
