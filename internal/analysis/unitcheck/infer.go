package unitcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"nontree/internal/analysis"
	"nontree/internal/analysis/units"
)

// inferencer propagates dimensions through one function (or package-level
// initializer) at a time. Annotations are ground truth; everything else is
// inferred structurally, and an expression whose dimension cannot be
// established is simply unknown — the analyzer stays silent rather than
// guess, so every diagnostic rests on a declared unit.
type inferencer struct {
	pass *analysis.Pass
	an   *annots
	// factFuncs memoizes cross-package function-fact lookups by key; a nil
	// entry records a confirmed miss.
	factFuncs map[string]*funcUnits
	// local maps function-local variables to their declared or inferred
	// dimensions; reset per function.
	local map[types.Object]units.Dim
	// results holds the declared result dimensions of the function being
	// walked (nil when unannotated), consulted by return statements.
	results map[int]units.Dim
}

// checkFuncDecl analyzes one function body: parameters and named results
// pick up their declared dimensions, then every statement is walked.
func (inf *inferencer) checkFuncDecl(d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	inf.local = map[types.Object]units.Dim{}
	inf.results = nil
	if fu := inf.an.funcs[inf.pass.Info.Defs[d.Name]]; fu != nil {
		inf.results = fu.results
		inf.seedParams(d.Type, fu)
		inf.seedNamedResults(d.Type, fu)
	}
	inf.walk(d.Body)
}

// checkPackageValues checks the initializer expressions of a package-level
// var or const declaration against the declared dimensions of their names.
func (inf *inferencer) checkPackageValues(d *ast.GenDecl) {
	inf.local = map[types.Object]units.Dim{}
	inf.results = nil
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, val := range vs.Values {
			if i < len(vs.Names) {
				if want, ok := inf.an.vals[inf.pass.Info.Defs[vs.Names[i]]]; ok {
					inf.checkStore(val, want, "initialization of "+vs.Names[i].Name)
				}
			}
			inf.walk(val)
		}
	}
}

func (inf *inferencer) seedParams(ft *ast.FuncType, fu *funcUnits) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if dim, ok := fu.params[name.Name]; ok {
				inf.local[inf.pass.Info.Defs[name]] = dim
			}
		}
	}
}

func (inf *inferencer) seedNamedResults(ft *ast.FuncType, fu *funcUnits) {
	if ft.Results == nil {
		return
	}
	i := 0
	for _, field := range ft.Results.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if dim, ok := fu.results[i]; ok && name.Name != "_" {
				inf.local[inf.pass.Info.Defs[name]] = dim
			}
			i++
		}
	}
}

// walk visits every node under n in source order, which matches the
// straight-line dataflow the local environment needs: an assignment is
// seen before the uses that follow it.
func (inf *inferencer) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			inf.walkFuncLit(x)
			return false
		case *ast.AssignStmt:
			inf.checkAssign(x)
		case *ast.ReturnStmt:
			inf.checkReturn(x)
		case *ast.RangeStmt:
			inf.inferRange(x)
		case *ast.DeclStmt:
			inf.checkLocalDecl(x)
		case *ast.BinaryExpr:
			inf.checkBinary(x)
		case *ast.CallExpr:
			inf.checkCallArgs(x)
		case *ast.CompositeLit:
			inf.checkCompositeLit(x)
		}
		return true
	})
}

// walkFuncLit analyzes a function literal with its own return context;
// the local environment is shared, matching closure capture.
func (inf *inferencer) walkFuncLit(fl *ast.FuncLit) {
	saved := inf.results
	inf.results = nil
	if fl.Type.Params != nil {
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if dim, ok := suffixUnit(name.Name); ok {
					inf.local[inf.pass.Info.Defs[name]] = dim
				}
			}
		}
	}
	inf.walk(fl.Body)
	inf.results = saved
}

func (inf *inferencer) checkAssign(a *ast.AssignStmt) {
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		if want, ok := inf.dimOf(a.Lhs[0]); ok {
			inf.checkStore(a.Rhs[0], want, "op-assignment")
		} else if got, ok := inf.dimOf(a.Rhs[0]); ok && !inf.adoptable(a.Rhs[0]) {
			// x += y forces x and y to share a dimension; an accumulator
			// declared `var sum float64` learns its unit from what it sums.
			inf.setInferred(a.Lhs[0], got)
		}
		return
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		dl, okl := inf.dimOf(a.Lhs[0])
		if !okl {
			return
		}
		dr, okr := inf.dimOf(a.Rhs[0])
		if !okr {
			if !inf.adoptable(a.Rhs[0]) {
				inf.clearLocal(a.Lhs[0])
				return
			}
			dr = units.One
		}
		if a.Tok == token.MUL_ASSIGN {
			inf.setInferred(a.Lhs[0], dl.Mul(dr))
		} else {
			inf.setInferred(a.Lhs[0], dl.Div(dr))
		}
		return
	default:
		return
	}

	// Multi-value form: a, b := f().
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fu, _ := inf.calleeUnits(call)
		for i, lhs := range a.Lhs {
			if fu != nil {
				if d, ok := fu.results[i]; ok {
					inf.bindDim(lhs, d, "assignment")
					continue
				}
			}
			inf.clearLocal(lhs)
		}
		return
	}

	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		inf.assignPair(lhs, a.Rhs[i])
	}
}

// assignPair handles one lhs = rhs pair: targets with a declared
// dimension are checked; plain local targets pick up the rhs dimension.
func (inf *inferencer) assignPair(lhs, rhs ast.Expr) {
	if want, ok := inf.lvalueDim(lhs); ok {
		inf.checkStore(rhs, want, "assignment")
		return
	}
	if inf.adoptable(rhs) {
		return // a constant adopts the target's dimension; keep what we know
	}
	if got, ok := inf.dimOf(rhs); ok {
		inf.setInferred(lhs, got)
	} else {
		inf.clearLocal(lhs)
	}
}

// bindDim records or checks a known dimension flowing into an assignment
// target (used when the dimension comes from a multi-result call, where
// there is no per-target rhs expression).
func (inf *inferencer) bindDim(lhs ast.Expr, got units.Dim, what string) {
	if want, ok := inf.lvalueDim(lhs); ok {
		if got != want {
			inf.reportDim(lhs.Pos(), what, want, got)
		}
		return
	}
	inf.setInferred(lhs, got)
}

func (inf *inferencer) checkReturn(r *ast.ReturnStmt) {
	if inf.results == nil {
		return
	}
	for i, expr := range r.Results {
		if want, ok := inf.results[i]; ok {
			inf.checkStore(expr, want, "return value")
		}
	}
}

// inferRange gives a range value variable the element dimension of the
// container (an annotation on a slice, array or map declares its
// elements' dimension).
func (inf *inferencer) inferRange(r *ast.RangeStmt) {
	if r.Tok != token.DEFINE || r.Value == nil {
		return
	}
	id, ok := r.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if d, ok := inf.dimOf(r.X); ok {
		if obj := inf.pass.Info.Defs[id]; obj != nil {
			inf.local[obj] = d
		}
	}
}

// checkLocalDecl handles `var` declarations inside a function: the name
// conventions and //nontree:unit directives apply to locals too, and
// undeclared locals infer from their initializers.
func (inf *inferencer) checkLocalDecl(ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := inf.pass.Info.Defs[name]
			if dim, ok := unitOf(inf.pass, name.Name, specDoc(gd, vs.Doc), vs.Comment); ok {
				inf.local[obj] = dim
				if i < len(vs.Values) {
					inf.checkStore(vs.Values[i], dim, "initialization of "+name.Name)
				}
				continue
			}
			if i < len(vs.Values) {
				if d, ok := inf.dimOf(vs.Values[i]); ok && !inf.adoptable(vs.Values[i]) {
					inf.local[obj] = d
				}
			}
		}
	}
}

// checkBinary demands equal dimensions (including scale) of the operands
// of additive and comparison operators. Constants adopt the other side's
// dimension; a mismatch that agrees on dimensions but not scale is called
// out as an SI-prefix slip, the classic fF-vs-F bug.
func (inf *inferencer) checkBinary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if !isNumeric(inf.pass.TypeOf(b.X)) || !isNumeric(inf.pass.TypeOf(b.Y)) {
		return
	}
	if inf.adoptable(b.X) || inf.adoptable(b.Y) {
		return
	}
	dx, okx := inf.dimOf(b.X)
	dy, oky := inf.dimOf(b.Y)
	if !okx || !oky || dx == dy {
		return
	}
	if dx.SameDims(dy) {
		inf.pass.Reportf(b.OpPos, "%s %s %s: same dimension, different SI scale (prefix slip)", dx, b.Op, dy)
		return
	}
	inf.pass.Reportf(b.OpPos, "%s %s %s: mismatched dimensions", dx, b.Op, dy)
}

// checkCallArgs checks argument dimensions against the callee's declared
// parameter units.
func (inf *inferencer) checkCallArgs(call *ast.CallExpr) {
	if tv, ok := inf.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fu, sig := inf.calleeUnits(call)
	if fu == nil || sig == nil || len(fu.params) == 0 || call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1 // a variadic annotation declares the element unit
		}
		if pi >= np {
			break
		}
		p := sig.Params().At(pi)
		if want, ok := fu.params[p.Name()]; ok {
			inf.checkStore(arg, want, "argument "+strconv.Itoa(i)+" ("+p.Name()+")")
		}
	}
}

// checkCompositeLit checks keyed and positional struct literal values
// against the fields' declared units.
func (inf *inferencer) checkCompositeLit(cl *ast.CompositeLit) {
	t := inf.pass.TypeOf(cl)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	named := namedOf(t)
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ := inf.pass.Info.Uses[key].(*types.Var)
			if field == nil {
				continue
			}
			if want, ok := inf.fieldDim(field, named); ok {
				inf.checkStore(kv.Value, want, "field "+key.Name)
			}
		} else if i < st.NumFields() {
			if want, ok := inf.fieldDim(st.Field(i), named); ok {
				inf.checkStore(elt, want, "field "+st.Field(i).Name())
			}
		}
	}
}

// checkStore verifies one expression flowing into a destination with a
// declared dimension.
func (inf *inferencer) checkStore(expr ast.Expr, want units.Dim, what string) {
	if inf.adoptable(expr) {
		return
	}
	got, ok := inf.dimOf(expr)
	if !ok || got == want {
		return
	}
	inf.reportDim(expr.Pos(), what, want, got)
}

func (inf *inferencer) reportDim(pos token.Pos, what string, want, got units.Dim) {
	if got.SameDims(want) {
		inf.pass.Reportf(pos, "%s: %s value where %s is declared (SI prefix slip)", what, got, want)
		return
	}
	inf.pass.Reportf(pos, "%s: %s value where %s is declared", what, got, want)
}

// dimOf establishes the dimension of an expression: annotations first,
// then structure, then the integer fallback (integer-typed expressions
// are dimensionless counts). The second result is false when no dimension
// can be established.
func (inf *inferencer) dimOf(e ast.Expr) (units.Dim, bool) {
	if d, ok := inf.structuralDim(e); ok {
		return d, true
	}
	if t := inf.pass.TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return units.One, true
		}
	}
	return units.Dim{}, false
}

func (inf *inferencer) structuralDim(e ast.Expr) (units.Dim, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return inf.dimOf(x.X)
	case *ast.Ident:
		obj := inf.objOf(x)
		if d, ok := inf.local[obj]; ok {
			return d, true
		}
		if d, ok := inf.an.vals[obj]; ok {
			return d, true
		}
		return inf.factValDim(obj)
	case *ast.SelectorExpr:
		return inf.selDim(x)
	case *ast.IndexExpr:
		return inf.dimOf(x.X) // container annotation is the element unit
	case *ast.SliceExpr:
		return inf.dimOf(x.X)
	case *ast.StarExpr:
		return inf.dimOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return inf.dimOf(x.X)
		}
	case *ast.BinaryExpr:
		return inf.binaryDim(x)
	case *ast.CallExpr:
		return inf.callDim(x)
	}
	return units.Dim{}, false
}

// binaryDim composes dimensions through arithmetic: products and
// quotients combine dimension vectors (Ω·F lands on s mechanically),
// sums keep the known side's dimension, and constants contribute the
// dimensionless unit.
func (inf *inferencer) binaryDim(b *ast.BinaryExpr) (units.Dim, bool) {
	dx, okx := inf.dimOf(b.X)
	dy, oky := inf.dimOf(b.Y)
	switch b.Op {
	case token.MUL, token.QUO:
		if !okx && inf.adoptable(b.X) {
			dx, okx = units.One, true
		}
		if !oky && inf.adoptable(b.Y) {
			dy, oky = units.One, true
		}
		if okx && oky {
			if b.Op == token.MUL {
				return dx.Mul(dy), true
			}
			return dx.Div(dy), true
		}
	case token.ADD, token.SUB:
		if okx {
			return dx, true
		}
		if oky {
			return dy, true
		}
	}
	return units.Dim{}, false
}

// callDim establishes the dimension of a call's (first) result:
// conversions and the dimension-preserving math functions pass their
// argument's dimension through, math.Sqrt halves exponents, math.Pow
// with a constant integer exponent multiplies them, and annotated
// functions yield their declared result unit.
func (inf *inferencer) callDim(call *ast.CallExpr) (units.Dim, bool) {
	if tv, ok := inf.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return inf.dimOf(call.Args[0])
		}
		return units.Dim{}, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		return inf.dimOf(call.Args[0])
	}
	info := inf.pass.Info
	if len(call.Args) >= 1 {
		switch {
		case analysis.IsPkgCall(info, call, "math", "Abs", "Floor", "Ceil", "Round", "Trunc",
			"Max", "Min", "Mod", "Remainder", "Hypot", "Copysign", "Dim", "FMA", "Nextafter"):
			return inf.dimOf(call.Args[0])
		case analysis.IsPkgCall(info, call, "math", "Sqrt"):
			if d, ok := inf.dimOf(call.Args[0]); ok {
				if r, ok := d.Sqrt(); ok {
					return r, true
				}
			}
			return units.Dim{}, false
		case analysis.IsPkgCall(info, call, "math", "Pow"):
			if len(call.Args) == 2 {
				if d, ok := inf.dimOf(call.Args[0]); ok {
					if n, ok := intConst(info, call.Args[1]); ok {
						return d.Pow(n), true
					}
					if d.IsOne() {
						return units.One, true
					}
				}
			}
			return units.Dim{}, false
		}
	}
	if fu, _ := inf.calleeUnits(call); fu != nil {
		if d, ok := fu.results[0]; ok {
			return d, true
		}
	}
	return units.Dim{}, false
}

// calleeUnits resolves the declared units and signature of a call's
// target: a function or method (local annotation or cross-package fact),
// or a value of an annotated named func type.
func (inf *inferencer) calleeUnits(call *ast.CallExpr) (*funcUnits, *types.Signature) {
	t := inf.pass.TypeOf(call.Fun)
	if t == nil {
		return nil, nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	if sig == nil {
		return nil, nil
	}
	var fu *funcUnits
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fu = inf.funcUnitsOf(inf.objOf(fun))
	case *ast.SelectorExpr:
		fu = inf.funcUnitsOf(inf.pass.Info.Uses[fun.Sel])
	}
	if fu == nil {
		if named := namedOf(t); named != nil {
			fu = inf.funcUnitsOf(named.Obj())
		}
	}
	return fu, sig
}

// funcUnitsOf looks up the declared units of a function-shaped object:
// the current package's annotations first, then the imported fact.
func (inf *inferencer) funcUnitsOf(obj types.Object) *funcUnits {
	if obj == nil {
		return nil
	}
	if fu, ok := inf.an.funcs[obj]; ok {
		return fu
	}
	if obj.Pkg() == nil || obj.Pkg() == inf.pass.Pkg {
		return nil
	}
	key := obj.Pkg().Path() + "."
	if fn, ok := obj.(*types.Func); ok {
		if recv := recvNamed(fn); recv != "" {
			key += recv + "."
		}
	}
	return inf.factFunc(key + obj.Name())
}

func (inf *inferencer) factFunc(key string) *funcUnits {
	if fu, ok := inf.factFuncs[key]; ok {
		return fu
	}
	var ff FuncFact
	var fu *funcUnits
	if inf.pass.Facts.Import(key, &ff) && (len(ff.Params) > 0 || len(ff.Results) > 0) {
		fu = newFuncUnits()
		for name, expr := range ff.Params {
			if d, err := units.Parse(expr); err == nil {
				fu.params[name] = d
			}
		}
		for idx, expr := range ff.Results {
			i, errIdx := strconv.Atoi(idx)
			d, errDim := units.Parse(expr)
			if errIdx == nil && errDim == nil {
				fu.results[i] = d
			}
		}
	}
	inf.factFuncs[key] = fu
	return fu
}

// selDim resolves x.Sel: a package-qualified const/var, or a struct field
// access (local annotation or cross-package fact through the receiver's
// named type). Promoted fields of embedded structs are skipped.
func (inf *inferencer) selDim(x *ast.SelectorExpr) (units.Dim, bool) {
	if id, ok := x.X.(*ast.Ident); ok {
		if _, isPkg := inf.pass.Info.Uses[id].(*types.PkgName); isPkg {
			return inf.factValDim(inf.pass.Info.Uses[x.Sel])
		}
	}
	sel := inf.pass.Info.Selections[x]
	if sel == nil || sel.Kind() != types.FieldVal || len(sel.Index()) > 1 {
		return units.Dim{}, false
	}
	field, _ := sel.Obj().(*types.Var)
	if field == nil {
		return units.Dim{}, false
	}
	return inf.fieldDim(field, namedOf(sel.Recv()))
}

// fieldDim resolves a struct field's dimension, locally or through the
// owning named type's exported fact.
func (inf *inferencer) fieldDim(field *types.Var, owner *types.Named) (units.Dim, bool) {
	if d, ok := inf.an.vals[field]; ok {
		return d, true
	}
	if field.Pkg() == nil || field.Pkg() == inf.pass.Pkg || owner == nil {
		return units.Dim{}, false
	}
	key := field.Pkg().Path() + "." + owner.Obj().Name() + "." + field.Name()
	var vf ValueFact
	if !inf.pass.Facts.Import(key, &vf) || vf.Unit == "" {
		return units.Dim{}, false
	}
	d, err := units.Parse(vf.Unit)
	if err != nil {
		return units.Dim{}, false
	}
	return d, true
}

// factValDim resolves the dimension of an imported package-level const or
// var.
func (inf *inferencer) factValDim(obj types.Object) (units.Dim, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg() == inf.pass.Pkg {
		return units.Dim{}, false
	}
	var vf ValueFact
	if !inf.pass.Facts.Import(obj.Pkg().Path()+"."+obj.Name(), &vf) || vf.Unit == "" {
		return units.Dim{}, false
	}
	d, err := units.Parse(vf.Unit)
	if err != nil {
		return units.Dim{}, false
	}
	return d, true
}

// adoptable reports whether e is a constant expression with no declared
// dimension: literals like 2.0 or 15.3e-15 take whatever unit the context
// demands. A named constant carrying its own annotation is not
// polymorphic.
func (inf *inferencer) adoptable(e ast.Expr) bool {
	tv, ok := inf.pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := inf.objOf(x)
		if _, ok := inf.an.vals[obj]; ok {
			return false
		}
		if _, ok := inf.factValDim(obj); ok {
			return false
		}
	case *ast.SelectorExpr:
		if _, ok := inf.selDim(x); ok {
			return false
		}
	}
	return true
}

// lvalueDim returns the declared dimension of an assignment target —
// annotated fields, globals and container elements. Locals with merely
// inferred dimensions report false: reassigning a reused local to a new
// quantity is not a finding.
func (inf *inferencer) lvalueDim(e ast.Expr) (units.Dim, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := inf.objOf(x)
		if d, ok := inf.an.vals[obj]; ok {
			return d, true
		}
		return inf.factValDim(obj)
	case *ast.SelectorExpr:
		return inf.selDim(x)
	case *ast.IndexExpr:
		return inf.lvalueDim(x.X)
	case *ast.StarExpr:
		return inf.lvalueDim(x.X)
	}
	return units.Dim{}, false
}

// setInferred records an inferred dimension for a function-local target.
func (inf *inferencer) setInferred(lhs ast.Expr, d units.Dim) {
	if obj := inf.localTarget(lhs); obj != nil {
		inf.local[obj] = d
	}
}

// clearLocal drops a stale inferred dimension when a local is reassigned
// to something unknown.
func (inf *inferencer) clearLocal(lhs ast.Expr) {
	if obj := inf.localTarget(lhs); obj != nil {
		delete(inf.local, obj)
	}
}

// localTarget returns the function-local variable an assignment writes,
// or nil for fields, package-level vars, blanks and non-identifiers.
func (inf *inferencer) localTarget(lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := inf.objOf(id).(*types.Var)
	if !ok || v.IsField() || inf.pass.Pkg.Scope().Lookup(v.Name()) == v {
		return nil
	}
	return v
}

func (inf *inferencer) objOf(id *ast.Ident) types.Object {
	if obj := inf.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return inf.pass.Info.Defs[id]
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func intConst(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	n, ok := constant.Int64Val(v)
	if !ok {
		return 0, false
	}
	return int(n), true
}
