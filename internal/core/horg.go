package core

import (
	"fmt"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/steiner"
)

// CriticalSinkLDRG solves the CSORG problem of Section 5.1: LDRG steered by
// the weighted objective Σ α_i·t(n_i) instead of max delay. alphas[i]
// weights sink node i+1; see UniformCriticality and SingleCriticalSink for
// the two special cases the paper calls out.
func CriticalSinkLDRG(seed *graph.Topology, alphas []float64, opts Options) (*Result, error) {
	if len(alphas) != seed.NumPins()-1 {
		return nil, fmt.Errorf("core: %d criticalities for %d sinks", len(alphas), seed.NumPins()-1)
	}
	opts.Objective = &WeightedDelayObjective{Alphas: alphas}
	return LDRG(seed, opts)
}

// HORGResult reports the hybrid pipeline's stages.
type HORGResult struct {
	// Routing is the LDRG stage outcome over the Steiner seed.
	Routing *SLDRGResult
	// Sizing is the subsequent wire-sizing stage outcome.
	Sizing *WireSizeResult
}

// FinalObjective returns the objective after both stages.
func (r *HORGResult) FinalObjective() float64 { return r.Sizing.FinalObjective }

// HORG addresses the paper's most general formulation (Section 5.3): given
// sink criticalities, find Steiner points, a routing graph, and a width
// function minimizing Σ α_i·t(n_i). This implementation composes the
// paper's own building blocks: an Iterated 1-Steiner seed, criticality-
// weighted LDRG edge addition, then greedy WSORG wire sizing — each stage
// reusing the same oracle and weighted objective.
//
// When useSteiner is false the pipeline seeds from the MST instead,
// yielding the Steiner-free HORG restriction.
func HORG(pins []geom.Point, alphas []float64, useSteiner bool, wsOpts WireSizeOptions, opts Options) (_ *HORGResult, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	if len(alphas) != len(pins)-1 {
		return nil, fmt.Errorf("core: %d criticalities for %d sinks", len(alphas), len(pins)-1)
	}
	opts.Objective = &WeightedDelayObjective{Alphas: alphas}

	var routing *SLDRGResult
	if useSteiner {
		r, err := SLDRG(pins, steiner.Options{}, opts)
		if err != nil {
			return nil, fmt.Errorf("core: HORG routing stage: %w", err)
		}
		routing = r
	} else {
		seed, err := mst.Prim(pins)
		if err != nil {
			return nil, fmt.Errorf("core: HORG MST seed: %w", err)
		}
		r, err := LDRG(seed, opts)
		if err != nil {
			return nil, fmt.Errorf("core: HORG routing stage: %w", err)
		}
		routing = &SLDRGResult{Result: *r, Seed: seed}
	}

	wsOpts.Objective = opts.Objective
	if wsOpts.Oracle == nil {
		wsOpts.Oracle = opts.Oracle
	}
	if wsOpts.Scoring == ScoringAuto {
		wsOpts.Scoring = opts.Scoring
	}
	if wsOpts.Workers == 0 {
		wsOpts.Workers = opts.Workers
	}
	if wsOpts.Obs == nil {
		wsOpts.Obs = opts.Obs
	}
	if wsOpts.Trace == nil {
		wsOpts.Trace = opts.Trace
	}
	sizing, err := WireSize(routing.Topology, wsOpts)
	if err != nil {
		return nil, fmt.Errorf("core: HORG sizing stage: %w", err)
	}
	return &HORGResult{Routing: routing, Sizing: sizing}, nil
}
