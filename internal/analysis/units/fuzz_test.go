package units

import "testing"

// FuzzParseUnit exercises the unit-expression parser with arbitrary
// input. Beyond not panicking, it checks the central invariant the
// unitcheck diagnostics rely on: any successfully parsed expression
// renders (String) to a form that re-parses to the identical Dim, so a
// unit named in a finding can always be pasted back into an annotation.
func FuzzParseUnit(f *testing.F) {
	for _, seed := range []string{
		"Ω", "Ω/µm", "F·µm⁻¹", "F/um", "H/µm", "fF", "aH", "s", "s^2",
		"s⁻¹", "Hz", "rad", "1", "V", "J", "Ω·F", "10^-15·F", "kg·m²/s³",
		"µm²", "Ohm/µm", "F^-2", "GHz", "ns", "", "//", "^", "⁻", "Ω^^2",
		"Ω/", "×10⁻¹⁵", "mm", "ms", "Mm",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(s)
		if err != nil {
			return
		}
		rendered := d.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) = %+v, but its String %q does not parse: %v", s, d, rendered, err)
		}
		if back != d {
			t.Fatalf("Parse(%q) = %+v, but String/Parse round-trips to %+v via %q", s, d, back, rendered)
		}
		// The algebra must be internally consistent for values reachable
		// from parsing: d·d⁻¹ = scale-free dimensionless.
		if inv := One.Div(d); !d.Mul(inv).IsOne() {
			t.Fatalf("d·d⁻¹ != 1 for %+v", d)
		}
	})
}
