package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fakeGo installs a shim `go` binary at the front of PATH that prints
// stdout, prints stderr, and exits with the given code — letting the
// tests drive goList's error paths (malformed JSON, command failure,
// per-package Error fields) hermetically.
func fakeGo(t *testing.T, stdout, stderr string, exit int) {
	t.Helper()
	dir := t.TempDir()
	script := "#!/bin/sh\n"
	if stdout != "" {
		script += "cat <<'EOF'\n" + stdout + "\nEOF\n"
	}
	if stderr != "" {
		script += "cat >&2 <<'EOF'\n" + stderr + "\nEOF\n"
	}
	script += "exit " + strconv.Itoa(exit) + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go"), []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv("PATH", dir+string(os.PathListSeparator)+os.Getenv("PATH"))
}

func TestLoadMalformedGoListJSON(t *testing.T) {
	fakeGo(t, `{"ImportPath": "x", "GoFiles": [`, "", 0)
	_, err := NewLoader().Load("", "./...")
	if err == nil {
		t.Fatal("expected an error for malformed go list output")
	}
	if !strings.Contains(err.Error(), "decoding go list output") {
		t.Errorf("error %q does not name the decode failure", err)
	}
}

func TestLoadGoListCommandFailure(t *testing.T) {
	fakeGo(t, "", "go: pattern matched no packages", 1)
	_, err := NewLoader().Load("", "./nonexistent")
	if err == nil {
		t.Fatal("expected an error when go list exits non-zero")
	}
	if !strings.Contains(err.Error(), "go list") || !strings.Contains(err.Error(), "matched no packages") {
		t.Errorf("error %q should carry go list's stderr", err)
	}
}

func TestLoadReportsPackageError(t *testing.T) {
	// go list emits a package with an Error field (and exit 0) for, e.g.,
	// an import cycle discovered while loading.
	fakeGo(t, `{"ImportPath": "cyc/a", "Error": {"Err": "import cycle not allowed: cyc/a -> cyc/b -> cyc/a"}}`, "", 0)
	_, err := NewLoader().Load("", "cyc/a")
	if err == nil {
		t.Fatal("expected an error for a package with an Error field")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error %q should surface the package error", err)
	}
}

func TestLoadImportCycleRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the real go tool")
	}
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cyc\n\ngo 1.22\n")
	write("a/a.go", "package a\n\nimport \"cyc/b\"\n\nvar _ = b.B\n")
	write("b/b.go", "package b\n\nimport \"cyc/a\"\n\nvar _ = a.A\n")
	_, err := NewLoader().Load(dir, "./...")
	if err == nil {
		t.Fatal("expected an error for an import cycle")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q should mention the cycle", err)
	}
}

func TestLoadMissingPackageDir(t *testing.T) {
	// go list output referencing a directory whose files are gone: the
	// parse step must fail cleanly, not panic.
	fakeGo(t, `{"ImportPath": "ghost", "Dir": "/nonexistent-dir-for-test", "GoFiles": ["ghost.go"]}`, "", 0)
	_, err := NewLoader().Load("", "ghost")
	if err == nil {
		t.Fatal("expected an error for a missing package directory")
	}
	if !strings.Contains(err.Error(), "parsing") {
		t.Errorf("error %q should come from the parse step", err)
	}
}

func TestLoadDependencyOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real repository packages")
	}
	// nontree/internal/elmore imports nontree/internal/rc but sorts before
	// it alphabetically, so plain `go list` order would analyze the
	// importer first; Load must yield rc before elmore so exported facts
	// exist when their uses are analyzed.
	pkgs, err := NewLoader().Load("", "nontree/internal/elmore", "nontree/internal/rc")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, p := range pkgs {
		pos[p.Path] = i
	}
	rc, okRC := pos["nontree/internal/rc"]
	el, okEl := pos["nontree/internal/elmore"]
	if !okRC || !okEl {
		t.Fatalf("expected both packages loaded, got %v", pos)
	}
	if rc > el {
		t.Fatalf("rc (index %d) must precede its importer elmore (index %d)", rc, el)
	}
}

func TestCheckDirEmpty(t *testing.T) {
	_, err := NewLoader().CheckDir(t.TempDir(), "empty")
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("CheckDir on an empty dir: got %v, want a no-Go-files error", err)
	}
}

func TestCheckDirTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nvar x int = \"not an int\"\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewLoader().CheckDir(dir, "bad")
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("CheckDir on untypeable source: got %v, want a type-check error", err)
	}
}
