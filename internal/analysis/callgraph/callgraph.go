// Package callgraph builds a deterministic whole-repository call graph
// over the internal/analysis loader's go/types information, and runs
// bottom-up function-summary computations on it (summary.go). It is the
// interprocedural backbone of the lockorder, purityflow, and detflow
// analyzers (DESIGN.md §14): each package's graph is built while the
// driver analyzes that package, summaries are exported through the
// analysis.Facts sidecar machinery, and — because the driver loads
// packages in dependency order — a callee's summary always exists before
// any cross-package caller asks for it.
//
// # Node identity
//
// Functions are identified by stable, human-readable IDs that survive the
// trip through JSON facts:
//
//	nontree/internal/rc.Lump             package-level function
//	nontree/internal/obs.(Registry).Add  method (pointer and value receivers collapse)
//	nontree/internal/serve.(Server).handleRoute$1
//	                                     the first function literal inside handleRoute
//
// # Call resolution
//
// Static calls and method calls on concrete receivers resolve through the
// type-checker to exactly one target. Calls through an interface resolve
// conservatively to every in-repository type whose method-name set covers
// the interface — drawn from per-package method-set facts
// (cg.methods.<pkg>.<Type>), so implementers in already-analyzed packages
// are found across package boundaries. Function literals are tracked: a
// literal invoked at its definition site, or through a local variable it
// (or a method value / named function) was assigned to, resolves to the
// literal's node; a literal that merely escapes is recorded as an
// Implicit call at its definition site, so summary-based analyses still
// see its effects.
//
// # Soundness caveats (DESIGN.md §14)
//
//   - Interface resolution is name-based and limited to packages analyzed
//     so far: an implementation living in a package that *imports* the
//     call site's package is invisible (bottom-up ordering), and matching
//     by method-name-set can over-approximate. Both directions are
//     conservative for the may-analyses built on top.
//   - Function values flowing through fields, slices, channels, or
//     parameters are not tracked; such calls have no targets and
//     analyzers treat them as unknown (assumed effect-free), exactly the
//     alias blindness the -race sweeps backstop dynamically.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"nontree/internal/analysis"
)

// FuncID returns the stable cross-package identifier of a declared
// function or method. Generic instantiations collapse onto their origin.
func FuncID(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := "?"
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		return pkg + ".(" + name + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// MethodSetFactPrefix keys the per-package method-set facts Build exports:
// cg.methods.<pkg-path>.<TypeName> → map[method name]function ID. The
// interface-call resolver scans these across every package analyzed so
// far.
const MethodSetFactPrefix = "cg.methods."

// Call is one call site (or implicit function-literal reference) inside a
// Node.
type Call struct {
	// Site is the *ast.CallExpr, or the *ast.FuncLit itself for an
	// implicit edge to an escaping literal.
	Site ast.Node
	// Targets are the resolved callee IDs, deterministic order. Empty
	// means the callee is unknown (untracked function value).
	Targets []string
	// Iface marks a call resolved conservatively through an interface.
	Iface bool
	// Implicit marks an edge to a function literal at its definition site
	// (the literal escapes; it may run at any time, on any goroutine).
	Implicit bool
	// Go marks a call (or literal) that is the operand of a go statement.
	Go bool
	// Defer marks a call that is the operand of a defer statement.
	Defer bool
}

// Node is one function unit: a declared function/method or a function
// literal.
type Node struct {
	// ID is the stable identifier (see FuncID; literals append $n).
	ID string
	// Decl is the declaration, nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declarations.
	Lit *ast.FuncLit
	// Body is the unit's body; nil for bodyless declarations.
	Body *ast.BlockStmt
	// Calls lists the unit's call sites in source order, nested literals
	// excluded (they are their own nodes).
	Calls []Call
	// Resolutions maps each call expression in this unit to its targets,
	// for analyses that re-walk the body (e.g. flow-sensitive held-lock
	// tracking) and need per-site resolution.
	Resolutions map[*ast.CallExpr][]string
	// LitIDs maps each directly nested function literal to its node ID.
	LitIDs map[*ast.FuncLit]string
}

// Name returns a short human-readable name for diagnostics: the part of
// the ID after the package path.
func (n *Node) Name() string {
	if i := strings.LastIndex(n.ID, "/"); i >= 0 {
		if j := strings.Index(n.ID[i:], "."); j >= 0 {
			return n.ID[i+j+1:]
		}
	}
	if j := strings.Index(n.ID, "."); j >= 0 {
		return n.ID[j+1:]
	}
	return n.ID
}

// Graph is one package's call graph. Node order is deterministic (file
// order, then source order; literals directly after their parent).
type Graph struct {
	PkgPath string
	Nodes   []*Node
	byID    map[string]*Node
}

// Lookup returns the in-package node with the given ID, or nil.
func (g *Graph) Lookup(id string) *Node { return g.byID[id] }

// Build constructs the call graph of the package under analysis and
// exports its method-set facts (MethodSetFactPrefix keys) into
// pass.Facts, making this package's types visible to interface-call
// resolution in every dependent package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{PkgPath: pass.Pkg.Path(), byID: map[string]*Node{}}
	b := &gbuilder{pass: pass, g: g}
	b.exportMethodSets()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			id := b.declID(fd)
			b.addUnit(id, fd, nil, fd.Body)
		}
	}
	return g
}

type gbuilder struct {
	pass *analysis.Pass
	g    *Graph
}

// declID derives the node ID of a declaration from its type object,
// falling back to a syntactic ID when type info is missing (malformed
// source is the loader's problem, not ours).
func (b *gbuilder) declID(fd *ast.FuncDecl) string {
	if obj, ok := b.pass.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
		return FuncID(obj)
	}
	return b.g.PkgPath + "." + fd.Name.Name
}

// addUnit registers one function unit and recursively registers its
// nested literals, then resolves its calls.
func (b *gbuilder) addUnit(id string, decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) *Node {
	n := &Node{
		ID:          id,
		Decl:        decl,
		Lit:         lit,
		Body:        body,
		Resolutions: map[*ast.CallExpr][]string{},
		LitIDs:      map[*ast.FuncLit]string{},
	}
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.byID[id] = n
	if body == nil {
		return n
	}

	// Register directly nested literals first (skipping their interiors),
	// so value tracking and call resolution can target them.
	litSeq := 0
	var lits []*ast.FuncLit
	forEachDirect(body, func(node ast.Node) bool {
		if fl, ok := node.(*ast.FuncLit); ok {
			litSeq++
			n.LitIDs[fl] = id + "$" + strconv.Itoa(litSeq)
			lits = append(lits, fl)
			return false
		}
		return true
	})

	funcVars := b.trackFuncValues(n, body)
	b.resolveCalls(n, body, funcVars)

	for _, fl := range lits {
		b.addUnit(n.LitIDs[fl], nil, fl, fl.Body)
	}
	return n
}

// forEachDirect walks node, calling fn for every descendant; returning
// false from fn prunes that subtree (used to keep literal interiors out
// of their parent unit).
func forEachDirect(node ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n == node {
			return true
		}
		return fn(n)
	})
}

// trackFuncValues collects, per local variable, the function values
// assigned to it anywhere in the unit: function literals, named
// functions, and method values. Flow-insensitive and conservative.
func (b *gbuilder) trackFuncValues(n *Node, body *ast.BlockStmt) map[types.Object][]string {
	out := map[types.Object][]string{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := b.pass.Info.Defs[id]
		if obj == nil {
			obj = b.pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		for _, t := range b.valueTargets(n, rhs) {
			out[obj] = append(out[obj], t)
		}
	}
	forEachDirect(body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.FuncLit:
			// Assignments inside a nested literal bind that literal's view
			// of the variable; the literal's own unit tracks them.
			if _, nested := n.LitIDs[s]; nested {
				return false
			}
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					record(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	for obj, ids := range out {
		sort.Strings(ids)
		out[obj] = dedupSorted(ids)
	}
	return out
}

// valueTargets resolves an expression used as a function value to node
// IDs: a nested literal, a named function, or a method value.
func (b *gbuilder) valueTargets(n *Node, e ast.Expr) []string {
	switch x := unparen(e).(type) {
	case *ast.FuncLit:
		if id, ok := n.LitIDs[x]; ok {
			return []string{id}
		}
	case *ast.Ident:
		if fn, ok := b.pass.Info.Uses[x].(*types.Func); ok {
			return []string{FuncID(fn)}
		}
	case *ast.SelectorExpr:
		if sel := b.pass.Info.Selections[x]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return []string{FuncID(fn)}
			}
		} else if fn, ok := b.pass.Info.Uses[x.Sel].(*types.Func); ok {
			return []string{FuncID(fn)}
		}
	}
	return nil
}

// resolveCalls records every call site of the unit (and implicit edges to
// escaping literals) with resolved targets.
func (b *gbuilder) resolveCalls(n *Node, body *ast.BlockStmt, funcVars map[types.Object][]string) {
	// Literals invoked or assigned are "used"; any other literal is an
	// implicit edge at its definition site.
	usedLits := map[*ast.FuncLit]bool{}

	type site struct {
		call  *ast.CallExpr
		goSt  bool
		defSt bool
	}
	var sites []site
	var implicit []*ast.FuncLit

	var inGo, inDefer int
	var walk func(node ast.Node)
	walk = func(node ast.Node) {
		switch s := node.(type) {
		case nil:
			return
		case *ast.GoStmt:
			inGo++
			walk(s.Call)
			inGo--
			return
		case *ast.DeferStmt:
			inDefer++
			walk(s.Call)
			inDefer--
			return
		case *ast.CallExpr:
			sites = append(sites, site{call: s, goSt: inGo > 0, defSt: inDefer > 0})
			if fl, ok := unparen(s.Fun).(*ast.FuncLit); ok {
				if _, nested := n.LitIDs[fl]; nested {
					usedLits[fl] = true
				}
			}
		case *ast.FuncLit:
			if _, nested := n.LitIDs[s]; nested {
				if !usedLits[s] {
					implicit = append(implicit, s)
				}
				return // interior belongs to the literal's own unit
			}
		}
		// Generic recursion over children.
		cont := true
		ast.Inspect(node, func(m ast.Node) bool {
			if m == node {
				return cont
			}
			if m == nil {
				return false
			}
			walk(m)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt)
	}

	for _, s := range sites {
		targets, iface := b.callTargets(n, s.call, funcVars)
		n.Resolutions[s.call] = targets
		n.Calls = append(n.Calls, Call{
			Site: s.call, Targets: targets, Iface: iface,
			Go: s.goSt, Defer: s.defSt,
		})
	}
	for _, fl := range implicit {
		n.Calls = append(n.Calls, Call{
			Site: fl, Targets: []string{n.LitIDs[fl]}, Implicit: true,
		})
	}
}

// callTargets resolves one call expression.
func (b *gbuilder) callTargets(n *Node, call *ast.CallExpr, funcVars map[types.Object][]string) (targets []string, iface bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if id, ok := n.LitIDs[fun]; ok {
			return []string{id}, false
		}
	case *ast.Ident:
		switch obj := b.pass.Info.Uses[fun].(type) {
		case *types.Func:
			return []string{FuncID(obj)}, false
		case *types.Var:
			if ids := funcVars[obj]; len(ids) > 0 {
				return ids, false
			}
		}
	case *ast.SelectorExpr:
		if sel := b.pass.Info.Selections[fun]; sel != nil {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Func-typed struct field: untracked value.
				return nil, false
			}
			if types.IsInterface(sel.Recv()) {
				return b.ifaceTargets(sel.Recv(), fn.Name()), true
			}
			return []string{FuncID(fn)}, false
		}
		// Package-qualified call pkg.F (no Selection entry).
		if fn, ok := b.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return []string{FuncID(fn)}, false
		}
	}
	return nil, false
}

// ifaceTargets resolves an interface method call to every known type
// whose method-name set covers the interface, using the method-set facts
// of this and every previously analyzed package.
func (b *gbuilder) ifaceTargets(recv types.Type, method string) []string {
	it, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	need := make([]string, 0, it.NumMethods())
	for i := 0; i < it.NumMethods(); i++ {
		need = append(need, it.Method(i).Name())
	}
	var out []string
	for _, key := range b.pass.Facts.KeysWithPrefix(MethodSetFactPrefix) {
		var ms map[string]string
		if !b.pass.Facts.Import(key, &ms) {
			continue
		}
		covers := true
		for _, name := range need {
			if _, ok := ms[name]; !ok {
				covers = false
				break
			}
		}
		if covers {
			if id, ok := ms[method]; ok {
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return dedupSorted(out)
}

// exportMethodSets publishes this package's named types' full method sets
// (including promoted methods, via *T) for interface resolution in
// dependent packages.
func (b *gbuilder) exportMethodSets() {
	scope := b.pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		ms := map[string]string{}
		mset := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < mset.Len(); i++ {
			if fn, ok := mset.At(i).Obj().(*types.Func); ok {
				ms[fn.Name()] = FuncID(fn)
			}
		}
		if len(ms) == 0 {
			continue
		}
		key := MethodSetFactPrefix + b.g.PkgPath + "." + name
		_ = b.pass.Facts.Export(b.g.PkgPath, key, ms)
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// PosString renders a token position as "file:line" with the directory
// stripped — stable across machines, suitable for JSON facts and
// diagnostic messages.
func PosString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
