package olog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingAppendAssignsSeq(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		if evicted := r.Append(Event{RequestID: fmt.Sprintf("r%d", i), Outcome: OutcomeOK}); evicted {
			t.Fatalf("append %d evicted below capacity", i)
		}
	}
	events := r.Events()
	if len(events) != 3 || r.Len() != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d below capacity", r.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	evictions := 0
	for i := 0; i < 5; i++ {
		if r.Append(Event{RequestID: fmt.Sprintf("r%d", i), Outcome: OutcomeOK}) {
			evictions++
		}
	}
	if evictions != 2 || r.Dropped() != 2 {
		t.Fatalf("evictions=%d dropped=%d, want 2 and 2", evictions, r.Dropped())
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("got %d retained events, want 3", len(events))
	}
	// Oldest-first with seq continuity across the wrap.
	for i, e := range events {
		if e.Seq != int64(i+3) {
			t.Fatalf("retained event %d has seq %d, want %d", i, e.Seq, i+3)
		}
	}
}

func TestRingFind(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Append(Event{RequestID: fmt.Sprintf("r%d", i), Outcome: OutcomeOK})
	}
	if _, ok := r.Find("r0"); ok {
		t.Fatal("found an evicted event")
	}
	e, ok := r.Find("r4")
	if !ok || e.Seq != 5 {
		t.Fatalf("Find(r4) = %+v, %v; want seq 5", e, ok)
	}
	if _, ok := r.Find("missing"); ok {
		t.Fatal("found a never-appended event")
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < DefaultRingCapacity+10; i++ {
		r.Append(Event{RequestID: fmt.Sprintf("r%d", i), Outcome: OutcomeOK})
	}
	if r.Len() != DefaultRingCapacity || r.Dropped() != 10 {
		t.Fatalf("len=%d dropped=%d, want %d and 10", r.Len(), r.Dropped(), DefaultRingCapacity)
	}
}

func TestRingWriteJSONLAndFingerprint(t *testing.T) {
	r := NewRing(4)
	r.Append(Event{RequestID: "ra", Outcome: OutcomeOK, Status: 200, TotalSeconds: 0.5})
	r.Append(Event{RequestID: "rb", Outcome: OutcomeError, Status: 422, Error: "no feasible edge"})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back) != 2 || back[0].RequestID != "ra" || back[1].RequestID != "rb" {
		t.Fatalf("round trip: %+v", back)
	}

	fp := r.Fingerprint()
	if strings.Contains(fp, "total_s") {
		t.Fatalf("fingerprint leaked a nondeterministic field: %s", fp)
	}
	if !strings.Contains(fp, `"request_id":"ra"`) || !strings.Contains(fp, `"request_id":"rb"`) {
		t.Fatalf("fingerprint missing events: %s", fp)
	}
}

func TestRingConcurrentAppend(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Append(Event{RequestID: fmt.Sprintf("g%dr%d", g, i), Outcome: OutcomeOK})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 || r.Dropped() != 800-64 {
		t.Fatalf("len=%d dropped=%d after concurrent appends", r.Len(), r.Dropped())
	}
	// Sequence numbers of the retained tail must be contiguous.
	events := r.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
}
