// Package pfx closes the cross-package chain: its oracle calls into
// pfdep, whose summary fact carries the global write across the package
// boundary.
package pfx

import "pfdep"

type O struct{ v int }

func (o *O) Eval(x float64) float64 {
	_ = pfdep.Bump() // want `Eval calls pfdep\.Bump, which writes package-level variable pfdep\.Counter`
	return x
}

func (o *O) Evaluate(x int) float64 {
	return float64(pfdep.Pure(x)) // a pure cross-package call is fine
}
