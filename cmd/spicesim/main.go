// Command spicesim builds the distributed RC(L) circuit of a routing
// topology and runs a transient step-response simulation, printing per-sink
// 50% delays and optionally dumping full waveforms as CSV.
//
// Usage:
//
//	spicesim -gen 10 -seed 7                     # MST of a random net
//	spicesim -gen 10 -algo ldrg -csv waves.csv   # waveforms of the LDRG graph
//	spicesim -net my.json -inductance -segment 250
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nontree"
	"nontree/internal/rc"
	"nontree/internal/spice"
	"nontree/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spicesim: ")

	var (
		netFile    = flag.String("net", "", "net file (JSON or text)")
		genPins    = flag.Int("gen", 0, "generate a random net with this many pins")
		seed       = flag.Int64("seed", 1, "random net seed")
		algo       = flag.String("algo", "mst", "topology: mst, steiner, ert, ldrg")
		segment    = flag.Float64("segment", rc.DefaultMaxSegment, "π-segment length (µm)")
		inductance = flag.Bool("inductance", false, "include wire inductance (RLC)")
		method     = flag.String("method", "trap", "integration: trap, be, or adaptive (LTE-controlled)")
		csvOut     = flag.String("csv", "", "write sink waveforms as CSV here")
		deckOut    = flag.String("deck", "", "write a SPICE .cir deck of the circuit here (for external SPICE validation)")
		ac         = flag.Bool("ac", false, "also run an AC sweep and report each sink's -3dB bandwidth")
	)
	flag.Parse()

	if err := run(*netFile, *genPins, *seed, *algo, *segment, *inductance, *method, *csvOut, *deckOut, *ac); err != nil {
		log.Fatal(err)
	}
}

func run(netFile string, genPins int, seed int64, algo string, segment float64, inductance bool, method, csvOut, deckOut string, ac bool) error {
	var net *nontree.Net
	var err error
	switch {
	case netFile != "":
		f, err2 := os.Open(netFile)
		if err2 != nil {
			return err2
		}
		net, err = nontree.ReadNetJSON(f)
		f.Close()
	case genPins >= 2:
		net, err = nontree.GenerateNet(seed, genPins)
	default:
		return fmt.Errorf("need -net FILE or -gen N")
	}
	if err != nil {
		return err
	}

	params := nontree.DefaultParams()
	var topo *nontree.Topology
	switch algo {
	case "mst":
		topo, err = nontree.MST(net)
	case "steiner":
		topo, err = nontree.SteinerTree(net)
	case "ert":
		topo, err = nontree.ERT(net, params)
	case "ldrg":
		seedTopo, err2 := nontree.MST(net)
		if err2 != nil {
			return err2
		}
		res, err2 := nontree.LDRG(seedTopo, nontree.Config{})
		if err2 != nil {
			return err2
		}
		topo = res.Topology
	default:
		return fmt.Errorf("unknown topology %q", algo)
	}
	if err != nil {
		return err
	}

	cm, err := rc.BuildCircuit(topo, params, rc.BuildOpts{
		MaxSegmentLength:  segment,
		IncludeInductance: inductance,
	})
	if err != nil {
		return err
	}
	r, c, l, v, i := cm.Circuit.Counts()
	fmt.Printf("circuit: %d nodes, %dR %dC %dL %dV %dI\n", cm.Circuit.NumNodes(), r, c, l, v, i)

	mo := spice.DefaultMeasureOpts()
	switch method {
	case "be":
		mo.Method = spice.BackwardEuler
	case "adaptive":
		mo.Adaptive = true
	}
	delays, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, mo)
	if err != nil {
		return err
	}
	var worst float64
	for idx, d := range delays {
		fmt.Printf("  sink n%-3d  50%% delay %8.4f ns\n", idx+1, d*1e9)
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max sink delay: %.4f ns; wirelength %.0f µm\n", worst*1e9, topo.Cost())

	if ac {
		// Bracket each sink's -3dB point around the rough single-pole
		// estimate f ≈ 0.35/t50 (within a factor of ~1000 either way).
		for idx, node := range cm.SinkNodes {
			guess := 0.35 / delays[idx]
			f3db, err := spice.Bandwidth3dB(cm.Circuit, node, guess/1000, guess*1000)
			if err != nil {
				return fmt.Errorf("AC sweep sink n%d: %w", idx+1, err)
			}
			fmt.Printf("  sink n%-3d  -3dB bandwidth %8.2f MHz\n", idx+1, f3db/1e6)
		}
	}

	if deckOut != "" {
		f, err := os.Create(deckOut)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("nontree %s routing, %d pins", algo, topo.NumPins())
		if err := spice.WriteDeck(f, cm.Circuit, title, worst/500, 4*worst); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", deckOut)
	}

	if csvOut != "" {
		horizon := 4 * worst
		tr, err := spice.Transient(cm.Circuit, spice.TranOpts{
			Step:   horizon / 2000,
			Stop:   horizon,
			Method: mo.Method,
			Record: true,
		})
		if err != nil {
			return err
		}
		series := map[string][]float64{}
		var order []string
		for idx, node := range cm.SinkNodes {
			label := fmt.Sprintf("sink_n%d", idx+1)
			series[label] = tr.V[node]
			order = append(order, label)
		}
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.WaveformCSV(f, tr.Times, series, order); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples)\n", csvOut, len(tr.Times))
	}
	return nil
}
