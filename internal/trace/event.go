package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Event kinds. Each kind populates a documented subset of Event's fields;
// unused fields stay at their zero value and are omitted from the
// canonical encoding.
const (
	// KindSweepStart opens one greedy sweep: Sweep numbers it (1-based),
	// N is the candidate count, Tap marks tap sweeps. Wire-widening
	// sweeps are recognizable by their candidate events, which carry the
	// proposed widths.
	KindSweepStart = "sweep_start"
	// KindCandidateScored reports one candidate's objective: Sweep and
	// Index locate it, U/V name the edge (for taps, the split edge with
	// Tap set and X/Y the tap point; for widenings, Width the proposed
	// width), Value is the objective with the candidate applied.
	KindCandidateScored = "candidate_scored"
	// KindEdgeAccepted commits a topology modification: U/V the edge
	// (for taps, the new source wire with Tap set and X/Y the tap point),
	// Before/After bracket the objective.
	KindEdgeAccepted = "edge_accepted"
	// KindEdgeRejected explains a non-acceptance: the best candidate of a
	// sweep that improved nothing (Reason "no_improvement"), or an edge
	// tried and reverted (Reason "reverted"). U/V name the edge, Value
	// its objective, Before the objective it failed to beat.
	KindEdgeRejected = "edge_rejected"
	// KindCandidatePruned reports a candidate skipped by the incremental
	// sweep's lower-bound pruning: Sweep and Index locate it exactly like
	// candidate_scored (pruned candidates consume an index), U/V name the
	// edge (Width the proposed width for widenings), Value is the proved
	// best-case objective lower bound, Before the cutoff it failed to
	// undercut. A pruned candidate was never evaluated by the oracle.
	KindCandidatePruned = "candidate_pruned"
	// KindOracleEval reports one delay-oracle evaluation: Oracle names
	// the model, N the topology's node count. Emitted by oracle
	// implementations; deterministic order only in sequential contexts
	// (see the package comment and DESIGN.md §11).
	KindOracleEval = "oracle_eval"
	// KindWireSizeStep commits one accepted widening: U/V the edge,
	// Width the new width, Before/After the objective change.
	KindWireSizeStep = "wiresize_step"
)

// Rejection reasons for KindEdgeRejected.
const (
	// ReasonNoImprovement marks a sweep whose best candidate did not beat
	// the improvement threshold; the event carries that best candidate.
	ReasonNoImprovement = "no_improvement"
	// ReasonReverted marks an edge that was added, measured, and removed
	// again because the objective did not improve (H1's probe step).
	ReasonReverted = "reverted"
)

// Event is one execution-trace record. All fields except Elapsed are
// deterministic: for a fixed seed they are byte-identical in the canonical
// encoding at any Options.Workers value. Elapsed is wall-clock seconds
// since the tracer started and is excluded by Deterministic.
type Event struct {
	// Seq is the stable event ID, assigned by the tracer in emission
	// order starting at 1. Emission order is deterministic, so Seq is too.
	Seq int64
	// Kind is one of the Kind constants.
	Kind string
	// Sweep numbers the greedy sweep the event belongs to (1-based).
	Sweep int
	// Index is the candidate's position in its sweep's canonical order.
	Index int
	// U and V are the edge's endpoints (canonical order U < V).
	U, V int
	// Tap marks tap-sweep events; X and Y then locate the tap point (µm).
	Tap  bool
	X, Y float64
	// Width is a wire width (proposed for candidates, committed for
	// wiresize steps).
	Width int
	// N is a kind-dependent count: candidates in a sweep, nodes in an
	// oracle evaluation.
	N int64
	// Value is the candidate's objective score (seconds).
	Value float64
	// Before and After bracket an accepted modification's objective.
	Before, After float64
	// Oracle names the delay model of an oracle_eval event.
	Oracle string
	// Reason is one of the Reason constants on edge_rejected events.
	Reason string
	// Elapsed is wall-clock seconds since the tracer started — the one
	// nondeterministic field, excluded from every determinism comparison.
	Elapsed float64
}

// Deterministic returns the event with its nondeterministic field
// (Elapsed) cleared — the projection every byte-identity guarantee and
// the replay differ operate on.
func (e Event) Deterministic() Event {
	e.Elapsed = 0
	return e
}

// jsonEvent is the wire form of Event: floats are hex-literal strings so
// the encoding is bit-exact, and every zero-valued field is omitted so
// decode→encode reproduces the input bytes.
type jsonEvent struct {
	Seq     int64  `json:"seq"`
	Kind    string `json:"kind"`
	Sweep   int    `json:"sweep,omitempty"`
	Index   int    `json:"index,omitempty"`
	U       int    `json:"u,omitempty"`
	V       int    `json:"v,omitempty"`
	Tap     bool   `json:"tap,omitempty"`
	X       string `json:"x,omitempty"`
	Y       string `json:"y,omitempty"`
	Width   int    `json:"width,omitempty"`
	N       int64  `json:"n,omitempty"`
	Value   string `json:"value,omitempty"`
	Before  string `json:"before,omitempty"`
	After   string `json:"after,omitempty"`
	Oracle  string `json:"oracle,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Elapsed string `json:"elapsed,omitempty"`
}

// formatFloat renders a float as a hex literal ("0x1.8p+01"), the exact,
// locale-free form strconv.ParseFloat reads back bit-identically. The
// zero bit pattern renders as "" (the field is then omitted); NaNs are
// canonicalized — traces never carry NaN payloads.
func formatFloat(v float64) string {
	if math.Float64bits(v) == 0 {
		return ""
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// canonString maps a string to the canonical form the JSON layer
// preserves: invalid UTF-8 is replaced by U+FFFD up front, so the first
// encoding already carries the bytes every later decode→encode cycle
// reproduces. Kind, Oracle and Reason are fixed constants in practice,
// making this a no-op on real traces.
func canonString(s string) string {
	return strings.ToValidUTF8(s, "�")
}

func parseFloat(s, field string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: field %q: %w", field, err)
	}
	return v, nil
}

// Encode renders the event as one canonical JSON line (no trailing
// newline). The encoding is a pure function of the event: fixed key
// order, hex-literal floats, zero-valued fields omitted — so two equal
// events encode to identical bytes and Decode(Encode(e)) round-trips
// every field bit-exactly (NaN payloads are canonicalized, and invalid
// UTF-8 in string fields is replaced by U+FFFD up front).
func (e Event) Encode() []byte {
	je := jsonEvent{
		Seq:     e.Seq,
		Kind:    canonString(e.Kind),
		Sweep:   e.Sweep,
		Index:   e.Index,
		U:       e.U,
		V:       e.V,
		Tap:     e.Tap,
		X:       formatFloat(e.X),
		Y:       formatFloat(e.Y),
		Width:   e.Width,
		N:       e.N,
		Value:   formatFloat(e.Value),
		Before:  formatFloat(e.Before),
		After:   formatFloat(e.After),
		Oracle:  canonString(e.Oracle),
		Reason:  canonString(e.Reason),
		Elapsed: formatFloat(e.Elapsed),
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(je); err != nil {
		// A struct of ints and strings cannot fail to marshal.
		panic(fmt.Sprintf("trace: encoding event: %v", err))
	}
	return bytes.TrimRight(buf.Bytes(), "\n")
}

// DecodeEvent parses one canonical JSON line. Unknown keys are rejected:
// a trace that decodes is guaranteed to re-encode byte-identically.
func DecodeEvent(line []byte) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var je jsonEvent
	if err := dec.Decode(&je); err != nil {
		return Event{}, fmt.Errorf("trace: decoding event: %w", err)
	}
	e := Event{
		Seq:    je.Seq,
		Kind:   je.Kind,
		Sweep:  je.Sweep,
		Index:  je.Index,
		U:      je.U,
		V:      je.V,
		Tap:    je.Tap,
		Width:  je.Width,
		N:      je.N,
		Oracle: je.Oracle,
		Reason: je.Reason,
	}
	var err error
	if e.X, err = parseFloat(je.X, "x"); err != nil {
		return Event{}, err
	}
	if e.Y, err = parseFloat(je.Y, "y"); err != nil {
		return Event{}, err
	}
	if e.Value, err = parseFloat(je.Value, "value"); err != nil {
		return Event{}, err
	}
	if e.Before, err = parseFloat(je.Before, "before"); err != nil {
		return Event{}, err
	}
	if e.After, err = parseFloat(je.After, "after"); err != nil {
		return Event{}, err
	}
	if e.Elapsed, err = parseFloat(je.Elapsed, "elapsed"); err != nil {
		return Event{}, err
	}
	return e, nil
}

// WriteJSONL writes the events as canonical JSONL, one event per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := bw.Write(e.Encode()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a canonical JSONL trace. Blank lines are skipped so
// hand-edited fixtures stay readable.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		e, err := DecodeEvent(b)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return events, nil
}

// Fingerprint renders the deterministic projection of the events as
// canonical JSONL. Two runs with identical decisions produce byte-
// identical fingerprints at any worker count — the trace analogue of
// obs.Snapshot.Fingerprint.
func Fingerprint(events []Event) string {
	var buf bytes.Buffer
	for _, e := range events {
		buf.Write(e.Deterministic().Encode())
		buf.WriteByte('\n')
	}
	return buf.String()
}
