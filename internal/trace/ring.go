package trace

import (
	"io"
	"sync"
	"time"
)

// This file is the only place in package trace that reads the wall clock
// (mirroring obs/span.go): Ring stamps each event's Elapsed field at Emit.
// Elapsed is the trace's sole nondeterministic field; Event.Deterministic
// drops it, and every byte-identity guarantee is stated over that
// projection, so the clock can never influence an algorithm decision.

// DefaultRingCapacity is the event capacity NewRing uses for capacity <= 0
// — ample for the paper-scale nets (a 30-pin LDRG run emits a few
// thousand events) while bounding a long-lived daemon's memory.
const DefaultRingCapacity = 4096

// Ring is the standard Tracer: a bounded ring buffer keeping the most
// recent events. Emission assigns monotonically increasing sequence
// numbers, so even after wraparound the retained tail reports how much
// history it lost (Dropped). Safe for concurrent use.
//
// Lock order: mu is a leaf lock — no Ring method calls out of the package
// while holding it, so it can safely be acquired under any caller's lock
// (serve.Server holds its mu across trace reads). The lockorder analyzer
// verifies this nesting stays acyclic (DESIGN.md §14).
type Ring struct {
	mu sync.Mutex
	//nontree:guardedby mu
	buf []Event
	// head is the index of the oldest retained event.
	//nontree:guardedby mu
	head int
	//nontree:guardedby mu
	size int
	//nontree:guardedby mu
	seq int64
	//nontree:guardedby mu
	dropped int64
	start   time.Time // immutable after NewRing
}

// NewRing returns a tracer retaining the last capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{
		buf: make([]Event, 0, capacity),
		//nontree:allow nondetsource trace timing baseline only; Elapsed is stamped into the sole nondeterministic event field, which Event.Deterministic excludes from every comparison (DESIGN.md §11)
		start: time.Now(),
	}
}

// Emit implements Tracer: assigns the next sequence number, stamps the
// wall-clock offset, and appends the event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.Seq = r.seq
	//nontree:allow nondetsource trace timing field only; lands in Event.Elapsed, outside the deterministic projection (DESIGN.md §11)
	e.Elapsed = time.Since(r.start).Seconds()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		r.size++
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// Events returns the retained events, oldest first. The slice is a copy.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Dropped returns how many events were evicted by wraparound; zero means
// Events holds the complete trace.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteJSONL writes the retained events as canonical JSONL.
func (r *Ring) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Events())
}

// Fingerprint renders the deterministic projection of the retained
// events; see the package-level Fingerprint.
func (r *Ring) Fingerprint() string {
	return Fingerprint(r.Events())
}
