package core

import (
	"math"
	"testing"

	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/rc"
)

func elmoreOracle() *ElmoreOracle { return &ElmoreOracle{Params: rc.Default()} }

func spiceOracle() *SpiceOracle { return &SpiceOracle{Params: rc.Default()} }

func randomMST(t *testing.T, seed int64, pins int) *graph.Topology {
	t.Helper()
	gen := netlist.NewGenerator(seed)
	n, err := gen.Generate(pins)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mst.Prim(n.Pins)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestLDRGNeverWorsensObjective(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		topo := randomMST(t, seed, 10)
		res, err := LDRG(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalObjective > res.InitialObjective {
			t.Errorf("seed %d: objective worsened %.4g → %.4g",
				seed, res.InitialObjective, res.FinalObjective)
		}
		// The trace must be strictly decreasing.
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i] >= res.Trace[i-1] {
				t.Errorf("seed %d: trace not decreasing at %d: %v", seed, i, res.Trace)
			}
		}
	}
}

func TestLDRGFindsImprovementsOnLargerNets(t *testing.T) {
	// The paper reports LDRG beats the MST on 100% of 20- and 30-pin nets;
	// with the Elmore oracle we should at minimum see frequent wins.
	wins := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		topo := randomMST(t, 1000+seed, 20)
		res, err := LDRG(topo, Options{Oracle: elmoreOracle()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Improved() {
			wins++
			if len(res.AddedEdges) == 0 {
				t.Error("improved but no edges recorded")
			}
		}
	}
	if wins < trials/2 {
		t.Errorf("LDRG won only %d/%d 20-pin nets; paper reports ~100%%", wins, trials)
	}
}

func TestLDRGDoesNotMutateSeed(t *testing.T) {
	topo := randomMST(t, 3, 10)
	edgesBefore := topo.NumEdges()
	costBefore := topo.Cost()
	if _, err := LDRG(topo, Options{Oracle: elmoreOracle()}); err != nil {
		t.Fatal(err)
	}
	if topo.NumEdges() != edgesBefore || topo.Cost() != costBefore {
		t.Error("LDRG mutated its seed topology")
	}
}

func TestLDRGResultTopologyHasAddedEdges(t *testing.T) {
	topo := randomMST(t, 42, 20)
	res, err := LDRG(topo, Options{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.AddedEdges {
		if !res.Topology.HasEdge(e) {
			t.Errorf("added edge %v missing from result topology", e)
		}
		if topo.HasEdge(e) {
			t.Errorf("added edge %v was already in the seed", e)
		}
	}
	if res.Topology.NumEdges() != topo.NumEdges()+len(res.AddedEdges) {
		t.Error("edge count mismatch")
	}
	// Result must remain connected; with any addition it is no longer a tree.
	if !res.Topology.Connected() {
		t.Error("result disconnected")
	}
	if len(res.AddedEdges) > 0 && res.Topology.IsTree() {
		t.Error("result with added edges cannot be a tree")
	}
}

func TestLDRGMaxAddedEdgesRespected(t *testing.T) {
	topo := randomMST(t, 77, 20)
	res, err := LDRG(topo, Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AddedEdges) > 1 {
		t.Errorf("added %d edges with MaxAddedEdges=1", len(res.AddedEdges))
	}
}

func TestLDRGSpiceAndElmoreOraclesBroadlyAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("spice oracle is slow")
	}
	// On the same net, both oracles should find improvements of similar
	// magnitude (they need not pick identical edges).
	topo := randomMST(t, 5, 10)

	resE, err := LDRG(topo, Options{Oracle: elmoreOracle(), MaxAddedEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	resS, err := LDRG(topo, Options{Oracle: spiceOracle(), MaxAddedEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	eImp := resE.InitialObjective / math.Max(resE.FinalObjective, 1e-30)
	sImp := resS.InitialObjective / math.Max(resS.FinalObjective, 1e-30)
	if (eImp > 1.02) != (sImp > 1.02) && math.Abs(eImp-sImp) > 0.15 {
		t.Errorf("oracles disagree strongly: elmore improvement ×%.3f vs spice ×%.3f", eImp, sImp)
	}
}

func TestLDRGRejectsBadInputs(t *testing.T) {
	topo := randomMST(t, 1, 5)
	if _, err := LDRG(nil, Options{Oracle: elmoreOracle()}); err != ErrSeedNil {
		t.Errorf("nil seed: got %v", err)
	}
	if _, err := LDRG(topo, Options{}); err != ErrNilOracle {
		t.Errorf("nil oracle: got %v", err)
	}
	disconnected := graph.NewTopology(topo.Points())
	if _, err := LDRG(disconnected, Options{Oracle: elmoreOracle()}); err != ErrSeedInvalid {
		t.Errorf("disconnected seed: got %v", err)
	}
}

func TestWeightedObjectiveSingleCriticalSink(t *testing.T) {
	topo := randomMST(t, 9, 10)
	alphas, err := SingleCriticalSink(topo.NumPins(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CriticalSinkLDRG(topo, alphas, Options{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	// The weighted objective equals the critical sink's delay; it must not
	// increase.
	if res.FinalObjective > res.InitialObjective {
		t.Errorf("critical sink delay worsened: %.4g → %.4g",
			res.InitialObjective, res.FinalObjective)
	}
}

func TestCriticalSinkWeightsValidation(t *testing.T) {
	if _, err := SingleCriticalSink(5, 0); err == nil {
		t.Error("sink 0 (the source) must be rejected")
	}
	if _, err := SingleCriticalSink(5, 5); err == nil {
		t.Error("out-of-range sink must be rejected")
	}
	a, err := SingleCriticalSink(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 0}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("weights %v, want %v", a, want)
		}
	}
	u := UniformCriticality(4)
	if len(u) != 3 || u[0] != 1 || u[2] != 1 {
		t.Errorf("UniformCriticality(4) = %v", u)
	}
	topo := randomMST(t, 2, 6)
	if _, err := CriticalSinkLDRG(topo, []float64{1}, Options{Oracle: elmoreOracle()}); err == nil {
		t.Error("mismatched alphas length must be rejected")
	}
}
