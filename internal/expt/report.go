package expt

import (
	"fmt"
	"io"

	"nontree/internal/stats"
)

// Row is one line of a reproduced table: statistics for one net size.
type Row struct {
	Size    int
	Summary stats.Summary
}

// Section groups rows under a label (e.g. "Iteration One").
type Section struct {
	Name string
	Rows []Row
}

// Table is a reproduced paper table.
type Table struct {
	ID       string // e.g. "table2"
	Title    string // e.g. "LDRG Algorithm Statistics"
	Baseline string // what ratios are normalized to
	Sections []Section
}

// Render writes the table in the paper's layout.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s (normalized to %s)\n", t.ID, t.Title, t.Baseline)
	for _, sec := range t.Sections {
		if sec.Name != "" {
			fmt.Fprintf(w, "  [%s]\n", sec.Name)
		}
		fmt.Fprintln(w, indent(stats.Header()))
		for _, r := range sec.Rows {
			fmt.Fprintln(w, indent(r.Summary.Row(fmt.Sprintf("%d", r.Size))))
		}
	}
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}

// Section lookup helpers used by tests and benches.

// FindSection returns the section with the given name, or nil.
func (t *Table) FindSection(name string) *Section {
	for i := range t.Sections {
		if t.Sections[i].Name == name {
			return &t.Sections[i]
		}
	}
	return nil
}

// RowFor returns the row for a net size within a section, or nil.
func (s *Section) RowFor(size int) *Row {
	for i := range s.Rows {
		if s.Rows[i].Size == size {
			return &s.Rows[i]
		}
	}
	return nil
}

// Figure is a reproduced paper figure: a narrative of delays and ratios on
// one illustrative net, with the topologies retained for visualization.
type Figure struct {
	ID    string
	Title string
	// Lines is the human-readable account mirroring the figure caption.
	Lines []string
	// Values holds the machine-readable quantities (delays in seconds,
	// ratios dimensionless) keyed by name.
	Values map[string]float64
	// Stages holds the topologies in order (baseline first, final last)
	// for SVG rendering. Keyed by stage label.
	Stages []FigureStage
}

// FigureStage is one topology snapshot within a figure.
type FigureStage struct {
	Label string
	Topo  TopologyView
}

// TopologyView decouples figure rendering from the graph package: node
// locations (µm), pin count, and edges as index pairs.
type TopologyView struct {
	Points  [][2]float64
	NumPins int
	Edges   [][2]int
}

// Render writes the figure narrative.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	for _, l := range f.Lines {
		fmt.Fprintf(w, "  %s\n", l)
	}
}
