package netlist

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"nontree/internal/geom"
)

// FuzzReadText checks that the text parser never panics and that any net it
// accepts round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("pin 0 0\npin 10 20\n")
	f.Add("# comment\nnet demo\npin 0 0\npin 1 1\npin 2 2\n")
	f.Add("net x\npin -5.5 3e3\npin 1e-2 0\n")
	f.Add("pin 0 0\npin 0 0\n")
	f.Add("bogus\n")
	f.Add("pin")
	f.Add("net\n")
	f.Add(strings.Repeat("pin 1 1\n", 100))

	f.Fuzz(func(t *testing.T, input string) {
		net, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Accepted nets must be valid and serializable.
		if err := net.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid net: %v", err)
		}
		var buf bytes.Buffer
		if err := net.WriteText(&buf); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal input: %q\nserialized: %q", err, input, buf.String())
		}
		if back.NumPins() != net.NumPins() {
			t.Fatalf("round trip changed pin count %d → %d", net.NumPins(), back.NumPins())
		}
	})
}

// FuzzNetRoundTrip drives the serializers from the value side: construct a
// net from fuzzed coordinates and name, and require that anything Validate
// accepts survives a text AND a JSON round trip with every coordinate
// bit-exact (%g and encoding/json both emit shortest-uniquely-parsing
// float forms, so exactness is the contract, not a tolerance).
func FuzzNetRoundTrip(f *testing.F) {
	f.Add("demo", 0.0, 0.0, 10.0, 20.0, -5.5, 3000.0)
	f.Add("", 1e-300, 2e300, 0.1, 0.2, 0.30000000000000004, 4.0)
	f.Add("x", 0.0, 0.0, 0.0, 0.0, 1.0, 1.0)

	f.Fuzz(func(t *testing.T, name string, x0, y0, x1, y1, x2, y2 float64) {
		n := &Net{Name: name, Pins: []geom.Point{{X: x0, Y: y0}, {X: x1, Y: y1}, {X: x2, Y: y2}}}
		if n.Validate() != nil {
			return // non-finite or duplicate pins; nothing to round-trip
		}

		check := func(format string, back *Net, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s round trip rejected a valid net: %v", format, err)
			}
			if back.NumPins() != n.NumPins() {
				t.Fatalf("%s round trip changed pin count %d → %d", format, n.NumPins(), back.NumPins())
			}
			for i := range n.Pins {
				if back.Pins[i] != n.Pins[i] {
					t.Fatalf("%s round trip changed pin %d: %v → %v", format, i, n.Pins[i], back.Pins[i])
				}
			}
		}

		var jb bytes.Buffer
		if err := n.WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		back, err := ReadJSON(&jb)
		check("JSON", back, err)
		// encoding/json coerces invalid UTF-8 to U+FFFD, so name fidelity
		// is only promised for valid strings.
		if err == nil && utf8.ValidString(n.Name) && back.Name != n.Name {
			t.Fatalf("JSON round trip changed name %q → %q", n.Name, back.Name)
		}

		// The text format stores the name as a single whitespace-delimited
		// token on its own line, so only names that survive that encoding
		// can be compared; coordinates must round-trip regardless.
		var tb bytes.Buffer
		if err := n.WriteText(&tb); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		back, err = ReadText(&tb)
		if err != nil {
			// Names containing newlines or "#"-leading segments can corrupt
			// the line format; the parser must reject, never panic or
			// misparse. Anything token-clean must parse.
			if isTokenClean(name) {
				t.Fatalf("text round trip rejected a valid net with clean name %q: %v", name, err)
			}
			return
		}
		check("text", back, nil)
		if isTokenClean(name) && back.Name != name {
			t.Fatalf("text round trip changed name %q → %q", name, back.Name)
		}
	})
}

// isTokenClean reports whether the text format can represent the name
// faithfully: one whitespace-free token that the parser won't strip.
func isTokenClean(name string) bool {
	fields := strings.Fields(name)
	return len(fields) == 1 && fields[0] == name && !strings.HasPrefix(name, "#")
}

// FuzzReadJSON checks the JSON path likewise.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"pins":[{"X":0,"Y":0},{"X":1,"Y":1}]}`)
	f.Add(`{"name":"n","pins":[{"X":0,"Y":0},{"X":5,"Y":5},{"X":2,"Y":9}]}`)
	f.Add(`{}`)
	f.Add(`{"pins":[]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"pins":[{"X":1e999,"Y":0},{"X":0,"Y":0}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		net, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid net: %v", err)
		}
	})
}
