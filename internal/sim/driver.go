package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nontree/internal/obs"
	"nontree/internal/serve"
)

// Drive modes.
const (
	// ModeClosed drives the stream with a fixed worker pool (or a ramp of
	// pools): each worker issues the next request as soon as its previous
	// one completes, so offered load adapts to service time.
	ModeClosed = "closed"
	// ModeOpen replays the workload's arrival schedule on the wall clock:
	// every request is issued at its AtNanos offset regardless of how many
	// are still outstanding — the mode that actually exercises the daemon's
	// shed limiter, because offered load does not back off.
	ModeOpen = "open"
)

// DriveOptions parameterizes a drive.
type DriveOptions struct {
	// Targets are the daemon base URLs ("http://host:port"). Requests shard
	// across them by key, so one key always hits the same instance (cache
	// realism for multi-target fleets). Defaults to a placeholder when
	// Transport is set (the in-process handler ignores the host).
	Targets []string
	// Transport overrides the HTTP transport; serve.(*Server).
	// InProcessTransport makes the drive hermetic. Nil uses the default.
	Transport http.RoundTripper
	// Mode is ModeClosed (default) or ModeOpen.
	Mode string
	// Concurrency is the closed-loop worker-pool size when no Ramp is given
	// (default 8). Open-loop drives ignore it.
	Concurrency int
	// Ramp optionally staircases closed-loop concurrency: stage k drives
	// its Requests with its Concurrency before stage k+1 starts. Requests
	// beyond the ramp's total extend the last stage.
	Ramp []RampStage
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Metrics receives the client-side counters and the per-request latency
	// histogram (default: fresh registry with the sim catalog).
	Metrics *obs.Registry
	// Scrape fetches every target's /metrics before and after the drive and
	// reports per-counter deltas in the Server section.
	Scrape bool
}

// ErrNoTargets means DriveOptions named neither targets nor a transport.
var ErrNoTargets = errors.New("sim: drive needs at least one target URL (or an in-process transport)")

// withDefaults fills unset driver knobs.
func (o DriveOptions) withDefaults() (DriveOptions, error) {
	if len(o.Targets) == 0 {
		if o.Transport == nil {
			return o, ErrNoTargets
		}
		// The in-process transport never dials; the host is cosmetic.
		o.Targets = []string{"http://inprocess"}
	}
	switch o.Mode {
	case "":
		o.Mode = ModeClosed
	case ModeClosed, ModeOpen:
	default:
		return o, fmt.Errorf("sim: unknown drive mode %q", o.Mode)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	for _, st := range o.Ramp {
		if st.Requests < 1 || st.Concurrency < 1 {
			return o, ErrBadRamp
		}
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
		obs.PreregisterSim(o.Metrics)
	}
	return o, nil
}

// stages resolves the closed-loop schedule: the configured ramp, with any
// leftover requests extending the last stage (or one flat stage when no
// ramp was given). Stages beyond the stream length are trimmed.
func (o DriveOptions) stages(total int) []RampStage {
	if len(o.Ramp) == 0 {
		return []RampStage{{Requests: total, Concurrency: o.Concurrency}}
	}
	out := make([]RampStage, 0, len(o.Ramp))
	remaining := total
	for _, st := range o.Ramp {
		if remaining <= 0 {
			break
		}
		if st.Requests > remaining {
			st.Requests = remaining
		}
		remaining -= st.Requests
		out = append(out, st)
	}
	if remaining > 0 {
		out[len(out)-1].Requests += remaining
	}
	return out
}

// Drive replays the workload against the targets and assembles the report
// (everything except Environment, SLO and Violations, which the command
// fills before gating). The drive itself is wall-clock real; only the
// stream it replays is deterministic.
func Drive(w *Workload, opts DriveOptions) (*Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	client := &http.Client{Transport: opts.Transport, Timeout: opts.Timeout}

	// One marshal per distinct net: repeated keys reuse the same body.
	bodies := make([][]byte, len(w.Nets))
	for k, n := range w.Nets {
		b, err := json.Marshal(serve.RouteRequest{Net: n, RouteOptions: w.Spec.routeOptions()})
		if err != nil {
			return nil, fmt.Errorf("sim: marshaling request for key %d: %w", k, err)
		}
		bodies[k] = b
	}

	var before map[string]int64
	if opts.Scrape {
		if before, err = scrapeTargets(client, opts.Targets); err != nil {
			return nil, err
		}
	}

	// outcomes[i] is written exactly once, by whichever goroutine drove
	// request i, strictly before the WaitGroup join — no lock needed.
	outcomes := make([]outcome, len(w.Requests))
	doRequest := func(i int) {
		req := w.Requests[i]
		span := obs.StartSpan(reg, obs.TimeSimRequestSeconds)
		outcomes[i] = post(client, opts.Targets[req.Key%len(opts.Targets)], bodies[req.Key])
		span.End()
	}

	elapsed := obs.Stopwatch()
	switch opts.Mode {
	case ModeOpen:
		// Replay the arrival schedule: sleep until each request's offset,
		// then fire without waiting for completions.
		var wg sync.WaitGroup
		for i := range w.Requests {
			at := float64(w.Requests[i].AtNanos) / 1e9
			if gap := at - elapsed(); gap > 0 {
				time.Sleep(time.Duration(gap * float64(time.Second)))
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				doRequest(i)
			}(i)
		}
		wg.Wait()
	default: // ModeClosed
		next := 0
		for _, st := range opts.stages(len(w.Requests)) {
			idx := make(chan int)
			var wg sync.WaitGroup
			for c := 0; c < st.Concurrency; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						doRequest(i)
					}
				}()
			}
			for i := next; i < next+st.Requests; i++ {
				idx <- i
			}
			close(idx)
			wg.Wait()
			next += st.Requests
		}
	}
	wall := elapsed()

	report := &Report{
		SchemaVersion:       SimSchemaVersion,
		Spec:                w.Spec,
		WorkloadFingerprint: w.Fingerprint(),
		Mode:                opts.Mode,
		Targets:             opts.Targets,
		Concurrency:         opts.Concurrency,
		Violations:          []string{},
	}
	report.Totals = tallyOutcomes(reg, outcomes, wall)
	report.Phases = tallyPhases(outcomes)
	report.LatencyHistogram = reg.Snapshot().Timings[obs.TimeSimRequestSeconds]
	report.Totals.Latency = latencySummary(report.LatencyHistogram)

	if opts.Scrape {
		after, err := scrapeTargets(client, opts.Targets)
		if err != nil {
			return nil, err
		}
		report.Server = diffScrapes(before, after)
	}
	return report, nil
}

// outcome classifies one driven request.
type outcome struct {
	// status is the HTTP status, or 0 on transport failure.
	status int
	// shed marks daemon-refused requests: 429 from the concurrency limiter
	// or the drain 503 (distinguished from the timeout 503 by body).
	shed bool
	// requestID is the daemon-assigned id (X-Request-ID), resolvable at
	// the target's /logs?request=<id> while retained; "" on transport
	// failure.
	requestID string
	// phases is the server-reported latency attribution of a 200 reply;
	// nil otherwise.
	phases *serve.PhaseBreakdown
}

// routeReply is the slice of the /route reply the driver keeps: decoding
// the full topology for every driven request would dominate client CPU.
type routeReply struct {
	RequestID string                `json:"request_id"`
	Phases    *serve.PhaseBreakdown `json:"phases"`
}

// post issues one /route request and classifies the reply. The body is
// always drained so keep-alive connections are reused.
func post(client *http.Client, target string, body []byte) outcome {
	resp, err := client.Post(target+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{}
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	o := outcome{status: resp.StatusCode, requestID: resp.Header.Get("X-Request-ID")}
	switch resp.StatusCode {
	case http.StatusOK:
		var reply routeReply
		if json.Unmarshal(b, &reply) == nil {
			o.phases = reply.Phases
		}
	case http.StatusTooManyRequests:
		o.shed = true
	case http.StatusServiceUnavailable:
		o.shed = bytes.Contains(b, []byte("draining"))
	}
	return o
}

// tallyPhases means the server-reported phase breakdowns across the OK
// replies that carried one (nil when none did — e.g. pre-phase daemons or
// an all-shed drive), giving the soak report the server-side view of where
// request latency went.
func tallyPhases(outcomes []outcome) *PhaseSection {
	var p PhaseSection
	for _, o := range outcomes {
		if o.phases == nil {
			continue
		}
		p.Requests++
		p.MeanQueueSeconds += o.phases.QueueSeconds
		p.MeanDecodeSeconds += o.phases.DecodeSeconds
		p.MeanSweepSeconds += o.phases.SweepSeconds
		p.MeanOracleSeconds += o.phases.OracleSeconds
		p.MeanStoreSeconds += o.phases.StoreSeconds
		p.MeanTotalSeconds += o.phases.TotalSeconds
	}
	if p.Requests == 0 {
		return nil
	}
	n := float64(p.Requests)
	p.MeanQueueSeconds /= n
	p.MeanDecodeSeconds /= n
	p.MeanSweepSeconds /= n
	p.MeanOracleSeconds /= n
	p.MeanStoreSeconds /= n
	p.MeanTotalSeconds /= n
	return &p
}

// tallyOutcomes folds the per-request outcomes into the registry's sim
// counters and the report totals. Runs after the drive joins, so it sees
// every outcome exactly once.
func tallyOutcomes(reg *obs.Registry, outcomes []outcome, wall float64) Totals {
	t := Totals{
		Requests:     int64(len(outcomes)),
		WallSeconds:  wall,
		StatusCounts: make(map[string]int64),
	}
	for _, o := range outcomes {
		switch {
		case o.status == http.StatusOK:
			t.OK++
		case o.shed:
			t.Shed++
		default:
			t.Errors++
		}
		key := "transport_error"
		if o.status != 0 {
			key = strconv.Itoa(o.status)
		}
		t.StatusCounts[key]++
	}
	if t.Requests > 0 {
		t.ShedRate = float64(t.Shed) / float64(t.Requests)
		t.ErrorRate = float64(t.Errors) / float64(t.Requests)
	}
	if wall > 0 {
		t.ThroughputQPS = float64(t.Requests) / wall
	}
	reg.Add(obs.CtrSimRequests, t.Requests)
	reg.Add(obs.CtrSimOK, t.OK)
	reg.Add(obs.CtrSimShed, t.Shed)
	reg.Add(obs.CtrSimErrors, t.Errors)
	return t
}

// scrapeTargets fetches every target's /metrics and sums the Prometheus
// counter samples ("<name>_total <value>" lines) by name across targets.
func scrapeTargets(client *http.Client, targets []string) (map[string]int64, error) {
	sum := make(map[string]int64)
	for _, target := range targets {
		resp, err := client.Get(target + "/metrics")
		if err != nil {
			return nil, fmt.Errorf("sim: scraping %s: %w", target, err)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 || !strings.HasSuffix(fields[0], "_total") || strings.Contains(fields[0], "{") {
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				continue
			}
			sum[fields[0]] += int64(v)
		}
		err = sc.Err()
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("sim: scraping %s: %w", target, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("sim: scraping %s: status %d", target, resp.StatusCode)
		}
	}
	return sum, nil
}

// diffScrapes assembles the Server section from two scrapes.
func diffScrapes(before, after map[string]int64) *ServerSection {
	delta := make(map[string]int64, len(after))
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			delta[name] = d
		}
	}
	return &ServerSection{Before: before, After: after, Delta: delta}
}

// ProbeDrain runs the in-process drain check against a live server after a
// drive has fully joined: BeginDrain must flip /healthz to 503 and no
// request may still be in flight. (The CI soak separately SIGTERMs a real
// daemon to exercise the socket-level drain path.)
func ProbeDrain(srv *serve.Server) DrainCheck {
	srv.BeginDrain()
	d := DrainCheck{Checked: true}
	client := &http.Client{Transport: srv.InProcessTransport()}
	resp, err := client.Get("http://inprocess/healthz")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d.Healthz503 = resp.StatusCode == http.StatusServiceUnavailable
	}
	d.InflightZero = srv.Inflight() == 0
	return d
}
