// Package cfg builds intra-procedural control-flow graphs over go/ast and
// runs forward dataflow analyses on them, on the standard library alone —
// the flow-sensitive counterpart to the syntactic checks in
// internal/analysis (DESIGN.md §13).
//
// A Graph is a list of basic blocks; Blocks[0] is the entry. Each block
// holds the statements and decomposed control-head expressions executed
// straight-line through it, in execution order, plus successor edges.
// Composite control statements (if/for/range/switch/select) are never
// stored wholesale: their heads are decomposed into the blocks that
// evaluate them, so a client walking a block's Nodes with ast.Inspect sees
// every executed expression exactly once.
//
// Function literals are NOT inlined: a FuncLit appearing inside a
// statement is part of that statement's node (its body runs at some other
// time, possibly never, possibly concurrently). Clients analyzing FuncLit
// bodies build a separate Graph per literal.
//
// The builder is purely syntactic. It treats panic(...) as a terminator
// (precise enough for this repository, where panic is never recovered on
// an analyzed path) and cannot resolve shadowed `panic` identifiers.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes holds the statements and control-head expressions executed in
	// this block, in execution order. Entries are simple statements
	// (assignments, calls, sends, returns, go/defer, declarations) or bare
	// expressions (if/for conditions, switch tags and case expressions, the
	// range operand, select comm statements).
	Nodes []ast.Node
	// Succs are the possible successor blocks, in source order.
	Succs []*Block
	// Ctrl is the loop statement heading this block, when the block is the
	// head (condition/operand evaluation) of a for or range loop: clients
	// use it to recognize e.g. `for range ch` channel-drain joins. Nil
	// elsewhere.
	Ctrl ast.Stmt
}

// Graph is a function body's control-flow graph. Blocks[0] is the entry.
type Graph struct {
	Blocks []*Block

	preds [][]int // lazily computed predecessor lists (see flow.go)
}

// New builds the control-flow graph of one function body. A nil body (a
// declaration without implementation) yields a graph with a single empty
// entry block.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.cur = b.newBlock()
	if body != nil {
		b.stmtList(body.List)
	}
	return b.g
}

// Reachable reports, per block index, whether the block is reachable from
// the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return seen
	}
	stack := []*Block{g.Blocks[0]}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders the graph compactly for tests and debugging: one line per
// block with node counts and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[%d]:", b.Index, len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ctx is one enclosing breakable/continuable construct on the builder's
// stack.
type ctx struct {
	label string // enclosing statement label, "" when unlabeled
	brk   *Block // break target; non-nil for loops, switches, selects
	cont  *Block // continue target; non-nil for loops only
}

type builder struct {
	g     *Graph
	cur   *Block
	stack []ctx
	// fall is the stack of fallthrough targets: the next case clause's body
	// while building a switch clause (nil entry when there is no next
	// clause).
	fall []*Block
	// labels maps label name → target block, created at the LabeledStmt or
	// eagerly by a forward goto.
	labels map[string]*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) { from.Succs = append(from.Succs, to) }

// add appends a node to the current block.
func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// terminate ends the current block with no fallthrough successor;
// subsequent statements land in a fresh (unreachable unless jumped-to)
// block.
func (b *builder) terminate() { b.cur = b.newBlock() }

// labelTarget returns the block for a label, creating it on first use
// (forward gotos reference labels before their LabeledStmt is reached).
func (b *builder) labelTarget(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	if t, ok := b.labels[name]; ok {
		return t
	}
	t := b.newBlock()
	b.labels[name] = t
	return t
}

func (b *builder) findBreak(label string) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		c := b.stack[i]
		if c.brk == nil {
			continue
		}
		if label == "" || c.label == label {
			return c.brk
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		c := b.stack[i]
		if c.cont == nil {
			continue
		}
		if label == "" || c.label == label {
			return c.cont
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement. label is the name of the LabeledStmt directly
// wrapping it ("" when unlabeled); loops and switches record it so labeled
// break/continue resolve.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.labelTarget(s.Label.Name)
		edge(b.cur, target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		then := b.newBlock()
		edge(head, then)
		b.cur = then
		b.stmtList(s.Body.List)
		edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			edge(head, els)
			b.cur = els
			b.stmt(s.Else, "")
			edge(b.cur, join)
		} else {
			edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		edge(b.cur, head)
		head.Ctrl = s
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			edge(head, exit) // `for {}` without cond exits only via break
		}
		contTarget := head
		if s.Post != nil {
			post := b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			edge(post, head)
			contTarget = post
		}
		body := b.newBlock()
		edge(head, body)
		b.stack = append(b.stack, ctx{label: label, brk: exit, cont: contTarget})
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, contTarget)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(b.cur, head)
		head.Ctrl = s
		head.Nodes = append(head.Nodes, s.X)
		exit := b.newBlock()
		edge(head, exit)
		body := b.newBlock()
		edge(head, body)
		// Key/Value are assigned per iteration; record them at the body top
		// so accesses through them are visible. (They are recorded as bare
		// expressions, so a client sees them as reads — a range that assigns
		// *into* guarded state via Key/Value is out of scope.)
		if s.Key != nil {
			body.Nodes = append(body.Nodes, s.Key)
		}
		if s.Value != nil {
			body.Nodes = append(body.Nodes, s.Value)
		}
		b.stack = append(b.stack, ctx{label: label, brk: exit, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, head)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, len(cc.List))
			for i, e := range cc.List {
				nodes[i] = e
			}
			return nodes, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			// Case types carry no evaluated expressions.
			return nil, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		head := b.cur
		exit := b.newBlock()
		b.stack = append(b.stack, ctx{label: label, brk: exit})
		for _, raw := range s.Body.List {
			cc := raw.(*ast.CommClause)
			cb := b.newBlock()
			edge(head, cb)
			if cc.Comm != nil {
				cb.Nodes = append(cb.Nodes, cc.Comm)
			}
			b.cur = cb
			b.stmtList(cc.Body)
			edge(b.cur, exit)
		}
		b.stack = b.stack[:len(b.stack)-1]
		// `select {}` blocks forever: exit has no predecessors then.
		b.cur = exit

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				edge(b.cur, t)
			}
		case token.GOTO:
			edge(b.cur, b.labelTarget(label))
		case token.FALLTHROUGH:
			if n := len(b.fall); n > 0 && b.fall[n-1] != nil {
				edge(b.cur, b.fall[n-1])
			}
		}
		b.terminate()

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.terminate()
		}

	case nil:
		// Empty else branch and friends.

	default:
		// Simple statements: assignments, declarations, inc/dec, sends,
		// go/defer, empty statements.
		b.add(s)
	}
}

// switchClauses builds the clause blocks shared by expression and type
// switches. decompose returns a clause's evaluated head expressions, its
// body, and whether it is the default clause.
func (b *builder) switchClauses(clauses []ast.Stmt, label string, decompose func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool)) {
	head := b.cur
	exit := b.newBlock()
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	b.stack = append(b.stack, ctx{label: label, brk: exit})
	hasDefault := false
	for i, raw := range clauses {
		cc := raw.(*ast.CaseClause)
		nodes, body, isDefault := decompose(cc)
		// Case expressions evaluate in the head, in clause order.
		head.Nodes = append(head.Nodes, nodes...)
		if isDefault {
			hasDefault = true
		}
		edge(head, bodies[i])
		var next *Block
		if i+1 < len(clauses) {
			next = bodies[i+1]
		}
		b.fall = append(b.fall, next)
		b.cur = bodies[i]
		b.stmtList(body)
		edge(b.cur, exit)
		b.fall = b.fall[:len(b.fall)-1]
	}
	b.stack = b.stack[:len(b.stack)-1]
	if !hasDefault {
		edge(head, exit)
	}
	b.cur = exit
}

// isPanicCall reports whether e is a call to the builtin panic. Purely
// syntactic: a shadowed `panic` identifier is misclassified (harmlessly —
// the block merely terminates early).
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
