package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeMatchesPaperAccounting(t *testing.T) {
	// Three winners of delay 0.8 and one loser at 1.0:
	// all-cases delay = 0.85, winners = 75%, winners-only delay = 0.8.
	samples := []Sample{
		{DelayRatio: 0.8, CostRatio: 1.2},
		{DelayRatio: 0.8, CostRatio: 1.4},
		{DelayRatio: 0.8, CostRatio: 1.0},
		{DelayRatio: 1.0, CostRatio: 1.0},
	}
	s := Summarize(samples)
	if s.Count != 4 {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.AllDelay-0.85) > 1e-12 {
		t.Errorf("AllDelay = %v", s.AllDelay)
	}
	if math.Abs(s.AllCost-1.15) > 1e-12 {
		t.Errorf("AllCost = %v", s.AllCost)
	}
	if s.PercentWinners != 75 {
		t.Errorf("PercentWinners = %v", s.PercentWinners)
	}
	if math.Abs(s.WinDelay-0.8) > 1e-12 {
		t.Errorf("WinDelay = %v", s.WinDelay)
	}
	if math.Abs(s.WinCost-1.2) > 1e-12 {
		t.Errorf("WinCost = %v", s.WinCost)
	}
}

func TestSummarizeNoWinners(t *testing.T) {
	s := Summarize([]Sample{{DelayRatio: 1.0, CostRatio: 1.0}, {DelayRatio: 1.3, CostRatio: 1.5}})
	if s.PercentWinners != 0 {
		t.Errorf("PercentWinners = %v", s.PercentWinners)
	}
	if !math.IsNaN(s.WinDelay) || !math.IsNaN(s.WinCost) {
		t.Error("winners-only stats must be NaN when nobody wins")
	}
	// The row must render NA for the NaN columns.
	row := s.Row("5")
	if !strings.Contains(row, "NA") {
		t.Errorf("row = %q, want NA columns", row)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || !math.IsNaN(s.WinDelay) {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestWinEpsilonGuardsNoise(t *testing.T) {
	// A delay ratio within epsilon of 1.0 is not a win.
	if (Sample{DelayRatio: 1 - WinEpsilon/2}).Won() {
		t.Error("sub-epsilon improvement counted as win")
	}
	if !(Sample{DelayRatio: 0.999}).Won() {
		t.Error("real improvement not counted")
	}
	if (Sample{DelayRatio: 1.001}).Won() {
		t.Error("regression counted as win")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.001 {
		t.Errorf("stddev = %v", sd)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Error("degenerate inputs must give NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative input must give NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty input must give NaN")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]Sample, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			// Keep only physically plausible ratios; extreme magnitudes
			// would overflow the mean and test nothing useful.
			if math.IsNaN(v) || v < 1e-6 || v > 1e6 {
				continue
			}
			samples = append(samples, Sample{DelayRatio: v, CostRatio: v})
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		if s.PercentWinners < 0 || s.PercentWinners > 100 {
			return false
		}
		// All-cases mean lies within [min, max] of the ratios.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, sm := range samples {
			lo = math.Min(lo, sm.DelayRatio)
			hi = math.Max(hi, sm.DelayRatio)
		}
		return s.AllDelay >= lo-1e-9 && s.AllDelay <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if r := SpearmanRank(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone map must give ρ=1, got %v", r)
	}
	// Any monotone transform preserves ρ=1.
	ys2 := []float64{1, 8, 27, 64, 125}
	if r := SpearmanRank(xs, ys2); math.Abs(r-1) > 1e-12 {
		t.Errorf("cubic map must give ρ=1, got %v", r)
	}
}

func TestSpearmanAnticorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{4, 3, 2, 1}
	if r := SpearmanRank(xs, ys); math.Abs(r+1) > 1e-12 {
		t.Errorf("reversed ranks must give ρ=-1, got %v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Known value: xs = 1,2,3,4 vs ys = 1,1,2,2 → ρ = 0.894427...
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 1, 2, 2}
	if r := SpearmanRank(xs, ys); math.Abs(r-0.8944271909999159) > 1e-9 {
		t.Errorf("tied ρ = %v", r)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if !math.IsNaN(SpearmanRank([]float64{1}, []float64{1})) {
		t.Error("single point must be NaN")
	}
	if !math.IsNaN(SpearmanRank([]float64{1, 2}, []float64{1})) {
		t.Error("length mismatch must be NaN")
	}
	if !math.IsNaN(SpearmanRank([]float64{1, 2, 3}, []float64{5, 5, 5})) {
		t.Error("constant series must be NaN")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	orig := Summarize([]Sample{
		{DelayRatio: 0.8, CostRatio: 1.2},
		{DelayRatio: 1.1, CostRatio: 1.0},
	})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != orig.Count || back.AllDelay != orig.AllDelay ||
		back.PercentWinners != orig.PercentWinners || back.WinDelay != orig.WinDelay {
		t.Errorf("round trip: %+v vs %+v", back, orig)
	}
}

func TestSummaryJSONHandlesNaN(t *testing.T) {
	// No winners → NaN winners-only fields → JSON null, not an error.
	orig := Summarize([]Sample{{DelayRatio: 1.5, CostRatio: 1.5}})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("NaN summary must marshal: %v", err)
	}
	if !strings.Contains(string(data), `"win_delay":null`) {
		t.Errorf("expected null winners field: %s", data)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.WinDelay) || !math.IsNaN(back.WinCost) {
		t.Error("null must decode to NaN")
	}
}

func TestHeaderAndRowAlign(t *testing.T) {
	header := Header()
	lines := strings.Split(header, "\n")
	if len(lines) != 2 {
		t.Fatalf("header lines: %d", len(lines))
	}
	row := Summarize([]Sample{{DelayRatio: 0.5, CostRatio: 1.5}}).Row("30")
	if len(row) != len(lines[0]) {
		t.Errorf("row width %d vs header %d:\n%s\n%s", len(row), len(lines[0]), lines[0], row)
	}
}
