package trace

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEncodeOmitsZeroFields(t *testing.T) {
	e := Event{Seq: 1, Kind: KindSweepStart, Sweep: 1, N: 3}
	got := string(e.Encode())
	want := `{"seq":1,"kind":"sweep_start","sweep":1,"n":3}`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindSweepStart, Sweep: 1, N: 12},
		{Seq: 2, Kind: KindCandidateScored, Sweep: 1, Index: 0, U: 0, V: 3, Value: 1.25e-9},
		{Seq: 3, Kind: KindCandidateScored, Sweep: 1, Index: 1, U: 2, V: 5, Tap: true, X: 100.5, Y: -0.0, Value: 3.5e-10},
		{Seq: 4, Kind: KindEdgeAccepted, U: 0, V: 3, Before: 2e-9, After: 1.25e-9, Elapsed: 0.125},
		{Seq: 5, Kind: KindEdgeRejected, U: 1, V: 4, Value: 9e-9, Before: 1.25e-9, Reason: ReasonNoImprovement},
		{Seq: 6, Kind: KindOracleEval, Oracle: "elmore", N: 10},
		{Seq: 7, Kind: KindWireSizeStep, U: 0, V: 2, Width: 3, Before: 1e-9, After: 0.5e-9},
	}
	for _, e := range events {
		line := e.Encode()
		back, err := DecodeEvent(line)
		if err != nil {
			t.Fatalf("decoding %s: %v", line, err)
		}
		if back != e {
			t.Errorf("round trip changed event:\n got  %+v\n want %+v", back, e)
		}
		again := back.Encode()
		if !bytes.Equal(line, again) {
			t.Errorf("re-encoding changed bytes:\n got  %s\n want %s", again, line)
		}
	}
}

func TestEncodePreservesNegativeZero(t *testing.T) {
	e := Event{Seq: 1, Kind: KindCandidateScored, Value: math.Copysign(0, -1)}
	back, err := DecodeEvent(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(back.Value) != math.Float64bits(e.Value) {
		t.Errorf("lost -0: got bits %x, want %x",
			math.Float64bits(back.Value), math.Float64bits(e.Value))
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeEvent([]byte(`{"seq":1,"kind":"sweep_start","bogus":3}`)); err == nil {
		t.Error("expected an error for an unknown field")
	}
}

func TestReadWriteJSONL(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindSweepStart, Sweep: 1, N: 2},
		{Seq: 2, Kind: KindEdgeAccepted, U: 0, V: 1, After: 1e-9},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("got %d events, want %d", len(back), len(events))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, back[i], events[i])
		}
	}
}

func TestFingerprintExcludesElapsed(t *testing.T) {
	a := []Event{{Seq: 1, Kind: KindSweepStart, Sweep: 1, Elapsed: 0.5}}
	b := []Event{{Seq: 1, Kind: KindSweepStart, Sweep: 1, Elapsed: 99}}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprints differ on Elapsed alone")
	}
	if strings.Contains(Fingerprint(a), "elapsed") {
		t.Error("fingerprint leaked the elapsed field")
	}
}

func TestRingAssignsSeqAndElapsed(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: KindSweepStart, Sweep: 1})
	r.Emit(Event{Kind: KindSweepStart, Sweep: 2})
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("seq assignment: got %d, %d", events[0].Seq, events[1].Seq)
	}
	if events[0].Elapsed < 0 || events[1].Elapsed < events[0].Elapsed {
		t.Errorf("elapsed not monotone: %v, %v", events[0].Elapsed, events[1].Elapsed)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Kind: KindSweepStart, Sweep: i})
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, want := range []int{3, 4, 5} {
		if events[i].Sweep != want || events[i].Seq != int64(want) {
			t.Errorf("event %d: got sweep %d seq %d, want %d", i, events[i].Sweep, events[i].Seq, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped: got %d, want 2", r.Dropped())
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Kind: KindOracleEval, Oracle: "elmore"})
			}
		}()
	}
	wg.Wait()
	if got := r.Len() + int(r.Dropped()); got != 800 {
		t.Errorf("retained+dropped = %d, want 800", got)
	}
	seen := make(map[int64]bool)
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi{a, b}
	m.Emit(Event{Kind: KindSweepStart, Sweep: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out: got %d, %d events, want 1, 1", a.Len(), b.Len())
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) is not Nop")
	}
	r := NewRing(4)
	if OrNop(r) != Tracer(r) {
		t.Error("OrNop(r) did not return r")
	}
}

func TestAcceptedEdges(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindSweepStart, Sweep: 1, N: 2},
		{Seq: 2, Kind: KindCandidateScored, Sweep: 1, U: 0, V: 2, Value: 2e-9},
		{Seq: 3, Kind: KindEdgeAccepted, U: 0, V: 2, Before: 3e-9, After: 2e-9},
		{Seq: 4, Kind: KindEdgeAccepted, U: 0, V: 7, Tap: true, X: 10, Y: 20, After: 1e-9},
		{Seq: 5, Kind: KindEdgeRejected, U: 1, V: 3, Reason: ReasonNoImprovement},
	}
	got := AcceptedEdges(events)
	want := []AcceptedEdge{
		{U: 0, V: 2, After: 2e-9},
		{U: 0, V: 7, Tap: true, X: 10, Y: 20, After: 1e-9},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d accepted edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("accepted %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDiffCleanOnElapsedOnlyChanges(t *testing.T) {
	a := []Event{{Seq: 1, Kind: KindSweepStart, Sweep: 1, Elapsed: 1}}
	b := []Event{{Seq: 1, Kind: KindSweepStart, Sweep: 1, Elapsed: 2}}
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("expected no drift, got %v", d)
	}
}

func TestDiffReportsDivergence(t *testing.T) {
	want := []Event{
		{Seq: 1, Kind: KindSweepStart, Sweep: 1},
		{Seq: 2, Kind: KindEdgeAccepted, U: 0, V: 1},
	}
	got := []Event{
		{Seq: 1, Kind: KindSweepStart, Sweep: 1},
		{Seq: 2, Kind: KindEdgeAccepted, U: 0, V: 2},
		{Seq: 3, Kind: KindSweepStart, Sweep: 2},
	}
	drifts := Diff(got, want)
	if len(drifts) != 2 {
		t.Fatalf("got %d drifts, want 2:\n%s", len(drifts), FormatDrifts(drifts))
	}
	if drifts[0].Index != 1 {
		t.Errorf("first drift at %d, want 1", drifts[0].Index)
	}
	if drifts[1].Index != 2 || drifts[1].Want != "" {
		t.Errorf("second drift should be the extra trailing event, got %+v", drifts[1])
	}
	if FormatDrifts(drifts) == "" {
		t.Error("FormatDrifts returned empty for non-empty drift list")
	}
	if FormatDrifts(nil) != "" {
		t.Error("FormatDrifts returned non-empty for clean diff")
	}
}

func TestDiffBounded(t *testing.T) {
	var got, want []Event
	for i := 0; i < 100; i++ {
		got = append(got, Event{Seq: int64(i + 1), Kind: KindSweepStart, Sweep: i})
		want = append(want, Event{Seq: int64(i + 1), Kind: KindSweepStart, Sweep: i + 1000})
	}
	if d := Diff(got, want); len(d) > maxDrifts {
		t.Errorf("drift list not bounded: %d > %d", len(d), maxDrifts)
	}
}
