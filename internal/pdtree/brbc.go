package pdtree

import (
	"errors"
	"fmt"
	"math"

	"nontree/internal/geom"
	"nontree/internal/graph"
)

// BRBC implements the Bounded-Radius Bounded-Cost construction of Cong,
// Kahng, Robins, Sarrafzadeh & Wong ("Provably Good Performance-Driven
// Global Routing", cited as [8] by the paper): walk an Euler tour of the
// MST accumulating distance, and whenever the accumulated walk exceeds
// ε·R (R = the source's shortest-path radius), add a direct wire back to
// the source and reset. The shortest-path tree of the resulting union
// graph provably satisfies
//
//	radius(T) ≤ (1+ε)·R        and        cost(T) ≤ (1 + 2/ε)·cost(MST).
//
// ε → ∞ degenerates to the MST; ε → 0 to the shortest-path star. Both
// bounds are asserted by the test suite.
func BRBC(pins []geom.Point, eps float64) (*graph.Topology, error) {
	if len(pins) < 2 {
		return nil, ErrTooFewPins
	}
	if eps <= 0 {
		return nil, fmt.Errorf("pdtree: BRBC epsilon %g must be positive", eps)
	}
	mstTopo, err := primTopology(pins)
	if err != nil {
		return nil, err
	}

	// R: the complete geometric graph's source radius is the largest
	// direct distance (every shortest path is the direct edge).
	radius := 0.0
	for v := 1; v < len(pins); v++ {
		if d := geom.Dist(pins[0], pins[v]); d > radius {
			radius = d
		}
	}

	// Union graph: MST plus the tour's shortcut edges.
	union := mstTopo.Clone()
	tour := eulerTour(mstTopo, 0)
	accum := 0.0
	for i := 1; i < len(tour); i++ {
		accum += geom.Dist(pins[tour[i-1]], pins[tour[i]])
		if accum >= eps*radius {
			v := tour[i]
			e := graph.Edge{U: 0, V: v}.Canon()
			if v != 0 && !union.HasEdge(e) && union.EdgeLength(e) > 0 {
				if err := union.AddEdge(e); err != nil {
					return nil, err
				}
			}
			accum = 0
		}
	}

	// The routing tree is the union graph's shortest-path tree from the
	// source.
	return shortestPathTree(union)
}

// primTopology is mst.Prim without importing mst (avoiding an import cycle
// is not actually required here, but keeping pdtree self-contained makes
// its provable-bounds tests independent of the mst package's internals).
func primTopology(pins []geom.Point) (*graph.Topology, error) {
	n := len(pins)
	t := graph.NewTopology(pins)
	inTree := make([]bool, n)
	best := make([]float64, n)
	via := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		via[i] = -1
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		best[v] = geom.Dist(pins[0], pins[v])
		via[v] = 0
	}
	for added := 1; added < n; added++ {
		pick := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (pick < 0 || best[v] < best[pick]) {
				pick = v
			}
		}
		if pick < 0 {
			return nil, errors.New("pdtree: internal prim error")
		}
		if err := t.AddEdge(graph.Edge{U: via[pick], V: pick}); err != nil {
			return nil, err
		}
		inTree[pick] = true
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := geom.Dist(pins[pick], pins[v]); d < best[v] {
					best[v] = d
					via[v] = pick
				}
			}
		}
	}
	return t, nil
}

// eulerTour returns the depth-first Euler tour of a tree (each edge walked
// twice), starting and ending at root.
func eulerTour(t *graph.Topology, root int) []int {
	tour := []int{root}
	visited := make([]bool, t.NumNodes())
	var dfs func(n int)
	dfs = func(n int) {
		visited[n] = true
		for _, m := range t.Neighbors(n) {
			if !visited[m] {
				tour = append(tour, m)
				dfs(m)
				tour = append(tour, n)
			}
		}
	}
	dfs(root)
	return tour
}

// shortestPathTree extracts the Dijkstra tree of a connected topology from
// the source as a new topology over the same nodes.
func shortestPathTree(g *graph.Topology) (*graph.Topology, error) {
	if !g.Connected() {
		return nil, errors.New("pdtree: union graph disconnected")
	}
	dist := g.ShortestPathLengths()
	t := graph.NewTopology(g.Points())
	const tol = 1e-9
	for v := 1; v < g.NumNodes(); v++ {
		// Parent: a neighbor u with dist[u] + w(u,v) = dist[v].
		parent := -1
		for _, u := range g.Neighbors(v) {
			w := g.EdgeLength(graph.Edge{U: u, V: v})
			if math.Abs(dist[u]+w-dist[v]) <= tol*(1+dist[v]) {
				parent = u
				break
			}
		}
		if parent < 0 {
			return nil, fmt.Errorf("pdtree: no shortest-path parent for node %d", v)
		}
		if err := t.AddEdge(graph.Edge{U: parent, V: v}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
