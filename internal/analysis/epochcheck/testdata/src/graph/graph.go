// Package graph is a minimal stand-in for nontree/internal/graph: the
// epochcheck analyzer matches Topology and Edge by name and package name,
// so this stub exercises it exactly like the real package.
package graph

// Edge is an undirected node pair.
type Edge struct{ U, V int }

// Topology is a mutable routing topology.
type Topology struct {
	edges []Edge
	nodes int
}

// AddEdge commits an extra edge.
func (t *Topology) AddEdge(e Edge) error {
	t.edges = append(t.edges, e)
	return nil
}

// RemoveEdge commits an edge removal.
func (t *Topology) RemoveEdge(e Edge) error {
	for i, x := range t.edges {
		if x == e {
			t.edges = append(t.edges[:i], t.edges[i+1:]...)
			break
		}
	}
	return nil
}

// AddSteinerNode commits a junction point.
func (t *Topology) AddSteinerNode(x, y int) int {
	t.nodes++
	return t.nodes - 1
}
