package core

import (
	"errors"
	"fmt"

	"nontree/internal/elmore"
	"nontree/internal/graph"
	"nontree/internal/obs"
	"nontree/internal/rc"
	"nontree/internal/trace"
)

// H1 runs the paper's first fast heuristic: "Connect n0 to the pin with the
// longest SPICE delay". One oracle evaluation finds the worst sink; the
// source is connected directly to it, and the addition is kept only if the
// measured objective improves. As the paper notes, the selection step "may
// be iterated until no further delay improvement is possible" — controlled
// here by opts.MaxAddedEdges (0 means iterate to convergence; the paper
// observes about two iterations in practice).
func H1(seed *graph.Topology, opts Options) (_ *Result, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	if err := checkSeed(seed, &opts); err != nil {
		return nil, err
	}
	t := seed.Clone()
	obj := opts.objective()
	res := &Result{Topology: t}

	delays, err := opts.Oracle.SinkDelays(t, opts.Width)
	if err != nil {
		return nil, fmt.Errorf("core: H1 seed evaluation: %w", err)
	}
	res.Evaluations++
	opts.obs().Add(obs.CtrOracleEvaluations, 1)
	cur, err := obj.Eval(delays, t.NumPins())
	if err != nil {
		return nil, err
	}
	res.InitialObjective = cur
	res.Trace = append(res.Trace, cur)

	eng, err := newSweepEngine(t, opts.Oracle, opts.Width, obj, opts.Scoring, opts.Obs)
	if err != nil {
		return nil, err
	}

	tr := opts.trace()
	for sweep := 1; ; sweep++ {
		if opts.MaxAddedEdges > 0 && len(res.AddedEdges) >= opts.MaxAddedEdges {
			break
		}
		worst, _ := elmore.ArgMaxSinkDelay(delays, t.NumPins())
		if worst < 0 {
			break
		}
		e := graph.Edge{U: 0, V: worst}.Canon()
		if t.HasEdge(e) || t.ZeroLength(e) {
			break // the worst sink is already directly connected
		}
		// H1 probes exactly one candidate per sweep: the worst sink's
		// shortcut, tried on the live topology and reverted on failure.
		tr.Emit(trace.Event{Kind: trace.KindSweepStart, Sweep: sweep, N: 1})
		if eng != nil {
			// Pre-screen the probe as a rank-one perturbation: a shortcut
			// the perturbed model already rejects never touches the full
			// oracle. Accepted probes still go through the full solve below
			// (whose delay vector the next iteration needs anyway), so
			// committed objectives stay identical to the legacy path.
			probe, err := eng.inc.WithEdge(e)
			if err != nil {
				return nil, fmt.Errorf("core: H1 probing %v: %w", e, err)
			}
			val, err := obj.Eval(probe, t.NumPins())
			if err != nil {
				return nil, err
			}
			if val >= cur*(1-opts.minImprovement()) {
				tr.Emit(trace.Event{Kind: trace.KindCandidateScored, Sweep: sweep, Index: 0,
					U: e.U, V: e.V, Value: val})
				tr.Emit(trace.Event{Kind: trace.KindEdgeRejected, Sweep: sweep,
					U: e.U, V: e.V, Value: val, Before: cur, Reason: trace.ReasonReverted})
				break
			}
		}
		if err := t.AddEdge(e); err != nil {
			return nil, fmt.Errorf("core: H1 adding %v: %w", e, err)
		}
		newDelays, err := opts.Oracle.SinkDelays(t, opts.Width)
		if err != nil {
			return nil, fmt.Errorf("core: H1 evaluating %v: %w", e, err)
		}
		res.Evaluations++
		opts.obs().Add(obs.CtrOracleEvaluations, 1)
		val, err := obj.Eval(newDelays, t.NumPins())
		if err != nil {
			return nil, err
		}
		tr.Emit(trace.Event{Kind: trace.KindCandidateScored, Sweep: sweep, Index: 0,
			U: e.U, V: e.V, Value: val})
		if val >= cur*(1-opts.minImprovement()) {
			// Not an improvement: revert and stop.
			if err := t.RemoveEdge(e); err != nil {
				return nil, err
			}
			tr.Emit(trace.Event{Kind: trace.KindEdgeRejected, Sweep: sweep,
				U: e.U, V: e.V, Value: val, Before: cur, Reason: trace.ReasonReverted})
			break
		}
		res.AddedEdges = append(res.AddedEdges, e)
		res.Trace = append(res.Trace, val)
		opts.obs().Add(obs.CtrAcceptedEdges, 1)
		tr.Emit(trace.Event{Kind: trace.KindEdgeAccepted, Sweep: sweep,
			U: e.U, V: e.V, Before: cur, After: val})
		cur = val
		delays = newDelays
		if err := eng.refactor(); err != nil {
			return nil, fmt.Errorf("core: H1 refactoring after %v: %w", e, err)
		}
	}

	res.FinalObjective = cur
	return res, nil
}

// treeElmoreDelays evaluates Elmore delays of a tree seed — the selection
// signal for H2 and H3, which the paper restricts to a single application
// because "Elmore delay is only defined for trees, not arbitrary graphs".
func treeElmoreDelays(seed *graph.Topology, params rc.Params, width rc.WidthFunc) ([]float64, error) {
	l, err := rc.Lump(seed, params, width)
	if err != nil {
		return nil, err
	}
	return elmore.TreeDelays(seed, l)
}

// H2 runs the paper's second heuristic: "Connect n0 to the pin with the
// longest Elmore delay". No simulator call is made for selection; the edge
// is added unconditionally (matching the paper's Table 5, where H2's
// all-cases averages include nets it made worse). The Result's objective
// fields are measured with opts.Oracle so callers can report honest
// delays; pass ElmoreOracle to keep the whole run simulator-free.
//
// The seed must be a tree (classically the MST).
func H2(seed *graph.Topology, params rc.Params, opts Options) (_ *Result, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	return elmoreSelectedAddition(seed, params, opts, func(delays []float64, t *graph.Topology) (int, error) {
		worst, _ := elmore.ArgMaxSinkDelay(delays, t.NumPins())
		return worst, nil
	})
}

// H3 runs the paper's third heuristic: "Connect n0 to the pin with the
// largest value of (pathlength × Elmore) / length-of-new-edge". Like H2 it
// needs no simulator and adds the edge unconditionally; unlike H2 its score
// discounts sinks whose shortcut wire would be long, trading delay
// improvement against wirelength.
func H3(seed *graph.Topology, params rc.Params, opts Options) (_ *Result, rerr error) {
	defer func() { rerr = tagRequest(opts.RequestID, rerr) }()
	return elmoreSelectedAddition(seed, params, opts, func(delays []float64, t *graph.Topology) (int, error) {
		best, bestScore := -1, -1.0
		for sink := 1; sink < t.NumPins(); sink++ {
			newLen := t.EdgeLength(graph.Edge{U: 0, V: sink})
			if t.ZeroLength(graph.Edge{U: 0, V: sink}) || t.HasEdge(graph.Edge{U: 0, V: sink}) {
				continue
			}
			pathLen, err := t.TreePathLength(sink)
			if err != nil {
				return -1, err
			}
			score := pathLen * delays[sink] / newLen
			if score > bestScore {
				bestScore = score
				best = sink
			}
		}
		return best, nil
	})
}

// elmoreSelectedAddition implements the shared skeleton of H2 and H3:
// select a sink from the tree's Elmore delays, connect the source to it,
// and report objective values via opts.Oracle.
func elmoreSelectedAddition(seed *graph.Topology, params rc.Params, opts Options,
	select_ func([]float64, *graph.Topology) (int, error)) (*Result, error) {
	if err := checkSeed(seed, &opts); err != nil {
		return nil, err
	}
	if !seed.IsTree() {
		return nil, errors.New("core: H2/H3 require a tree seed (Elmore selection is tree-only)")
	}
	t := seed.Clone()
	obj := opts.objective()
	res := &Result{Topology: t}

	cur, err := score(t, &opts, obj, res)
	if err != nil {
		return nil, fmt.Errorf("core: H2/H3 seed evaluation: %w", err)
	}
	res.InitialObjective = cur
	res.Trace = append(res.Trace, cur)

	elmoreDelays, err := treeElmoreDelays(seed, params, opts.Width)
	if err != nil {
		return nil, fmt.Errorf("core: H2/H3 Elmore selection: %w", err)
	}
	pick, err := select_(elmoreDelays, t)
	if err != nil {
		return nil, err
	}
	if pick >= 1 {
		e := graph.Edge{U: 0, V: pick}.Canon()
		if !t.HasEdge(e) && t.EdgeLength(e) > 0 {
			tr := opts.trace()
			tr.Emit(trace.Event{Kind: trace.KindSweepStart, Sweep: 1, N: 1})
			if err := t.AddEdge(e); err != nil {
				return nil, fmt.Errorf("core: H2/H3 adding %v: %w", e, err)
			}
			val, err := score(t, &opts, obj, res)
			if err != nil {
				return nil, fmt.Errorf("core: H2/H3 final evaluation: %w", err)
			}
			res.AddedEdges = append(res.AddedEdges, e)
			res.Trace = append(res.Trace, val)
			opts.obs().Add(obs.CtrAcceptedEdges, 1)
			tr.Emit(trace.Event{Kind: trace.KindCandidateScored, Sweep: 1, Index: 0,
				U: e.U, V: e.V, Value: val})
			tr.Emit(trace.Event{Kind: trace.KindEdgeAccepted, Sweep: 1,
				U: e.U, V: e.V, Before: cur, After: val})
			cur = val
		}
	}

	res.FinalObjective = cur
	return res, nil
}
