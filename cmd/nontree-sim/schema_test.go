package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nontree/internal/sim"
)

// Schema regression against the committed artifact: every key path that
// SIM_PR9.json ever emitted must still be produced by a fresh soak run.
// New keys may appear freely; a vanished key fails — the same
// schema-stability contract BENCH_PR4.json carries for the bench harness.

// keyPaths collects every JSON object key path in v, with array elements
// collapsed to "[]" and map-valued keys collapsed to "*" under sections
// whose keys are data rather than schema (metric names, status codes,
// histogram bucket indices, environment names).
func keyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		wild := false
		switch lastSegment(prefix) {
		case "status_counts", "buckets", "environment", "before", "after", "delta":
			wild = true
		}
		for k, child := range x {
			name := k
			if wild {
				name = "*"
			}
			p := prefix + "." + name
			out[p] = true
			keyPaths(p, child, out)
		}
	case []any:
		for _, child := range x {
			keyPaths(prefix+".[]", child, out)
		}
	}
}

func lastSegment(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}

func loadPaths(t *testing.T, raw []byte) map[string]bool {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]bool)
	keyPaths("$", doc, paths)
	return paths
}

// freshReport runs a small in-process soak configured like the committed
// baseline (scrape + drain + SLO, so every optional section is emitted).
func freshReport(t *testing.T) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "SIM_fresh.json")
	err := realMain(simArgs(
		"-arrival", "poisson", "-zipf", "1.2",
		"-inprocess", "-out", out,
		"-slo-error-rate", "0", "-slo-p99", "30", "-slo-drain",
	), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestSimSchemaMatchesCommittedArtifact(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "SIM_PR9.json"))
	if err != nil {
		t.Fatalf("reading committed artifact (regenerate with `go run ./cmd/nontree-sim "+
			"-seed 42 -requests 256 -qps 200 -arrival poisson -zipf 1.2 -keys 16 -inprocess "+
			"-concurrency 4 -slo-error-rate 0 -slo-p99 30 -slo-drain -out SIM_PR9.json`): %v", err)
	}
	oldPaths := loadPaths(t, committed)
	newPaths := loadPaths(t, freshReport(t))

	var missing []string
	for p := range oldPaths {
		if !newPaths[p] {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	for _, p := range missing {
		t.Errorf("schema regression: key path %s present in committed SIM_PR9.json "+
			"but absent from a fresh soak run", p)
	}
}

// TestCommittedArtifactContent pins the baseline's content guarantees: the
// declared schema version, a clean run (no violations, zero errors), a
// clean drain, and a workload fingerprint the generator still reproduces.
func TestCommittedArtifactContent(t *testing.T) {
	report, err := sim.LoadReport(filepath.Join("..", "..", "SIM_PR9.json"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Totals.Errors != 0 || len(report.Violations) != 0 {
		t.Errorf("committed baseline is not clean: errors=%d violations=%v",
			report.Totals.Errors, report.Violations)
	}
	if report.Drain == nil || !report.Drain.Clean() {
		t.Errorf("committed baseline lacks a clean drain check: %+v", report.Drain)
	}
	if report.SLO == nil || report.SLO.Empty() {
		t.Error("committed baseline carries no SLO gate")
	}
	// The baseline's stream must still be generatable bit-for-bit: its
	// fingerprint ties the committed serving numbers to an exact workload.
	w, err := sim.Generate(report.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Fingerprint(); got != report.WorkloadFingerprint {
		t.Errorf("generator no longer reproduces the baseline stream:\n got %s\nwant %s\n"+
			"(workload generation changed — regenerate SIM_PR9.json and update the golden fingerprints)",
			got, report.WorkloadFingerprint)
	}
}
