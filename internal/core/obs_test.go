package core

import (
	"testing"

	"nontree/internal/obs"
	"nontree/internal/rc"
)

// Observability contract (DESIGN.md §10): the counters a run records must
// agree exactly with the quantities the result structs already report, and
// the preregistered catalog must make every metric present even when zero.

func TestObsCountersMatchLDRGResult(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		topo := randomMST(t, 8100+seed, 12)
		reg := obs.NewRegistry()
		obs.Preregister(reg)
		res, err := LDRG(topo, Options{
			Oracle: &ElmoreOracle{Params: rc.Default(), Obs: reg},
			Obs:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		c := snap.Counters

		if got := c[obs.CtrOracleEvaluations]; got != int64(res.Evaluations) {
			t.Errorf("seed %d: %s = %d, want Result.Evaluations = %d",
				seed, obs.CtrOracleEvaluations, got, res.Evaluations)
		}
		if got := c[obs.CtrAcceptedEdges]; got != int64(len(res.AddedEdges)) {
			t.Errorf("seed %d: %s = %d, want len(AddedEdges) = %d",
				seed, obs.CtrAcceptedEdges, got, len(res.AddedEdges))
		}
		// The greedy loop runs one sweep per accepted edge plus the final
		// sweep that finds nothing.
		if got := c[obs.CtrSweeps]; got != int64(len(res.AddedEdges)+1) {
			t.Errorf("seed %d: %s = %d, want %d sweeps",
				seed, obs.CtrSweeps, got, len(res.AddedEdges)+1)
		}
		// Every Elmore oracle call is one graph solve; LDRG scores the seed
		// once before sweeping, so solves == evaluations here.
		if got := c[obs.CtrElmoreSolves]; got != int64(res.Evaluations) {
			t.Errorf("seed %d: %s = %d, want %d solves",
				seed, obs.CtrElmoreSolves, got, res.Evaluations)
		}
		// The per-sweep candidate histogram must agree with the counter.
		h := snap.Histograms[obs.HistSweepCandidates]
		if h.Count != c[obs.CtrSweeps] {
			t.Errorf("seed %d: histogram count %d != sweeps %d", seed, h.Count, c[obs.CtrSweeps])
		}
		if int64(h.Sum) != c[obs.CtrSweepCandidates] {
			t.Errorf("seed %d: histogram sum %g != candidate counter %d",
				seed, h.Sum, c[obs.CtrSweepCandidates])
		}
	}
}

func TestObsCountersMatchWireSizeResult(t *testing.T) {
	topo := randomMST(t, 8200, 10)
	reg := obs.NewRegistry()
	obs.Preregister(reg)
	res, err := WireSize(topo, WireSizeOptions{
		Oracle: &ElmoreOracle{Params: rc.Default(), Obs: reg},
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := reg.Snapshot().Counters
	if got := c[obs.CtrOracleEvaluations]; got != int64(res.Evaluations) {
		t.Errorf("%s = %d, want Result.Evaluations = %d",
			obs.CtrOracleEvaluations, got, res.Evaluations)
	}
	if got := c[obs.CtrWidenings]; got != int64(res.Widenings) {
		t.Errorf("%s = %d, want Widenings = %d", obs.CtrWidenings, got, res.Widenings)
	}
}

// TestObsSpiceOracleRecordsSimulatorCounters drives the SPICE oracle once
// and checks the simulator-side counters landed in the same registry the
// oracle was handed.
func TestObsSpiceOracleRecordsSimulatorCounters(t *testing.T) {
	topo := randomMST(t, 8300, 5)
	reg := obs.NewRegistry()
	obs.Preregister(reg)
	oracle := &SpiceOracle{Params: rc.Default(), Obs: reg}
	if _, err := oracle.SinkDelays(topo, nil); err != nil {
		t.Fatal(err)
	}
	c := reg.Snapshot().Counters
	for _, name := range []string{
		obs.CtrMeasureRuns,
		obs.CtrMeasureDCSolves,
		obs.CtrTranRuns,
		obs.CtrTranSteps,
		obs.CtrMNAFactorizations,
		obs.CtrMNASolves,
	} {
		if c[name] == 0 {
			t.Errorf("%s = 0 after a SPICE measurement; expected activity", name)
		}
	}
	if c[obs.CtrMeasureRuns] != 1 {
		t.Errorf("%s = %d, want exactly 1", obs.CtrMeasureRuns, c[obs.CtrMeasureRuns])
	}
}

// TestObsNilRecorderIsFree: every instrumented entry point must accept a
// nil recorder (the default) without panicking or changing results.
func TestObsNilRecorderIsFree(t *testing.T) {
	topo := randomMST(t, 8400, 8)
	withObs, err := LDRG(topo, Options{Oracle: elmoreOracle(), Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := LDRG(topo, Options{Oracle: elmoreOracle()})
	if err != nil {
		t.Fatal(err)
	}
	//nontree:allow floatcmp instrumentation must not perturb results at all; any ULP difference is a bug
	if withObs.FinalObjective != without.FinalObjective {
		t.Errorf("recorder changed the objective: %x vs %x",
			withObs.FinalObjective, without.FinalObjective)
	}
	if len(withObs.AddedEdges) != len(without.AddedEdges) {
		t.Errorf("recorder changed accepted edges: %d vs %d",
			len(withObs.AddedEdges), len(without.AddedEdges))
	}
}
