package rc

import (
	"math"
	"testing"
	"testing/quick"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/spice"
)

func twoPinTopo(t *testing.T, length float64) *graph.Topology {
	t.Helper()
	topo := graph.NewTopology([]geom.Point{{X: 0, Y: 0}, {X: length, Y: 0}})
	if err := topo.AddEdge(graph.Edge{U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDefaultParamsMatchPaperTable1(t *testing.T) {
	p := Default()
	if p.DriverResistance != 100 {
		t.Errorf("driver = %v", p.DriverResistance)
	}
	if p.WireResistance != 0.03 {
		t.Errorf("wire R = %v", p.WireResistance)
	}
	if p.WireCapacitance != 0.352e-15 {
		t.Errorf("wire C = %v", p.WireCapacitance)
	}
	if p.WireInductance != 492e-18 {
		t.Errorf("wire L = %v", p.WireInductance)
	}
	if p.SinkCapacitance != 15.3e-15 {
		t.Errorf("sink C = %v", p.SinkCapacitance)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.DriverResistance = 0 },
		func(p *Params) { p.WireResistance = -1 },
		func(p *Params) { p.WireCapacitance = 0 },
		func(p *Params) { p.WireInductance = -1 },
		func(p *Params) { p.SinkCapacitance = -1 },
		func(p *Params) { p.Vdd = 0 },
	}
	for i, mod := range mods {
		p := Default()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("modification %d must fail validation", i)
		}
	}
}

func TestBuildCircuitElementCounts(t *testing.T) {
	p := Default()
	topo := twoPinTopo(t, 1000)
	cm, err := BuildCircuit(topo, p, BuildOpts{MaxSegmentLength: 250})
	if err != nil {
		t.Fatal(err)
	}
	r, c, l, v, i := cm.Circuit.Counts()
	// 1000µm / 250 = 4 segments + 1 driver resistor = 5 R.
	if r != 5 {
		t.Errorf("resistors = %d, want 5", r)
	}
	// 2 pin loads + 2 caps per segment = 10 C.
	if c != 10 {
		t.Errorf("capacitors = %d, want 10", c)
	}
	if l != 0 || v != 1 || i != 0 {
		t.Errorf("l=%d v=%d i=%d", l, v, i)
	}
	if len(cm.SinkNodes) != 1 {
		t.Errorf("sink nodes: %v", cm.SinkNodes)
	}
}

func TestBuildCircuitInductanceAddsL(t *testing.T) {
	p := Default()
	topo := twoPinTopo(t, 1000)
	cm, err := BuildCircuit(topo, p, BuildOpts{MaxSegmentLength: 500, IncludeInductance: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, l, _, _ := cm.Circuit.Counts()
	if l != 2 {
		t.Errorf("inductors = %d, want 2 (one per segment)", l)
	}
}

func TestBuildCircuitDisconnectedRejected(t *testing.T) {
	topo := graph.NewTopology([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	_ = topo.AddEdge(graph.Edge{U: 0, V: 1})
	if _, err := BuildCircuit(topo, Default(), BuildOpts{}); err != ErrDisconnected {
		t.Errorf("got %v, want ErrDisconnected", err)
	}
}

func TestBuildCircuitBadWidth(t *testing.T) {
	topo := twoPinTopo(t, 1000)
	_, err := BuildCircuit(topo, Default(), BuildOpts{
		Width: func(graph.Edge) float64 { return 0 },
	})
	if err == nil {
		t.Error("zero width must be rejected")
	}
}

func TestSegmentationPreservesTotals(t *testing.T) {
	// Whatever the segmentation, total wire R and C must be conserved.
	p := Default()
	for _, seg := range []float64{100, 333, 1000, 5000} {
		topo := twoPinTopo(t, 3000)
		cm, err := BuildCircuit(topo, p, BuildOpts{MaxSegmentLength: seg})
		if err != nil {
			t.Fatal(err)
		}
		// Total R excluding the driver.
		totR := -p.DriverResistance
		for _, res := range circuitResistors(cm.Circuit) {
			totR += res
		}
		wantR := p.WireResistance * 3000
		if math.Abs(totR-wantR) > 1e-9 {
			t.Errorf("seg %v: wire R %v, want %v", seg, totR, wantR)
		}
		totC := -2 * p.SinkCapacitance
		for _, c := range circuitCapacitors(cm.Circuit) {
			totC += c
		}
		wantC := p.WireCapacitance * 3000
		if math.Abs(totC-wantC) > 1e-21 {
			t.Errorf("seg %v: wire C %v, want %v", seg, totC, wantC)
		}
	}
}

// circuitResistors and circuitCapacitors extract element values via the
// Counts-style public surface; they re-measure using the DC solver as a
// black box would be overkill, so the test peeks through a tiny shim here.
func circuitResistors(c *spice.Circuit) []float64  { return spice.ResistorValues(c) }
func circuitCapacitors(c *spice.Circuit) []float64 { return spice.CapacitorValues(c) }

func TestWidthScalesRAndC(t *testing.T) {
	p := Default()
	topo := twoPinTopo(t, 2000)
	wide := func(graph.Edge) float64 { return 2 }

	l1, err := Lump(topo, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Lump(topo, p, wide)
	if err != nil {
		t.Fatal(err)
	}
	e := graph.Edge{U: 0, V: 1}
	if math.Abs(l2.EdgeRes[e]-l1.EdgeRes[e]/2) > 1e-12 {
		t.Errorf("width 2 must halve resistance: %v vs %v", l2.EdgeRes[e], l1.EdgeRes[e])
	}
	wireCap1 := l1.NodeCap[0] - p.SinkCapacitance
	wireCap2 := l2.NodeCap[0] - p.SinkCapacitance
	if math.Abs(wireCap2-2*wireCap1) > 1e-21 {
		t.Errorf("width 2 must double capacitance: %v vs %v", wireCap2, wireCap1)
	}
}

func TestLumpTotals(t *testing.T) {
	p := Default()
	gen := netlist.NewGenerator(9)
	net, err := gen.Generate(12)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mst.Prim(net.Pins)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Lump(topo, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := p.WireCapacitance*topo.Cost() + float64(topo.NumPins())*p.SinkCapacitance
	if math.Abs(l.TotalCap()-want) > 1e-20 {
		t.Errorf("TotalCap = %v, want %v", l.TotalCap(), want)
	}
	var totR float64
	for e, r := range l.EdgeRes {
		totR += r
		if math.Abs(r-p.WireResistance*topo.EdgeLength(e)) > 1e-12 {
			t.Errorf("edge %v resistance %v", e, r)
		}
	}
	if math.Abs(totR-p.WireResistance*topo.Cost()) > 1e-9 {
		t.Errorf("total R = %v", totR)
	}
}

func TestLumpInvariantUnderSegmentationProperty(t *testing.T) {
	// Lump has no segmentation; but the distributed circuit's measured
	// delay should converge to a fixed value as segmentation refines, and
	// the lumped totals must match the distributed totals. Here we assert
	// the structural half: randomized nets keep cap/resistance conservation.
	f := func(seed int64) bool {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(6)
		if err != nil {
			return false
		}
		topo, err := mst.Prim(net.Pins)
		if err != nil {
			return false
		}
		p := Default()
		l, err := Lump(topo, p, nil)
		if err != nil {
			return false
		}
		want := p.WireCapacitance*topo.Cost() + float64(topo.NumPins())*p.SinkCapacitance
		return math.Abs(l.TotalCap()-want) < 1e-20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildCircuitDelaysConvergeWithSegmentation(t *testing.T) {
	p := Default()
	gen := netlist.NewGenerator(5)
	net, err := gen.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mst.Prim(net.Pins)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(seg float64) float64 {
		cm, err := BuildCircuit(topo, p, BuildOpts{MaxSegmentLength: seg})
		if err != nil {
			t.Fatal(err)
		}
		d, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, spice.DefaultMeasureOpts())
		if err != nil {
			t.Fatal(err)
		}
		return spice.MaxDelay(d)
	}
	coarse := measure(4000)
	fine := measure(200)
	if rel := math.Abs(coarse-fine) / fine; rel > 0.02 {
		t.Errorf("coarse %.4g vs fine %.4g: %.2f%% apart (lumping not converged)",
			coarse, fine, rel*100)
	}
}

func TestIsolatedSteinerNodeTolerated(t *testing.T) {
	// A degree-0 Steiner node must not produce a floating circuit node.
	topo := graph.NewTopology([]geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}})
	if err := topo.AddEdge(graph.Edge{U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	topo.AddSteinerNode(geom.Pt(5000, 5000))
	cm, err := BuildCircuit(topo, Default(), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, spice.DefaultMeasureOpts()); err != nil {
		t.Fatalf("isolated Steiner node broke simulation: %v", err)
	}
}

func TestSwitchingEnergy(t *testing.T) {
	p := Default()
	topo := twoPinTopo(t, 1000)
	e, err := SwitchingEnergy(topo, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * (p.WireCapacitance*1000 + 2*p.SinkCapacitance) * p.Vdd * p.Vdd
	if math.Abs(e-want) > 1e-25 {
		t.Errorf("energy %.6g, want %.6g", e, want)
	}
	// Doubling widths doubles wire capacitance but not sink loads.
	e2, err := SwitchingEnergy(topo, p, func(graph.Edge) float64 { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	wantWide := 0.5 * (2*p.WireCapacitance*1000 + 2*p.SinkCapacitance) * p.Vdd * p.Vdd
	if math.Abs(e2-wantWide) > 1e-25 {
		t.Errorf("wide energy %.6g, want %.6g", e2, wantWide)
	}
	if e2 <= e {
		t.Error("wider wires must cost more energy")
	}
}

func TestDelayGrowsQuadraticallyWithWirelength(t *testing.T) {
	// Section 1 of the paper: "the delay t_ED(n_i) is quadratic in the
	// length of the n0-n_i path". End to end: the simulated 50% delay of a
	// wire-dominated run must grow ~quadratically when the wire doubles.
	p := Default()
	measure := func(length float64) float64 {
		topo := twoPinTopo(t, length)
		cm, err := BuildCircuit(topo, p, BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := spice.MeasureDelays(cm.Circuit, cm.SinkNodes, spice.DefaultMeasureOpts())
		if err != nil {
			t.Fatal(err)
		}
		return d[0]
	}
	d1, d2 := measure(20000), measure(40000)
	ratio := d2 / d1
	if ratio < 2.8 || ratio > 4.2 {
		t.Errorf("doubling a wire-dominated run scaled delay x%.2f; expected ~3-4 (quadratic regime)", ratio)
	}
	// Short wires are driver-dominated: scaling is closer to linear there.
	s1, s2 := measure(500), measure(1000)
	if shortRatio := s2 / s1; shortRatio > 2.5 {
		t.Errorf("driver-dominated regime scaled x%.2f; expected <2.5", shortRatio)
	}
}
