package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nontree"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"mst", "steiner", "ert", "sert", "ldrg", "sldrg", "h1", "h2", "h3", "ert-ldrg"} {
		if err := run("", 8, 3, algo, "elmore", 1, ""); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.svg")
	if err := run("", 6, 1, "ldrg", "elmore", 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("SVG output malformed")
	}
}

func TestRunFromNetFile(t *testing.T) {
	dir := t.TempDir()
	net, err := nontree.GenerateNet(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "net.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, 0, 0, "mst", "elmore", 0, ""); err != nil {
		t.Fatal(err)
	}
	// Text format path.
	tpath := filepath.Join(dir, "net.net")
	tf, err := os.Create(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.WriteText(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	if err := run(tpath, 0, 0, "mst", "elmore", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, 0, "mst", "elmore", 0, ""); err == nil {
		t.Error("no net source must fail")
	}
	if err := run("x.json", 5, 0, "mst", "elmore", 0, ""); err == nil {
		t.Error("both -net and -gen must fail")
	}
	if err := run("", 5, 0, "warp-drive", "elmore", 0, ""); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if err := run("/nonexistent/net.json", 0, 0, "mst", "elmore", 0, ""); err == nil {
		t.Error("missing file must fail")
	}
}
