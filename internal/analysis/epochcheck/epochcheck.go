// Package epochcheck enforces the elmore.Incremental epoch protocol: the
// evaluator factors the topology once and answers WithEdge/WithWiden/
// WithTap probes against that factorization, so any *committed* topology
// mutation (Topology.AddEdge/RemoveEdge/AddSteinerNode, or a width-map
// write keyed by graph.Edge) invalidates it until Refactor runs. A probe
// reachable after a mutation with no intervening Refactor answers from
// stale caches — the exact bug shape PR 6 fixed — and is reported.
//
// The check is a forward may-be-stale dataflow over the
// internal/analysis/cfg graph. Facts track, per evaluator root (the base
// variable of eng.inc.WithEdge-style chains, so an engine struct wrapping
// the evaluator and its refactor() helper are one root):
//
//   - a global "some mutation committed" bit, and
//   - per-root overrides: Refactor()/refactor() on the root, or assigning
//     a fresh evaluator (or evaluator-holding struct) to it, marks it
//     consistent again.
//
// At merges, stale-on-any-path wins. The analysis is intra-procedural:
// mutations hidden inside helper calls are invisible (the sanctioned
// sites all call refactor() immediately after the helper anyway), and a
// probe whose receiver has no trackable root is skipped.
package epochcheck

import (
	"go/ast"
	"go/types"

	"nontree/internal/analysis"
	"nontree/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "epochcheck",
	Doc:  "no WithEdge/WithWiden/WithTap probe may be reachable after a committed topology mutation without an intervening Refactor",
	Run:  run,
	Scope: []string{
		"internal/core",
		"internal/elmore",
	},
}

// useMethods are the Incremental probes that answer from the current
// factorization and its caches.
var useMethods = map[string]bool{
	"WithEdge":      true,
	"WithWiden":     true,
	"WithTap":       true,
	"AdditionBound": true,
	"WideningBound": true,
	"BestAddition":  true,
	"BaseDelays":    true,
}

// mutMethods are the Topology mutators that commit a modification.
var mutMethods = map[string]bool{
	"AddEdge":        true,
	"RemoveEdge":     true,
	"AddSteinerNode": true,
}

// epochState is the dataflow fact: anyMut records that some mutation
// committed on some path; explicit overrides the default per root (false =
// refactored/freshly created since the last mutation).
type epochState struct {
	anyMut   bool
	explicit map[types.Object]bool
}

func (s epochState) eff(root types.Object) bool {
	if v, ok := s.explicit[root]; ok {
		return v
	}
	return s.anyMut
}

func (s epochState) clone() epochState {
	c := epochState{anyMut: s.anyMut, explicit: make(map[types.Object]bool, len(s.explicit))}
	for k, v := range s.explicit {
		c.explicit[k] = v
	}
	return c
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkFunc(lit.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	if !c.mentionsEvaluator(body) {
		return
	}
	g := cfg.New(body)
	ins := cfg.Forward(g, cfg.Flow{
		Entry: func() any { return epochState{explicit: map[types.Object]bool{}} },
		Transfer: func(b *cfg.Block, in any) any {
			state := in.(epochState).clone()
			for _, n := range b.Nodes {
				c.apply(n, &state)
			}
			return state
		},
		Meet: func(a, b any) any {
			sa, sb := a.(epochState), b.(epochState)
			out := epochState{anyMut: sa.anyMut || sb.anyMut, explicit: map[types.Object]bool{}}
			for r := range sa.explicit {
				out.explicit[r] = sa.eff(r) || sb.eff(r)
			}
			for r := range sb.explicit {
				if _, done := out.explicit[r]; !done {
					out.explicit[r] = sa.eff(r) || sb.eff(r)
				}
			}
			return out
		},
		Equal: func(a, b any) bool {
			sa, sb := a.(epochState), b.(epochState)
			if sa.anyMut != sb.anyMut || len(sa.explicit) != len(sb.explicit) {
				return false
			}
			for r, v := range sa.explicit {
				if w, ok := sb.explicit[r]; !ok || v != w {
					return false
				}
			}
			return true
		},
	})
	for _, b := range g.Blocks {
		if ins[b.Index] == nil {
			continue
		}
		state := ins[b.Index].(epochState).clone()
		for _, n := range b.Nodes {
			c.checkUses(n, state)
			c.apply(n, &state)
		}
	}
}

// mentionsEvaluator pre-filters: a body with no probe-shaped call needs no
// dataflow.
func (c *checker) mentionsEvaluator(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && useMethods[sel.Sel.Name] {
			if isIncremental(c.pass.TypeOf(sel.X)) {
				found = true
			}
		}
		return true
	})
	return found
}

// apply folds one node's effects into state: mutations first, then
// refactors and fresh-evaluator assignments (so `t.AddEdge(e)` followed on
// the same line by a refactor behaves like the source order suggests).
func (c *checker) apply(node ast.Node, state *epochState) {
	mutated := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if mutMethods[sel.Sel.Name] && isTopology(c.pass.TypeOf(sel.X)) {
					mutated = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isEdgeKeyedIndex(c.pass, lhs) {
					mutated = true
				}
			}
		case *ast.IncDecStmt:
			if isEdgeKeyedIndex(c.pass, n.X) {
				mutated = true
			}
		}
		return true
	})
	if mutated {
		// Every evaluator's factorization is suspect until re-established.
		state.anyMut = true
		for r := range state.explicit {
			delete(state.explicit, r)
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			refactors := (sel.Sel.Name == "Refactor" && isIncremental(c.pass.TypeOf(sel.X))) ||
				(sel.Sel.Name == "refactor" && isEvaluatorHolder(c.pass.TypeOf(sel.X)))
			if !refactors {
				return true
			}
			if root := c.rootObj(sel.X); root != nil {
				state.explicit[root] = false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.pass.Info.Defs[id]
				if obj == nil {
					obj = c.pass.Info.Uses[id]
				}
				if obj != nil && isEvaluatorHolder(obj.Type()) {
					// A freshly created/assigned evaluator (or engine
					// wrapping one) starts consistent with its topology.
					state.explicit[obj] = false
				}
			}
		}
		return true
	})
}

// checkUses reports probes in one node that run against a may-be-stale
// factorization.
func (c *checker) checkUses(node ast.Node, state epochState) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !useMethods[sel.Sel.Name] || !isIncremental(c.pass.TypeOf(sel.X)) {
			return true
		}
		root := c.rootObj(sel.X)
		if root == nil {
			return true
		}
		if state.eff(root) {
			c.pass.Reportf(call.Pos(), "%s on %s may answer from a stale factorization: the topology was mutated since its last Refactor", sel.Sel.Name, root.Name())
		}
		return true
	})
}

func (c *checker) rootObj(e ast.Expr) types.Object {
	id := analysis.RootIdent(e)
	if id == nil {
		return nil
	}
	if obj := c.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.Info.Defs[id]
}

// isEdgeKeyedIndex reports whether e is m[k] where m is a map keyed by
// graph.Edge — the width-table write WSORG commits modifications through.
func isEdgeKeyedIndex(pass *analysis.Pass, e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(idx.X)
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	return isNamedFrom(m.Key(), "Edge", "graph")
}

func isIncremental(t types.Type) bool { return isNamedFrom(t, "Incremental", "elmore") }
func isTopology(t types.Type) bool    { return isNamedFrom(t, "Topology", "graph") }

// isEvaluatorHolder reports whether t is an Incremental or a struct (or
// pointer to one) with an Incremental-typed field — the sweepEngine shape.
func isEvaluatorHolder(t types.Type) bool {
	if isIncremental(t) {
		return true
	}
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isIncremental(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isNamedFrom matches a (possibly pointed-to) named type by name and
// declaring package name. Matching the package by name rather than import
// path lets testdata stubs stand in for the real packages, exactly like a
// real engine in package core matching "elmore".
func isNamedFrom(t types.Type, name, pkgName string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
