package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nontree/internal/geom"
)

func square() []geom.Point {
	return []geom.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10},
	}
}

func mustAdd(t *testing.T, topo *Topology, edges ...Edge) {
	t.Helper()
	for _, e := range edges {
		if err := topo.AddEdge(e); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
}

func TestEdgeCanonAndOther(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canon()
	if e.U != 2 || e.V != 5 {
		t.Errorf("Canon = %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Error("Other endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint must panic")
		}
	}()
	e.Other(99)
}

func TestAddRemoveEdges(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2})

	if !topo.HasEdge(Edge{U: 1, V: 0}) {
		t.Error("HasEdge must be orientation-independent")
	}
	if topo.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", topo.NumEdges())
	}
	if topo.Degree(1) != 2 || topo.Degree(3) != 0 {
		t.Errorf("degrees: %d %d", topo.Degree(1), topo.Degree(3))
	}
	if err := topo.RemoveEdge(Edge{U: 2, V: 1}); err != nil {
		t.Fatal(err)
	}
	if topo.HasEdge(Edge{U: 1, V: 2}) || topo.NumEdges() != 1 {
		t.Error("RemoveEdge failed")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1})
	cases := []struct {
		e    Edge
		want error
	}{
		{Edge{U: 2, V: 2}, ErrSelfLoop},
		{Edge{U: 0, V: 9}, ErrNodeRange},
		{Edge{U: -1, V: 0}, ErrNodeRange},
		{Edge{U: 1, V: 0}, ErrDupEdge},
	}
	for _, c := range cases {
		if err := topo.AddEdge(c.e); !errors.Is(err, c.want) {
			t.Errorf("AddEdge(%v) = %v, want %v", c.e, err, c.want)
		}
	}
	if err := topo.RemoveEdge(Edge{U: 2, V: 3}); !errors.Is(err, ErrMissingEdge) {
		t.Errorf("RemoveEdge missing: %v", err)
	}
}

func TestZeroLengthEdgeRejected(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 1}}
	topo := NewTopology(pts)
	if err := topo.AddEdge(Edge{U: 0, V: 1}); !errors.Is(err, ErrZeroLength) {
		t.Errorf("zero-length edge: %v", err)
	}
}

func TestCostAndEdgeLength(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 0, V: 2})
	if got := topo.EdgeLength(Edge{U: 0, V: 2}); got != 20 {
		t.Errorf("EdgeLength diagonal = %v", got)
	}
	if got := topo.Cost(); got != 40 {
		t.Errorf("Cost = %v, want 40", got)
	}
}

func TestConnectivityAndTreePredicates(t *testing.T) {
	topo := NewTopology(square())
	if topo.Connected() {
		t.Error("edgeless 4-pin topology is not connected")
	}
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 2, V: 3})
	if !topo.Connected() || !topo.IsTree() || topo.HasCycle() {
		t.Error("path graph must be a connected acyclic tree")
	}
	mustAdd(t, topo, Edge{U: 3, V: 0})
	if !topo.Connected() || topo.IsTree() || !topo.HasCycle() {
		t.Error("cycle graph must be connected, cyclic, not a tree")
	}
}

func TestIsolatedSteinerIgnoredByConnectivity(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 2, V: 3})
	topo.AddSteinerNode(geom.Pt(5, 5))
	if !topo.Connected() {
		t.Error("isolated Steiner node must not break connectivity")
	}
	if !topo.IsTree() {
		t.Error("isolated Steiner node must not break tree predicate")
	}
}

func TestShortestPathLengths(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 2, V: 3})
	d := topo.ShortestPathLengths()
	want := []float64{0, 10, 20, 30}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	// Closing the square shortens node 3's path to 10.
	mustAdd(t, topo, Edge{U: 3, V: 0})
	d = topo.ShortestPathLengths()
	if d[3] != 10 || d[2] != 20 {
		t.Errorf("after cycle: %v", d)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1})
	d := topo.ShortestPathLengths()
	if !math.IsInf(d[2], 1) && d[2] < 1e300 {
		t.Errorf("unreachable node distance = %v", d[2])
	}
}

func TestTreePathLength(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 2, V: 3})
	got, err := topo.TreePathLength(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("TreePathLength(3) = %v", got)
	}
	mustAdd(t, topo, Edge{U: 3, V: 0})
	if _, err := topo.TreePathLength(3); err == nil {
		t.Error("TreePathLength on a graph must error")
	}
}

func TestRootAt(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 2}, Edge{U: 2, V: 1}, Edge{U: 2, V: 3})
	parents, err := topo.RootAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if parents[0] != -1 || parents[2] != 0 || parents[1] != 2 || parents[3] != 2 {
		t.Errorf("parents = %v", parents)
	}
	mustAdd(t, topo, Edge{U: 1, V: 3})
	if _, err := topo.RootAt(0); err == nil {
		t.Error("RootAt on cyclic topology must error")
	}
}

func TestAbsentEdges(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 2, V: 3})
	absent := topo.AbsentEdges()
	// C(4,2)=6 pairs − 3 present = 3 absent.
	if len(absent) != 3 {
		t.Fatalf("absent = %v", absent)
	}
	for _, e := range absent {
		if topo.HasEdge(e) {
			t.Errorf("absent edge %v is present", e)
		}
		if e.U >= e.V {
			t.Errorf("absent edge %v not canonical", e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 0, V: 1})
	clone := topo.Clone()
	mustAdd(t, clone, Edge{U: 1, V: 2})
	if topo.HasEdge(Edge{U: 1, V: 2}) {
		t.Error("mutating clone affected original")
	}
	if err := clone.RemoveEdge(Edge{U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if !topo.HasEdge(Edge{U: 0, V: 1}) {
		t.Error("removing from clone affected original")
	}
}

func TestSteinerNodesAndCompact(t *testing.T) {
	topo := NewTopology(square())
	used := topo.AddSteinerNode(geom.Pt(5, 5))
	unused := topo.AddSteinerNode(geom.Pt(7, 7))
	if !topo.IsSteiner(used) || topo.IsSteiner(0) {
		t.Error("IsSteiner misclassifies")
	}
	mustAdd(t, topo,
		Edge{U: 0, V: used}, Edge{U: 1, V: used}, Edge{U: 2, V: used}, Edge{U: 3, V: used})

	compacted, remap := topo.Compact()
	if compacted.NumNodes() != 5 {
		t.Fatalf("compacted to %d nodes, want 5", compacted.NumNodes())
	}
	if remap[unused] != -1 {
		t.Error("unused Steiner node must map to -1")
	}
	if compacted.NumEdges() != 4 || !compacted.Connected() {
		t.Error("compacted topology lost structure")
	}
	if compacted.Cost() != topo.Cost() {
		t.Errorf("compaction changed cost: %v vs %v", compacted.Cost(), topo.Cost())
	}
	// Pin locations preserved in order.
	for n := 0; n < 4; n++ {
		if !compacted.Point(n).Eq(topo.Point(n)) {
			t.Errorf("pin %d moved", n)
		}
	}
}

func TestNewTopologyWithSteiner(t *testing.T) {
	topo := NewTopologyWithSteiner(square(), []geom.Point{{X: 5, Y: 5}})
	if topo.NumNodes() != 5 || topo.NumPins() != 4 {
		t.Fatalf("nodes %d pins %d", topo.NumNodes(), topo.NumPins())
	}
	if !topo.IsSteiner(4) {
		t.Error("node 4 must be Steiner")
	}
}

func TestEdgesSortedDeterministic(t *testing.T) {
	topo := NewTopology(square())
	mustAdd(t, topo, Edge{U: 2, V: 3}, Edge{U: 0, V: 1}, Edge{U: 1, V: 3})
	edges := topo.Edges()
	for i := 1; i < len(edges); i++ {
		prev, cur := edges[i-1], edges[i]
		if prev.U > cur.U || (prev.U == cur.U && prev.V >= cur.V) {
			t.Fatalf("edges not sorted: %v", edges)
		}
	}
}

func randomConnectedTopology(rng *rand.Rand, n int) *Topology {
	pts := make([]geom.Point, n)
	used := map[geom.Point]bool{}
	for i := range pts {
		for {
			p := geom.Pt(float64(rng.Intn(10000)), float64(rng.Intn(10000)))
			if !used[p] {
				used[p] = true
				pts[i] = p
				break
			}
		}
	}
	topo := NewTopology(pts)
	// Random spanning tree then random extra edges.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[rng.Intn(i)]
		v := perm[i]
		_ = topo.AddEdge(Edge{U: u, V: v})
	}
	for k := 0; k < n/2; k++ {
		_ = topo.AddEdge(Edge{U: rng.Intn(n), V: rng.Intn(n)})
	}
	return topo
}

func TestRandomTopologyInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		n := 3 + rng.Intn(12)
		topo := randomConnectedTopology(rng, n)
		if !topo.Connected() {
			return false
		}
		// Handshake lemma: Σ degrees = 2·|E|.
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += topo.Degree(v)
		}
		if degSum != 2*topo.NumEdges() {
			return false
		}
		// Tree iff |E| = n−1 for connected graphs.
		isTree := topo.NumEdges() == n-1
		if topo.IsTree() != isTree || topo.HasCycle() == isTree {
			return false
		}
		// Dijkstra distances obey the edge relaxation inequality.
		d := topo.ShortestPathLengths()
		for _, e := range topo.Edges() {
			if d[e.V] > d[e.U]+topo.EdgeLength(e)+1e-9 ||
				d[e.U] > d[e.V]+topo.EdgeLength(e)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAbsentPlusPresentIsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		topo := randomConnectedTopology(rng, n)
		total := len(topo.AbsentEdges()) + topo.NumEdges()
		if want := n * (n - 1) / 2; total != want {
			t.Fatalf("n=%d: absent+present = %d, want %d", n, total, want)
		}
	}
}
