// Package mst constructs minimum spanning trees over signal nets under the
// Manhattan metric. The MST is the paper's universal starting topology: the
// LDRG algorithm and the H1/H2/H3 heuristics all begin from it, and every
// table normalizes delay and cost to MST values.
//
// Both Prim's and Kruskal's algorithms are provided; tests cross-check that
// they produce trees of identical cost.
package mst

import (
	"errors"
	"math"
	"sort"

	"nontree/internal/geom"
	"nontree/internal/graph"
)

// ErrTooFewPoints is returned for inputs with fewer than two points.
var ErrTooFewPoints = errors.New("mst: need at least two points")

// Prim builds the MST over the given points with Prim's algorithm (O(n^2),
// ideal for the complete geometric graphs of small nets) and returns it as
// a routing topology whose node order matches the input.
func Prim(points []geom.Point) (*graph.Topology, error) {
	n := len(points)
	if n < 2 {
		return nil, ErrTooFewPoints
	}
	t := graph.NewTopology(points)

	inTree := make([]bool, n)
	best := make([]float64, n) // cheapest connection cost into the tree
	bestVia := make([]int, n)  // tree endpoint realizing best
	for i := range best {
		best[i] = math.Inf(1)
		bestVia[i] = -1
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		best[v] = geom.Dist(points[0], points[v])
		bestVia[v] = 0
	}

	for added := 1; added < n; added++ {
		pick := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (pick < 0 || best[v] < best[pick]) {
				pick = v
			}
		}
		if pick < 0 || math.IsInf(best[pick], 1) {
			return nil, errors.New("mst: internal error: graph not complete")
		}
		if err := t.AddEdge(graph.Edge{U: bestVia[pick], V: pick}); err != nil {
			return nil, err
		}
		inTree[pick] = true
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := geom.Dist(points[pick], points[v]); d < best[v] {
					best[v] = d
					bestVia[v] = pick
				}
			}
		}
	}
	return t, nil
}

// Kruskal builds the MST with Kruskal's algorithm over the complete graph.
// It exists primarily as an independent cross-check of Prim in tests, and
// as the incremental-cost engine inside the Iterated 1-Steiner heuristic.
func Kruskal(points []geom.Point) (*graph.Topology, error) {
	n := len(points)
	if n < 2 {
		return nil, ErrTooFewPoints
	}
	type weightedEdge struct {
		e graph.Edge
		w float64
	}
	edges := make([]weightedEdge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, weightedEdge{graph.Edge{U: u, V: v}, geom.Dist(points[u], points[v])})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		// Deterministic tie-break so Prim/Kruskal comparisons are stable.
		if edges[i].e.U != edges[j].e.U {
			return edges[i].e.U < edges[j].e.U
		}
		return edges[i].e.V < edges[j].e.V
	})

	t := graph.NewTopology(points)
	uf := NewUnionFind(n)
	added := 0
	for _, we := range edges {
		if uf.Union(we.e.U, we.e.V) {
			if err := t.AddEdge(we.e); err != nil {
				return nil, err
			}
			added++
			if added == n-1 {
				break
			}
		}
	}
	if added != n-1 {
		return nil, errors.New("mst: could not span all points (coincident points?)")
	}
	return t, nil
}

// Cost returns the total Manhattan MST cost over points without
// materializing a topology — used heavily by the Iterated 1-Steiner inner
// loop, which evaluates MST cost for many candidate point sets.
func Cost(points []geom.Point) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		best[v] = geom.Dist(points[0], points[v])
	}
	var total float64
	for added := 1; added < n; added++ {
		pick := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (pick < 0 || best[v] < best[pick]) {
				pick = v
			}
		}
		total += best[pick]
		inTree[pick] = true
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := geom.Dist(points[pick], points[v]); d < best[v] {
					best[v] = d
				}
			}
		}
	}
	return total
}

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int
	rank   []int
	count  int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y, reporting whether a merge occurred.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Sets returns the number of disjoint sets remaining.
func (uf *UnionFind) Sets() int { return uf.count }
