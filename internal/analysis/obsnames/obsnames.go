// Package obsnames pins every metric name at every instrumentation site
// to the internal/obs catalog: the name argument of a Recorder/Registry
// call (Add, Observe, ObserveDuration, Declare, DeclareTiming) or an
// obs.StartSpan must be a compile-time string constant whose value is one
// of the obs package's exported name constants (names.go). That makes
// Preregister/exposition drift impossible by construction: a name that
// compiles is in the catalog, so it is preregistered, schema-stable, and
// scrapeable before first use.
//
// Matching is by constant *value*, so packages may alias catalog entries
// into local constants (serve does). The obs package itself is exempt —
// its Preregister loops necessarily pass variables — as is any package
// named obs, which lets testdata stubs stand in for the real catalog.
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/types"

	"nontree/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "metric names at instrumentation sites must be constants from the internal/obs catalog",
	Run:  run,
	// No Scope: every instrumented package is checked; obs itself is
	// exempted inside Run.
}

// nameArg maps recorder-shaped method names to the index of their name
// argument.
var nameArg = map[string]int{
	"Add":             0,
	"Observe":         0,
	"ObserveDuration": 0,
	"Declare":         0,
	"DeclareTiming":   0,
	"StartSpan":       1,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "obs" {
		return nil
	}
	catalogs := map[*types.Package]map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := nameArg[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
				return true
			}
			// StartSpan is the package-level span helper; everything else
			// must be a method (Recorder implementations, Registry).
			isMethod := fn.Type().(*types.Signature).Recv() != nil
			if sel.Sel.Name == "StartSpan" {
				if isMethod {
					return true
				}
			} else if !isMethod {
				return true
			}

			arg := call.Args[argIdx]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "metric name for %s must be a string constant from the internal/obs names catalog, not a computed value", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !catalog(catalogs, fn.Pkg())[name] {
				pass.Reportf(arg.Pos(), "metric name %q is not in the internal/obs names catalog", name)
			}
			return true
		})
	}
	return nil
}

// catalog returns (caching per package) the values of every exported
// package-level string constant of the obs package the call resolved to.
func catalog(cache map[*types.Package]map[string]bool, pkg *types.Package) map[string]bool {
	if c, ok := cache[pkg]; ok {
		return c
	}
	c := map[string]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || !cn.Exported() {
			continue
		}
		if cn.Val().Kind() != constant.String {
			continue
		}
		c[constant.StringVal(cn.Val())] = true
	}
	cache[pkg] = c
	return c
}
