package unitcheck_test

import (
	"io"
	"testing"

	"nontree/internal/analysis"
	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	analysistest.Run(t, unitcheck.Analyzer, "a")
}

// TestRepositoryDimensionCoverage runs unitcheck over the whole module:
// the tree must be clean, and the physics packages must actually carry
// their contracts — at least 40 declarations with units across rc, spice
// and elmore, so the analyzer has something to check.
func TestRepositoryDimensionCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	facts := map[string]*analysis.Facts{}
	diags, err := analysis.RunFacts(io.Discard, "", []*analysis.Analyzer{unitcheck.Analyzer}, facts, "nontree/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	n := unitcheck.CountDeclaredDims(facts[unitcheck.Analyzer.Name],
		"nontree/internal/rc", "nontree/internal/spice", "nontree/internal/elmore")
	if n < 40 {
		t.Errorf("rc/spice/elmore declare %d dimensions, want >= 40", n)
	}
}
