package expt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"nontree/internal/core"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/steiner"
)

// BenchSchemaVersion identifies the BENCH_*.json layout. Bump it only when
// a field is renamed or removed; adding fields is backward compatible and
// the schema-regression test in cmd/nontree-bench enforces exactly that
// (every previously emitted key must still be present).
const BenchSchemaVersion = 1

// BenchEntry is one (algorithm, size, trial) cell of the benchmark suite.
// Every field except workers and wall_seconds is deterministic for a fixed
// configuration seed at any Workers value.
type BenchEntry struct {
	Algorithm string `json:"algorithm"`
	Size      int    `json:"size"`
	Trial     int    `json:"trial"`
	// NetSeed is the derived sub-seed the trial's net was generated from.
	NetSeed int64 `json:"net_seed"`
	// Workers echoes the sweep-level worker knob the entry ran with.
	Workers int `json:"workers"`

	// Delay and wirelength of the seed tree and the final routing, with
	// their ratios (final/seed) — the paper's two quality axes.
	SeedDelay  float64 `json:"seed_delay_s"`
	FinalDelay float64 `json:"final_delay_s"`
	DelayRatio float64 `json:"delay_ratio"`
	SeedCost   float64 `json:"seed_wirelength_um"`
	FinalCost  float64 `json:"final_wirelength_um"`
	CostRatio  float64 `json:"cost_ratio"`

	// Accepted counts accepted modifications (edges or widenings);
	// OracleEvaluations is the dominant-cost counter from the run.
	Accepted          int `json:"accepted"`
	OracleEvaluations int `json:"oracle_evaluations"`

	// WallSeconds is the entry's wall-clock time (reporting only — the
	// one field the determinism fingerprint excludes along with workers).
	WallSeconds float64 `json:"wall_seconds"`

	// Counters and Histograms are the entry's deterministic obs snapshot
	// (preregistered catalog, so the key set is schema-stable).
	Counters   map[string]int64                 `json:"counters"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
}

// BenchAggregate summarizes one algorithm across all its entries.
type BenchAggregate struct {
	Entries                int     `json:"entries"`
	MeanDelayRatio         float64 `json:"mean_delay_ratio"`
	MeanCostRatio          float64 `json:"mean_cost_ratio"`
	TotalOracleEvaluations int64   `json:"total_oracle_evaluations"`
	TotalWallSeconds       float64 `json:"total_wall_seconds"`
}

// BenchConfig is the configuration echo embedded in a report.
type BenchConfig struct {
	Sizes         []int   `json:"sizes"`
	Trials        int     `json:"trials"`
	Seed          int64   `json:"seed"`
	SearchOracle  string  `json:"search_oracle"`
	MeasureWith   string  `json:"measure_with"`
	SegmentLength float64 `json:"segment_um"`
	Inductance    bool    `json:"inductance"`
	Workers       int     `json:"workers"`
}

// BenchReport is the machine-readable output of BenchSuite — the schema
// behind BENCH_PR4.json.
type BenchReport struct {
	SchemaVersion int         `json:"schema_version"`
	Config        BenchConfig `json:"config"`
	// Environment stamps non-deterministic provenance (go version, OS,
	// architecture); filled by the command, excluded from fingerprints.
	Environment map[string]string         `json:"environment,omitempty"`
	Entries     []BenchEntry              `json:"entries"`
	Aggregates  map[string]BenchAggregate `json:"aggregates"`
}

// BenchAlgorithms lists the algorithm names a suite covers, in run order.
func BenchAlgorithms() []string {
	names := make([]string, len(benchAlgorithms))
	for i := range benchAlgorithms {
		names[i] = benchAlgorithms[i].name
	}
	return names
}

// benchOutcome is what one algorithm run reports to the suite.
type benchOutcome struct {
	seed, final *graph.Topology
	accepted    int
	evals       int
	// finalWidth carries the width assignment for measurement when the
	// algorithm sized wires (nil = unit widths).
	finalWidth *core.WireSizeResult
}

var benchAlgorithms = []struct {
	name string
	run  func(cfg *Config, net *netlist.Net) (*benchOutcome, error)
}{
	{"ldrg", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		res, err := core.LDRG(seed, cfg.ldrgOptions(0))
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: seed, final: res.Topology, accepted: len(res.AddedEdges), evals: res.Evaluations}, nil
	}},
	{"sldrg", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		res, err := core.SLDRG(net.Pins, steiner.Options{}, cfg.ldrgOptions(0))
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: res.Seed, final: res.Topology, accepted: len(res.AddedEdges), evals: res.Evaluations}, nil
	}},
	{"h1", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		res, err := core.H1(seed, cfg.ldrgOptions(2))
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: seed, final: res.Topology, accepted: len(res.AddedEdges), evals: res.Evaluations}, nil
	}},
	{"h2", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		res, err := core.H2(seed, cfg.Params, cfg.ldrgOptions(1))
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: seed, final: res.Topology, accepted: len(res.AddedEdges), evals: res.Evaluations}, nil
	}},
	{"h3", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		res, err := core.H3(seed, cfg.Params, cfg.ldrgOptions(1))
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: seed, final: res.Topology, accepted: len(res.AddedEdges), evals: res.Evaluations}, nil
	}},
	{"csorg", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		alphas := core.UniformCriticality(seed.NumPins())
		res, err := core.CriticalSinkLDRG(seed, alphas, cfg.ldrgOptions(0))
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: seed, final: res.Topology, accepted: len(res.AddedEdges), evals: res.Evaluations}, nil
	}},
	{"wsorg", func(cfg *Config, net *netlist.Net) (*benchOutcome, error) {
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		ws, err := core.WireSize(seed, core.WireSizeOptions{
			Oracle:  cfg.searchOracle(),
			Workers: cfg.Workers,
			Obs:     cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		return &benchOutcome{seed: seed, final: seed, accepted: ws.Widenings, evals: ws.Evaluations, finalWidth: ws}, nil
	}},
}

// BenchSuite runs every benchmark algorithm over the configured seeded
// workload and returns the report. Entries appear in deterministic order
// (algorithm catalog × sizes × trials); suite-level parallelism across
// entries never changes any entry's content because each entry gets a
// private metrics registry and a private Config copy. When cfg.Obs is set
// it additionally receives the union of all entries' metrics.
func BenchSuite(cfg Config) (*BenchReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	type slot struct {
		algo  int
		size  int
		trial int
	}
	var slots []slot
	for a := range benchAlgorithms {
		for _, size := range cfg.Sizes {
			for tr := 0; tr < cfg.Trials; tr++ {
				slots = append(slots, slot{algo: a, size: size, trial: tr})
			}
		}
	}

	entries := make([]BenchEntry, len(slots))
	errs := make([]error, len(slots))

	jobs := make(chan int)
	var wg sync.WaitGroup
	//nontree:allow nondetsource sizes the entry pool only; each entry lands in its own slot with its own registry, so scheduling cannot change report content
	workers := runtime.GOMAXPROCS(0)
	if workers > len(slots) {
		workers = len(slots)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				entries[i], errs[i] = benchEntry(&cfg, benchAlgorithms[slots[i].algo].name,
					benchAlgorithms[slots[i].algo].run, slots[i].size, slots[i].trial)
			}
		}()
	}
	for i := range slots {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("expt: bench %s size %d trial %d: %w",
				benchAlgorithms[slots[i].algo].name, slots[i].size, slots[i].trial, err)
		}
	}

	report := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Config: BenchConfig{
			Sizes:         cfg.Sizes,
			Trials:        cfg.Trials,
			Seed:          cfg.Seed,
			SearchOracle:  cfg.SearchOracle,
			MeasureWith:   cfg.MeasureWith,
			SegmentLength: cfg.SegmentLength,
			Inductance:    cfg.Inductance,
			Workers:       cfg.Workers,
		},
		Entries:    entries,
		Aggregates: make(map[string]BenchAggregate, len(benchAlgorithms)),
	}
	for _, e := range entries {
		agg := report.Aggregates[e.Algorithm]
		agg.Entries++
		agg.MeanDelayRatio += e.DelayRatio
		agg.MeanCostRatio += e.CostRatio
		agg.TotalOracleEvaluations += int64(e.OracleEvaluations)
		agg.TotalWallSeconds += e.WallSeconds
		report.Aggregates[e.Algorithm] = agg
	}
	aggNames := make([]string, 0, len(report.Aggregates))
	for name := range report.Aggregates {
		aggNames = append(aggNames, name)
	}
	sort.Strings(aggNames)
	for _, name := range aggNames {
		agg := report.Aggregates[name]
		agg.MeanDelayRatio /= float64(agg.Entries)
		agg.MeanCostRatio /= float64(agg.Entries)
		report.Aggregates[name] = agg
	}
	return report, nil
}

// benchEntry runs one (algorithm, size, trial) cell with a private metrics
// registry and returns the populated entry.
func benchEntry(base *Config, name string, run func(*Config, *netlist.Net) (*benchOutcome, error), size, trial int) (BenchEntry, error) {
	reg := obs.NewRegistry()
	obs.Preregister(reg)
	var rec obs.Recorder = reg
	if base.Obs != nil {
		rec = obs.Multi{reg, base.Obs}
	}
	cfg := *base
	cfg.Obs = rec

	net, err := cfg.netFor(size, trial)
	if err != nil {
		return BenchEntry{}, err
	}
	elapsed := obs.Stopwatch()
	out, err := run(&cfg, net)
	if err != nil {
		return BenchEntry{}, err
	}
	seedDelay, seedCost, err := cfg.Measure(out.seed)
	if err != nil {
		return BenchEntry{}, fmt.Errorf("measuring seed: %w", err)
	}
	finalDelay, finalCost := seedDelay, seedCost
	if out.finalWidth != nil {
		finalDelay, _, err = cfg.measureWidth(out.final, out.finalWidth.WidthFunc())
		if err == nil {
			finalCost = core.MetalArea(out.final, out.finalWidth.Widths)
		}
	} else if out.final != out.seed {
		finalDelay, finalCost, err = cfg.Measure(out.final)
	}
	if err != nil {
		return BenchEntry{}, fmt.Errorf("measuring final: %w", err)
	}
	wall := elapsed()

	snap := reg.Snapshot()
	hists := make(map[string]obs.HistogramSnapshot, len(snap.Histograms))
	for n, h := range snap.Histograms {
		hists[n] = h.Summary()
	}
	return BenchEntry{
		Algorithm:         name,
		Size:              size,
		Trial:             trial,
		NetSeed:           base.Seed*1_000_003 + int64(size)*10_007 + int64(trial),
		Workers:           base.Workers,
		SeedDelay:         seedDelay,
		FinalDelay:        finalDelay,
		DelayRatio:        finalDelay / seedDelay,
		SeedCost:          seedCost,
		FinalCost:         finalCost,
		CostRatio:         finalCost / seedCost,
		Accepted:          out.accepted,
		OracleEvaluations: out.evals,
		WallSeconds:       wall,
		Counters:          snap.Counters,
		Histograms:        hists,
	}, nil
}

// Fingerprint renders the report's deterministic content as canonical
// text: everything except wall times, the Workers echo, and the
// environment stamp. Two runs of the same configuration at different
// Workers values produce byte-identical fingerprints — the observability
// determinism contract (DESIGN.md §10), asserted by the test suite.
func (r *BenchReport) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %d\n", r.SchemaVersion)
	fmt.Fprintf(&b, "config sizes=%v trials=%d seed=%d search=%s measure=%s segment=%x inductance=%t\n",
		r.Config.Sizes, r.Config.Trials, r.Config.Seed, r.Config.SearchOracle,
		r.Config.MeasureWith, r.Config.SegmentLength, r.Config.Inductance)
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "entry %s/%d/%d seed_delay=%x final_delay=%x seed_cost=%x final_cost=%x accepted=%d evals=%d\n",
			e.Algorithm, e.Size, e.Trial, e.SeedDelay, e.FinalDelay, e.SeedCost, e.FinalCost,
			e.Accepted, e.OracleEvaluations)
		names := make([]string, 0, len(e.Counters))
		for n := range e.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  counter %s %d\n", n, e.Counters[n])
		}
		names = names[:0]
		for n := range e.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := e.Histograms[n]
			fmt.Fprintf(&b, "  hist %s count=%d sum=%x min=%x max=%x\n", n, h.Count, h.Sum, h.Min, h.Max)
		}
	}
	names := make([]string, 0, len(r.Aggregates))
	for n := range r.Aggregates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := r.Aggregates[n]
		fmt.Fprintf(&b, "agg %s entries=%d delay=%x cost=%x evals=%d\n",
			n, a.Entries, a.MeanDelayRatio, a.MeanCostRatio, a.TotalOracleEvaluations)
	}
	return b.String()
}

// MetricKeys returns the sorted union of counter and histogram names
// across all entries — the key set the schema-regression check pins.
func (r *BenchReport) MetricKeys() []string {
	set := make(map[string]bool)
	for _, e := range r.Entries {
		for n := range e.Counters {
			set["counter:"+n] = true
		}
		for n := range e.Histograms {
			set["histogram:"+n] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanity guard referenced by tests: NaN ratios would poison aggregates.
func (e *BenchEntry) valid() bool {
	return !math.IsNaN(e.DelayRatio) && !math.IsNaN(e.CostRatio)
}
