// Package units implements the dimension algebra behind the unitcheck
// analyzer: SI base-dimension vectors covering the derived units of the
// circuit model (Ω, F, H, V, s, Hz, J, W) together with a parser for the
// unit expressions that appear in //nontree:unit directives and in the
// doc-comment conventions of the physics packages — "Ω/µm", "F·µm⁻¹",
// "fF", "s^2".
//
// A Dim tracks, besides the four base-dimension exponents, a decimal
// scale exponent so SI prefixes stay part of the unit: µm is 10⁻⁶·m and
// fF is 10⁻¹⁵·F. Addition-compatibility therefore requires the same
// dimension vector AND the same scale — adding a fF quantity to an F
// quantity is a finding even though both are capacitances, which is
// exactly the silent exponent slip (Table 1 stores fF/µm values in F/µm
// fields) the analyzer exists to catch.
//
// The algebra makes the repository's load-bearing identities fall out
// mechanically: Ω·F = s (an RC product is a time), H/Ω = s, Ω/µm · µm = Ω,
// ½·F·V² = J.
package units

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Dim is a physical dimension: exponents over the SI base dimensions the
// circuit model needs (length, mass, time, current) plus a decimal scale
// exponent carrying SI prefixes. The zero value One is the dimensionless
// unit.
type Dim struct {
	L int `json:"l,omitempty"` // length (metre)
	M int `json:"m,omitempty"` // mass (kilogram)
	T int `json:"t,omitempty"` // time (second)
	I int `json:"i,omitempty"` // electric current (ampere)
	// Scale is the decimal exponent contributed by SI prefixes:
	// µm has Scale −6, fF has Scale −15, aH has Scale −18.
	Scale int `json:"p,omitempty"`
}

// One is the dimensionless unit (pure numbers, radians, fractions).
var One = Dim{}

// IsOne reports whether d is dimensionless with no scale.
func (d Dim) IsOne() bool { return d == One }

// Mul returns the dimension of a product.
func (d Dim) Mul(o Dim) Dim {
	return Dim{L: d.L + o.L, M: d.M + o.M, T: d.T + o.T, I: d.I + o.I, Scale: d.Scale + o.Scale}
}

// Div returns the dimension of a quotient.
func (d Dim) Div(o Dim) Dim {
	return Dim{L: d.L - o.L, M: d.M - o.M, T: d.T - o.T, I: d.I - o.I, Scale: d.Scale - o.Scale}
}

// Pow returns the dimension raised to an integer power.
func (d Dim) Pow(n int) Dim {
	return Dim{L: d.L * n, M: d.M * n, T: d.T * n, I: d.I * n, Scale: d.Scale * n}
}

// Sqrt halves every exponent, used to push dimensions through math.Sqrt.
// It reports false when any exponent is odd (the square root of such a
// quantity has no dimension in this algebra).
func (d Dim) Sqrt() (Dim, bool) {
	if d.L%2 != 0 || d.M%2 != 0 || d.T%2 != 0 || d.I%2 != 0 || d.Scale%2 != 0 {
		return Dim{}, false
	}
	return Dim{L: d.L / 2, M: d.M / 2, T: d.T / 2, I: d.I / 2, Scale: d.Scale / 2}, true
}

// SameDims reports whether d and o share the same base-dimension vector,
// ignoring scale. When two quantities SameDims but are not equal, the
// mismatch is a pure prefix slip (fF vs F) — the most dangerous kind,
// since the code "looks right".
func (d Dim) SameDims(o Dim) bool {
	return d.L == o.L && d.M == o.M && d.T == o.T && d.I == o.I
}

// baseSymbols maps unit symbols to their dimensions. Coulomb is omitted
// deliberately: a bare "C" in this repository always means capacitance
// prose, never charge, and the parser refusing it avoids silent
// misreadings. "10" is a pseudo-unit worth one decade of scale so that
// canonical fallback strings ("10^-15·m^2·…") round-trip through Parse.
var baseSymbols = map[string]Dim{
	"1":   One,
	"rad": One,
	"Rad": One,
	"10":  {Scale: 1},
	"m":   {L: 1},
	"g":   {M: 1, Scale: -3},
	"kg":  {M: 1},
	"s":   {T: 1},
	"A":   {I: 1},
	"V":   {L: 2, M: 1, T: -3, I: -1},
	"Ω":   {L: 2, M: 1, T: -3, I: -2},
	"Ohm": {L: 2, M: 1, T: -3, I: -2},
	"ohm": {L: 2, M: 1, T: -3, I: -2},
	"F":   {L: -2, M: -1, T: 4, I: 2},
	"H":   {L: 2, M: 1, T: -2, I: -2},
	"Hz":  {T: -1},
	"J":   {L: 2, M: 1, T: -2},
	"W":   {L: 2, M: 1, T: -3},
}

// prefixes maps SI prefix runes to their decimal exponents. Both the
// micro sign U+00B5 and the Greek mu U+03BC are accepted (sources mix
// them), as is the ASCII fallback 'u'.
var prefixes = map[rune]int{
	'a': -18, 'f': -15, 'p': -12, 'n': -9,
	'µ': -6, 'μ': -6, 'u': -6,
	'm': -3, 'k': 3, 'M': 6, 'G': 9,
}

// superscripts maps the Unicode superscript forms to ASCII for exponent
// parsing: Ω·µm⁻¹ and Ω*µm^-1 are the same expression.
var superscripts = map[rune]rune{
	'⁰': '0', '¹': '1', '²': '2', '³': '3', '⁴': '4',
	'⁵': '5', '⁶': '6', '⁷': '7', '⁸': '8', '⁹': '9',
	'⁻': '-', '⁺': '+',
}

// Parse evaluates a unit expression: factors separated by '·', '⋅' or
// '*' (product) and '/' (the factor that follows is divided), each factor
// a unit symbol with optional SI prefix and optional integer exponent in
// caret ("^-2") or superscript ("⁻²") form. "1" denotes the dimensionless
// unit.
func Parse(s string) (Dim, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Dim{}, errors.New("units: empty unit expression")
	}
	d := One
	sign := 1
	rest := s
	for {
		i := strings.IndexAny(rest, "·⋅*/")
		var tok, sep string
		if i < 0 {
			tok, sep = rest, ""
		} else {
			tok = rest[:i]
			_, w := splitRune(rest[i:])
			sep, rest = rest[i:i+w], rest[i+w:]
		}
		f, err := parseFactor(strings.TrimSpace(tok))
		if err != nil {
			return Dim{}, fmt.Errorf("units: in %q: %w", s, err)
		}
		d = d.Mul(f.Pow(sign))
		if i < 0 {
			return d, nil
		}
		if sep == "/" {
			sign = -1
		} else {
			sign = 1
		}
	}
}

// splitRune returns the first rune of s and its byte width.
func splitRune(s string) (rune, int) {
	for _, r := range s {
		return r, len(string(r))
	}
	return 0, 0
}

// parseFactor parses one "<symbol><exponent?>" factor.
func parseFactor(tok string) (Dim, error) {
	if tok == "" {
		return Dim{}, errors.New("empty factor")
	}
	// Split the symbol from a trailing exponent.
	symEnd := len(tok)
	for i, r := range tok {
		if r == '^' || superscripts[r] != 0 {
			symEnd = i
			break
		}
	}
	sym, expPart := tok[:symEnd], tok[symEnd:]
	exp := 1
	if expPart != "" {
		var b strings.Builder
		for _, r := range expPart {
			switch {
			case r == '^':
				// separator only; must be leading
				if b.Len() != 0 {
					return Dim{}, fmt.Errorf("bad exponent %q", expPart)
				}
			case superscripts[r] != 0:
				b.WriteRune(superscripts[r])
			case r == '-' || r == '+' || (r >= '0' && r <= '9'):
				b.WriteRune(r)
			default:
				return Dim{}, fmt.Errorf("bad exponent %q", expPart)
			}
		}
		n, err := strconv.Atoi(b.String())
		if err != nil {
			return Dim{}, fmt.Errorf("bad exponent %q", expPart)
		}
		exp = n
	}
	base, err := resolveSymbol(sym)
	if err != nil {
		return Dim{}, err
	}
	return base.Pow(exp), nil
}

// resolveSymbol looks the symbol up whole first (so "m" is the metre, not
// a dangling milli prefix), then as prefix+symbol ("fF", "µm", "ns").
func resolveSymbol(sym string) (Dim, error) {
	if sym == "" {
		return Dim{}, errors.New("empty unit symbol")
	}
	if d, ok := baseSymbols[sym]; ok {
		return d, nil
	}
	r, w := splitRune(sym)
	if p, ok := prefixes[r]; ok && len(sym) > w {
		// Only dimension-bearing symbols take prefixes: "f1", "k10" and
		// "µrad" stay errors.
		if base, ok := baseSymbols[sym[w:]]; ok && !base.SameDims(One) {
			base.Scale += p
			return base, nil
		}
	}
	return Dim{}, fmt.Errorf("unknown unit %q", sym)
}

// MustParse is Parse for compile-time-known expressions; it panics on
// error and exists for tables and tests.
func MustParse(s string) Dim {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// displayNames maps dimensions back to idiomatic names for diagnostics.
// Built once, earliest entry wins, so plain symbols beat prefixed ones
// and those beat per-µm compounds.
var displayNames = buildDisplayNames()

func buildDisplayNames() map[Dim]string {
	names := map[Dim]string{}
	add := func(name string, d Dim) {
		if _, ok := names[d]; !ok {
			names[d] = name
		}
	}
	syms := []string{"s", "m", "kg", "A", "V", "Ω", "F", "H", "Hz", "J", "W"}
	// Plain symbols, then their squares (s² shows up as E[U²] in the
	// delay-bound moments), then prefixed forms, then per-µm compounds.
	for _, s := range syms {
		add(s, baseSymbols[s])
	}
	add("s²", baseSymbols["s"].Pow(2))
	prefixOrder := []struct {
		p string
		e int
	}{{"f", -15}, {"a", -18}, {"p", -12}, {"n", -9}, {"µ", -6}, {"m", -3}, {"k", 3}, {"M", 6}, {"G", 9}}
	for _, pre := range prefixOrder {
		for _, s := range syms {
			d := baseSymbols[s]
			d.Scale += pre.e
			add(pre.p+s, d)
		}
	}
	um := MustParse("µm")
	add("µm²", um.Pow(2))
	for _, s := range syms {
		add(s+"/µm", baseSymbols[s].Div(um))
	}
	for _, pre := range prefixOrder {
		for _, s := range syms {
			d := baseSymbols[s]
			d.Scale += pre.e
			add(pre.p+s+"/µm", d.Div(um))
		}
	}
	return names
}

// String renders the dimension for diagnostics: an idiomatic name when
// one exists ("Ω/µm", "fF", "s²"), otherwise a canonical product of base
// units that Parse accepts, so every String round-trips.
func (d Dim) String() string {
	if d == One {
		return "1"
	}
	if name, ok := displayNames[d]; ok {
		return name
	}
	var parts []string
	if d.Scale != 0 {
		parts = append(parts, "10^"+strconv.Itoa(d.Scale))
	}
	for _, b := range []struct {
		sym string
		exp int
	}{{"m", d.L}, {"kg", d.M}, {"s", d.T}, {"A", d.I}} {
		switch {
		case b.exp == 0:
		case b.exp == 1:
			parts = append(parts, b.sym)
		default:
			parts = append(parts, b.sym+"^"+strconv.Itoa(b.exp))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "·")
}
