package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"nontree/internal/sim"
)

// Cross-PR artifact trend tracking (ROADMAP item 4): every PR commits its
// measurement artifacts (BENCH_*.json, SIM_*.json) and the trend report
// lines their headline metrics up side by side, so a delay-ratio or
// latency regression is visible as a column-to-column drift instead of
// being buried in two 50 KB JSON files. The report is itself a
// schema-stable artifact (TREND_*.json): regenerating it from the same
// inputs is byte-identical, which is what the regression test in
// cmd/nontree-bench pins.

// TrendSchemaVersion identifies the TREND_*.json layout. Bump it only
// when a field is renamed or removed; adding metrics is backward
// compatible.
const TrendSchemaVersion = 1

// TrendArtifact records one input artifact in scan order.
type TrendArtifact struct {
	// Label is the artifact's basename (BENCH_PR4.json), the column
	// header of the rendered table.
	Label string `json:"label"`
	// Kind classifies the artifact: "bench" or "sim".
	Kind string `json:"kind"`
	// SchemaVersion echoes the artifact's own schema version.
	SchemaVersion int `json:"schema_version"`
}

// TrendMetric is one tracked metric across all artifacts.
type TrendMetric struct {
	Name string `json:"name"`
	// Values holds one entry per artifact, in artifact order; null where
	// the artifact does not carry the metric (a sim metric has no value
	// in a bench column and vice versa).
	Values []*float64 `json:"values"`
	// First and Last are the earliest and latest non-null values.
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	// Ratio is Last/First — the headline drift across the tracked span —
	// omitted when First is zero.
	Ratio *float64 `json:"ratio,omitempty"`
}

// TrendReport is the machine-readable output of Trend — the schema behind
// TREND_*.json.
type TrendReport struct {
	SchemaVersion int             `json:"schema_version"`
	Artifacts     []TrendArtifact `json:"artifacts"`
	Metrics       []TrendMetric   `json:"metrics"`
}

// Trend loads the given committed artifacts — classified by basename
// prefix: BENCH_* are bench reports, SIM_* are soak reports — and lines
// their headline metrics up in artifact order. Bench artifacts contribute
// bench.<algorithm>.{mean_delay_ratio, mean_cost_ratio,
// oracle_evaluations, wall_seconds} per aggregate; sim artifacts
// contribute sim.{latency.p50_s, latency.p99_s, throughput_qps,
// error_rate, shed_rate, requests}. Metrics are sorted by name so the
// report layout is independent of artifact contents.
func Trend(paths []string) (*TrendReport, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("expt: trend needs at least one artifact")
	}
	report := &TrendReport{SchemaVersion: TrendSchemaVersion}
	columns := make([]map[string]float64, 0, len(paths))
	for _, path := range paths {
		base := filepath.Base(path)
		var (
			art  TrendArtifact
			vals map[string]float64
		)
		switch {
		case strings.HasPrefix(base, "BENCH_"):
			r, err := LoadBenchReport(path)
			if err != nil {
				return nil, err
			}
			art = TrendArtifact{Label: base, Kind: "bench", SchemaVersion: r.SchemaVersion}
			vals = benchTrendValues(r)
		case strings.HasPrefix(base, "SIM_"):
			r, err := sim.LoadReport(path)
			if err != nil {
				return nil, err
			}
			art = TrendArtifact{Label: base, Kind: "sim", SchemaVersion: r.SchemaVersion}
			vals = simTrendValues(r)
		default:
			return nil, fmt.Errorf("expt: cannot classify artifact %s: basename must start with BENCH_ or SIM_", path)
		}
		report.Artifacts = append(report.Artifacts, art)
		columns = append(columns, vals)
	}

	names := map[string]bool{}
	for _, col := range columns {
		for name := range col {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		m := TrendMetric{Name: name, Values: make([]*float64, len(columns))}
		seen := false
		for i, col := range columns {
			v, ok := col[name]
			if !ok {
				continue
			}
			val := v
			m.Values[i] = &val
			if !seen {
				m.First = v
				seen = true
			}
			m.Last = v
		}
		//nontree:allow floatcmp zero is the exact divide-by-zero guard for the ratio, not a tolerance decision
		if m.First != 0 {
			ratio := m.Last / m.First
			m.Ratio = &ratio
		}
		report.Metrics = append(report.Metrics, m)
	}
	return report, nil
}

// benchTrendValues extracts the headline per-algorithm metrics of one
// bench artifact, keyed by trend metric name.
func benchTrendValues(r *BenchReport) map[string]float64 {
	algos := make([]string, 0, len(r.Aggregates))
	for algo := range r.Aggregates {
		algos = append(algos, algo)
	}
	sort.Strings(algos)
	vals := make(map[string]float64, 4*len(algos))
	for _, algo := range algos {
		agg := r.Aggregates[algo]
		prefix := "bench." + algo + "."
		vals[prefix+"mean_delay_ratio"] = agg.MeanDelayRatio
		vals[prefix+"mean_cost_ratio"] = agg.MeanCostRatio
		vals[prefix+"oracle_evaluations"] = float64(agg.TotalOracleEvaluations)
		vals[prefix+"wall_seconds"] = agg.TotalWallSeconds
	}
	return vals
}

// simTrendValues extracts the headline client-side metrics of one soak
// artifact, keyed by trend metric name.
func simTrendValues(r *sim.Report) map[string]float64 {
	t := r.Totals
	return map[string]float64{
		"sim.latency.p50_s":  t.Latency.P50,
		"sim.latency.p99_s":  t.Latency.P99,
		"sim.throughput_qps": t.ThroughputQPS,
		"sim.error_rate":     t.ErrorRate,
		"sim.shed_rate":      t.ShedRate,
		"sim.requests":       float64(t.Requests),
	}
}

// WriteJSON writes the report as indented JSON — the byte-stable form
// committed as TREND_*.json.
func (r *TrendReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the human-readable trend table: one column per artifact,
// one row per metric, with the last/first ratio when defined.
func (r *TrendReport) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric")
	for _, a := range r.Artifacts {
		fmt.Fprintf(tw, "\t%s", a.Label)
	}
	fmt.Fprintf(tw, "\tratio\n")
	for _, m := range r.Metrics {
		fmt.Fprintf(tw, "%s", m.Name)
		for _, v := range m.Values {
			if v == nil {
				fmt.Fprintf(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.6g", *v)
			}
		}
		if m.Ratio == nil {
			fmt.Fprintf(tw, "\t-\n")
		} else {
			fmt.Fprintf(tw, "\t%.4f\n", *m.Ratio)
		}
	}
	return tw.Flush()
}

// LoadTrendReport reads a committed TREND_*.json artifact, gating on the
// schema version so drift fails loudly instead of comparing garbage.
func LoadTrendReport(path string) (*TrendReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("expt: reading trend report: %w", err)
	}
	var r TrendReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("expt: parsing trend report %s: %w", path, err)
	}
	if r.SchemaVersion != TrendSchemaVersion {
		return nil, fmt.Errorf("expt: trend report %s has schema %d, this binary writes %d",
			path, r.SchemaVersion, TrendSchemaVersion)
	}
	return &r, nil
}
