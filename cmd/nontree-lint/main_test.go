package main

import (
	"strings"
	"testing"

	"nontree/internal/analysis"
)

// TestRepositoryIsClean runs the full multichecker over every package in
// the module and asserts zero diagnostics and zero stale allows, locking
// the tree's clean state: any new map-ordering, oracle-mutation,
// nondeterminism-source, float-equality, unit-mismatch, lock-discipline,
// goroutine-leak, stale-probe, or metric-name site fails this test (and
// the CI lint gate) until it is fixed or carries a justified
// //nontree:allow annotation — and an annotation that stops suppressing
// anything fails it again until removed.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	var out strings.Builder
	// The module-path pattern resolves from any working directory inside
	// the module, unlike "./..." which would only cover this command.
	diags, stale, err := analysis.RunStale(&out, "", Analyzers, nil, "nontree/...")
	if err != nil {
		t.Fatalf("running multichecker: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("expected a clean tree, got %d finding(s):\n%s", len(diags), out.String())
	}
	for _, s := range stale {
		t.Errorf("stale annotation: %s", s.String())
	}
}

// TestAnalyzerRoster locks the suite composition: dropping an analyzer
// from the multichecker must be a deliberate, reviewed change.
func TestAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"detordering":  true,
		"epochcheck":   true,
		"floatcmp":     true,
		"goroleak":     true,
		"lockguard":    true,
		"nondetsource": true,
		"obsnames":     true,
		"oraclesafety": true,
		"unitcheck":    true,
	}
	if len(Analyzers) != len(want) {
		t.Fatalf("expected %d analyzers, got %d", len(want), len(Analyzers))
	}
	for _, a := range Analyzers {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
	}
}
