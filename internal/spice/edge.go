package spice

import (
	"errors"
	"fmt"
)

// EdgeMetrics characterizes one node's step-response edge beyond the 50%
// delay: rise time and (for RLC circuits) overshoot.
type EdgeMetrics struct {
	// Delay50 is the 50%-of-final crossing time (s).
	Delay50 float64
	// Rise1090 is the 10%→90% rise time (s).
	Rise1090 float64
	// Peak is the maximum voltage observed (V).
	Peak float64
	// OvershootPercent is 100·(Peak − final)/final, 0 for monotone RC
	// responses.
	OvershootPercent float64
	// Final is the settled voltage (V).
	Final float64
}

// MeasureEdge simulates the circuit's step response and extracts edge
// metrics for one node. The horizon is chosen like MeasureDelays; the
// waveform is recorded so the peak is exact to the sampling resolution.
func MeasureEdge(c *Circuit, node int, opts MeasureOpts) (*EdgeMetrics, error) {
	if node <= 0 || node >= c.NumNodes() {
		return nil, fmt.Errorf("spice: edge metrics node %d out of range", node)
	}
	steps := opts.StepsPerHorizon
	if steps <= 0 {
		steps = 2000
	}
	finalV, err := FinalValue(c, 1e30)
	if err != nil {
		return nil, err
	}
	vf := finalV[node]
	if vf <= 0 {
		return nil, errors.New("spice: node settles at or below zero; no rising edge to measure")
	}

	horizon := opts.InitialHorizon
	if horizon <= 0 {
		horizon = horizonEstimate(c)
	}
	maxHorizon := opts.MaxHorizon
	if maxHorizon <= 0 {
		maxHorizon = horizon * 1024
	}

	for {
		res, err := Transient(c, TranOpts{
			Step:   horizon / float64(steps),
			Stop:   horizon,
			Method: opts.Method,
			Record: true,
		})
		if err != nil {
			return nil, err
		}
		wave := res.V[node]
		m := &EdgeMetrics{Final: vf}
		t10 := crossing(res.Times, wave, 0.1*vf)
		t50 := crossing(res.Times, wave, 0.5*vf)
		t90 := crossing(res.Times, wave, 0.9*vf)
		for _, v := range wave {
			if v > m.Peak {
				m.Peak = v
			}
		}
		if t10 >= 0 && t50 >= 0 && t90 >= 0 {
			m.Delay50 = t50
			m.Rise1090 = t90 - t10
			if m.Peak > vf {
				m.OvershootPercent = 100 * (m.Peak - vf) / vf
			}
			return m, nil
		}
		if horizon >= maxHorizon {
			return nil, fmt.Errorf("%w within %g s", ErrNoCrossing, horizon)
		}
		horizon *= 4
	}
}

// crossing returns the first time the sampled waveform reaches level
// (linear interpolation), or -1.
func crossing(times, wave []float64, level float64) float64 {
	for k := 1; k < len(wave); k++ {
		if wave[k] >= level {
			frac := 1.0
			if dv := wave[k] - wave[k-1]; dv > 0 {
				frac = (level - wave[k-1]) / dv
			}
			return times[k-1] + frac*(times[k]-times[k-1])
		}
	}
	return -1
}
