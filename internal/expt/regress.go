package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Benchmark regression gate: compare a freshly generated BenchReport
// against a committed baseline artifact (BENCH_PR4.json and successors).
// The gate enforces the two halves of the incremental-scoring contract:
//
//  1. Decisions never drift: every quality field of every entry shared
//     with the baseline — seed/final delay, seed/final wirelength,
//     accepted count — must be bitwise identical. These fields are
//     deterministic functions of the configuration seed, so ANY drift
//     means an algorithm changed its decisions, which a performance
//     optimization must never do.
//  2. The optimization actually pays: for the gated algorithms, oracle
//     evaluations summed over shared entries must not exceed the given
//     fraction of the baseline's. A regression that quietly reverts to
//     full solves fails the gate even though all results still match.
//
// Entries are matched by (algorithm, size, trial), so a quick CI run with
// fewer trials gates against the matching prefix of a fuller baseline.

// EvalBudget is one algorithm's allowed oracle-evaluation fraction
// relative to the baseline.
type EvalBudget struct {
	Algorithm string
	// MaxFraction bounds current/baseline total evaluations over shared
	// entries (0.25 = current run may use at most a quarter of the
	// baseline's oracle work).
	MaxFraction float64
}

// LoadBenchReport reads a committed BENCH_*.json artifact.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("expt: reading baseline: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("expt: parsing baseline %s: %w", path, err)
	}
	if r.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("expt: baseline %s has schema %d, this binary writes %d",
			path, r.SchemaVersion, BenchSchemaVersion)
	}
	return &r, nil
}

// RegressGate compares cur against baseline and returns a violation
// message per breach (empty = gate passed). Budgets gate the listed
// algorithms' evaluation counts; all algorithms get the bitwise quality
// check regardless.
func RegressGate(cur, baseline *BenchReport, budgets []EvalBudget) []string {
	var violations []string

	type key struct {
		algo        string
		size, trial int
	}
	base := make(map[key]*BenchEntry, len(baseline.Entries))
	for i := range baseline.Entries {
		e := &baseline.Entries[i]
		base[key{e.Algorithm, e.Size, e.Trial}] = e
	}

	shared := 0
	curEvals := map[string]int64{}
	baseEvals := map[string]int64{}
	for i := range cur.Entries {
		e := &cur.Entries[i]
		b, ok := base[key{e.Algorithm, e.Size, e.Trial}]
		if !ok {
			continue
		}
		shared++
		curEvals[e.Algorithm] += int64(e.OracleEvaluations)
		baseEvals[e.Algorithm] += int64(b.OracleEvaluations)
		id := fmt.Sprintf("%s/size=%d/trial=%d", e.Algorithm, e.Size, e.Trial)
		check := func(field string, got, want float64) {
			//nontree:allow floatcmp the gate's whole point is bitwise equality with the committed baseline — any rounding drift IS the regression being detected
			if got != want {
				violations = append(violations,
					fmt.Sprintf("%s: %s drifted: %x (current) != %x (baseline)", id, field, got, want))
			}
		}
		check("seed_delay_s", e.SeedDelay, b.SeedDelay)
		check("final_delay_s", e.FinalDelay, b.FinalDelay)
		check("seed_wirelength_um", e.SeedCost, b.SeedCost)
		check("final_wirelength_um", e.FinalCost, b.FinalCost)
		if e.Accepted != b.Accepted {
			violations = append(violations,
				fmt.Sprintf("%s: accepted drifted: %d (current) != %d (baseline)", id, e.Accepted, b.Accepted))
		}
	}
	if shared == 0 {
		return []string{"no entries shared with the baseline — config mismatch?"}
	}

	for _, budget := range budgets {
		bTotal, cTotal := baseEvals[budget.Algorithm], curEvals[budget.Algorithm]
		if bTotal == 0 {
			violations = append(violations,
				fmt.Sprintf("%s: baseline has no evaluations to gate against", budget.Algorithm))
			continue
		}
		if limit := float64(bTotal) * budget.MaxFraction; float64(cTotal) > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %d oracle evaluations exceeds %.0f%% of baseline's %d (limit %.0f)",
				budget.Algorithm, cTotal, budget.MaxFraction*100, bTotal, limit))
		}
	}
	sort.Strings(violations)
	return violations
}

// DefaultEvalBudgets is the gate CI applies: the incremental sweep must
// keep LDRG and SLDRG under a quarter of the full-solve era's oracle work
// (the measured reduction is ~10x or better; 25% leaves slack for small
// corpus shifts without letting a full-solve regression through).
func DefaultEvalBudgets() []EvalBudget {
	return []EvalBudget{
		{Algorithm: "ldrg", MaxFraction: 0.25},
		{Algorithm: "sldrg", MaxFraction: 0.25},
	}
}
