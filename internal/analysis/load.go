package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allow allowIndex // lazily built, shared by every analyzer pass
}

// allowIdx returns the package's annotation index, building it on first
// use. Sharing one index across all analyzer passes is what lets the
// -staleallow sweep see which entries an entire run left unused.
func (p *Package) allowIdx() allowIndex {
	if p.allow == nil {
		p.allow = buildAllowIndex(p.Fset, p.Files)
	}
	return p.allow
}

// Loader resolves package patterns with `go list` and type-checks the
// matched packages. All packages share one FileSet and one source importer,
// so imported dependencies (including the standard library, compiled from
// source — the toolchain ships no export data) are checked once and cached.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	// extra overlays the importer with explicitly registered packages,
	// keyed by import path. The analysistest harness registers checked
	// testdata packages here so fixtures can import each other under
	// GOPATH-style paths the source importer cannot resolve.
	extra map[string]*types.Package
}

// NewLoader returns a Loader with a fresh FileSet and importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// RegisterPackage makes an already-checked package importable by
// subsequent type-checks under its path, shadowing the source importer.
func (l *Loader) RegisterPackage(p *types.Package) {
	if l.extra == nil {
		l.extra = map[string]*types.Package{}
	}
	l.extra[p.Path()] = p
}

// Import implements types.Importer: registered packages first, then the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.extra[path]; ok {
		return p, nil
	}
	return l.imp.Import(path)
}

// ImportFrom implements types.ImporterFrom so vendor-style resolution in
// the underlying source importer keeps working.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.extra[path]; ok {
		return p, nil
	}
	if from, ok := l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return l.imp.Import(path)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...", "nontree/internal/core") relative
// to dir (the process working directory when dir is empty) and returns the
// type-checked packages in dependency order: every package appears after
// the packages it imports (ties broken by `go list` order). Analyzers that
// export facts rely on this — a declaration's facts are recorded before
// any importer is analyzed. Only non-test GoFiles are analyzed: the
// contracts gate the algorithms themselves; tests are free to use wall
// clocks and ad-hoc comparisons.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	listed = topoSort(listed)
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		p, err := l.check(*lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// CheckDir parses and type-checks every non-test .go file directly inside
// dir as a single package with the given import path. The analysistest
// harness uses this to load testdata packages that `go list` cannot see.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			files = append(files, filepath.Base(m))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check(listedPackage{ImportPath: importPath, Dir: dir, GoFiles: files})
}

func (l *Loader) check(lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var softErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil && len(softErrs) > 0 {
		err = softErrs[0]
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// topoSort orders packages so imports precede importers: a depth-first
// post-order over the listed set, seeded in `go list` order so the result
// is deterministic. Imports outside the listed set are ignored — their
// facts cannot exist in this run anyway. `go list` has already rejected
// import cycles, so the recursion terminates.
func topoSort(listed []*listedPackage) []*listedPackage {
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	seen := make(map[string]bool, len(listed))
	out := make([]*listedPackage, 0, len(listed))
	var visit func(lp *listedPackage)
	visit = func(lp *listedPackage) {
		if seen[lp.ImportPath] {
			return
		}
		seen[lp.ImportPath] = true
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, lp)
	}
	for _, lp := range listed {
		visit(lp)
	}
	return out
}

// goList shells out to `go list -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Imports,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var out []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s", lp.Error.Err)
		}
		out = append(out, &lp)
	}
	return out, nil
}
