package spice

import (
	"math"
	"testing"
)

// buildRC returns a circuit with a step source, series resistor r, and
// capacitor c to ground, plus the observation node.
func buildRC(t *testing.T, r, c float64) (*Circuit, int) {
	t.Helper()
	ckt := NewCircuit()
	in := ckt.Node()
	out := ckt.Node()
	if err := ckt.AddVSource(in, Ground, Step(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddResistor(in, out, r); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddCapacitor(out, Ground, c); err != nil {
		t.Fatal(err)
	}
	return ckt, out
}

func TestRCStepResponse50PercentDelay(t *testing.T) {
	// Analytic: v(t) = 1 - exp(-t/RC); 50% crossing at RC·ln2.
	const r, c = 1000.0, 1e-12
	want := r * c * math.Ln2

	for _, m := range []Method{Trapezoidal, BackwardEuler} {
		ckt, out := buildRC(t, r, c)
		delays, err := MeasureDelays(ckt, []int{out}, MeasureOpts{
			ThresholdFraction: 0.5,
			StepsPerHorizon:   4000,
			Method:            m,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got := delays[0]
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("%v: 50%% delay = %.4g, want %.4g (rel err %.3f)", m, got, want, rel)
		}
	}
}

func TestRCStepResponseArbitraryThresholds(t *testing.T) {
	const r, c = 250.0, 4e-12
	ckt, out := buildRC(t, r, c)
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		want := -r * c * math.Log(1-frac)
		delays, err := MeasureDelays(ckt, []int{out}, MeasureOpts{
			ThresholdFraction: frac,
			StepsPerHorizon:   4000,
		})
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		if rel := math.Abs(delays[0]-want) / want; rel > 0.02 {
			t.Errorf("frac %v: delay %.4g, want %.4g", frac, delays[0], want)
		}
	}
}

func TestTwoStageRCLadderDelayExceedsSingle(t *testing.T) {
	// A 2-stage ladder's far node must be slower than the near node.
	ckt := NewCircuit()
	in, n1, n2 := ckt.Node(), ckt.Node(), ckt.Node()
	must(t, ckt.AddVSource(in, Ground, Step(0, 1, 0)))
	must(t, ckt.AddResistor(in, n1, 1000))
	must(t, ckt.AddCapacitor(n1, Ground, 1e-12))
	must(t, ckt.AddResistor(n1, n2, 1000))
	must(t, ckt.AddCapacitor(n2, Ground, 1e-12))

	delays, err := MeasureDelays(ckt, []int{n1, n2}, DefaultMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if delays[0] >= delays[1] {
		t.Errorf("near node delay %.4g should be below far node %.4g", delays[0], delays[1])
	}
}

func TestTransientMatchesAnalyticWaveform(t *testing.T) {
	const r, c = 1000.0, 1e-12
	ckt, out := buildRC(t, r, c)
	tau := r * c
	res, err := Transient(ckt, TranOpts{Step: tau / 500, Stop: 5 * tau, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range res.Times {
		want := 1 - math.Exp(-tm/tau)
		got := res.V[out][i]
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("at t=%.3g: v=%.5f, want %.5f", tm, got, want)
		}
	}
}

func TestFinalValueSettlesToVdd(t *testing.T) {
	ckt, out := buildRC(t, 123, 4.5e-13)
	v, err := FinalValue(ckt, math.MaxFloat64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[out]-1) > 1e-12 {
		t.Errorf("final value %.6g, want 1", v[out])
	}
}

func TestOperatingPointVoltageDivider(t *testing.T) {
	ckt := NewCircuit()
	in, mid := ckt.Node(), ckt.Node()
	must(t, ckt.AddVSource(in, Ground, DC(2)))
	must(t, ckt.AddResistor(in, mid, 1000))
	must(t, ckt.AddResistor(mid, Ground, 3000))
	v, err := OperatingPoint(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[mid]-1.5) > 1e-12 {
		t.Errorf("divider voltage %.6g, want 1.5", v[mid])
	}
}

func TestRLCSeriesReachesFinalValue(t *testing.T) {
	// Series RLC low-pass: the output must settle to the source value.
	ckt := NewCircuit()
	in, mid, out := ckt.Node(), ckt.Node(), ckt.Node()
	must(t, ckt.AddVSource(in, Ground, Step(0, 1, 0)))
	must(t, ckt.AddResistor(in, mid, 100))
	must(t, ckt.AddInductor(mid, out, 1e-9))
	must(t, ckt.AddCapacitor(out, Ground, 1e-12))

	tau := 100 * 1e-12
	res, err := Transient(ckt, TranOpts{Step: tau / 200, Stop: 40 * tau, Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Final[out]-1) > 0.01 {
		t.Errorf("RLC settles to %.4f, want 1", res.Final[out])
	}
}

func TestRLCDelayCloseToRCForSmallInductance(t *testing.T) {
	// With negligible inductance the RLC delay must match plain RC.
	mk := func(withL bool) float64 {
		ckt := NewCircuit()
		in, out := ckt.Node(), ckt.Node()
		must(t, ckt.AddVSource(in, Ground, Step(0, 1, 0)))
		if withL {
			mid := ckt.Node()
			must(t, ckt.AddResistor(in, mid, 1000))
			must(t, ckt.AddInductor(mid, out, 1e-15)) // ~fH: negligible
		} else {
			must(t, ckt.AddResistor(in, out, 1000))
		}
		must(t, ckt.AddCapacitor(out, Ground, 1e-12))
		d, err := MeasureDelays(ckt, []int{out}, DefaultMeasureOpts())
		if err != nil {
			t.Fatal(err)
		}
		return d[0]
	}
	rc, rlc := mk(false), mk(true)
	if rel := math.Abs(rlc-rc) / rc; rel > 0.01 {
		t.Errorf("RLC delay %.4g deviates from RC %.4g by %.2f%%", rlc, rc, rel*100)
	}
}

func TestISourceIntoResistor(t *testing.T) {
	// 1 mA into 1 kΩ to ground = 1 V.
	ckt := NewCircuit()
	n := ckt.Node()
	must(t, ckt.AddResistor(n, Ground, 1000))
	must(t, ckt.AddISource(Ground, n, DC(1e-3)))
	v, err := OperatingPoint(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[n]-1) > 1e-12 {
		t.Errorf("node voltage %.6g, want 1", v[n])
	}
}

func TestFloatingNodeIsSingular(t *testing.T) {
	ckt := NewCircuit()
	a, b := ckt.Node(), ckt.Node()
	must(t, ckt.AddVSource(a, Ground, DC(1)))
	// b connects only through a capacitor: no DC path → singular G.
	must(t, ckt.AddCapacitor(a, b, 1e-12))
	if _, err := OperatingPoint(ckt); err == nil {
		t.Error("expected singular matrix error for floating node")
	}
}

func TestElementValidation(t *testing.T) {
	ckt := NewCircuit()
	n := ckt.Node()
	cases := []struct {
		name string
		err  error
	}{
		{"negative resistor", ckt.AddResistor(n, Ground, -5)},
		{"zero capacitor", ckt.AddCapacitor(n, Ground, 0)},
		{"same-node resistor", ckt.AddResistor(n, n, 100)},
		{"bad node", ckt.AddResistor(n, 99, 100)},
		{"nil waveform", ckt.AddVSource(n, Ground, nil)},
		{"zero inductor", ckt.AddInductor(n, Ground, 0)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEmptyCircuitRejected(t *testing.T) {
	ckt := NewCircuit()
	if _, err := OperatingPoint(ckt); err == nil {
		t.Error("expected error for circuit with only ground")
	}
}

func TestBadTranOpts(t *testing.T) {
	ckt, out := buildRC(t, 100, 1e-12)
	_ = out
	for _, opts := range []TranOpts{
		{Step: 0, Stop: 1},
		{Step: -1, Stop: 1},
		{Step: 2, Stop: 1},
	} {
		if _, err := Transient(ckt, opts); err == nil {
			t.Errorf("opts %+v: expected error", opts)
		}
	}
}

func TestTrapezoidalMoreAccurateThanBackwardEuler(t *testing.T) {
	// At a coarse step, trapezoidal should track the analytic RC waveform
	// better than backward Euler (2nd vs 1st order).
	const r, c = 1000.0, 1e-12
	tau := r * c
	errOf := func(m Method) float64 {
		ckt, out := buildRC(t, r, c)
		res, err := Transient(ckt, TranOpts{Step: tau / 10, Stop: 3 * tau, Method: m, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i, tm := range res.Times {
			want := 1 - math.Exp(-tm/tau)
			if e := math.Abs(res.V[out][i] - want); e > worst {
				worst = e
			}
		}
		return worst
	}
	if errTrap, errBE := errOf(Trapezoidal), errOf(BackwardEuler); errTrap >= errBE {
		t.Errorf("trapezoidal error %.4g not below backward-Euler %.4g", errTrap, errBE)
	}
}

func TestEarlyExitMatchesFullRun(t *testing.T) {
	// Threshold crossing times must be identical whether or not the
	// simulation exits early after the last crossing.
	const r, c = 1000.0, 1e-12
	ckt, out := buildRC(t, r, c)
	tau := r * c
	opts := TranOpts{Step: tau / 1000, Stop: 10 * tau}

	early, err := TransientThreshold(ckt, opts, []int{out}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	optsRec := opts
	optsRec.Record = true
	full, err := TransientThreshold(ckt, optsRec, []int{out}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(early.Crossings[0]-full.Crossings[0]) > 1e-18 {
		t.Errorf("early exit crossing %.6g != full run %.6g", early.Crossings[0], full.Crossings[0])
	}
	if early.Steps >= full.Steps {
		t.Errorf("early exit ran %d steps, full run %d; expected fewer", early.Steps, full.Steps)
	}
}

func TestMaxDelay(t *testing.T) {
	if got := MaxDelay([]float64{1, 5, 3}); got != 5 {
		t.Errorf("MaxDelay = %v, want 5", got)
	}
	if got := MaxDelay(nil); got != 0 {
		t.Errorf("MaxDelay(nil) = %v, want 0", got)
	}
}

func TestRampWaveform(t *testing.T) {
	w := Ramp(0, 2, 1, 3)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2},
	}
	for _, c := range cases {
		if got := w(c.t); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Ramp(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
