package detordering_test

import (
	"testing"

	"nontree/internal/analysis/analysistest"
	"nontree/internal/analysis/detordering"
)

func TestDetordering(t *testing.T) {
	analysistest.Run(t, detordering.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for _, path := range []string{
		"nontree/internal/core",
		"nontree/internal/ert",
		"nontree/internal/steiner",
		"nontree/internal/pdtree",
		"nontree/internal/graph",
		"nontree/internal/expt",
	} {
		if !detordering.Analyzer.InScope(path) {
			t.Errorf("expected %s in scope", path)
		}
	}
	for _, path := range []string{"nontree/internal/spice", "nontree/cmd/nontree"} {
		if detordering.Analyzer.InScope(path) {
			t.Errorf("expected %s out of scope", path)
		}
	}
}
