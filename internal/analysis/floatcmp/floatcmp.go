// Package floatcmp forbids == and != on floating-point delay and score
// values in the algorithm packages. Exact float equality is where parallel
// reduction order leaks into results: two candidates whose scores differ
// only in the last ulp compare differently depending on summation order,
// so a tie broken by == can pick different winners for different Workers
// values. Comparisons must go through the epsilon helpers in
// nontree/internal/fpcmp (or an ordering comparison, which the analyzer
// does not restrict).
//
// Two cases are accepted without annotation:
//
//   - comparisons where both operands are compile-time constants;
//   - comparisons against math.Inf(...) — infinities are exact sentinels
//     with no rounding neighborhood.
//
// Everything else — including comparisons against the literal 0, which are
// usually unset-field sentinels and deserve documentation — needs a
// //nontree:allow floatcmp <justification> annotation.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"nontree/internal/analysis"
)

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= on float delay/score values outside the approved " +
		"epsilon-comparison helpers (nontree/internal/fpcmp)",
	Scope: []string{
		"internal/core",
		"internal/ert",
		"internal/steiner",
		"internal/pdtree",
		"internal/elmore",
		"internal/expt",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !hasFloat(pass.TypeOf(be.X)) && !hasFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if isConst(pass, be.X) && isConst(pass, be.Y) {
				return true
			}
			if isInfCall(pass, be.X) || isInfCall(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(),
				"%s on floating-point values: exact float equality makes tie-breaking "+
					"depend on summation order and voids the Workers determinism "+
					"guarantee; use nontree/internal/fpcmp (or annotate "+
					"//nontree:allow floatcmp <why> for an exact sentinel)",
				be.Op)
			return true
		})
	}
	return nil
}

// hasFloat reports whether t is, or structurally contains, a float type.
func hasFloat(t types.Type) bool {
	return hasFloatDepth(t, 0)
}

func hasFloatDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return hasFloatDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloatDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

func isInfCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.IsPkgCall(pass.Info, call, "math", "Inf")
}
