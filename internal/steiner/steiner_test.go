package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
)

func TestCrossNetGetsCenterSteinerPoint(t *testing.T) {
	// Four pins at the compass points: the optimal Steiner tree uses the
	// center, saving 1/3 of the MST cost.
	pins := []geom.Point{
		{X: 500, Y: 0}, {X: 0, Y: 500}, {X: 1000, Y: 500}, {X: 500, Y: 1000},
	}
	topo, err := Tree(pins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !topo.IsTree() {
		t.Error("result must be a tree")
	}
	mstCost := mst.Cost(pins)
	if topo.Cost() >= mstCost {
		t.Errorf("Steiner cost %.0f not below MST %.0f", topo.Cost(), mstCost)
	}
	// The cross's optimum is 2000 (two spans through the center).
	if topo.Cost() != 2000 {
		t.Errorf("cross Steiner cost = %.0f, want 2000", topo.Cost())
	}
	if topo.NumNodes() != 5 || !topo.IsSteiner(4) {
		t.Errorf("expected exactly one Steiner point, got %d nodes", topo.NumNodes())
	}
	if !topo.Point(4).Eq(geom.Pt(500, 500)) {
		t.Errorf("Steiner point at %v, want (500,500)", topo.Point(4))
	}
}

func TestLShapedNetNeedsNoSteiner(t *testing.T) {
	// Collinear-ish pins where the MST is already optimal.
	pins := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}
	topo, err := Tree(pins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 3 {
		t.Errorf("collinear net gained Steiner points: %d nodes", topo.NumNodes())
	}
	if topo.Cost() != 200 {
		t.Errorf("cost = %v", topo.Cost())
	}
}

func TestSteinerNeverWorseThanMSTProperty(t *testing.T) {
	f := func(seed int64) bool {
		gen := netlist.NewGenerator(seed)
		net, err := gen.Generate(8)
		if err != nil {
			return false
		}
		topo, err := Tree(net.Pins, Options{})
		if err != nil {
			return false
		}
		return topo.IsTree() && topo.Cost() <= mst.Cost(net.Pins)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSteinerRatioBound(t *testing.T) {
	// Rectilinear Steiner ratio: SMT ≥ 2/3 · MST. Any heuristic tree must
	// respect the lower bound (it cannot beat the optimum).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		gen := netlist.NewGenerator(rng.Int63())
		net, err := gen.Generate(4 + rng.Intn(12))
		if err != nil {
			t.Fatal(err)
		}
		topo, err := Tree(net.Pins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if topo.Cost() < (2.0/3.0)*mst.Cost(net.Pins)-1e-9 {
			t.Fatalf("cost %.0f below the Steiner-ratio bound for MST %.0f",
				topo.Cost(), mst.Cost(net.Pins))
		}
	}
}

func TestSpansAllPins(t *testing.T) {
	gen := netlist.NewGenerator(3)
	net, err := gen.Generate(15)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := Tree(net.Pins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() {
		t.Fatal("tree must span all pins")
	}
	if topo.NumPins() != 15 {
		t.Errorf("NumPins = %d", topo.NumPins())
	}
	for i, p := range net.Pins {
		if !topo.Point(i).Eq(p) {
			t.Errorf("pin %d relocated", i)
		}
	}
}

func TestNoUselessSteinerPoints(t *testing.T) {
	// After pruning and compaction every Steiner node must branch (deg ≥ 3).
	gen := netlist.NewGenerator(11)
	for trial := 0; trial < 10; trial++ {
		net, err := gen.Generate(10)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := Tree(net.Pins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for n := topo.NumPins(); n < topo.NumNodes(); n++ {
			if topo.Degree(n) < 3 {
				t.Fatalf("Steiner node %d has degree %d", n, topo.Degree(n))
			}
		}
	}
}

func TestMaxSteinerPointsRespected(t *testing.T) {
	gen := netlist.NewGenerator(13)
	net, err := gen.Generate(12)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := Tree(net.Pins, Options{MaxSteinerPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := topo.NumNodes() - topo.NumPins(); s > 1 {
		t.Errorf("%d Steiner points with MaxSteinerPoints=1", s)
	}
}

func TestRegenerateCandidatesStillValid(t *testing.T) {
	gen := netlist.NewGenerator(17)
	net, err := gen.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := Tree(net.Pins, Options{RegenerateCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	if !topo.IsTree() || topo.Cost() > mst.Cost(net.Pins)+1e-9 {
		t.Error("regenerated-candidate tree invalid")
	}
}

func TestTwoPinNet(t *testing.T) {
	topo, err := Tree([]geom.Point{{X: 0, Y: 0}, {X: 30, Y: 40}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Cost() != 70 || topo.NumNodes() != 2 {
		t.Errorf("two-pin: cost %v, %d nodes", topo.Cost(), topo.NumNodes())
	}
}

func TestTooFewPins(t *testing.T) {
	if _, err := Tree([]geom.Point{{X: 1, Y: 1}}, Options{}); err != ErrTooFewPins {
		t.Errorf("got %v", err)
	}
}

func TestPruneRemovesLeafSteiner(t *testing.T) {
	pins := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}
	topo := graph.NewTopologyWithSteiner(pins, []geom.Point{{X: 50, Y: 50}})
	if err := topo.AddEdge(graph.Edge{U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddEdge(graph.Edge{U: 0, V: 2}); err != nil {
		t.Fatal(err)
	}
	Prune(topo)
	if topo.Degree(2) != 0 {
		t.Error("leaf Steiner node must be pruned")
	}
	if !topo.HasEdge(graph.Edge{U: 0, V: 1}) {
		t.Error("pin edge must survive")
	}
}

func TestPruneShortsDegree2Steiner(t *testing.T) {
	pins := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}
	topo := graph.NewTopologyWithSteiner(pins, []geom.Point{{X: 100, Y: 0}})
	if err := topo.AddEdge(graph.Edge{U: 0, V: 2}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddEdge(graph.Edge{U: 2, V: 1}); err != nil {
		t.Fatal(err)
	}
	costBefore := topo.Cost()
	Prune(topo)
	if topo.Degree(2) != 0 {
		t.Error("degree-2 Steiner node must be shorted")
	}
	if !topo.HasEdge(graph.Edge{U: 0, V: 1}) {
		t.Error("bridge edge must exist")
	}
	if topo.Cost() > costBefore+1e-9 {
		t.Errorf("pruning increased cost %v → %v", costBefore, topo.Cost())
	}
}

func TestDeterministic(t *testing.T) {
	gen1 := netlist.NewGenerator(23)
	net1, _ := gen1.Generate(10)
	gen2 := netlist.NewGenerator(23)
	net2, _ := gen2.Generate(10)
	t1, err := Tree(net1.Pins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Tree(net2.Pins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Cost() != t2.Cost() || t1.NumNodes() != t2.NumNodes() {
		t.Error("Steiner construction is not deterministic")
	}
}
