package expt

import (
	"fmt"
	"runtime"
	"sync"

	"nontree/internal/core"
	"nontree/internal/ert"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/stats"
	"nontree/internal/steiner"
)

// trialOutcome carries one trial's measured stages: the baseline and the
// cumulative result after each accepted edge.
type trialOutcome struct {
	baseDelay, baseCost float64
	// stageDelay[k] / stageCost[k] are measured after k+1 accepted edges.
	stageDelay, stageCost []float64
}

// ratioAt returns the (delay, cost) ratios of stage k relative to stage
// k−1 (with stage −1 the baseline). Trials that accepted fewer than k+1
// edges contribute a neutral ratio of 1, matching the paper's "All Cases"
// accounting (all 50 instances enter every row).
func (o *trialOutcome) ratioAt(k int) stats.Sample {
	prevD, prevC := o.baseDelay, o.baseCost
	if k > 0 {
		if k-1 >= len(o.stageDelay) {
			return stats.Sample{DelayRatio: 1, CostRatio: 1}
		}
		prevD, prevC = o.stageDelay[k-1], o.stageCost[k-1]
	}
	if k >= len(o.stageDelay) {
		return stats.Sample{DelayRatio: 1, CostRatio: 1}
	}
	return stats.Sample{
		DelayRatio: o.stageDelay[k] / prevD,
		CostRatio:  o.stageCost[k] / prevC,
	}
}

// finalRatio returns the final topology's ratios against the baseline.
func (o *trialOutcome) finalRatio() stats.Sample {
	if len(o.stageDelay) == 0 {
		return stats.Sample{DelayRatio: 1, CostRatio: 1}
	}
	last := len(o.stageDelay) - 1
	return stats.Sample{
		DelayRatio: o.stageDelay[last] / o.baseDelay,
		CostRatio:  o.stageCost[last] / o.baseCost,
	}
}

// runTrials executes fn for every (size, trial) pair in parallel and
// collects outcomes indexed [sizeIdx][trial]. fn must be safe for
// concurrent use; all harness trial bodies are (they share only the
// immutable Config).
func runTrials(cfg *Config, fn func(size, trial int) (*trialOutcome, error)) ([][]*trialOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([][]*trialOutcome, len(cfg.Sizes))
	for i := range out {
		out[i] = make([]*trialOutcome, cfg.Trials)
	}

	type job struct{ sizeIdx, trial int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	//nontree:allow nondetsource sizes the trial pool only; each (size, trial) outcome lands in its own slot, so scheduling cannot change results
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				o, err := fn(cfg.Sizes[j.sizeIdx], j.trial)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("expt: size %d trial %d: %w", cfg.Sizes[j.sizeIdx], j.trial, err)
				}
				out[j.sizeIdx][j.trial] = o
				mu.Unlock()
			}
		}()
	}
	for si := range cfg.Sizes {
		for tr := 0; tr < cfg.Trials; tr++ {
			jobs <- job{si, tr}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// measureStages measures the baseline and the cumulative topology after
// each accepted edge.
func (c *Config) measureStages(baseline *graph.Topology, added []graph.Edge) (*trialOutcome, error) {
	o := &trialOutcome{}
	var err error
	o.baseDelay, o.baseCost, err = c.Measure(baseline)
	if err != nil {
		return nil, fmt.Errorf("measuring baseline: %w", err)
	}
	cum := baseline.Clone()
	for _, e := range added {
		if err := cum.AddEdge(e); err != nil {
			return nil, fmt.Errorf("replaying edge %v: %w", e, err)
		}
		d, cost, err := c.Measure(cum)
		if err != nil {
			return nil, fmt.Errorf("measuring stage: %w", err)
		}
		o.stageDelay = append(o.stageDelay, d)
		o.stageCost = append(o.stageCost, cost)
	}
	return o, nil
}

// iterationSections builds the "Iteration One" / "Iteration Two" sections
// used by Tables 2 and 4.
func iterationSections(cfg *Config, outcomes [][]*trialOutcome) []Section {
	sections := make([]Section, 0, 2)
	for iter := 0; iter < 2; iter++ {
		name := [2]string{"Iteration One", "Iteration Two"}[iter]
		sec := Section{Name: name}
		for si, size := range cfg.Sizes {
			samples := make([]stats.Sample, 0, cfg.Trials)
			for _, o := range outcomes[si] {
				samples = append(samples, o.ratioAt(iter))
			}
			sec.Rows = append(sec.Rows, Row{Size: size, Summary: stats.Summarize(samples)})
		}
		sections = append(sections, sec)
	}
	return sections
}

// finalSection builds a single-section table of final-vs-baseline ratios.
func finalSection(cfg *Config, outcomes [][]*trialOutcome, name string) Section {
	sec := Section{Name: name}
	for si, size := range cfg.Sizes {
		samples := make([]stats.Sample, 0, cfg.Trials)
		for _, o := range outcomes[si] {
			samples = append(samples, o.finalRatio())
		}
		sec.Rows = append(sec.Rows, Row{Size: size, Summary: stats.Summarize(samples)})
	}
	return sec
}

// Table2 reproduces the paper's Table 2: LDRG from an MST seed, statistics
// of the first and second greedy iterations, normalized to MST.
func Table2(cfg Config) (*Table, error) {
	outcomes, err := runTrials(&cfg, func(size, trial int) (*trialOutcome, error) {
		net, err := cfg.netFor(size, trial)
		if err != nil {
			return nil, err
		}
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		res, err := core.LDRG(seed, cfg.ldrgOptions(2))
		if err != nil {
			return nil, err
		}
		return cfg.measureStages(seed, res.AddedEdges)
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:       "table2",
		Title:    "LDRG Algorithm Statistics",
		Baseline: "MST",
		Sections: iterationSections(&cfg, outcomes),
	}, nil
}

// Table3 reproduces Table 3: SLDRG over an Iterated 1-Steiner seed,
// normalized to the Steiner tree values.
func Table3(cfg Config) (*Table, error) {
	outcomes, err := runTrials(&cfg, func(size, trial int) (*trialOutcome, error) {
		net, err := cfg.netFor(size, trial)
		if err != nil {
			return nil, err
		}
		res, err := core.SLDRG(net.Pins, steiner.Options{}, cfg.ldrgOptions(0))
		if err != nil {
			return nil, err
		}
		return cfg.measureStages(res.Seed, res.AddedEdges)
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:       "table3",
		Title:    "SLDRG Algorithm Statistics",
		Baseline: "Steiner tree",
		Sections: []Section{finalSection(&cfg, outcomes, "")},
	}, nil
}

// Table4 reproduces Table 4: heuristic H1 (connect the source to the
// worst-delay sink, keep if improved), iterations one and two, vs MST.
func Table4(cfg Config) (*Table, error) {
	outcomes, err := runTrials(&cfg, func(size, trial int) (*trialOutcome, error) {
		net, err := cfg.netFor(size, trial)
		if err != nil {
			return nil, err
		}
		seed, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		res, err := core.H1(seed, cfg.ldrgOptions(2))
		if err != nil {
			return nil, err
		}
		return cfg.measureStages(seed, res.AddedEdges)
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:       "table4",
		Title:    "H1 Heuristic Statistics",
		Baseline: "MST",
		Sections: iterationSections(&cfg, outcomes),
	}, nil
}

// Table5 reproduces Table 5: the simulator-free heuristics H2 and H3
// (single Elmore-guided addition each) vs MST.
func Table5(cfg Config) (*Table, error) {
	run := func(h func(size, trial int) (*trialOutcome, error)) ([][]*trialOutcome, error) {
		return runTrials(&cfg, h)
	}
	mkTrial := func(useH3 bool) func(size, trial int) (*trialOutcome, error) {
		return func(size, trial int) (*trialOutcome, error) {
			net, err := cfg.netFor(size, trial)
			if err != nil {
				return nil, err
			}
			seed, err := mst.Prim(net.Pins)
			if err != nil {
				return nil, err
			}
			opts := cfg.ldrgOptions(1)
			var res *core.Result
			if useH3 {
				res, err = core.H3(seed, cfg.Params, opts)
			} else {
				res, err = core.H2(seed, cfg.Params, opts)
			}
			if err != nil {
				return nil, err
			}
			return cfg.measureStages(seed, res.AddedEdges)
		}
	}
	h2, err := run(mkTrial(false))
	if err != nil {
		return nil, err
	}
	h3, err := run(mkTrial(true))
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:       "table5",
		Title:    "H2 and H3 Heuristic Statistics",
		Baseline: "MST",
		Sections: []Section{
			finalSection(&cfg, h2, "H2"),
			finalSection(&cfg, h3, "H3"),
		},
	}, nil
}

// Table6 reproduces Table 6: the Elmore Routing Tree baseline vs MST.
func Table6(cfg Config) (*Table, error) {
	outcomes, err := runTrials(&cfg, func(size, trial int) (*trialOutcome, error) {
		net, err := cfg.netFor(size, trial)
		if err != nil {
			return nil, err
		}
		baseline, err := mst.Prim(net.Pins)
		if err != nil {
			return nil, err
		}
		tree, err := ert.Build(net.Pins, cfg.Params)
		if err != nil {
			return nil, err
		}
		o := &trialOutcome{}
		o.baseDelay, o.baseCost, err = cfg.Measure(baseline)
		if err != nil {
			return nil, err
		}
		d, c, err := cfg.Measure(tree)
		if err != nil {
			return nil, err
		}
		o.stageDelay = []float64{d}
		o.stageCost = []float64{c}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:       "table6",
		Title:    "Elmore Routing Tree Statistics",
		Baseline: "MST",
		Sections: []Section{finalSection(&cfg, outcomes, "")},
	}, nil
}

// Table7 reproduces Table 7: LDRG seeded with an ERT instead of an MST,
// normalized to the ERT — demonstrating that non-tree routings improve even
// on near-optimal trees.
func Table7(cfg Config) (*Table, error) {
	outcomes, err := runTrials(&cfg, func(size, trial int) (*trialOutcome, error) {
		net, err := cfg.netFor(size, trial)
		if err != nil {
			return nil, err
		}
		seed, err := ert.Build(net.Pins, cfg.Params)
		if err != nil {
			return nil, err
		}
		res, err := core.LDRG(seed, cfg.ldrgOptions(0))
		if err != nil {
			return nil, err
		}
		return cfg.measureStages(seed, res.AddedEdges)
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:       "table7",
		Title:    "ERT-Based LDRG Algorithm Statistics",
		Baseline: "ERT",
		Sections: []Section{finalSection(&cfg, outcomes, "")},
	}, nil
}

// AllTables runs every table reproduction in paper order.
func AllTables(cfg Config) ([]*Table, error) {
	builders := []func(Config) (*Table, error){
		Table2, Table3, Table4, Table5, Table6, Table7,
	}
	tables := make([]*Table, 0, len(builders))
	for _, b := range builders {
		t, err := b(cfg)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
