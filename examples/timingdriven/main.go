// Timing-driven iterative layout (the workflow that motivates the paper's
// Section 5.1): a small combinational design is routed net by net, static
// timing analysis identifies the critical path, and the one net that limits
// the clock is re-routed with criticality-weighted non-tree routing
// (CSORG-LDRG). The example prints the design's worst slack before and
// after — interconnect optimization translated directly into clock period.
//
// Design under test (3 gates, 4 nets, ~10 pins each):
//
//	PI ─ net0 ─▶ G1 ─ net1 ─▶ G2 ─ net2 ─▶ G3 ─ net3 ─▶ PO
//	               (each net also has fan-out sinks elsewhere)
package main

import (
	"fmt"
	"log"

	"nontree"
	"nontree/sta"
)

func main() {
	log.SetFlags(0)

	params := nontree.DefaultParams()
	const numNets = 4
	const pinsPerNet = 10

	// Generate and route every net classically (MST).
	nets := make([]*nontree.Net, numNets)
	topos := make([]*nontree.Topology, numNets)
	for i := range nets {
		var err error
		nets[i], err = nontree.GenerateNet(int64(100+i), pinsPerNet)
		if err != nil {
			log.Fatal(err)
		}
		topos[i], err = nontree.MST(nets[i])
		if err != nil {
			log.Fatal(err)
		}
	}

	design := &sta.Design{
		NumNets:   numNets,
		SinkCount: []int{pinsPerNet - 1, pinsPerNet - 1, pinsPerNet - 1, pinsPerNet - 1},
		NetDelay:  make([][]float64, numNets),
		Gates: []sta.Gate{
			{Name: "G1", Delay: 0.2e-9, FanIn: []sta.PinRef{{Net: 0, Sink: 0}}, Drives: 1},
			{Name: "G2", Delay: 0.2e-9, FanIn: []sta.PinRef{{Net: 1, Sink: 3}}, Drives: 2},
			{Name: "G3", Delay: 0.2e-9, FanIn: []sta.PinRef{{Net: 2, Sink: 5}}, Drives: 3},
		},
		PrimaryInputs:  []int{0},
		PrimaryOutputs: []sta.PinRef{{Net: 3, Sink: 2}, {Net: 3, Sink: 7}},
	}

	measure := func() *sta.Timing {
		for i, topo := range topos {
			rep, err := nontree.MeasureDelay(topo, params)
			if err != nil {
				log.Fatal(err)
			}
			design.NetDelay[i] = rep.PerSink
		}
		timing, err := design.Analyze(12e-9)
		if err != nil {
			log.Fatal(err)
		}
		return timing
	}

	before := measure()
	fmt.Printf("all nets MST-routed:   min clock %.3f ns, worst slack %+.3f ns\n",
		before.WorstArrival*1e9, before.WorstSlack()*1e9)
	if path, err := design.CriticalPath(before); err == nil {
		fmt.Print("critical path: PI")
		for _, el := range path {
			if el.Gate >= 0 {
				fmt.Printf(" → %s", design.Gates[el.Gate].Name)
			}
			fmt.Printf(" → net%d.sink%d", el.Net, el.Sink+1)
		}
		fmt.Println(" → PO")
	}

	// Iterative timing-driven layout: repeatedly let STA point at the net
	// holding the critical-path pin, convert slacks to the paper's α
	// weights, and re-route that one net with criticality-weighted
	// non-tree routing. Stop when an iteration no longer helps.
	rerouted := map[int]bool{}
	timing := before
	for iter := 1; iter <= numNets; iter++ {
		criticalNet, criticalPin := sta.MostCriticalNet(timing)
		if rerouted[criticalNet] {
			break // this net already carries its extra wires
		}
		rerouted[criticalNet] = true

		alphas := sta.Criticalities(timing, criticalNet, false)
		costBefore := topos[criticalNet].Cost()
		res, err := nontree.CriticalSinkLDRG(topos[criticalNet], alphas, nontree.Config{})
		if err != nil {
			log.Fatal(err)
		}
		topos[criticalNet] = res.Topology

		next := measure()
		fmt.Printf("iteration %d: critical pin net %d/sink %d → CSORG re-route "+
			"(+%d wires, +%.0f µm) → min clock %.3f ns\n",
			iter, criticalNet, criticalPin.Sink+1,
			len(res.AddedEdges), res.Topology.Cost()-costBefore,
			next.WorstArrival*1e9)
		if next.WorstArrival >= timing.WorstArrival {
			timing = next
			break
		}
		timing = next
	}

	fmt.Printf("\nfinal:                 min clock %.3f ns, worst slack %+.3f ns\n",
		timing.WorstArrival*1e9, timing.WorstSlack()*1e9)
	fmt.Printf("clock period improved %.3f ns by adding wires to critical nets —\n",
		(before.WorstArrival-timing.WorstArrival)*1e9)
	fmt.Println("the Section 5.1 workflow: placement → STA → critical-sink non-tree routing, iterated.")
}
