package main

import (
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs realMain in a goroutine with an ephemeral port and waits
// for the ready file, returning the listen address and the exit channel.
// The test registers its own SIGTERM handler first so the self-signal used
// to stop the daemon can never hit the default action (killing the test
// binary) if it lands before realMain installs its handler.
func startDaemon(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	hold := make(chan os.Signal, 1)
	signal.Notify(hold, syscall.SIGTERM)
	t.Cleanup(func() { signal.Stop(hold) })

	ready := filepath.Join(t.TempDir(), "ready")
	args := append([]string{"-addr", "127.0.0.1:0", "-ready-file", ready}, extra...)
	errc := make(chan error, 1)
	go func() { errc <- realMain(args) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		raw, err := os.ReadFile(ready)
		if err == nil {
			addr := strings.TrimSuffix(string(raw), "\n")
			if addr == string(raw) {
				t.Fatalf("ready file %q is not newline-terminated", raw)
			}
			if _, _, err := net.SplitHostPort(addr); err != nil {
				t.Fatalf("ready file holds %q, not host:port: %v", addr, err)
			}
			return addr, errc
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited before becoming ready: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its ready file")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeReadyFileAndSigtermDrain is the daemon lifecycle end to end:
// ephemeral port, ready-file discovery, live /healthz, clean exit on
// SIGTERM.
func TestServeReadyFileAndSigtermDrain(t *testing.T) {
	addr, errc := startDaemon(t)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d before drain, want 200", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("SIGTERM drain exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestServeFlagErrors covers the startup rejection paths.
func TestServeFlagErrors(t *testing.T) {
	// Occupy a port so the bind failure is deterministic.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional", []string{"-addr", "127.0.0.1:0", "extra"}, "unexpected arguments"},
		{"bad-addr", []string{"-addr", "not an address"}, "listen"},
		{"port-taken", []string{"-addr", ln.Addr().String()}, "address already in use"},
		{"ready-file-unwritable", []string{"-addr", "127.0.0.1:0", "-ready-file", filepath.Join(t.TempDir(), "no", "such", "dir", "ready")}, "writing ready file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := realMain(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
