package spice

import (
	"math"
	"testing"
)

func TestEdgeMetricsSingleRC(t *testing.T) {
	// Analytic single-pole: t50 = ln2·τ, rise 10→90 = ln9·τ, no overshoot.
	const r, c = 1000.0, 1e-12
	tau := r * c
	ckt, out := buildRC(t, r, c)
	m, err := MeasureEdge(ckt, out, DefaultMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Delay50-math.Ln2*tau) / (math.Ln2 * tau); rel > 0.01 {
		t.Errorf("t50 = %.4g, want %.4g", m.Delay50, math.Ln2*tau)
	}
	wantRise := math.Log(9) * tau
	if rel := math.Abs(m.Rise1090-wantRise) / wantRise; rel > 0.01 {
		t.Errorf("rise = %.4g, want %.4g", m.Rise1090, wantRise)
	}
	if m.OvershootPercent > 0.2 {
		t.Errorf("RC response cannot overshoot: %.2f%%", m.OvershootPercent)
	}
	if math.Abs(m.Final-1) > 1e-9 {
		t.Errorf("final = %v", m.Final)
	}
}

func TestEdgeMetricsUnderdampedRLCOvershoots(t *testing.T) {
	ckt := NewCircuit()
	in, mid, out := ckt.Node(), ckt.Node(), ckt.Node()
	must(t, ckt.AddVSource(in, Ground, Step(0, 1, 0)))
	must(t, ckt.AddResistor(in, mid, 10))
	must(t, ckt.AddInductor(mid, out, 1e-9))
	must(t, ckt.AddCapacitor(out, Ground, 1e-12))
	// ζ = (R/2)·sqrt(C/L) ≈ 0.158 → overshoot exp(−πζ/√(1−ζ²)) ≈ 60%.
	// The ringing period is 2π√(LC) ≈ 0.2 ns; size the window and step so
	// the first peak is resolved by hundreds of samples.
	opts := DefaultMeasureOpts()
	opts.InitialHorizon = 2e-9
	opts.StepsPerHorizon = 8000
	m, err := MeasureEdge(ckt, out, opts)
	if err != nil {
		t.Fatal(err)
	}
	zeta := (10.0 / 2) * math.Sqrt(1e-12/1e-9)
	want := 100 * math.Exp(-math.Pi*zeta/math.Sqrt(1-zeta*zeta))
	if math.Abs(m.OvershootPercent-want) > 5 {
		t.Errorf("overshoot %.1f%%, analytic %.1f%%", m.OvershootPercent, want)
	}
	if m.Peak <= 1 {
		t.Errorf("peak %.3f must exceed final", m.Peak)
	}
}

func TestEdgeMetricsValidation(t *testing.T) {
	ckt, _ := buildRC(t, 100, 1e-12)
	if _, err := MeasureEdge(ckt, 0, DefaultMeasureOpts()); err == nil {
		t.Error("ground node must be rejected")
	}
	if _, err := MeasureEdge(ckt, 99, DefaultMeasureOpts()); err == nil {
		t.Error("out-of-range node must be rejected")
	}
}
