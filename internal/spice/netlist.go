package spice

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteDeck emits the circuit as a SPICE-compatible netlist (a ".cir
// deck"), so any routing evaluated by this package can be re-simulated with
// Berkeley SPICE / ngspice for external validation:
//
//   - <title>
//     R1 1 2 100
//     C1 2 0 15.3f
//     V1 3 0 PWL(0 0 1p 1)
//     .TRAN 1p 10n
//     .END
//
// Step sources become PWL waveforms with a 1 ps edge (an ideal step is not
// expressible in SPICE); DC sources stay DC. Arbitrary Go waveforms other
// than those produced by DC/Step/Ramp are sampled as 64-point PWL over
// tranStop.
func WriteDeck(w io.Writer, c *Circuit, title string, tranStep, tranStop float64) error {
	bw := bufio.NewWriter(w)
	if title == "" {
		title = "nontree routing circuit"
	}
	fmt.Fprintf(bw, "* %s\n", title)
	fmt.Fprintf(bw, "* %d nodes (0 = ground)\n", c.numNodes)

	for i, r := range c.resistors {
		fmt.Fprintf(bw, "R%d %d %d %s\n", i+1, r.a, r.b, engNotation(r.ohms))
	}
	for i, cap := range c.capacitors {
		fmt.Fprintf(bw, "C%d %d %d %s\n", i+1, cap.a, cap.b, engNotation(cap.farads))
	}
	for i, l := range c.inductors {
		fmt.Fprintf(bw, "L%d %d %d %s\n", i+1, l.a, l.b, engNotation(l.henries))
	}
	for i, v := range c.vsources {
		fmt.Fprintf(bw, "V%d %d %d %s\n", i+1, v.pos, v.neg, waveformSpec(v.wave, tranStop))
	}
	for i, src := range c.isources {
		fmt.Fprintf(bw, "I%d %d %d %s\n", i+1, src.from, src.to, waveformSpec(src.wave, tranStop))
	}
	if tranStep > 0 && tranStop > tranStep {
		fmt.Fprintf(bw, ".TRAN %s %s\n", engNotation(tranStep), engNotation(tranStop))
	}
	fmt.Fprintln(bw, ".END")
	return bw.Flush()
}

// waveformSpec renders a source waveform as a SPICE source specification by
// probing it: constant sources become "DC v"; two-level sources become a
// sharp PWL step; anything else is sampled into a 64-point PWL.
func waveformSpec(wave Waveform, horizon float64) string {
	if horizon <= 0 {
		horizon = 1e-9
	}
	v0 := wave(0)
	vEnd := wave(horizon)
	if v0 == vEnd && wave(horizon/3) == v0 && wave(horizon/7) == v0 {
		return fmt.Sprintf("DC %s", engNotation(v0))
	}
	// Detect a clean two-level step: find the switch time by bisection.
	if isTwoLevel(wave, horizon, v0, vEnd) {
		t := stepTime(wave, horizon, v0)
		edge := horizon * 1e-6
		return fmt.Sprintf("PWL(0 %s %s %s %s %s)",
			engNotation(v0), engNotation(t), engNotation(v0),
			engNotation(t+edge), engNotation(vEnd))
	}
	// General waveform: uniform 64-point PWL sampling.
	var sb strings.Builder
	sb.WriteString("PWL(")
	const samples = 64
	for i := 0; i <= samples; i++ {
		t := horizon * float64(i) / samples
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s %s", engNotation(t), engNotation(wave(t)))
	}
	sb.WriteByte(')')
	return sb.String()
}

func isTwoLevel(wave Waveform, horizon, v0, vEnd float64) bool {
	const probes = 16
	for i := 0; i <= probes; i++ {
		v := wave(horizon * float64(i) / probes)
		if v != v0 && v != vEnd {
			return false
		}
	}
	return true
}

func stepTime(wave Waveform, horizon, v0 float64) float64 {
	lo, hi := 0.0, horizon
	for iter := 0; iter < 60 && hi-lo > 1e-18; iter++ {
		mid := (lo + hi) / 2
		if wave(mid) == v0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// engNotation renders a value with SPICE engineering suffixes
// (f p n u m k meg g), choosing the suffix that leaves a mantissa in
// [1, 1000) where possible.
func engNotation(v float64) string {
	if v == 0 {
		return "0"
	}
	type unit struct {
		scale  float64
		suffix string
	}
	units := []unit{
		{1e9, "g"}, {1e6, "meg"}, {1e3, "k"}, {1, ""},
		{1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	mag := v
	if mag < 0 {
		mag = -mag
	}
	for _, u := range units {
		if mag >= u.scale {
			return trimFloat(v/u.scale) + u.suffix
		}
	}
	return trimFloat(v/1e-15) + "f"
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 6, 64)
	return s
}

// Deck parsing errors.
var (
	ErrDeckSyntax = errors.New("spice: deck syntax error")
)

// ReadDeck parses a SPICE netlist supporting the element subset this
// package emits — R, C, L, V (DC and PWL), I (DC and PWL) cards, comments,
// .TRAN and .END — and rebuilds the circuit. Node numbers may be arbitrary
// non-negative integers; they are compacted (0 stays ground). Returns the
// circuit and the .TRAN (step, stop) if present.
func ReadDeck(r io.Reader) (*Circuit, float64, float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	type card struct {
		kind    byte
		a, b    int
		value   float64
		isPWL   bool
		pwl     []float64
		lineNum int
	}
	var cards []card
	var tranStep, tranStop float64
	maxNode := 0
	lineNum := 0
	first := true

	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			// The first line of a SPICE deck is the title, even without '*'.
			if line != "" && !strings.HasPrefix(line, ".") {
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		upper := strings.ToUpper(line)
		if strings.HasPrefix(upper, ".END") {
			break
		}
		if strings.HasPrefix(upper, ".TRAN") {
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				var err1, err2 error
				tranStep, err1 = parseEng(fields[1])
				tranStop, err2 = parseEng(fields[2])
				if err1 != nil || err2 != nil {
					return nil, 0, 0, fmt.Errorf("%w: line %d: bad .TRAN", ErrDeckSyntax, lineNum)
				}
			}
			continue
		}
		if strings.HasPrefix(upper, ".") {
			continue // other directives ignored
		}

		kind := upper[0]
		switch kind {
		case 'R', 'C', 'L', 'V', 'I':
		default:
			return nil, 0, 0, fmt.Errorf("%w: line %d: unsupported element %q", ErrDeckSyntax, lineNum, line)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, 0, 0, fmt.Errorf("%w: line %d: too few fields", ErrDeckSyntax, lineNum)
		}
		a, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, 0, 0, fmt.Errorf("%w: line %d: bad node %q", ErrDeckSyntax, lineNum, fields[1])
		}
		b, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, 0, 0, fmt.Errorf("%w: line %d: bad node %q", ErrDeckSyntax, lineNum, fields[2])
		}
		if a < 0 || b < 0 {
			return nil, 0, 0, fmt.Errorf("%w: line %d: negative node", ErrDeckSyntax, lineNum)
		}
		if a > maxNode {
			maxNode = a
		}
		if b > maxNode {
			maxNode = b
		}

		cd := card{kind: kind, a: a, b: b, lineNum: lineNum}
		rest := strings.Join(fields[3:], " ")
		restUpper := strings.ToUpper(rest)
		switch {
		case strings.HasPrefix(restUpper, "PWL"):
			pts, err := parsePWL(rest)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("%w: line %d: %v", ErrDeckSyntax, lineNum, err)
			}
			cd.isPWL = true
			cd.pwl = pts
		case strings.HasPrefix(restUpper, "DC"):
			v, err := parseEng(strings.TrimSpace(rest[2:]))
			if err != nil {
				return nil, 0, 0, fmt.Errorf("%w: line %d: bad DC value", ErrDeckSyntax, lineNum)
			}
			cd.value = v
		default:
			v, err := parseEng(fields[3])
			if err != nil {
				return nil, 0, 0, fmt.Errorf("%w: line %d: bad value %q", ErrDeckSyntax, lineNum, fields[3])
			}
			cd.value = v
		}
		cards = append(cards, cd)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, err
	}

	c := NewCircuit()
	for c.numNodes <= maxNode {
		c.Node()
	}
	for _, cd := range cards {
		var err error
		switch cd.kind {
		case 'R':
			err = c.AddResistor(cd.a, cd.b, cd.value)
		case 'C':
			err = c.AddCapacitor(cd.a, cd.b, cd.value)
		case 'L':
			err = c.AddInductor(cd.a, cd.b, cd.value)
		case 'V':
			if cd.isPWL {
				err = c.AddVSource(cd.a, cd.b, PWL(cd.pwl))
			} else {
				err = c.AddVSource(cd.a, cd.b, DC(cd.value))
			}
		case 'I':
			if cd.isPWL {
				err = c.AddISource(cd.a, cd.b, PWL(cd.pwl))
			} else {
				err = c.AddISource(cd.a, cd.b, DC(cd.value))
			}
		}
		if err != nil {
			return nil, 0, 0, fmt.Errorf("spice: deck line %d: %w", cd.lineNum, err)
		}
	}
	return c, tranStep, tranStop, nil
}

// parsePWL parses "PWL(t0 v0 t1 v1 ...)" into the flat point list.
func parsePWL(s string) ([]float64, error) {
	open := strings.IndexByte(s, '(')
	close_ := strings.LastIndexByte(s, ')')
	if open < 0 || close_ < open {
		return nil, errors.New("malformed PWL")
	}
	fields := strings.Fields(s[open+1 : close_])
	if len(fields) == 0 || len(fields)%2 != 0 {
		return nil, errors.New("PWL needs an even number of values")
	}
	pts := make([]float64, len(fields))
	for i, f := range fields {
		v, err := parseEng(f)
		if err != nil {
			return nil, fmt.Errorf("bad PWL value %q", f)
		}
		pts[i] = v
	}
	for i := 2; i < len(pts); i += 2 {
		if pts[i] < pts[i-2] {
			return nil, errors.New("PWL times must be non-decreasing")
		}
	}
	return pts, nil
}

// PWL returns a piecewise-linear waveform through (t, v) pairs given as a
// flat [t0, v0, t1, v1, ...] list with non-decreasing times. Before t0 the
// value is v0; after the last point it holds the final value.
func PWL(points []float64) Waveform {
	pts := append([]float64(nil), points...)
	n := len(pts) / 2
	return func(t float64) float64 {
		if n == 0 {
			return 0
		}
		if t <= pts[0] {
			return pts[1]
		}
		if t >= pts[2*(n-1)] {
			return pts[2*n-1]
		}
		// Binary search for the segment.
		i := sort.Search(n, func(k int) bool { return pts[2*k] > t }) - 1
		t0, v0 := pts[2*i], pts[2*i+1]
		t1, v1 := pts[2*i+2], pts[2*i+3]
		if t1 == t0 {
			return v1
		}
		return v0 + (v1-v0)*(t-t0)/(t1-t0)
	}
}

// parseEng parses a SPICE-style number with optional engineering suffix
// (case-insensitive): f p n u m k meg g t. "15.3f" → 15.3e-15.
func parseEng(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, errors.New("empty number")
	}
	suffixes := []struct {
		text  string
		scale float64
	}{
		{"meg", 1e6}, {"mil", 25.4e-6},
		{"t", 1e12}, {"g", 1e9}, {"k", 1e3},
		{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
	}
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf.text) {
			base := strings.TrimSuffix(s, suf.text)
			v, err := strconv.ParseFloat(base, 64)
			if err != nil {
				return 0, err
			}
			return v * suf.scale, nil
		}
	}
	return strconv.ParseFloat(s, 64)
}
