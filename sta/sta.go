// Package sta is a small static timing analyzer for combinational designs:
// the substrate that makes the paper's critical-sink formulation (Section
// 5.1) actionable. The paper assumes sink criticalities α_i "reflecting the
// timing information obtained during the performance-driven placement
// phase"; this package computes exactly that information — arrival times,
// required times, slacks, and the critical path — over a design whose nets
// are routed by this repository's algorithms.
//
// The model: a design is a set of signal nets and gates. Each net has one
// driver (a primary input or a gate output) and sinks (gate inputs or
// primary outputs). Gates add an intrinsic delay; nets add the per-sink
// interconnect delays measured by the delay models in this module. Arrival
// times propagate forward, required times backward from the clock period,
// and slack = required − arrival.
package sta

import (
	"errors"
	"fmt"
	"math"
)

// PinRef addresses one sink pin of one net: sink index s refers to the
// net's pin s+1 (pin 0 is the driver).
type PinRef struct {
	Net  int
	Sink int
}

// Gate is a combinational cell: it becomes valid when all fan-in pins have
// arrived, adds Delay, and drives an output net.
type Gate struct {
	// Name identifies the gate in reports.
	Name string
	// Delay is the intrinsic cell delay in seconds.
	Delay float64
	// FanIn lists the sink pins feeding this gate.
	FanIn []PinRef
	// Drives is the net index whose source this gate drives, or -1 if the
	// gate feeds a primary output directly (its arrival is then checked
	// against the clock at the gate itself).
	Drives int
}

// Design is a combinational netlist ready for timing analysis.
type Design struct {
	// NumNets is the net count; nets are referenced by index.
	NumNets int
	// SinkCount[n] is the number of sinks of net n.
	SinkCount []int
	// NetDelay[n][s] is the interconnect delay (seconds) from net n's
	// driver to its sink s — produced by routing each net and measuring it
	// with any of this module's delay models.
	NetDelay [][]float64
	// Gates lists the design's cells.
	Gates []Gate
	// PrimaryInputs lists nets driven by primary inputs (arrival time 0 at
	// their drivers).
	PrimaryInputs []int
	// PrimaryOutputs lists sink pins that leave the design; their arrival
	// is checked against the clock period.
	PrimaryOutputs []PinRef
}

// Validation and analysis errors.
var (
	ErrNoTiming      = errors.New("sta: design has no primary inputs")
	ErrCombinational = errors.New("sta: design contains a combinational cycle")
	ErrBadRef        = errors.New("sta: reference out of range")
	ErrMultiDriver   = errors.New("sta: net has multiple drivers")
	ErrNoDriver      = errors.New("sta: net has no driver")
)

// Validate checks structural consistency: every net has exactly one driver
// (a primary input or one gate), all references in range.
func (d *Design) Validate() error {
	if len(d.SinkCount) != d.NumNets || len(d.NetDelay) != d.NumNets {
		return fmt.Errorf("%w: per-net slices must have NumNets entries", ErrBadRef)
	}
	for n := 0; n < d.NumNets; n++ {
		if len(d.NetDelay[n]) != d.SinkCount[n] {
			return fmt.Errorf("%w: net %d has %d delays for %d sinks",
				ErrBadRef, n, len(d.NetDelay[n]), d.SinkCount[n])
		}
	}
	driver := make([]int, d.NumNets) // 0 = none, 1 = one
	for _, n := range d.PrimaryInputs {
		if n < 0 || n >= d.NumNets {
			return fmt.Errorf("%w: primary input net %d", ErrBadRef, n)
		}
		driver[n]++
	}
	for gi, g := range d.Gates {
		if g.Drives >= d.NumNets {
			return fmt.Errorf("%w: gate %d drives net %d", ErrBadRef, gi, g.Drives)
		}
		if g.Drives >= 0 {
			driver[g.Drives]++
		}
		for _, p := range g.FanIn {
			if err := d.checkPin(p); err != nil {
				return fmt.Errorf("gate %d (%s): %w", gi, g.Name, err)
			}
		}
	}
	for _, p := range d.PrimaryOutputs {
		if err := d.checkPin(p); err != nil {
			return fmt.Errorf("primary output: %w", err)
		}
	}
	for n := 0; n < d.NumNets; n++ {
		switch {
		case driver[n] == 0:
			return fmt.Errorf("%w: net %d", ErrNoDriver, n)
		case driver[n] > 1:
			return fmt.Errorf("%w: net %d has %d drivers", ErrMultiDriver, n, driver[n])
		}
	}
	if len(d.PrimaryInputs) == 0 {
		return ErrNoTiming
	}
	return nil
}

func (d *Design) checkPin(p PinRef) error {
	if p.Net < 0 || p.Net >= d.NumNets {
		return fmt.Errorf("%w: net %d", ErrBadRef, p.Net)
	}
	if p.Sink < 0 || p.Sink >= d.SinkCount[p.Net] {
		return fmt.Errorf("%w: sink %d of net %d", ErrBadRef, p.Sink, p.Net)
	}
	return nil
}

// Timing is the result of analysis.
type Timing struct {
	// NetArrival[n] is the arrival time at net n's driver.
	NetArrival []float64
	// SinkArrival[n][s] is the arrival time at net n's sink s.
	SinkArrival [][]float64
	// SinkRequired[n][s] is the required time for the same pin.
	SinkRequired [][]float64
	// WorstArrival is the design's latest primary-output arrival — the
	// minimum feasible clock period.
	WorstArrival float64
	// ClockPeriod is the constraint required times were derived from.
	ClockPeriod float64
}

// Slack returns required − arrival at a sink pin; negative means the path
// through the pin violates the clock period.
func (t *Timing) Slack(p PinRef) float64 {
	return t.SinkRequired[p.Net][p.Sink] - t.SinkArrival[p.Net][p.Sink]
}

// WorstSlack returns the smallest slack in the design.
func (t *Timing) WorstSlack() float64 {
	worst := math.Inf(1)
	for n := range t.SinkArrival {
		for s := range t.SinkArrival[n] {
			if sl := t.Slack(PinRef{Net: n, Sink: s}); sl < worst {
				worst = sl
			}
		}
	}
	return worst
}

// Analyze propagates arrival times forward and required times backward
// against the given clock period.
func (d *Design) Analyze(clockPeriod float64) (*Timing, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := d.topoOrder()
	if err != nil {
		return nil, err
	}

	t := &Timing{
		NetArrival:   make([]float64, d.NumNets),
		SinkArrival:  make([][]float64, d.NumNets),
		SinkRequired: make([][]float64, d.NumNets),
		ClockPeriod:  clockPeriod,
	}
	for n := 0; n < d.NumNets; n++ {
		t.SinkArrival[n] = make([]float64, d.SinkCount[n])
		t.SinkRequired[n] = make([]float64, d.SinkCount[n])
		t.NetArrival[n] = math.Inf(-1)
	}
	for _, n := range d.PrimaryInputs {
		t.NetArrival[n] = 0
	}

	// Forward pass in gate topological order.
	for _, gi := range order {
		g := &d.Gates[gi]
		arrival := 0.0
		for _, p := range g.FanIn {
			a := t.NetArrival[p.Net] + d.NetDelay[p.Net][p.Sink]
			if a > arrival {
				arrival = a
			}
		}
		arrival += g.Delay
		if g.Drives >= 0 {
			t.NetArrival[g.Drives] = arrival
		}
	}
	// Sink arrivals everywhere.
	for n := 0; n < d.NumNets; n++ {
		for s := 0; s < d.SinkCount[n]; s++ {
			t.SinkArrival[n][s] = t.NetArrival[n] + d.NetDelay[n][s]
		}
	}
	for _, p := range d.PrimaryOutputs {
		if a := t.SinkArrival[p.Net][p.Sink]; a > t.WorstArrival {
			t.WorstArrival = a
		}
	}

	// Backward pass: required time at each sink pin.
	netRequired := make([]float64, d.NumNets)
	for n := range netRequired {
		netRequired[n] = math.Inf(1)
	}
	for _, p := range d.PrimaryOutputs {
		t.SinkRequired[p.Net][p.Sink] = clockPeriod
	}
	// Initialize non-PO sinks to +inf; tighten through gates in reverse
	// topological order.
	poSet := make(map[PinRef]bool, len(d.PrimaryOutputs))
	for _, p := range d.PrimaryOutputs {
		poSet[p] = true
	}
	for n := 0; n < d.NumNets; n++ {
		for s := 0; s < d.SinkCount[n]; s++ {
			if !poSet[PinRef{Net: n, Sink: s}] {
				t.SinkRequired[n][s] = math.Inf(1)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		g := &d.Gates[order[i]]
		// Required at the gate output net's driver.
		req := math.Inf(1)
		if g.Drives >= 0 {
			for s := 0; s < d.SinkCount[g.Drives]; s++ {
				if r := t.SinkRequired[g.Drives][s] - d.NetDelay[g.Drives][s]; r < req {
					req = r
				}
			}
			if req < netRequired[g.Drives] {
				netRequired[g.Drives] = req
			}
		} else {
			req = clockPeriod
		}
		// Propagate through the gate to its fan-in pins.
		for _, p := range g.FanIn {
			if r := req - g.Delay; r < t.SinkRequired[p.Net][p.Sink] {
				t.SinkRequired[p.Net][p.Sink] = r
			}
		}
	}
	return t, nil
}

// topoOrder returns gate indices in topological order of the net/gate
// DAG, or ErrCombinational on a cycle.
func (d *Design) topoOrder() ([]int, error) {
	// gateOfNet[n] = driving gate or -1.
	gateOfNet := make([]int, d.NumNets)
	for n := range gateOfNet {
		gateOfNet[n] = -1
	}
	for gi, g := range d.Gates {
		if g.Drives >= 0 {
			gateOfNet[g.Drives] = gi
		}
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(d.Gates))
	order := make([]int, 0, len(d.Gates))
	var visit func(gi int) error
	visit = func(gi int) error {
		switch state[gi] {
		case done:
			return nil
		case visiting:
			return ErrCombinational
		}
		state[gi] = visiting
		for _, p := range d.Gates[gi].FanIn {
			if up := gateOfNet[p.Net]; up >= 0 {
				if err := visit(up); err != nil {
					return err
				}
			}
		}
		state[gi] = done
		order = append(order, gi)
		return nil
	}
	for gi := range d.Gates {
		if err := visit(gi); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Criticalities converts a timing result into the α weights of the
// paper's CSORG formulation for one net: sinks with the least slack get
// the largest weights. The mapping is linear in slack deficit,
//
//	α_s = max(0, (worst-net-slack-threshold − slack_s)) normalized to max 1,
//
// with sinks at or above the threshold getting 0. Threshold defaults to
// the net's best slack when sharpen is false (all sinks weighted by
// relative criticality), or to just above the net's worst slack when
// sharpen is true (only the most critical sink(s) weighted) — the paper's
// "exactly one critical sink" special case.
func Criticalities(t *Timing, net int, sharpen bool) []float64 {
	n := len(t.SinkArrival[net])
	alphas := make([]float64, n)

	// Off-path sinks carry +Inf slack (nothing requires them); they get
	// weight 0 and are excluded from the threshold computation.
	worst, best := math.Inf(1), math.Inf(-1)
	finite := 0
	for s := 0; s < n; s++ {
		sl := t.Slack(PinRef{Net: net, Sink: s})
		if math.IsInf(sl, 1) {
			continue
		}
		finite++
		if sl < worst {
			worst = sl
		}
		if sl > best {
			best = sl
		}
	}
	if finite == 0 {
		// No sink is constrained; weight uniformly (degenerates to the
		// average-delay objective, the paper's α ≡ const case).
		for s := range alphas {
			alphas[s] = 1
		}
		return alphas
	}
	if best == worst {
		// All constrained sinks equally critical.
		for s := 0; s < n; s++ {
			if !math.IsInf(t.Slack(PinRef{Net: net, Sink: s}), 1) {
				alphas[s] = 1
			}
		}
		return alphas
	}
	threshold := best
	if sharpen {
		threshold = worst + 1e-12*(best-worst)
	}
	maxDeficit := 0.0
	for s := 0; s < n; s++ {
		sl := t.Slack(PinRef{Net: net, Sink: s})
		if math.IsInf(sl, 1) {
			continue
		}
		if d := threshold - sl; d > maxDeficit {
			maxDeficit = d
		}
	}
	if maxDeficit <= 0 {
		for s := 0; s < n; s++ {
			if !math.IsInf(t.Slack(PinRef{Net: net, Sink: s}), 1) {
				alphas[s] = 1
			}
		}
		return alphas
	}
	for s := 0; s < n; s++ {
		sl := t.Slack(PinRef{Net: net, Sink: s})
		if math.IsInf(sl, 1) {
			continue
		}
		if d := threshold - sl; d > 0 {
			alphas[s] = d / maxDeficit
		}
	}
	return alphas
}

// MostCriticalNet returns the net containing the worst-slack sink.
func MostCriticalNet(t *Timing) (int, PinRef) {
	worst := math.Inf(1)
	var at PinRef
	for n := range t.SinkArrival {
		for s := range t.SinkArrival[n] {
			p := PinRef{Net: n, Sink: s}
			if sl := t.Slack(p); sl < worst {
				worst = sl
				at = p
			}
		}
	}
	return at.Net, at
}

// PathElement is one hop of a critical path: the signal leaves net Net at
// sink Sink, having been driven through gate Gate (index into
// Design.Gates, or -1 when the net is driven by a primary input).
type PathElement struct {
	Net  int
	Sink int
	Gate int
}

// CriticalPath walks the worst-arrival path backward from the latest
// primary output to a primary input, returning the pin/gate sequence in
// signal order. It reports which interconnect actually limits the clock —
// the nets worth re-routing.
func (d *Design) CriticalPath(t *Timing) ([]PathElement, error) {
	if len(d.PrimaryOutputs) == 0 {
		return nil, errors.New("sta: no primary outputs")
	}
	// Latest primary-output pin.
	var end PinRef
	worst := math.Inf(-1)
	for _, p := range d.PrimaryOutputs {
		if a := t.SinkArrival[p.Net][p.Sink]; a > worst {
			worst = a
			end = p
		}
	}
	gateOfNet := make([]int, d.NumNets)
	for n := range gateOfNet {
		gateOfNet[n] = -1
	}
	for gi, g := range d.Gates {
		if g.Drives >= 0 {
			gateOfNet[g.Drives] = gi
		}
	}

	var rev []PathElement
	cur := end
	for hop := 0; hop <= len(d.Gates)+1; hop++ {
		gi := gateOfNet[cur.Net]
		rev = append(rev, PathElement{Net: cur.Net, Sink: cur.Sink, Gate: gi})
		if gi < 0 {
			// Driven by a primary input: path complete; reverse into
			// signal order.
			out := make([]PathElement, len(rev))
			for i := range rev {
				out[i] = rev[len(rev)-1-i]
			}
			return out, nil
		}
		// Find the fan-in pin that determined the driving gate's arrival.
		g := &d.Gates[gi]
		gateArrival := t.NetArrival[cur.Net] - g.Delay
		found := false
		for _, p := range g.FanIn {
			if math.Abs(t.SinkArrival[p.Net][p.Sink]-gateArrival) <= 1e-18+1e-12*math.Abs(gateArrival) {
				cur = p
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sta: arrival bookkeeping inconsistent at gate %s", g.Name)
		}
	}
	return nil, errors.New("sta: critical path walk did not terminate")
}
