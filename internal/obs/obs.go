// Package obs is the repository's zero-dependency observability layer:
// counters, histograms and wall-clock span timers threaded through the hot
// paths of the routing algorithms (package core), the incremental Elmore
// evaluator (package elmore) and the transient simulator (package spice).
//
// The layer is built around one contract that makes it usable as a test
// oracle (DESIGN.md §10):
//
//   - Counters and histograms record *deterministic* quantities — candidate
//     counts, oracle invocations, cache hits, solver steps. For a fixed
//     seed they are byte-identical at any Options.Workers value, because
//     every increment is either issued from the deterministic reduction
//     path or is an order-independent sum of per-worker contributions.
//   - Wall-clock durations (span timers) are inherently nondeterministic
//     and are kept in a separate Timings section that every determinism
//     comparison excludes. No algorithm decision may ever read them.
//
// Instrumented packages observe only the Recorder interface; the one place
// that reads the clock is span.go in this package, which keeps the
// nondetsource analyzer's no-wall-clock guarantee for algorithm packages
// intact.
//
// Histogram sums are exact (and therefore order-independent) as long as
// the observed samples are integer-valued, which every deterministic
// sample in this repository is (step counts, candidate counts). Fractional
// samples are only ever recorded into Timings.
package obs

// Recorder receives metric events from instrumented code. Implementations
// must be safe for concurrent use: the parallel candidate sweeps record
// from many goroutines at once. The no-op Nop is the default everywhere a
// recorder is optional.
type Recorder interface {
	// Add increments the named counter by delta (delta 0 registers the
	// counter so it appears in snapshots even when never hit).
	Add(name string, delta int64)
	// Observe records one sample into the named histogram.
	Observe(name string, value float64)
	// ObserveDuration records one wall-clock span duration in seconds.
	// Durations live in the Timings section of a snapshot and are excluded
	// from every determinism guarantee.
	ObserveDuration(name string, seconds float64)
}

// Nop is the no-op Recorder used when observability is not requested.
// The zero value is ready to use.
type Nop struct{}

// Add implements Recorder.
func (Nop) Add(string, int64) {}

// Observe implements Recorder.
func (Nop) Observe(string, float64) {}

// ObserveDuration implements Recorder.
func (Nop) ObserveDuration(string, float64) {}

// OrNop returns r, or Nop when r is nil — the resolution helper every
// instrumented option struct uses.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop{}
	}
	return r
}

// Multi fans every event out to all listed recorders. Useful when a run
// needs both a per-entry registry (benchmark accounting) and a shared one
// (live snapshots).
type Multi []Recorder

// Add implements Recorder.
func (m Multi) Add(name string, delta int64) {
	for _, r := range m {
		r.Add(name, delta)
	}
}

// Observe implements Recorder.
func (m Multi) Observe(name string, value float64) {
	for _, r := range m {
		r.Observe(name, value)
	}
}

// ObserveDuration implements Recorder.
func (m Multi) ObserveDuration(name string, seconds float64) {
	for _, r := range m {
		r.ObserveDuration(name, seconds)
	}
}
