package serve

import (
	"fmt"

	"nontree"
	"nontree/internal/graph"
	"nontree/internal/netlist"
	"nontree/internal/obs"
	"nontree/internal/trace"
)

// Algorithm and oracle names accepted by RouteOptions. The route runner is
// deliberately restricted to the deterministic single-net entry points; the
// experiment harness drives the batch workloads.
const (
	AlgoLDRG  = "ldrg"
	AlgoSLDRG = "sldrg"
	AlgoTaps  = "taps"
	AlgoH1    = "h1"
	AlgoH2    = "h2"
	AlgoH3    = "h3"

	OracleElmore  = "elmore"
	OracleTwoPole = "twopole"
	OracleSpice   = "spice"
)

// RouteOptions parameterizes one routing run.
type RouteOptions struct {
	// Algo selects the algorithm (Algo* constants; default AlgoLDRG).
	Algo string `json:"algo,omitempty"`
	// Oracle selects the steering delay model (Oracle* constants; default
	// OracleElmore).
	Oracle string `json:"oracle,omitempty"`
	// Workers bounds per-sweep evaluation goroutines (0 = one per CPU).
	Workers int `json:"workers,omitempty"`
	// MaxEdges caps added edges (0 = to convergence).
	MaxEdges int `json:"max_edges,omitempty"`
}

// Node is one topology node of a route reply.
type Node struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Steiner marks nodes introduced by the router (non-pins).
	Steiner bool `json:"steiner,omitempty"`
}

// EdgeRef is one wire of a route reply, endpoints in canonical order.
type EdgeRef struct {
	U int `json:"u"`
	V int `json:"v"`
}

// RouteResult is the outcome of one routing run.
type RouteResult struct {
	// Algo and Oracle echo the options actually applied (after defaults).
	Algo   string `json:"algo"`
	Oracle string `json:"oracle"`
	// Nodes and Edges describe the routed topology.
	Nodes []Node    `json:"nodes"`
	Edges []EdgeRef `json:"edges"`
	// AddedEdges lists the non-tree wires in acceptance order.
	AddedEdges []EdgeRef `json:"added_edges"`
	// InitialObjective and FinalObjective bracket the run (seconds).
	InitialObjective float64 `json:"initial_objective"`
	FinalObjective   float64 `json:"final_objective"`
	// Evaluations counts oracle invocations.
	Evaluations int `json:"evaluations"`
}

// normalize applies defaults and validates names.
func (o RouteOptions) normalize() (RouteOptions, error) {
	if o.Algo == "" {
		o.Algo = AlgoLDRG
	}
	switch o.Algo {
	case AlgoLDRG, AlgoSLDRG, AlgoTaps, AlgoH1, AlgoH2, AlgoH3:
	default:
		return o, fmt.Errorf("serve: unknown algorithm %q", o.Algo)
	}
	if o.Oracle == "" {
		o.Oracle = OracleElmore
	}
	switch o.Oracle {
	case OracleElmore, OracleTwoPole, OracleSpice:
	default:
		return o, fmt.Errorf("serve: unknown oracle %q", o.Oracle)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("serve: workers must be non-negative")
	}
	if o.MaxEdges < 0 {
		return o, fmt.Errorf("serve: max_edges must be non-negative")
	}
	return o, nil
}

// ValidateRouteOptions applies defaults and validates opts, returning the
// normalized form. It is the exported face of the /route option checks for
// clients that construct requests programmatically (the sim workload
// generator), so a generated stream can never carry options the daemon
// would reject as malformed.
func ValidateRouteOptions(opts RouteOptions) (RouteOptions, error) {
	return opts.normalize()
}

// Run routes one net with the requested algorithm, recording metrics into
// rec and the decision trace into tr (either may be nil). This is the
// single code path behind both the /route endpoint and the tracereplay
// drift checker, so a replay re-executes exactly what the daemon ran.
func Run(net *netlist.Net, opts RouteOptions, rec obs.Recorder, tr trace.Tracer) (*RouteResult, error) {
	return RunTagged(net, opts, "", rec, tr)
}

// RunTagged is Run with a request identity: requestID is threaded through
// the facade into the sweeps and oracles so any error they surface names
// the request it belongs to ("" routes identically with untagged errors).
// The id never influences an algorithm decision — replaying a request
// under a different id yields a byte-identical result (DESIGN.md §16).
func RunTagged(net *netlist.Net, opts RouteOptions, requestID string, rec obs.Recorder, tr trace.Tracer) (*RouteResult, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}

	cfg := nontree.Config{
		MaxAddedEdges: opts.MaxEdges,
		Workers:       opts.Workers,
		Obs:           rec,
		Trace:         tr,
		RequestID:     requestID,
	}
	switch opts.Oracle {
	case OracleSpice:
		cfg.Oracle = nontree.OracleSpice
	case OracleTwoPole:
		cfg.Oracle = nontree.OracleTwoPole
	}

	var res *nontree.Result
	switch opts.Algo {
	case AlgoSLDRG:
		sr, err := nontree.SLDRG(net, cfg)
		if err != nil {
			return nil, err
		}
		res = &sr.Result
	default:
		seed, err := nontree.MST(net)
		if err != nil {
			return nil, err
		}
		switch opts.Algo {
		case AlgoLDRG:
			res, err = nontree.LDRG(seed, cfg)
		case AlgoTaps:
			res, err = nontree.LDRGWithTaps(seed, cfg)
		case AlgoH1:
			res, err = nontree.H1(seed, cfg)
		case AlgoH2:
			res, err = nontree.H2(seed, cfg)
		case AlgoH3:
			res, err = nontree.H3(seed, cfg)
		}
		if err != nil {
			return nil, err
		}
	}

	out := &RouteResult{
		Algo:             opts.Algo,
		Oracle:           opts.Oracle,
		InitialObjective: res.InitialObjective,
		FinalObjective:   res.FinalObjective,
		Evaluations:      res.Evaluations,
		AddedEdges:       edgeRefs(res.AddedEdges),
	}
	t := res.Topology
	out.Nodes = make([]Node, t.NumNodes())
	for n := 0; n < t.NumNodes(); n++ {
		p := t.Point(n)
		out.Nodes[n] = Node{X: p.X, Y: p.Y, Steiner: t.IsSteiner(n)}
	}
	out.Edges = edgeRefs(t.Edges())
	return out, nil
}

func edgeRefs(edges []graph.Edge) []EdgeRef {
	out := make([]EdgeRef, len(edges))
	for i, e := range edges {
		out[i] = EdgeRef{U: e.U, V: e.V}
	}
	return out
}
