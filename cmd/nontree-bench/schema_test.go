package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nontree/internal/expt"
)

// Schema regression against the committed artifact: every key path that
// BENCH_PR4.json ever emitted must still be produced by a fresh bench run.
// New keys may appear freely; a vanished key fails — that is the
// schema-stability contract the CI bench-smoke job also enforces.

// keyPaths collects every JSON object key path in v, with array elements
// collapsed to "[]" and map-valued metric names collapsed to "*" under
// "counters"/"histograms"/"buckets"/"environment"/"aggregates" so the
// schema is about shape, not about which metrics or algorithms ran.
func keyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		wild := false
		switch base := lastSegment(prefix); base {
		case "counters", "histograms", "buckets", "environment", "aggregates":
			wild = true
		}
		for k, child := range x {
			name := k
			if wild {
				name = "*"
			}
			p := prefix + "." + name
			out[p] = true
			keyPaths(p, child, out)
		}
	case []any:
		for _, child := range x {
			keyPaths(prefix+".[]", child, out)
		}
	}
}

func lastSegment(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}

func loadPaths(t *testing.T, raw []byte) map[string]bool {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]bool)
	keyPaths("$", doc, paths)
	return paths
}

func TestBenchSchemaMatchesCommittedArtifact(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_PR4.json"))
	if err != nil {
		t.Fatalf("reading committed artifact (regenerate with "+
			"`go run ./cmd/nontree-bench -exp bench -trials 3 -out BENCH_PR4.json`): %v", err)
	}
	oldPaths := loadPaths(t, committed)

	cfg := expt.Default()
	cfg.Sizes = []int{5}
	cfg.Trials = 1
	cfg.MeasureWith = expt.OracleElmore
	report, err := expt.BenchSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report.Environment = map[string]string{"go_version": "test"}
	fresh, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	newPaths := loadPaths(t, fresh)

	var missing []string
	for p := range oldPaths {
		if !newPaths[p] {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	for _, p := range missing {
		t.Errorf("schema regression: key path %s present in committed BENCH_PR4.json "+
			"but absent from a fresh bench run", p)
	}
}

// TestCommittedArtifactCoversAlgorithms pins the committed artifact's
// content guarantees: all benchmark algorithms present, the declared
// schema version, and the full metric-name catalog in every entry.
func TestCommittedArtifactCoversAlgorithms(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_PR4.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report expt.BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != expt.BenchSchemaVersion {
		t.Errorf("committed artifact has schema_version %d, package declares %d",
			report.SchemaVersion, expt.BenchSchemaVersion)
	}
	seen := make(map[string]bool)
	for _, e := range report.Entries {
		seen[e.Algorithm] = true
	}
	for _, name := range expt.BenchAlgorithms() {
		if !seen[name] {
			t.Errorf("committed artifact missing algorithm %q", name)
		}
	}
	for _, name := range expt.BenchAlgorithms() {
		if _, ok := report.Aggregates[name]; !ok {
			t.Errorf("committed artifact missing aggregate for %q", name)
		}
	}
}

func TestRunBenchWritesReport(t *testing.T) {
	cfg := expt.Default()
	cfg.Sizes = []int{5}
	cfg.Trials = 1
	cfg.MeasureWith = expt.OracleElmore
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runBench(cfg, out, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report expt.BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) == 0 {
		t.Error("bench run produced no entries")
	}
	if report.Environment["go_version"] == "" {
		t.Error("bench run did not stamp the environment")
	}
}

// TestRunBenchRegressGate drives the -regress path end to end. A run
// cannot gate against its own artifact — the eval budgets demand a
// fraction of the baseline's work — so the test fabricates a
// "full-solve era" baseline by inflating the evaluation counts: the gate
// must pass against it (identical quality, a tenth of the work) and fail
// once a quality field is perturbed.
func TestRunBenchRegressGate(t *testing.T) {
	cfg := expt.Default()
	cfg.Sizes = []int{5}
	cfg.Trials = 1
	cfg.MeasureWith = expt.OracleElmore
	dir := t.TempDir()
	self := filepath.Join(dir, "self.json")
	if err := runBench(cfg, self, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(self)
	if err != nil {
		t.Fatal(err)
	}
	var report expt.BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}

	writeBaseline := func(name string, mutate func(*expt.BenchReport)) string {
		var r expt.BenchReport
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		mutate(&r)
		data, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	fullEra := writeBaseline("full-era.json", func(r *expt.BenchReport) {
		for i := range r.Entries {
			r.Entries[i].OracleEvaluations *= 10
		}
	})
	if err := runBench(cfg, filepath.Join(dir, "rerun.json"), fullEra); err != nil {
		t.Fatalf("gate against the inflated-evals baseline must pass: %v", err)
	}

	drifted := writeBaseline("drifted.json", func(r *expt.BenchReport) {
		for i := range r.Entries {
			r.Entries[i].OracleEvaluations *= 10
		}
		r.Entries[0].FinalDelay *= 1.000001
	})
	if err := runBench(cfg, filepath.Join(dir, "rerun2.json"), drifted); err == nil {
		t.Fatal("gate against a quality-drifted baseline must fail")
	}
}
