package main

import (
	"os"
	"path/filepath"
	"testing"

	"nontree/internal/netlist"
)

func TestRunBatchToDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := run(8, 3, 7, netlist.DefaultSide, dir, "json"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("wrote %d files, want 3", len(entries))
	}
	// Each file must parse back into a valid 8-pin net.
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		net, err := netlist.ReadJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if net.NumPins() != 8 {
			t.Errorf("%s: %d pins", e.Name(), net.NumPins())
		}
	}
}

func TestRunTextFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run(5, 2, 1, 5000, dir, "text"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		net, err := netlist.ReadText(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if net.NumPins() != 5 {
			t.Errorf("%s: %d pins", e.Name(), net.NumPins())
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(5, 1, 1, 5000, "", "yaml"); err == nil {
		t.Error("unknown format must fail")
	}
	if err := run(5, 3, 1, 5000, "", "json"); err == nil {
		t.Error("multi-net without -dir must fail")
	}
	if err := run(1, 1, 1, 5000, t.TempDir(), "json"); err == nil {
		t.Error("one-pin nets must fail")
	}
}
