package expt

import (
	"fmt"

	"nontree/internal/core"
	"nontree/internal/geom"
	"nontree/internal/graph"
	"nontree/internal/mst"
	"nontree/internal/netlist"
	"nontree/internal/steiner"
)

// Figure workload seeds. The paper's figures show particular illustrative
// nets; these seeds were selected with cmd/seedscan so the generated nets
// exhibit the same qualitative behaviour the captions describe: a large
// single-edge win for Figure 2 (paper: −33.3% delay, +21.5% wire), a
// two-iteration LDRG trace for Figure 3 (paper: −11.4%, +40%), and a large
// SLDRG win over the Steiner tree for Figure 5 (paper: −32%, +25%).
const (
	Figure2Seed = 25
	Figure3Seed = 27
	Figure5Seed = 82
)

// Figure1Pins is the handcrafted 4-pin net of Figure 1. Like the paper's
// own illustration it is constructed, not random: the MST is the chain
// n0–n1–n2–n3, the far sink n3 sits on a long branch, and the short wire
// n0–n2 (2750 µm against a 17,000 µm tree) parallels the first two edges,
// slashing the resistance feeding the entire branch.
//
// The geometry was selected by sweeping this family (see git history /
// DESIGN.md): the MST cycle property forces any added edge on a 4-pin net
// to cost at least the largest tree edge on the path it shortcuts, which
// under the Table 1 technology bounds the achievable improvement-per-wire
// ratio near 1:1 — our instance trades ~16% extra wire for ~15–18% delay,
// versus the paper's reported 23% at 9%. EXPERIMENTS.md discusses the gap.
var Figure1Pins = []geom.Point{
	{X: 0, Y: 0},        // n0: source
	{X: 2500, Y: 0},     // n1
	{X: 1375, Y: 1375},  // n2
	{X: 1375, Y: 13375}, // n3: far sink on the long branch
}

func view(t *graph.Topology) TopologyView {
	v := TopologyView{NumPins: t.NumPins()}
	for _, p := range t.Points() {
		v.Points = append(v.Points, [2]float64{p.X, p.Y})
	}
	for _, e := range t.Edges() {
		v.Edges = append(v.Edges, [2]int{e.U, e.V})
	}
	return v
}

func figureNet(cfg *Config, seed int64, pins int) (*netlist.Net, error) {
	gen := netlist.NewGenerator(seed)
	gen.Side = netlist.DefaultSide
	return gen.Generate(pins)
}

// singleEdgeFigure implements Figures 1 and 2: an MST and the routing graph
// after LDRG's single best edge addition, with measured delays.
func singleEdgeFigure(cfg Config, id, title string, pins []geom.Point) (*Figure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seedTopo, err := mst.Prim(pins)
	if err != nil {
		return nil, err
	}
	res, err := core.LDRG(seedTopo, cfg.ldrgOptions(1))
	if err != nil {
		return nil, err
	}
	o, err := cfg.measureStages(seedTopo, res.AddedEdges)
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: id, Title: title, Values: map[string]float64{}}
	f.Values["mst_delay_s"] = o.baseDelay
	f.Values["mst_cost_um"] = o.baseCost
	f.Stages = append(f.Stages, FigureStage{Label: "(a) MST", Topo: view(seedTopo)})
	if len(o.stageDelay) == 0 {
		f.Lines = append(f.Lines, "LDRG found no improving edge on this net")
		return f, nil
	}
	s := o.finalRatio()
	f.Values["graph_delay_s"] = o.stageDelay[0]
	f.Values["graph_cost_um"] = o.stageCost[0]
	f.Values["delay_ratio"] = s.DelayRatio
	f.Values["cost_ratio"] = s.CostRatio
	f.Stages = append(f.Stages, FigureStage{Label: "(b) MST + 1 edge", Topo: view(res.Topology)})
	f.Lines = append(f.Lines,
		fmt.Sprintf("MST delay %.3g ns, cost %.0f µm", o.baseDelay*1e9, o.baseCost),
		fmt.Sprintf("with 1 added edge: delay %.3g ns (%.1f%% improvement), cost %.0f µm (+%.1f%%)",
			o.stageDelay[0]*1e9, 100*(1-s.DelayRatio), o.stageCost[0], 100*(s.CostRatio-1)),
	)
	return f, nil
}

// Figure1 reproduces the paper's Figure 1: a small net where one extra edge
// substantially cuts delay at a modest wirelength penalty (the paper shows
// 23% delay improvement for 9% extra wire).
func Figure1(cfg Config) (*Figure, error) {
	return singleEdgeFigure(cfg, "figure1",
		"Adding one edge to a small MST cuts delay", Figure1Pins)
}

// Figure2 reproduces Figure 2: a random 10-pin net where a single added
// edge yields a large delay improvement (paper: 33.3% for 21.5% wire).
func Figure2(cfg Config) (*Figure, error) {
	net, err := figureNet(&cfg, Figure2Seed, 10)
	if err != nil {
		return nil, err
	}
	return singleEdgeFigure(cfg, "figure2",
		"One extra edge on a random 10-pin net", net.Pins)
}

// Figure3 reproduces Figure 3: an LDRG execution trace on a 10-pin net —
// the per-iteration delay reduction and wirelength penalty (paper: 7% after
// one edge, 11.4% cumulative after two, at 25% and 40% wire).
func Figure3(cfg Config) (*Figure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := figureNet(&cfg, Figure3Seed, 10)
	if err != nil {
		return nil, err
	}
	seedTopo, err := mst.Prim(net.Pins)
	if err != nil {
		return nil, err
	}
	res, err := core.LDRG(seedTopo, cfg.ldrgOptions(2))
	if err != nil {
		return nil, err
	}
	o, err := cfg.measureStages(seedTopo, res.AddedEdges)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "figure3",
		Title: "LDRG execution trace on a random 10-pin net",
		Values: map[string]float64{
			"mst_delay_s": o.baseDelay,
			"mst_cost_um": o.baseCost,
		},
	}
	f.Stages = append(f.Stages, FigureStage{Label: "(a) MST", Topo: view(seedTopo)})
	f.Lines = append(f.Lines, fmt.Sprintf("MST delay %.3g ns, cost %.0f µm", o.baseDelay*1e9, o.baseCost))
	cum := seedTopo.Clone()
	for k := range o.stageDelay {
		if err := cum.AddEdge(res.AddedEdges[k]); err != nil {
			return nil, err
		}
		label := fmt.Sprintf("(%c) after edge %d", 'b'+byte(k), k+1)
		f.Stages = append(f.Stages, FigureStage{Label: label, Topo: view(cum)})
		f.Values[fmt.Sprintf("stage%d_delay_s", k+1)] = o.stageDelay[k]
		f.Values[fmt.Sprintf("stage%d_cost_um", k+1)] = o.stageCost[k]
		f.Lines = append(f.Lines, fmt.Sprintf(
			"after edge %d: delay %.3g ns (%.1f%% cumulative improvement), cost %.0f µm (+%.1f%%)",
			k+1, o.stageDelay[k]*1e9,
			100*(1-o.stageDelay[k]/o.baseDelay),
			o.stageCost[k], 100*(o.stageCost[k]/o.baseCost-1)))
	}
	if len(o.stageDelay) == 0 {
		f.Lines = append(f.Lines, "LDRG found no improving edge on this net")
	}
	return f, nil
}

// Figure5 reproduces Figure 5: SLDRG on a 10-pin net — an Iterated
// 1-Steiner tree versus the Steiner routing graph after greedy edge
// addition (paper: 32% delay improvement for 25% extra wire).
func Figure5(cfg Config) (*Figure, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := figureNet(&cfg, Figure5Seed, 10)
	if err != nil {
		return nil, err
	}
	res, err := core.SLDRG(net.Pins, steiner.Options{}, cfg.ldrgOptions(0))
	if err != nil {
		return nil, err
	}
	o, err := cfg.measureStages(res.Seed, res.AddedEdges)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "figure5",
		Title: "SLDRG on a random 10-pin net",
		Values: map[string]float64{
			"steiner_delay_s": o.baseDelay,
			"steiner_cost_um": o.baseCost,
		},
	}
	f.Stages = append(f.Stages, FigureStage{Label: "(a) Steiner tree", Topo: view(res.Seed)})
	f.Lines = append(f.Lines, fmt.Sprintf("Steiner tree delay %.3g ns, cost %.0f µm", o.baseDelay*1e9, o.baseCost))
	if len(o.stageDelay) > 0 {
		last := len(o.stageDelay) - 1
		s := o.finalRatio()
		f.Values["graph_delay_s"] = o.stageDelay[last]
		f.Values["graph_cost_um"] = o.stageCost[last]
		f.Values["delay_ratio"] = s.DelayRatio
		f.Values["cost_ratio"] = s.CostRatio
		f.Stages = append(f.Stages, FigureStage{Label: "(b) SLDRG graph", Topo: view(res.Topology)})
		f.Lines = append(f.Lines, fmt.Sprintf(
			"SLDRG graph (+%d edges): delay %.3g ns (%.1f%% improvement), cost %.0f µm (+%.1f%%)",
			len(o.stageDelay), o.stageDelay[last]*1e9, 100*(1-s.DelayRatio),
			o.stageCost[last], 100*(s.CostRatio-1)))
	} else {
		f.Lines = append(f.Lines, "SLDRG found no improving edge on this net")
	}
	return f, nil
}

// AllFigures runs every figure reproduction in paper order.
func AllFigures(cfg Config) ([]*Figure, error) {
	builders := []func(Config) (*Figure, error){Figure1, Figure2, Figure3, Figure5}
	figs := make([]*Figure, 0, len(builders))
	for _, b := range builders {
		f, err := b(cfg)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
