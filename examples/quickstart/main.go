// Quickstart: route a random 10-pin net the classical way (MST), then let
// the non-tree LDRG algorithm add extra wires, and compare simulator-
// measured delays — the paper's core demonstration in ~30 lines.
package main

import (
	"fmt"
	"log"

	"nontree"
)

func main() {
	log.SetFlags(0)

	// A reproducible random net: pin 0 is the source, the rest are sinks,
	// placed uniformly in a 10mm × 10mm region (the paper's workload).
	net, err := nontree.GenerateNet(25, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Classical routing: the minimum spanning tree.
	mst, err := nontree.MST(net)
	if err != nil {
		log.Fatal(err)
	}

	// Non-tree routing: greedily add wires while delay improves.
	res, err := nontree.LDRG(mst, nontree.Config{})
	if err != nil {
		log.Fatal(err)
	}

	params := nontree.DefaultParams()
	before, err := nontree.MeasureDelay(mst, params)
	if err != nil {
		log.Fatal(err)
	}
	after, err := nontree.MeasureDelay(res.Topology, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MST:  max delay %.3f ns, wirelength %.0f µm\n", before.Max*1e9, before.Wirelength)
	fmt.Printf("LDRG: max delay %.3f ns, wirelength %.0f µm (%d extra wire(s))\n",
		after.Max*1e9, after.Wirelength, len(res.AddedEdges))
	fmt.Printf("delay improved %.1f%% for %.1f%% extra wire\n",
		100*(1-after.Max/before.Max), 100*(after.Wirelength/before.Wirelength-1))
}
