// Critical-sink routing (the paper's Section 5.1, CSORG): during iterative
// timing-driven layout, static timing analysis identifies one sink of a net
// as lying on the chip's critical path. This example routes the same net
// twice — once minimizing the worst sink delay (the ORG objective) and once
// minimizing delay to the identified critical sink only — and shows how the
// criticality-weighted objective shifts where the extra wires go.
package main

import (
	"fmt"
	"log"

	"nontree"
)

func main() {
	log.SetFlags(0)

	net, err := nontree.GenerateNet(7, 12)
	if err != nil {
		log.Fatal(err)
	}
	mst, err := nontree.MST(net)
	if err != nil {
		log.Fatal(err)
	}
	params := nontree.DefaultParams()

	// Pretend timing analysis flagged the geometrically farthest sink.
	critical := farthestSink(net)
	fmt.Printf("net of %d pins; critical sink: n%d\n\n", net.NumPins(), critical)

	// Route 1: the standard ORG objective (minimize the worst sink).
	org, err := nontree.LDRG(mst, nontree.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Route 2: CSORG with α_critical = 1 and all other α_i = 0 — the
	// "exactly one critical sink" special case the paper highlights.
	alphas := make([]float64, net.NumSinks())
	alphas[critical-1] = 1
	cs, err := nontree.CriticalSinkLDRG(mst, alphas, nontree.Config{})
	if err != nil {
		log.Fatal(err)
	}

	base, err := nontree.MeasureDelay(mst, params)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, topo *nontree.Topology, added int) {
		rep, err := nontree.MeasureDelay(topo, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s critical-sink delay %7.3f ns   max delay %7.3f ns   wire %8.0f µm   +%d edges\n",
			name, rep.PerSink[critical-1]*1e9, rep.Max*1e9, rep.Wirelength, added)
	}
	report("MST", mst, 0)
	report("LDRG (ORG)", org.Topology, len(org.AddedEdges))
	report("LDRG (CSORG)", cs.Topology, len(cs.AddedEdges))

	repORG, _ := nontree.MeasureDelay(org.Topology, params)
	repCS, err := nontree.MeasureDelay(cs.Topology, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCSORG cut the critical sink's delay %.1f%% below the MST (ORG run: %.1f%%),\n",
		100*(1-repCS.PerSink[critical-1]/base.PerSink[critical-1]),
		100*(1-repORG.PerSink[critical-1]/base.PerSink[critical-1]))
	fmt.Println("spending its wires on the one path that matters to the clock cycle.")
}

// farthestSink returns the sink pin index with the greatest Manhattan
// distance from the source.
func farthestSink(net *nontree.Net) int {
	src := net.Source()
	best, bestDist := 1, -1.0
	for i, p := range net.Sinks() {
		d := abs(p.X-src.X) + abs(p.Y-src.Y)
		if d > bestDist {
			bestDist = d
			best = i + 1
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
