package sim

import (
	"bytes"
	"strings"
	"testing"
)

// goldenSpec is the fixed spec behind the pinned fingerprints: small enough
// to generate instantly, rich enough to exercise every stream.
func goldenSpec(arrival Arrival, zipfS float64) WorkloadSpec {
	return WorkloadSpec{
		Seed:     42,
		Requests: 64,
		QPS:      100,
		Arrival:  arrival,
		Keys:     8,
		ZipfS:    zipfS,
	}
}

// TestGoldenFingerprints pins the workload fingerprint for every arrival
// process × key skew at seed 42. These hashes are the determinism contract:
// they must be identical on every platform and every PR. A mismatch means
// workload generation changed and every committed SIM_*.json baseline is no
// longer comparable — if the change is intentional, update the hashes here
// AND regenerate the baselines.
func TestGoldenFingerprints(t *testing.T) {
	cases := []struct {
		name    string
		arrival Arrival
		zipfS   float64
		want    string
	}{
		{"uniform-flat", ArrivalUniform, 0, "8a3724f8c6f51371fc0002ec1f1c48a3de5ad223985a20b8f382e2a14f79514e"},
		{"uniform-zipf", ArrivalUniform, 1.2, "f491682313701a020af0cf7c05a9fc6b5e4fc03878552b3f1976b51b9286c677"},
		{"poisson-flat", ArrivalPoisson, 0, "73f125a5aaaa30ac645fb7eee854a02d3605a3cab9392b5577b7a4d9e3aaf43d"},
		{"poisson-zipf", ArrivalPoisson, 1.2, "33375729927529b981927be0d4d8dd4ce47635d1ba2a6357c56b5668f917762b"},
		{"burst-flat", ArrivalBurst, 0, "623a0610a135d808c1fc96bdf427602db51dd03560b8ba9c9ccb8b405de9118e"},
		{"burst-zipf", ArrivalBurst, 1.2, "32d1886f7d4602595d06914b2ad285e355d4208ca8fe6f8b97bb2596a610b788"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := Generate(goldenSpec(tc.arrival, tc.zipfS))
			if err != nil {
				t.Fatal(err)
			}
			if got := w.Fingerprint(); got != tc.want {
				t.Errorf("fingerprint drifted:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}

// TestGenerateByteIdentical is the acceptance criterion: two generations of
// the same spec produce byte-identical streams.
func TestGenerateByteIdentical(t *testing.T) {
	spec := goldenSpec(ArrivalPoisson, 1.2)
	var bufs [2]bytes.Buffer
	for i := range bufs {
		w, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("two generations of the same spec differ byte-for-byte")
	}
}

// TestSeedChangesStream guards against the seed being ignored.
func TestSeedChangesStream(t *testing.T) {
	a, err := Generate(WorkloadSpec{Seed: 1, Requests: 32, Keys: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(WorkloadSpec{Seed: 2, Requests: 32, Keys: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestSubstreamIsolation checks the salted sub-stream design: changing the
// key skew must not disturb the net table or the arrival schedule, so
// golden baselines survive orthogonal spec tweaks.
func TestSubstreamIsolation(t *testing.T) {
	flat, err := Generate(goldenSpec(ArrivalUniform, 0))
	if err != nil {
		t.Fatal(err)
	}
	skew, err := Generate(goldenSpec(ArrivalUniform, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat.Nets {
		if flat.Nets[i].Name != skew.Nets[i].Name || len(flat.Nets[i].Pins) != len(skew.Nets[i].Pins) {
			t.Fatalf("net %d differs between skews: key stream leaked into the net stream", i)
		}
	}
	for i := range flat.Requests {
		if flat.Requests[i].AtNanos != skew.Requests[i].AtNanos {
			t.Fatalf("request %d schedule differs between skews: key stream leaked into the arrival stream", i)
		}
	}
}

// TestScheduleShapes sanity-checks each arrival process.
func TestScheduleShapes(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		w, err := Generate(WorkloadSpec{Seed: 3, Requests: 10, QPS: 100, Arrival: ArrivalUniform, Keys: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range w.Requests {
			if want := int64(i) * 10_000_000; r.AtNanos != want {
				t.Fatalf("request %d at %dns, want exactly %dns (1/QPS spacing)", i, r.AtNanos, want)
			}
		}
	})
	t.Run("poisson-monotone", func(t *testing.T) {
		w, err := Generate(WorkloadSpec{Seed: 3, Requests: 100, QPS: 100, Arrival: ArrivalPoisson, Keys: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(w.Requests); i++ {
			if w.Requests[i].AtNanos < w.Requests[i-1].AtNanos {
				t.Fatalf("schedule decreases at request %d", i)
			}
		}
	})
	t.Run("burst-groups", func(t *testing.T) {
		w, err := Generate(WorkloadSpec{Seed: 3, Requests: 32, QPS: 100, Arrival: ArrivalBurst, BurstSize: 8, Keys: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range w.Requests {
			first := w.Requests[(i/8)*8]
			if r.AtNanos != first.AtNanos {
				t.Fatalf("request %d not simultaneous with its burst head", i)
			}
		}
		if w.Requests[0].AtNanos == w.Requests[8].AtNanos {
			t.Fatal("consecutive bursts share a timestamp")
		}
	})
}

// TestWorkloadRoundTrip checks WriteJSON → ReadWorkload preserves identity.
func TestWorkloadRoundTrip(t *testing.T) {
	w, err := Generate(goldenSpec(ArrivalBurst, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != w.Fingerprint() {
		t.Fatal("round-tripped workload has a different fingerprint")
	}
}

// TestReadWorkloadRejects covers the consistency checks on untrusted files.
func TestReadWorkloadRejects(t *testing.T) {
	w, err := Generate(WorkloadSpec{Seed: 5, Requests: 4, Keys: 2})
	if err != nil {
		t.Fatal(err)
	}
	render := func(mutate func(*Workload)) string {
		cp := *w
		cp.Requests = append([]Request(nil), w.Requests...)
		mutate(&cp)
		var buf bytes.Buffer
		if err := cp.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"key-out-of-range", render(func(w *Workload) { w.Requests[1].Key = 99 }), "outside net table"},
		{"negative-offset", render(func(w *Workload) { w.Requests[1].AtNanos = -1 }), "negative schedule offset"},
		{"no-nets", render(func(w *Workload) { w.Nets = nil }), "no nets"},
		{"unknown-field", `{"spec":{},"nets":[],"requests":[],"bogus":1}`, "bogus"},
		{"garbage", "{", "decoding workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadWorkload(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestSpecValidation covers the generation limits.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec WorkloadSpec
		want error
	}{
		{"too-many-requests", WorkloadSpec{Requests: MaxRequests + 1}, ErrBadRequests},
		{"zero-qps", WorkloadSpec{Requests: 1, QPS: -1}, ErrBadQPS},
		{"bad-arrival", WorkloadSpec{Requests: 1, QPS: 1, Arrival: "fractal", Keys: 1, Side: 1, PinMix: []PinMix{{2, 1}}}, ErrBadArrival},
		{"bad-burst", WorkloadSpec{Requests: 4, QPS: 1, Arrival: ArrivalBurst, BurstSize: 5, Keys: 1, Side: 1, PinMix: []PinMix{{2, 1}}}, ErrBadBurst},
		{"bad-pins", WorkloadSpec{Requests: 1, QPS: 1, Arrival: ArrivalUniform, Keys: 1, Side: 1, PinMix: []PinMix{{1, 1}}}, ErrBadPinMix},
		{"bad-keys", WorkloadSpec{Requests: 1, QPS: 1, Arrival: ArrivalUniform, Keys: MaxKeys + 1, Side: 1, PinMix: []PinMix{{2, 1}}}, ErrBadKeys},
		{"bad-zipf", WorkloadSpec{Requests: 1, QPS: 1, Arrival: ArrivalUniform, Keys: 1, ZipfS: 0.5, Side: 1, PinMix: []PinMix{{2, 1}}}, ErrBadZipf},
		{"bad-side", WorkloadSpec{Requests: 1, QPS: 1, Arrival: ArrivalUniform, Keys: 1, Side: -4, PinMix: []PinMix{{2, 1}}}, ErrBadSide},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want.Error()) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
	t.Run("bad-algo-via-serve", func(t *testing.T) {
		spec := WorkloadSpec{Requests: 1, QPS: 1, Arrival: ArrivalUniform, Keys: 1, Side: 1, PinMix: []PinMix{{2, 1}}, Algo: "dijkstra"}
		if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
			t.Fatalf("Validate() = %v, want serve's unknown-algorithm rejection", err)
		}
	})
}
