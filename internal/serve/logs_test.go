package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"nontree/internal/obs"
	"nontree/internal/olog"
)

// getLogs fetches a /logs URL and decodes the canonical JSONL body.
func getLogs(t *testing.T, url string) (int, []olog.Event, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, raw
	}
	events, err := olog.ReadJSONL(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("GET %s: body is not canonical JSONL: %v\n%s", url, err, raw)
	}
	return resp.StatusCode, events, raw
}

// waitLogLen polls until the log ring holds want events: the handler emits
// after writing the response, so a client can briefly outrun the event.
func waitLogLen(t *testing.T, s *Server, want int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if s.Logs().Len() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("log ring stuck at %d events, want %d", s.Logs().Len(), want)
}

// TestRouteWideEvent is the tentpole's end-to-end contract: the /route
// reply carries a request id (body and X-Request-ID header) that resolves
// at /logs?request=<id> to one wide event whose trace exemplar resolves at
// /traces/<id>, whose counter deltas match the reply, and whose phase
// latencies sum (within accounting slack) to the observed total.
func TestRouteWideEvent(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	net := testNet(t, 7, 10)
	net.Name = "wide-event-net"
	reply := postRoute(t, ts, RouteRequest{Net: net, RouteOptions: RouteOptions{Algo: AlgoLDRG, Workers: 2}}, http.StatusOK)
	if reply.RequestID == "" {
		t.Fatal("/route reply carries no request_id")
	}
	if reply.Phases == nil {
		t.Fatal("/route reply carries no phase breakdown")
	}

	ev, ok := findEvent(s, reply.RequestID)
	if !ok {
		t.Fatalf("request %s has no wide event", reply.RequestID)
	}
	status, events, _ := getLogs(t, ts.URL+"/logs?request="+reply.RequestID)
	if status != http.StatusOK || len(events) != 1 {
		t.Fatalf("GET /logs?request=%s: status %d, %d events", reply.RequestID, status, len(events))
	}
	got := events[0]
	if got.RequestID != reply.RequestID || got.Outcome != olog.OutcomeOK || got.Status != http.StatusOK {
		t.Fatalf("wide event = %+v", got)
	}
	if got.TraceTombstoned {
		t.Error("fresh trace reported tombstoned")
	}
	if got.TraceID != reply.TraceID || got.TraceEvents != reply.TraceEvents {
		t.Errorf("event trace link (%s, %d) != reply (%s, %d)",
			got.TraceID, got.TraceEvents, reply.TraceID, reply.TraceEvents)
	}
	if code, _ := get(t, ts.URL+"/traces/"+got.TraceID); code != http.StatusOK {
		t.Errorf("exemplar trace %s does not resolve: %d", got.TraceID, code)
	}
	if got.OracleEvals != int64(reply.Evaluations) {
		t.Errorf("event oracle_evals %d != reply evaluations %d", got.OracleEvals, reply.Evaluations)
	}
	if got.Algo != AlgoLDRG || got.Oracle != OracleElmore || got.Workers != 2 {
		t.Errorf("event options echo = %q/%q/%d", got.Algo, got.Oracle, got.Workers)
	}
	if got.Net != "wide-event-net" || got.Pins != 10 {
		t.Errorf("event net identity = %q/%d pins, want wide-event-net/10", got.Net, got.Pins)
	}

	// Phase accounting: the five phases sum to the event total within the
	// only untimed interval (response writing between the store mark and
	// emit), and exactly to the reply's own total by construction.
	sum := ev.QueueSeconds + ev.DecodeSeconds + ev.SweepSeconds + ev.OracleSeconds + ev.StoreSeconds
	if ev.TotalSeconds <= 0 {
		t.Fatalf("wide event total = %g", ev.TotalSeconds)
	}
	if sum > ev.TotalSeconds+1e-9 {
		t.Errorf("phases sum %g exceeds total %g", sum, ev.TotalSeconds)
	}
	if slack := ev.TotalSeconds - sum; slack > 0.5*ev.TotalSeconds+5e-3 {
		t.Errorf("phase accounting slack %g of total %g (event %+v)", slack, ev.TotalSeconds, ev)
	}
	if ev.LatencyBucket != obs.BucketIndex(ev.TotalSeconds) {
		t.Errorf("latency bucket %d, want %d", ev.LatencyBucket, obs.BucketIndex(ev.TotalSeconds))
	}
	p := reply.Phases
	psum := p.QueueSeconds + p.DecodeSeconds + p.SweepSeconds + p.OracleSeconds + p.StoreSeconds
	if math.Abs(psum-p.TotalSeconds) > 1e-12 {
		t.Errorf("reply phases sum %g != reply total %g", psum, p.TotalSeconds)
	}
}

// TestRequestIDHeaderMatchesBody pins the header/body agreement and the
// arrival-order id scheme.
func TestRequestIDHeaderMatchesBody(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postRouteRaw(t, ts)
	defer resp.Body.Close()
	hdr := resp.Header.Get("X-Request-ID")
	if hdr != "r00000001" {
		t.Fatalf("first request id = %q, want r00000001", hdr)
	}
	var reply RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.RequestID != hdr {
		t.Fatalf("body request_id %q != header %q", reply.RequestID, hdr)
	}
}

// TestWideEventWorkersInvariant pins the acceptance criterion: the
// deterministic projection of a request's wide event is byte-identical
// across Workers ∈ {1, 4, GOMAXPROCS}. Each Workers value runs on a fresh
// server so sequence numbers and request ids align.
func TestWideEventWorkersInvariant(t *testing.T) {
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	var lines []string
	for _, wk := range workers {
		s := New(Options{})
		ts := httptest.NewServer(s.Handler())
		reply := postRoute(t, ts, RouteRequest{
			Net:          testNet(t, 7, 12),
			RouteOptions: RouteOptions{Algo: AlgoLDRG, Workers: wk},
		}, http.StatusOK)
		ev, ok := findEvent(s, reply.RequestID)
		ts.Close()
		if !ok {
			t.Fatalf("workers=%d: no wide event", wk)
		}
		if ev.Workers != wk {
			t.Errorf("workers=%d: event echoes %d", wk, ev.Workers)
		}
		lines = append(lines, string(ev.Deterministic().Encode()))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] != lines[0] {
			t.Errorf("wide event not Workers-invariant:\n workers=%d: %s\n workers=%d: %s",
				workers[0], lines[0], workers[i], lines[i])
		}
	}
}

// TestLogsListingRoundTrip pins the /logs wire format: the listing is
// canonical JSONL that round-trips bit-exactly (decode → re-encode
// reproduces the exact bytes served), with non-ok outcomes interleaved.
func TestLogsListingRoundTrip(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		postRoute(t, ts, RouteRequest{Net: testNet(t, int64(i+1), 6)}, http.StatusOK)
	}
	// A refusal interleaves a non-ok outcome into the log.
	postRoute(t, ts, RouteRequest{}, http.StatusBadRequest)
	waitLogLen(t, s, 4)

	status, events, raw := getLogs(t, ts.URL+"/logs")
	if status != http.StatusOK || len(events) != 4 {
		t.Fatalf("GET /logs: status %d, %d events, want 4", status, len(events))
	}
	var re bytes.Buffer
	if err := olog.WriteJSONL(&re, events); err != nil {
		t.Fatal(err)
	}
	if re.String() != raw {
		t.Fatalf("/logs body does not round-trip bit-exactly:\n got  %q\n want %q", re.String(), raw)
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[3].Outcome != olog.OutcomeError || events[3].Error == "" {
		t.Errorf("refusal event = %+v", events[3])
	}
}

// TestLogsExemplarTombstone pins satellite behaviour: resolving the wide
// event of a request whose trace has been evicted returns the event with
// trace_tombstoned set — NOT a 404. The event outlives its trace.
func TestLogsExemplarTombstone(t *testing.T) {
	s := New(Options{MaxTraces: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := postRoute(t, ts, RouteRequest{Net: testNet(t, 1, 6)}, http.StatusOK)
	// The second route evicts the first trace (MaxTraces: 1).
	second := postRoute(t, ts, RouteRequest{Net: testNet(t, 2, 6)}, http.StatusOK)
	waitLogLen(t, s, 2)
	if code, _ := get(t, ts.URL+"/traces/"+first.TraceID); code != http.StatusNotFound {
		t.Fatalf("evicted trace still resolves: %d", code)
	}

	status, events, _ := getLogs(t, ts.URL+"/logs?request="+first.RequestID)
	if status != http.StatusOK || len(events) != 1 {
		t.Fatalf("evicted-trace request lookup: status %d, %d events (want the event, not 404)", status, len(events))
	}
	if !events[0].TraceTombstoned {
		t.Error("event of an evicted trace is not tombstoned")
	}
	if events[0].TraceID != first.TraceID {
		t.Errorf("tombstoned event trace id = %q, want %q", events[0].TraceID, first.TraceID)
	}

	// The surviving request's event is not tombstoned, and the stored
	// event (unlike the rendered one) stays clean.
	status, events, _ = getLogs(t, ts.URL+"/logs?request="+second.RequestID)
	if status != http.StatusOK || len(events) != 1 || events[0].TraceTombstoned {
		t.Fatalf("live-trace request lookup: status %d, events %+v", status, events)
	}
	if ev, _ := s.Logs().Find(first.RequestID); ev.TraceTombstoned {
		t.Error("tombstone leaked into the stored event")
	}

	// Unknown ids are a real 404.
	if status, _, _ := getLogs(t, ts.URL+"/logs?request=r99999999"); status != http.StatusNotFound {
		t.Errorf("unknown request id: status %d, want 404", status)
	}
}

// TestLogsDisabledAndEviction pins the MaxLogEvents knob: negative
// disables the surface (404 + serve.log.dropped), and a small ring evicts
// oldest-first while counting serve.log.evictions.
func TestLogsDisabledAndEviction(t *testing.T) {
	s := New(Options{MaxLogEvents: -1})
	ts := httptest.NewServer(s.Handler())
	postRoute(t, ts, RouteRequest{Net: testNet(t, 1, 5)}, http.StatusOK)
	waitInflight(t, s, 0)
	if s.Logs() != nil {
		t.Error("Logs() non-nil with logging disabled")
	}
	if status, _, body := getLogs(t, ts.URL+"/logs"); status != http.StatusNotFound {
		t.Errorf("disabled /logs: status %d (%s), want 404", status, body)
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters[obs.CtrLogDropped] != 1 || snap.Counters[obs.CtrLogEvents] != 0 {
		t.Errorf("disabled logging counters: dropped %d events %d, want 1 and 0",
			snap.Counters[obs.CtrLogDropped], snap.Counters[obs.CtrLogEvents])
	}
	ts.Close()

	s = New(Options{MaxLogEvents: 2})
	ts = httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		postRoute(t, ts, RouteRequest{Net: testNet(t, int64(i+1), 5)}, http.StatusOK)
	}
	waitInflight(t, s, 0)
	status, events, _ := getLogs(t, ts.URL+"/logs")
	if status != http.StatusOK || len(events) != 2 {
		t.Fatalf("ring of 2 after 3 requests: status %d, %d events", status, len(events))
	}
	if events[0].RequestID != "r00000002" || events[1].RequestID != "r00000003" {
		t.Errorf("retained tail = %s, %s; want oldest evicted", events[0].RequestID, events[1].RequestID)
	}
	snap = s.Metrics().Snapshot()
	if snap.Counters[obs.CtrLogEvictions] != 1 || snap.Counters[obs.CtrLogEvents] != 3 {
		t.Errorf("eviction counters: evictions %d events %d, want 1 and 3",
			snap.Counters[obs.CtrLogEvictions], snap.Counters[obs.CtrLogEvents])
	}
}
