// Package a seeds the classic AB/BA deadlock: f nests A→B while g nests
// B→A, h launders the A→B edge through a helper, and the clean functions
// prove consistent nesting and the sanctioned idioms stay silent.
package a

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

var (
	ga A
	gb B
	gc C
)

func f() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	gb.mu.Lock() // want `potential deadlock: a\.f acquires a\.\(B\)\.mu while holding a\.\(A\)\.mu; reverse path: a\.\(B\)\.mu -> a\.\(A\)\.mu at `
	gb.mu.Unlock()
}

func g() {
	gb.mu.Lock()
	defer gb.mu.Unlock()
	ga.mu.Lock() // want `potential deadlock: a\.g acquires a\.\(A\)\.mu while holding a\.\(B\)\.mu; reverse path: a\.\(A\)\.mu -> a\.\(B\)\.mu at `
	ga.mu.Unlock()
}

// h creates the same A→B edge as f, but two helpers deep: the summary
// machinery must surface the laundered acquisition with its call chain.
func h() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	lockB() // want `potential deadlock: a\.h acquires a\.\(B\)\.mu while holding a\.\(A\)\.mu \(via a\.lockB -> a\.reallyLockB\)`
}

func lockB() { reallyLockB() }

func reallyLockB() {
	gb.mu.Lock()
	gb.mu.Unlock()
}

// selfNest re-acquires a non-reentrant mutex.
func selfNest() {
	ga.mu.Lock()
	ga.mu.Lock() // want `potential self-deadlock: a\.selfNest acquires a\.\(A\)\.mu while already holding it`
	ga.mu.Unlock()
	ga.mu.Unlock()
}

// ok1 and ok2 nest A→C consistently: an edge with no reverse is fine.
func ok1() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	gc.mu.Lock()
	gc.mu.Unlock()
}

func ok2() {
	ga.mu.Lock()
	gc.mu.Lock()
	gc.mu.Unlock()
	ga.mu.Unlock()
}

// spawner holds A while a goroutine takes B: the goroutine's acquisition
// does not nest with the spawner's held set, so no A→B edge arises here
// (and hence no report, even though g provides the reverse edge).
func spawner() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	go func() {
		gb.mu.Lock()
		gb.mu.Unlock()
	}()
}

type R struct{ mu sync.RWMutex }

var gr R

// upgrade mirrors obs.Registry's double-checked idiom: RLock is released
// before Lock, so no self-edge exists.
func upgrade() int {
	gr.mu.RLock()
	v := 1
	gr.mu.RUnlock()
	gr.mu.Lock()
	defer gr.mu.Unlock()
	return v
}

// branches only ever holds A on one arm; the may-held union must still
// catch the nested acquisition on that arm.
func branches(cond bool) {
	if cond {
		ga.mu.Lock()
	}
	gc.mu.Lock()
	gc.mu.Unlock()
	if cond {
		ga.mu.Unlock()
	}
}

// localOnly uses a function-local mutex: no stable class, never tracked.
func localOnly() {
	var mu sync.Mutex
	mu.Lock()
	gb.mu.Lock()
	gb.mu.Unlock()
	mu.Unlock()
}
