package callgraph_test

import (
	"go/ast"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"nontree/internal/analysis"
	"nontree/internal/analysis/callgraph"
)

// buildFixture loads testdata/src/cgdep then testdata/src/cg (dependency
// order, mirroring the real driver) and returns the cg package's graph
// plus the shared fact store.
func buildFixture(t *testing.T) (*callgraph.Graph, *analysis.Facts) {
	t.Helper()
	loader := analysis.NewLoader()
	facts := analysis.NewFacts()
	var g *callgraph.Graph
	probe := &analysis.Analyzer{
		Name: "cgprobe",
		Doc:  "captures the call graph",
		Run: func(pass *analysis.Pass) error {
			g = callgraph.Build(pass)
			return nil
		},
	}
	for _, name := range []string{"cgdep", "cg"} {
		dir := filepath.Join("testdata", "src", name)
		pkg, err := loader.CheckDir(dir, name)
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		loader.RegisterPackage(pkg.Types)
		if _, err := analysis.RunAnalyzerFacts(probe, pkg, facts); err != nil {
			t.Fatalf("building graph for %s: %v", name, err)
		}
	}
	if g == nil {
		t.Fatal("no graph captured")
	}
	return g, facts
}

// targetsOf flattens a node's resolved targets, sorted and deduplicated.
func targetsOf(n *callgraph.Node) []string {
	seen := map[string]bool{}
	for _, c := range n.Calls {
		for _, id := range c.Targets {
			seen[id] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func TestStaticAndCrossPackageCalls(t *testing.T) {
	g, _ := buildFixture(t)
	n := g.Lookup("cg.static")
	if n == nil {
		t.Fatal("no node for cg.static")
	}
	want := []string{"cgdep.Helper"}
	if got := targetsOf(n); !reflect.DeepEqual(got, want) {
		t.Errorf("cg.static targets = %v, want %v", got, want)
	}
}

func TestConcreteMethodCall(t *testing.T) {
	g, _ := buildFixture(t)
	n := g.Lookup("cg.concrete")
	want := []string{"cg.(Local).Do"}
	if got := targetsOf(n); !reflect.DeepEqual(got, want) {
		t.Errorf("cg.concrete targets = %v, want %v", got, want)
	}
}

func TestInterfaceResolvesToAllImplementers(t *testing.T) {
	g, _ := buildFixture(t)
	n := g.Lookup("cg.viaIface")
	if n == nil {
		t.Fatal("no node for cg.viaIface")
	}
	// Both the in-package Local and the cross-package cgdep.Impl satisfy
	// Doer; resolution must be conservative and find both, flagged Iface.
	want := []string{"cg.(Local).Do", "cgdep.(Impl).Do"}
	if got := targetsOf(n); !reflect.DeepEqual(got, want) {
		t.Errorf("cg.viaIface targets = %v, want %v", got, want)
	}
	for _, c := range n.Calls {
		if len(c.Targets) > 0 && !c.Iface {
			t.Errorf("interface call not flagged Iface: %+v", c)
		}
	}
}

func TestLiteralsAndValues(t *testing.T) {
	g, _ := buildFixture(t)
	n := g.Lookup("cg.literals")
	if n == nil {
		t.Fatal("no node for cg.literals")
	}
	got := targetsOf(n)
	for _, want := range []string{
		"cg.literals$1", // invoked at definition
		"cg.literals$2", // via local f
		"cg.static",     // via local g (named function value)
		"cg.(Local).Do", // via local h (method value)
		"cg.literals$3", // escaping literal: implicit edge
		"cg.literals$4", // go func(){...}()
		"cg.literals$5", // defer func(){...}()
		"cg.sink",
	} {
		found := false
		for _, id := range got {
			if id == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("cg.literals targets missing %s (got %v)", want, got)
		}
	}
	// The go and defer call sites must be flagged.
	var goSeen, deferSeen, implicitSeen bool
	for _, c := range n.Calls {
		if c.Go {
			goSeen = true
		}
		if c.Defer {
			deferSeen = true
		}
		if c.Implicit {
			implicitSeen = true
			if _, ok := c.Site.(*ast.FuncLit); !ok {
				t.Errorf("implicit edge site is %T, want *ast.FuncLit", c.Site)
			}
		}
	}
	if !goSeen || !deferSeen || !implicitSeen {
		t.Errorf("flags missing: go=%v defer=%v implicit=%v", goSeen, deferSeen, implicitSeen)
	}
	// Every literal got its own node.
	for i := 1; i <= 5; i++ {
		if g.Lookup("cg.literals$"+string(rune('0'+i))) == nil {
			t.Errorf("no node for cg.literals$%d", i)
		}
	}
}

func TestMethodSetFactsExported(t *testing.T) {
	_, facts := buildFixture(t)
	var ms map[string]string
	if !facts.Import(callgraph.MethodSetFactPrefix+"cgdep.Impl", &ms) {
		t.Fatal("no method-set fact for cgdep.Impl")
	}
	if ms["Do"] != "cgdep.(Impl).Do" {
		t.Errorf("cgdep.Impl method set = %v", ms)
	}
	if !facts.Import(callgraph.MethodSetFactPrefix+"cg.Local", &ms) {
		t.Fatal("no method-set fact for cg.Local")
	}
	// Value-receiver methods must appear too (method set of *Local).
	if ms["Other"] != "cg.(Local).Other" || ms["Do"] != "cg.(Local).Do" {
		t.Errorf("cg.Local method set = %v", ms)
	}
}

func TestSCCsCalleeFirstAndMergedCycle(t *testing.T) {
	g, _ := buildFixture(t)
	sccs := g.SCCs()
	pos := map[string]int{}
	var evenOddComp []*callgraph.Node
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n.ID] = i
			if n.ID == "cg.even" || n.ID == "cg.odd" {
				evenOddComp = comp
			}
		}
	}
	if len(evenOddComp) != 2 {
		t.Fatalf("even/odd SCC has %d members, want 2", len(evenOddComp))
	}
	// Callee-first: cg.static precedes cg.literals (which calls it), and
	// every literal precedes its caller.
	if pos["cg.static"] >= pos["cg.literals"] {
		t.Errorf("cg.static (comp %d) not before cg.literals (comp %d)",
			pos["cg.static"], pos["cg.literals"])
	}
	if pos["cg.sink"] >= pos["cg.literals"] {
		t.Errorf("cg.sink not before cg.literals")
	}
}

func TestSummarizeFixpointOverRecursion(t *testing.T) {
	g, _ := buildFixture(t)
	// Summary: the set of node IDs transitively reachable (within the
	// package), as a sorted slice — a finite lattice whose fixpoint over
	// the even/odd cycle must include both members in both summaries.
	sum := callgraph.SummarizeTyped(g, callgraph.Summarizer[[]string]{
		Bottom: func(n *callgraph.Node) []string { return nil },
		Transfer: func(n *callgraph.Node, callee func(string) ([]string, bool)) []string {
			seen := map[string]bool{}
			for _, c := range n.Calls {
				for _, t := range c.Targets {
					seen[t] = true
					if sub, ok := callee(t); ok {
						for _, id := range sub {
							seen[id] = true
						}
					}
				}
			}
			out := make([]string, 0, len(seen))
			for id := range seen {
				out = append(out, id)
			}
			sort.Strings(out)
			return out
		},
		Equal: func(a, b []string) bool { return reflect.DeepEqual(a, b) },
	})
	evenReach := sum["cg.even"]
	wantBoth := 0
	for _, id := range evenReach {
		if id == "cg.even" || id == "cg.odd" {
			wantBoth++
		}
	}
	if wantBoth != 2 {
		t.Errorf("cg.even reachability = %v, want to include cg.even and cg.odd", evenReach)
	}
	// literals reaches cgdep.Helper transitively through cg.static.
	found := false
	for _, id := range sum["cg.literals"] {
		if id == "cgdep.Helper" {
			found = true
		}
	}
	if !found {
		t.Errorf("cg.literals reachability %v missing cgdep.Helper", sum["cg.literals"])
	}
}

func TestSummarizeNonConvergencePanics(t *testing.T) {
	g, _ := buildFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic from widening summarizer")
		}
	}()
	// A deliberately widening lattice: the summary grows every Transfer,
	// so the even/odd SCC can never reach fixpoint and must hit the
	// iteration budget.
	callgraph.SummarizeTyped(g, callgraph.Summarizer[int]{
		Bottom:   func(n *callgraph.Node) int { return 0 },
		Transfer: func(n *callgraph.Node, callee func(string) (int, bool)) int { return 1 },
		Equal:    func(a, b int) bool { return false },
	})
}

func TestDeterministicRebuild(t *testing.T) {
	g1, _ := buildFixture(t)
	g2, _ := buildFixture(t)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].ID != g2.Nodes[i].ID {
			t.Fatalf("node %d: %s vs %s", i, g1.Nodes[i].ID, g2.Nodes[i].ID)
		}
		if !reflect.DeepEqual(targetsOf(g1.Nodes[i]), targetsOf(g2.Nodes[i])) {
			t.Errorf("node %s targets differ across rebuilds", g1.Nodes[i].ID)
		}
	}
}
