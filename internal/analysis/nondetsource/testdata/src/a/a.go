// Package a exercises the nondetsource analyzer: wall clocks, math/rand,
// and CPU-count-dependent logic are flagged; annotated, justified uses and
// deterministic alternatives are clean.
package a

import (
	"math/rand" // want `import of math/rand in an algorithm package`
	"runtime"
	"time"
)

// Flagged: wall-clock reads.
func stamp() (int64, time.Duration) {
	start := time.Now()          // want `wall-clock read in an algorithm package`
	elapsed := time.Since(start) // want `wall-clock read in an algorithm package`
	return start.UnixNano(), elapsed
}

// Clean: time arithmetic on supplied values involves no clock.
func budget(d time.Duration) time.Duration { return 2 * d }

// The global-source draw rides on the flagged import above; call sites in
// real code are annotated or converted to explicit seeded streams.
func draw() int { return rand.Intn(10) }

// Flagged: sizing logic on the machine's core count.
func fanout() int {
	n := runtime.NumCPU() // want `GOMAXPROCS/NumCPU-dependent logic`
	if n > 4 {
		return 4
	}
	return n
}

// Flagged: GOMAXPROCS is the same contract.
func workers() int {
	return runtime.GOMAXPROCS(0) // want `GOMAXPROCS/NumCPU-dependent logic`
}

// Clean: annotated worker-pool sizing with a justification.
func workersAllowed() int {
	//nontree:allow nondetsource pool size only; the reduction is order-independent
	return runtime.GOMAXPROCS(0)
}

// Clean: runtime functions outside the deny-list.
func gc() { runtime.GC() }
