module nontree

go 1.22
