package spice

import (
	"math"
	"testing"
)

func TestACSinglePoleResponse(t *testing.T) {
	// RC low-pass: |H(jω)| = 1/√(1+(ωRC)²), phase = −atan(ωRC).
	const r, c = 1000.0, 1e-12
	ckt, out := buildRC(t, r, c)
	tau := r * c
	fc := 1 / (2 * math.Pi * tau)

	freqs := []float64{0, fc / 10, fc, 10 * fc}
	resp, err := ACResponse(ckt, out, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range resp {
		w := 2 * math.Pi * freqs[i]
		wantMag := 1 / math.Sqrt(1+w*tau*w*tau)
		if math.Abs(p.Magnitude-wantMag) > 1e-9 {
			t.Errorf("f=%.3g: |H| = %.6f, want %.6f", p.FrequencyHz, p.Magnitude, wantMag)
		}
		wantPhase := -math.Atan(w * tau)
		if math.Abs(p.PhaseRad-wantPhase) > 1e-9 {
			t.Errorf("f=%.3g: phase %.4f, want %.4f", p.FrequencyHz, p.PhaseRad, wantPhase)
		}
	}
}

func TestBandwidth3dBSinglePole(t *testing.T) {
	const r, c = 2000.0, 0.5e-12
	ckt, out := buildRC(t, r, c)
	want := 1 / (2 * math.Pi * r * c)
	got, err := Bandwidth3dB(ckt, out, want/1000, want*1000)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 1e-6 {
		t.Errorf("f3dB = %.6g, want %.6g (rel %.2g)", got, want, rel)
	}
}

func TestBandwidthRiseTimeProduct(t *testing.T) {
	// The classic single-pole identity: f₃dB · t₁₀₋₉₀ = ln9/(2π) ≈ 0.3497.
	const r, c = 1000.0, 1e-12
	ckt, out := buildRC(t, r, c)
	f3db, err := Bandwidth3dB(ckt, out, 1e6, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := MeasureEdge(ckt, out, DefaultMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	product := f3db * edge.Rise1090
	if math.Abs(product-0.3497) > 0.01 {
		t.Errorf("bandwidth·rise-time = %.4f, want ≈0.3497", product)
	}
}

func TestACOnRLCShowsPeaking(t *testing.T) {
	// Underdamped series RLC peaks above its DC gain near resonance.
	ckt := NewCircuit()
	in, mid, out := ckt.Node(), ckt.Node(), ckt.Node()
	must(t, ckt.AddVSource(in, Ground, Step(0, 1, 0)))
	must(t, ckt.AddResistor(in, mid, 10))
	must(t, ckt.AddInductor(mid, out, 1e-9))
	must(t, ckt.AddCapacitor(out, Ground, 1e-12))
	f0 := 1 / (2 * math.Pi * math.Sqrt(1e-9*1e-12))
	resp, err := ACResponse(ckt, out, []float64{0, f0})
	if err != nil {
		t.Fatal(err)
	}
	if resp[1].Magnitude <= resp[0].Magnitude {
		t.Errorf("no resonant peaking: |H(f0)| = %.3f vs DC %.3f",
			resp[1].Magnitude, resp[0].Magnitude)
	}
	// Q = (1/R)·√(L/C) ≈ 3.16: the peak should be near that.
	q := math.Sqrt(1e-9/1e-12) / 10
	if math.Abs(resp[1].Magnitude-q)/q > 0.1 {
		t.Errorf("peak %.3f, want ≈Q=%.3f", resp[1].Magnitude, q)
	}
}

func TestACValidation(t *testing.T) {
	ckt, out := buildRC(t, 100, 1e-12)
	if _, err := ACResponse(ckt, 0, []float64{1e6}); err == nil {
		t.Error("ground node must be rejected")
	}
	if _, err := ACResponse(ckt, out, nil); err == nil {
		t.Error("empty frequency list must be rejected")
	}
	if _, err := ACResponse(ckt, out, []float64{-1}); err == nil {
		t.Error("negative frequency must be rejected")
	}
	if _, err := Bandwidth3dB(ckt, out, 0, 1e9); err == nil {
		t.Error("bad bracket must be rejected")
	}
	if _, err := Bandwidth3dB(ckt, out, 1e14, 1e15); err == nil {
		t.Error("unbracketed threshold must be rejected")
	}
}

func TestLogSpace(t *testing.T) {
	fs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(fs[i]-want[i])/want[i] > 1e-12 {
			t.Errorf("LogSpace[%d] = %g, want %g", i, fs[i], want[i])
		}
	}
	if LogSpace(0, 10, 4) != nil || LogSpace(1, 10, 1) != nil {
		t.Error("degenerate LogSpace must return nil")
	}
}
